package replication

import (
	"sync"
	"testing"
	"time"

	"proteus/internal/disksim"
	"proteus/internal/partition"
	"proteus/internal/redolog"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
)

var kinds = []types.Kind{types.KindInt64, types.KindString}

func newPart(id partition.ID) *partition.Partition {
	f := partition.Factory{Dev: disksim.New(disksim.Config{})}
	b := partition.Bounds{RowStart: 0, RowEnd: 1000, ColStart: 0, ColEnd: 2}
	return partition.New(id, b, kinds, storage.DefaultRowLayout(), f)
}

func insertRec(pid partition.ID, ver uint64, row schema.RowID) redolog.Record {
	return redolog.Record{Partition: pid, Version: ver, Entries: []redolog.Entry{{
		Op: redolog.OpInsert, Row: row,
		Vals: []types.Value{types.NewInt64(int64(row)), types.NewString("v")},
	}}}
}

func TestPollOnceApplies(t *testing.T) {
	broker := redolog.NewBroker()
	r := New(broker, nil, 1, simnet.ASASite)
	p := newPart(7)
	r.Subscribe(7, p, 0)

	broker.Append(insertRec(7, 1, 1))
	broker.Append(insertRec(7, 2, 2))
	n, err := r.PollOnce()
	if err != nil || n != 2 {
		t.Fatalf("applied %d, %v", n, err)
	}
	if p.Version() != 2 {
		t.Errorf("version = %d", p.Version())
	}
	if _, ok := p.Get(2, []schema.ColID{0}, storage.Latest); !ok {
		t.Error("replicated row missing")
	}
	if r.Applied() != 2 {
		t.Errorf("Applied = %d", r.Applied())
	}
}

func TestCatchUpWaitsForVersion(t *testing.T) {
	broker := redolog.NewBroker()
	r := New(broker, nil, 1, simnet.ASASite)
	p := newPart(7)
	r.Subscribe(7, p, 0)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		broker.Append(insertRec(7, 1, 1))
		broker.Append(insertRec(7, 2, 2))
	}()
	d, err := r.CatchUp(7, 2)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if p.Version() < 2 {
		t.Errorf("version = %d after catch-up", p.Version())
	}
	if d <= 0 {
		t.Error("wait duration not recorded")
	}
}

func TestCatchUpUnknownPartition(t *testing.T) {
	r := New(redolog.NewBroker(), nil, 1, simnet.ASASite)
	if _, err := r.CatchUp(99, 1); err == nil {
		t.Error("expected error")
	}
}

func TestLag(t *testing.T) {
	broker := redolog.NewBroker()
	r := New(broker, nil, 1, simnet.ASASite)
	p := newPart(3)
	r.Subscribe(3, p, 0)
	broker.Append(insertRec(3, 1, 1))
	broker.Append(insertRec(3, 2, 2))
	if lag := r.Lag(3); lag != 2 {
		t.Errorf("lag = %d", lag)
	}
	if _, err := r.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if lag := r.Lag(3); lag != 0 {
		t.Errorf("lag after poll = %d", lag)
	}
}

func TestUnsubscribeStopsApplying(t *testing.T) {
	broker := redolog.NewBroker()
	r := New(broker, nil, 1, simnet.ASASite)
	p := newPart(3)
	r.Subscribe(3, p, 0)
	if !r.Subscribed(3) {
		t.Fatal("not subscribed")
	}
	r.Unsubscribe(3)
	broker.Append(insertRec(3, 1, 1))
	if _, err := r.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if p.Version() != 0 {
		t.Error("unsubscribed partition advanced")
	}
}

func TestSubscribeFromOffsetSkipsHistory(t *testing.T) {
	broker := redolog.NewBroker()
	broker.Append(insertRec(3, 1, 1)) // history (already in snapshot)
	r := New(broker, nil, 1, simnet.ASASite)
	p := newPart(3)
	// Install "snapshot" containing row 1, then subscribe past it.
	if err := p.Load([]schema.Row{{ID: 1, Vals: []types.Value{types.NewInt64(1), types.NewString("v")}}}, 1); err != nil {
		t.Fatal(err)
	}
	r.Subscribe(3, p, broker.EndOffset(3))
	broker.Append(insertRec(3, 2, 2))
	if _, err := r.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if n := len(p.ExtractAll(storage.Latest)); n != 2 {
		t.Errorf("rows = %d", n)
	}
}

func TestBackgroundRun(t *testing.T) {
	broker := redolog.NewBroker()
	r := New(broker, nil, 1, simnet.ASASite)
	p := newPart(3)
	r.Subscribe(3, p, 0)
	stop := make(chan struct{})
	go r.Run(time.Millisecond, stop)
	broker.Append(insertRec(3, 1, 1))
	deadline := time.After(time.Second)
	for p.Version() < 1 {
		select {
		case <-deadline:
			t.Fatal("background replication never applied")
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
}

func TestNetworkCharged(t *testing.T) {
	broker := redolog.NewBroker()
	nw := simnet.New(simnet.Config{BaseLatency: 0})
	r := New(broker, nw, 2, simnet.ASASite)
	p := newPart(3)
	r.Subscribe(3, p, 0)
	broker.Append(insertRec(3, 1, 1))
	if _, err := r.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if st := nw.Stats(simnet.ASASite, 2); st.Messages != 1 || st.Bytes == 0 {
		t.Errorf("link stats = %+v", st)
	}
}

func TestOffsetsTrackConsumption(t *testing.T) {
	broker := redolog.NewBroker()
	r := New(broker, nil, 1, simnet.ASASite)
	r.Subscribe(7, newPart(7), 0)
	r.Subscribe(8, newPart(8), 2)

	offs := r.Offsets()
	if offs[7] != 0 || offs[8] != 2 {
		t.Fatalf("initial offsets = %v", offs)
	}

	broker.Append(insertRec(7, 1, 1))
	broker.Append(insertRec(7, 2, 2))
	if _, err := r.PollOnce(); err != nil {
		t.Fatal(err)
	}
	offs = r.Offsets()
	if offs[7] != 2 {
		t.Errorf("offset after poll = %d, want 2", offs[7])
	}

	// Truncating below the consumed offset must not disturb replication:
	// subsequent polls resume from the consumed offset.
	broker.Truncate(7, offs[7])
	broker.Append(insertRec(7, 3, 3))
	n, err := r.PollOnce()
	if err != nil || n != 1 {
		t.Fatalf("poll after truncate = %d, %v", n, err)
	}
	if offs = r.Offsets(); offs[7] != 3 {
		t.Errorf("offset after truncate+poll = %d, want 3", offs[7])
	}

	r.Unsubscribe(8)
	if _, ok := r.Offsets()[8]; ok {
		t.Error("unsubscribed partition still reported")
	}
}

func TestParallelPollOnceAppliesAllSubscriptions(t *testing.T) {
	// More subscriptions than workers: the sharded PollOnce must still
	// visit every subscription and apply everything pending.
	broker := redolog.NewBroker()
	r := New(broker, nil, 1, simnet.ASASite)
	r.Workers = 4
	const parts = 16
	ps := make([]*partition.Partition, parts)
	for i := 0; i < parts; i++ {
		pid := partition.ID(i + 1)
		ps[i] = newPart(pid)
		r.Subscribe(pid, ps[i], 0)
		for v := uint64(1); v <= 5; v++ {
			broker.Append(insertRec(pid, v, schema.RowID(v)))
		}
	}
	n, err := r.PollOnce()
	if err != nil || n != parts*5 {
		t.Fatalf("applied %d, %v; want %d", n, err, parts*5)
	}
	for i, p := range ps {
		if p.Version() != 5 {
			t.Errorf("partition %d version = %d", i+1, p.Version())
		}
		if _, ok := p.Get(5, []schema.ColID{0}, storage.Latest); !ok {
			t.Errorf("partition %d missing replicated row", i+1)
		}
	}
}

func TestPollOnceConcurrentWithUnsubscribe(t *testing.T) {
	// Unsubscribe racing a parallel PollOnce must never let a dead
	// subscription apply afterwards: once Unsubscribe returns, the
	// partition's state is frozen from replication's point of view.
	broker := redolog.NewBroker()
	r := New(broker, nil, 1, simnet.ASASite)
	r.Workers = 4
	const parts = 8
	ps := make([]*partition.Partition, parts)
	for i := 0; i < parts; i++ {
		pid := partition.ID(i + 1)
		ps[i] = newPart(pid)
		r.Subscribe(pid, ps[i], 0)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < parts; i++ {
				broker.Append(insertRec(partition.ID(i+1), v, schema.RowID(v)))
			}
			if _, err := r.PollOnce(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond)
	victim := ps[3]
	r.Unsubscribe(4)
	frozen := victim.Version()
	time.Sleep(2 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := victim.Version(); got != frozen {
		t.Errorf("unsubscribed partition advanced %d -> %d", frozen, got)
	}
}
