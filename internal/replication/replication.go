// Package replication implements Proteus' lazy per-partition replication
// (§4.2): replica sites subscribe to a partition's redo log, poll updates
// into per-partition queues, and apply them either in the background or
// on demand when a transaction needs a replica caught up to a snapshot
// version (the SSSI freshness wait, whose duration feeds the "waiting for
// updates" cost function of Table 1).
package replication

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/faults"
	"proteus/internal/obs"
	"proteus/internal/partition"
	"proteus/internal/redolog"
	"proteus/internal/simnet"
	"proteus/internal/vclock"
)

// DefaultCatchUpDeadline bounds synchronous catch-up waits.
const DefaultCatchUpDeadline = 5 * time.Second

// DefaultPollBackoff is the yield between catch-up polls.
const DefaultPollBackoff = 50 * time.Microsecond

// Replicator manages one site's replica subscriptions.
type Replicator struct {
	broker *redolog.Broker
	net    *simnet.Network
	site   simnet.SiteID
	// Exec, when set, runs background apply batches on the site's
	// transaction-execution resources, so update propagation competes for
	// the same compute as transactions (the paper's replication threads
	// co-operate with transaction execution threads). Synchronous
	// CatchUp calls bypass it to avoid self-deadlock from pooled callers.
	Exec func(func())
	// CatchUpDeadline bounds a synchronous CatchUp before it returns the
	// typed faults.ErrTimeout (DefaultCatchUpDeadline when 0).
	CatchUpDeadline time.Duration
	// PollBackoff is the yield between catch-up polls while waiting for
	// the master's commit record (DefaultPollBackoff when 0).
	PollBackoff time.Duration
	// Workers bounds the subscriptions polled and applied concurrently by
	// PollOnce (the per-subscription worker pool). <= 1 polls serially.
	Workers int
	// Clk is the clock the poll ticker and catch-up waits run on; nil
	// means the wall clock. Set before Run/CatchUp are first used.
	Clk vclock.Clock
	// brokerSite is where the log broker "runs"; polls charge network
	// round-trips to it (the paper dedicates two machines to Kafka).
	brokerSite simnet.SiteID

	mu   sync.Mutex
	subs map[partition.ID]*subscription

	applied atomic.Int64
	waits   int64
	waitDur time.Duration

	// Optional observability instruments (SetObs).
	obsBatches *obs.Counter // apply batches with at least one record
	obsRecords *obs.Counter // records applied in batches
}

type subscription struct {
	mu     sync.Mutex
	p      *partition.Partition
	offset int64
	queue  []redolog.Record // polled but not yet applied
	// dead is set under mu when the subscription is removed. A PollOnce
	// round snapshots subscription pointers before working through them, so
	// an unsubscribe (failover promotion, master change, replica removal)
	// can race a worker still holding the pointer: without the flag the
	// worker could apply a stale record to a copy that has since been
	// promoted and taken newer writes, silently regressing committed data.
	dead bool
}

// New creates a replicator for one site.
func New(broker *redolog.Broker, net *simnet.Network, site, brokerSite simnet.SiteID) *Replicator {
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	return &Replicator{
		broker:     broker,
		net:        net,
		site:       site,
		brokerSite: brokerSite,
		Workers:    workers,
		subs:       make(map[partition.ID]*subscription),
	}
}

// SetObs installs apply-batch instruments under the given name prefix:
// <prefix>repl.apply.batches (apply rounds that installed at least one
// record) and <prefix>repl.apply.records (records installed by them).
func (r *Replicator) clock() vclock.Clock { return vclock.OrWall(r.Clk) }

func (r *Replicator) SetObs(reg *obs.Registry, prefix string) {
	r.obsBatches = reg.Counter(prefix + "repl.apply.batches")
	r.obsRecords = reg.Counter(prefix + "repl.apply.records")
}

// Subscribe registers a replica partition, consuming the log from offset.
func (r *Replicator) Subscribe(pid partition.ID, p *partition.Partition, offset int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.subs[pid]; ok {
		kill(old)
	}
	r.subs[pid] = &subscription{p: p, offset: offset}
}

// kill marks a removed subscription so in-flight poll/apply rounds that
// still hold its pointer become no-ops instead of mutating the copy.
func kill(s *subscription) {
	s.mu.Lock()
	s.dead = true
	s.mu.Unlock()
}

// Unsubscribe stops replicating a partition (replica removal, §4.4). When
// it returns, no poll or apply will touch the copy again.
func (r *Replicator) Unsubscribe(pid partition.ID) {
	r.mu.Lock()
	s := r.subs[pid]
	delete(r.subs, pid)
	r.mu.Unlock()
	if s != nil {
		kill(s)
	}
}

// Reset drops every subscription — a site crash loses the subscriber's
// in-memory queues and offsets; recovery re-subscribes from the rebuilt
// copies' replay positions.
func (r *Replicator) Reset() {
	r.mu.Lock()
	old := r.subs
	r.subs = make(map[partition.ID]*subscription)
	r.mu.Unlock()
	for _, s := range old {
		kill(s)
	}
}

// Subscribed reports whether the partition is replicated here.
func (r *Replicator) Subscribed(pid partition.ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.subs[pid]
	return ok
}

func (r *Replicator) sub(pid partition.ID) *subscription {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subs[pid]
}

// pollInto fetches new records for one subscription into its queue,
// charging network for the transfer. A fault between this site and the
// broker (crash, partition, drop) fails the poll without advancing the
// offset, so no record is lost.
func (r *Replicator) pollInto(pid partition.ID, s *subscription) (int, error) {
	if r.net != nil {
		if err := r.net.Reachable(r.brokerSite, r.site); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	from, dead := s.offset, s.dead
	s.mu.Unlock()
	if dead {
		return 0, nil
	}
	recs, next := r.broker.Poll(pid, from, 0)
	if len(recs) == 0 {
		return 0, nil
	}
	if r.net != nil {
		n := 0
		for _, rec := range recs {
			n += approxRecordBytes(rec)
		}
		if _, err := r.net.Send(r.brokerSite, r.site, n); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.offset != from {
		return 0, nil // unsubscribed or someone else polled concurrently
	}
	s.queue = append(s.queue, recs...)
	s.offset = next
	return len(recs), nil
}

// queueShedCap is the backing-array size above which a fully drained
// subscription queue is released instead of recycled, so one write burst
// does not pin a burst-sized array for the life of the subscription.
const queueShedCap = 1024

// applyQueued drains a subscription's queue up to and including version
// upTo (or everything if upTo == 0) as one batch under a single queue-lock
// acquisition. The consumed prefix is recycled in place — records are
// shifted down and the freed tail slots zeroed so applied records'
// entries become collectable (the old head-pop `queue = queue[1:]`
// retained the whole backing array for as long as the subscription lived).
func (r *Replicator) applyQueued(s *subscription, upTo uint64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return 0, nil
	}
	applied := 0
	var err error
	for applied < len(s.queue) {
		rec := s.queue[applied]
		if upTo != 0 && rec.Version > upTo {
			break
		}
		// Skip records at or below the copy's version rather than
		// re-applying them: per-partition versions are strictly increasing,
		// so a low record is a duplicate and re-applying it would clobber
		// newer row data the copy already holds.
		if rec.Version > s.p.Version() {
			if err = redolog.Apply(s.p, rec); err != nil {
				break
			}
		}
		applied++
	}
	if applied > 0 {
		rest := copy(s.queue, s.queue[applied:])
		tail := s.queue[rest:]
		for i := range tail {
			tail[i] = redolog.Record{}
		}
		s.queue = s.queue[:rest]
		if rest == 0 && cap(s.queue) >= queueShedCap {
			s.queue = nil
		}
		r.applied.Add(int64(applied))
		if r.obsBatches != nil {
			r.obsBatches.Inc()
			r.obsRecords.Add(int64(applied))
		}
	}
	return applied, err
}

// pollAndApply fetches and installs one subscription's pending records,
// returning how many it applied and the joined poll/apply error.
func (r *Replicator) pollAndApply(pid partition.ID, s *subscription) (int, error) {
	var errs []error
	if _, err := r.pollInto(pid, s); err != nil {
		errs = append(errs, fmt.Errorf("poll partition %d: %w", pid, err))
		// Still apply whatever an earlier poll already queued.
	}
	n, err := r.applyQueued(s, 0)
	if err != nil {
		errs = append(errs, fmt.Errorf("apply partition %d: %w", pid, err))
	}
	return n, errors.Join(errs...)
}

// PollOnce polls every subscription and applies all queued updates,
// returning the number of records applied. Subscriptions are sharded over
// up to Workers goroutines, so one lagging partition's poll does not delay
// every other replica's freshness. One partition's poll or apply error does
// not abort the remaining subscriptions: every subscription is visited and
// the errors are joined.
func (r *Replicator) PollOnce() (int, error) {
	r.mu.Lock()
	pids := make([]partition.ID, 0, len(r.subs))
	subs := make([]*subscription, 0, len(r.subs))
	for pid, s := range r.subs {
		pids = append(pids, pid)
		subs = append(subs, s)
	}
	r.mu.Unlock()

	workers := r.Workers
	if workers > len(pids) {
		workers = len(pids)
	}
	if workers <= 1 {
		total := 0
		var errs []error
		for i, pid := range pids {
			n, err := r.pollAndApply(pid, subs[i])
			total += n
			if err != nil {
				errs = append(errs, err)
			}
		}
		return total, errors.Join(errs...)
	}

	var (
		next   atomic.Int64
		total  atomic.Int64
		errsMu sync.Mutex
		errs   []error
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pids) {
					return
				}
				n, err := r.pollAndApply(pids[i], subs[i])
				total.Add(int64(n))
				if err != nil {
					errsMu.Lock()
					errs = append(errs, err)
					errsMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return int(total.Load()), errors.Join(errs...)
}

// Drain polls and applies until the replica has consumed every record the
// broker currently retains for the partition — failover uses it to bring
// a promotion candidate fully up to date. It returns the replica's version
// afterwards; a fault on the broker path returns the typed error with the
// version reached so far.
func (r *Replicator) Drain(pid partition.ID) (uint64, error) {
	s := r.sub(pid)
	if s == nil {
		return 0, fmt.Errorf("replication: partition %d not subscribed", pid)
	}
	for {
		n, perr := r.pollInto(pid, s)
		if _, err := r.applyQueued(s, 0); err != nil {
			return s.p.Version(), err
		}
		if perr != nil {
			return s.p.Version(), perr
		}
		if n == 0 {
			s.mu.Lock()
			done := len(s.queue) == 0 && s.offset >= r.broker.EndOffset(pid)
			s.mu.Unlock()
			if done {
				return s.p.Version(), nil
			}
		}
	}
}

// CatchUp synchronously brings a replica to at least the given version —
// the cooperation between replication and transaction execution threads the
// paper describes for SSSI. It returns the time spent waiting. The wait is
// bounded by CatchUpDeadline, after which the typed faults.ErrTimeout
// surfaces; waiting on a crashed site fails fast with the poll's error.
func (r *Replicator) CatchUp(pid partition.ID, version uint64) (time.Duration, error) {
	s := r.sub(pid)
	if s == nil {
		return 0, fmt.Errorf("replication: partition %d not subscribed", pid)
	}
	deadline := r.CatchUpDeadline
	if deadline <= 0 {
		deadline = DefaultCatchUpDeadline
	}
	backoff := r.PollBackoff
	if backoff <= 0 {
		backoff = DefaultPollBackoff
	}
	clk := r.clock()
	start := clk.Now()
	for s.p.Version() < version {
		pollErr := error(nil)
		if _, err := r.pollInto(pid, s); err != nil {
			pollErr = err
			// Keep polling only faults a later poll can outlive (drops,
			// healing partitions); site-down and other terminal errors
			// fail fast — waiting out the deadline cannot fix them.
			if !faults.Retryable(err) || errors.Is(err, faults.ErrSiteDown) {
				return clk.Since(start), err
			}
		}
		if _, err := r.applyQueued(s, version); err != nil {
			return clk.Since(start), err
		}
		if s.p.Version() >= version {
			break
		}
		if clk.Since(start) > deadline {
			err := fmt.Errorf("replication: partition %d below version %d (at %d): %w",
				pid, version, s.p.Version(), faults.ErrTimeout)
			if pollErr != nil {
				err = fmt.Errorf("%w (last poll: %v)", err, pollErr)
			}
			return clk.Since(start), err
		}
		// The master may not have appended the commit record yet; yield.
		clk.Sleep(backoff)
	}
	d := clk.Since(start)
	r.mu.Lock()
	r.waits++
	r.waitDur += d
	r.mu.Unlock()
	return d, nil
}

// Offsets snapshots every subscription's consumed offset. Records below a
// subscription's offset are already polled into its queue (the queue holds
// copies), so the broker may safely truncate below the minimum of these.
func (r *Replicator) Offsets() map[partition.ID]int64 {
	r.mu.Lock()
	subs := make([]*subscription, 0, len(r.subs))
	pids := make([]partition.ID, 0, len(r.subs))
	for pid, s := range r.subs {
		pids = append(pids, pid)
		subs = append(subs, s)
	}
	r.mu.Unlock()
	out := make(map[partition.ID]int64, len(subs))
	for i, s := range subs {
		s.mu.Lock()
		out[pids[i]] = s.offset
		s.mu.Unlock()
	}
	return out
}

// Lag reports how many log records the replica has not yet applied.
func (r *Replicator) Lag(pid partition.ID) int64 {
	s := r.sub(pid)
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return (r.broker.EndOffset(pid) - s.offset) + int64(len(s.queue))
}

// Run polls in the background until stop is closed (the paper's
// replication threads). interval is the poll period.
func (r *Replicator) Run(interval time.Duration, stop <-chan struct{}) {
	t := r.clock().NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if r.Exec != nil {
				r.Exec(func() { _, _ = r.PollOnce() })
			} else {
				_, _ = r.PollOnce()
			}
		}
	}
}

// Applied reports cumulative applied records.
func (r *Replicator) Applied() int64 { return r.applied.Load() }

// approxRecordBytes estimates a record's wire size for network charging.
func approxRecordBytes(rec redolog.Record) int {
	n := 24
	for _, e := range rec.Entries {
		n += 16 + 8*len(e.Cols)
		for range e.Vals {
			n += 12
		}
	}
	return n
}
