// Package replication implements Proteus' lazy per-partition replication
// (§4.2): replica sites subscribe to a partition's redo log, poll updates
// into per-partition queues, and apply them either in the background or
// on demand when a transaction needs a replica caught up to a snapshot
// version (the SSSI freshness wait, whose duration feeds the "waiting for
// updates" cost function of Table 1).
package replication

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"proteus/internal/faults"
	"proteus/internal/partition"
	"proteus/internal/redolog"
	"proteus/internal/simnet"
)

// DefaultCatchUpDeadline bounds synchronous catch-up waits.
const DefaultCatchUpDeadline = 5 * time.Second

// DefaultPollBackoff is the yield between catch-up polls.
const DefaultPollBackoff = 50 * time.Microsecond

// Replicator manages one site's replica subscriptions.
type Replicator struct {
	broker *redolog.Broker
	net    *simnet.Network
	site   simnet.SiteID
	// Exec, when set, runs background apply batches on the site's
	// transaction-execution resources, so update propagation competes for
	// the same compute as transactions (the paper's replication threads
	// co-operate with transaction execution threads). Synchronous
	// CatchUp calls bypass it to avoid self-deadlock from pooled callers.
	Exec func(func())
	// CatchUpDeadline bounds a synchronous CatchUp before it returns the
	// typed faults.ErrTimeout (DefaultCatchUpDeadline when 0).
	CatchUpDeadline time.Duration
	// PollBackoff is the yield between catch-up polls while waiting for
	// the master's commit record (DefaultPollBackoff when 0).
	PollBackoff time.Duration
	// brokerSite is where the log broker "runs"; polls charge network
	// round-trips to it (the paper dedicates two machines to Kafka).
	brokerSite simnet.SiteID

	mu   sync.Mutex
	subs map[partition.ID]*subscription

	applied int64
	waits   int64
	waitDur time.Duration
}

type subscription struct {
	mu     sync.Mutex
	p      *partition.Partition
	offset int64
	queue  []redolog.Record // polled but not yet applied
}

// New creates a replicator for one site.
func New(broker *redolog.Broker, net *simnet.Network, site, brokerSite simnet.SiteID) *Replicator {
	return &Replicator{
		broker:     broker,
		net:        net,
		site:       site,
		brokerSite: brokerSite,
		subs:       make(map[partition.ID]*subscription),
	}
}

// Subscribe registers a replica partition, consuming the log from offset.
func (r *Replicator) Subscribe(pid partition.ID, p *partition.Partition, offset int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs[pid] = &subscription{p: p, offset: offset}
}

// Unsubscribe stops replicating a partition (replica removal, §4.4).
func (r *Replicator) Unsubscribe(pid partition.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.subs, pid)
}

// Reset drops every subscription — a site crash loses the subscriber's
// in-memory queues and offsets; recovery re-subscribes from the rebuilt
// copies' replay positions.
func (r *Replicator) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs = make(map[partition.ID]*subscription)
}

// Subscribed reports whether the partition is replicated here.
func (r *Replicator) Subscribed(pid partition.ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.subs[pid]
	return ok
}

func (r *Replicator) sub(pid partition.ID) *subscription {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subs[pid]
}

// pollInto fetches new records for one subscription into its queue,
// charging network for the transfer. A fault between this site and the
// broker (crash, partition, drop) fails the poll without advancing the
// offset, so no record is lost.
func (r *Replicator) pollInto(pid partition.ID, s *subscription) (int, error) {
	if r.net != nil {
		if err := r.net.Reachable(r.brokerSite, r.site); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	from := s.offset
	s.mu.Unlock()
	recs, next := r.broker.Poll(pid, from, 0)
	if len(recs) == 0 {
		return 0, nil
	}
	if r.net != nil {
		n := 0
		for _, rec := range recs {
			n += approxRecordBytes(rec)
		}
		if _, err := r.net.Send(r.brokerSite, r.site, n); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.offset != from {
		return 0, nil // someone else polled concurrently
	}
	s.queue = append(s.queue, recs...)
	s.offset = next
	return len(recs), nil
}

// applyQueued drains a subscription's queue up to and including version
// upTo (or everything if upTo == 0).
func (r *Replicator) applyQueued(s *subscription, upTo uint64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	applied := 0
	for len(s.queue) > 0 {
		rec := s.queue[0]
		if upTo != 0 && rec.Version > upTo {
			break
		}
		if err := redolog.Apply(s.p, rec); err != nil {
			return applied, err
		}
		s.queue = s.queue[1:]
		applied++
	}
	r.mu.Lock()
	r.applied += int64(applied)
	r.mu.Unlock()
	return applied, nil
}

// PollOnce polls every subscription and applies all queued updates,
// returning the number of records applied. One partition's poll or apply
// error no longer aborts the remaining subscriptions: every subscription
// is visited and the errors are joined.
func (r *Replicator) PollOnce() (int, error) {
	r.mu.Lock()
	pids := make([]partition.ID, 0, len(r.subs))
	for pid := range r.subs {
		pids = append(pids, pid)
	}
	r.mu.Unlock()

	total := 0
	var errs []error
	for _, pid := range pids {
		s := r.sub(pid)
		if s == nil {
			continue
		}
		if _, err := r.pollInto(pid, s); err != nil {
			errs = append(errs, fmt.Errorf("poll partition %d: %w", pid, err))
			// Still apply whatever an earlier poll already queued.
		}
		n, err := r.applyQueued(s, 0)
		total += n
		if err != nil {
			errs = append(errs, fmt.Errorf("apply partition %d: %w", pid, err))
		}
	}
	return total, errors.Join(errs...)
}

// Drain polls and applies until the replica has consumed every record the
// broker currently retains for the partition — failover uses it to bring
// a promotion candidate fully up to date. It returns the replica's version
// afterwards; a fault on the broker path returns the typed error with the
// version reached so far.
func (r *Replicator) Drain(pid partition.ID) (uint64, error) {
	s := r.sub(pid)
	if s == nil {
		return 0, fmt.Errorf("replication: partition %d not subscribed", pid)
	}
	for {
		n, perr := r.pollInto(pid, s)
		if _, err := r.applyQueued(s, 0); err != nil {
			return s.p.Version(), err
		}
		if perr != nil {
			return s.p.Version(), perr
		}
		if n == 0 {
			s.mu.Lock()
			done := len(s.queue) == 0 && s.offset >= r.broker.EndOffset(pid)
			s.mu.Unlock()
			if done {
				return s.p.Version(), nil
			}
		}
	}
}

// CatchUp synchronously brings a replica to at least the given version —
// the cooperation between replication and transaction execution threads the
// paper describes for SSSI. It returns the time spent waiting. The wait is
// bounded by CatchUpDeadline, after which the typed faults.ErrTimeout
// surfaces; waiting on a crashed site fails fast with the poll's error.
func (r *Replicator) CatchUp(pid partition.ID, version uint64) (time.Duration, error) {
	s := r.sub(pid)
	if s == nil {
		return 0, fmt.Errorf("replication: partition %d not subscribed", pid)
	}
	deadline := r.CatchUpDeadline
	if deadline <= 0 {
		deadline = DefaultCatchUpDeadline
	}
	backoff := r.PollBackoff
	if backoff <= 0 {
		backoff = DefaultPollBackoff
	}
	start := time.Now()
	for s.p.Version() < version {
		pollErr := error(nil)
		if _, err := r.pollInto(pid, s); err != nil {
			pollErr = err
			if errors.Is(err, faults.ErrSiteDown) {
				return time.Since(start), err
			}
		}
		if _, err := r.applyQueued(s, version); err != nil {
			return time.Since(start), err
		}
		if s.p.Version() >= version {
			break
		}
		if time.Since(start) > deadline {
			err := fmt.Errorf("replication: partition %d below version %d (at %d): %w",
				pid, version, s.p.Version(), faults.ErrTimeout)
			if pollErr != nil {
				err = fmt.Errorf("%w (last poll: %v)", err, pollErr)
			}
			return time.Since(start), err
		}
		// The master may not have appended the commit record yet; yield.
		time.Sleep(backoff)
	}
	d := time.Since(start)
	r.mu.Lock()
	r.waits++
	r.waitDur += d
	r.mu.Unlock()
	return d, nil
}

// Offsets snapshots every subscription's consumed offset. Records below a
// subscription's offset are already polled into its queue (the queue holds
// copies), so the broker may safely truncate below the minimum of these.
func (r *Replicator) Offsets() map[partition.ID]int64 {
	r.mu.Lock()
	subs := make([]*subscription, 0, len(r.subs))
	pids := make([]partition.ID, 0, len(r.subs))
	for pid, s := range r.subs {
		pids = append(pids, pid)
		subs = append(subs, s)
	}
	r.mu.Unlock()
	out := make(map[partition.ID]int64, len(subs))
	for i, s := range subs {
		s.mu.Lock()
		out[pids[i]] = s.offset
		s.mu.Unlock()
	}
	return out
}

// Lag reports how many log records the replica has not yet applied.
func (r *Replicator) Lag(pid partition.ID) int64 {
	s := r.sub(pid)
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return (r.broker.EndOffset(pid) - s.offset) + int64(len(s.queue))
}

// Run polls in the background until stop is closed (the paper's
// replication threads). interval is the poll period.
func (r *Replicator) Run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if r.Exec != nil {
				r.Exec(func() { _, _ = r.PollOnce() })
			} else {
				_, _ = r.PollOnce()
			}
		}
	}
}

// Applied reports cumulative applied records.
func (r *Replicator) Applied() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// approxRecordBytes estimates a record's wire size for network charging.
func approxRecordBytes(rec redolog.Record) int {
	n := 24
	for _, e := range rec.Entries {
		n += 16 + 8*len(e.Cols)
		for range e.Vals {
			n += 12
		}
	}
	return n
}
