// Package server exposes a Proteus engine over TCP via net/rpc with gob
// encoding — the repository's stand-in for the paper's Thrift RPC surface
// when running the system as a real network service (cmd/proteusd). The
// same Service type backs the embedded CLI, so local and remote execution
// share one statement path.
package server

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"proteus/internal/cluster"
	"proteus/internal/exec"
	"proteus/internal/obs"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/sqlparse"
)

// Service executes SQL statements against an engine on behalf of sessions.
type Service struct {
	Eng *cluster.Engine

	mu       sync.Mutex
	sessions map[uint64]*cluster.Session
	nextSess uint64
}

// NewService wraps an engine.
func NewService(eng *cluster.Engine) *Service {
	return &Service{Eng: eng, sessions: make(map[uint64]*cluster.Session)}
}

// OpenArgs is the OpenSession request (empty; reserved for options).
type OpenArgs struct{}

// OpenReply returns the new session id.
type OpenReply struct{ Session uint64 }

// OpenSession creates a client session (SSSI watermark holder).
func (s *Service) OpenSession(_ *OpenArgs, reply *OpenReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSess++
	s.sessions[s.nextSess] = s.Eng.NewSession()
	reply.Session = s.nextSess
	return nil
}

func (s *Service) session(id uint64) (*cluster.Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("server: unknown session %d", id)
	}
	return sess, nil
}

// ExecArgs is one SQL statement bound to a session.
type ExecArgs struct {
	Session uint64
	SQL     string
}

// ExecReply carries a rendered result: column labels and stringified rows.
type ExecReply struct {
	Cols []string
	Rows [][]string
	// Message reports DDL/DML outcomes with no result set.
	Message string
}

// Exec parses and executes one statement.
func (s *Service) Exec(args *ExecArgs, reply *ExecReply) error {
	sess, err := s.session(args.Session)
	if err != nil {
		return err
	}
	if sqlparse.IsCreate(args.SQL) {
		ct, err := sqlparse.ParseCreate(args.SQL)
		if err != nil {
			return err
		}
		spec := cluster.TableSpec{Name: ct.Name, Cols: ct.Cols}
		if ct.MaxRows > 0 {
			spec.MaxRows = schema.RowID(ct.MaxRows)
		}
		spec.Partitions = ct.Partitions
		if _, err := s.Eng.CreateTable(spec); err != nil {
			return err
		}
		reply.Message = fmt.Sprintf("table %s created", ct.Name)
		return nil
	}
	req, err := sqlparse.Parse(s.Eng.Catalog, args.SQL)
	if err != nil {
		return err
	}
	var rel exec.Rel
	if req.IsOLTP() {
		rel, err = s.Eng.ExecuteTxn(context.Background(), sess, req.Txn)
		if err == nil && len(rel.Tuples) == 0 {
			reply.Message = "ok"
		}
	} else {
		rel, err = s.Eng.ExecuteQuery(context.Background(), sess, req.Query)
	}
	if err != nil {
		return err
	}
	reply.Cols = rel.Cols
	for _, t := range rel.Tuples {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
		}
		reply.Rows = append(reply.Rows, row)
	}
	return nil
}

// LayoutArgs requests the layout report.
type LayoutArgs struct{}

// LayoutReply returns layout kind -> copy count.
type LayoutReply struct{ Counts map[string]int }

// Layouts reports the cluster's current physical design.
func (s *Service) Layouts(_ *LayoutArgs, reply *LayoutReply) error {
	reply.Counts = s.Eng.LayoutCounts()
	return nil
}

// StatsArgs requests the observability snapshot. TraceLimit caps how many
// recent advisor decisions are returned (0 = all retained).
type StatsArgs struct{ TraceLimit int }

// StatsReply carries the metrics snapshot and the ASA decision trace.
type StatsReply struct {
	Metrics obs.Snapshot
	Trace   []obs.Decision
}

// Stats reports the engine's metrics and recent advisor decisions.
func (s *Service) Stats(args *StatsArgs, reply *StatsReply) error {
	reply.Metrics = s.Eng.MetricsSnapshot()
	if s.Eng.Trace != nil {
		reply.Trace = s.Eng.Trace.Recent(args.TraceLimit)
	}
	return nil
}

// FaultArgs is one fault-injection command: Cmd is "crash", "recover",
// "partition", "heal" or "status". Site names the target site for
// crash/recover; Groups lists the site groups for partition.
type FaultArgs struct {
	Cmd    string
	Site   int
	Groups [][]int
}

// FaultReply reports the command outcome and the cluster's fault state.
type FaultReply struct {
	Message     string
	Down        []int
	Partitioned bool
}

// Fault injects or clears a fault on the running engine (crash a site,
// recover it, partition the interconnect, heal it) and reports the
// current fault state.
func (s *Service) Fault(args *FaultArgs, reply *FaultReply) error {
	*reply = FaultReply{} // net/rpc may reuse reply values
	switch args.Cmd {
	case "crash":
		if err := s.Eng.CrashSite(simnet.SiteID(args.Site)); err != nil {
			return err
		}
		reply.Message = fmt.Sprintf("site %d crashed", args.Site)
	case "recover":
		if err := s.Eng.RecoverSite(simnet.SiteID(args.Site)); err != nil {
			return err
		}
		reply.Message = fmt.Sprintf("site %d recovered", args.Site)
	case "partition":
		if len(args.Groups) < 2 {
			return fmt.Errorf("server: partition needs at least two groups")
		}
		groups := make([][]simnet.SiteID, len(args.Groups))
		for i, g := range args.Groups {
			for _, s := range g {
				groups[i] = append(groups[i], simnet.SiteID(s))
			}
		}
		s.Eng.PartitionNet(groups...)
		reply.Message = fmt.Sprintf("network partitioned into %d groups", len(groups))
	case "heal":
		s.Eng.HealNet()
		reply.Message = "network healed"
	case "status":
		reply.Message = "fault status"
	default:
		return fmt.Errorf("server: unknown fault command %q", args.Cmd)
	}
	for _, id := range s.Eng.Faults.DownSites() {
		reply.Down = append(reply.Down, int(id))
	}
	reply.Partitioned = s.Eng.Faults.Partitioned()
	return nil
}

// Serve listens on addr and serves RPC until the listener fails.
func Serve(svc *Service, addr string) (net.Listener, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Proteus", svc); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln, nil
}
