package server

import (
	"net/rpc"
	"testing"

	"proteus/internal/cluster"
	"proteus/internal/simnet"
)

func testService(t *testing.T) *Service {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Net = simnet.Config{}
	eng := cluster.New(cfg)
	t.Cleanup(eng.Close)
	return NewService(eng)
}

func openSession(t *testing.T, svc *Service) uint64 {
	t.Helper()
	var open OpenReply
	if err := svc.OpenSession(&OpenArgs{}, &open); err != nil {
		t.Fatal(err)
	}
	return open.Session
}

func mustExec(t *testing.T, svc *Service, sess uint64, sql string) ExecReply {
	t.Helper()
	var reply ExecReply
	if err := svc.Exec(&ExecArgs{Session: sess, SQL: sql}, &reply); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return reply
}

func TestEndToEndSQL(t *testing.T) {
	svc := testService(t)
	sess := openSession(t, svc)

	r := mustExec(t, svc, sess, "CREATE TABLE orders (oid BIGINT, amount DOUBLE, note VARCHAR(16)) MAXROWS 1000 PARTITIONS 2")
	if r.Message == "" {
		t.Error("no DDL message")
	}
	mustExec(t, svc, sess, "INSERT INTO orders VALUES (1, 1, 10.5, 'a')")
	mustExec(t, svc, sess, "INSERT INTO orders VALUES (2, 2, 4.5, 'b')")
	mustExec(t, svc, sess, "UPDATE orders SET amount = 20 WHERE id = 1")

	r = mustExec(t, svc, sess, "SELECT SUM(amount), COUNT(*) FROM orders")
	if len(r.Rows) != 1 || r.Rows[0][0] != "24.5" || r.Rows[0][1] != "2" {
		t.Errorf("aggregate = %v", r.Rows)
	}

	mustExec(t, svc, sess, "DELETE FROM orders WHERE id = 2")
	r = mustExec(t, svc, sess, "SELECT COUNT(*) FROM orders")
	if r.Rows[0][0] != "1" {
		t.Errorf("count after delete = %v", r.Rows)
	}

	var lr LayoutReply
	if err := svc.Layouts(&LayoutArgs{}, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Counts) == 0 {
		t.Error("no layouts reported")
	}
}

func TestSessionValidation(t *testing.T) {
	svc := testService(t)
	var reply ExecReply
	if err := svc.Exec(&ExecArgs{Session: 999, SQL: "SELECT 1"}, &reply); err == nil {
		t.Error("unknown session accepted")
	}
}

func TestErrorsPropagate(t *testing.T) {
	svc := testService(t)
	sess := openSession(t, svc)
	var reply ExecReply
	if err := svc.Exec(&ExecArgs{Session: sess, SQL: "SELECT nope FROM missing"}, &reply); err == nil {
		t.Error("bad SQL accepted")
	}
	if err := svc.Exec(&ExecArgs{Session: sess, SQL: "CREATE TABLE broken ("}, &reply); err == nil {
		t.Error("bad DDL accepted")
	}
}

func TestServeOverTCP(t *testing.T) {
	svc := testService(t)
	ln, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	c, err := rpc.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var open OpenReply
	if err := c.Call("Proteus.OpenSession", &OpenArgs{}, &open); err != nil {
		t.Fatal(err)
	}
	var reply ExecReply
	if err := c.Call("Proteus.Exec", &ExecArgs{
		Session: open.Session,
		SQL:     "CREATE TABLE kv (k BIGINT, v VARCHAR(8)) MAXROWS 100",
	}, &reply); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("Proteus.Exec", &ExecArgs{
		Session: open.Session, SQL: "INSERT INTO kv VALUES (7, 7, 'hello')",
	}, &reply); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("Proteus.Exec", &ExecArgs{
		Session: open.Session, SQL: "SELECT COUNT(*) FROM kv",
	}, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Rows) != 1 || reply.Rows[0][0] != "1" {
		t.Errorf("remote count = %v", reply.Rows)
	}
}

func TestFaultRPC(t *testing.T) {
	svc := testService(t)
	sess := openSession(t, svc)
	mustExec(t, svc, sess, "CREATE TABLE kv (k BIGINT, v DOUBLE) MAXROWS 100 PARTITIONS 2")
	mustExec(t, svc, sess, "INSERT INTO kv VALUES (1, 1, 2.5)")

	var fr FaultReply
	if err := svc.Fault(&FaultArgs{Cmd: "crash", Site: 1}, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Down) != 1 || fr.Down[0] != 1 {
		t.Fatalf("down sites after crash = %v", fr.Down)
	}
	if err := svc.Fault(&FaultArgs{Cmd: "partition", Groups: [][]int{{0}, {1}}}, &fr); err != nil {
		t.Fatal(err)
	}
	if !fr.Partitioned {
		t.Fatal("partition not reported")
	}
	if err := svc.Fault(&FaultArgs{Cmd: "heal"}, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Partitioned {
		t.Fatal("heal did not clear the partition")
	}
	if err := svc.Fault(&FaultArgs{Cmd: "recover", Site: 1}, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Down) != 0 {
		t.Fatalf("down sites after recover = %v", fr.Down)
	}
	if err := svc.Fault(&FaultArgs{Cmd: "bogus"}, &fr); err == nil {
		t.Fatal("unknown fault command accepted")
	}
	// The cluster still serves requests after the crash/recover cycle.
	r := mustExec(t, svc, sess, "SELECT COUNT(*) FROM kv")
	if r.Rows[0][0] != "1" {
		t.Errorf("count after recovery = %v", r.Rows)
	}
}
