// Package disksim provides a simulated block storage device standing in for
// the 1 TB hard disks of the paper's testbed. The simulation preserves the
// three properties the paper's disk tier contributes to system behaviour:
// serialized (not directly addressable) data, block-access latency, and a
// capacity limit that triggers the ASA's storage-pressure responses
// (§5.3.2). Latency is modelled as seek + size/throughput and charged by
// sleeping, so disk-resident layouts are measurably slower than memory.
package disksim

import (
	"errors"
	"sync"
	"time"

	"proteus/internal/vclock"
)

// BlockID names one stored extent on a device.
type BlockID int64

// ErrCapacity is returned when a write would exceed the device capacity.
var ErrCapacity = errors.New("disksim: device capacity exceeded")

// ErrNoBlock is returned when reading or freeing an unknown block.
var ErrNoBlock = errors.New("disksim: no such block")

// Config sets the performance envelope of a simulated device.
type Config struct {
	// Capacity in bytes; 0 means unlimited.
	Capacity int64
	// SeekLatency is charged once per read or write.
	SeekLatency time.Duration
	// BytesPerSecond is the sequential transfer rate; 0 disables the
	// transfer-time charge.
	BytesPerSecond float64
}

// DefaultConfig models a modest HDD scaled for microsecond-scale tests:
// 60 us seek, 500 MB/s transfer, unlimited capacity.
func DefaultConfig() Config {
	return Config{SeekLatency: 60 * time.Microsecond, BytesPerSecond: 500 << 20}
}

// Device is a simulated block device. It is safe for concurrent use.
type Device struct {
	cfg Config
	clk vclock.Clock

	mu     sync.Mutex
	blocks map[BlockID][]byte
	used   int64
	nextID BlockID
	reads  int64
	writes int64
}

// New creates a device with the given configuration.
func New(cfg Config) *Device {
	return &Device{cfg: cfg, clk: vclock.Wall{}, blocks: make(map[BlockID][]byte)}
}

// SetClock installs the clock access charges sleep on. Install before
// I/O starts (cluster.New does); nil restores the wall clock.
func (d *Device) SetClock(c vclock.Clock) {
	d.clk = vclock.OrWall(c)
}

// charge sleeps for the modelled access time of n bytes.
func (d *Device) charge(n int) {
	delay := d.cfg.SeekLatency
	if d.cfg.BytesPerSecond > 0 {
		delay += time.Duration(float64(n) / d.cfg.BytesPerSecond * float64(time.Second))
	}
	if delay > 0 {
		d.clk.Sleep(delay)
	}
}

// Write stores data as a new block and returns its ID.
func (d *Device) Write(data []byte) (BlockID, error) {
	d.mu.Lock()
	if d.cfg.Capacity > 0 && d.used+int64(len(data)) > d.cfg.Capacity {
		d.mu.Unlock()
		return 0, ErrCapacity
	}
	id := d.nextID
	d.nextID++
	cp := make([]byte, len(data))
	copy(cp, data)
	d.blocks[id] = cp
	d.used += int64(len(cp))
	d.writes++
	d.mu.Unlock()

	d.charge(len(data))
	return id, nil
}

// Rewrite replaces the contents of an existing block.
func (d *Device) Rewrite(id BlockID, data []byte) error {
	d.mu.Lock()
	old, ok := d.blocks[id]
	if !ok {
		d.mu.Unlock()
		return ErrNoBlock
	}
	delta := int64(len(data)) - int64(len(old))
	if d.cfg.Capacity > 0 && d.used+delta > d.cfg.Capacity {
		d.mu.Unlock()
		return ErrCapacity
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d.blocks[id] = cp
	d.used += delta
	d.writes++
	d.mu.Unlock()

	d.charge(len(data))
	return nil
}

// Read returns a copy of the block contents.
func (d *Device) Read(id BlockID) ([]byte, error) {
	d.mu.Lock()
	data, ok := d.blocks[id]
	if !ok {
		d.mu.Unlock()
		return nil, ErrNoBlock
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d.reads++
	d.mu.Unlock()

	d.charge(len(cp))
	return cp, nil
}

// ReadRange returns a copy of data[off:off+n] from the block, charging only
// for the bytes transferred (block-based point reads, §4.1.1).
func (d *Device) ReadRange(id BlockID, off, n int) ([]byte, error) {
	d.mu.Lock()
	data, ok := d.blocks[id]
	if !ok {
		d.mu.Unlock()
		return nil, ErrNoBlock
	}
	if off < 0 || off+n > len(data) {
		d.mu.Unlock()
		return nil, errors.New("disksim: read out of range")
	}
	cp := make([]byte, n)
	copy(cp, data[off:off+n])
	d.reads++
	d.mu.Unlock()

	d.charge(n)
	return cp, nil
}

// Free releases a block.
func (d *Device) Free(id BlockID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, ok := d.blocks[id]
	if !ok {
		return ErrNoBlock
	}
	d.used -= int64(len(data))
	delete(d.blocks, id)
	return nil
}

// Used reports the bytes currently stored.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Capacity reports the configured capacity (0 = unlimited).
func (d *Device) Capacity() int64 { return d.cfg.Capacity }

// Counters reports cumulative reads and writes.
func (d *Device) Counters() (reads, writes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}
