package disksim

import (
	"bytes"
	"testing"
	"time"
)

func TestWriteReadFree(t *testing.T) {
	d := New(Config{})
	id, err := d.Write([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(id)
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("read = %q, %v", got, err)
	}
	if d.Used() != 5 {
		t.Errorf("used = %d", d.Used())
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 0 {
		t.Errorf("used after free = %d", d.Used())
	}
	if _, err := d.Read(id); err != ErrNoBlock {
		t.Errorf("read freed block: %v", err)
	}
}

func TestReadRange(t *testing.T) {
	d := New(Config{})
	id, _ := d.Write([]byte("0123456789"))
	got, err := d.ReadRange(id, 3, 4)
	if err != nil || string(got) != "3456" {
		t.Fatalf("range = %q, %v", got, err)
	}
	if _, err := d.ReadRange(id, 8, 5); err == nil {
		t.Error("out-of-range read succeeded")
	}
}

func TestRewrite(t *testing.T) {
	d := New(Config{})
	id, _ := d.Write([]byte("aa"))
	if err := d.Rewrite(id, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 4 {
		t.Errorf("used = %d, want 4", d.Used())
	}
	got, _ := d.Read(id)
	if string(got) != "bbbb" {
		t.Errorf("read = %q", got)
	}
	if err := d.Rewrite(999, nil); err != ErrNoBlock {
		t.Errorf("rewrite missing: %v", err)
	}
}

func TestCapacityLimit(t *testing.T) {
	d := New(Config{Capacity: 10})
	if _, err := d.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(make([]byte, 8)); err != ErrCapacity {
		t.Errorf("over-capacity write: %v", err)
	}
}

func TestLatencyCharged(t *testing.T) {
	d := New(Config{SeekLatency: 2 * time.Millisecond})
	start := time.Now()
	if _, err := d.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("write took %v, expected >= 2ms seek charge", elapsed)
	}
}

func TestCounters(t *testing.T) {
	d := New(Config{})
	id, _ := d.Write([]byte("x"))
	_, _ = d.Read(id)
	_, _ = d.Read(id)
	r, w := d.Counters()
	if r != 2 || w != 1 {
		t.Errorf("counters = %d reads %d writes", r, w)
	}
}
