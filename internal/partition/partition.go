// Package partition implements Proteus' unit of storage-layout decisions
// (§2.1 of the paper): a partition is a contiguous range of rows and columns
// of one table, stored in one layout, with a zone map and a version counter.
// The package also implements the layout-change mechanisms of §4.4 —
// format/tier conversion via consistent-snapshot bulk loads, horizontal and
// vertical splits, and merges.
package partition

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/colstore"
	"proteus/internal/disksim"
	"proteus/internal/rowstore"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
	"proteus/internal/zonemap"
)

// ID uniquely identifies a partition across the cluster.
type ID uint64

// Bounds delimits the table cells a partition covers: rows in
// [RowStart, RowEnd) and columns in [ColStart, ColEnd), both over the
// owning table.
type Bounds struct {
	Table    schema.TableID
	RowStart schema.RowID
	RowEnd   schema.RowID
	ColStart schema.ColID
	ColEnd   schema.ColID
}

// String renders the bounds for debugging.
func (b Bounds) String() string {
	return fmt.Sprintf("t%d[r%d:%d,c%d:%d]", b.Table, b.RowStart, b.RowEnd, b.ColStart, b.ColEnd)
}

// ContainsRow reports whether a row id falls inside the bounds.
func (b Bounds) ContainsRow(id schema.RowID) bool { return id >= b.RowStart && id < b.RowEnd }

// ContainsCol reports whether a global column id falls inside the bounds.
func (b Bounds) ContainsCol(c schema.ColID) bool { return c >= b.ColStart && c < b.ColEnd }

// OverlapsRows reports whether [lo, hi) intersects the row range.
func (b Bounds) OverlapsRows(lo, hi schema.RowID) bool { return lo < b.RowEnd && hi > b.RowStart }

// NumCols reports the number of covered columns.
func (b Bounds) NumCols() int { return int(b.ColEnd - b.ColStart) }

// NumRows reports the size of the covered row range.
func (b Bounds) NumRows() int64 { return int64(b.RowEnd - b.RowStart) }

// LocalCol translates a global column id into the partition-local index.
func (b Bounds) LocalCol(c schema.ColID) schema.ColID { return c - b.ColStart }

// GlobalCol translates a partition-local column index back to the table's.
func (b Bounds) GlobalCol(c schema.ColID) schema.ColID { return c + b.ColStart }

// Factory builds stores for any layout, binding the disk tier to a device.
type Factory struct {
	// Dev backs disk-tier stores; required if any disk layout is built.
	Dev *disksim.Device
}

// NewStore creates an empty store with the given layout over the
// partition-local column kinds. The layout's SortBy is partition-local.
func (f Factory) NewStore(kinds []types.Kind, l storage.Layout) storage.Store {
	switch {
	case l.Format == storage.RowFormat && l.Tier == storage.MemoryTier:
		return rowstore.NewMem(kinds)
	case l.Format == storage.RowFormat && l.Tier == storage.DiskTier:
		return rowstore.NewDisk(kinds, f.Dev)
	case l.Format == storage.ColumnFormat && l.Tier == storage.MemoryTier:
		return colstore.NewMem(kinds, l.SortBy, l.Compressed)
	default:
		return colstore.NewDisk(kinds, f.Dev, l.SortBy, l.Compressed)
	}
}

// Partition is one replica of a partition's data in a concrete layout.
// Mutations and reads take partition-local column ids produced by
// Bounds.LocalCol; the site/executor layer performs the translation.
type Partition struct {
	ID     ID
	Bounds Bounds

	mu    sync.RWMutex // guards store swaps (layout changes)
	store storage.Store
	kinds []types.Kind
	zm    *zonemap.ZoneMap

	version  atomic.Uint64 // last committed (installed) version
	reserved atomic.Uint64 // highest version handed out by ReserveNext
}

// New creates an empty partition with the given layout. kinds are the
// partition-local column kinds (the slice [ColStart, ColEnd) of the table).
func New(id ID, b Bounds, kinds []types.Kind, l storage.Layout, f Factory) *Partition {
	return &Partition{
		ID:     id,
		Bounds: b,
		store:  f.NewStore(kinds, l),
		kinds:  kinds,
		zm:     zonemap.New(len(kinds)),
	}
}

// Layout reports the partition's current storage layout.
func (p *Partition) Layout() storage.Layout {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.store.Layout()
}

// Kinds returns the partition-local column kinds.
func (p *Partition) Kinds() []types.Kind { return p.kinds }

// Version reports the last committed version.
func (p *Partition) Version() uint64 { return p.version.Load() }

// SetVersion records a newly committed version (monotone).
func (p *Partition) SetVersion(v uint64) {
	for {
		cur := p.version.Load()
		if v <= cur || p.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// NextVersion atomically reserves the next commit version.
func (p *Partition) NextVersion() uint64 { return p.version.Add(1) }

// ReserveNext hands out the next commit version without making it visible.
// The reservation survives until a matching SetVersion installs it, so a
// commit pipeline can release partition locks before the batched install
// runs while later transactions still get strictly increasing versions.
func (p *Partition) ReserveNext() uint64 {
	for {
		cur := p.reserved.Load()
		next := cur
		if v := p.version.Load(); v > next {
			next = v
		}
		next++
		if p.reserved.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// ZoneMap exposes the partition's zone map.
func (p *Partition) ZoneMap() *zonemap.ZoneMap { return p.zm }

// Insert adds a row (local column order) at the given version.
func (p *Partition) Insert(row schema.Row, ver uint64) error {
	if !p.Bounds.ContainsRow(row.ID) {
		return fmt.Errorf("partition %d: row %d outside bounds %v", p.ID, row.ID, p.Bounds)
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if err := p.store.Insert(row, ver); err != nil {
		return err
	}
	p.zm.Observe(row.Vals)
	p.zm.ObserveID(row.ID)
	return nil
}

// Update rewrites the given local columns of a row at the given version.
func (p *Partition) Update(id schema.RowID, cols []schema.ColID, vals []types.Value, ver uint64) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if err := p.store.Update(id, cols, vals, ver); err != nil {
		return err
	}
	wide := make([]types.Value, len(p.kinds))
	for i, c := range cols {
		wide[c] = vals[i]
	}
	p.zm.Observe(wide)
	return nil
}

// Delete removes a row at the given version.
func (p *Partition) Delete(id schema.RowID, ver uint64) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.store.Delete(id, ver)
}

// Get reads a projection of one row at the snapshot version.
func (p *Partition) Get(id schema.RowID, cols []schema.ColID, snap uint64) (schema.Row, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.store.Get(id, cols, snap)
}

// Scan streams matching rows. The zone map short-circuits scans whose
// predicate provably matches nothing in this partition (§4.1.3).
func (p *Partition) Scan(cols []schema.ColID, pred storage.Pred, snap uint64, fn func(schema.Row) bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.zm.CanSkip(pred) {
		return
	}
	p.store.Scan(cols, pred, snap, fn)
}

// Morsel is one fixed-size scan unit: the rows of this partition with
// Lo <= id < Hi. Morsels are the scheduling quantum of the parallel scan
// executor; workers pull them independently.
type Morsel struct {
	Lo, Hi schema.RowID
}

// Morsels splits the partition's populated row range into units of roughly
// targetRows each. Stores that cannot address id ranges cheaply (value-
// sorted layouts, disk stores) yield a single morsel covering the populated
// span — parallelism then comes from scanning partitions concurrently. An
// empty partition yields nil.
func (p *Partition) Morsels(targetRows int) []Morsel {
	p.mu.RLock()
	st := p.store
	p.mu.RUnlock()

	lo, hi := p.Bounds.RowStart, p.Bounds.RowEnd
	slo, shi, populated := p.zm.IDSpan()
	if populated {
		// Clip to the span that actually holds rows: partition bounds
		// default to the table's MaxRows and are often far wider.
		if slo > lo {
			lo = slo
		}
		if shi+1 < hi {
			hi = shi + 1
		}
	} else if p.zm.Rows() == 0 && st.Stats().Rows == 0 {
		return nil
	}
	if lo >= hi {
		return nil
	}

	rs, ok := st.(storage.RangeScanner)
	if !ok {
		return []Morsel{{Lo: lo, Hi: hi}}
	}
	bounds := rs.MorselBounds(targetRows)
	if len(bounds) < 2 {
		return []Morsel{{Lo: lo, Hi: hi}}
	}
	// Stretch the outer cuts to the populated span so rows outside the
	// store's current id range (e.g. unmerged column-delta inserts) stay
	// covered by exactly one morsel.
	if bounds[0] > lo {
		bounds[0] = lo
	}
	if bounds[len(bounds)-1] < hi {
		bounds[len(bounds)-1] = hi
	}
	out := make([]Morsel, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] < bounds[i+1] {
			out = append(out, Morsel{Lo: bounds[i], Hi: bounds[i+1]})
		}
	}
	return out
}

// StoreSnapshot returns the current store object. A captured store stays
// valid for snapshot reads even if a concurrent layout change swaps
// p.store: every version at or below the read snapshot is already in it,
// and later mutations carry newer versions that the snapshot ignores.
func (p *Partition) StoreSnapshot() storage.Store {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.store
}

// ScanRange streams matching rows with lo <= id < hi, using the store's
// native range path when available.
func (p *Partition) ScanRange(cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID, snap uint64, fn func(schema.Row) bool) {
	p.mu.RLock()
	st := p.store
	p.mu.RUnlock()
	ScanStoreRange(st, cols, pred, lo, hi, snap, fn)
}

// ScanStoreRange scans an id range on any store: natively through
// storage.RangeScanner, or by filtering a full scan otherwise.
func ScanStoreRange(st storage.Store, cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID, snap uint64, fn func(schema.Row) bool) {
	if rs, ok := st.(storage.RangeScanner); ok {
		rs.ScanRange(cols, pred, lo, hi, snap, fn)
		return
	}
	st.Scan(cols, pred, snap, func(r schema.Row) bool {
		if r.ID < lo || r.ID >= hi {
			return true
		}
		return fn(r)
	})
}

// ScanBatches streams matching rows as columnar batches, zone-map gated
// like Scan. Stores without a native batch path are transposed.
func (p *Partition) ScanBatches(cols []schema.ColID, pred storage.Pred, snap uint64, maxRows int, fn func(*storage.Batch) bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.zm.CanSkip(pred) {
		return
	}
	storage.ScanBatchesOn(p.store, cols, pred, snap, maxRows, fn)
}

// ScanBatchesRange streams matching rows with lo <= id < hi as columnar
// batches over the current store (no zone-map gate, mirroring ScanRange).
func (p *Partition) ScanBatchesRange(cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID, snap uint64, maxRows int, fn func(*storage.Batch) bool) {
	p.mu.RLock()
	st := p.store
	p.mu.RUnlock()
	storage.ScanBatchRangeOn(st, cols, pred, lo, hi, snap, maxRows, fn)
}

// ScanStoreBatchRange runs the batch contract over an id range on any
// captured store snapshot — the morsel executor's entry point, safe under
// concurrent layout swaps for the same reason StoreSnapshot is.
func ScanStoreBatchRange(st storage.Store, cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID, snap uint64, maxRows int, fn func(*storage.Batch) bool) {
	storage.ScanBatchRangeOn(st, cols, pred, lo, hi, snap, maxRows, fn)
}

// Load bulk-loads rows and rebuilds the zone map.
func (p *Partition) Load(rows []schema.Row, ver uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.store.Load(rows, ver); err != nil {
		return err
	}
	p.zm.Rebuild(rows)
	p.SetVersion(ver)
	return nil
}

// ExtractAll snapshots every live row at the given version.
func (p *Partition) ExtractAll(snap uint64) []schema.Row {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.store.ExtractAll(snap)
}

// Stats reports the underlying store's footprint.
func (p *Partition) Stats() storage.Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.store.Stats()
}

// ChangeLayout converts the partition to a new layout by reading a
// consistent snapshot at version snap and bulk-loading it into a fresh
// store (§4.4). The write lock is held across the extract, rebuild and
// swap: a mutation that slipped between a released extract and the swap
// (e.g. a replica applying a redo record, which does not hold the
// engine's partition lock) would land in the discarded store and be lost
// even though the copy's version advanced past it. Readers holding a
// StoreSnapshot are unaffected.
func (p *Partition) ChangeLayout(to storage.Layout, f Factory, snap uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rows := p.store.ExtractAll(snap)
	ns := f.NewStore(p.kinds, to)
	if err := ns.Load(rows, snap); err != nil {
		return err
	}
	p.store = ns
	p.zm.Rebuild(rows)
	return nil
}

// Maintain performs background maintenance appropriate to the layout:
// merging column delta stores and flushing row disk buffers once they
// exceed threshold buffered rows. It reports the number of buffered rows
// folded in and the time the fold took, so maintenance cost can be
// attributed to the layout's write cost model.
//
// The write lock is held across the fold: MergeDelta/Flush rebuild the
// store from an extract and clear the buffered delta, so a write that
// landed between the extract and the clear would vanish. Background
// maintenance runs without the engine's partition locks, so the
// partition lock is the only thing serializing it against commit
// staging and replica applies. snap must cover every buffered row —
// with group commit, staged rows live above the installed version until
// the flusher installs them, so callers folding live copies pass
// storage.Latest rather than p.Version().
func (p *Partition) Maintain(snap uint64, threshold int) (int, time.Duration, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.store
	start := time.Now()
	switch s := st.(type) {
	case interface {
		DeltaRows() int
		MergeDelta(uint64) error
	}:
		if n := s.DeltaRows(); n >= threshold {
			err := s.MergeDelta(snap)
			return n, time.Since(start), err
		}
	case *rowstore.Disk:
		if n := s.BufferedRows(); n >= threshold {
			err := s.Flush(snap)
			return n, time.Since(start), err
		}
	}
	return 0, 0, nil
}
