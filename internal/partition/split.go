package partition

import (
	"fmt"
	"sort"

	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// The functions below implement the partitioning changes of §4.4: merging
// or splitting partitions horizontally (row-wise) or vertically
// (column-wise). The paper notes that horizontal splits of row-format data
// and vertical splits of column-format data only reassign pointers, while
// the remaining combinations bulk-reload; this implementation always
// snapshots and reloads, and the cost model (internal/cost, Table 2)
// charges the cheap combinations accordingly.

// SplitHorizontal divides p at row `at`, producing [RowStart, at) and
// [at, RowEnd). Both children adopt layout l.
func SplitHorizontal(p *Partition, at schema.RowID, ids [2]ID, l storage.Layout, f Factory, snap uint64) (*Partition, *Partition, error) {
	if at <= p.Bounds.RowStart || at >= p.Bounds.RowEnd {
		return nil, nil, fmt.Errorf("split row %d outside (%d, %d)", at, p.Bounds.RowStart, p.Bounds.RowEnd)
	}
	rows := p.ExtractAll(snap)
	var lo, hi []schema.Row
	for _, r := range rows {
		if r.ID < at {
			lo = append(lo, r)
		} else {
			hi = append(hi, r)
		}
	}
	bl, bh := p.Bounds, p.Bounds
	bl.RowEnd, bh.RowStart = at, at
	pl := New(ids[0], bl, p.kinds, l, f)
	ph := New(ids[1], bh, p.kinds, l, f)
	if err := pl.Load(lo, snap); err != nil {
		return nil, nil, err
	}
	if err := ph.Load(hi, snap); err != nil {
		return nil, nil, err
	}
	pl.SetVersion(p.Version())
	ph.SetVersion(p.Version())
	return pl, ph, nil
}

// SplitVertical divides p at global column `at` (row splitting, §2.2),
// producing [ColStart, at) and [at, ColEnd). Layouts ll and lr apply to the
// left and right children (their SortBy values are child-local).
func SplitVertical(p *Partition, at schema.ColID, ids [2]ID, ll, lr storage.Layout, f Factory, snap uint64) (*Partition, *Partition, error) {
	if at <= p.Bounds.ColStart || at >= p.Bounds.ColEnd {
		return nil, nil, fmt.Errorf("split col %d outside (%d, %d)", at, p.Bounds.ColStart, p.Bounds.ColEnd)
	}
	rows := p.ExtractAll(snap)
	cut := int(at - p.Bounds.ColStart)
	lrows := make([]schema.Row, len(rows))
	rrows := make([]schema.Row, len(rows))
	for i, r := range rows {
		lrows[i] = schema.Row{ID: r.ID, Vals: append([]types.Value(nil), r.Vals[:cut]...)}
		rrows[i] = schema.Row{ID: r.ID, Vals: append([]types.Value(nil), r.Vals[cut:]...)}
	}
	bl, br := p.Bounds, p.Bounds
	bl.ColEnd, br.ColStart = at, at
	pl := New(ids[0], bl, p.kinds[:cut], ll, f)
	pr := New(ids[1], br, p.kinds[cut:], lr, f)
	if err := pl.Load(lrows, snap); err != nil {
		return nil, nil, err
	}
	if err := pr.Load(rrows, snap); err != nil {
		return nil, nil, err
	}
	pl.SetVersion(p.Version())
	pr.SetVersion(p.Version())
	return pl, pr, nil
}

// MergeHorizontal combines two partitions with identical column ranges and
// adjacent row ranges into one partition with layout l.
func MergeHorizontal(a, b *Partition, id ID, l storage.Layout, f Factory, snap uint64) (*Partition, error) {
	if a.Bounds.Table != b.Bounds.Table || a.Bounds.ColStart != b.Bounds.ColStart || a.Bounds.ColEnd != b.Bounds.ColEnd {
		return nil, fmt.Errorf("merge: column ranges differ: %v vs %v", a.Bounds, b.Bounds)
	}
	if a.Bounds.RowStart > b.Bounds.RowStart {
		a, b = b, a
	}
	if a.Bounds.RowEnd != b.Bounds.RowStart {
		return nil, fmt.Errorf("merge: row ranges not adjacent: %v vs %v", a.Bounds, b.Bounds)
	}
	rows := append(a.ExtractAll(snap), b.ExtractAll(snap)...)
	nb := a.Bounds
	nb.RowEnd = b.Bounds.RowEnd
	p := New(id, nb, a.kinds, l, f)
	if err := p.Load(rows, snap); err != nil {
		return nil, err
	}
	p.SetVersion(maxU64(a.Version(), b.Version()))
	return p, nil
}

// MergeVertical combines two partitions with identical row ranges and
// adjacent column ranges into one partition with layout l (l.SortBy is
// local to the merged column range).
func MergeVertical(a, b *Partition, id ID, l storage.Layout, f Factory, snap uint64) (*Partition, error) {
	if a.Bounds.Table != b.Bounds.Table || a.Bounds.RowStart != b.Bounds.RowStart || a.Bounds.RowEnd != b.Bounds.RowEnd {
		return nil, fmt.Errorf("merge: row ranges differ: %v vs %v", a.Bounds, b.Bounds)
	}
	if a.Bounds.ColStart > b.Bounds.ColStart {
		a, b = b, a
	}
	if a.Bounds.ColEnd != b.Bounds.ColStart {
		return nil, fmt.Errorf("merge: column ranges not adjacent: %v vs %v", a.Bounds, b.Bounds)
	}
	la := a.ExtractAll(snap)
	lb := b.ExtractAll(snap)
	byID := make(map[schema.RowID][]types.Value, len(lb))
	for _, r := range lb {
		byID[r.ID] = r.Vals
	}
	rows := make([]schema.Row, 0, len(la))
	for _, r := range la {
		right, ok := byID[r.ID]
		if !ok {
			return nil, fmt.Errorf("merge: row %d present in %v but not %v", r.ID, a.Bounds, b.Bounds)
		}
		vals := make([]types.Value, 0, len(r.Vals)+len(right))
		vals = append(vals, r.Vals...)
		vals = append(vals, right...)
		rows = append(rows, schema.Row{ID: r.ID, Vals: vals})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	nb := a.Bounds
	nb.ColEnd = b.Bounds.ColEnd
	kinds := make([]types.Kind, 0, len(a.kinds)+len(b.kinds))
	kinds = append(kinds, a.kinds...)
	kinds = append(kinds, b.kinds...)
	p := New(id, nb, kinds, l, f)
	if err := p.Load(rows, snap); err != nil {
		return nil, err
	}
	p.SetVersion(maxU64(a.Version(), b.Version()))
	return p, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
