package partition

import (
	"testing"

	"proteus/internal/disksim"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

var kinds = []types.Kind{types.KindInt64, types.KindFloat64, types.KindString}

func factory() Factory { return Factory{Dev: disksim.New(disksim.Config{})} }

func bounds() Bounds {
	return Bounds{Table: 1, RowStart: 0, RowEnd: 100, ColStart: 0, ColEnd: 3}
}

func row(id int64) schema.Row {
	return schema.Row{ID: schema.RowID(id), Vals: []types.Value{
		types.NewInt64(id), types.NewFloat64(float64(id) * 1.5), types.NewString("v"),
	}}
}

func loaded(t *testing.T, l storage.Layout, n int64) *Partition {
	t.Helper()
	p := New(1, bounds(), kinds, l, factory())
	rows := make([]schema.Row, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, row(i))
	}
	if err := p.Load(rows, 1); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBoundsHelpers(t *testing.T) {
	b := bounds()
	if !b.ContainsRow(0) || !b.ContainsRow(99) || b.ContainsRow(100) {
		t.Error("ContainsRow wrong")
	}
	if !b.ContainsCol(2) || b.ContainsCol(3) {
		t.Error("ContainsCol wrong")
	}
	if !b.OverlapsRows(90, 200) || b.OverlapsRows(100, 200) {
		t.Error("OverlapsRows wrong")
	}
	if b.NumCols() != 3 || b.NumRows() != 100 {
		t.Error("sizes wrong")
	}
	b2 := Bounds{ColStart: 2, ColEnd: 5}
	if b2.LocalCol(3) != 1 || b2.GlobalCol(1) != 3 {
		t.Error("col translation wrong")
	}
}

func TestInsertOutsideBounds(t *testing.T) {
	p := New(1, bounds(), kinds, storage.DefaultRowLayout(), factory())
	if err := p.Insert(row(100), 1); err == nil {
		t.Error("insert outside bounds allowed")
	}
}

func TestCrudThroughPartition(t *testing.T) {
	p := loaded(t, storage.DefaultRowLayout(), 10)
	if err := p.Update(3, []schema.ColID{1}, []types.Value{types.NewFloat64(-9)}, 2); err != nil {
		t.Fatal(err)
	}
	r, ok := p.Get(3, []schema.ColID{1}, storage.Latest)
	if !ok || r.Vals[0].Float() != -9 {
		t.Errorf("get after update: %v", r)
	}
	if err := p.Delete(9, 3); err != nil {
		t.Fatal(err)
	}
	n := 0
	p.Scan([]schema.ColID{0}, nil, storage.Latest, func(schema.Row) bool { n++; return true })
	if n != 9 {
		t.Errorf("scan rows = %d", n)
	}
}

func TestZoneMapSkip(t *testing.T) {
	p := loaded(t, storage.DefaultColumnLayout(), 50) // col0 in [0,49]
	pred := storage.Pred{{Col: 0, Op: storage.CmpGt, Val: types.NewInt64(1000)}}
	n := 0
	p.Scan([]schema.ColID{0}, pred, storage.Latest, func(schema.Row) bool { n++; return true })
	if n != 0 {
		t.Errorf("zone-map skip failed, saw %d rows", n)
	}
	if !p.ZoneMap().CanSkip(pred) {
		t.Error("CanSkip should be true")
	}
}

func TestChangeLayoutAllCombinations(t *testing.T) {
	f := factory()
	layouts := []storage.Layout{
		{Format: storage.RowFormat, Tier: storage.MemoryTier, SortBy: storage.NoSort},
		{Format: storage.RowFormat, Tier: storage.DiskTier, SortBy: storage.NoSort},
		{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: storage.NoSort},
		{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: 0},
		{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: 1, Compressed: true},
		{Format: storage.ColumnFormat, Tier: storage.DiskTier, SortBy: storage.NoSort, Compressed: true},
	}
	p := loaded(t, layouts[0], 20)
	for _, to := range layouts[1:] {
		if err := p.ChangeLayout(to, f, storage.Latest); err != nil {
			t.Fatalf("convert to %v: %v", to, err)
		}
		if got := p.Layout(); got != to {
			t.Errorf("layout = %v, want %v", got, to)
		}
		rows := p.ExtractAll(storage.Latest)
		if len(rows) != 20 {
			t.Fatalf("after %v: %d rows", to, len(rows))
		}
		for i, r := range rows {
			if r.ID != schema.RowID(i) || r.Vals[0].Int() != int64(i) {
				t.Fatalf("after %v: row %d = %v", to, i, r)
			}
		}
	}
}

func TestVersionMonotone(t *testing.T) {
	p := New(1, bounds(), kinds, storage.DefaultRowLayout(), factory())
	p.SetVersion(5)
	p.SetVersion(3) // must not regress
	if v := p.Version(); v != 5 {
		t.Errorf("version = %d", v)
	}
	if v := p.NextVersion(); v != 6 {
		t.Errorf("next = %d", v)
	}
}

func TestSplitHorizontal(t *testing.T) {
	p := loaded(t, storage.DefaultRowLayout(), 50)
	lo, hi, err := SplitHorizontal(p, 30, [2]ID{2, 3}, storage.DefaultColumnLayout(), factory(), storage.Latest)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Bounds.RowEnd != 30 || hi.Bounds.RowStart != 30 {
		t.Errorf("bounds: %v / %v", lo.Bounds, hi.Bounds)
	}
	if n := len(lo.ExtractAll(storage.Latest)); n != 30 {
		t.Errorf("lo rows = %d", n)
	}
	if n := len(hi.ExtractAll(storage.Latest)); n != 20 {
		t.Errorf("hi rows = %d", n)
	}
	if _, _, err := SplitHorizontal(p, 0, [2]ID{4, 5}, storage.DefaultRowLayout(), factory(), storage.Latest); err == nil {
		t.Error("split at boundary allowed")
	}
}

func TestSplitVerticalAndMergeVertical(t *testing.T) {
	f := factory()
	p := loaded(t, storage.DefaultRowLayout(), 10)
	l, r, err := SplitVertical(p, 2, [2]ID{2, 3}, storage.DefaultColumnLayout(), storage.DefaultRowLayout(), f, storage.Latest)
	if err != nil {
		t.Fatal(err)
	}
	if l.Bounds.NumCols() != 2 || r.Bounds.NumCols() != 1 {
		t.Errorf("col splits: %v / %v", l.Bounds, r.Bounds)
	}
	rr, ok := r.Get(4, []schema.ColID{0}, storage.Latest)
	if !ok || rr.Vals[0].Str() != "v" {
		t.Errorf("right child read: %v %v", rr, ok)
	}
	// Merge back.
	m, err := MergeVertical(l, r, 9, storage.DefaultRowLayout(), f, storage.Latest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bounds.NumCols() != 3 {
		t.Errorf("merged bounds: %v", m.Bounds)
	}
	row4, ok := m.Get(4, []schema.ColID{0, 1, 2}, storage.Latest)
	if !ok || row4.Vals[0].Int() != 4 || row4.Vals[2].Str() != "v" {
		t.Errorf("merged read: %v", row4)
	}
}

func TestMergeHorizontal(t *testing.T) {
	f := factory()
	p := loaded(t, storage.DefaultRowLayout(), 50)
	lo, hi, err := SplitHorizontal(p, 25, [2]ID{2, 3}, storage.DefaultRowLayout(), f, storage.Latest)
	if err != nil {
		t.Fatal(err)
	}
	// Merge in either argument order.
	m, err := MergeHorizontal(hi, lo, 4, storage.DefaultColumnLayout(), f, storage.Latest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bounds.RowStart != 0 || m.Bounds.RowEnd != 100 {
		t.Errorf("merged bounds: %v", m.Bounds)
	}
	if n := len(m.ExtractAll(storage.Latest)); n != 50 {
		t.Errorf("merged rows = %d", n)
	}
	// Non-adjacent merge fails.
	a := New(10, Bounds{Table: 1, RowStart: 0, RowEnd: 10, ColEnd: 3}, kinds, storage.DefaultRowLayout(), f)
	b := New(11, Bounds{Table: 1, RowStart: 20, RowEnd: 30, ColEnd: 3}, kinds, storage.DefaultRowLayout(), f)
	if _, err := MergeHorizontal(a, b, 12, storage.DefaultRowLayout(), f, storage.Latest); err == nil {
		t.Error("non-adjacent merge allowed")
	}
}

func TestMaintainMergesDelta(t *testing.T) {
	p := loaded(t, storage.DefaultColumnLayout(), 10)
	for i := int64(0); i < 5; i++ {
		if err := p.Update(schema.RowID(i), []schema.ColID{0}, []types.Value{types.NewInt64(-i)}, 2); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().DeltaRows != 5 {
		t.Fatalf("delta rows = %d", p.Stats().DeltaRows)
	}
	merged, d, err := p.Maintain(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if merged != 5 || d < 0 {
		t.Errorf("maintain reported merged=%d d=%v", merged, d)
	}
	if p.Stats().DeltaRows != 0 {
		t.Errorf("delta rows after maintain = %d", p.Stats().DeltaRows)
	}
}
