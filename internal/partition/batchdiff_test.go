package partition

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// The batch pipeline must be observationally identical to the row path on
// every layout. These tests compare three executions of randomized scans —
// the legacy row callback (now a shim over batches), the native batch path,
// and an independent oracle computed from the loaded data in plain Go —
// across row/column × memory/disk, sorted and RLE variants, with buffered
// deltas, and under concurrent layout swaps.

var diffLayouts = []struct {
	name string
	l    storage.Layout
}{
	{"row-mem", storage.Layout{Format: storage.RowFormat, Tier: storage.MemoryTier, SortBy: storage.NoSort}},
	{"row-disk", storage.Layout{Format: storage.RowFormat, Tier: storage.DiskTier, SortBy: storage.NoSort}},
	{"col-mem", storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: storage.NoSort}},
	{"col-mem-sorted", storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: 0}},
	{"col-mem-rle", storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: storage.NoSort, Compressed: true}},
	{"col-mem-rle-sorted", storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: 0, Compressed: true}},
	{"col-disk-sorted", storage.Layout{Format: storage.ColumnFormat, Tier: storage.DiskTier, SortBy: 0}},
	{"col-disk-rle", storage.Layout{Format: storage.ColumnFormat, Tier: storage.DiskTier, SortBy: storage.NoSort, Compressed: true}},
}

// diffRow keys scan output by row id so differently-ordered executions
// (sorted stores emit in key order) compare positionally after sorting.
type diffRow struct {
	id   schema.RowID
	vals []types.Value
}

func sortDiff(rows []diffRow) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
}

func sameDiff(t *testing.T, name string, got, want []diffRow) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i].id != want[i].id {
			t.Fatalf("%s row %d: id %d, want %d", name, i, got[i].id, want[i].id)
		}
		for k := range want[i].vals {
			if types.Compare(got[i].vals[k], want[i].vals[k]) != 0 {
				t.Fatalf("%s row %d col %d: %v, want %v", name, i, k, got[i].vals[k], want[i].vals[k])
			}
		}
	}
}

// diffData builds a deterministic table with RLE-friendly columns: col0 has
// long runs of few distinct ints (it is also the sort key of the sorted
// layouts), col1 is a float, col2 draws from three strings.
func diffData(r *rand.Rand, n int) []schema.Row {
	strs := []string{"aa", "bb", "cc"}
	rows := make([]schema.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(int64(i / 50)), // runs of 50
			types.NewFloat64(float64(r.Intn(100))),
			types.NewString(strs[r.Intn(len(strs))]),
		}})
	}
	return rows
}

// oracleScan filters and projects live in plain Go, the ground truth both
// scan paths must reproduce.
func oracleScan(live map[schema.RowID][]types.Value, cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID) []diffRow {
	var out []diffRow
	for id, vals := range live {
		if id < lo || id >= hi {
			continue
		}
		if !pred.Match(vals) {
			continue
		}
		proj := make([]types.Value, len(cols))
		for i, c := range cols {
			proj[i] = vals[c]
		}
		out = append(out, diffRow{id: id, vals: proj})
	}
	sortDiff(out)
	return out
}

func randPred(r *rand.Rand) storage.Pred {
	ops := []storage.CmpOp{storage.CmpEq, storage.CmpNe, storage.CmpLt, storage.CmpLe, storage.CmpGt, storage.CmpGe}
	var pred storage.Pred
	if r.Intn(4) > 0 {
		pred = append(pred, storage.Cond{Col: 0, Op: ops[r.Intn(len(ops))], Val: types.NewInt64(int64(r.Intn(9)))})
	}
	if r.Intn(3) == 0 {
		pred = append(pred, storage.Cond{Col: 1, Op: ops[r.Intn(len(ops))], Val: types.NewFloat64(float64(r.Intn(100)))})
	}
	if r.Intn(3) == 0 {
		pred = append(pred, storage.Cond{Col: 2, Op: storage.CmpEq, Val: types.NewString("bb")})
	}
	return pred
}

func randProj(r *rand.Rand) []schema.ColID {
	n := 1 + r.Intn(3)
	perm := r.Perm(3)[:n]
	cols := make([]schema.ColID, n)
	for i, c := range perm {
		cols[i] = schema.ColID(c)
	}
	return cols
}

func collectRows(p *Partition, cols []schema.ColID, pred storage.Pred, snap uint64) []diffRow {
	var out []diffRow
	p.Scan(cols, pred, snap, func(r schema.Row) bool {
		out = append(out, diffRow{id: r.ID, vals: append([]types.Value(nil), r.Vals...)})
		return true
	})
	sortDiff(out)
	return out
}

func collectBatches(p *Partition, cols []schema.ColID, pred storage.Pred, snap uint64, maxRows int) []diffRow {
	var out []diffRow
	p.ScanBatches(cols, pred, snap, maxRows, func(b *storage.Batch) bool {
		appendBatch(&out, b)
		return true
	})
	sortDiff(out)
	return out
}

func appendBatch(out *[]diffRow, b *storage.Batch) {
	b.Selected(func(row int) bool {
		vals := make([]types.Value, len(b.Vecs))
		for i := range b.Vecs {
			vals[i] = b.Vecs[i].Value(row)
		}
		*out = append(*out, diffRow{id: b.RowIDs[row], vals: vals})
		return true
	})
}

// TestBatchRowDifferential loads every layout with the same randomized
// data, buffers updates/deletes/inserts at a second version (populating the
// column stores' delta side), and checks row path, batch path, and ranged
// batch path against the oracle at both snapshots.
func TestBatchRowDifferential(t *testing.T) {
	for _, lc := range diffLayouts {
		t.Run(lc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(41))
			const n = 400
			rows := diffData(r, n)
			b := Bounds{Table: 1, RowStart: 0, RowEnd: 1000, ColStart: 0, ColEnd: 3}
			p := New(1, b, kinds, lc.l, factory())
			if err := p.Load(rows, 1); err != nil {
				t.Fatal(err)
			}

			// Oracles: live rows visible at version 1 and at Latest.
			v1 := map[schema.RowID][]types.Value{}
			for _, row := range rows {
				v1[row.ID] = append([]types.Value(nil), row.Vals...)
			}
			v2 := map[schema.RowID][]types.Value{}
			for id, vals := range v1 {
				v2[id] = append([]types.Value(nil), vals...)
			}
			for i := 0; i < 40; i++ {
				id := schema.RowID(r.Intn(n))
				if _, ok := v2[id]; !ok {
					continue
				}
				nv := types.NewInt64(int64(r.Intn(9)))
				if err := p.Update(id, []schema.ColID{0}, []types.Value{nv}, 2); err != nil {
					t.Fatal(err)
				}
				v2[id][0] = nv
			}
			for i := 0; i < 20; i++ {
				id := schema.RowID(400 + i)
				vals := []types.Value{types.NewInt64(int64(i % 9)), types.NewFloat64(float64(i)), types.NewString("dd")}
				if err := p.Insert(schema.Row{ID: id, Vals: vals}, 2); err != nil {
					t.Fatal(err)
				}
				v2[id] = vals
			}
			for i := 0; i < 15; i++ {
				id := schema.RowID(r.Intn(n))
				if _, ok := v2[id]; !ok {
					continue
				}
				if err := p.Delete(id, 2); err != nil {
					t.Fatal(err)
				}
				delete(v2, id)
			}

			for _, snap := range []struct {
				name   string
				ver    uint64
				oracle map[schema.RowID][]types.Value
			}{{"v1", 1, v1}, {"latest", storage.Latest, v2}} {
				for trial := 0; trial < 12; trial++ {
					cols := randProj(r)
					pred := randPred(r)
					want := oracleScan(snap.oracle, cols, pred, 0, 1000)
					sameDiff(t, lc.name+"/"+snap.name+"/row", collectRows(p, cols, pred, snap.ver), want)
					maxRows := []int{0, 7, 64}[trial%3] // odd batch sizes split runs mid-chunk
					sameDiff(t, lc.name+"/"+snap.name+"/batch", collectBatches(p, cols, pred, snap.ver, maxRows), want)

					lo := schema.RowID(r.Intn(300))
					hi := lo + schema.RowID(r.Intn(200))
					var ranged []diffRow
					p.ScanBatchesRange(cols, pred, lo, hi, snap.ver, maxRows, func(b *storage.Batch) bool {
						appendBatch(&ranged, b)
						return true
					})
					sortDiff(ranged)
					sameDiff(t, lc.name+"/"+snap.name+"/range", ranged, oracleScan(snap.oracle, cols, pred, lo, hi))
				}
			}
		})
	}
}

// TestBatchScanDuringLayoutSwaps runs batch scans — both through the
// partition and through a captured store snapshot, the morsel executor's
// path — while another goroutine cycles the partition through every layout.
// Every scan must still match the oracle exactly.
func TestBatchScanDuringLayoutSwaps(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	const n = 300
	rows := diffData(r, n)
	b := Bounds{Table: 1, RowStart: 0, RowEnd: 1000, ColStart: 0, ColEnd: 3}
	p := New(1, b, kinds, diffLayouts[0].l, factory())
	if err := p.Load(rows, 1); err != nil {
		t.Fatal(err)
	}
	live := map[schema.RowID][]types.Value{}
	for _, row := range rows {
		live[row.ID] = append([]types.Value(nil), row.Vals...)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f := factory()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := p.ChangeLayout(diffLayouts[(i+1)%len(diffLayouts)].l, f, storage.Latest); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for i := 0; i < 100; i++ {
		cols := randProj(r)
		pred := randPred(r)
		want := oracleScan(live, cols, pred, 0, 1000)
		sameDiff(t, "swap/batch", collectBatches(p, cols, pred, storage.Latest, 32), want)

		// The captured-store path must stay correct even though the
		// partition may swap its store mid-scan.
		st := p.StoreSnapshot()
		var got []diffRow
		ScanStoreBatchRange(st, cols, pred, 0, 1000, storage.Latest, 32, func(b *storage.Batch) bool {
			appendBatch(&got, b)
			return true
		})
		sortDiff(got)
		sameDiff(t, "swap/captured", got, want)
	}
	close(stop)
	wg.Wait()
}
