package simnet

import (
	"testing"
	"time"
)

func TestSameSiteFree(t *testing.T) {
	n := New(Config{BaseLatency: time.Millisecond})
	if d := n.Charge(1, 1, 1000); d != 0 {
		t.Errorf("same-site charge = %v", d)
	}
	if st := n.Stats(1, 1); st.Messages != 0 {
		t.Error("same-site traffic recorded")
	}
}

func TestChargeSleepsAndRecords(t *testing.T) {
	n := New(Config{BaseLatency: 2 * time.Millisecond})
	start := time.Now()
	d := n.Charge(1, 2, 100)
	if time.Since(start) < 2*time.Millisecond || d < 2*time.Millisecond {
		t.Errorf("charge %v did not sleep", d)
	}
	st := n.Stats(1, 2)
	if st.Messages != 1 || st.Bytes != 100 {
		t.Errorf("stats = %+v", st)
	}
	// Reverse direction untouched.
	if st := n.Stats(2, 1); st.Messages != 0 {
		t.Error("reverse link recorded")
	}
}

func TestBandwidthCharge(t *testing.T) {
	n := New(Config{BaseLatency: 0, BytesPerSecond: 1 << 20}) // 1 MiB/s
	est := n.EstimateLatency(1, 2, 1<<19)                     // 0.5 MiB -> ~0.5 s
	if est < 400*time.Millisecond || est > 600*time.Millisecond {
		t.Errorf("estimate = %v", est)
	}
	if n.EstimateLatency(3, 3, 1<<20) != 0 {
		t.Error("same-site estimate nonzero")
	}
}

func TestTotalBytes(t *testing.T) {
	n := New(Config{})
	n.Charge(1, 2, 10)
	n.Charge(2, 1, 5)
	n.Charge(1, 3, 7)
	if got := n.TotalBytes(); got != 22 {
		t.Errorf("total = %d", got)
	}
}
