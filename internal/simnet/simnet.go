// Package simnet models the cluster interconnect standing in for the
// paper's 10 Gbps network and Thrift RPC layer. Cross-site calls charge a
// configurable per-message latency plus a bandwidth-proportional transfer
// time, so the ASA's cost trade-offs (local vs distributed joins, replica
// placement, §2.2) have the same shape as on a physical cluster. Calls
// within a site are free.
package simnet

import (
	"sync"
	"time"

	"proteus/internal/obs"
)

// SiteID identifies a data site. The ASA is site -1 by convention.
type SiteID int32

// ASASite is the conventional SiteID of the adaptive storage advisor node.
const ASASite SiteID = -1

// Config sets the interconnect's performance envelope.
type Config struct {
	// BaseLatency is charged once per message.
	BaseLatency time.Duration
	// BytesPerSecond is the link bandwidth; 0 disables the transfer charge.
	BytesPerSecond float64
}

// DefaultConfig models a fast LAN scaled for second-scale experiments:
// 50 us per message, 1 GB/s.
func DefaultConfig() Config {
	return Config{BaseLatency: 50 * time.Microsecond, BytesPerSecond: 1 << 30}
}

// LinkStats aggregates traffic over one directed site pair.
type LinkStats struct {
	Messages int64
	Bytes    int64
}

// FaultPolicy lets a fault-injection layer (internal/faults) intercept
// cross-site traffic without simnet depending on it.
type FaultPolicy interface {
	// Check reports whether messages can flow between the sites at all
	// (crashed endpoint, network partition). It must not consume
	// randomness: reachability probes call it repeatedly.
	Check(from, to SiteID) error
	// Intercept is consulted once per message; it returns latency to add
	// and a delivery error (down endpoint, partition, or message drop).
	Intercept(from, to SiteID, bytes int) (time.Duration, error)
}

// Network charges and accounts cross-site traffic. Safe for concurrent use.
type Network struct {
	cfg Config

	mu     sync.Mutex
	links  map[[2]SiteID]*LinkStats
	policy FaultPolicy

	// Optional observability instruments (SetObs).
	obsMsgs    *obs.Counter
	obsBytes   *obs.Counter
	obsDropped *obs.Counter
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	return &Network{cfg: cfg, links: make(map[[2]SiteID]*LinkStats)}
}

// SetObs installs interconnect instruments: net.messages and net.bytes
// count cross-site traffic cluster-wide (per-link detail stays in Stats).
func (nw *Network) SetObs(reg *obs.Registry) {
	nw.obsMsgs = reg.Counter("net.messages")
	nw.obsBytes = reg.Counter("net.bytes")
	nw.obsDropped = reg.Counter("net.dropped")
}

// SetFaults installs a fault policy consulted on every cross-site message.
// Install before traffic starts (cluster.New does); a nil policy means a
// perfect network.
func (nw *Network) SetFaults(p FaultPolicy) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.policy = p
}

func (nw *Network) faults() FaultPolicy {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.policy
}

// Reachable reports whether messages can currently flow between the sites
// (no charge, no sleep). With no fault policy the network is perfect.
func (nw *Network) Reachable(from, to SiteID) error {
	if from == to {
		return nil
	}
	if p := nw.faults(); p != nil {
		return p.Check(from, to)
	}
	return nil
}

// Send models delivering n bytes from one site to another: it consults the
// fault policy, sleeps for the modelled latency (base + transfer + injected
// link latency) and returns it. Failed deliveries return the fault's typed
// error without sleeping. Same-site messages are free.
func (nw *Network) Send(from, to SiteID, n int) (time.Duration, error) {
	if from == to {
		return 0, nil
	}
	var extra time.Duration
	if p := nw.faults(); p != nil {
		var err error
		extra, err = p.Intercept(from, to, n)
		if err != nil {
			if nw.obsDropped != nil {
				nw.obsDropped.Inc()
			}
			return 0, err
		}
	}
	nw.mu.Lock()
	key := [2]SiteID{from, to}
	ls, ok := nw.links[key]
	if !ok {
		ls = &LinkStats{}
		nw.links[key] = ls
	}
	ls.Messages++
	ls.Bytes += int64(n)
	nw.mu.Unlock()
	if nw.obsMsgs != nil {
		nw.obsMsgs.Inc()
		nw.obsBytes.Add(int64(n))
	}

	delay := nw.cfg.BaseLatency + extra
	if nw.cfg.BytesPerSecond > 0 {
		delay += time.Duration(float64(n) / nw.cfg.BytesPerSecond * float64(time.Second))
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return delay, nil
}

// Charge is Send for callers that tolerate loss (best-effort messages):
// the fault error, if any, is absorbed and the charged latency returned.
func (nw *Network) Charge(from, to SiteID, n int) time.Duration {
	d, _ := nw.Send(from, to, n)
	return d
}

// EstimateLatency predicts the charge for n bytes without sleeping.
func (nw *Network) EstimateLatency(from, to SiteID, n int) time.Duration {
	if from == to {
		return 0
	}
	delay := nw.cfg.BaseLatency
	if nw.cfg.BytesPerSecond > 0 {
		delay += time.Duration(float64(n) / nw.cfg.BytesPerSecond * float64(time.Second))
	}
	return delay
}

// Stats returns a copy of the traffic counters for one directed link.
func (nw *Network) Stats(from, to SiteID) LinkStats {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if ls, ok := nw.links[[2]SiteID{from, to}]; ok {
		return *ls
	}
	return LinkStats{}
}

// TotalBytes sums traffic over every link.
func (nw *Network) TotalBytes() int64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	var total int64
	for _, ls := range nw.links {
		total += ls.Bytes
	}
	return total
}
