// Package simnet models the cluster interconnect standing in for the
// paper's 10 Gbps network and Thrift RPC layer. Cross-site calls charge a
// configurable per-message latency plus a bandwidth-proportional transfer
// time, so the ASA's cost trade-offs (local vs distributed joins, replica
// placement, §2.2) have the same shape as on a physical cluster. Calls
// within a site are free.
package simnet

import (
	"sync"
	"time"

	"proteus/internal/obs"
)

// SiteID identifies a data site. The ASA is site -1 by convention.
type SiteID int32

// ASASite is the conventional SiteID of the adaptive storage advisor node.
const ASASite SiteID = -1

// Config sets the interconnect's performance envelope.
type Config struct {
	// BaseLatency is charged once per message.
	BaseLatency time.Duration
	// BytesPerSecond is the link bandwidth; 0 disables the transfer charge.
	BytesPerSecond float64
}

// DefaultConfig models a fast LAN scaled for second-scale experiments:
// 50 us per message, 1 GB/s.
func DefaultConfig() Config {
	return Config{BaseLatency: 50 * time.Microsecond, BytesPerSecond: 1 << 30}
}

// LinkStats aggregates traffic over one directed site pair.
type LinkStats struct {
	Messages int64
	Bytes    int64
}

// Network charges and accounts cross-site traffic. Safe for concurrent use.
type Network struct {
	cfg Config

	mu    sync.Mutex
	links map[[2]SiteID]*LinkStats

	// Optional observability instruments (SetObs).
	obsMsgs  *obs.Counter
	obsBytes *obs.Counter
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	return &Network{cfg: cfg, links: make(map[[2]SiteID]*LinkStats)}
}

// SetObs installs interconnect instruments: net.messages and net.bytes
// count cross-site traffic cluster-wide (per-link detail stays in Stats).
func (nw *Network) SetObs(reg *obs.Registry) {
	nw.obsMsgs = reg.Counter("net.messages")
	nw.obsBytes = reg.Counter("net.bytes")
}

// Charge models sending n bytes from one site to another, sleeping for the
// modelled latency and returning it. Same-site messages are free.
func (nw *Network) Charge(from, to SiteID, n int) time.Duration {
	if from == to {
		return 0
	}
	nw.mu.Lock()
	key := [2]SiteID{from, to}
	ls, ok := nw.links[key]
	if !ok {
		ls = &LinkStats{}
		nw.links[key] = ls
	}
	ls.Messages++
	ls.Bytes += int64(n)
	nw.mu.Unlock()
	if nw.obsMsgs != nil {
		nw.obsMsgs.Inc()
		nw.obsBytes.Add(int64(n))
	}

	delay := nw.cfg.BaseLatency
	if nw.cfg.BytesPerSecond > 0 {
		delay += time.Duration(float64(n) / nw.cfg.BytesPerSecond * float64(time.Second))
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return delay
}

// EstimateLatency predicts the charge for n bytes without sleeping.
func (nw *Network) EstimateLatency(from, to SiteID, n int) time.Duration {
	if from == to {
		return 0
	}
	delay := nw.cfg.BaseLatency
	if nw.cfg.BytesPerSecond > 0 {
		delay += time.Duration(float64(n) / nw.cfg.BytesPerSecond * float64(time.Second))
	}
	return delay
}

// Stats returns a copy of the traffic counters for one directed link.
func (nw *Network) Stats(from, to SiteID) LinkStats {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if ls, ok := nw.links[[2]SiteID{from, to}]; ok {
		return *ls
	}
	return LinkStats{}
}

// TotalBytes sums traffic over every link.
func (nw *Network) TotalBytes() int64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	var total int64
	for _, ls := range nw.links {
		total += ls.Bytes
	}
	return total
}
