// Package simnet models the cluster interconnect standing in for the
// paper's 10 Gbps network and Thrift RPC layer. Cross-site calls charge a
// configurable per-message latency plus a bandwidth-proportional transfer
// time, so the ASA's cost trade-offs (local vs distributed joins, replica
// placement, §2.2) have the same shape as on a physical cluster. Calls
// within a site are free.
package simnet

import (
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/obs"
	"proteus/internal/vclock"
)

// SiteID identifies a data site. The ASA is site -1 by convention.
type SiteID int32

// ASASite is the conventional SiteID of the adaptive storage advisor node.
const ASASite SiteID = -1

// Config sets the interconnect's performance envelope.
type Config struct {
	// BaseLatency is charged once per message.
	BaseLatency time.Duration
	// BytesPerSecond is the link bandwidth; 0 disables the transfer charge.
	BytesPerSecond float64
}

// DefaultConfig models a fast LAN scaled for second-scale experiments:
// 50 us per message, 1 GB/s.
func DefaultConfig() Config {
	return Config{BaseLatency: 50 * time.Microsecond, BytesPerSecond: 1 << 30}
}

// LinkStats aggregates traffic over one directed site pair.
type LinkStats struct {
	Messages int64
	Bytes    int64
}

// linkCounters is the live, lock-free form of LinkStats: every site pair
// gets its own pair of atomics, so concurrent senders on different links
// never touch the same cache line and senders on the same link only
// contend on two atomic adds (the map itself is read-mostly after the
// first message on a link).
type linkCounters struct {
	messages atomic.Int64
	bytes    atomic.Int64
}

// FaultPolicy lets a fault-injection layer (internal/faults) intercept
// cross-site traffic without simnet depending on it.
type FaultPolicy interface {
	// Check reports whether messages can flow between the sites at all
	// (crashed endpoint, network partition). It must not consume
	// randomness: reachability probes call it repeatedly.
	Check(from, to SiteID) error
	// Intercept is consulted once per message; it returns latency to add
	// and a delivery error (down endpoint, partition, or message drop).
	Intercept(from, to SiteID, bytes int) (time.Duration, error)
}

// LatencyEstimator is an optional extension of FaultPolicy: policies that
// inject deterministic link latency expose it here so EstimateLatency can
// price degraded links the same way Send charges them. Without it the
// ASA's cost model sees a healthy network while traffic actually crawls.
type LatencyEstimator interface {
	// InjectedLatency returns the deterministic extra latency currently
	// configured on the directed link (0 when healthy). It must not
	// consume randomness or count as traffic.
	InjectedLatency(from, to SiteID) time.Duration
}

// policyBox wraps the FaultPolicy interface so it can live in an
// atomic.Pointer (interfaces of varying concrete type cannot).
type policyBox struct{ p FaultPolicy }

// Network charges and accounts cross-site traffic. Safe for concurrent use.
type Network struct {
	cfg Config
	clk vclock.Clock

	// links maps [2]SiteID -> *linkCounters. sync.Map because the key set
	// is tiny and stabilizes after startup (sites^2 entries), after which
	// every lookup is a lock-free read.
	links  sync.Map
	policy atomic.Pointer[policyBox]

	// Optional observability instruments (SetObs).
	obsMsgs    *obs.Counter
	obsBytes   *obs.Counter
	obsDropped *obs.Counter
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	return &Network{cfg: cfg, clk: vclock.Wall{}}
}

// SetClock installs the clock latency charges sleep on. Install before
// traffic starts (cluster.New does); nil restores the wall clock.
func (nw *Network) SetClock(c vclock.Clock) {
	nw.clk = vclock.OrWall(c)
}

// SetObs installs interconnect instruments: net.messages and net.bytes
// count cross-site traffic cluster-wide (per-link detail stays in Stats).
func (nw *Network) SetObs(reg *obs.Registry) {
	nw.obsMsgs = reg.Counter("net.messages")
	nw.obsBytes = reg.Counter("net.bytes")
	nw.obsDropped = reg.Counter("net.dropped")
}

// SetFaults installs a fault policy consulted on every cross-site message.
// Install before traffic starts (cluster.New does); a nil policy means a
// perfect network.
func (nw *Network) SetFaults(p FaultPolicy) {
	if p == nil {
		nw.policy.Store(nil)
		return
	}
	nw.policy.Store(&policyBox{p: p})
}

func (nw *Network) faults() FaultPolicy {
	if box := nw.policy.Load(); box != nil {
		return box.p
	}
	return nil
}

// Reachable reports whether messages can currently flow between the sites
// (no charge, no sleep). With no fault policy the network is perfect.
func (nw *Network) Reachable(from, to SiteID) error {
	if from == to {
		return nil
	}
	if p := nw.faults(); p != nil {
		return p.Check(from, to)
	}
	return nil
}

// link returns the counters for one directed pair, creating them on the
// first message.
func (nw *Network) link(from, to SiteID) *linkCounters {
	key := [2]SiteID{from, to}
	if v, ok := nw.links.Load(key); ok {
		return v.(*linkCounters)
	}
	v, _ := nw.links.LoadOrStore(key, &linkCounters{})
	return v.(*linkCounters)
}

// Send models delivering n bytes from one site to another: it consults the
// fault policy, sleeps for the modelled latency (base + transfer + injected
// link latency) and returns it. Failed deliveries return the fault's typed
// error without sleeping. Same-site messages are free.
func (nw *Network) Send(from, to SiteID, n int) (time.Duration, error) {
	if from == to {
		return 0, nil
	}
	var extra time.Duration
	if p := nw.faults(); p != nil {
		var err error
		extra, err = p.Intercept(from, to, n)
		if err != nil {
			if nw.obsDropped != nil {
				nw.obsDropped.Inc()
			}
			return 0, err
		}
	}
	lc := nw.link(from, to)
	lc.messages.Add(1)
	lc.bytes.Add(int64(n))
	if nw.obsMsgs != nil {
		nw.obsMsgs.Inc()
		nw.obsBytes.Add(int64(n))
	}

	delay := nw.cfg.BaseLatency + extra
	if nw.cfg.BytesPerSecond > 0 {
		delay += time.Duration(float64(n) / nw.cfg.BytesPerSecond * float64(time.Second))
	}
	if delay > 0 {
		nw.clk.Sleep(delay)
	}
	return delay, nil
}

// Charge is Send for callers that tolerate loss (best-effort messages):
// the fault error, if any, is absorbed and the charged latency returned.
func (nw *Network) Charge(from, to SiteID, n int) time.Duration {
	d, _ := nw.Send(from, to, n)
	return d
}

// EstimateLatency predicts the charge for n bytes without sleeping. It
// includes any deterministic fault-injected link latency the policy
// exposes via LatencyEstimator, matching what Send would charge on the
// degraded link (random per-message jitter is by nature not estimable).
func (nw *Network) EstimateLatency(from, to SiteID, n int) time.Duration {
	if from == to {
		return 0
	}
	delay := nw.cfg.BaseLatency
	if nw.cfg.BytesPerSecond > 0 {
		delay += time.Duration(float64(n) / nw.cfg.BytesPerSecond * float64(time.Second))
	}
	if est, ok := nw.faults().(LatencyEstimator); ok {
		delay += est.InjectedLatency(from, to)
	}
	return delay
}

// Stats returns a copy of the traffic counters for one directed link.
func (nw *Network) Stats(from, to SiteID) LinkStats {
	if v, ok := nw.links.Load([2]SiteID{from, to}); ok {
		lc := v.(*linkCounters)
		return LinkStats{Messages: lc.messages.Load(), Bytes: lc.bytes.Load()}
	}
	return LinkStats{}
}

// TotalBytes sums traffic over every link.
func (nw *Network) TotalBytes() int64 {
	var total int64
	nw.links.Range(func(_, v any) bool {
		total += v.(*linkCounters).bytes.Load()
		return true
	})
	return total
}

// TotalMessages sums message counts over every link.
func (nw *Network) TotalMessages() int64 {
	var total int64
	nw.links.Range(func(_, v any) bool {
		total += v.(*linkCounters).messages.Load()
		return true
	})
	return total
}
