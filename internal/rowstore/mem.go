// Package rowstore implements Proteus' row-oriented (n-ary) storage layouts
// (§4.1.1 of the paper): an in-memory store holding each row as a fixed-size
// byte array with a version-chain pointer for multi-versioning, and an
// on-disk store with an index section plus inlined variable-size data that
// buffers updates in memory and applies them as batches.
package rowstore

import (
	"fmt"
	"sort"
	"sync"

	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// version is one immutable row image. The paper stores an 8-byte pointer to
// the previous version in the final bytes of each row's byte array; under
// Go's GC we keep the pointer alongside the array (the 8-byte slot is still
// accounted in the row width so space estimates match the paper's format).
type version struct {
	data    []byte
	ver     uint64
	prev    *version
	deleted bool
}

// Mem is the in-memory row store. Each row of the partition is a fixed-size
// byte array sized from the table schema and the store's column slice;
// updates rewrite the whole row and chain the previous version.
type Mem struct {
	mu     sync.RWMutex
	kinds  []types.Kind
	offs   []int // byte offset of each column within the row array
	width  int   // full row width including the 8-byte version-pointer slot
	arena  *types.Arena
	rows   map[schema.RowID]*version
	ids    []schema.RowID // sorted live+dead ids for ordered scans
	nvers  int
	layout storage.Layout
}

// NewMem creates an empty in-memory row store over the given column kinds.
func NewMem(kinds []types.Kind) *Mem {
	offs := make([]int, len(kinds))
	w := 0
	for i, k := range kinds {
		offs[i] = w
		w += k.FixedWidth()
	}
	return &Mem{
		kinds:  kinds,
		offs:   offs,
		width:  w + 8,
		arena:  types.NewArena(),
		rows:   make(map[schema.RowID]*version),
		layout: storage.Layout{Format: storage.RowFormat, Tier: storage.MemoryTier, SortBy: storage.NoSort},
	}
}

// Layout implements storage.Store.
func (m *Mem) Layout() storage.Layout { return m.layout }

func (m *Mem) encode(vals []types.Value) ([]byte, error) {
	if len(vals) != len(m.kinds) {
		return nil, fmt.Errorf("rowstore: %d values for %d columns", len(vals), len(m.kinds))
	}
	buf := make([]byte, m.width)
	for i, v := range vals {
		if v.IsNull() {
			continue // zeroed slot encodes NULL-as-zero; workloads do not store NULLs
		}
		types.PutFixed(buf[m.offs[i]:], v, m.arena)
	}
	return buf, nil
}

func (m *Mem) insertID(id schema.RowID) {
	i := sort.Search(len(m.ids), func(i int) bool { return m.ids[i] >= id })
	if i < len(m.ids) && m.ids[i] == id {
		return
	}
	m.ids = append(m.ids, 0)
	copy(m.ids[i+1:], m.ids[i:])
	m.ids[i] = id
}

// Insert implements storage.Store. Encoding happens under the lock: it
// appends to the shared string arena.
func (m *Mem) Insert(row schema.Row, ver uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.rows[row.ID]; ok && !cur.deleted {
		return fmt.Errorf("rowstore: duplicate row %d", row.ID)
	}
	data, err := m.encode(row.Vals)
	if err != nil {
		return err
	}
	m.rows[row.ID] = &version{data: data, ver: ver, prev: m.rows[row.ID]}
	m.insertID(row.ID)
	m.nvers++
	return nil
}

// Update implements storage.Store. Once written, a row array is read-only:
// updates rewrite the entire row and link the previous version (§4.1.1).
func (m *Mem) Update(id schema.RowID, cols []schema.ColID, vals []types.Value, ver uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.rows[id]
	if !ok || cur.deleted {
		return fmt.Errorf("rowstore: update of missing row %d", id)
	}
	data := make([]byte, m.width)
	copy(data, cur.data)
	for i, c := range cols {
		if int(c) >= len(m.kinds) {
			return fmt.Errorf("rowstore: column %d out of range", c)
		}
		types.PutFixed(data[m.offs[c]:], vals[i], m.arena)
	}
	m.rows[id] = &version{data: data, ver: ver, prev: cur}
	m.nvers++
	return nil
}

// Delete implements storage.Store, writing a tombstone version.
func (m *Mem) Delete(id schema.RowID, ver uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.rows[id]
	if !ok || cur.deleted {
		return fmt.Errorf("rowstore: delete of missing row %d", id)
	}
	m.rows[id] = &version{ver: ver, prev: cur, deleted: true}
	m.nvers++
	return nil
}

// visible walks the version chain to the newest version at or before snap.
func visible(v *version, snap uint64) *version {
	for v != nil && v.ver > snap {
		v = v.prev
	}
	return v
}

func (m *Mem) decodeCols(data []byte, cols []schema.ColID) []types.Value {
	out := make([]types.Value, len(cols))
	m.decodeColsInto(out, data, cols)
	return out
}

// decodeColsInto decodes into caller-owned scratch (the batch scan path
// reuses one slice across every row).
func (m *Mem) decodeColsInto(dst []types.Value, data []byte, cols []schema.ColID) {
	for i, c := range cols {
		dst[i] = types.GetFixed(data[m.offs[c]:], m.kinds[c], m.arena)
	}
}

// Get implements storage.Store.
func (m *Mem) Get(id schema.RowID, cols []schema.ColID, snap uint64) (schema.Row, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v := visible(m.rows[id], snap)
	if v == nil || v.deleted {
		return schema.Row{}, false
	}
	return schema.Row{ID: id, Vals: m.decodeCols(v.data, cols)}, true
}

// Scan implements storage.Store via the batch shim. Rows stream in RowID
// order.
func (m *Mem) Scan(cols []schema.ColID, pred storage.Pred, snap uint64, fn func(schema.Row) bool) {
	storage.ScanViaBatches(m, cols, pred, snap, fn)
}

// ScanBatches implements storage.BatchScanner by transposing matching rows
// into pooled batches. The predicate is still evaluated against the full
// decoded row (cell-based access is what makes row scans read every
// attribute — the cost asymmetry of Figure 3), but decode scratch and
// batch buffers are reused across rows.
func (m *Mem) ScanBatches(cols []schema.ColID, pred storage.Pred, snap uint64, maxRows int, fn func(*storage.Batch) bool) {
	m.scanBatches(cols, pred, 0, 0, false, snap, maxRows, fn)
}

// ScanBatchesRange implements storage.BatchRangeScanner.
func (m *Mem) ScanBatchesRange(cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID, snap uint64, maxRows int, fn func(*storage.Batch) bool) {
	m.scanBatches(cols, pred, lo, hi, true, snap, maxRows, fn)
}

func (m *Mem) scanBatches(cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID, bounded bool, snap uint64, maxRows int, fn func(*storage.Batch) bool) {
	if maxRows <= 0 {
		maxRows = storage.DefaultBatchRows
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	b := storage.GetBatch(len(cols))
	defer storage.PutBatch(b)
	all := allCols(len(m.kinds))
	full := make([]types.Value, len(all))
	out := make([]types.Value, len(cols))
	start := 0
	if bounded {
		start = sort.Search(len(m.ids), func(i int) bool { return m.ids[i] >= lo })
	}
	stopped := false
	for _, id := range m.ids[start:] {
		if bounded && id >= hi {
			break
		}
		v := visible(m.rows[id], snap)
		if v == nil || v.deleted {
			continue
		}
		m.decodeColsInto(full, v.data, all)
		if !pred.Match(full) {
			continue
		}
		for i, c := range cols {
			out[i] = full[c]
		}
		b.AppendRow(id, out)
		if b.NumRows() >= maxRows {
			if !storage.EmitBatch(b, fn) {
				stopped = true
				break
			}
			b.Reset(len(cols))
		}
	}
	if !stopped && b.NumRows() > 0 {
		storage.EmitBatch(b, fn)
	}
}

// MorselBounds implements storage.RangeScanner: cut points every targetRows
// entries of the sorted id slice.
func (m *Mem) MorselBounds(targetRows int) []schema.RowID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if targetRows <= 0 || len(m.ids) == 0 {
		return nil
	}
	bounds := make([]schema.RowID, 0, len(m.ids)/targetRows+2)
	for i := 0; i < len(m.ids); i += targetRows {
		bounds = append(bounds, m.ids[i])
	}
	bounds = append(bounds, m.ids[len(m.ids)-1]+1)
	return bounds
}

// ScanRange implements storage.RangeScanner via the batch shim: Scan
// restricted to lo <= id < hi via binary search on the sorted id slice.
func (m *Mem) ScanRange(cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID, snap uint64, fn func(schema.Row) bool) {
	storage.ScanRangeViaBatches(m, cols, pred, lo, hi, snap, fn)
}

// Load implements storage.Store, bulk loading by allocating a fixed-size
// buffer for every row (§4.4).
func (m *Mem) Load(rows []schema.Row, ver uint64) error {
	m.mu.Lock()
	m.rows = make(map[schema.RowID]*version, len(rows))
	m.ids = m.ids[:0]
	m.arena = types.NewArena()
	m.nvers = 0
	m.mu.Unlock()
	for _, r := range rows {
		if err := m.Insert(r, ver); err != nil {
			return err
		}
	}
	return nil
}

// ExtractAll implements storage.Store.
func (m *Mem) ExtractAll(snap uint64) []schema.Row {
	var out []schema.Row
	m.Scan(allCols(len(m.kinds)), nil, snap, func(r schema.Row) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Stats implements storage.Store.
func (m *Mem) Stats() storage.Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	live := 0
	for _, v := range m.rows {
		if !v.deleted {
			live++
		}
	}
	return storage.Stats{
		Rows:     live,
		Bytes:    m.nvers*m.width + m.arena.Bytes(),
		Versions: m.nvers,
	}
}

// GC discards version-chain entries that no snapshot at or after snap can
// observe: everything strictly older than the newest version visible at
// snap. Returns the number of versions reclaimed.
func (m *Mem) GC(snap uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	reclaimed := 0
	for _, head := range m.rows {
		cut := visible(head, snap)
		if cut == nil {
			// Every version is newer than snap; the oldest must stay as the
			// chain terminus.
			continue
		}
		for p := cut.prev; p != nil; p = p.prev {
			reclaimed++
		}
		cut.prev = nil
	}
	m.nvers -= reclaimed
	return reclaimed
}

func allCols(n int) []schema.ColID {
	out := make([]schema.ColID, n)
	for i := range out {
		out[i] = schema.ColID(i)
	}
	return out
}
