package rowstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"proteus/internal/disksim"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Disk is the on-disk row store (§4.1.1). The serialized image has two
// parts: an index giving each row's offset, and the row data with
// variable-sized values inlined after their lengths. The index is cached in
// memory so point reads cost one ranged block access; scans read the image
// sequentially. Updates are buffered in memory as version chains and
// applied to disk as a batch by Flush.
type Disk struct {
	mu    sync.RWMutex
	kinds []types.Kind
	dev   *disksim.Device

	block    disksim.BlockID
	hasBlock bool
	index    map[schema.RowID]idxEntry
	order    []schema.RowID // sorted ids present in the flushed image

	buffer     map[schema.RowID]*bufVersion // pending newer versions
	bufIDs     []schema.RowID               // sorted ids present only in buffer
	flushedVer uint64
	imageBytes int
	reads      int
	writes     int
	layout     storage.Layout
}

type idxEntry struct {
	off int
	n   int
}

type bufVersion struct {
	vals    []types.Value // full row at this version
	ver     uint64
	prev    *bufVersion
	deleted bool
}

// NewDisk creates an empty on-disk row store backed by dev.
func NewDisk(kinds []types.Kind, dev *disksim.Device) *Disk {
	return &Disk{
		kinds:  kinds,
		dev:    dev,
		index:  make(map[schema.RowID]idxEntry),
		buffer: make(map[schema.RowID]*bufVersion),
		layout: storage.Layout{Format: storage.RowFormat, Tier: storage.DiskTier, SortBy: storage.NoSort},
	}
}

// Layout implements storage.Store.
func (d *Disk) Layout() storage.Layout { return d.layout }

// serialize produces the disk image and index for rows (sorted by RowID).
func (d *Disk) serialize(rows []schema.Row) ([]byte, map[schema.RowID]idxEntry, []schema.RowID) {
	var buf []byte
	index := make(map[schema.RowID]idxEntry, len(rows))
	order := make([]schema.RowID, 0, len(rows))
	var hdr [12]byte
	for _, r := range rows {
		start := len(buf)
		binary.LittleEndian.PutUint64(hdr[:8], uint64(r.ID))
		buf = append(buf, hdr[:8]...)
		for _, v := range r.Vals {
			buf = append(buf, byte(v.K))
			buf = types.AppendVar(buf, v)
		}
		index[r.ID] = idxEntry{off: start, n: len(buf) - start}
		order = append(order, r.ID)
	}
	return buf, index, order
}

// decodeRow decodes one serialized row image.
func (d *Disk) decodeRow(data []byte) (schema.Row, error) {
	if len(data) < 8 {
		return schema.Row{}, fmt.Errorf("rowstore: truncated row image")
	}
	id := schema.RowID(binary.LittleEndian.Uint64(data))
	off := 8
	vals := make([]types.Value, len(d.kinds))
	for i, k := range d.kinds {
		if off >= len(data) {
			return schema.Row{}, fmt.Errorf("rowstore: truncated row %d", id)
		}
		got := types.Kind(data[off])
		off++
		if got == types.KindNull {
			vals[i] = types.Null()
			continue
		}
		if got != k {
			return schema.Row{}, fmt.Errorf("rowstore: row %d column %d kind %v, want %v", id, i, got, k)
		}
		v, n := types.DecodeVar(data[off:], k)
		vals[i] = v
		off += n
	}
	return schema.Row{ID: id, Vals: vals}, nil
}

// Load implements storage.Store: rows are dynamically sized and written to
// disk sequentially (§4.4).
func (d *Disk) Load(rows []schema.Row, ver uint64) error {
	sorted := make([]schema.Row, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	img, index, order := d.serialize(sorted)

	d.mu.Lock()
	oldBlock, had := d.block, d.hasBlock
	d.mu.Unlock()

	blk, err := d.dev.Write(img)
	if err != nil {
		return err
	}
	if had {
		_ = d.dev.Free(oldBlock)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	d.block, d.hasBlock = blk, true
	d.index, d.order = index, order
	d.buffer = make(map[schema.RowID]*bufVersion)
	d.bufIDs = nil
	d.flushedVer = ver
	d.imageBytes = len(img)
	d.writes++
	return nil
}

func (d *Disk) bufferWrite(id schema.RowID, vals []types.Value, ver uint64, deleted bool) {
	cur := d.buffer[id]
	d.buffer[id] = &bufVersion{vals: vals, ver: ver, prev: cur, deleted: deleted}
	if cur == nil {
		if _, onDisk := d.index[id]; !onDisk {
			i := sort.Search(len(d.bufIDs), func(i int) bool { return d.bufIDs[i] >= id })
			if i == len(d.bufIDs) || d.bufIDs[i] != id {
				d.bufIDs = append(d.bufIDs, 0)
				copy(d.bufIDs[i+1:], d.bufIDs[i:])
				d.bufIDs[i] = id
			}
		}
	}
}

// Insert implements storage.Store.
func (d *Disk) Insert(row schema.Row, ver uint64) error {
	if len(row.Vals) != len(d.kinds) {
		return fmt.Errorf("rowstore: %d values for %d columns", len(row.Vals), len(d.kinds))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// A row is a duplicate if it is live in the buffer, or present on disk
	// with no buffered tombstone (liveLocked defers to disk in that case).
	if v, done := d.liveLocked(row.ID, storage.Latest); !done || v != nil {
		return fmt.Errorf("rowstore: duplicate row %d", row.ID)
	}
	vals := make([]types.Value, len(row.Vals))
	copy(vals, row.Vals)
	d.bufferWrite(row.ID, vals, ver, false)
	return nil
}

// liveLocked returns the row's current values at snap, consulting the
// buffer first then the disk image. The bool reports whether the lookup
// completed (a nil slice with ok=true means deleted/absent).
func (d *Disk) liveLocked(id schema.RowID, snap uint64) ([]types.Value, bool) {
	for v := d.buffer[id]; v != nil; v = v.prev {
		if v.ver <= snap {
			if v.deleted {
				return nil, true
			}
			return v.vals, true
		}
	}
	if _, ok := d.index[id]; ok {
		return nil, false // caller must read from disk
	}
	return nil, true
}

func (d *Disk) readFromDisk(id schema.RowID) (schema.Row, error) {
	d.mu.RLock()
	e, ok := d.index[id]
	blk := d.block
	d.mu.RUnlock()
	if !ok {
		return schema.Row{}, fmt.Errorf("rowstore: row %d not on disk", id)
	}
	data, err := d.dev.ReadRange(blk, e.off, e.n)
	if err != nil {
		return schema.Row{}, err
	}
	d.mu.Lock()
	d.reads++
	d.mu.Unlock()
	return d.decodeRow(data)
}

// Update implements storage.Store.
func (d *Disk) Update(id schema.RowID, cols []schema.ColID, vals []types.Value, ver uint64) error {
	cur, err := d.currentRow(id)
	if err != nil {
		return err
	}
	next := make([]types.Value, len(cur))
	copy(next, cur)
	for i, c := range cols {
		if int(c) >= len(d.kinds) {
			return fmt.Errorf("rowstore: column %d out of range", c)
		}
		next[c] = vals[i]
	}
	d.mu.Lock()
	d.bufferWrite(id, next, ver, false)
	d.mu.Unlock()
	return nil
}

// currentRow fetches the newest values of a live row, from buffer or disk.
func (d *Disk) currentRow(id schema.RowID) ([]types.Value, error) {
	d.mu.RLock()
	vals, done := d.liveLocked(id, storage.Latest)
	d.mu.RUnlock()
	if done {
		if vals == nil {
			return nil, fmt.Errorf("rowstore: row %d not found", id)
		}
		return vals, nil
	}
	r, err := d.readFromDisk(id)
	if err != nil {
		return nil, err
	}
	return r.Vals, nil
}

// Delete implements storage.Store.
func (d *Disk) Delete(id schema.RowID, ver uint64) error {
	if _, err := d.currentRow(id); err != nil {
		return err
	}
	d.mu.Lock()
	d.bufferWrite(id, nil, ver, true)
	d.mu.Unlock()
	return nil
}

// Get implements storage.Store. Point reads cost one ranged block access
// when the row is not in the update buffer. Snapshots older than the last
// flush observe the flushed image (the maintenance layer flushes only
// versions no active snapshot still needs).
func (d *Disk) Get(id schema.RowID, cols []schema.ColID, snap uint64) (schema.Row, bool) {
	d.mu.RLock()
	vals, done := d.liveLocked(id, snap)
	d.mu.RUnlock()
	if done {
		if vals == nil {
			return schema.Row{}, false
		}
		return schema.Row{ID: id, Vals: project(vals, cols)}, true
	}
	r, err := d.readFromDisk(id)
	if err != nil {
		return schema.Row{}, false
	}
	return schema.Row{ID: id, Vals: project(r.Vals, cols)}, true
}

func project(vals []types.Value, cols []schema.ColID) []types.Value {
	out := make([]types.Value, len(cols))
	for i, c := range cols {
		out[i] = vals[c]
	}
	return out
}

// Scan implements storage.Store via the batch shim, streamed in RowID
// order.
func (d *Disk) Scan(cols []schema.ColID, pred storage.Pred, snap uint64, fn func(schema.Row) bool) {
	storage.ScanViaBatches(d, cols, pred, snap, fn)
}

// ScanBatches implements storage.BatchScanner: one sequential image read
// merged with the update buffer, transposed into pooled batches in RowID
// order.
func (d *Disk) ScanBatches(cols []schema.ColID, pred storage.Pred, snap uint64, maxRows int, fn func(*storage.Batch) bool) {
	if maxRows <= 0 {
		maxRows = storage.DefaultBatchRows
	}
	d.mu.RLock()
	blk, has := d.block, d.hasBlock
	order := d.order
	bufIDs := append([]schema.RowID(nil), d.bufIDs...)
	d.mu.RUnlock()

	diskRows := map[schema.RowID]schema.Row{}
	if has && len(order) > 0 {
		img, err := d.dev.Read(blk)
		if err == nil {
			d.mu.Lock()
			d.reads++
			index := d.index
			d.mu.Unlock()
			for _, id := range order {
				e := index[id]
				if r, err := d.decodeRow(img[e.off : e.off+e.n]); err == nil {
					diskRows[id] = r
				}
			}
		}
	}

	b := storage.GetBatch(len(cols))
	defer storage.PutBatch(b)
	out := make([]types.Value, len(cols))
	stopped := false

	// Merge disk order with buffered-only ids.
	ids := mergeIDs(order, bufIDs)
	for _, id := range ids {
		var vals []types.Value
		d.mu.RLock()
		bvals, done := d.liveLocked(id, snap)
		d.mu.RUnlock()
		if done {
			if bvals == nil {
				continue
			}
			vals = bvals
		} else if r, ok := diskRows[id]; ok {
			vals = r.Vals
		} else {
			continue
		}
		if !pred.Match(vals) {
			continue
		}
		for i, c := range cols {
			out[i] = vals[c]
		}
		b.AppendRow(id, out)
		if b.NumRows() >= maxRows {
			if !storage.EmitBatch(b, fn) {
				stopped = true
				break
			}
			b.Reset(len(cols))
		}
	}
	if !stopped && b.NumRows() > 0 {
		storage.EmitBatch(b, fn)
	}
}

func mergeIDs(a, b []schema.RowID) []schema.RowID {
	out := make([]schema.RowID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// ExtractAll implements storage.Store.
func (d *Disk) ExtractAll(snap uint64) []schema.Row {
	var out []schema.Row
	d.Scan(allCols(len(d.kinds)), nil, snap, func(r schema.Row) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Flush applies the buffered updates to disk as one batch, rewriting the
// partition image (§4.1.1: in-place for same-size updates is subsumed by
// the batch rewrite in this implementation).
func (d *Disk) Flush(ver uint64) error {
	rows := d.ExtractAll(ver)
	return d.Load(rows, ver)
}

// BufferedRows reports how many rows have pending buffered updates.
func (d *Disk) BufferedRows() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.buffer)
}

// Stats implements storage.Store.
func (d *Disk) Stats() storage.Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	live := 0
	seen := map[schema.RowID]bool{}
	for id, v := range d.buffer {
		seen[id] = true
		if !v.deleted {
			live++
		}
	}
	for id := range d.index {
		if !seen[id] {
			live++
		}
	}
	nv := 0
	for _, v := range d.buffer {
		for p := v; p != nil; p = p.prev {
			nv++
		}
	}
	return storage.Stats{
		Rows:       live,
		Bytes:      d.imageBytes,
		Versions:   nv,
		DeltaRows:  len(d.buffer),
		DiskReads:  d.reads,
		DiskWrites: d.writes,
	}
}
