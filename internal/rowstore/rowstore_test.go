package rowstore

import (
	"fmt"
	"testing"
	"testing/quick"

	"proteus/internal/disksim"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

var testKinds = []types.Kind{types.KindInt64, types.KindString, types.KindFloat64}

func mkRow(id int64) schema.Row {
	return schema.Row{ID: schema.RowID(id), Vals: []types.Value{
		types.NewInt64(id * 10),
		types.NewString(fmt.Sprintf("name-%d-with-long-suffix", id)),
		types.NewFloat64(float64(id) / 2),
	}}
}

// stores returns both row-store variants behind the common interface so
// every behaviour test runs against each.
func stores(t *testing.T) map[string]storage.Store {
	t.Helper()
	dev := disksim.New(disksim.Config{}) // zero-latency device for unit tests
	return map[string]storage.Store{
		"mem":  NewMem(testKinds),
		"disk": NewDisk(testKinds, dev),
	}
}

func TestInsertGet(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Insert(mkRow(1), 1); err != nil {
				t.Fatal(err)
			}
			r, ok := s.Get(1, []schema.ColID{0, 1, 2}, storage.Latest)
			if !ok {
				t.Fatal("row not found")
			}
			if r.Vals[0].Int() != 10 || r.Vals[1].Str() != "name-1-with-long-suffix" || r.Vals[2].Float() != 0.5 {
				t.Errorf("got %v", r.Vals)
			}
		})
	}
}

func TestGetProjection(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Insert(mkRow(1), 1); err != nil {
				t.Fatal(err)
			}
			r, ok := s.Get(1, []schema.ColID{2}, storage.Latest)
			if !ok || len(r.Vals) != 1 || r.Vals[0].Float() != 0.5 {
				t.Errorf("projection: %v %v", r, ok)
			}
		})
	}
}

func TestDuplicateInsert(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Insert(mkRow(1), 1); err != nil {
				t.Fatal(err)
			}
			if err := s.Insert(mkRow(1), 2); err == nil {
				t.Error("expected duplicate error")
			}
		})
	}
}

func TestUpdateCreatesVersion(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Insert(mkRow(1), 1); err != nil {
				t.Fatal(err)
			}
			if err := s.Update(1, []schema.ColID{0}, []types.Value{types.NewInt64(999)}, 5); err != nil {
				t.Fatal(err)
			}
			// Snapshot before the update sees the old value.
			r, ok := s.Get(1, []schema.ColID{0}, 4)
			if !ok || r.Vals[0].Int() != 10 {
				t.Errorf("snapshot 4: %v %v", r, ok)
			}
			// Snapshot at/after the update sees the new value; other columns keep theirs.
			r, ok = s.Get(1, []schema.ColID{0, 2}, 5)
			if !ok || r.Vals[0].Int() != 999 || r.Vals[1].Float() != 0.5 {
				t.Errorf("snapshot 5: %v %v", r, ok)
			}
		})
	}
}

func TestUpdateMissingRow(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Update(42, []schema.ColID{0}, []types.Value{types.NewInt64(0)}, 1); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestDeleteVisibility(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Insert(mkRow(1), 1); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(1, 3); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(1, []schema.ColID{0}, 2); !ok {
				t.Error("pre-delete snapshot should see the row")
			}
			if _, ok := s.Get(1, []schema.ColID{0}, 3); ok {
				t.Error("post-delete snapshot should not see the row")
			}
			if err := s.Delete(1, 4); err == nil {
				t.Error("double delete should fail")
			}
			// Re-insert after delete is allowed.
			if err := s.Insert(mkRow(1), 5); err != nil {
				t.Errorf("re-insert after delete: %v", err)
			}
		})
	}
}

func TestScanPredicateAndOrder(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for i := int64(5); i >= 1; i-- { // insert out of order
				if err := s.Insert(mkRow(i), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			pred := storage.Pred{{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(30)}}
			var got []schema.RowID
			s.Scan([]schema.ColID{0}, pred, storage.Latest, func(r schema.Row) bool {
				got = append(got, r.ID)
				return true
			})
			want := []schema.RowID{3, 4, 5}
			if len(got) != len(want) {
				t.Fatalf("scan got %v", got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("scan order: got %v want %v", got, want)
				}
			}
		})
	}
}

func TestScanEarlyStop(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for i := int64(1); i <= 10; i++ {
				if err := s.Insert(mkRow(i), 1); err != nil {
					t.Fatal(err)
				}
			}
			n := 0
			s.Scan([]schema.ColID{0}, nil, storage.Latest, func(schema.Row) bool {
				n++
				return n < 3
			})
			if n != 3 {
				t.Errorf("early stop visited %d rows", n)
			}
		})
	}
}

func TestLoadAndExtract(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			rows := []schema.Row{mkRow(3), mkRow(1), mkRow(2)}
			if err := s.Load(rows, 1); err != nil {
				t.Fatal(err)
			}
			out := s.ExtractAll(storage.Latest)
			if len(out) != 3 {
				t.Fatalf("extracted %d rows", len(out))
			}
			for i, r := range out {
				if r.ID != schema.RowID(i+1) {
					t.Errorf("extract order: %v", out)
				}
				if len(r.Vals) != 3 {
					t.Errorf("extract width: %v", r)
				}
			}
		})
	}
}

func TestStats(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for i := int64(1); i <= 4; i++ {
				if err := s.Insert(mkRow(i), 1); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Delete(4, 2); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Rows != 3 {
				t.Errorf("%s Rows = %d, want 3", name, st.Rows)
			}
			if name == "mem" && st.Bytes == 0 {
				t.Error("mem store should report bytes")
			}
		})
	}
}

func TestLayouts(t *testing.T) {
	dev := disksim.New(disksim.Config{})
	m, d := NewMem(testKinds), NewDisk(testKinds, dev)
	if l := m.Layout(); l.Format != storage.RowFormat || l.Tier != storage.MemoryTier {
		t.Errorf("mem layout = %v", l)
	}
	if l := d.Layout(); l.Format != storage.RowFormat || l.Tier != storage.DiskTier {
		t.Errorf("disk layout = %v", l)
	}
}

func TestDiskFlushAndReRead(t *testing.T) {
	dev := disksim.New(disksim.Config{})
	d := NewDisk(testKinds, dev)
	if err := d.Load([]schema.Row{mkRow(1), mkRow(2)}, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Update(1, []schema.ColID{0}, []types.Value{types.NewInt64(-7)}, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(mkRow(9), 3); err != nil {
		t.Fatal(err)
	}
	if d.BufferedRows() != 2 {
		t.Errorf("buffered = %d, want 2", d.BufferedRows())
	}
	if err := d.Flush(3); err != nil {
		t.Fatal(err)
	}
	if d.BufferedRows() != 0 {
		t.Errorf("buffered after flush = %d", d.BufferedRows())
	}
	r, ok := d.Get(1, []schema.ColID{0}, storage.Latest)
	if !ok || r.Vals[0].Int() != -7 {
		t.Errorf("post-flush read: %v %v", r, ok)
	}
	if got := d.ExtractAll(storage.Latest); len(got) != 3 {
		t.Errorf("post-flush rows = %d", len(got))
	}
}

func TestMemGC(t *testing.T) {
	m := NewMem(testKinds)
	if err := m.Insert(mkRow(1), 1); err != nil {
		t.Fatal(err)
	}
	for v := uint64(2); v <= 6; v++ {
		if err := m.Update(1, []schema.ColID{0}, []types.Value{types.NewInt64(int64(v))}, v); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.Versions != 6 {
		t.Fatalf("versions = %d, want 6", st.Versions)
	}
	reclaimed := m.GC(6)
	if reclaimed != 5 {
		t.Errorf("reclaimed = %d, want 5", reclaimed)
	}
	r, ok := m.Get(1, []schema.ColID{0}, storage.Latest)
	if !ok || r.Vals[0].Int() != 6 {
		t.Errorf("post-GC value: %v", r)
	}
}

// Property: for a random batch of distinct rows, Load then ExtractAll is the
// identity (up to RowID ordering) on both layouts.
func TestLoadExtractRoundTripProperty(t *testing.T) {
	dev := disksim.New(disksim.Config{})
	f := func(seeds []int16) bool {
		seen := map[int64]bool{}
		var rows []schema.Row
		for _, s := range seeds {
			id := int64(s)
			if id < 0 {
				id = -id
			}
			if seen[id] {
				continue
			}
			seen[id] = true
			rows = append(rows, mkRow(id))
		}
		for _, s := range []storage.Store{NewMem(testKinds), NewDisk(testKinds, dev)} {
			if err := s.Load(rows, 1); err != nil {
				return false
			}
			out := s.ExtractAll(storage.Latest)
			if len(out) != len(rows) {
				return false
			}
			byID := map[schema.RowID]schema.Row{}
			for _, r := range rows {
				byID[r.ID] = r
			}
			for _, r := range out {
				want := byID[r.ID]
				for i := range r.Vals {
					if !types.Equal(r.Vals[i], want.Vals[i]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
