package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Counts is the workload outcome tally. In rounds mode with faults off
// these are fully determined by the spec and seed, which is what the
// clock-equivalence and determinism tests key on.
type Counts struct {
	OLTPAttempted int64 `json:"oltp_attempted"`
	OLTPAcked     int64 `json:"oltp_acked"`
	OLAPAttempted int64 `json:"olap_attempted"`
	OLAPAcked     int64 `json:"olap_acked"`
	Shed          int64 `json:"shed"`
	Errors        int64 `json:"errors"`
	RowsVerified  int64 `json:"rows_verified"`
	AckedLost     int64 `json:"acked_lost"`
	Converged     bool  `json:"converged"`
}

// CanonicalReport is the deterministic slice of a run's outcome: no
// wall-clock durations, no latency quantiles, nothing that depends on
// host speed. Two virtual-clock runs of a controlled scenario (rounds
// mode, single client, no faults) must produce byte-identical
// CanonicalJSON.
type CanonicalReport struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Mode     string `json:"mode"`
	Sites    int    `json:"sites"`
	Clients  int    `json:"clients"`
	Counts   Counts `json:"counts"`
	Messages int64  `json:"messages"`
	Bytes    int64  `json:"bytes"`
}

// CanonicalJSON renders the canonical report with stable field order.
func (c CanonicalReport) CanonicalJSON() []byte {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil { // struct of scalars: cannot fail
		panic(err)
	}
	return append(b, '\n')
}

// Report is the full run outcome: the canonical counts plus clocks,
// latency quantiles, fault bookkeeping, simulator internals and any
// invariant violations.
type Report struct {
	Canonical CanonicalReport

	Virtual time.Duration // virtual elapsed (equals wall on Wall clock)
	Wall    time.Duration // real elapsed

	OLTPP50, OLTPP99 time.Duration // admitted-work latency (virtual)
	OLAPP50, OLAPP99 time.Duration

	FaultsApplied int
	ConvergeLag   string // last lagging replica when convergence failed

	// SimAdvances/SimIdleAdvances report the virtual clock's event-loop
	// work (zero on the wall clock).
	SimAdvances     uint64
	SimIdleAdvances uint64

	Violations []string
}

// Passed reports whether every asserted invariant held.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// Summary renders a one-line human-readable digest.
func (r *Report) Summary() string {
	c := r.Canonical.Counts
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %s  virtual=%v wall=%v  oltp=%d/%d olap=%d/%d shed=%d err=%d",
		r.Canonical.Scenario, status, r.Virtual.Round(time.Millisecond), r.Wall.Round(time.Millisecond),
		c.OLTPAcked, c.OLTPAttempted, c.OLAPAcked, c.OLAPAttempted, c.Shed, c.Errors)
	fmt.Fprintf(&b, "  verified=%d lost=%d converged=%v", c.RowsVerified, c.AckedLost, c.Converged)
	fmt.Fprintf(&b, "  p99(oltp)=%v msgs=%d", r.OLTPP99.Round(10*time.Microsecond), r.Canonical.Messages)
	if r.FaultsApplied > 0 {
		fmt.Fprintf(&b, " faults=%d", r.FaultsApplied)
	}
	if r.SimAdvances > 0 {
		fmt.Fprintf(&b, " advances=%d(%d idle)", r.SimAdvances, r.SimIdleAdvances)
	}
	return b.String()
}
