package scenario

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"proteus/internal/admission"
	"proteus/internal/cluster"
	"proteus/internal/exec"
	"proteus/internal/faults"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
	"proteus/internal/vclock"
)

// Options configures one run of a scenario.
type Options struct {
	// Clock is the time source: nil or vclock.Wall{} replays the scenario
	// in real time; a *vclock.Sim compresses the virtual window into
	// however long the event loop takes.
	Clock vclock.Clock
	// Logf receives progress lines (nil silences them).
	Logf func(format string, args ...any)
}

// clientState is one closed-loop client's private tally. Clients own
// disjoint row stripes, so the acked map records the last acknowledged
// value per row without cross-client races — the read-back phase then
// checks the healed cluster still serves exactly those values.
type clientState struct {
	oltpAttempted, oltpAcked int64
	olapAttempted, olapAcked int64
	shed, errs               int64
	acked                    map[schema.RowID]float64
}

var testCols = []schema.Column{
	{Name: "id", Kind: types.KindInt64},
	{Name: "grp", Kind: types.KindInt64},
	{Name: "val", Kind: types.KindFloat64},
	{Name: "note", Kind: types.KindString, AvgSize: 16},
}

// Run executes the scenario against a freshly built engine on the given
// clock and returns the outcome report. The error return covers setup
// failures only; invariant violations land in Report.Violations.
func Run(spec Spec, opt Options) (*Report, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	clk := vclock.OrWall(opt.Clock)

	cfg := spec.engineConfig()
	cfg.Clock = opt.Clock
	e := cluster.New(cfg)
	defer e.Close()

	tbl, err := e.CreateTable(cluster.TableSpec{
		Name: "items", Cols: testCols, MaxRows: schema.RowID(spec.Rows), Partitions: spec.Partitions,
	})
	if err != nil {
		return nil, err
	}
	data := make([]schema.Row, 0, spec.Rows)
	for i := int64(0); i < spec.Rows; i++ {
		data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 16), types.NewFloat64(float64(i)), types.NewString(fmt.Sprintf("row-%d", i)),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, data); err != nil {
		return nil, err
	}
	if spec.ReplicateEach && spec.Sites > 1 {
		for _, m := range e.Dir.TablePartitions(tbl.ID) {
			target := simnet.SiteID((int(m.Master().Site) + 1) % spec.Sites)
			if err := e.AddReplicaOp(m.ID, target, storage.DefaultColumnLayout()); err != nil {
				return nil, fmt.Errorf("replicate partition %d: %w", m.ID, err)
			}
		}
	}

	var tenants []string
	if spec.Admission != nil {
		for name := range spec.Admission.Tenants {
			tenants = append(tenants, name)
		}
		sort.Strings(tenants)
	}

	wallStart := time.Now()
	virtStart := clk.Now()
	runCtx, stopRun := context.WithCancel(context.Background())
	defer stopRun()

	// Fault replay: walk the seeded schedule on the scenario clock.
	faultsApplied := 0
	var faultWG sync.WaitGroup
	if spec.Faults != nil {
		events := spec.schedule()
		logf("fault schedule: %d events over %v", len(events), ms(spec.DurationMS))
		faultWG.Add(1)
		go func() {
			defer faultWG.Done()
			defer vclock.Enter(clk)()
			for _, ev := range events {
				if vclock.SleepCtx(runCtx, clk, ev.At-clk.Since(virtStart)) != nil {
					return
				}
				if err := e.ApplyFault(ev); err == nil {
					faultsApplied++
					logf("t=%v fault: %v", clk.Since(virtStart).Round(time.Millisecond), ev.Kind)
				}
			}
		}()
	}

	// Closed-loop clients over disjoint row stripes.
	stats := make([]*clientState, spec.Clients)
	var wg sync.WaitGroup
	scanQuery := &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{2}},
		Aggs:  []exec.AggSpec{{Func: exec.AggSum, Col: 0}, {Func: exec.AggCount}},
	}}
	for c := 0; c < spec.Clients; c++ {
		st := &clientState{acked: make(map[schema.RowID]float64)}
		stats[c] = st
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer vclock.Enter(clk)()
			rng := rand.New(rand.NewSource(spec.Seed<<16 + int64(c)))
			sess := e.NewSession()
			// Ops run on an uncancellable context: cancelling a commit wait
			// leaves the write's outcome ambiguous (the enqueued group still
			// flushes), which would poison acked-write verification. The run
			// window is enforced between rounds instead.
			ctx := context.Background()
			if t := spec.tenantOf(c, tenants); t != "" {
				ctx = admission.WithTenant(ctx, t)
			}
			lo := spec.Rows * int64(c) / int64(spec.Clients)
			hi := spec.Rows * int64(c+1) / int64(spec.Clients)
			for round := 0; ; round++ {
				if spec.RoundsPerClient > 0 && round >= spec.RoundsPerClient {
					return
				}
				if runCtx.Err() != nil {
					return
				}
				think := spec.thinkFor(c, clk.Since(virtStart))
				if think > 0 && vclock.SleepCtx(runCtx, clk, think) != nil {
					return
				}
				for k := 0; k < spec.OLTPPerRound; k++ {
					row := lo + rng.Int63n(hi-lo)
					val := float64(round*spec.OLTPPerRound + k)
					ops := []query.Op{{
						Kind: query.OpUpdate, Table: tbl.ID, Row: schema.RowID(row),
						Cols: []schema.ColID{2}, Vals: []types.Value{types.NewFloat64(val)},
					}}
					if k == 0 {
						// One uniform read per round keeps a share of
						// transactions distributed, exercising remote 2PC.
						ops = append(ops, query.Op{
							Kind: query.OpRead, Table: tbl.ID,
							Row: schema.RowID(rng.Int63n(spec.Rows)), Cols: []schema.ColID{0},
						})
					}
					st.oltpAttempted++
					_, err := e.ExecuteTxn(ctx, sess, &query.Txn{Ops: ops})
					switch {
					case err == nil:
						st.oltpAcked++
						st.acked[schema.RowID(row)] = val
					case errors.Is(err, faults.ErrOverload):
						st.shed++
					default:
						st.errs++
					}
				}
				if spec.OLAPEvery > 0 && round%spec.OLAPEvery == 0 {
					st.olapAttempted++
					_, err := e.ExecuteQuery(ctx, sess, scanQuery)
					switch {
					case err == nil:
						st.olapAcked++
					case errors.Is(err, faults.ErrOverload):
						st.shed++
					default:
						st.errs++
					}
				}
			}
		}(c)
	}

	// Timed mode: one registered sleeper closes the run window.
	if spec.DurationMS > 0 {
		go func() {
			defer vclock.Enter(clk)()
			clk.Sleep(ms(spec.DurationMS))
			stopRun()
		}()
	}
	wg.Wait()
	stopRun()
	faultWG.Wait()
	logf("workload done at t=%v", clk.Since(virtStart).Round(time.Millisecond))

	// Capture admitted-work latency before the verification phase adds
	// cheap read-back traffic to the recorders.
	oltpQ, olapQ, _ := e.Stats().Quantiles()

	// Heal, recover, converge.
	e.HealNet()
	for _, id := range e.Faults.DownSites() {
		if err := e.RecoverSite(id); err != nil {
			logf("recover site %d: %v", id, err)
		}
	}
	converged, lag := waitConverged(e, clk, ms(spec.ConvergeTimeoutMS))
	if !converged {
		logf("convergence timeout: %s", lag)
	}

	// Read back every acknowledged write.
	var counts Counts
	verifySess := e.NewSession()
	for c, st := range stats {
		counts.OLTPAttempted += st.oltpAttempted
		counts.OLTPAcked += st.oltpAcked
		counts.OLAPAttempted += st.olapAttempted
		counts.OLAPAcked += st.olapAcked
		counts.Shed += st.shed
		counts.Errors += st.errs
		rows := make([]schema.RowID, 0, len(st.acked))
		for r := range st.acked {
			rows = append(rows, r)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
		for _, r := range rows {
			got, err := readBack(e, verifySess, clk, tbl.ID, r)
			counts.RowsVerified++
			if err != nil {
				counts.AckedLost++
				logf("client %d row %d: acked write unreadable: %v", c, r, err)
			} else if got != st.acked[r] {
				counts.AckedLost++
				logf("client %d row %d: acked %v, read %v", c, r, st.acked[r], got)
			}
		}
	}
	counts.Converged = converged

	rep := &Report{
		Canonical: CanonicalReport{
			Scenario: spec.Name,
			Seed:     spec.Seed,
			Mode:     spec.Mode,
			Sites:    spec.Sites,
			Clients:  spec.Clients,
			Counts:   counts,
			Messages: e.Net.TotalMessages(),
			Bytes:    e.Net.TotalBytes(),
		},
		Virtual:       clk.Since(virtStart),
		Wall:          time.Since(wallStart),
		OLTPP50:       oltpQ.P50,
		OLTPP99:       oltpQ.P99,
		OLAPP50:       olapQ.P50,
		OLAPP99:       olapQ.P99,
		FaultsApplied: faultsApplied,
		ConvergeLag:   lag,
	}
	if sim, ok := clk.(*vclock.Sim); ok {
		rep.SimAdvances, rep.SimIdleAdvances = sim.Advances()
	}
	rep.Violations = spec.Assert.check(rep)
	return rep, nil
}

// schedule builds the fault event list: faults.NewSchedule from the
// scenario seed, filtered down to the event kinds the spec asked for
// (NewSchedule itself always emits at least one of each).
func (s Spec) schedule() []faults.Event {
	sites := make([]simnet.SiteID, s.Sites)
	for i := range sites {
		sites[i] = simnet.SiteID(i)
	}
	crashes, parts := s.Faults.Crashes, s.Faults.Partitions
	gen := faults.NewSchedule(s.Seed, faults.ScheduleConfig{
		Sites:       sites,
		Duration:    ms(s.DurationMS),
		Crashes:     max(1, crashes),
		Partitions:  max(1, parts),
		MinDowntime: ms(s.Faults.MinDowntimeMS),
		MaxDowntime: ms(s.Faults.MaxDowntimeMS),
	})
	events := make([]faults.Event, 0, len(gen))
	for _, ev := range gen {
		switch ev.Kind {
		case faults.EventCrash, faults.EventRecover:
			if crashes <= 0 {
				continue
			}
		case faults.EventPartition, faults.EventHeal:
			if parts <= 0 {
				continue
			}
		}
		events = append(events, ev)
	}
	return events
}

// readBack reads one row's val column, riding out transient overload and
// timeout errors on the scenario clock.
func readBack(e *cluster.Engine, sess *cluster.Session, clk vclock.Clock, tblID schema.TableID, row schema.RowID) (float64, error) {
	var lastErr error
	for attempt := 0; attempt < 500; attempt++ {
		res, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{{
			Kind: query.OpRead, Table: tblID, Row: row, Cols: []schema.ColID{2},
		}}})
		if err == nil {
			if len(res.Tuples) != 1 || len(res.Tuples[0]) != 1 {
				return 0, fmt.Errorf("read returned %d tuples", len(res.Tuples))
			}
			return res.Tuples[0][0].Float(), nil
		}
		lastErr = err
		if !errors.Is(err, faults.ErrOverload) && !errors.Is(err, faults.ErrTimeout) {
			return 0, err
		}
		clk.Sleep(time.Millisecond)
	}
	return 0, lastErr
}

// waitConverged polls until every replica has caught up to its master's
// version, on the scenario clock.
func waitConverged(e *cluster.Engine, clk vclock.Clock, timeout time.Duration) (bool, string) {
	deadline := clk.Now().Add(timeout)
	for {
		lag := convergenceLag(e)
		if lag == "" {
			return true, ""
		}
		if clk.Now().After(deadline) {
			return false, lag
		}
		clk.Sleep(2 * time.Millisecond)
	}
}

// convergenceLag returns "" when every live copy of every partition has
// reached the master's version, else a description of the first laggard.
func convergenceLag(e *cluster.Engine) string {
	for _, m := range e.Dir.All() {
		master := m.Master()
		mp, ok := e.Sites[int(master.Site)].Partition(m.ID)
		if !ok {
			return fmt.Sprintf("partition %d: master copy missing at site %d", m.ID, master.Site)
		}
		v := mp.Version()
		for _, r := range m.Replicas() {
			rp, ok := e.Sites[int(r.Site)].Partition(m.ID)
			if !ok {
				return fmt.Sprintf("partition %d: replica copy missing at site %d", m.ID, r.Site)
			}
			if rp.Version() < v {
				return fmt.Sprintf("partition %d: site %d at version %d < master %d", m.ID, r.Site, rp.Version(), v)
			}
		}
	}
	return ""
}

// check evaluates the invariant block against the finished report.
func (a AssertSpec) check(r *Report) []string {
	var v []string
	add := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	c := r.Canonical.Counts
	if (a.ZeroAckedLoss == nil || *a.ZeroAckedLoss) && c.AckedLost > 0 {
		add("acked-write loss: %d of %d verified rows", c.AckedLost, c.RowsVerified)
	}
	if (a.Convergence == nil || *a.Convergence) && !c.Converged {
		add("replicas did not converge: %s", r.ConvergeLag)
	}
	if a.MaxErrorRate != nil {
		attempts := c.OLTPAttempted + c.OLAPAttempted - c.Shed
		if attempts > 0 {
			rate := float64(c.Errors) / float64(attempts)
			if rate > *a.MaxErrorRate {
				add("error rate %.4f > max %.4f (%d errors / %d attempts)", rate, *a.MaxErrorRate, c.Errors, attempts)
			}
		}
	}
	if a.OLTPP99MaxMS > 0 && r.OLTPP99 > ms2(a.OLTPP99MaxMS) {
		add("admitted OLTP p99 %v > max %v", r.OLTPP99.Round(10*time.Microsecond), ms2(a.OLTPP99MaxMS))
	}
	if a.MinOLTPAcked > 0 && c.OLTPAcked < a.MinOLTPAcked {
		add("oltp acked %d < min %d", c.OLTPAcked, a.MinOLTPAcked)
	}
	if a.MinShed > 0 && c.Shed < a.MinShed {
		add("shed %d < min %d (overload never engaged)", c.Shed, a.MinShed)
	}
	if a.MinVirtualMS > 0 && r.Virtual < ms(a.MinVirtualMS) {
		add("virtual elapsed %v < min %v", r.Virtual.Round(time.Millisecond), ms(a.MinVirtualMS))
	}
	if a.MaxWallSec > 0 && r.Wall.Seconds() > a.MaxWallSec {
		add("wall time %.1fs > max %.1fs", r.Wall.Seconds(), a.MaxWallSec)
	}
	return v
}

// ms2 converts fractional milliseconds.
func ms2(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
