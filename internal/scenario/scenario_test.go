package scenario

import (
	"bytes"
	"testing"

	"proteus/internal/vclock"
)

// equivSpec is a small, fully deterministic rounds-mode scenario: fixed
// round counts per client, background replication and maintenance off, no
// replicas, advisor off, no faults, no admission. Every message the run
// sends is driven by a workload op whose count is fixed by the spec, so
// Wall and Sim runs of the same seed must agree exactly.
func equivSpec() Spec {
	off := false
	return Spec{
		Name:                  "equiv",
		Seed:                  99,
		Sites:                 2,
		Partitions:            4,
		Rows:                  200,
		Clients:               2,
		RoundsPerClient:       25,
		OLTPPerRound:          2,
		OLAPEvery:             5,
		ThinkTimeUS:           200,
		ReplicationIntervalUS: -1,
		MaintainIntervalUS:    -1,
		Advisor:               &off,
	}.WithDefaults()
}

// TestClockEquivalence runs the same seeded scenario on the wall clock and
// on the simulated clock and requires identical workload counts, identical
// verification results, and identical interconnect traffic: the virtual
// clock changes how time passes, never what the engine does.
func TestClockEquivalence(t *testing.T) {
	spec := equivSpec()

	wall, err := Run(spec, Options{Clock: vclock.Wall{}})
	if err != nil {
		t.Fatalf("wall run: %v", err)
	}
	sim := vclock.NewSim(vclock.SimConfig{})
	defer sim.Stop()
	virt, err := Run(spec, Options{Clock: sim})
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}

	if wall.Canonical.Counts != virt.Canonical.Counts {
		t.Errorf("counts diverge:\n wall %+v\n sim  %+v", wall.Canonical.Counts, virt.Canonical.Counts)
	}
	if wall.Canonical.Messages != virt.Canonical.Messages || wall.Canonical.Bytes != virt.Canonical.Bytes {
		t.Errorf("traffic diverges: wall %d msgs/%d B, sim %d msgs/%d B",
			wall.Canonical.Messages, wall.Canonical.Bytes, virt.Canonical.Messages, virt.Canonical.Bytes)
	}
	if !wall.Passed() || !virt.Passed() {
		t.Errorf("invariants: wall %v, sim %v", wall.Violations, virt.Violations)
	}
	want := int64(spec.Clients * spec.RoundsPerClient * spec.OLTPPerRound)
	if virt.Canonical.Counts.OLTPAcked != want {
		t.Errorf("oltp acked = %d, want exactly %d (rounds mode)", virt.Canonical.Counts.OLTPAcked, want)
	}
}

// TestSimDeterminism requires two fresh Sim runs of the same spec to
// produce byte-identical canonical reports.
func TestSimDeterminism(t *testing.T) {
	spec := equivSpec()
	var reports [][]byte
	for i := 0; i < 2; i++ {
		sim := vclock.NewSim(vclock.SimConfig{})
		rep, err := Run(spec, Options{Clock: sim})
		sim.Stop()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		reports = append(reports, rep.Canonical.CanonicalJSON())
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Errorf("sim runs diverge:\n run0: %s\n run1: %s", reports[0], reports[1])
	}
}

// TestSpecDefaultsAndValidate pins the defaulting and rejection rules the
// scenario corpus relies on.
func TestSpecDefaultsAndValidate(t *testing.T) {
	s := Spec{Name: "d", Seed: 1, Sites: 3, DurationMS: 10}.WithDefaults()
	if s.Partitions != 3 || s.Rows != 600 || s.Clients != 3 {
		t.Errorf("defaults: partitions=%d rows=%d clients=%d", s.Partitions, s.Rows, s.Clients)
	}
	if s.OLTPPerRound != 4 || s.OLAPEvery != 4 || s.ThinkTimeUS != 1000 {
		t.Errorf("workload defaults: %d/%d/%d", s.OLTPPerRound, s.OLAPEvery, s.ThinkTimeUS)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}

	bad := []Spec{
		{Seed: 1, Sites: 2, DurationMS: 10},                                          // no name
		{Name: "x", Sites: 0, DurationMS: 10},                                        // no sites
		{Name: "x", Sites: 2},                                                        // no duration or rounds
		{Name: "x", Sites: 2, DurationMS: 10, RoundsPerClient: 5},                    // both
		{Name: "x", Sites: 2, DurationMS: 10, Mode: "warehouse"},                     // unknown mode
		{Name: "x", Sites: 2, DurationMS: 10, HotFraction: 1.5},                      // bad fraction
		{Name: "x", Sites: 2, RoundsPerClient: 5, Faults: &FaultSpec{Crashes: 1}},    // faults need a window
		{Name: "x", Sites: 2, DurationMS: 10, Phases: []Phase{{AtMS: 5}, {AtMS: 5}}}, // non-increasing
	}
	for i, b := range bad {
		if err := b.WithDefaults().Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// TestParseRejectsMalformedJSON covers the Parse wrapper.
func TestParseRejectsMalformedJSON(t *testing.T) {
	if _, err := Parse([]byte(`{"name":`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Parse([]byte(`{"name":"p","sites":2,"rounds_per_client":3,"seed":4}`)); err != nil {
		t.Errorf("minimal valid doc rejected: %v", err)
	}
}
