// Package scenario loads and runs declarative whole-cluster simulation
// scenarios: a JSON file names the cluster shape (sites, partitions,
// replication), the workload mix (closed-loop clients issuing OLTP
// updates and OLAP scans with virtual think times), the QoS tenants, a
// reproducible fault schedule and the invariants the run must uphold.
// The runner drives the real engine — cluster.New, ExecuteTxn,
// ExecuteQuery, ApplyFault — on any vclock.Clock, so the same scenario
// replays in wall time or, under vclock.Sim, compresses hours of
// simulated traffic into seconds. cmd/proteus-sim is the CLI front end;
// the scenarios/ corpus at the repo root is the CI regression suite.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"proteus/internal/admission"
	"proteus/internal/asa"
	"proteus/internal/cluster"
	"proteus/internal/simnet"
)

// Phase is one step of a diurnal load shift: from AtMS onward the hot
// client window starts at client index HotShift, moving write and scan
// pressure across partitions (and therefore sites) as phases progress.
type Phase struct {
	AtMS     int64 `json:"at_ms"`
	HotShift int   `json:"hot_shift"`
}

// Limits mirrors admission.Limits for JSON loading.
type Limits struct {
	Rate  float64 `json:"rate"`
	Burst float64 `json:"burst,omitempty"`
}

// AdmissionSpec turns on the token-bucket QoS front end. The zero/absent
// spec leaves the engine on AlwaysAdmit (no shedding, no drip ticker).
type AdmissionSpec struct {
	Rate               float64           `json:"rate"`
	Burst              float64           `json:"burst,omitempty"`
	MaxQueue           int               `json:"max_queue,omitempty"`
	MaxWaitUS          int64             `json:"max_wait_us,omitempty"`
	MaxCommitBacklog   int               `json:"max_commit_backlog,omitempty"`
	DripIntervalUS     int64             `json:"drip_interval_us,omitempty"`
	SnapshotIntervalUS int64             `json:"snapshot_interval_us,omitempty"`
	Tenants            map[string]Limits `json:"tenants,omitempty"`
}

// FaultSpec parameterizes the reproducible chaos schedule (generated via
// faults.NewSchedule from the scenario seed). Crashes=0 keeps the
// partition/heal pairs but drops crash events; Partitions=0 vice versa.
type FaultSpec struct {
	Crashes       int   `json:"crashes"`
	Partitions    int   `json:"partitions"`
	MinDowntimeMS int64 `json:"min_downtime_ms,omitempty"`
	MaxDowntimeMS int64 `json:"max_downtime_ms,omitempty"`
}

// AssertSpec is the invariant block checked after the run. ZeroAckedLoss
// and Convergence default to true; explicit false disables them.
type AssertSpec struct {
	// ZeroAckedLoss requires every acknowledged write to be readable with
	// its acknowledged value after the cluster heals.
	ZeroAckedLoss *bool `json:"zero_acked_loss,omitempty"`
	// Convergence requires every replica to reach its master's version.
	Convergence *bool `json:"convergence,omitempty"`
	// MaxErrorRate bounds errors/attempts (sheds excluded); nil disables.
	MaxErrorRate *float64 `json:"max_error_rate,omitempty"`
	// OLTPP99MaxMS bounds the admitted-work OLTP p99 latency (virtual
	// time); 0 disables.
	OLTPP99MaxMS float64 `json:"oltp_p99_max_ms,omitempty"`
	// MinOLTPAcked requires at least this many committed transactions.
	MinOLTPAcked int64 `json:"min_oltp_acked,omitempty"`
	// MinShed requires the admission controller to have shed at least
	// this many requests (overload scenarios prove shedding engages).
	MinShed int64 `json:"min_shed,omitempty"`
	// MinVirtualMS requires the virtual clock to have advanced at least
	// this far by the end of the run.
	MinVirtualMS int64 `json:"min_virtual_ms,omitempty"`
	// MaxWallSec bounds real elapsed time; 0 disables.
	MaxWallSec float64 `json:"max_wall_sec,omitempty"`
}

// Spec is one scenario file. Durations are integers in the unit their
// suffix names (_ms, _us); omitted fields take the defaults documented
// per field.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	// Mode is the engine architecture: proteus (default), rowstore,
	// columnstore, janus or tidb.
	Mode  string `json:"mode,omitempty"`
	Sites int    `json:"sites"`
	// Partitions defaults to Sites; Rows to 200 per partition.
	Partitions int   `json:"partitions,omitempty"`
	Rows       int64 `json:"rows,omitempty"`
	// ReplicateEach installs one column-format replica per partition at
	// the next site, giving crash scenarios something to fail over to.
	ReplicateEach bool `json:"replicate_each,omitempty"`

	// DurationMS runs the workload for a fixed virtual window; mutually
	// exclusive with RoundsPerClient, which runs every client for an
	// exact round count (deterministic op totals for equivalence tests).
	DurationMS      int64 `json:"duration_ms,omitempty"`
	RoundsPerClient int   `json:"rounds_per_client,omitempty"`

	Clients int `json:"clients"`
	// OLTPPerRound (default 4) single-row updates per round; every
	// OLAPEvery-th round (default 4, -1 disables) adds one scan-sum query.
	OLTPPerRound int `json:"oltp_per_round,omitempty"`
	OLAPEvery    int `json:"olap_every,omitempty"`
	// ThinkTimeUS (default 1000) is the virtual think time per round.
	// Hot clients think ThinkTimeUS/HotBoost (default 4).
	ThinkTimeUS int64   `json:"think_time_us,omitempty"`
	HotBoost    float64 `json:"hot_boost,omitempty"`
	// HotFraction is the share of clients that are hot at a time; 0
	// disables the diurnal machinery.
	HotFraction float64 `json:"hot_fraction,omitempty"`
	Phases      []Phase `json:"phases,omitempty"`

	// NetBaseLatencyUS defaults to 50µs, NetBytesPerSec to 1 GiB/s.
	NetBaseLatencyUS int64   `json:"net_base_latency_us,omitempty"`
	NetBytesPerSec   float64 `json:"net_bytes_per_sec,omitempty"`
	// ReplicationIntervalUS defaults to 5000; -1 disables background
	// replication. MaintainIntervalUS defaults to 20000; -1 disables.
	ReplicationIntervalUS int64 `json:"replication_interval_us,omitempty"`
	MaintainIntervalUS    int64 `json:"maintain_interval_us,omitempty"`
	OpDeadlineMS          int64 `json:"op_deadline_ms,omitempty"`
	GroupCommitIntervalUS int64 `json:"group_commit_interval_us,omitempty"`
	// Advisor false forces the ASA off even in proteus mode.
	Advisor *bool `json:"advisor,omitempty"`
	// AdvisorPredictiveUS / AdvisorCapacityUS override the advisor's
	// planning-loop periods (defaults 500ms / 1s); AdvisorSampleEvery
	// overrides the plan-triggered sampling rate (default 16). Long
	// low-churn scenarios coarsen these so advisor planning CPU does not
	// dominate the event loop.
	AdvisorPredictiveUS int64 `json:"advisor_predictive_us,omitempty"`
	AdvisorCapacityUS   int64 `json:"advisor_capacity_us,omitempty"`
	AdvisorSampleEvery  int   `json:"advisor_sample_every,omitempty"`
	// ConvergeTimeoutMS bounds the post-run convergence wait (virtual
	// time, default 30000).
	ConvergeTimeoutMS int64 `json:"converge_timeout_ms,omitempty"`

	Admission *AdmissionSpec `json:"admission,omitempty"`
	Faults    *FaultSpec     `json:"faults,omitempty"`
	Assert    AssertSpec     `json:"assert"`
}

// Load reads and validates a scenario file.
func Load(path string) (Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	return Parse(b)
}

// Parse decodes and validates a scenario document.
func Parse(b []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// WithDefaults fills unset fields.
func (s Spec) WithDefaults() Spec {
	if s.Partitions <= 0 {
		s.Partitions = s.Sites
	}
	if s.Rows <= 0 {
		s.Rows = 200 * int64(s.Partitions)
	}
	if s.Clients <= 0 {
		s.Clients = s.Sites
	}
	if s.OLTPPerRound <= 0 {
		s.OLTPPerRound = 4
	}
	if s.OLAPEvery == 0 {
		s.OLAPEvery = 4
	}
	if s.ThinkTimeUS <= 0 {
		s.ThinkTimeUS = 1000
	}
	if s.HotBoost <= 0 {
		s.HotBoost = 4
	}
	if s.NetBaseLatencyUS <= 0 {
		s.NetBaseLatencyUS = 50
	}
	if s.NetBytesPerSec <= 0 {
		s.NetBytesPerSec = 1 << 30
	}
	if s.ReplicationIntervalUS == 0 {
		s.ReplicationIntervalUS = 5000
	}
	if s.MaintainIntervalUS == 0 {
		s.MaintainIntervalUS = 20000
	}
	if s.ConvergeTimeoutMS <= 0 {
		s.ConvergeTimeoutMS = 30000
	}
	return s
}

// Validate rejects inconsistent specs.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("scenario: name is required")
	case s.Sites < 1:
		return fmt.Errorf("scenario %s: sites must be >= 1", s.Name)
	case s.DurationMS <= 0 && s.RoundsPerClient <= 0:
		return fmt.Errorf("scenario %s: one of duration_ms or rounds_per_client is required", s.Name)
	case s.DurationMS > 0 && s.RoundsPerClient > 0:
		return fmt.Errorf("scenario %s: duration_ms and rounds_per_client are mutually exclusive", s.Name)
	case s.Rows < int64(s.Partitions):
		return fmt.Errorf("scenario %s: rows (%d) < partitions (%d)", s.Name, s.Rows, s.Partitions)
	case s.HotFraction < 0 || s.HotFraction > 1:
		return fmt.Errorf("scenario %s: hot_fraction must be in [0,1]", s.Name)
	case s.Faults != nil && s.DurationMS <= 0:
		return fmt.Errorf("scenario %s: faults require duration_ms (schedule window)", s.Name)
	}
	if _, err := parseMode(s.Mode); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	for i := 1; i < len(s.Phases); i++ {
		if s.Phases[i].AtMS <= s.Phases[i-1].AtMS {
			return fmt.Errorf("scenario %s: phases must have strictly increasing at_ms", s.Name)
		}
	}
	return nil
}

func parseMode(m string) (cluster.Mode, error) {
	switch m {
	case "", "proteus":
		return cluster.ModeProteus, nil
	case "rowstore":
		return cluster.ModeRowStore, nil
	case "columnstore":
		return cluster.ModeColumnStore, nil
	case "janus":
		return cluster.ModeJanus, nil
	case "tidb":
		return cluster.ModeTiDB, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", m)
	}
}

func us(v int64) time.Duration { return time.Duration(v) * time.Microsecond }
func ms(v int64) time.Duration { return time.Duration(v) * time.Millisecond }

// engineConfig maps the spec onto cluster.Config.
func (s Spec) engineConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Mode, _ = parseMode(s.Mode)
	cfg.NumSites = s.Sites
	cfg.Net = simnet.Config{BaseLatency: us(s.NetBaseLatencyUS), BytesPerSecond: s.NetBytesPerSec}
	cfg.FaultSeed = s.Seed
	if s.ReplicationIntervalUS < 0 {
		cfg.ReplicationInterval = 0
	} else {
		cfg.ReplicationInterval = us(s.ReplicationIntervalUS)
	}
	if s.MaintainIntervalUS < 0 {
		cfg.MaintainInterval = 0
	} else {
		cfg.MaintainInterval = us(s.MaintainIntervalUS)
	}
	if s.OpDeadlineMS > 0 {
		cfg.OpDeadline = ms(s.OpDeadlineMS)
	}
	if s.GroupCommitIntervalUS > 0 {
		cfg.GroupCommitInterval = us(s.GroupCommitIntervalUS)
	}
	if s.Advisor != nil && !*s.Advisor {
		cfg.Adapt.PredictiveInterval = -1
		cfg.Adapt.CapacityInterval = -1
		cfg.Adapt.Flags = asa.Flags{}
	} else {
		if s.AdvisorPredictiveUS > 0 {
			cfg.Adapt.PredictiveInterval = us(s.AdvisorPredictiveUS)
		}
		if s.AdvisorCapacityUS > 0 {
			cfg.Adapt.CapacityInterval = us(s.AdvisorCapacityUS)
		}
		if s.AdvisorSampleEvery > 0 {
			cfg.Adapt.SampleEvery = s.AdvisorSampleEvery
		}
	}
	if a := s.Admission; a != nil {
		cfg.Admission = admission.Config{
			Policy:           admission.TokenBucket,
			Default:          admission.Limits{Rate: a.Rate, Burst: a.Burst},
			MaxQueue:         a.MaxQueue,
			MaxWait:          us(a.MaxWaitUS),
			MaxCommitBacklog: a.MaxCommitBacklog,
			DripInterval:     us(a.DripIntervalUS),
			SnapshotInterval: us(a.SnapshotIntervalUS),
		}
		if len(a.Tenants) > 0 {
			cfg.Admission.Tenants = make(map[string]admission.Limits, len(a.Tenants))
			for name, l := range a.Tenants {
				cfg.Admission.Tenants[name] = admission.Limits{Rate: l.Rate, Burst: l.Burst}
			}
		}
	}
	return cfg
}

// tenantOf assigns clients to tenants round-robin over the sorted tenant
// names; without explicit tenants every client bills the default bucket.
func (s Spec) tenantOf(c int, names []string) string {
	if len(names) == 0 {
		return ""
	}
	return names[c%len(names)]
}

// thinkFor returns client c's virtual think time at the given elapsed
// offset: hot-window clients (per the active phase's shift) think
// 1/HotBoost of the base.
func (s Spec) thinkFor(c int, elapsed time.Duration) time.Duration {
	base := us(s.ThinkTimeUS)
	if s.HotFraction <= 0 || s.Clients <= 0 {
		return base
	}
	shift := 0
	for _, p := range s.Phases {
		if elapsed >= ms(p.AtMS) {
			shift = p.HotShift
		}
	}
	hotN := int(math.Ceil(s.HotFraction * float64(s.Clients)))
	idx := ((c-shift)%s.Clients + s.Clients) % s.Clients
	if idx < hotN {
		return time.Duration(float64(base) / s.HotBoost)
	}
	return base
}
