// Package zonemap implements per-partition zone maps (§4.1.3 of the paper):
// the minimum and maximum value of every column stored in a partition,
// maintained in memory, used to skip partitions whose value ranges cannot
// satisfy a query predicate and to estimate predicate selectivity (§5.1).
package zonemap

import (
	"sync"

	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// ZoneMap tracks min/max per column. The zero value is empty; use New.
// Updates widen the ranges; deletions do not narrow them (ranges are
// conservative until Rebuild).
type ZoneMap struct {
	mu   sync.RWMutex
	mins []types.Value
	maxs []types.Value
	n    int // observed rows

	// Populated row-id span, used to clip scan morsels to the id range
	// that actually holds rows (partition bounds are often far wider).
	idLo, idHi schema.RowID
	hasID      bool
}

// New creates a zone map over ncols columns.
func New(ncols int) *ZoneMap {
	return &ZoneMap{mins: make([]types.Value, ncols), maxs: make([]types.Value, ncols)}
}

// Observe widens the per-column ranges with one row's values. vals is
// positional over the partition's columns; NULLs are ignored.
func (z *ZoneMap) Observe(vals []types.Value) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.n++
	for i, v := range vals {
		if i >= len(z.mins) || v.IsNull() {
			continue
		}
		if z.mins[i].IsNull() || types.Compare(v, z.mins[i]) < 0 {
			z.mins[i] = v
		}
		if z.maxs[i].IsNull() || types.Compare(v, z.maxs[i]) > 0 {
			z.maxs[i] = v
		}
	}
}

// ObserveID widens the populated row-id span. Like value ranges, the span
// only widens; deletions keep it conservative until Rebuild.
func (z *ZoneMap) ObserveID(id schema.RowID) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.observeIDLocked(id)
}

func (z *ZoneMap) observeIDLocked(id schema.RowID) {
	if !z.hasID {
		z.idLo, z.idHi, z.hasID = id, id, true
		return
	}
	if id < z.idLo {
		z.idLo = id
	}
	if id > z.idHi {
		z.idHi = id
	}
}

// IDSpan returns the inclusive [lo, hi] row-id span of observed rows; ok is
// false when no row was ever observed.
func (z *ZoneMap) IDSpan() (lo, hi schema.RowID, ok bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.idLo, z.idHi, z.hasID
}

// Rebuild replaces the ranges from a full set of rows.
func (z *ZoneMap) Rebuild(rows []schema.Row) {
	nz := New(len(z.mins))
	for _, r := range rows {
		nz.Observe(r.Vals)
		nz.observeIDLocked(r.ID)
	}
	z.mu.Lock()
	z.mins, z.maxs, z.n = nz.mins, nz.maxs, nz.n
	z.idLo, z.idHi, z.hasID = nz.idLo, nz.idHi, nz.hasID
	z.mu.Unlock()
}

// Range returns the (min, max) for a column; ok is false when the column
// has no observed non-NULL values.
func (z *ZoneMap) Range(col schema.ColID) (types.Value, types.Value, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	if int(col) >= len(z.mins) || z.mins[col].IsNull() {
		return types.Null(), types.Null(), false
	}
	return z.mins[col], z.maxs[col], true
}

// CanSkip reports whether the predicate provably matches no row in the
// partition, based only on the column ranges.
func (z *ZoneMap) CanSkip(pred storage.Pred) bool {
	z.mu.RLock()
	defer z.mu.RUnlock()
	for _, c := range pred {
		if int(c.Col) >= len(z.mins) || z.mins[c.Col].IsNull() {
			continue // no information: cannot skip on this conjunct
		}
		lo, hi := z.mins[c.Col], z.maxs[c.Col]
		switch c.Op {
		case storage.CmpEq:
			if types.Compare(c.Val, lo) < 0 || types.Compare(c.Val, hi) > 0 {
				return true
			}
		case storage.CmpLt:
			if types.Compare(lo, c.Val) >= 0 {
				return true
			}
		case storage.CmpLe:
			if types.Compare(lo, c.Val) > 0 {
				return true
			}
		case storage.CmpGt:
			if types.Compare(hi, c.Val) <= 0 {
				return true
			}
		case storage.CmpGe:
			if types.Compare(hi, c.Val) < 0 {
				return true
			}
		}
	}
	return false
}

// EstimateSelectivity estimates the fraction of partition rows satisfying
// the predicate, assuming each numeric column is uniform over [min, max]
// and conjuncts are independent. Used by the ASA to argue about scan and
// join costs (§5.1).
func (z *ZoneMap) EstimateSelectivity(pred storage.Pred) float64 {
	z.mu.RLock()
	defer z.mu.RUnlock()
	sel := 1.0
	for _, c := range pred {
		if int(c.Col) >= len(z.mins) || z.mins[c.Col].IsNull() {
			sel *= 0.5 // unknown column: neutral guess
			continue
		}
		lo, hi := z.mins[c.Col].Float(), z.maxs[c.Col].Float()
		width := hi - lo
		v := c.Val.Float()
		var f float64
		switch c.Op {
		case storage.CmpEq:
			if width <= 0 {
				if types.Compare(c.Val, z.mins[c.Col]) == 0 {
					f = 1
				}
			} else if n := float64(z.n); n > 0 {
				f = 1 / n
			} else {
				f = 0.1
			}
		case storage.CmpNe:
			f = 1
		case storage.CmpLt, storage.CmpLe:
			switch {
			case width <= 0:
				if v >= hi {
					f = 1
				}
			case v <= lo:
				f = 0
			case v >= hi:
				f = 1
			default:
				f = (v - lo) / width
			}
		case storage.CmpGt, storage.CmpGe:
			switch {
			case width <= 0:
				if v <= lo {
					f = 1
				}
			case v >= hi:
				f = 0
			case v <= lo:
				f = 1
			default:
				f = (hi - v) / width
			}
		}
		sel *= f
	}
	return sel
}

// Rows reports the number of observed rows.
func (z *ZoneMap) Rows() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.n
}
