package zonemap

import (
	"testing"

	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

func observed() *ZoneMap {
	z := New(2)
	for i := int64(10); i <= 20; i++ {
		z.Observe([]types.Value{types.NewInt64(i), types.NewString("m")})
	}
	return z
}

func TestRange(t *testing.T) {
	z := observed()
	lo, hi, ok := z.Range(0)
	if !ok || lo.Int() != 10 || hi.Int() != 20 {
		t.Errorf("range = [%v, %v] %v", lo, hi, ok)
	}
	if _, _, ok := z.Range(5); ok {
		t.Error("out-of-range column has a range")
	}
	if z.Rows() != 11 {
		t.Errorf("rows = %d", z.Rows())
	}
}

func TestCanSkip(t *testing.T) {
	z := observed()
	cases := []struct {
		pred storage.Pred
		skip bool
	}{
		{storage.Pred{{Col: 0, Op: storage.CmpGt, Val: types.NewInt64(25)}}, true},
		{storage.Pred{{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(21)}}, true},
		{storage.Pred{{Col: 0, Op: storage.CmpLt, Val: types.NewInt64(10)}}, true},
		{storage.Pred{{Col: 0, Op: storage.CmpEq, Val: types.NewInt64(5)}}, true},
		{storage.Pred{{Col: 0, Op: storage.CmpEq, Val: types.NewInt64(15)}}, false},
		{storage.Pred{{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(20)}}, false},
		{storage.Pred{{Col: 1, Op: storage.CmpEq, Val: types.NewString("m")}}, false},
		{storage.Pred{{Col: 1, Op: storage.CmpEq, Val: types.NewString("z")}}, true},
		{nil, false},
	}
	for i, c := range cases {
		if got := z.CanSkip(c.pred); got != c.skip {
			t.Errorf("case %d: CanSkip = %v, want %v", i, got, c.skip)
		}
	}
}

func TestCanSkipUnknownColumn(t *testing.T) {
	z := New(1)
	// Nothing observed: never skip.
	if z.CanSkip(storage.Pred{{Col: 0, Op: storage.CmpEq, Val: types.NewInt64(1)}}) {
		t.Error("empty zone map skipped")
	}
}

func TestEstimateSelectivity(t *testing.T) {
	z := observed() // col0 uniform over [10, 20]
	sel := z.EstimateSelectivity(storage.Pred{{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(15)}})
	if sel < 0.4 || sel > 0.6 {
		t.Errorf("sel >= 15 = %f, want ~0.5", sel)
	}
	sel = z.EstimateSelectivity(storage.Pred{{Col: 0, Op: storage.CmpLt, Val: types.NewInt64(10)}})
	if sel != 0 {
		t.Errorf("sel < min = %f", sel)
	}
	sel = z.EstimateSelectivity(nil)
	if sel != 1 {
		t.Errorf("empty pred sel = %f", sel)
	}
	// Conjunction multiplies.
	sel = z.EstimateSelectivity(storage.Pred{
		{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(15)},
		{Col: 0, Op: storage.CmpLe, Val: types.NewInt64(15)},
	})
	if sel >= 0.5 {
		t.Errorf("conjunction sel = %f, want < 0.5", sel)
	}
}

func TestRebuild(t *testing.T) {
	z := observed()
	z.Rebuild([]schema.Row{
		{ID: 1, Vals: []types.Value{types.NewInt64(100), types.NewString("a")}},
		{ID: 2, Vals: []types.Value{types.NewInt64(200), types.NewString("b")}},
	})
	lo, hi, ok := z.Range(0)
	if !ok || lo.Int() != 100 || hi.Int() != 200 {
		t.Errorf("post-rebuild range = [%v, %v]", lo, hi)
	}
	if z.Rows() != 2 {
		t.Errorf("rows = %d", z.Rows())
	}
}
