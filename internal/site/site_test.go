package site

import (
	"sync"
	"testing"
	"time"

	"proteus/internal/cost"
	"proteus/internal/partition"
	"proteus/internal/redolog"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

func newSite(t *testing.T) *Site {
	t.Helper()
	s := New(0, DefaultConfig(), redolog.NewBroker(), nil, -1)
	t.Cleanup(s.Close)
	return s
}

func newPart(s *Site, id partition.ID) *partition.Partition {
	b := partition.Bounds{RowStart: 0, RowEnd: 100, ColStart: 0, ColEnd: 2}
	kinds := []types.Kind{types.KindInt64, types.KindString}
	return partition.New(id, b, kinds, storage.DefaultRowLayout(), s.Factory)
}

func TestPartitionRegistry(t *testing.T) {
	s := newSite(t)
	p := newPart(s, 7)
	s.AddPartition(p, true)
	got, ok := s.Partition(7)
	if !ok || got != p {
		t.Fatal("lookup failed")
	}
	if !s.IsMaster(7) {
		t.Error("master flag lost")
	}
	s.SetMaster(7, false)
	if s.IsMaster(7) {
		t.Error("SetMaster failed")
	}
	if len(s.Partitions()) != 1 {
		t.Error("Partitions() wrong")
	}
	s.RemovePartition(7)
	if _, ok := s.Partition(7); ok {
		t.Error("remove failed")
	}
	if _, err := s.MustPartition(7); err == nil {
		t.Error("MustPartition on missing succeeded")
	}
}

func TestPoolsExecuteAndIsolate(t *testing.T) {
	s := newSite(t)
	var mu sync.Mutex
	order := []string{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			s.RunOLTP(func() {
				mu.Lock()
				order = append(order, "oltp")
				mu.Unlock()
			})
		}()
		go func() {
			defer wg.Done()
			s.RunOLAP(func() {
				mu.Lock()
				order = append(order, "olap")
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	if len(order) != 16 {
		t.Errorf("ran %d tasks", len(order))
	}
	if cpu := s.CPU(); cpu < 0 || cpu > 1 {
		t.Errorf("cpu = %f", cpu)
	}
}

func TestObservationBuffer(t *testing.T) {
	s := newSite(t)
	s.Observe(cost.Observation{Op: cost.OpScan}) // featureless: dropped
	s.Observe(cost.Observation{Op: cost.OpScan, Features: []float64{1}, Latency: time.Microsecond})
	obs := s.DrainObservations()
	if len(obs) != 1 {
		t.Fatalf("drained %d observations", len(obs))
	}
	if len(s.DrainObservations()) != 0 {
		t.Error("drain not clearing")
	}
}

func TestMemUsageAndCapacity(t *testing.T) {
	s := newSite(t)
	p := newPart(s, 1)
	_ = p.Load([]schema.Row{{ID: 1, Vals: []types.Value{types.NewInt64(1), types.NewString("abcdefghijkl")}}}, 1)
	s.AddPartition(p, true)
	if s.MemUsage() <= 0 {
		t.Error("memory usage not counted")
	}
	s.SetMemCapacity(12345)
	if s.MemCapacity() != 12345 {
		t.Error("capacity set/get failed")
	}
	// Disk-tier copies do not count toward memory.
	if err := p.ChangeLayout(storage.Layout{Format: storage.RowFormat, Tier: storage.DiskTier, SortBy: storage.NoSort}, s.Factory, storage.Latest); err != nil {
		t.Fatal(err)
	}
	if s.MemUsage() != 0 {
		t.Errorf("disk copy counted as memory: %d", s.MemUsage())
	}
	if s.DiskUsage() <= 0 {
		t.Error("disk usage not counted")
	}
}

func TestMaintainObservesMergeCost(t *testing.T) {
	s := newSite(t)
	b := partition.Bounds{RowStart: 0, RowEnd: 100, ColStart: 0, ColEnd: 2}
	kinds := []types.Kind{types.KindInt64, types.KindString}
	p := partition.New(2, b, kinds, storage.DefaultColumnLayout(), s.Factory)
	var rows []schema.Row
	for i := int64(0); i < 10; i++ {
		rows = append(rows, schema.Row{ID: schema.RowID(i), Vals: []types.Value{types.NewInt64(i), types.NewString("v")}})
	}
	_ = p.Load(rows, 1)
	s.AddPartition(p, true)
	for i := int64(0); i < 5; i++ {
		_ = p.Update(schema.RowID(i), []schema.ColID{0}, []types.Value{types.NewInt64(-i)}, 2)
	}
	s.Maintain(3)
	obs := s.DrainObservations()
	found := false
	for _, o := range obs {
		if o.Op == cost.OpWrite && o.Layout.Format == storage.ColumnFormat {
			found = true
		}
	}
	if !found {
		t.Error("merge cost not attributed to column write model")
	}
	if p.Stats().DeltaRows != 0 {
		t.Error("delta not merged")
	}
}
