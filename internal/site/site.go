// Package site implements Proteus' data sites (§3): each site stores the
// partition copies placed on it, executes requests on separate OLTP and
// OLAP thread pools (isolating compute between the workloads), runs a
// replication subscriber, tracks per-tier storage usage, and buffers
// operator latency observations for the ASA's polling threads to collect.
package site

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/cost"
	"proteus/internal/disksim"
	"proteus/internal/faults"
	"proteus/internal/obs"
	"proteus/internal/partition"
	"proteus/internal/redolog"
	"proteus/internal/replication"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/txn"
	"proteus/internal/vclock"
)

// pool is a fixed-size worker pool.
type pool struct {
	mu     sync.RWMutex
	closed bool
	tasks  chan func()
	wg     sync.WaitGroup
	busy   atomic.Int64
	size   int
}

func newPool(n int) *pool {
	p := &pool{tasks: make(chan func(), 4*n), size: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				p.busy.Add(1)
				f()
				p.busy.Add(-1)
			}
		}()
	}
	return p
}

// Do runs f on the pool and waits for it. It reports false without
// running f if the pool has been stopped (submitting used to panic with a
// send on the closed channel). The read lock is held across the send so
// stop cannot close the channel underneath a racing submitter; workers
// never take the lock, so queued tasks keep draining.
func (p *pool) Do(f func()) bool {
	done := make(chan struct{})
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return false
	}
	p.tasks <- func() {
		defer close(done)
		f()
	}
	p.mu.RUnlock()
	<-done
	return true
}

func (p *pool) stop() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}

// utilization reports the fraction of workers currently busy.
func (p *pool) utilization() float64 {
	return float64(p.busy.Load()) / float64(p.size)
}

// Config sizes one data site.
type Config struct {
	// OLTPWorkers and OLAPWorkers size the two isolated pools.
	OLTPWorkers int
	OLAPWorkers int
	// ScanWorkers sizes the morsel-scan pool shared by every concurrent
	// analytical query at this site (0 = runtime.GOMAXPROCS).
	ScanWorkers int
	// MemCapacity caps the memory tier in bytes (0 = unlimited); nearing
	// it triggers the ASA's storage-pressure planning (§5.3.2).
	MemCapacity int64
	// Disk configures this site's simulated disk.
	Disk disksim.Config
	// CatchUpDeadline bounds synchronous replica catch-up before the
	// typed timeout surfaces (0 = replication default).
	CatchUpDeadline time.Duration
	// CatchUpBackoff is the yield between catch-up polls (0 = default).
	CatchUpBackoff time.Duration
}

// DefaultConfig returns a modest site sizing.
func DefaultConfig() Config {
	return Config{OLTPWorkers: 4, OLAPWorkers: 2}
}

// Site is one data site.
type Site struct {
	ID      simnet.SiteID
	Factory partition.Factory
	Locks   *txn.LockManager
	Repl    *replication.Replicator
	Dev     *disksim.Device

	cfg  Config
	oltp *pool
	olap *pool
	scan *pool
	down atomic.Bool

	mu      sync.RWMutex
	parts   map[partition.ID]*partition.Partition
	masters map[partition.ID]bool

	obsMu sync.Mutex
	obs   []cost.Observation

	// Maintenance instruments (SetObs).
	maintRows *obs.Counter
	maintLat  *obs.Recorder
}

// New creates a site wired to the shared broker and network.
func New(id simnet.SiteID, cfg Config, broker *redolog.Broker, net *simnet.Network, brokerSite simnet.SiteID) *Site {
	if cfg.OLTPWorkers <= 0 {
		cfg.OLTPWorkers = 4
	}
	if cfg.OLAPWorkers <= 0 {
		cfg.OLAPWorkers = 2
	}
	if cfg.ScanWorkers <= 0 {
		cfg.ScanWorkers = runtime.GOMAXPROCS(0)
	}
	dev := disksim.New(cfg.Disk)
	s := &Site{
		ID:      id,
		Factory: partition.Factory{Dev: dev},
		Locks:   txn.NewLockManager(),
		Dev:     dev,
		cfg:     cfg,
		oltp:    newPool(cfg.OLTPWorkers),
		olap:    newPool(cfg.OLAPWorkers),
		scan:    newPool(cfg.ScanWorkers),
		parts:   make(map[partition.ID]*partition.Partition),
		masters: make(map[partition.ID]bool),
	}
	s.Repl = replication.New(broker, net, id, brokerSite)
	if cfg.CatchUpDeadline > 0 {
		s.Repl.CatchUpDeadline = cfg.CatchUpDeadline
	}
	if cfg.CatchUpBackoff > 0 {
		s.Repl.PollBackoff = cfg.CatchUpBackoff
	}
	s.Repl.Exec = func(f func()) { _ = s.oltp.Do(f) }
	return s
}

// SetClock installs the clock this site's simulated disk charges and
// replication waits run on. Install before traffic starts (cluster.New
// does); nil restores the wall clock.
func (s *Site) SetClock(c vclock.Clock) {
	s.Dev.SetClock(c)
	s.Repl.Clk = c
}

// SetObs installs this site's maintenance instruments: siteN.maintain.rows
// counts delta rows folded by background maintenance; siteN.maintain.latency
// records each partition's fold time.
func (s *Site) SetObs(reg *obs.Registry) {
	prefix := fmt.Sprintf("site%d.", s.ID)
	s.maintRows = reg.Counter(prefix + "maintain.rows")
	s.maintLat = reg.Recorder(prefix+"maintain.latency", 1<<10)
	s.Repl.SetObs(reg, prefix)
}

// Close stops the worker pools.
func (s *Site) Close() {
	s.oltp.stop()
	s.olap.stop()
	s.scan.stop()
}

// AddPartition installs a partition copy at this site.
func (s *Site) AddPartition(p *partition.Partition, master bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.parts[p.ID] = p
	s.masters[p.ID] = master
}

// RemovePartition drops a copy.
func (s *Site) RemovePartition(id partition.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.parts, id)
	delete(s.masters, id)
}

// Partition looks up a hosted copy.
func (s *Site) Partition(id partition.ID) (*partition.Partition, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.parts[id]
	return p, ok
}

// MustPartition looks up a copy or fails.
func (s *Site) MustPartition(id partition.ID) (*partition.Partition, error) {
	if p, ok := s.Partition(id); ok {
		return p, nil
	}
	return nil, fmt.Errorf("site %d: no copy of partition %d", s.ID, id)
}

// IsMaster reports whether this site masters the partition.
func (s *Site) IsMaster(id partition.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.masters[id]
}

// SetMaster flips the mastership flag of a hosted copy.
func (s *Site) SetMaster(id partition.ID, master bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.parts[id]; ok {
		s.masters[id] = master
	}
}

// Partitions snapshots the hosted copies.
func (s *Site) Partitions() []*partition.Partition {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*partition.Partition, 0, len(s.parts))
	for _, p := range s.parts {
		out = append(out, p)
	}
	return out
}

// RunOLTP executes f on the OLTP pool (blocking). A crashed or stopped
// site rejects work with a typed faults.ErrSiteDown.
func (s *Site) RunOLTP(f func()) error {
	if s.down.Load() {
		return fmt.Errorf("%w: site %d", faults.ErrSiteDown, s.ID)
	}
	if !s.oltp.Do(f) {
		return fmt.Errorf("%w: site %d (pool stopped)", faults.ErrSiteDown, s.ID)
	}
	return nil
}

// RunOLAP executes f on the OLAP pool (blocking). A crashed or stopped
// site rejects work with a typed faults.ErrSiteDown.
func (s *Site) RunOLAP(f func()) error {
	if s.down.Load() {
		return fmt.Errorf("%w: site %d", faults.ErrSiteDown, s.ID)
	}
	if !s.olap.Do(f) {
		return fmt.Errorf("%w: site %d (pool stopped)", faults.ErrSiteDown, s.ID)
	}
	return nil
}

// RunScan executes f on the morsel-scan pool (blocking). The pool is sized
// to the machine's parallelism and shared by every concurrent query at this
// site, so total scan compute stays bounded no matter how many queries are
// in flight. A crashed or stopped site rejects work with faults.ErrSiteDown.
func (s *Site) RunScan(f func()) error {
	if s.down.Load() {
		return fmt.Errorf("%w: site %d", faults.ErrSiteDown, s.ID)
	}
	if !s.scan.Do(f) {
		return fmt.Errorf("%w: site %d (pool stopped)", faults.ErrSiteDown, s.ID)
	}
	return nil
}

// ScanWorkers reports the size of the morsel-scan pool.
func (s *Site) ScanWorkers() int { return s.cfg.ScanWorkers }

// HostedCopy remembers one copy a crashed site was hosting, so recovery
// can rebuild it from the redo log.
type HostedCopy struct {
	ID     partition.ID
	Master bool
	Layout storage.Layout
}

// Down reports whether the site is crashed.
func (s *Site) Down() bool { return s.down.Load() }

// Crash fails the site: all in-memory partition state is dropped, replica
// subscriptions are reset, and subsequent work is rejected with
// faults.ErrSiteDown until Recover. It returns the copies the site was
// hosting (the durable state lives in the redo-log broker). Crashing a
// crashed site is a no-op returning nil.
func (s *Site) Crash() []HostedCopy {
	if !s.down.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	hosted := make([]HostedCopy, 0, len(s.parts))
	for id, p := range s.parts {
		hosted = append(hosted, HostedCopy{ID: id, Master: s.masters[id], Layout: p.Layout()})
	}
	s.parts = make(map[partition.ID]*partition.Partition)
	s.masters = make(map[partition.ID]bool)
	s.mu.Unlock()
	s.Repl.Reset()
	s.obsMu.Lock()
	s.obs = nil
	s.obsMu.Unlock()
	return hosted
}

// Recover marks the site up again. The engine rebuilds hosted copies from
// the redo log before calling this, so the site never serves partial
// state.
func (s *Site) Recover() { s.down.Store(false) }

// CPU reports a utilization signal combining both pools, used as the
// network cost function's CPU argument (Table 1).
func (s *Site) CPU() float64 {
	return (s.oltp.utilization() + s.olap.utilization()) / 2
}

// Observe buffers an operator latency observation for the ASA to collect.
// Observations without features (zone-map-skipped scans) are dropped: they
// carry no signal for the cost models.
func (s *Site) Observe(o cost.Observation) {
	if len(o.Features) == 0 {
		return
	}
	s.obsMu.Lock()
	s.obs = append(s.obs, o)
	s.obsMu.Unlock()
}

// DrainObservations returns and clears the buffered observations (the
// ASA's periodic polling, §3).
func (s *Site) DrainObservations() []cost.Observation {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	out := s.obs
	s.obs = nil
	return out
}

// MemUsage sums the resident bytes of memory-tier copies.
func (s *Site) MemUsage() int64 {
	var total int64
	for _, p := range s.Partitions() {
		if p.Layout().Tier == storage.MemoryTier {
			total += int64(p.Stats().Bytes)
		}
	}
	return total
}

// MemCapacity reports the configured memory cap (0 = unlimited).
func (s *Site) MemCapacity() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cfg.MemCapacity
}

// SetMemCapacity adjusts the memory cap (experiments size it relative to
// loaded data).
func (s *Site) SetMemCapacity(c int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.MemCapacity = c
}

// DiskUsage reports the simulated device usage.
func (s *Site) DiskUsage() int64 { return s.Dev.Used() }

// Maintain runs background storage maintenance on every hosted copy
// (delta merges, disk buffer flushes). Fold costs are observed against the
// layout's write cost function so deferred write work (delta merges) is
// attributed to the layout that deferred it.
func (s *Site) Maintain(threshold int) {
	for _, p := range s.Partitions() {
		// Fold at Latest, not p.Version(): group-committed rows are
		// staged above the installed version until the commit flusher
		// installs them, and a fold at the installed version would
		// discard them.
		merged, d, err := p.Maintain(storage.Latest, threshold)
		if err != nil || merged == 0 {
			continue
		}
		if s.maintRows != nil {
			s.maintRows.Add(int64(merged))
			s.maintLat.Record(d)
		}
		cols := len(p.Kinds())
		s.Observe(cost.Observation{
			Op:       cost.OpWrite,
			Layout:   p.Layout(),
			Features: cost.WriteFeatures(merged*cols, p.Stats().Bytes/maxInt(p.Stats().Rows, 1)),
			Latency:  d,
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
