package twitter_test

// Smoke tests: the social graph loads on a small engine and the OLTP/OLAP
// generators produce valid, seeded-deterministic requests. Tweet inserts
// embed wall-clock timestamps, so the determinism check compares request
// structure (kinds, tables, rows) rather than raw values.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/workload/twitter"
)

func testEngine(t *testing.T) *cluster.Engine {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.NumSites = 2
	cfg.Net = simnet.Config{}
	cfg.ReplicationInterval = time.Millisecond
	e := cluster.New(cfg)
	t.Cleanup(e.Close)
	return e
}

func smallConfig() twitter.Config {
	c := twitter.DefaultConfig()
	c.Users = 100
	c.InitialTweets = 300
	c.MaxTweets = 5000
	return c
}

func setup(t *testing.T) *twitter.Workload {
	t.Helper()
	w, err := twitter.Setup(testEngine(t), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSetupLoadsSchema(t *testing.T) {
	w := setup(t)
	users, tweets, follows := w.Tables()
	for _, tbl := range []*schema.Table{users, tweets, follows} {
		if tbl == nil || len(tbl.Columns) == 0 {
			t.Fatalf("table missing: %+v", tbl)
		}
	}
	if users.ID == tweets.ID || tweets.ID == follows.ID {
		t.Error("table IDs must be distinct")
	}
}

func TestGeneratorsValid(t *testing.T) {
	w := setup(t)
	users, tweets, follows := w.Tables()
	known := map[schema.TableID]bool{users.ID: true, tweets.ID: true, follows.ID: true}
	c := w.NewClient(0, rand.New(rand.NewSource(5)))
	for i := 0; i < 30; i++ {
		txn := c.OLTP()
		if len(txn.Ops) == 0 {
			t.Fatal("empty transaction")
		}
		for _, op := range txn.Ops {
			if !known[op.Table] {
				t.Fatalf("op targets unknown table %d", op.Table)
			}
		}
		q := c.OLAP()
		if q == nil || q.Root == nil {
			t.Fatal("nil OLAP query")
		}
		for _, tid := range q.Root.Tables() {
			if !known[tid] {
				t.Fatalf("query targets unknown table %d", tid)
			}
		}
	}
}

// renderShape renders a transaction without values (tweet inserts carry
// wall-clock timestamps).
func renderShape(txn *query.Txn) string {
	s := ""
	for _, op := range txn.Ops {
		s += fmt.Sprintf("(%d t%d r%d c%v)", op.Kind, op.Table, op.Row, op.Cols)
	}
	return s
}

func TestGeneratorsSeededDeterministic(t *testing.T) {
	w1, w2 := setup(t), setup(t)
	c1 := w1.NewClient(1, rand.New(rand.NewSource(11)))
	c2 := w2.NewClient(1, rand.New(rand.NewSource(11)))
	for i := 0; i < 15; i++ {
		if a, b := renderShape(c1.OLTP()), renderShape(c2.OLTP()); a != b {
			t.Fatalf("iteration %d: OLTP diverged\n%s\n%s", i, a, b)
		}
		qa, qb := c1.OLAP(), c2.OLAP()
		if qa.Root.String() != qb.Root.String() {
			t.Fatalf("iteration %d: OLAP diverged\n%s\n%s", i, qa.Root, qb.Root)
		}
	}
}
