// Package twitter implements the Twitter benchmark of §6.1: a social
// networking schema with heavily skewed many-to-many relationships among
// users, tweets and followers. The transaction set follows the paper's
// extended workload: OLTP transactions (insert tweet, follow user, update
// profile / follower counts) plus analytical queries (timeline join,
// tweets within a timespan, tweets per user, prefix search, follower
// leaders, recent activity).
package twitter

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Config sizes the social graph (paper: 10M users / 80 GB).
type Config struct {
	Users          int
	InitialTweets  int
	MaxTweets      int
	FollowsPerUser int // follow slots per user
	InitialFollows int // loaded follows per user
	ZipfS          float64
	Partitions     int
	TweetTextLen   int
}

// DefaultConfig returns a laptop-scale graph.
func DefaultConfig() Config {
	return Config{
		Users: 500, InitialTweets: 3000, MaxTweets: 200000,
		FollowsPerUser: 20, InitialFollows: 8,
		ZipfS: 1.4, TweetTextLen: 24,
	}
}

// Workload is a loaded Twitter database bound to an engine.
type Workload struct {
	cfg Config
	e   *cluster.Engine

	users   *schema.Table
	tweets  *schema.Table
	follows *schema.Table

	nextTweet  atomic.Int64
	followSlot []atomic.Int64 // per-user next follow slot
	epoch      time.Time
}

// Tables exposes the table handles.
func (w *Workload) Tables() (users, tweets, follows *schema.Table) {
	return w.users, w.tweets, w.follows
}

// Setup creates and loads the social graph.
func Setup(e *cluster.Engine, cfg Config) (*Workload, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("twitter: bad config %+v", cfg)
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = len(e.Sites) * 2
	}
	w := &Workload{cfg: cfg, e: e, epoch: time.Now().Add(-24 * time.Hour)}
	w.followSlot = make([]atomic.Int64, cfg.Users)

	var err error
	mk := func(name string, cols []schema.Column, maxRows schema.RowID, parts int) *schema.Table {
		if err != nil {
			return nil
		}
		var tbl *schema.Table
		tbl, err = e.CreateTable(cluster.TableSpec{
			Name: name, Cols: cols, MaxRows: maxRows, Partitions: parts,
			PlaceAt: func(p int) simnet.SiteID {
				return simnet.SiteID(p % len(e.Sites))
			},
		})
		return tbl
	}
	w.users = mk("users", []schema.Column{
		{Name: "uid", Kind: types.KindInt64},
		{Name: "name", Kind: types.KindString, AvgSize: 12},
		{Name: "followers", Kind: types.KindInt64},
		{Name: "tweets", Kind: types.KindInt64},
	}, schema.RowID(cfg.Users), cfg.Partitions)
	w.tweets = mk("tweets", []schema.Column{
		{Name: "tid", Kind: types.KindInt64},
		{Name: "tuid", Kind: types.KindInt64},
		{Name: "text", Kind: types.KindString, AvgSize: float64(cfg.TweetTextLen)},
		{Name: "ts", Kind: types.KindTime},
	}, schema.RowID(cfg.MaxTweets), cfg.Partitions)
	w.follows = mk("follows", []schema.Column{
		{Name: "follower", Kind: types.KindInt64},
		{Name: "followee", Kind: types.KindInt64},
		{Name: "since", Kind: types.KindTime},
	}, schema.RowID(cfg.Users*cfg.FollowsPerUser), cfg.Partitions)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(21))
	zip := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Users-1))

	var rows []schema.Row
	for u := 0; u < cfg.Users; u++ {
		rows = append(rows, schema.Row{ID: schema.RowID(u), Vals: []types.Value{
			types.NewInt64(int64(u)),
			types.NewString(fmt.Sprintf("user-%d", u)),
			types.NewInt64(0), types.NewInt64(0),
		}})
	}
	if err := e.LoadRows(context.Background(), w.users.ID, rows); err != nil {
		return nil, err
	}

	rows = rows[:0]
	for t := 0; t < cfg.InitialTweets; t++ {
		u := int(zip.Uint64())
		ts := w.epoch.Add(time.Duration(t) * time.Minute)
		rows = append(rows, schema.Row{ID: schema.RowID(t), Vals: []types.Value{
			types.NewInt64(int64(t)), types.NewInt64(int64(u)),
			types.NewString(tweetText(rng, cfg.TweetTextLen)),
			types.NewTime(ts),
		}})
	}
	if err := e.LoadRows(context.Background(), w.tweets.ID, rows); err != nil {
		return nil, err
	}
	w.nextTweet.Store(int64(cfg.InitialTweets))

	rows = rows[:0]
	for u := 0; u < cfg.Users; u++ {
		seen := map[int]bool{}
		for k := 0; k < cfg.InitialFollows; k++ {
			followee := int(zip.Uint64()) // popular users gain followers
			if seen[followee] {
				continue
			}
			seen[followee] = true
			slot := w.followSlot[u].Add(1) - 1
			rows = append(rows, schema.Row{ID: w.followRow(u, slot), Vals: []types.Value{
				types.NewInt64(int64(u)), types.NewInt64(int64(followee)),
				types.NewTime(w.epoch),
			}})
		}
	}
	if err := e.LoadRows(context.Background(), w.follows.ID, rows); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *Workload) followRow(user int, slot int64) schema.RowID {
	return schema.RowID(int64(user)*int64(w.cfg.FollowsPerUser) + slot)
}

const tweetAlpha = "hello world proteus adaptive storage mixed workloads "

func tweetText(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = tweetAlpha[r.Intn(len(tweetAlpha))]
	}
	return string(b)
}

// Client is one Twitter client.
type Client struct {
	w  *Workload
	r  *rand.Rand
	z  *rand.Zipf
	qn int
}

// NewClient builds a client with its own skewed user source.
func (w *Workload) NewClient(i int, r *rand.Rand) *Client {
	return &Client{w: w, r: r, z: rand.NewZipf(r, w.cfg.ZipfS, 1, uint64(w.cfg.Users-1))}
}

// OLTP draws one of the transactional operations: insert tweet (dominant,
// as the paper observes), follow a user (updating follower counts — the
// Twitter-API "update followers" transaction), or update a profile.
func (c *Client) OLTP() *query.Txn {
	w := c.w
	switch p := c.r.Intn(100); {
	case p < 70: // insert tweet
		t := w.nextTweet.Add(1) - 1
		if t >= int64(w.cfg.MaxTweets) {
			t = int64(w.cfg.MaxTweets) - 1
			return &query.Txn{Ops: []query.Op{{
				Kind: query.OpUpdate, Table: w.tweets.ID, Row: schema.RowID(t),
				Cols: []schema.ColID{2}, Vals: []types.Value{types.NewString(tweetText(c.r, w.cfg.TweetTextLen))},
			}}}
		}
		u := int(c.z.Uint64())
		return &query.Txn{Ops: []query.Op{
			{Kind: query.OpInsert, Table: w.tweets.ID, Row: schema.RowID(t), Vals: []types.Value{
				types.NewInt64(t), types.NewInt64(int64(u)),
				types.NewString(tweetText(c.r, w.cfg.TweetTextLen)),
				types.NewTime(time.Now()),
			}},
			{Kind: query.OpUpdate, Table: w.users.ID, Row: schema.RowID(u),
				Cols: []schema.ColID{3}, Vals: []types.Value{types.NewInt64(1)}},
		}}
	case p < 90: // follow
		follower := c.r.Intn(w.cfg.Users)
		followee := int(c.z.Uint64())
		slot := w.followSlot[follower].Add(1) - 1
		if slot >= int64(w.cfg.FollowsPerUser) {
			// Slots exhausted: refresh an existing edge instead.
			slot = int64(c.r.Intn(w.cfg.FollowsPerUser))
			return &query.Txn{Ops: []query.Op{
				{Kind: query.OpUpdate, Table: w.follows.ID, Row: w.followRow(follower, slot),
					Cols: []schema.ColID{2}, Vals: []types.Value{types.NewTime(time.Now())}},
			}}
		}
		return &query.Txn{Ops: []query.Op{
			{Kind: query.OpInsert, Table: w.follows.ID, Row: w.followRow(follower, slot), Vals: []types.Value{
				types.NewInt64(int64(follower)), types.NewInt64(int64(followee)), types.NewTime(time.Now()),
			}},
			{Kind: query.OpUpdate, Table: w.users.ID, Row: schema.RowID(followee),
				Cols: []schema.ColID{2}, Vals: []types.Value{types.NewInt64(1)}},
		}}
	default: // profile update
		u := c.r.Intn(w.cfg.Users)
		return &query.Txn{Ops: []query.Op{
			{Kind: query.OpUpdate, Table: w.users.ID, Row: schema.RowID(u),
				Cols: []schema.ColID{1}, Vals: []types.Value{types.NewString(fmt.Sprintf("user-%d-v2", u))}},
		}}
	}
}

// OLAP cycles the analytical queries.
func (c *Client) OLAP() *query.Query {
	q := c.w.Query(c.qn, c.r, c.z)
	c.qn++
	return q
}

// NumQueries is the analytical query count.
const NumQueries = 6

// Query builds analytical query qn: the paper's six OLAP transactions
// including the Twitter-API additions (get tweets from followers, tweets
// within a timespan, tweets starting with specific text).
func (w *Workload) Query(qn int, r *rand.Rand, z *rand.Zipf) *query.Query {
	switch qn % NumQueries {
	case 0: // timeline: tweets from users u follows (many-to-many join)
		u := int64(z.Uint64())
		return &query.Query{Root: &query.AggNode{
			Child: &query.JoinNode{
				Left: &query.ScanNode{
					Table: w.follows.ID,
					Cols:  []schema.ColID{1}, // followee
					Pred:  storage.Pred{{Col: 0, Op: storage.CmpEq, Val: types.NewInt64(u)}},
				},
				Right: &query.ScanNode{
					Table: w.tweets.ID,
					Cols:  []schema.ColID{1, 0}, // tuid, tid
				},
				LeftKeyCol: 0, RightKeyCol: 0,
			},
			Aggs: []exec.AggSpec{{Func: exec.AggCount}, {Func: exec.AggMax, Col: 2}},
		}}
	case 1: // tweets within a timespan
		return &query.Query{Root: &query.AggNode{
			Child: &query.ScanNode{
				Table: w.tweets.ID,
				Cols:  []schema.ColID{0},
				Pred: storage.Pred{
					{Col: 3, Op: storage.CmpGe, Val: types.NewTime(w.epoch)},
					{Col: 3, Op: storage.CmpLe, Val: types.NewTime(w.epoch.Add(12 * time.Hour))},
				},
			},
			Aggs: []exec.AggSpec{{Func: exec.AggCount}},
		}}
	case 2: // tweets per user
		return &query.Query{Root: &query.AggNode{
			Child:   &query.ScanNode{Table: w.tweets.ID, Cols: []schema.ColID{1}},
			GroupBy: []int{0},
			Aggs:    []exec.AggSpec{{Func: exec.AggCount}},
		}}
	case 3: // prefix search: tweets starting with specific text
		prefix := string(tweetAlpha[r.Intn(8)])
		return &query.Query{Root: &query.AggNode{
			Child: &query.ScanNode{
				Table: w.tweets.ID,
				Cols:  []schema.ColID{0},
				Pred: storage.Pred{
					{Col: 2, Op: storage.CmpGe, Val: types.NewString(prefix)},
					{Col: 2, Op: storage.CmpLt, Val: types.NewString(prefix + "~")},
				},
			},
			Aggs: []exec.AggSpec{{Func: exec.AggCount}},
		}}
	case 4: // follower leaders: follows per followee
		return &query.Query{Root: &query.AggNode{
			Child:   &query.ScanNode{Table: w.follows.ID, Cols: []schema.ColID{1}},
			GroupBy: []int{0},
			Aggs:    []exec.AggSpec{{Func: exec.AggCount}},
		}}
	default: // recent activity: users joined with their recent tweets
		return &query.Query{Root: &query.AggNode{
			Child: &query.JoinNode{
				Left: &query.ScanNode{
					Table: w.tweets.ID,
					Cols:  []schema.ColID{1, 3},
					Pred:  storage.Pred{{Col: 3, Op: storage.CmpGe, Val: types.NewTime(w.epoch.Add(6 * time.Hour))}},
				},
				Right: &query.ScanNode{
					Table: w.users.ID,
					Cols:  []schema.ColID{0, 2},
				},
				LeftKeyCol: 0, RightKeyCol: 0,
			},
			Aggs: []exec.AggSpec{{Func: exec.AggCount}, {Func: exec.AggSum, Col: 3}},
		}}
	}
}
