// Package workload_test runs the three HTAP benchmarks end to end on small
// engines, in every system mode, checking execution correctness and
// harness accounting.
package workload_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/harness"
	"proteus/internal/simnet"
	"proteus/internal/workload/chbench"
	"proteus/internal/workload/twitter"
	"proteus/internal/workload/ycsb"
)

func testEngine(t *testing.T, mode cluster.Mode, sites int) *cluster.Engine {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Mode = mode
	cfg.NumSites = sites
	cfg.Net = simnet.Config{}
	cfg.ReplicationInterval = time.Millisecond
	e := cluster.New(cfg)
	t.Cleanup(e.Close)
	return e
}

func smallYCSB() ycsb.Config {
	c := ycsb.DefaultConfig()
	c.Rows = 2000
	c.Partitions = 4
	return c
}

func TestYCSBAllModes(t *testing.T) {
	for _, mode := range []cluster.Mode{
		cluster.ModeProteus, cluster.ModeRowStore, cluster.ModeColumnStore,
		cluster.ModeJanus, cluster.ModeTiDB,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			e := testEngine(t, mode, 2)
			w, err := ycsb.Setup(e, smallYCSB())
			if err != nil {
				t.Fatal(err)
			}
			res := harness.Run(e, func(i int, r *rand.Rand) harness.Client {
				return w.NewClient(i, r)
			}, harness.Config{Clients: 4, Mix: harness.Balanced, RoundsPerClient: 3, Seed: 1})
			if res.Errors != 0 {
				t.Fatalf("%d errors", res.Errors)
			}
			wantOLTP := int64(4 * 3 * harness.Balanced.OLTPPerOLAP)
			if res.OLTPCount != wantOLTP || res.OLAPCount != 12 {
				t.Errorf("counts: %d oltp %d olap", res.OLTPCount, res.OLAPCount)
			}
			if res.OLTPLatAvg <= 0 || res.OLAPLatAvg <= 0 {
				t.Error("latencies not measured")
			}
			if res.OLTPThroughput() <= 0 {
				t.Error("throughput not measured")
			}
		})
	}
}

func TestYCSBShiftingSkew(t *testing.T) {
	e := testEngine(t, cluster.ModeProteus, 2)
	w, err := ycsb.Setup(e, smallYCSB())
	if err != nil {
		t.Fatal(err)
	}
	w.SetSkewCenter(1000)
	res := harness.Run(e, func(i int, r *rand.Rand) harness.Client {
		return w.NewClient(i, r)
	}, harness.Config{Clients: 2, Mix: harness.OLTPHeavy, RoundsPerClient: 2, Seed: 2})
	if res.Errors != 0 {
		t.Fatalf("%d errors with shifted skew", res.Errors)
	}
}

func TestYCSBFreshnessVariant(t *testing.T) {
	cfg := smallYCSB()
	cfg.Freshness = true
	e := testEngine(t, cluster.ModeProteus, 2)
	w, err := ycsb.Setup(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := harness.Run(e, func(i int, r *rand.Rand) harness.Client {
		return w.NewClient(i, r)
	}, harness.Config{Clients: 2, Mix: harness.Balanced, RoundsPerClient: 2, Seed: 3})
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	// The freshness OLAP result is a MIN over stamps (or initial strings).
	if res.LastOLAP.NumRows() != 1 {
		t.Errorf("freshness olap result: %v", res.LastOLAP)
	}
}

func TestCHBenchAllModes(t *testing.T) {
	for _, mode := range []cluster.Mode{cluster.ModeProteus, cluster.ModeRowStore, cluster.ModeColumnStore, cluster.ModeJanus} {
		t.Run(mode.String(), func(t *testing.T) {
			e := testEngine(t, mode, 2)
			cfg := chbench.DefaultConfig()
			cfg.LoadedOrdersPerDistrict = 10
			w, err := chbench.Setup(e, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := harness.Run(e, func(i int, r *rand.Rand) harness.Client {
				return w.NewClient(i, r)
			}, harness.Config{Clients: 4, Mix: harness.Mix{Name: "bal", OLTPPerOLAP: 8}, RoundsPerClient: 2, Seed: 4})
			if res.Errors != 0 {
				t.Fatalf("%d errors", res.Errors)
			}
			if res.OLTPCount != 64 || res.OLAPCount != 8 {
				t.Errorf("counts: %d/%d", res.OLTPCount, res.OLAPCount)
			}
		})
	}
}

func TestCHQueriesAllShapesExecute(t *testing.T) {
	e := testEngine(t, cluster.ModeProteus, 2)
	cfg := chbench.DefaultConfig()
	w, err := chbench.Setup(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := e.NewSession()
	r := rand.New(rand.NewSource(5))
	for qn := 0; qn < chbench.NumQueries; qn++ {
		res, err := e.ExecuteQuery(context.Background(), sess, w.Query(qn, r))
		if err != nil {
			t.Fatalf("q%d: %v", qn, err)
		}
		if res.NumRows() == 0 {
			t.Errorf("q%d returned no rows", qn)
		}
	}
}

func TestCHQ6AndQ14Semantics(t *testing.T) {
	e := testEngine(t, cluster.ModeProteus, 2)
	cfg := chbench.DefaultConfig()
	w, err := chbench.Setup(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := e.NewSession()
	r := rand.New(rand.NewSource(6))
	// q6 (index 1): one SUM row with a positive revenue (delivered lines
	// exist in the window).
	res, err := e.ExecuteQuery(context.Background(), sess, w.Query(1, r))
	if err != nil || res.NumRows() != 1 {
		t.Fatalf("q6: %v %v", res, err)
	}
	if res.Tuples[0][0].Float() <= 0 {
		t.Errorf("q6 revenue = %v", res.Tuples[0][0])
	}
	// q14 (index 2): promotional items are 1 in 10; the join must produce
	// a positive count well below the total orderline count.
	res, err = e.ExecuteQuery(context.Background(), sess, w.Query(2, r))
	if err != nil || res.NumRows() != 1 {
		t.Fatalf("q14: %v %v", res, err)
	}
	cnt := res.Tuples[0][1].Int()
	if cnt <= 0 {
		t.Errorf("q14 count = %d", cnt)
	}
}

func TestCHCrossWarehouseKnob(t *testing.T) {
	e := testEngine(t, cluster.ModeProteus, 2)
	cfg := chbench.DefaultConfig()
	cfg.CrossWarehousePct = 100
	w, err := chbench.Setup(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := harness.Run(e, func(i int, r *rand.Rand) harness.Client {
		return w.NewClient(i, r)
	}, harness.Config{Clients: 2, Mix: harness.OLTPHeavy, RoundsPerClient: 2, Seed: 7})
	if res.Errors != 0 {
		t.Fatalf("%d errors at 100%% cross-warehouse", res.Errors)
	}
}

func TestTwitterAllModes(t *testing.T) {
	for _, mode := range []cluster.Mode{cluster.ModeProteus, cluster.ModeRowStore, cluster.ModeColumnStore} {
		t.Run(mode.String(), func(t *testing.T) {
			e := testEngine(t, mode, 2)
			w, err := twitter.Setup(e, twitter.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			res := harness.Run(e, func(i int, r *rand.Rand) harness.Client {
				return w.NewClient(i, r)
			}, harness.Config{Clients: 4, Mix: harness.Mix{Name: "bal", OLTPPerOLAP: 10}, RoundsPerClient: 2, Seed: 8})
			if res.Errors != 0 {
				t.Fatalf("%d errors", res.Errors)
			}
			if res.OLAPCount != 8 {
				t.Errorf("olap count = %d", res.OLAPCount)
			}
		})
	}
}

func TestTwitterQueriesExecute(t *testing.T) {
	e := testEngine(t, cluster.ModeProteus, 2)
	w, err := twitter.Setup(e, twitter.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess := e.NewSession()
	r := rand.New(rand.NewSource(9))
	z := rand.NewZipf(r, 1.4, 1, uint64(twitter.DefaultConfig().Users-1))
	for qn := 0; qn < twitter.NumQueries; qn++ {
		if _, err := e.ExecuteQuery(context.Background(), sess, w.Query(qn, r, z)); err != nil {
			t.Fatalf("q%d: %v", qn, err)
		}
	}
}

func TestHarnessTimelineAndTimedRun(t *testing.T) {
	e := testEngine(t, cluster.ModeProteus, 2)
	w, err := ycsb.Setup(e, smallYCSB())
	if err != nil {
		t.Fatal(err)
	}
	res := harness.Run(e, func(i int, r *rand.Rand) harness.Client {
		return w.NewClient(i, r)
	}, harness.Config{
		Clients: 2, Mix: harness.Balanced,
		Duration:       200 * time.Millisecond,
		TimelineBucket: 50 * time.Millisecond,
		Seed:           10,
	})
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if len(res.Timeline) < 2 {
		t.Errorf("timeline buckets = %d", len(res.Timeline))
	}
	var total int64
	for _, b := range res.Timeline {
		total += b.OLTP + b.OLAP
	}
	if total != res.OLTPCount+res.OLAPCount {
		t.Errorf("timeline total %d != counts %d", total, res.OLTPCount+res.OLAPCount)
	}
}

func TestCI95(t *testing.T) {
	mean, half := harness.CI95([]float64{10, 10, 10})
	if mean != 10 || half != 0 {
		t.Errorf("ci = %f ± %f", mean, half)
	}
	mean, half = harness.CI95([]float64{8, 12})
	if mean != 10 || half <= 0 {
		t.Errorf("ci = %f ± %f", mean, half)
	}
	if m, h := harness.CI95(nil); m != 0 || h != 0 {
		t.Errorf("empty ci = %f ± %f", m, h)
	}
}
