// Package ycsb implements the transactional YCSB workload of §6.1: a
// 10-key read-modify-write OLTP transaction with zipfian-skewed keys, and
// an OLAP query that scans the table, evaluates a predicate and aggregates
// the result. Variants support a shifting skew centre (Fig 12c/13) and the
// freshness-stamp methodology of Appendix B.1.
package ycsb

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Config sizes the workload. The paper uses 50M rows x 10 columns x 100
// bytes (50 GB); defaults here scale to laptop runs.
type Config struct {
	Rows      int64
	Fields    int // data columns beside the key
	FieldSize int // bytes per string field
	// ZipfS is the zipfian skew exponent (>1); higher = more skew.
	ZipfS float64
	// KeysPerTxn is the RMW multi-key count (paper: 10).
	KeysPerTxn int
	// Partitions is the initial partition count (baselines get one per
	// site via Schism-style contiguous placement).
	Partitions int
	// Freshness switches updates to timestamp stamping and the OLAP
	// query to MIN (Appendix B.1).
	Freshness bool
}

// DefaultConfig returns a small-but-meaningful sizing.
func DefaultConfig() Config {
	return Config{
		Rows: 20000, Fields: 10, FieldSize: 16,
		ZipfS: 1.2, KeysPerTxn: 10, Partitions: 8,
	}
}

// Workload is a loaded YCSB database bound to an engine.
type Workload struct {
	cfg Config
	e   *cluster.Engine
	tbl *schema.Table

	// skewOffset shifts the zipf centre (Fig 12c/13); atomically updated.
	skewOffset atomic.Int64
}

// Setup creates and loads the usertable. Baseline modes receive
// contiguous-range placement across sites (the Schism advantage); Proteus
// starts identically and adapts.
func Setup(e *cluster.Engine, cfg Config) (*Workload, error) {
	if cfg.Rows <= 0 || cfg.Fields <= 0 {
		return nil, fmt.Errorf("ycsb: bad config %+v", cfg)
	}
	cols := make([]schema.Column, 0, cfg.Fields+1)
	cols = append(cols, schema.Column{Name: "ykey", Kind: types.KindInt64})
	for i := 0; i < cfg.Fields; i++ {
		cols = append(cols, schema.Column{
			Name: fmt.Sprintf("field%d", i), Kind: types.KindString,
			AvgSize: float64(cfg.FieldSize),
		})
	}
	parts := cfg.Partitions
	if parts <= 0 {
		parts = len(e.Sites)
	}
	tbl, err := e.CreateTable(cluster.TableSpec{
		Name: "usertable", Cols: cols, MaxRows: schema.RowID(cfg.Rows),
		Partitions: parts,
		PlaceAt: func(p int) simnet.SiteID {
			// Contiguous ranges striped over sites.
			return simnet.SiteID(p * len(e.Sites) / parts % len(e.Sites))
		},
	})
	if err != nil {
		return nil, err
	}
	w := &Workload{cfg: cfg, e: e, tbl: tbl}

	rng := rand.New(rand.NewSource(42))
	rows := make([]schema.Row, 0, cfg.Rows)
	for i := int64(0); i < cfg.Rows; i++ {
		vals := make([]types.Value, 0, cfg.Fields+1)
		vals = append(vals, types.NewInt64(i))
		for f := 0; f < cfg.Fields; f++ {
			vals = append(vals, types.NewString(randString(rng, cfg.FieldSize)))
		}
		rows = append(rows, schema.Row{ID: schema.RowID(i), Vals: vals})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, rows); err != nil {
		return nil, err
	}
	return w, nil
}

const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

func randString(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

// Table exposes the usertable definition.
func (w *Workload) Table() *schema.Table { return w.tbl }

// SetSkewCenter moves the zipf distribution's hot spot (workload shifts).
func (w *Workload) SetSkewCenter(offset int64) {
	w.skewOffset.Store(offset)
}

// NewZipf builds a per-client zipfian key source.
func (w *Workload) NewZipf(r *rand.Rand) *rand.Zipf {
	return rand.NewZipf(r, w.cfg.ZipfS, 1, uint64(w.cfg.Rows-1))
}

// key draws a skewed key, offset by the current skew centre.
func (w *Workload) key(z *rand.Zipf) int64 {
	return (int64(z.Uint64()) + w.skewOffset.Load()) % w.cfg.Rows
}

// OLTP builds one 10-key read-modify-write transaction.
func (w *Workload) OLTP(r *rand.Rand, z *rand.Zipf) *query.Txn {
	n := w.cfg.KeysPerTxn
	seen := make(map[int64]bool, n)
	ops := make([]query.Op, 0, 2*n)
	field := schema.ColID(1 + r.Intn(w.cfg.Fields))
	for len(seen) < n {
		k := w.key(z)
		if seen[k] {
			continue
		}
		seen[k] = true
		ops = append(ops, query.Op{
			Kind: query.OpRead, Table: w.tbl.ID, Row: schema.RowID(k),
			Cols: []schema.ColID{field},
		})
		var v types.Value
		if w.cfg.Freshness {
			v = types.NewString(fmt.Sprintf("%020d", time.Now().UnixNano()))
		} else {
			v = types.NewString(randString(r, w.cfg.FieldSize))
		}
		ops = append(ops, query.Op{
			Kind: query.OpUpdate, Table: w.tbl.ID, Row: schema.RowID(k),
			Cols: []schema.ColID{field}, Vals: []types.Value{v},
		})
	}
	return &query.Txn{Ops: ops}
}

// Client adapts the workload to the harness interface with client-local
// RNG and zipf state.
type Client struct {
	w *Workload
	r *rand.Rand
	z *rand.Zipf
}

// NewClient builds client i.
func (w *Workload) NewClient(i int, r *rand.Rand) *Client {
	return &Client{w: w, r: r, z: w.NewZipf(r)}
}

// OLTP implements harness.Client.
func (c *Client) OLTP() *query.Txn { return c.w.OLTP(c.r, c.z) }

// OLAP implements harness.Client.
func (c *Client) OLAP() *query.Query { return c.w.OLAP(c.r) }

// FreshnessQuery builds the Appendix B.1 analytical probe: MIN of the
// stamp field over the hot key range [0, hiKey).
func (w *Workload) FreshnessQuery(hiKey int64) *query.Query {
	return &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{
			Table: w.tbl.ID,
			Cols:  []schema.ColID{1},
			Pred:  storage.Pred{{Col: 0, Op: storage.CmpLt, Val: types.NewInt64(hiKey)}},
		},
		Aggs: []exec.AggSpec{{Func: exec.AggMin, Col: 0}},
	}}
}

// OLAP builds the scan-and-aggregate query: scan the key span, evaluate a
// field predicate, aggregate the matches (paper: 500k-row scan).
func (w *Workload) OLAP(r *rand.Rand) *query.Query {
	field := schema.ColID(1 + r.Intn(w.cfg.Fields))
	if w.cfg.Freshness {
		// Appendix B.1: return the smallest (oldest) stamp observed.
		return &query.Query{Root: &query.AggNode{
			Child: &query.ScanNode{Table: w.tbl.ID, Cols: []schema.ColID{field}},
			Aggs:  []exec.AggSpec{{Func: exec.AggMin, Col: 0}},
		}}
	}
	// Predicate with ~50% selectivity on the lexicographic space.
	pred := storage.Pred{{Col: field, Op: storage.CmpGe, Val: types.NewString("V")}}
	return &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{Table: w.tbl.ID, Cols: []schema.ColID{0, field}, Pred: pred},
		Aggs:  []exec.AggSpec{{Func: exec.AggCount}, {Func: exec.AggMax, Col: 0}},
	}}
}
