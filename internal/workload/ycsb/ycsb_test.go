package ycsb_test

// Smoke tests: the schema loads on a small engine and the OLTP/OLAP
// generators produce valid, seeded-deterministic requests.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/query"
	"proteus/internal/simnet"
	"proteus/internal/workload/ycsb"
)

func testEngine(t *testing.T) *cluster.Engine {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.NumSites = 2
	cfg.Net = simnet.Config{}
	cfg.ReplicationInterval = time.Millisecond
	e := cluster.New(cfg)
	t.Cleanup(e.Close)
	return e
}

func smallConfig() ycsb.Config {
	c := ycsb.DefaultConfig()
	c.Rows = 500
	c.Partitions = 4
	return c
}

func setup(t *testing.T) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Setup(testEngine(t), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSetupLoadsSchema(t *testing.T) {
	w := setup(t)
	tbl := w.Table()
	if tbl == nil || tbl.Name != "usertable" {
		t.Fatalf("table = %+v", tbl)
	}
	if len(tbl.Columns) != smallConfig().Fields+1 {
		t.Errorf("cols = %d, want %d", len(tbl.Columns), smallConfig().Fields+1)
	}
}

func TestGeneratorsValid(t *testing.T) {
	w := setup(t)
	cfg := smallConfig()
	c := w.NewClient(0, rand.New(rand.NewSource(5)))
	for i := 0; i < 20; i++ {
		txn := c.OLTP()
		if len(txn.Ops) == 0 {
			t.Fatal("empty transaction")
		}
		for _, op := range txn.Ops {
			if op.Table != w.Table().ID {
				t.Fatalf("op targets table %d", op.Table)
			}
			if int64(op.Row) < 0 || int64(op.Row) >= cfg.Rows {
				t.Fatalf("op row %d out of [0, %d)", op.Row, cfg.Rows)
			}
		}
		q := c.OLAP()
		if q == nil || q.Root == nil {
			t.Fatal("nil OLAP query")
		}
		for _, tid := range q.Root.Tables() {
			if tid != w.Table().ID {
				t.Fatalf("query targets table %d", tid)
			}
		}
	}
}

func renderTxn(txn *query.Txn) string { return fmt.Sprintf("%+v", txn.Ops) }

func TestGeneratorsSeededDeterministic(t *testing.T) {
	w1, w2 := setup(t), setup(t)
	c1 := w1.NewClient(3, rand.New(rand.NewSource(11)))
	c2 := w2.NewClient(3, rand.New(rand.NewSource(11)))
	for i := 0; i < 10; i++ {
		if a, b := renderTxn(c1.OLTP()), renderTxn(c2.OLTP()); a != b {
			t.Fatalf("iteration %d: OLTP diverged\n%s\n%s", i, a, b)
		}
		qa, qb := c1.OLAP(), c2.OLAP()
		if qa.Root.String() != qb.Root.String() {
			t.Fatalf("iteration %d: OLAP diverged\n%s\n%s", i, qa.Root, qb.Root)
		}
	}
}
