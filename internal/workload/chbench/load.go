package chbench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"proteus/internal/schema"
	"proteus/internal/types"
)

// baseDate anchors loaded order entry/delivery dates; queries predicate
// against offsets from it.
var baseDate = time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)

// load populates every table with the initial database.
func (w *Workload) load() error {
	cfg := w.cfg
	rng := rand.New(rand.NewSource(7))

	var rows []schema.Row
	for wh := 0; wh < cfg.Warehouses; wh++ {
		rows = append(rows, schema.Row{ID: schema.RowID(wh), Vals: []types.Value{
			types.NewInt64(int64(wh)),
			types.NewString(fmt.Sprintf("wh-%d", wh)),
			types.NewFloat64(300000),
		}})
	}
	if err := w.e.LoadRows(context.Background(), w.t.Warehouse.ID, rows); err != nil {
		return err
	}

	rows = rows[:0]
	for wh := 0; wh < cfg.Warehouses; wh++ {
		for d := 0; d < cfg.DistrictsPerW; d++ {
			rows = append(rows, schema.Row{ID: w.districtRow(wh, d), Vals: []types.Value{
				types.NewInt64(int64(d)), types.NewInt64(int64(wh)),
				types.NewString(fmt.Sprintf("d-%d-%d", wh, d)),
				types.NewFloat64(30000),
				types.NewInt64(int64(cfg.LoadedOrdersPerDistrict)),
			}})
		}
	}
	if err := w.e.LoadRows(context.Background(), w.t.District.ID, rows); err != nil {
		return err
	}

	rows = rows[:0]
	for wh := 0; wh < cfg.Warehouses; wh++ {
		for d := 0; d < cfg.DistrictsPerW; d++ {
			for c := 0; c < cfg.CustomersPerDistrict; c++ {
				// c_id stores the global customer row id so orders can
				// equi-join on it (o_c_id = c_id).
				rows = append(rows, schema.Row{ID: w.customerRow(wh, d, c), Vals: []types.Value{
					types.NewInt64(int64(w.customerRow(wh, d, c))), types.NewInt64(int64(wh)), types.NewInt64(int64(d)),
					types.NewString(fmt.Sprintf("cust-%d", c)),
					types.NewFloat64(-10), types.NewFloat64(10), types.NewInt64(1),
				}})
			}
		}
	}
	if err := w.e.LoadRows(context.Background(), w.t.Customer.ID, rows); err != nil {
		return err
	}

	rows = rows[:0]
	for i := 0; i < cfg.Items; i++ {
		data := fmt.Sprintf("data-%d-%s", i, randLetters(rng, 12))
		if i%10 == 0 {
			data = "PR-" + data // promotional items for Q14
		}
		rows = append(rows, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(int64(i)),
			types.NewString(fmt.Sprintf("item-%d", i)),
			types.NewFloat64(1 + float64(rng.Intn(9999))/100),
			types.NewString(data),
		}})
	}
	if err := w.e.LoadRows(context.Background(), w.t.Item.ID, rows); err != nil {
		return err
	}

	rows = rows[:0]
	for wh := 0; wh < cfg.Warehouses; wh++ {
		for i := 0; i < cfg.Items; i++ {
			rows = append(rows, schema.Row{ID: w.stockRow(wh, i), Vals: []types.Value{
				types.NewInt64(int64(i)), types.NewInt64(int64(wh)),
				types.NewFloat64(float64(10 + rng.Intn(90))),
				types.NewFloat64(0), types.NewInt64(0),
			}})
		}
	}
	if err := w.e.LoadRows(context.Background(), w.t.Stock.ID, rows); err != nil {
		return err
	}

	// Orders and orderlines: LoadedOrdersPerDistrict historical orders per
	// district with increasing entry dates; older orders are delivered.
	var orders, lines []schema.Row
	for wh := 0; wh < cfg.Warehouses; wh++ {
		for d := 0; d < cfg.DistrictsPerW; d++ {
			di := w.districtIndex(wh, d)
			w.nextOrder[di].Store(int64(cfg.LoadedOrdersPerDistrict))
			w.deliveredUpTo[di].Store(int64(cfg.LoadedOrdersPerDistrict * 2 / 3))
			for o := 0; o < cfg.LoadedOrdersPerDistrict; o++ {
				orow := w.orderRow(wh, d, int64(o))
				entry := baseDate.AddDate(0, 0, o)
				nOL := 3 + rng.Intn(cfg.MaxOLPerOrder-2)
				carrier := int64(-1)
				if o < cfg.LoadedOrdersPerDistrict*2/3 {
					carrier = int64(1 + rng.Intn(10))
				}
				cust := w.customerRow(wh, d, rng.Intn(cfg.CustomersPerDistrict))
				orders = append(orders, schema.Row{ID: orow, Vals: []types.Value{
					types.NewInt64(int64(orow)), types.NewInt64(int64(d)), types.NewInt64(int64(wh)),
					types.NewInt64(int64(cust)), types.NewTime(entry),
					types.NewInt64(carrier), types.NewInt64(int64(nOL)),
				}})
				for l := 0; l < nOL; l++ {
					item := rng.Intn(cfg.Items)
					delivery := entry.AddDate(0, 0, 2)
					if carrier < 0 {
						delivery = time.Time{} // undelivered
					}
					lines = append(lines, schema.Row{ID: w.orderLineRow(orow, l), Vals: []types.Value{
						types.NewInt64(int64(orow)), types.NewInt64(int64(l)), types.NewInt64(int64(item)),
						types.NewFloat64(float64(1 + rng.Intn(10))),
						types.NewFloat64(float64(1+rng.Intn(9999)) / 100),
						types.NewTime(delivery),
					}})
				}
			}
		}
	}
	if err := w.e.LoadRows(context.Background(), w.t.Orders.ID, orders); err != nil {
		return err
	}
	if err := w.e.LoadRows(context.Background(), w.t.OrderLine.ID, lines); err != nil {
		return err
	}
	w.historySeq.Store(int64(cfg.Warehouses * cfg.DistrictsPerW * cfg.CustomersPerDistrict))
	return nil
}

func randLetters(r *rand.Rand, n int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return string(b)
}
