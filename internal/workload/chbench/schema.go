// Package chbench implements the CH-benCHmark (§6.1): the TPC-C
// transactional schema and its five transactions (NewOrder, Payment,
// OrderStatus, Delivery, StockLevel) combined with TPC-H-derived
// analytical queries over the same data. Scales are configurable and
// default far below the paper's 100 GB so experiments run on one machine;
// the workload *shapes* (skewed item popularity, temporal orderline
// updates, read-only dimension tables, cross-warehouse transactions) are
// preserved.
package chbench

import (
	"fmt"
	"sync/atomic"

	"proteus/internal/cluster"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/types"
)

// Config sizes the database.
type Config struct {
	Warehouses           int
	DistrictsPerW        int
	CustomersPerDistrict int
	Items                int
	// MaxOrdersPerDistrict bounds each district's order row space
	// (pre-loaded orders plus head-room for NewOrder inserts).
	MaxOrdersPerDistrict int
	// LoadedOrdersPerDistrict is the initial order count per district.
	LoadedOrdersPerDistrict int
	// MaxOLPerOrder is the orderline slots per order.
	MaxOLPerOrder int
	// CrossWarehousePct is the percentage of NewOrder stock updates that
	// target a remote warehouse (Appendix B.3; default 10).
	CrossWarehousePct int
	// ItemZipfS skews item popularity.
	ItemZipfS float64
	// Partitions per large table; defaults to the site count.
	Partitions int
}

// DefaultConfig returns a laptop-scale CH database.
func DefaultConfig() Config {
	return Config{
		Warehouses: 2, DistrictsPerW: 5, CustomersPerDistrict: 30,
		Items: 200, MaxOrdersPerDistrict: 5000, LoadedOrdersPerDistrict: 30,
		MaxOLPerOrder: 5, CrossWarehousePct: 10, ItemZipfS: 1.3,
	}
}

// Tables bundles the CH table handles.
type Tables struct {
	Warehouse *schema.Table
	District  *schema.Table
	Customer  *schema.Table
	Item      *schema.Table
	Stock     *schema.Table
	Orders    *schema.Table
	OrderLine *schema.Table
	History   *schema.Table
}

// Workload is a loaded CH database bound to an engine.
type Workload struct {
	cfg Config
	e   *cluster.Engine
	t   Tables

	// nextOrder is the per-district order sequence; deliveredUpTo tracks
	// the Delivery transaction's progress.
	nextOrder     []atomic.Int64
	deliveredUpTo []atomic.Int64
	historySeq    atomic.Int64
}

// Row-id composition helpers (dense integer keys over composite TPC-C
// keys).

func (w *Workload) districtRow(wh, d int) schema.RowID {
	return schema.RowID(wh*w.cfg.DistrictsPerW + d)
}

func (w *Workload) customerRow(wh, d, c int) schema.RowID {
	return schema.RowID((wh*w.cfg.DistrictsPerW+d)*w.cfg.CustomersPerDistrict + c)
}

func (w *Workload) stockRow(wh, i int) schema.RowID {
	return schema.RowID(wh*w.cfg.Items + i)
}

func (w *Workload) orderRow(wh, d int, o int64) schema.RowID {
	return schema.RowID((int64(wh*w.cfg.DistrictsPerW+d))*int64(w.cfg.MaxOrdersPerDistrict) + o)
}

func (w *Workload) orderLineRow(orderRow schema.RowID, l int) schema.RowID {
	return schema.RowID(int64(orderRow)*int64(w.cfg.MaxOLPerOrder) + int64(l))
}

func (w *Workload) districtIndex(wh, d int) int { return wh*w.cfg.DistrictsPerW + d }

// Tables exposes the table handles.
func (w *Workload) Tables() Tables { return w.t }

// Config exposes the sizing.
func (w *Workload) Config() Config { return w.cfg }

// Setup creates and loads the CH database. Baselines receive the Schism
// advantage: warehouse-aligned placement and full replication of the
// read-only item table.
func Setup(e *cluster.Engine, cfg Config) (*Workload, error) {
	if cfg.Warehouses <= 0 || cfg.Items <= 0 {
		return nil, fmt.Errorf("chbench: bad config %+v", cfg)
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = len(e.Sites)
	}
	w := &Workload{cfg: cfg, e: e}
	nd := cfg.Warehouses * cfg.DistrictsPerW
	w.nextOrder = make([]atomic.Int64, nd)
	w.deliveredUpTo = make([]atomic.Int64, nd)

	// Placement: partition p of a W-partitioned table holds a contiguous
	// warehouse range; co-locate on the warehouse's home site.
	whSite := func(wh int) simnet.SiteID {
		return simnet.SiteID(wh * len(e.Sites) / cfg.Warehouses % len(e.Sites))
	}
	perWarehouse := func(maxRows schema.RowID) cluster.TableSpec {
		return cluster.TableSpec{
			MaxRows:    maxRows,
			Partitions: cfg.Warehouses,
			PlaceAt:    func(p int) simnet.SiteID { return whSite(p) },
		}
	}

	var err error
	mk := func(spec cluster.TableSpec, name string, cols []schema.Column) *schema.Table {
		if err != nil {
			return nil
		}
		spec.Name, spec.Cols = name, cols
		var tbl *schema.Table
		tbl, err = e.CreateTable(spec)
		return tbl
	}

	w.t.Warehouse = mk(perWarehouse(schema.RowID(cfg.Warehouses)), "warehouse", []schema.Column{
		{Name: "w_id", Kind: types.KindInt64},
		{Name: "w_name", Kind: types.KindString, AvgSize: 10},
		{Name: "w_ytd", Kind: types.KindFloat64},
	})
	w.t.District = mk(perWarehouse(schema.RowID(nd)), "district", []schema.Column{
		{Name: "d_id", Kind: types.KindInt64},
		{Name: "d_w_id", Kind: types.KindInt64},
		{Name: "d_name", Kind: types.KindString, AvgSize: 10},
		{Name: "d_ytd", Kind: types.KindFloat64},
		{Name: "d_next_o_id", Kind: types.KindInt64},
	})
	w.t.Customer = mk(perWarehouse(schema.RowID(nd*cfg.CustomersPerDistrict)), "customer", []schema.Column{
		{Name: "c_id", Kind: types.KindInt64},
		{Name: "c_w_id", Kind: types.KindInt64},
		{Name: "c_d_id", Kind: types.KindInt64},
		{Name: "c_name", Kind: types.KindString, AvgSize: 16},
		{Name: "c_balance", Kind: types.KindFloat64},
		{Name: "c_ytd", Kind: types.KindFloat64},
		{Name: "c_payments", Kind: types.KindInt64},
	})
	// Item is read-only: the advantaged baselines replicate it everywhere.
	w.t.Item = mk(cluster.TableSpec{
		MaxRows: schema.RowID(cfg.Items), Partitions: 1,
		ReplicateAll: e.Mode() != cluster.ModeProteus,
	}, "item", []schema.Column{
		{Name: "i_id", Kind: types.KindInt64},
		{Name: "i_name", Kind: types.KindString, AvgSize: 14},
		{Name: "i_price", Kind: types.KindFloat64},
		{Name: "i_data", Kind: types.KindString, AvgSize: 26},
	})
	w.t.Stock = mk(perWarehouse(schema.RowID(cfg.Warehouses*cfg.Items)), "stock", []schema.Column{
		{Name: "s_i_id", Kind: types.KindInt64},
		{Name: "s_w_id", Kind: types.KindInt64},
		{Name: "s_quantity", Kind: types.KindFloat64},
		{Name: "s_ytd", Kind: types.KindFloat64},
		{Name: "s_order_cnt", Kind: types.KindInt64},
	})
	w.t.Orders = mk(perWarehouse(schema.RowID(int64(nd)*int64(cfg.MaxOrdersPerDistrict))), "orders", []schema.Column{
		{Name: "o_id", Kind: types.KindInt64},
		{Name: "o_d_id", Kind: types.KindInt64},
		{Name: "o_w_id", Kind: types.KindInt64},
		{Name: "o_c_id", Kind: types.KindInt64}, // customer row id
		{Name: "o_entry_d", Kind: types.KindTime},
		{Name: "o_carrier_id", Kind: types.KindInt64},
		{Name: "o_ol_cnt", Kind: types.KindInt64},
	})
	w.t.OrderLine = mk(perWarehouse(schema.RowID(int64(nd)*int64(cfg.MaxOrdersPerDistrict)*int64(cfg.MaxOLPerOrder))), "orderline", []schema.Column{
		{Name: "ol_o_id", Kind: types.KindInt64}, // orders row id
		{Name: "ol_number", Kind: types.KindInt64},
		{Name: "ol_i_id", Kind: types.KindInt64},
		{Name: "ol_quantity", Kind: types.KindFloat64},
		{Name: "ol_amount", Kind: types.KindFloat64},
		{Name: "ol_delivery_d", Kind: types.KindTime},
	})
	w.t.History = mk(perWarehouse(schema.RowID(1<<40)), "history", []schema.Column{
		{Name: "h_c_id", Kind: types.KindInt64},
		{Name: "h_amount", Kind: types.KindFloat64},
		{Name: "h_date", Kind: types.KindTime},
	})
	if err != nil {
		return nil, err
	}
	if err := w.load(); err != nil {
		return nil, err
	}
	return w, nil
}
