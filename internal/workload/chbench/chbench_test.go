package chbench_test

// Smoke tests: the CH-benCHmark schema loads on a small engine, every
// analytical query builds against known tables, and the generators are
// seeded-deterministic. NewOrder transactions draw on shared per-district
// sequences and wall-clock timestamps, so the determinism check compares
// the analytical queries and transaction structure.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/query"
	"proteus/internal/simnet"
	"proteus/internal/workload/chbench"
)

func testEngine(t *testing.T) *cluster.Engine {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.NumSites = 2
	cfg.Net = simnet.Config{}
	cfg.ReplicationInterval = time.Millisecond
	e := cluster.New(cfg)
	t.Cleanup(e.Close)
	return e
}

func smallConfig() chbench.Config {
	c := chbench.DefaultConfig()
	c.Warehouses = 1
	c.DistrictsPerW = 2
	c.CustomersPerDistrict = 10
	c.Items = 50
	c.LoadedOrdersPerDistrict = 10
	c.MaxOrdersPerDistrict = 500
	return c
}

func setup(t *testing.T) *chbench.Workload {
	t.Helper()
	w, err := chbench.Setup(testEngine(t), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSetupLoadsSchema(t *testing.T) {
	setup(t) // Setup fails if any table create or load errors
}

func TestAllQueriesBuild(t *testing.T) {
	w := setup(t)
	rng := rand.New(rand.NewSource(3))
	for qn := 0; qn < chbench.NumQueries; qn++ {
		q := w.Query(qn, rng)
		if q == nil || q.Root == nil {
			t.Fatalf("query %d is nil", qn)
		}
		if len(q.Root.Tables()) == 0 {
			t.Fatalf("query %d touches no tables", qn)
		}
	}
}

func TestClientGeneratorsValid(t *testing.T) {
	w := setup(t)
	c := w.NewClient(0, rand.New(rand.NewSource(7)))
	for i := 0; i < 20; i++ {
		txn := c.OLTP()
		if len(txn.Ops) == 0 {
			t.Fatal("empty transaction")
		}
		q := c.OLAP()
		if q == nil || q.Root == nil {
			t.Fatal("nil OLAP query")
		}
	}
}

// renderShape renders a transaction without values (order inserts carry
// wall-clock entry dates).
func renderShape(txn *query.Txn) string {
	s := ""
	for _, op := range txn.Ops {
		s += fmt.Sprintf("(%d t%d r%d c%v)", op.Kind, op.Table, op.Row, op.Cols)
	}
	return s
}

func TestGeneratorsSeededDeterministic(t *testing.T) {
	w1, w2 := setup(t), setup(t)
	c1 := w1.NewClient(2, rand.New(rand.NewSource(19)))
	c2 := w2.NewClient(2, rand.New(rand.NewSource(19)))
	for i := 0; i < 15; i++ {
		if a, b := renderShape(c1.OLTP()), renderShape(c2.OLTP()); a != b {
			t.Fatalf("iteration %d: OLTP diverged\n%s\n%s", i, a, b)
		}
		qa, qb := c1.OLAP(), c2.OLAP()
		if qa.Root.String() != qb.Root.String() {
			t.Fatalf("iteration %d: OLAP diverged\n%s\n%s", i, qa.Root, qb.Root)
		}
	}
	// Same workload, different seeds: the item-zipf should eventually
	// produce different orders (sanity that the seed actually matters).
	c3 := w1.NewClient(2, rand.New(rand.NewSource(20)))
	diverged := false
	for i := 0; i < 15; i++ {
		if renderShape(c3.OLTP()) != renderShape(c2.OLTP()) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical transaction streams")
	}
}
