package chbench

import (
	"math/rand"

	"proteus/internal/query"
)

// Client is one CH client, bound to a home warehouse as in TPC-C. It
// satisfies the harness.Client interface.
type Client struct {
	w      *Workload
	r      *rand.Rand
	z      *rand.Zipf
	homeWH int
	qn     int
}

// NewClient builds client i (home warehouse i mod W).
func (w *Workload) NewClient(i int, r *rand.Rand) *Client {
	return &Client{
		w: w, r: r,
		z:      rand.NewZipf(r, w.cfg.ItemZipfS, 1, uint64(w.cfg.Items-1)),
		homeWH: i % w.cfg.Warehouses,
	}
}

// OLTP draws one TPC-C transaction with the standard frequency weights
// (NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%).
func (c *Client) OLTP() *query.Txn {
	switch p := c.r.Intn(100); {
	case p < 45:
		return c.w.NewOrder(c.r, c.z, c.homeWH)
	case p < 88:
		return c.w.Payment(c.r, c.homeWH)
	case p < 92:
		return c.w.OrderStatus(c.r, c.homeWH)
	case p < 96:
		return c.w.Delivery(c.r, c.homeWH)
	default:
		return c.w.StockLevel(c.r, c.homeWH)
	}
}

// OLAP cycles through the analytical queries, as CH clients issue the
// TPC-H sequence round-robin.
func (c *Client) OLAP() *query.Query {
	q := c.w.Query(c.qn, c.r)
	c.qn++
	return q
}

// NextQueryIndex reports which query OLAP will build next (for per-query
// latency breakdowns, Fig 10b).
func (c *Client) NextQueryIndex() int { return c.qn % NumQueries }
