package chbench

import (
	"math/rand"

	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// The TPC-H-derived analytical queries of the CH-benCHmark. The paper runs
// all 22; this reproduction implements the eight query *shapes* its
// evaluation discusses — single-table scan-aggregates (Q1, Q6), selective
// predicates (Q4, Q12), fact–dimension joins (Q14, Q19), a
// customer–orders join (Q3) and a three-way join (Q7 style) — over the CH
// schema. Queries cycle per client.

// NumQueries is the analytical query count.
const NumQueries = 8

// Query builds analytical query number qn (0-based).
func (w *Workload) Query(qn int, r *rand.Rand) *query.Query {
	switch qn % NumQueries {
	case 0:
		return w.q1()
	case 1:
		return w.q6()
	case 2:
		return w.q14()
	case 3:
		return w.q4()
	case 4:
		return w.q12()
	case 5:
		return w.q3()
	case 6:
		return w.q7()
	default:
		return w.q19(r)
	}
}

func dateVal(daysFromBase int) types.Value {
	return types.NewTime(baseDate.AddDate(0, 0, daysFromBase))
}

// q1: pricing summary — group orderlines by line number, aggregating
// quantity and amount (TPC-H Q1 shape).
func (w *Workload) q1() *query.Query {
	return &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{
			Table: w.t.OrderLine.ID,
			Cols:  []schema.ColID{1, 3, 4}, // ol_number, quantity, amount
			Pred:  storage.Pred{{Col: 5, Op: storage.CmpGe, Val: dateVal(0)}},
		},
		GroupBy: []int{0},
		Aggs: []exec.AggSpec{
			{Func: exec.AggSum, Col: 1}, {Func: exec.AggSum, Col: 2},
			{Func: exec.AggAvg, Col: 2}, {Func: exec.AggCount},
		},
	}}
}

// q6: revenue from orderlines in a delivery-date window with a quantity
// bound (Figure 2b).
func (w *Workload) q6() *query.Query {
	return &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{
			Table: w.t.OrderLine.ID,
			Cols:  []schema.ColID{4}, // amount
			Pred: storage.Pred{
				{Col: 5, Op: storage.CmpGe, Val: dateVal(1)},
				{Col: 5, Op: storage.CmpLe, Val: dateVal(700)},
				{Col: 3, Op: storage.CmpGe, Val: types.NewFloat64(1)},
				{Col: 3, Op: storage.CmpLe, Val: types.NewFloat64(100000)},
			},
		},
		Aggs: []exec.AggSpec{{Func: exec.AggSum, Col: 0}},
	}}
}

// q14: promotional revenue — join orderlines to promotional items in a
// date window (Figure 5a).
func (w *Workload) q14() *query.Query {
	return &query.Query{Root: &query.AggNode{
		Child: &query.JoinNode{
			Left: &query.ScanNode{
				Table: w.t.OrderLine.ID,
				Cols:  []schema.ColID{2, 4}, // ol_i_id, amount
				Pred: storage.Pred{
					{Col: 5, Op: storage.CmpGe, Val: dateVal(0)},
				},
			},
			Right: &query.ScanNode{
				Table: w.t.Item.ID,
				Cols:  []schema.ColID{0}, // i_id
				Pred: storage.Pred{
					{Col: 3, Op: storage.CmpGe, Val: types.NewString("PR")},
					{Col: 3, Op: storage.CmpLt, Val: types.NewString("PS")},
				},
			},
			LeftKeyCol: 0, RightKeyCol: 0,
		},
		Aggs: []exec.AggSpec{{Func: exec.AggSum, Col: 1}, {Func: exec.AggCount}},
	}}
}

// q4: order-priority counting — orders per carrier in a date window
// (TPC-H Q4 shape: selective scan + group count).
func (w *Workload) q4() *query.Query {
	return &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{
			Table: w.t.Orders.ID,
			Cols:  []schema.ColID{5}, // carrier
			Pred: storage.Pred{
				{Col: 4, Op: storage.CmpGe, Val: dateVal(0)},
				{Col: 5, Op: storage.CmpGe, Val: types.NewInt64(0)},
			},
		},
		GroupBy: []int{0},
		Aggs:    []exec.AggSpec{{Func: exec.AggCount}},
	}}
}

// q12: shipping-mode analysis — join orders to their orderlines, counting
// lines per carrier (TPC-H Q12 shape: fact-fact join).
func (w *Workload) q12() *query.Query {
	return &query.Query{Root: &query.AggNode{
		Child: &query.JoinNode{
			Left: &query.ScanNode{
				Table: w.t.OrderLine.ID,
				Cols:  []schema.ColID{0, 3}, // ol_o_id, quantity
			},
			Right: &query.ScanNode{
				Table: w.t.Orders.ID,
				Cols:  []schema.ColID{0, 5}, // o_id, carrier
				Pred:  storage.Pred{{Col: 5, Op: storage.CmpGe, Val: types.NewInt64(1)}},
			},
			LeftKeyCol: 0, RightKeyCol: 0,
		},
		GroupBy: []int{3}, // carrier
		Aggs:    []exec.AggSpec{{Func: exec.AggCount}, {Func: exec.AggSum, Col: 1}},
	}}
}

// q3: unshipped orders by customer — join customers to orders, summing
// order counts per customer (TPC-H Q3 shape).
func (w *Workload) q3() *query.Query {
	return &query.Query{Root: &query.AggNode{
		Child: &query.JoinNode{
			Left: &query.ScanNode{
				Table: w.t.Orders.ID,
				Cols:  []schema.ColID{3, 6},                                              // o_c_id, ol_cnt
				Pred:  storage.Pred{{Col: 5, Op: storage.CmpLt, Val: types.NewInt64(0)}}, // undelivered
			},
			Right: &query.ScanNode{
				Table: w.t.Customer.ID,
				Cols:  []schema.ColID{0}, // c_id (global customer row id)
			},
			LeftKeyCol: 0, RightKeyCol: 0,
		},
		GroupBy: []int{0},
		Aggs:    []exec.AggSpec{{Func: exec.AggSum, Col: 1}},
	}}
}

// q7: volume shipping — a three-way join orderline ⋈ item ⋈ stock-like
// aggregation (TPC-H Q7 shape: multi-join with aggregation).
func (w *Workload) q7() *query.Query {
	inner := &query.JoinNode{
		Left: &query.ScanNode{
			Table: w.t.OrderLine.ID,
			Cols:  []schema.ColID{2, 4}, // ol_i_id, amount
		},
		Right: &query.ScanNode{
			Table: w.t.Item.ID,
			Cols:  []schema.ColID{0, 2}, // i_id, price
		},
		LeftKeyCol: 0, RightKeyCol: 0,
	}
	return &query.Query{Root: &query.AggNode{
		Child: &query.JoinNode{
			Left:       inner, // output: [ol_i_id, amount, i_id, price]
			Right:      &query.ScanNode{Table: w.t.Stock.ID, Cols: []schema.ColID{0, 2}},
			LeftKeyCol: 0, RightKeyCol: 0,
		},
		Aggs: []exec.AggSpec{{Func: exec.AggSum, Col: 1}, {Func: exec.AggCount}},
	}}
}

// q19: discounted revenue — join orderline to items in a price band with
// a quantity band (TPC-H Q19 shape).
func (w *Workload) q19(r *rand.Rand) *query.Query {
	lo := float64(r.Intn(50))
	return &query.Query{Root: &query.AggNode{
		Child: &query.JoinNode{
			Left: &query.ScanNode{
				Table: w.t.OrderLine.ID,
				Cols:  []schema.ColID{2, 4},
				Pred: storage.Pred{
					{Col: 3, Op: storage.CmpGe, Val: types.NewFloat64(1)},
					{Col: 3, Op: storage.CmpLe, Val: types.NewFloat64(10)},
				},
			},
			Right: &query.ScanNode{
				Table: w.t.Item.ID,
				Cols:  []schema.ColID{0},
				Pred: storage.Pred{
					{Col: 2, Op: storage.CmpGe, Val: types.NewFloat64(lo)},
					{Col: 2, Op: storage.CmpLe, Val: types.NewFloat64(lo + 40)},
				},
			},
			LeftKeyCol: 0, RightKeyCol: 0,
		},
		Aggs: []exec.AggSpec{{Func: exec.AggSum, Col: 1}},
	}}
}
