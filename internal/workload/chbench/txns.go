package chbench

import (
	"math/rand"
	"time"

	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/types"
)

// The five TPC-C transactions (§6.1). Clients are associated with a home
// warehouse; NewOrder touches remote warehouses with probability
// CrossWarehousePct (Appendix B.3).

// NewOrder inserts an order with 3..MaxOL orderlines, reading item prices
// and updating per-item stock (remote stock for cross-warehouse lines).
func (w *Workload) NewOrder(r *rand.Rand, z *rand.Zipf, homeWH int) *query.Txn {
	cfg := w.cfg
	d := r.Intn(cfg.DistrictsPerW)
	di := w.districtIndex(homeWH, d)
	o := w.nextOrder[di].Add(1) - 1
	if o >= int64(cfg.MaxOrdersPerDistrict) {
		// Row space exhausted: wrap around is unrealistic; reuse the last
		// slot's updates instead of inserting.
		o = int64(cfg.MaxOrdersPerDistrict) - 1
	}
	orow := w.orderRow(homeWH, d, o)
	cust := w.customerRow(homeWH, d, r.Intn(cfg.CustomersPerDistrict))
	nOL := 3 + r.Intn(cfg.MaxOLPerOrder-2)
	now := time.Now()

	ops := []query.Op{
		// Reconnaissance reads: warehouse, district, customer.
		{Kind: query.OpRead, Table: w.t.Warehouse.ID, Row: schema.RowID(homeWH), Cols: []schema.ColID{2}},
		{Kind: query.OpRead, Table: w.t.Customer.ID, Row: cust, Cols: []schema.ColID{3, 4}},
		// Advance the district's next order id.
		{Kind: query.OpUpdate, Table: w.t.District.ID, Row: w.districtRow(homeWH, d),
			Cols: []schema.ColID{4}, Vals: []types.Value{types.NewInt64(o + 1)}},
	}
	if o < int64(cfg.MaxOrdersPerDistrict) {
		ops = append(ops, query.Op{
			Kind: query.OpInsert, Table: w.t.Orders.ID, Row: orow,
			Vals: []types.Value{
				types.NewInt64(int64(orow)), types.NewInt64(int64(d)), types.NewInt64(int64(homeWH)),
				types.NewInt64(int64(cust)), types.NewTime(now),
				types.NewInt64(-1), types.NewInt64(int64(nOL)),
			},
		})
	}
	seen := map[int]bool{}
	for l := 0; l < nOL; l++ {
		item := int(z.Uint64())
		for seen[item] {
			item = (item + 1) % cfg.Items
		}
		seen[item] = true
		supplyWH := homeWH
		if cfg.Warehouses > 1 && r.Intn(100) < cfg.CrossWarehousePct {
			supplyWH = r.Intn(cfg.Warehouses)
		}
		qty := float64(1 + r.Intn(10))
		ops = append(ops,
			query.Op{Kind: query.OpRead, Table: w.t.Item.ID, Row: schema.RowID(item), Cols: []schema.ColID{2}},
			query.Op{Kind: query.OpUpdate, Table: w.t.Stock.ID, Row: w.stockRow(supplyWH, item),
				Cols: []schema.ColID{2, 3, 4},
				Vals: []types.Value{
					types.NewFloat64(float64(10 + r.Intn(90))),
					types.NewFloat64(qty), types.NewInt64(1),
				}},
			query.Op{Kind: query.OpInsert, Table: w.t.OrderLine.ID, Row: w.orderLineRow(orow, l),
				Vals: []types.Value{
					types.NewInt64(int64(orow)), types.NewInt64(int64(l)), types.NewInt64(int64(item)),
					types.NewFloat64(qty), types.NewFloat64(qty * float64(1+r.Intn(100))),
					types.NewTime(time.Time{}),
				}},
		)
	}
	return &query.Txn{Ops: ops}
}

// Payment updates warehouse/district YTD and the customer balance, and
// records a history row.
func (w *Workload) Payment(r *rand.Rand, homeWH int) *query.Txn {
	cfg := w.cfg
	d := r.Intn(cfg.DistrictsPerW)
	cust := w.customerRow(homeWH, d, r.Intn(cfg.CustomersPerDistrict))
	amount := float64(1 + r.Intn(5000))
	h := w.historySeq.Add(1)
	return &query.Txn{Ops: []query.Op{
		{Kind: query.OpUpdate, Table: w.t.Warehouse.ID, Row: schema.RowID(homeWH),
			Cols: []schema.ColID{2}, Vals: []types.Value{types.NewFloat64(amount)}},
		{Kind: query.OpUpdate, Table: w.t.District.ID, Row: w.districtRow(homeWH, d),
			Cols: []schema.ColID{3}, Vals: []types.Value{types.NewFloat64(amount)}},
		{Kind: query.OpRead, Table: w.t.Customer.ID, Row: cust, Cols: []schema.ColID{4, 6}},
		{Kind: query.OpUpdate, Table: w.t.Customer.ID, Row: cust,
			Cols: []schema.ColID{4, 5}, Vals: []types.Value{types.NewFloat64(-amount), types.NewFloat64(amount)}},
		{Kind: query.OpInsert, Table: w.t.History.ID, Row: schema.RowID(h),
			Vals: []types.Value{types.NewInt64(int64(cust)), types.NewFloat64(amount), types.NewTime(time.Now())}},
	}}
}

// OrderStatus reads a customer and their most recent order with its lines.
func (w *Workload) OrderStatus(r *rand.Rand, homeWH int) *query.Txn {
	cfg := w.cfg
	d := r.Intn(cfg.DistrictsPerW)
	di := w.districtIndex(homeWH, d)
	last := w.nextOrder[di].Load() - 1
	if last < 0 {
		last = 0
	}
	orow := w.orderRow(homeWH, d, last)
	cust := w.customerRow(homeWH, d, r.Intn(cfg.CustomersPerDistrict))
	ops := []query.Op{
		{Kind: query.OpRead, Table: w.t.Customer.ID, Row: cust, Cols: []schema.ColID{3, 4}},
		{Kind: query.OpRead, Table: w.t.Orders.ID, Row: orow, Cols: []schema.ColID{4, 5, 6}},
	}
	for l := 0; l < cfg.MaxOLPerOrder; l++ {
		ops = append(ops, query.Op{
			Kind: query.OpRead, Table: w.t.OrderLine.ID, Row: w.orderLineRow(orow, l),
			Cols: []schema.ColID{2, 3, 4},
		})
	}
	return &query.Txn{Ops: ops}
}

// Delivery marks the oldest undelivered order of a district delivered:
// carrier assignment, per-line delivery dates (the Figure 5b update), and
// the customer's balance credit.
func (w *Workload) Delivery(r *rand.Rand, homeWH int) *query.Txn {
	cfg := w.cfg
	d := r.Intn(cfg.DistrictsPerW)
	di := w.districtIndex(homeWH, d)
	o := w.deliveredUpTo[di].Load()
	if o >= w.nextOrder[di].Load() {
		// Nothing to deliver: fall back to refreshing the latest order.
		o = w.nextOrder[di].Load() - 1
		if o < 0 {
			o = 0
		}
	} else {
		w.deliveredUpTo[di].Add(1)
	}
	orow := w.orderRow(homeWH, d, o)
	now := time.Now()
	ops := []query.Op{
		{Kind: query.OpUpdate, Table: w.t.Orders.ID, Row: orow,
			Cols: []schema.ColID{5}, Vals: []types.Value{types.NewInt64(int64(1 + r.Intn(10)))}},
	}
	for l := 0; l < 3; l++ { // at least 3 lines exist per order
		ops = append(ops, query.Op{
			Kind: query.OpUpdate, Table: w.t.OrderLine.ID, Row: w.orderLineRow(orow, l),
			Cols: []schema.ColID{5}, Vals: []types.Value{types.NewTime(now)},
		})
	}
	cust := w.customerRow(homeWH, d, r.Intn(cfg.CustomersPerDistrict))
	ops = append(ops, query.Op{
		Kind: query.OpUpdate, Table: w.t.Customer.ID, Row: cust,
		Cols: []schema.ColID{4}, Vals: []types.Value{types.NewFloat64(float64(r.Intn(100)))},
	})
	return &query.Txn{Ops: ops}
}

// StockLevel reads the stock of items in a district's recent orders
// (reconnaissance-read form of the TPC-C stock-level transaction).
func (w *Workload) StockLevel(r *rand.Rand, homeWH int) *query.Txn {
	cfg := w.cfg
	d := r.Intn(cfg.DistrictsPerW)
	di := w.districtIndex(homeWH, d)
	last := w.nextOrder[di].Load() - 1
	var ops []query.Op
	for back := int64(0); back < 5 && last-back >= 0; back++ {
		orow := w.orderRow(homeWH, d, last-back)
		for l := 0; l < 2; l++ {
			ops = append(ops, query.Op{
				Kind: query.OpRead, Table: w.t.OrderLine.ID, Row: w.orderLineRow(orow, l),
				Cols: []schema.ColID{2},
			})
		}
	}
	// Probe a handful of stock rows.
	for i := 0; i < 5; i++ {
		ops = append(ops, query.Op{
			Kind: query.OpRead, Table: w.t.Stock.ID,
			Row:  w.stockRow(homeWH, r.Intn(cfg.Items)),
			Cols: []schema.ColID{2},
		})
	}
	return &query.Txn{Ops: ops}
}
