package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/colstore"
	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// ScanBench compares the morsel-driven parallel scan executor against the
// legacy per-segment path on a mixed analytical scan workload — a full
// aggregation, a zone-map-prunable aggregation, a selective row stream and
// a LIMIT probe — over one multi-partition table, and writes a
// machine-readable report to BENCH_scan.json (override the path with
// PROTEUS_SCAN_BENCH_PATH). rows_per_sec counts logical coverage: each
// query's input is the whole table, so an executor that prunes partitions
// or terminates early covers the same logical rows in less time.
func ScanBench(w io.Writer, s Scale) error {
	header(w, "Scan executor: morsel vs legacy path")
	rows := s.YCSBRows * 4
	rounds := s.Rounds * 4 * s.Repeats
	parts := 8

	legacy, err := runScanVariant(s, rows, parts, rounds, true)
	if err != nil {
		return err
	}
	morsel, err := runScanVariant(s, rows, parts, rounds, false)
	if err != nil {
		return err
	}

	rep := scanReport{
		Rows: rows, Partitions: parts, Sites: s.Sites,
		Workload: "sum-full, sum-pruned(1/8), filter-stream(10%), limit-100",
		Legacy:   legacy, Morsel: morsel,
		Speedup: legacy.ElapsedMillis / morsel.ElapsedMillis,
	}
	if morsel.AllocsPerOp > 0 {
		rep.AllocRatio = legacy.AllocsPerOp / morsel.AllocsPerOp
	}
	enc, err := runEncodedBench(s)
	if err != nil {
		return err
	}
	rep.Encoded = enc

	path := os.Getenv("PROTEUS_SCAN_BENCH_PATH")
	if path == "" {
		path = "BENCH_scan.json"
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(w, "table: %d rows, %d partitions, %d sites; %d queries/variant\n",
		rows, parts, s.Sites, legacy.Queries)
	fmt.Fprintf(w, "legacy: %10.0f rows/s  p95 %6.2f ms  %8.0f allocs/op\n",
		legacy.RowsPerSec, legacy.P95Millis, legacy.AllocsPerOp)
	fmt.Fprintf(w, "morsel: %10.0f rows/s  p95 %6.2f ms  %8.0f allocs/op\n",
		morsel.RowsPerSec, morsel.P95Millis, morsel.AllocsPerOp)
	fmt.Fprintf(w, "speedup %.2fx, alloc ratio %.2fx -> %s\n", rep.Speedup, rep.AllocRatio, path)
	fmt.Fprintf(w, "encoded scans (dict/FoR code kernels vs decode-first):\n")
	for _, q := range enc.Queries {
		fmt.Fprintf(w, "  %-16s %10.0f -> %10.0f rows/s  (%.2fx)\n",
			q.Name, q.DecodedRowsPerSec, q.EncodedRowsPerSec, q.Speedup)
	}
	fmt.Fprintf(w, "  bytes/row %0.1f -> %0.1f (%.2fx smaller)\n",
		enc.DecodedBytesPerRow, enc.EncodedBytesPerRow, enc.BytesRatio)
	return nil
}

type scanResult struct {
	RowsPerSec    float64 `json:"rows_per_sec"`
	P95Millis     float64 `json:"p95_ms"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	ElapsedMillis float64 `json:"elapsed_ms"`
	Queries       int     `json:"queries"`
}

type scanReport struct {
	Rows       int64          `json:"rows"`
	Partitions int            `json:"partitions"`
	Sites      int            `json:"sites"`
	Workload   string         `json:"workload"`
	Legacy     scanResult     `json:"legacy"`
	Morsel     scanResult     `json:"morsel"`
	Speedup    float64        `json:"speedup"`
	AllocRatio float64        `json:"alloc_ratio"`
	Encoded    *encodedReport `json:"encoded_scan,omitempty"`
}

// encodedReport is the encoded-scan A/B section: the same compressed
// column store scanned with encodings off (the decode-first path: RLE
// expansion into pooled buffers, boxed per-run predicates) and on
// (dictionary/FoR code kernels, zero-copy encoded views).
type encodedReport struct {
	Rows               int64            `json:"rows"`
	Queries            []encodedQueryAB `json:"queries"`
	DecodedBytesPerRow float64          `json:"decoded_bytes_per_row"`
	EncodedBytesPerRow float64          `json:"encoded_bytes_per_row"`
	BytesRatio         float64          `json:"bytes_ratio"`
	EncodingCols       map[string]int64 `json:"encoding_cols"`
}

type encodedQueryAB struct {
	Name              string  `json:"name"`
	DecodedRowsPerSec float64 `json:"decoded_rows_per_sec"`
	EncodedRowsPerSec float64 `json:"encoded_rows_per_sec"`
	Speedup           float64 `json:"speedup"`
}

// runScanVariant loads one engine and times the query mix. Background
// intervals are slowed so the allocation delta reflects the query path.
func runScanVariant(s Scale, rows int64, parts, rounds int, disableMorsel bool) (scanResult, error) {
	cfg := cluster.DefaultConfig()
	cfg.Mode = cluster.ModeColumnStore
	cfg.NumSites = s.Sites
	cfg.Net = simnet.Config{}
	cfg.ReplicationInterval = 50 * time.Millisecond
	cfg.MaintainInterval = 100 * time.Millisecond
	cfg.DisableMorselExec = disableMorsel
	e := cluster.New(cfg)
	defer e.Close()

	tbl, err := e.CreateTable(cluster.TableSpec{
		Name: "scanbench",
		Cols: []schema.Column{
			{Name: "id", Kind: types.KindInt64},
			{Name: "grp", Kind: types.KindInt64},
			{Name: "val", Kind: types.KindFloat64},
		},
		MaxRows: schema.RowID(rows), Partitions: parts,
	})
	if err != nil {
		return scanResult{}, err
	}
	data := make([]schema.Row, 0, rows)
	for i := int64(0); i < rows; i++ {
		data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 10), types.NewFloat64(float64(i)),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, data); err != nil {
		return scanResult{}, err
	}

	mix := scanMix(tbl, rows)
	sess := e.NewSession()
	ctx := context.Background()
	for _, q := range mix { // warm plans and cost models
		if _, err := e.ExecuteQuery(ctx, sess, q); err != nil {
			return scanResult{}, err
		}
	}

	var lat []time.Duration
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range mix {
			qs := time.Now()
			if _, err := e.ExecuteQuery(ctx, sess, q); err != nil {
				return scanResult{}, err
			}
			lat = append(lat, time.Since(qs))
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p95 := lat[len(lat)*95/100]
	queries := rounds * len(mix)
	return scanResult{
		RowsPerSec:    float64(rows) * float64(queries) / elapsed.Seconds(),
		P95Millis:     float64(p95) / float64(time.Millisecond),
		AllocsPerOp:   float64(m1.Mallocs-m0.Mallocs) / float64(queries),
		ElapsedMillis: float64(elapsed) / float64(time.Millisecond),
		Queries:       queries,
	}, nil
}

// runEncodedBench A/B-tests the encoded scan path at the store level: one
// compressed column store holding low-cardinality strings (dictionary),
// narrow integers (frame-of-reference) and random floats (plain), scanned
// with encodings toggled off (the decode-first path) and on (code-operating
// kernels). Values are shuffled so RLE runs are short — the regime where
// decode-first pays per-row boxing and the code kernels do not.
func runEncodedBench(s Scale) (*encodedReport, error) {
	rows := int(s.YCSBRows) * 4
	rounds := 3 * s.Repeats
	rng := rand.New(rand.NewSource(17))
	kinds := []types.Kind{types.KindInt64, types.KindString, types.KindFloat64}
	data := make([]schema.Row, rows)
	for i := range data {
		data[i] = schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(500_000 + int64(rng.Intn(256))),
			types.NewString(fmt.Sprintf("cat-%02d", rng.Intn(12))),
			types.NewFloat64(rng.Float64()),
		}}
	}

	type benchQuery struct {
		name string
		cols []schema.ColID
		pred storage.Pred
		agg  bool
	}
	queries := []benchQuery{
		{name: "string-eq", cols: []schema.ColID{1},
			pred: storage.Pred{{Col: 1, Op: storage.CmpEq, Val: types.NewString("cat-03")}}},
		{name: "low-card-filter", cols: []schema.ColID{0},
			pred: storage.Pred{{Col: 0, Op: storage.CmpLt, Val: types.NewInt64(500_050)}}},
		{name: "sum-filtered", cols: []schema.ColID{0},
			pred: storage.Pred{{Col: 1, Op: storage.CmpGe, Val: types.NewString("cat-06")}}, agg: true},
	}

	run := func(encodings bool) ([]float64, float64, error) {
		prev := colstore.SetEncodings(encodings)
		defer colstore.SetEncodings(prev)
		st := colstore.NewMem(kinds, storage.NoSort, true)
		if err := st.Load(data, 1); err != nil {
			return nil, 0, err
		}
		perQuery := make([]float64, len(queries))
		for qi, q := range queries {
			var agg *exec.Aggregator
			if q.agg {
				agg = exec.NewAggregator(nil, []exec.AggSpec{{Func: exec.AggSum, Col: 0}})
			}
			matched := 0
			st.ScanBatches(q.cols, q.pred, storage.Latest, storage.DefaultBatchRows, func(b *storage.Batch) bool {
				matched += b.Len()
				return true
			}) // warm
			start := time.Now()
			for r := 0; r < rounds; r++ {
				st.ScanBatches(q.cols, q.pred, storage.Latest, storage.DefaultBatchRows, func(b *storage.Batch) bool {
					if agg != nil {
						agg.ObserveBatch(b)
					} else {
						matched += b.Len()
					}
					return true
				})
			}
			elapsed := time.Since(start)
			perQuery[qi] = float64(rows) * float64(rounds) / elapsed.Seconds()
		}
		bytesPerRow := float64(st.Stats().Bytes) / float64(rows)
		return perQuery, bytesPerRow, nil
	}

	decoded, decodedBPR, err := run(false)
	if err != nil {
		return nil, err
	}
	encoded, encodedBPR, err := run(true)
	if err != nil {
		return nil, err
	}
	es := colstore.ReadEncodingStats()
	rep := &encodedReport{
		Rows:               int64(rows),
		DecodedBytesPerRow: decodedBPR,
		EncodedBytesPerRow: encodedBPR,
		EncodingCols: map[string]int64{
			"plain": es.PlainCols, "rle": es.RLECols,
			"dict": es.DictCols, "for": es.FoRCols,
		},
	}
	if encodedBPR > 0 {
		rep.BytesRatio = decodedBPR / encodedBPR
	}
	for qi, q := range queries {
		rep.Queries = append(rep.Queries, encodedQueryAB{
			Name:              q.name,
			DecodedRowsPerSec: decoded[qi],
			EncodedRowsPerSec: encoded[qi],
			Speedup:           encoded[qi] / decoded[qi],
		})
	}
	return rep, nil
}

// scanMix builds the four-query workload over the bench table.
func scanMix(tbl *schema.Table, rows int64) []*query.Query {
	sum := func(pred storage.Pred) *query.Query {
		return &query.Query{Root: &query.AggNode{
			Child: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{2}, Pred: pred},
			Aggs:  []exec.AggSpec{{Func: exec.AggSum, Col: 0}},
		}}
	}
	return []*query.Query{
		sum(nil),
		sum(storage.Pred{{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(rows * 7 / 8)}}),
		{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0, 2},
			Pred: storage.Pred{{Col: 1, Op: storage.CmpEq, Val: types.NewInt64(0)}}}},
		{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0}}, Limit: 100},
	}
}
