package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"proteus/internal/asa"
	"proteus/internal/cluster"
	"proteus/internal/harness"
	"proteus/internal/workload/ycsb"
)

// Fig12b runs balanced YCSB on a cold Proteus engine and reports its
// performance over time as it learns the workload and cost models, plus
// the cost model's relative RMSE (the paper reports ~11% cold start).
func Fig12b(w io.Writer, s Scale) error {
	header(w, "Fig 12b: Proteus performance over time (cold start)")
	e := engineFor(cluster.ModeProteus, s)
	defer e.Close()
	wl, err := ycsb.Setup(e, ycsbConfig(s))
	if err != nil {
		return err
	}
	res := timedTimeline(w, e, func(i int, r *rand.Rand) harness.Client {
		return wl.NewClient(i, r)
	}, s, nil)
	fmt.Fprintf(w, "  layout changes executed: %d\n", e.Advisor.Changes())
	fmt.Fprintf(w, "  final layout distribution: %v\n", e.LayoutCounts())
	fmt.Fprintf(w, "  totals: %d oltp, %d olap, %d errors\n", res.OLTPCount, res.OLAPCount, res.Errors)
	fmt.Fprintf(w, "  cost model relative RMSE by op:\n")
	for op, rmse := range e.Model.Accuracy() {
		fmt.Fprintf(w, "    %-10s %.0f%%\n", op, rmse*100)
	}
	return nil
}

// Fig12c repeats Fig12b with a shifting OLTP skew centre and pre-trained
// models: a warm-up phase runs the full shift cycle before measurement, so
// the engine starts with trained cost models and access predictors.
func Fig12c(w io.Writer, s Scale) error {
	header(w, "Fig 12c: shifting skew with pre-trained models")
	e := engineFor(cluster.ModeProteus, s)
	defer e.Close()
	wl, err := ycsb.Setup(e, ycsbConfig(s))
	if err != nil {
		return err
	}
	shift := func(round int) {
		// The skew centre advances through the key space cyclically
		// (paper: every 5 minutes on an hourly cycle).
		wl.SetSkewCenter(int64(round) % 4 * (s.YCSBRows / 4))
	}
	factory := func(i int, r *rand.Rand) harness.Client { return wl.NewClient(i, r) }

	// Warm-up cycle (pre-training, not reported).
	warm := s
	warm.Duration = s.Duration / 2
	_ = harness.Run(e, factory, harness.Config{
		Clients: s.Clients, Mix: ycsbMixes[1], Duration: warm.Duration, Seed: 3,
		OnRound: func(c, round int) { shift(round) },
	})
	e.Stats().Reset()

	fmt.Fprintf(w, "  (after pre-training)\n")
	res := timedTimeline(w, e, factory, s, func(c, round int) { shift(round) })
	fmt.Fprintf(w, "  layout changes executed: %d\n", e.Advisor.Changes())
	fmt.Fprintf(w, "  totals: %d oltp, %d olap, %d errors\n", res.OLTPCount, res.OLAPCount, res.Errors)
	return nil
}

// Fig13 shifts the workload mix during the run (balanced -> OLTP-heavy ->
// OLAP-heavy), reporting per-interval performance and the completion time
// of the fixed work for every system.
func Fig13(w io.Writer, s Scale) error {
	header(w, "Fig 13: shifting workload mix")
	// 13a: completion time of the mixed-shift workload per system.
	fmt.Fprintf(w, "  completion time of the shift sequence per system:\n")
	for _, mode := range Systems {
		e := engineFor(mode, s)
		wl, err := ycsb.Setup(e, ycsbConfig(s))
		if err != nil {
			e.Close()
			return err
		}
		factory := func(i int, r *rand.Rand) harness.Client { return wl.NewClient(i, r) }
		start := time.Now()
		for _, mix := range []harness.Mix{ycsbMixes[1], ycsbMixes[0], ycsbMixes[2]} {
			res := harness.Run(e, factory, harness.Config{
				Clients: s.Clients, Mix: mix, RoundsPerClient: maxI(1, s.Rounds/3), Seed: 5,
			})
			if res.Errors > 0 {
				e.Close()
				return fmt.Errorf("%s: %d errors", mode, res.Errors)
			}
		}
		fmt.Fprintf(w, "    %-12s %.2fs\n", mode, time.Since(start).Seconds())
		e.Close()
	}

	// 13b/13c: Proteus performance timeline across the shifts.
	fmt.Fprintf(w, "\n  Proteus timeline across mix shifts:\n")
	e := engineFor(cluster.ModeProteus, s)
	defer e.Close()
	wl, err := ycsb.Setup(e, ycsbConfig(s))
	if err != nil {
		return err
	}
	factory := func(i int, r *rand.Rand) harness.Client { return wl.NewClient(i, r) }
	for _, mix := range []harness.Mix{ycsbMixes[1], ycsbMixes[0], ycsbMixes[2]} {
		res := harness.Run(e, factory, harness.Config{
			Clients: s.Clients, Mix: mix, Duration: s.Duration / 3,
			TimelineBucket: s.Duration / 9, Seed: 6,
		})
		fmt.Fprintf(w, "    mix=%s:\n", mix.Name)
		for _, b := range res.Timeline {
			sec := (s.Duration / 9).Seconds()
			fmt.Fprintf(w, "      t=%-9s oltp=%-8.0f olap-lat=%s\n",
				b.Start.Round(time.Millisecond), float64(b.OLTP)/sec, harness.FormatDuration(b.OLAPLat))
		}
	}
	fmt.Fprintf(w, "  layout changes executed: %d\n", e.Advisor.Changes())
	return nil
}

// Fig9Ablation disables each adaptive technique in turn on the balanced
// YCSB mix (Figures 9d and 9h): vertical/horizontal partitioning and
// replication drive OLTP latency; compression, sorting and decision reuse
// drive OLAP latency.
func Fig9Ablation(w io.Writer, s Scale) error {
	header(w, "Fig 9d/9h: ablation of adaptive techniques (balanced YCSB)")
	variants := []struct {
		name string
		mod  func(*asa.Flags)
	}{
		{"full", func(f *asa.Flags) {}},
		{"no-vertical", func(f *asa.Flags) { f.VerticalSplit = false }},
		{"no-horizontal", func(f *asa.Flags) { f.HorizontalSplit = false }},
		{"no-replication", func(f *asa.Flags) { f.Replication = false }},
		{"no-compression", func(f *asa.Flags) { f.Compression = false }},
		{"no-sorting", func(f *asa.Flags) { f.Sorting = false }},
		{"no-reuse", func(f *asa.Flags) { f.DecisionReuse = false }},
	}
	fmt.Fprintf(w, "  %-16s %-12s %-12s %-10s\n", "variant", "oltp avg", "olap avg", "changes")
	for _, v := range variants {
		cfg := cluster.DefaultConfig()
		cfg.Mode = cluster.ModeProteus
		cfg.NumSites = s.Sites
		cfg.ReplicationInterval = 2 * time.Millisecond
		v.mod(&cfg.Adapt.Flags)
		e := cluster.New(cfg)
		wl, err := ycsb.Setup(e, ycsbConfig(s))
		if err != nil {
			e.Close()
			return err
		}
		res := harness.Run(e, func(i int, r *rand.Rand) harness.Client {
			return wl.NewClient(i, r)
		}, harness.Config{Clients: s.Clients, Mix: ycsbMixes[1], RoundsPerClient: s.Rounds, Seed: 8})
		changes := e.Advisor.Changes()
		e.Close()
		if res.Errors > 0 {
			return fmt.Errorf("%s: %d errors", v.name, res.Errors)
		}
		fmt.Fprintf(w, "  %-16s %-12s %-12s %-10d\n", v.name,
			harness.FormatDuration(res.OLTPLatAvg), harness.FormatDuration(res.OLAPLatAvg), changes)
	}
	return nil
}
