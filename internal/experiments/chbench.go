package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/simnet"
	"proteus/internal/types"
	"proteus/internal/workload/chbench"
)

// chQueryNames labels the workload's eight analytical queries in
// chbench.Query index order.
var chQueryNames = [chbench.NumQueries]string{
	"q1", "q6", "q14", "q4", "q12", "q3", "q7", "q19",
}

// chJoinMix indexes the join/group-by queries — the mix the batch engine
// targets; the remaining queries are single-table scan-aggregates that
// take the same morsel path under both configurations.
var chJoinMix = []int{2, 4, 5, 6, 7}

// CHBench runs the full CH-benCHmark analytical matrix at 10x (quick) or
// 25x (full) the default loaded-order row counts, A/B-comparing the legacy
// row-at-a-time join path (DisableBatchJoin) against the batch-native
// join/group-by engine with runtime filter pushdown, verifying answer
// agreement per query, timing a mixed OLTP+OLAP phase, and forcing a
// spill pass through the disksim-backed grace join. Writes
// BENCH_chbench.json (override with PROTEUS_CHBENCH_PATH).
func CHBench(w io.Writer, s Scale) error {
	header(w, "CH-benCHmark: batch join/group-by engine vs row engine")
	mult := 10
	if s.Name == "full" {
		mult = 25
	}
	rounds := s.Rounds * s.Repeats
	if rounds < 2 {
		rounds = 2
	}

	row, err := newCHRun(s, mult, func(cfg *cluster.Config) {
		cfg.DisableBatchJoin = true
	})
	if err != nil {
		return err
	}
	defer row.close()
	batch, err := newCHRun(s, mult, nil)
	if err != nil {
		return err
	}
	defer batch.close()

	rep := chbenchReport{
		Scale:             s.Name,
		Warehouses:        row.cfg.Warehouses,
		Districts:         row.cfg.Warehouses * row.cfg.DistrictsPerW,
		OrdersPerDistrict: row.cfg.LoadedOrdersPerDistrict,
		Rounds:            rounds,
	}

	// Warm both engines (plan caches, cost models, layout decisions).
	if _, err := row.runAll(); err != nil {
		return err
	}
	if _, err := batch.runAll(); err != nil {
		return err
	}

	// Answer agreement: every query must produce the same relation (order
	// and float-tolerance insensitive) on both paths.
	rowRes, err := row.runAll()
	if err != nil {
		return err
	}
	js0 := exec.ReadJoinStats()
	batchRes, err := batch.runAll()
	if err != nil {
		return err
	}
	js1 := exec.ReadJoinStats()
	allMatch := true
	matches := make([]bool, chbench.NumQueries)
	for i := range rowRes {
		matches[i] = relsApprox(rowRes[i], batchRes[i])
		allMatch = allMatch && matches[i]
	}
	rep.AnswersMatch = allMatch
	rep.RuntimeFilter.Tested = js1.BloomTested - js0.BloomTested
	rep.RuntimeFilter.Passed = js1.BloomPassed - js0.BloomPassed
	rep.RuntimeFilter.BoundsPreds = js1.BoundsPreds - js0.BoundsPreds
	if rep.RuntimeFilter.Tested > 0 {
		rep.RuntimeFilter.PassPct = 100 * float64(rep.RuntimeFilter.Passed) / float64(rep.RuntimeFilter.Tested)
	}

	// Timed rounds, per query.
	rowMean, err := row.timeQueries(rounds)
	if err != nil {
		return err
	}
	batchMean, err := batch.timeQueries(rounds)
	if err != nil {
		return err
	}
	var joinRow, joinBatch, allRow, allBatch float64
	inMix := map[int]bool{}
	for _, qi := range chJoinMix {
		inMix[qi] = true
	}
	for i := 0; i < chbench.NumQueries; i++ {
		q := chQueryAB{
			Name:        chQueryNames[i],
			JoinMix:     inMix[i],
			RowMillis:   rowMean[i],
			BatchMillis: batchMean[i],
			OutRows:     batchRes[i].NumRows(),
			Match:       matches[i],
		}
		if q.BatchMillis > 0 {
			q.Speedup = q.RowMillis / q.BatchMillis
		}
		rep.Queries = append(rep.Queries, q)
		allRow += rowMean[i]
		allBatch += batchMean[i]
		if inMix[i] {
			joinRow += rowMean[i]
			joinBatch += batchMean[i]
		}
	}
	rep.JoinMixRowMillis, rep.JoinMixBatchMillis = joinRow, joinBatch
	if joinBatch > 0 {
		rep.JoinMixSpeedup = joinRow / joinBatch
	}
	if allBatch > 0 {
		rep.AllSpeedup = allRow / allBatch
	}

	// Mixed OLTP+OLAP phase on the batch engine: CH clients interleave
	// TPC-C transactions with the analytical sequence, as in the paper's
	// mixed-workload runs.
	if err := batch.runMixed(&rep.Mixed); err != nil {
		return err
	}

	// Forced spill: a tiny build-side budget pushes every batch join
	// through disksim-backed grace partitioning; answers must still match
	// the row engine.
	spillRun, err := newCHRun(s, mult, func(cfg *cluster.Config) {
		cfg.JoinSpillBudget = 4 << 10
	})
	if err != nil {
		return err
	}
	defer spillRun.close()
	if _, err := spillRun.runAll(); err != nil { // warm
		return err
	}
	sj0 := exec.ReadJoinStats()
	spillStart := time.Now()
	spillRes, err := spillRun.runAll()
	if err != nil {
		return err
	}
	rep.Spill.Millis = float64(time.Since(spillStart)) / float64(time.Millisecond)
	sj1 := exec.ReadJoinStats()
	rep.Spill.Partitions = sj1.SpillPartitions - sj0.SpillPartitions
	rep.Spill.Bytes = sj1.SpillBytes - sj0.SpillBytes
	rep.Spill.Recursions = sj1.SpillRecursions - sj0.SpillRecursions
	rep.Spill.Match = true
	for _, qi := range chJoinMix {
		if !relsApprox(rowRes[qi], spillRes[qi]) {
			rep.Spill.Match = false
		}
	}

	path := os.Getenv("PROTEUS_CHBENCH_PATH")
	if path == "" {
		path = "BENCH_chbench.json"
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(w, "scale %s: %d warehouses, %d districts, %d orders/district, %d timed rounds\n",
		rep.Scale, rep.Warehouses, rep.Districts, rep.OrdersPerDistrict, rounds)
	for _, q := range rep.Queries {
		tag := " "
		if q.JoinMix {
			tag = "*"
		}
		fmt.Fprintf(w, "  %s%-4s row %8.2f ms  batch %8.2f ms  (%5.2fx)  match=%v\n",
			tag, q.Name, q.RowMillis, q.BatchMillis, q.Speedup, q.Match)
	}
	fmt.Fprintf(w, "join/group-by mix (*): %.2f ms -> %.2f ms, speedup %.2fx (all queries %.2fx)\n",
		rep.JoinMixRowMillis, rep.JoinMixBatchMillis, rep.JoinMixSpeedup, rep.AllSpeedup)
	fmt.Fprintf(w, "runtime filter: %d probed, %d passed (%.1f%%), %d bounds preds pushed\n",
		rep.RuntimeFilter.Tested, rep.RuntimeFilter.Passed, rep.RuntimeFilter.PassPct,
		rep.RuntimeFilter.BoundsPreds)
	fmt.Fprintf(w, "mixed phase: %d txns + %d queries in %.0f ms\n",
		rep.Mixed.Txns, rep.Mixed.Queries, rep.Mixed.Millis)
	fmt.Fprintf(w, "forced spill: %d partitions, %d bytes, %d recursions, answers match=%v -> %s\n",
		rep.Spill.Partitions, rep.Spill.Bytes, rep.Spill.Recursions, rep.Spill.Match, path)
	if !allMatch {
		return fmt.Errorf("chbench: batch and row answers diverge")
	}
	if !rep.Spill.Match {
		return fmt.Errorf("chbench: spilled answers diverge")
	}
	return nil
}

type chQueryAB struct {
	Name        string  `json:"name"`
	JoinMix     bool    `json:"join_mix"`
	RowMillis   float64 `json:"row_ms"`
	BatchMillis float64 `json:"batch_ms"`
	Speedup     float64 `json:"speedup"`
	OutRows     int     `json:"out_rows"`
	Match       bool    `json:"answers_match"`
}

type chbenchReport struct {
	Scale              string      `json:"scale"`
	Warehouses         int         `json:"warehouses"`
	Districts          int         `json:"districts"`
	OrdersPerDistrict  int         `json:"orders_per_district"`
	Rounds             int         `json:"rounds"`
	Queries            []chQueryAB `json:"queries"`
	JoinMixRowMillis   float64     `json:"join_mix_row_ms"`
	JoinMixBatchMillis float64     `json:"join_mix_batch_ms"`
	JoinMixSpeedup     float64     `json:"join_mix_speedup"`
	AllSpeedup         float64     `json:"all_speedup"`
	AnswersMatch       bool        `json:"answers_match"`
	RuntimeFilter      struct {
		Tested      int64   `json:"probed"`
		Passed      int64   `json:"passed"`
		PassPct     float64 `json:"pass_pct"`
		BoundsPreds int64   `json:"bounds_preds"`
	} `json:"runtime_filter"`
	Mixed chMixedResult `json:"mixed_phase"`
	Spill struct {
		Partitions int64   `json:"partitions"`
		Bytes      int64   `json:"bytes"`
		Recursions int64   `json:"recursions"`
		Millis     float64 `json:"elapsed_ms"`
		Match      bool    `json:"answers_match"`
	} `json:"forced_spill"`
}

type chMixedResult struct {
	Txns    int     `json:"txns"`
	Queries int     `json:"queries"`
	Millis  float64 `json:"elapsed_ms"`
}

// chRun is one loaded CH engine plus its fixed query set.
type chRun struct {
	e       *cluster.Engine
	w       *chbench.Workload
	cfg     chbench.Config
	sess    *cluster.Session
	queries []*query.Query
}

// newCHRun builds a column-store engine (fixed layouts keep the A/B about
// the join engine, not ASA decisions), loads CH at mult times the scale's
// order count, and materializes the eight queries with a fixed seed so
// every run — and both sides of the A/B — parameterizes q19 identically.
func newCHRun(s Scale, mult int, tweak func(*cluster.Config)) (*chRun, error) {
	cfg := cluster.DefaultConfig()
	cfg.Mode = cluster.ModeColumnStore
	cfg.NumSites = s.Sites
	cfg.Net = simnet.Config{}
	cfg.ReplicationInterval = 50 * time.Millisecond
	cfg.MaintainInterval = 100 * time.Millisecond
	if tweak != nil {
		tweak(&cfg)
	}
	e := cluster.New(cfg)
	ch := chConfig(s)
	ch.LoadedOrdersPerDistrict = s.CHOrders * mult
	if ch.MaxOrdersPerDistrict < ch.LoadedOrdersPerDistrict*2 {
		ch.MaxOrdersPerDistrict = ch.LoadedOrdersPerDistrict * 2
	}
	w, err := chbench.Setup(e, ch)
	if err != nil {
		e.Close()
		return nil, err
	}
	r := &chRun{e: e, w: w, cfg: ch, sess: e.NewSession()}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < chbench.NumQueries; i++ {
		r.queries = append(r.queries, w.Query(i, rng))
	}
	return r, nil
}

func (r *chRun) close() { r.e.Close() }

// runAll executes the full query set once, returning per-query results.
func (r *chRun) runAll() ([]exec.Rel, error) {
	ctx := context.Background()
	res := make([]exec.Rel, len(r.queries))
	for i, q := range r.queries {
		rel, err := r.e.ExecuteQuery(ctx, r.sess, q)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", chQueryNames[i], err)
		}
		res[i] = rel
	}
	return res, nil
}

// timeQueries runs the set for rounds rounds and returns each query's mean
// latency in milliseconds.
func (r *chRun) timeQueries(rounds int) ([]float64, error) {
	ctx := context.Background()
	total := make([]time.Duration, len(r.queries))
	for round := 0; round < rounds; round++ {
		for i, q := range r.queries {
			start := time.Now()
			if _, err := r.e.ExecuteQuery(ctx, r.sess, q); err != nil {
				return nil, fmt.Errorf("%s: %w", chQueryNames[i], err)
			}
			total[i] += time.Since(start)
		}
	}
	mean := make([]float64, len(r.queries))
	for i, d := range total {
		mean[i] = float64(d) / float64(rounds) / float64(time.Millisecond)
	}
	return mean, nil
}

// runMixed interleaves TPC-C transactions with the analytical sequence —
// the CH-benCHmark's defining mix — on this engine. Aborted transactions
// (write conflicts) are part of the workload, not errors.
func (r *chRun) runMixed(out *chMixedResult) error {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	client := r.w.NewClient(0, rng)
	start := time.Now()
	for i := 0; i < 40; i++ {
		for j := 0; j < 5; j++ {
			if _, err := r.e.ExecuteTxn(ctx, r.sess, client.OLTP()); err == nil {
				out.Txns++
			}
		}
		if _, err := r.e.ExecuteQuery(ctx, r.sess, client.OLAP()); err != nil {
			return err
		}
		out.Queries++
	}
	out.Millis = float64(time.Since(start)) / float64(time.Millisecond)
	return nil
}

// relsApprox compares two relations ignoring row order, with a relative
// float tolerance (the batch path computes AVG natively rather than
// reconstructing it from shipped SUM/COUNT pairs).
func relsApprox(a, b exec.Rel) bool {
	if len(a.Cols) != len(b.Cols) || a.NumRows() != b.NumRows() {
		return false
	}
	at, bt := sortedTuples(a), sortedTuples(b)
	for i := range at {
		for c := range at[i] {
			if !valsApprox(at[i][c], bt[i][c]) {
				return false
			}
		}
	}
	return true
}

func sortedTuples(r exec.Rel) [][]types.Value {
	ts := append([][]types.Value{}, r.Tuples...)
	sort.Slice(ts, func(i, j int) bool {
		for c := range ts[i] {
			if cmp := types.Compare(ts[i][c], ts[j][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return ts
}

func valsApprox(a, b types.Value) bool {
	if a.K == types.KindFloat64 || b.K == types.KindFloat64 {
		af, bf := a.Float(), b.Float()
		if af == bf {
			return true
		}
		return math.Abs(af-bf) <= 1e-6*math.Max(math.Abs(af), math.Abs(bf))
	}
	return types.Equal(a, b)
}
