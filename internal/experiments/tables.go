package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/harness"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/types"
	"proteus/internal/workload/chbench"
	"proteus/internal/workload/ycsb"
)

// Fig10 reports CH OLTP throughput per mix (10a) and per-query OLAP
// latency (10b) for Proteus, RS and CS.
func Fig10(w io.Writer, s Scale) error {
	header(w, "Fig 10a: CH TPC-C throughput per mix")
	fmt.Fprintf(w, "  %-12s", "system")
	for _, mix := range chMixes {
		fmt.Fprintf(w, " %-14s", mix.Name)
	}
	fmt.Fprintln(w)
	for _, mode := range Systems {
		fmt.Fprintf(w, "  %-12s", mode)
		for _, mix := range chMixes {
			pt, err := runPoint("ch", mode, mix, s)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %-14.0f", pt.oltpTPS)
		}
		fmt.Fprintln(w)
	}

	header(w, "Fig 10b: CH per-query OLAP latency (balanced mix)")
	queryNames := []string{"q1", "q6", "q14", "q4", "q12", "q3", "q7", "q19"}
	fmt.Fprintf(w, "  %-12s", "system")
	for _, qn := range queryNames {
		fmt.Fprintf(w, " %-10s", qn)
	}
	fmt.Fprintln(w)
	for _, mode := range []cluster.Mode{cluster.ModeProteus, cluster.ModeRowStore, cluster.ModeColumnStore} {
		e := engineFor(mode, s)
		wl, err := chbench.Setup(e, chConfig(s))
		if err != nil {
			e.Close()
			return err
		}
		// Background OLTP pressure while measuring queries.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(12))
			c := wl.NewClient(0, r)
			sess := e.NewSession()
			for {
				select {
				case <-stop:
					return
				default:
					_, _ = e.ExecuteTxn(context.Background(), sess, c.OLTP())
				}
			}
		}()
		sess := e.NewSession()
		r := rand.New(rand.NewSource(13))
		fmt.Fprintf(w, "  %-12s", mode)
		for qn := range queryNames {
			const reps = 3
			var total time.Duration
			for i := 0; i < reps; i++ {
				t0 := time.Now()
				if _, err := e.ExecuteQuery(context.Background(), sess, wl.Query(qn, r)); err != nil {
					close(stop)
					wg.Wait()
					e.Close()
					return fmt.Errorf("%s q%d: %v", mode, qn, err)
				}
				total += time.Since(t0)
			}
			fmt.Fprintf(w, " %-10s", harness.FormatDuration(total/reps))
		}
		fmt.Fprintln(w)
		close(stop)
		wg.Wait()
		e.Close()
	}
	return nil
}

// Fig14 measures the OLAP freshness gap (Appendix B.1): writers stamp hot
// keys with wall-clock timestamps; analytical queries take MIN over the
// hot range; the gap is the age of the oldest stamp observed relative to
// the newest commit preceding the query.
func Fig14(w io.Writer, s Scale) error {
	header(w, "Fig 14: OLAP freshness gap per YCSB mix")
	fmt.Fprintf(w, "  %-12s %-14s %-10s\n", "mix", "avg gap", "queries")
	for _, mix := range ycsbMixes {
		gap, n, err := freshnessRun(mix, s)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-12s %-14s %-10d\n", mix.Name, harness.FormatDuration(gap), n)
	}
	return nil
}

func freshnessRun(mix harness.Mix, s Scale) (time.Duration, int, error) {
	e := engineFor(cluster.ModeProteus, s)
	defer e.Close()
	cfg := ycsbConfig(s)
	cfg.Freshness = true
	wl, err := ycsb.Setup(e, cfg)
	if err != nil {
		return 0, 0, err
	}
	const hotKeys = 64
	tbl := wl.Table()

	// Stamp every hot key once so MIN is meaningful.
	sess := e.NewSession()
	stamp := func(k int64) error {
		v := types.NewString(fmt.Sprintf("%020d", time.Now().UnixNano()))
		_, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{{
			Kind: query.OpUpdate, Table: tbl.ID, Row: schema.RowID(k),
			Cols: []schema.ColID{1}, Vals: []types.Value{v},
		}}})
		return err
	}
	for k := int64(0); k < hotKeys; k++ {
		if err := stamp(k); err != nil {
			return 0, 0, err
		}
	}

	var mu sync.Mutex
	lastCommit := time.Now()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < mix.OLTPPerOLAP; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			ws := e.NewSession()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(r.Intn(hotKeys))
				v := types.NewString(fmt.Sprintf("%020d", time.Now().UnixNano()))
				if _, err := e.ExecuteTxn(context.Background(), ws, &query.Txn{Ops: []query.Op{{
					Kind: query.OpUpdate, Table: tbl.ID, Row: schema.RowID(k),
					Cols: []schema.ColID{1}, Vals: []types.Value{v},
				}}}); err == nil {
					mu.Lock()
					lastCommit = time.Now()
					mu.Unlock()
				}
			}
		}(int64(c))
	}

	// Reader: MIN over the hot range.
	var totalGap time.Duration
	n := 0
	qsess := e.NewSession()
	deadline := time.Now().Add(s.Duration / 2)
	for time.Now().Before(deadline) {
		mu.Lock()
		commitBefore := lastCommit
		mu.Unlock()
		res, err := e.ExecuteQuery(context.Background(), qsess, wl.FreshnessQuery(hotKeys))
		if err != nil || res.NumRows() == 0 {
			continue
		}
		var oldest int64
		fmt.Sscanf(res.Tuples[0][0].Str(), "%d", &oldest)
		if oldest == 0 {
			continue
		}
		gap := commitBefore.Sub(time.Unix(0, oldest))
		if gap < 0 {
			gap = 0
		}
		totalGap += gap
		n++
	}
	close(stop)
	wg.Wait()
	if n == 0 {
		return 0, 0, nil
	}
	return totalGap / time.Duration(n), n, nil
}

// Fig15 sweeps the cross-warehouse percentage on CH (Appendix B.3).
func Fig15(w io.Writer, s Scale) error {
	header(w, "Fig 15: CH cross-warehouse transaction sweep (balanced mix)")
	for _, pct := range []int{0, 10, 20, 40} {
		fmt.Fprintf(w, "\n  cross-warehouse=%d%%\n", pct)
		fmt.Fprintf(w, "  %-12s %-14s %-14s %-12s\n", "system", "completion", "oltp tx/s", "olap avg")
		for _, mode := range []cluster.Mode{cluster.ModeProteus, cluster.ModeRowStore, cluster.ModeColumnStore} {
			e := engineFor(mode, s)
			cfg := chConfig(s)
			cfg.CrossWarehousePct = pct
			wl, err := chbench.Setup(e, cfg)
			if err != nil {
				e.Close()
				return err
			}
			res := harness.Run(e, func(i int, r *rand.Rand) harness.Client {
				return wl.NewClient(i, r)
			}, harness.Config{Clients: s.Clients, Mix: chMixes[1], RoundsPerClient: s.Rounds, Seed: 14})
			e.Close()
			if res.Errors > 0 {
				return fmt.Errorf("%s at %d%%: %d errors", mode, pct, res.Errors)
			}
			fmt.Fprintf(w, "  %-12s %-14.2f %-14.0f %-12s\n", mode, res.Wall.Seconds(),
				res.OLTPThroughput(), harness.FormatDuration(res.OLAPLatAvg))
		}
	}
	return nil
}

// Tab4 reproduces Table 4: time share, average latency and frequency per
// operation class on the balanced CH workload under Proteus.
func Tab4(w io.Writer, s Scale) error {
	header(w, "Table 4: time spent per operation class (balanced CH, Proteus)")
	e := engineFor(cluster.ModeProteus, s)
	defer e.Close()
	wl, err := chbench.Setup(e, chConfig(s))
	if err != nil {
		return err
	}
	res := harness.Run(e, func(i int, r *rand.Rand) harness.Client {
		return wl.NewClient(i, r)
	}, harness.Config{Clients: s.Clients, Mix: chMixes[1], RoundsPerClient: s.Rounds, Seed: 15})
	if res.Errors > 0 {
		return fmt.Errorf("%d errors", res.Errors)
	}
	classes := []cluster.OpClass{
		cluster.ClassOLTP, cluster.ClassOLAP,
		cluster.ClassFormatChange, cluster.ClassTierChange,
		cluster.ClassSortCompChange, cluster.ClassPartitionChange,
		cluster.ClassReplicationChange, cluster.ClassMasterChange,
	}
	printClassTable(w, e, classes, res)
	return nil
}

// Tab5 reproduces Table 5: planning and layout-change execution overheads.
func Tab5(w io.Writer, s Scale) error {
	header(w, "Table 5: planning and layout-change overheads (balanced CH, Proteus)")
	e := engineFor(cluster.ModeProteus, s)
	defer e.Close()
	wl, err := chbench.Setup(e, chConfig(s))
	if err != nil {
		return err
	}
	res := harness.Run(e, func(i int, r *rand.Rand) harness.Client {
		return wl.NewClient(i, r)
	}, harness.Config{Clients: s.Clients, Mix: chMixes[1], RoundsPerClient: s.Rounds, Seed: 16})
	if res.Errors > 0 {
		return fmt.Errorf("%d errors", res.Errors)
	}
	classes := []cluster.OpClass{
		cluster.ClassOLTPPlan, cluster.ClassOLAPPlan,
		cluster.ClassOLTPLayoutPlan, cluster.ClassOLAPLayoutPlan,
		cluster.ClassOLTPLayoutExec, cluster.ClassOLAPLayoutExec,
	}
	printClassTable(w, e, classes, res)
	hits, misses := e.Planner.Plans.Stats()
	fmt.Fprintf(w, "  plan cache: %d hits / %d misses\n", hits, misses)
	return nil
}

func printClassTable(w io.Writer, e *cluster.Engine, classes []cluster.OpClass, res harness.Result) {
	var totalTime time.Duration
	for _, c := range classes {
		totalTime += e.Stats().Class(c).TotalTime
	}
	requests := float64(res.OLTPCount + res.OLAPCount)
	fmt.Fprintf(w, "  %-20s %-12s %-14s %-14s\n", "operation", "share", "avg latency", "per 1000 reqs")
	sort.SliceStable(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		st := e.Stats().Class(c)
		share := 0.0
		if totalTime > 0 {
			share = float64(st.TotalTime) / float64(totalTime) * 100
		}
		per1000 := 0.0
		if requests > 0 {
			per1000 = float64(st.Count) / requests * 1000
		}
		fmt.Fprintf(w, "  %-20s %-12s %-14s %-14.1f\n", c,
			fmt.Sprintf("%.2f%%", share), harness.FormatDuration(st.Avg()), per1000)
	}
}
