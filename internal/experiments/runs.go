package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/harness"
	"proteus/internal/workload/chbench"
	"proteus/internal/workload/twitter"
	"proteus/internal/workload/ycsb"
)

// Mix ratios follow §6.1. YCSB uses the paper's 10/6/3 OLTP-per-OLAP
// ratios directly; CH and Twitter scale the paper's 999:1/99:1/19:1 and
// 1000:1/100:1/10:1 proportions down so laptop runs finish in seconds
// while preserving the heavy-to-light ordering.
var (
	ycsbMixes = []harness.Mix{
		{Name: "oltp-heavy", OLTPPerOLAP: 10},
		{Name: "balanced", OLTPPerOLAP: 6},
		{Name: "olap-heavy", OLTPPerOLAP: 3},
	}
	chMixes = []harness.Mix{
		{Name: "oltp-heavy", OLTPPerOLAP: 40},
		{Name: "balanced", OLTPPerOLAP: 20},
		{Name: "olap-heavy", OLTPPerOLAP: 8},
	}
	twitterMixes = []harness.Mix{
		{Name: "oltp-heavy", OLTPPerOLAP: 40},
		{Name: "balanced", OLTPPerOLAP: 20},
		{Name: "olap-heavy", OLTPPerOLAP: 8},
	}
)

func ycsbConfig(s Scale) ycsb.Config {
	cfg := ycsb.DefaultConfig()
	cfg.Rows = s.YCSBRows
	cfg.Partitions = s.Sites * 4
	return cfg
}

func chConfig(s Scale) chbench.Config {
	cfg := chbench.DefaultConfig()
	cfg.Warehouses = s.Sites
	cfg.LoadedOrdersPerDistrict = s.CHOrders
	return cfg
}

func twitterConfig(s Scale) twitter.Config {
	cfg := twitter.DefaultConfig()
	cfg.Users = s.TwitterUsers
	cfg.InitialTweets = s.TwitterUsers * 6
	return cfg
}

// capMemory sizes each site's memory tier relative to the single-copy
// footprint of the loaded database: 1.5x the per-site master share, as in
// the paper's testbed where one copy of the data fits in RAM with
// head-room but full dual-format replication (Janus/TiDB, 2x) overflows
// to the disk tier under LRU (§6.2, §6.3.2-6.3.3).
func capMemory(e *cluster.Engine) {
	perSite := e.MasterMemUsage() / int64(len(e.Sites))
	e.SetMemCapacityPerSite(perSite * 3 / 2)
}

// setupWorkload builds an engine + client factory for one benchmark.
func setupWorkload(bench string, mode cluster.Mode, s Scale) (*cluster.Engine, harness.ClientFactory, error) {
	e := engineFor(mode, s)
	switch bench {
	case "ycsb":
		w, err := ycsb.Setup(e, ycsbConfig(s))
		if err != nil {
			e.Close()
			return nil, nil, err
		}
		capMemory(e)
		return e, func(i int, r *rand.Rand) harness.Client { return w.NewClient(i, r) }, nil
	case "ch":
		w, err := chbench.Setup(e, chConfig(s))
		if err != nil {
			e.Close()
			return nil, nil, err
		}
		capMemory(e)
		return e, func(i int, r *rand.Rand) harness.Client { return w.NewClient(i, r) }, nil
	case "twitter":
		w, err := twitter.Setup(e, twitterConfig(s))
		if err != nil {
			e.Close()
			return nil, nil, err
		}
		capMemory(e)
		return e, func(i int, r *rand.Rand) harness.Client { return w.NewClient(i, r) }, nil
	}
	return nil, nil, fmt.Errorf("unknown benchmark %q", bench)
}

// runPoint executes one (benchmark, mode, mix) completion run, averaged
// over s.Repeats with 95% CIs.
type point struct {
	completionS  float64
	completionCI float64
	oltpTPS      float64
	olapLatMs    float64
	olapP95Ms    float64
	olapP99Ms    float64
}

func runPoint(bench string, mode cluster.Mode, mix harness.Mix, s Scale) (point, error) {
	var comps, tps, lats []float64
	var p point
	for rep := 0; rep < maxI(1, s.Repeats); rep++ {
		e, factory, err := setupWorkload(bench, mode, s)
		if err != nil {
			return p, err
		}
		// Warm-up phase (unreported): the paper's 20-minute runs reach
		// steady state; second-scale runs need an explicit ramp so every
		// system (and Proteus' adaptation) is measured warm.
		_ = harness.Run(e, factory, harness.Config{
			Clients: s.Clients, Mix: mix, RoundsPerClient: maxI(1, s.Rounds/2),
			Seed: int64(100*rep + 3),
		})
		res := harness.Run(e, factory, harness.Config{
			Clients: s.Clients, Mix: mix, RoundsPerClient: s.Rounds,
			Seed: int64(100*rep + 7),
		})
		e.Close()
		if res.Errors > 0 {
			return p, fmt.Errorf("%s/%s/%s: %d errors", bench, mode, mix.Name, res.Errors)
		}
		comps = append(comps, res.Wall.Seconds())
		tps = append(tps, res.OLTPThroughput())
		lats = append(lats, float64(res.OLAPLatAvg.Microseconds())/1000)
		p.olapP95Ms = float64(res.OLAPLatP95.Microseconds()) / 1000
		p.olapP99Ms = float64(res.OLAPLatP99.Microseconds()) / 1000
	}
	p.completionS, p.completionCI = harness.CI95(comps)
	p.oltpTPS, _ = harness.CI95(tps)
	p.olapLatMs, _ = harness.CI95(lats)
	return p, nil
}

// completionFigure renders a Fig 8-style completion-time table.
func completionFigure(w io.Writer, bench string, mixes []harness.Mix, s Scale) error {
	for _, mix := range mixes {
		fmt.Fprintf(w, "\n  mix=%s (%d OLTP per OLAP)\n", mix.Name, mix.OLTPPerOLAP)
		fmt.Fprintf(w, "  %-12s %-22s %-14s %-12s\n", "system", "completion", "oltp tx/s", "olap avg")
		for _, mode := range Systems {
			pt, err := runPoint(bench, mode, mix, s)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-12s %-22s %-14.0f %-12s\n",
				mode, meanCI(pt.completionS, pt.completionCI, "s"),
				pt.oltpTPS, fmt.Sprintf("%.2fms", pt.olapLatMs))
		}
	}
	return nil
}

// Fig8a is the YCSB completion-time comparison.
func Fig8a(w io.Writer, s Scale) error {
	header(w, "Fig 8a: YCSB workload completion time (lower is better)")
	return completionFigure(w, "ycsb", ycsbMixes, s)
}

// Fig8b is the CH-benCHmark completion-time comparison.
func Fig8b(w io.Writer, s Scale) error {
	header(w, "Fig 8b: CH-benCHmark completion time (lower is better)")
	return completionFigure(w, "ch", chMixes, s)
}

// Fig8d is the Twitter completion-time comparison.
func Fig8d(w io.Writer, s Scale) error {
	header(w, "Fig 8d: Twitter completion time (lower is better)")
	return completionFigure(w, "twitter", twitterMixes, s)
}

// Fig8c sweeps the client count on the balanced CH mix, tracing each
// system's latency-vs-throughput frontier.
func Fig8c(w io.Writer, s Scale) error {
	header(w, "Fig 8c: CH latency vs throughput (balanced mix)")
	clientCounts := []int{s.Clients / 2, s.Clients, s.Clients * 2}
	for _, mode := range Systems {
		fmt.Fprintf(w, "\n  system=%s\n", mode)
		fmt.Fprintf(w, "  %-10s %-14s %-14s\n", "clients", "oltp tx/s", "olap avg")
		for _, c := range clientCounts {
			if c < 1 {
				c = 1
			}
			sc := s
			sc.Clients = c
			sc.Repeats = 1
			pt, err := runPoint("ch", mode, chMixes[1], sc)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-10d %-14.0f %-14s\n", c, pt.oltpTPS, fmt.Sprintf("%.2fms", pt.olapLatMs))
		}
	}
	return nil
}

// Fig9 reports YCSB OLTP throughput and OLAP latency per mix per system
// (Figures 9a-9c and 9e-9g).
func Fig9(w io.Writer, s Scale) error {
	header(w, "Fig 9: YCSB OLTP throughput (9a-c) and OLAP latency (9e-g)")
	for _, mix := range ycsbMixes {
		fmt.Fprintf(w, "\n  mix=%s\n", mix.Name)
		fmt.Fprintf(w, "  %-12s %-14s %-12s %-12s %-12s\n", "system", "oltp tx/s", "olap avg", "olap p95", "olap p99")
		for _, mode := range Systems {
			pt, err := runPoint("ycsb", mode, mix, s)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-12s %-14.0f %-12s %-12s %-12s\n", mode, pt.oltpTPS,
				fmt.Sprintf("%.2fms", pt.olapLatMs), fmt.Sprintf("%.2fms", pt.olapP95Ms),
				fmt.Sprintf("%.2fms", pt.olapP99Ms))
		}
	}
	return nil
}

// Fig11 reports Twitter OLTP throughput and OLAP latency per mix.
func Fig11(w io.Writer, s Scale) error {
	header(w, "Fig 11: Twitter OLTP throughput and OLAP latency")
	for _, mix := range twitterMixes {
		fmt.Fprintf(w, "\n  mix=%s\n", mix.Name)
		fmt.Fprintf(w, "  %-12s %-14s %-12s\n", "system", "oltp tx/s", "olap avg")
		for _, mode := range Systems {
			pt, err := runPoint("twitter", mode, mix, s)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-12s %-14.0f %-12s\n", mode, pt.oltpTPS, fmt.Sprintf("%.2fms", pt.olapLatMs))
		}
	}
	return nil
}

// Fig12a scales the site count on balanced YCSB (paper: 3 -> 18 sites;
// here 1 -> 3x the base).
func Fig12a(w io.Writer, s Scale) error {
	header(w, "Fig 12a: scalability — sites vs OLTP throughput and OLAP latency")
	fmt.Fprintf(w, "  %-8s %-10s %-14s %-12s\n", "sites", "clients", "oltp tx/s", "olap avg")
	for _, sites := range []int{1, s.Sites, s.Sites * 2} {
		sc := s
		sc.Sites = sites
		// The paper runs 30 clients per site; parallelism must scale with
		// sites for added capacity to be usable.
		sc.Clients = sites * maxI(6, s.Clients/s.Sites)
		sc.Repeats = 1
		pt, err := runPoint("ycsb", cluster.ModeProteus, ycsbMixes[1], sc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-8d %-10d %-14.0f %-12s\n", sites, sc.Clients, pt.oltpTPS,
			fmt.Sprintf("%.2fms", pt.olapLatMs))
	}
	return nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// timedTimeline runs a duration-bound balanced YCSB workload and prints
// the throughput/latency timeline (performance-over-time figures).
func timedTimeline(w io.Writer, e *cluster.Engine, factory harness.ClientFactory, s Scale, onRound func(int, int)) harness.Result {
	res := harness.Run(e, factory, harness.Config{
		Clients: s.Clients, Mix: ycsbMixes[1],
		Duration:       s.Duration,
		TimelineBucket: s.Duration / 10,
		Seed:           11,
		OnRound:        onRound,
	})
	fmt.Fprintf(w, "  %-10s %-12s %-12s %-12s\n", "t", "oltp tx/s", "olap/s", "olap avg")
	for _, b := range res.Timeline {
		bucketSec := (s.Duration / 10).Seconds()
		fmt.Fprintf(w, "  %-10s %-12.0f %-12.1f %-12s\n",
			b.Start.Round(time.Millisecond), float64(b.OLTP)/bucketSec,
			float64(b.OLAP)/bucketSec, harness.FormatDuration(b.OLAPLat))
	}
	return res
}
