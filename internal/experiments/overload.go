package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"proteus/internal/admission"
	"proteus/internal/cluster"
	"proteus/internal/faults"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/types"
)

// OverloadBench ramps offered OLTP load to 10x the admission bucket's
// capacity and A/B-tests the token-bucket front end against AlwaysAdmit,
// writing a machine-readable report to BENCH_overload.json (override the
// path with PROTEUS_OVERLOAD_BENCH_PATH). Five phases:
//
//  1. solo floor: one closed-loop client measures raw commit latency
//     with nothing else running (reported, not the ratio denominator);
//  2. capacity probe: a closed-loop client pool measures the saturated
//     commit rate, from which the bucket rate (capacity/4) and the
//     offered overload rate (10x the bucket) are derived;
//  3. uncontended baseline: the same open-loop harness that will drive
//     the overload runs at 0.8x the bucket rate — everything is
//     admitted, and the measurement includes the identical client-side
//     queueing, so the ratio below isolates the overload effect rather
//     than harness jitter;
//  4. overload window per variant: the open-loop arrival process at 10x
//     the bucket rate; admitted-commit latency is measured from arrival
//     (queueing included), and sheds must be the typed
//     faults.ErrOverload with a RetryAfter hint;
//  5. read-back after every window: every acknowledged write must still
//     be stored (a shed is never acked, an ack is never lost).
//
// The reproduction target: under TokenBucket the p99 of admitted work
// stays within 2x the uncontended baseline while the shed rate absorbs
// the excess; under AlwaysAdmit the same offered load drives p99 far
// past that bound because nothing refuses work. AlwaysAdmit's p99 is in
// fact an undercount — once the client-side queue overflows, arrivals
// are dropped on the floor (client_dropped) with no backpressure signal
// at all.
func OverloadBench(w io.Writer, s Scale) error {
	header(w, "Overload: token-bucket admission vs AlwaysAdmit at 10x capacity")
	rows := int64(200 * s.Clients) // small enough that read-back stays cheap
	// The pool is the closed-loop concurrency both variants get. Under
	// TokenBucket a few workers carry the admitted trickle and up to
	// MaxQueue more hold parked waiters, leaving the rest to drain shed
	// verdicts near-instantly; under AlwaysAdmit the same pool saturates
	// the engine and the overflow backs up into the client-side queue.
	// Capacity is probed at half the pool so the derived offered rate
	// exceeds what even the full pool can push through the engine.
	workers := 4 * s.Clients
	probeClients := 2 * s.Clients
	window := s.Duration
	baseTxns := 300 * s.Repeats

	// Phase 1+2 run on the AlwaysAdmit engine: with a pass-through
	// front end they measure the raw engine, and both variants share the
	// derived rates so the A/B columns see identical offered load.
	aa, aaTbl, err := overloadEngine(s, rows, admission.Config{})
	if err != nil {
		return err
	}
	aaOpen := true
	defer func() {
		if aaOpen {
			aa.Close()
		}
	}()
	solo, err := overloadBaseline(aa, aaTbl, context.Background(), baseTxns)
	if err != nil {
		return err
	}
	capacity, err := overloadCapacity(aa, aaTbl, rows, probeClients, 300*time.Millisecond)
	if err != nil {
		return err
	}
	bucketRate := capacity / 4
	if bucketRate < 200 {
		bucketRate = 200
	}
	offered := 10 * bucketRate

	aaRes, err := overloadWindow(aa, aaTbl, context.Background(), workers, offered, window, rows)
	if err != nil {
		return err
	}
	// Shut the A/B engine down before the token-bucket window: its
	// replication catch-up from the deep AlwaysAdmit backlog would
	// otherwise steal cycles from the run being graded.
	aa.Close()
	aaOpen = false

	// The token-bucket variant: same engine shape, bucket at a quarter of
	// measured capacity so admitted work runs uncontended, and a very
	// shallow wait queue so nearly every excess arrival sheds on the
	// immediate path — a shed verdict must cost microseconds, or refusing
	// work would itself queue. The read-back rides an unthrottled side
	// tenant — QoS isolation per tenant is the point of per-tenant buckets.
	tb, tbTbl, err := overloadEngine(s, rows, admission.Config{
		Policy:  admission.TokenBucket,
		Default: admission.Limits{Rate: bucketRate, Burst: bucketRate / 20},
		Tenants: map[string]admission.Limits{
			"overload-verify": {Rate: 1e9, Burst: 1e9},
		},
		MaxQueue:         4,
		MaxWait:          time.Millisecond,
		MaxCommitBacklog: 1 << 12,
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	verifyCtx := admission.WithTenant(context.Background(), "overload-verify")
	if _, err := overloadBaseline(tb, tbTbl, verifyCtx, 32); err != nil { // warm plans
		return err
	}
	// Phase 3: the uncontended baseline, through the identical open-loop
	// harness at 0.8x the bucket rate so the bucket admits everything.
	lightRes, err := overloadWindow(tb, tbTbl, verifyCtx, workers, 0.8*bucketRate, window, rows)
	if err != nil {
		return err
	}
	tbRes, err := overloadWindow(tb, tbTbl, verifyCtx, workers, offered, window, rows)
	if err != nil {
		return err
	}
	snap := tb.MetricsSnapshot()
	tbRes.EngineAdmitted = snap.Counters["admission.admitted"]
	tbRes.EngineShed = snap.Counters["admission.shed"]

	rep := overloadReport{
		Sites: s.Sites, Rows: rows, Workers: workers,
		WindowMillis: float64(window) / float64(time.Millisecond),
		SoloP50Us:    solo.p50, SoloP99Us: solo.p99,
		BaselineP50Us: lightRes.AdmittedP50Us, BaselineP99Us: lightRes.AdmittedP99Us,
		CapacityPerSec: capacity, BucketRate: bucketRate, OfferedPerSec: offered,
		LightLoad: lightRes, TokenBucket: tbRes, AlwaysAdmit: aaRes,
	}
	if rep.BaselineP99Us > 0 {
		rep.P99RatioTokenBucket = tbRes.AdmittedP99Us / rep.BaselineP99Us
		rep.P99RatioAlwaysAdmit = aaRes.AdmittedP99Us / rep.BaselineP99Us
	}
	rep.QoSHeld = rep.P99RatioTokenBucket <= 2.0 &&
		rep.P99RatioAlwaysAdmit > rep.P99RatioTokenBucket

	path := os.Getenv("PROTEUS_OVERLOAD_BENCH_PATH")
	if path == "" {
		path = "BENCH_overload.json"
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(w, "solo p99 %.0f us; capacity %.0f txn/s -> bucket %.0f/s, offered %.0f/s for %v\n",
		solo.p99, capacity, bucketRate, offered, window)
	fmt.Fprintf(w, "baseline (open loop at 0.8x bucket): admitted %d p50 %.0f us p99 %.0f us\n",
		lightRes.Admitted, rep.BaselineP50Us, rep.BaselineP99Us)
	for _, v := range []struct {
		name string
		r    overloadResult
	}{{"token_bucket", tbRes}, {"always_admit", aaRes}} {
		fmt.Fprintf(w, "%-12s offered %6d admitted %6d shed %6d dropped %6d err %4d  p99 %8.0f us (%.1fx baseline)\n",
			v.name, v.r.Offered, v.r.Admitted, v.r.Shed, v.r.ClientDropped, v.r.Errors,
			v.r.AdmittedP99Us, v.r.AdmittedP99Us/rep.BaselineP99Us)
		fmt.Fprintf(w, "%-12s   in-call p99 %8.0f us  client-wait p99 %8.0f us\n",
			"", v.r.InCallP99Us, v.r.ClientWaitP99Us)
	}
	fmt.Fprintf(w, "qos_held=%v -> %s\n", rep.QoSHeld, path)

	// Correctness is non-negotiable even in a benchmark: a shed without
	// the typed hint or a lost acked write fails the experiment.
	if tbRes.UntypedSheds > 0 || aaRes.UntypedSheds > 0 {
		return fmt.Errorf("overload: %d sheds lacked the typed ErrOverload/RetryAfter contract",
			tbRes.UntypedSheds+aaRes.UntypedSheds)
	}
	if tbRes.LostAcked > 0 || aaRes.LostAcked > 0 {
		return fmt.Errorf("overload: %d acknowledged writes not found on read-back",
			tbRes.LostAcked+aaRes.LostAcked)
	}
	if tbRes.Shed == 0 {
		return fmt.Errorf("overload: token bucket shed nothing at 10x capacity; the gate is not engaged")
	}
	return nil
}

type overloadResult struct {
	Offered         int     `json:"offered"`
	Admitted        int     `json:"admitted"`
	Shed            int     `json:"shed"`
	ClientDropped   int     `json:"client_dropped"`
	Errors          int     `json:"errors"`
	AdmittedP50Us   float64 `json:"admitted_p50_us"`
	AdmittedP99Us   float64 `json:"admitted_p99_us"`
	InCallP99Us     float64 `json:"in_call_p99_us"`     // ExecuteTxn entry -> return, admitted only
	ClientWaitP99Us float64 `json:"client_wait_p99_us"` // arrival -> worker pickup
	ShedRate        float64 `json:"shed_rate"`
	UntypedSheds    int     `json:"untyped_sheds"`
	AckedVerified   int     `json:"acked_rows_verified"`
	LostAcked       int     `json:"lost_acked"`
	EngineAdmitted  int64   `json:"engine_admitted,omitempty"`
	EngineShed      int64   `json:"engine_shed,omitempty"`
}

type overloadReport struct {
	Sites               int            `json:"sites"`
	Rows                int64          `json:"rows"`
	Workers             int            `json:"workers"`
	WindowMillis        float64        `json:"window_ms"`
	SoloP50Us           float64        `json:"solo_p50_us"`
	SoloP99Us           float64        `json:"solo_p99_us"`
	BaselineP50Us       float64        `json:"baseline_p50_us"`
	BaselineP99Us       float64        `json:"baseline_p99_us"`
	CapacityPerSec      float64        `json:"capacity_txn_per_sec"`
	BucketRate          float64        `json:"bucket_rate_per_sec"`
	OfferedPerSec       float64        `json:"offered_per_sec"`
	LightLoad           overloadResult `json:"light_load"`
	TokenBucket         overloadResult `json:"token_bucket"`
	AlwaysAdmit         overloadResult `json:"always_admit"`
	P99RatioTokenBucket float64        `json:"p99_ratio_token_bucket"`
	P99RatioAlwaysAdmit float64        `json:"p99_ratio_always_admit"`
	QoSHeld             bool           `json:"qos_held"`
}

// overloadEngine builds a row-store engine (the advisor stays out of the
// A/B) with the given admission config and loads the workload table.
func overloadEngine(s Scale, rows int64, adm admission.Config) (*cluster.Engine, *schema.Table, error) {
	cfg := cluster.DefaultConfig()
	cfg.Mode = cluster.ModeRowStore
	cfg.NumSites = s.Sites
	// A fat simulated network floor puts the uncontended baseline in the
	// several-millisecond range: commit latency is then dominated by
	// simulated round trips rather than CPU, so scheduler jitter from
	// the load generator cannot masquerade as a QoS breach, and the
	// derived offered rate stays low enough for a single-core host to
	// pace cleanly.
	cfg.Net = simnet.Config{BaseLatency: 4 * time.Millisecond, BytesPerSecond: 1 << 30}
	// Slow background cadence: with 4ms simulated round trips a replica
	// catch-up or maintenance pass is expensive, and its partition-lock
	// convoys would smear the admitted tail with multi-ms spikes.
	cfg.ReplicationInterval = 25 * time.Millisecond
	cfg.MaintainInterval = 100 * time.Millisecond
	cfg.Admission = adm
	e := cluster.New(cfg)

	tbl, err := e.CreateTable(cluster.TableSpec{
		Name: "overload",
		Cols: []schema.Column{
			{Name: "id", Kind: types.KindInt64},
			{Name: "grp", Kind: types.KindInt64},
			{Name: "val", Kind: types.KindFloat64},
		},
		MaxRows: schema.RowID(rows), Partitions: 8,
	})
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	data := make([]schema.Row, 0, rows)
	for i := int64(0); i < rows; i++ {
		data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 10), types.NewFloat64(0),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, data); err != nil {
		e.Close()
		return nil, nil, err
	}
	return e, tbl, nil
}

func overloadUpdate(tbl *schema.Table, row int64, v float64) *query.Txn {
	return &query.Txn{Ops: []query.Op{{
		Kind: query.OpUpdate, Table: tbl.ID, Row: schema.RowID(row),
		Cols: []schema.ColID{2}, Vals: []types.Value{types.NewFloat64(v)},
	}}}
}

type latSummary struct{ p50, p99 float64 }

func summarizeLat(lat []time.Duration) latSummary {
	if len(lat) == 0 {
		return latSummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return latSummary{
		p50: float64(lat[len(lat)/2]) / float64(time.Microsecond),
		p99: float64(lat[len(lat)*99/100]) / float64(time.Microsecond),
	}
}

// overloadBaseline measures single-client closed-loop commit latency.
func overloadBaseline(e *cluster.Engine, tbl *schema.Table, ctx context.Context, txns int) (latSummary, error) {
	runtime.GC() // keep collector pauses out of the latency distributions
	sess := e.NewSession()
	for i := 0; i < 32; i++ { // warm plans and locks
		if _, err := e.ExecuteTxn(ctx, sess, overloadUpdate(tbl, int64(i), 0)); err != nil {
			return latSummary{}, err
		}
	}
	lat := make([]time.Duration, 0, txns)
	for i := 0; i < txns; i++ {
		t0 := time.Now()
		if _, err := e.ExecuteTxn(ctx, sess, overloadUpdate(tbl, int64(i%64), 1)); err != nil {
			return latSummary{}, err
		}
		lat = append(lat, time.Since(t0))
	}
	return summarizeLat(lat), nil
}

// overloadCapacity measures the saturated commit rate with a closed-loop
// client pool — the denominator "capacity" that the overload ramp is 10x of.
func overloadCapacity(e *cluster.Engine, tbl *schema.Table, rows int64, clients int, window time.Duration) (float64, error) {
	var wg sync.WaitGroup
	var done int64
	var mu sync.Mutex
	var firstErr error
	span := rows / int64(clients)
	stop := time.Now().Add(window)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := e.NewSession()
			n := int64(0)
			for i := 0; time.Now().Before(stop); i++ {
				if _, err := e.ExecuteTxn(context.Background(), sess,
					overloadUpdate(tbl, int64(c)*span+int64(i)%span, float64(i))); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				n++
			}
			mu.Lock()
			done += n
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return float64(done) / window.Seconds(), nil
}

// overloadWindow drives an open-loop arrival process at the offered rate
// through a bounded worker pool and measures what the admitted share
// experienced. Workers own disjoint row ranges and write strictly
// increasing values, so the read-back invariant is exact per row: the
// stored value must be at least the last acknowledged one (a later
// unacked write may have landed durably — a commit abandoned at the
// group-commit wait is durable but never acked — but an acked value
// that reads back smaller is a lost write).
func overloadWindow(e *cluster.Engine, tbl *schema.Table, verifyCtx context.Context,
	workers int, offered float64, window time.Duration, rows int64) (overloadResult, error) {

	runtime.GC()
	span := rows / int64(workers)
	type wstate struct {
		lats    []time.Duration
		calls   []time.Duration // in-call share of lats
		waits   []time.Duration // queue-wait share of every request
		acked   map[int64]float64
		shed    int
		untyped int
		errs    int
	}
	states := make([]*wstate, workers)
	work := make(chan time.Time, 1024)
	var wg sync.WaitGroup
	for c := 0; c < workers; c++ {
		c := c
		st := &wstate{acked: make(map[int64]float64)}
		states[c] = st
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := e.NewSession()
			lo := int64(c) * span
			n := int64(0)
			for at := range work {
				n++
				row := lo + n%span
				st.waits = append(st.waits, time.Since(at))
				t0 := time.Now()
				_, err := e.ExecuteTxn(context.Background(), sess, overloadUpdate(tbl, row, float64(n)))
				switch {
				case err == nil:
					st.acked[row] = float64(n)
					st.calls = append(st.calls, time.Since(t0))
					st.lats = append(st.lats, time.Since(at))
				case errors.Is(err, faults.ErrOverload):
					st.shed++
					if _, ok := faults.RetryAfterHint(err); !ok {
						st.untyped++
					}
				default:
					st.errs++
				}
			}
		}()
	}

	// Open-loop arrivals: the i-th request is due at i/offered seconds;
	// when the worker queue is full the arrival is dropped on the client
	// floor — under AlwaysAdmit that is the only relief valve there is.
	res := overloadResult{}
	start := time.Now()
	for i := 0; ; i++ {
		elapsed := time.Since(start)
		if elapsed >= window {
			break
		}
		due := time.Duration(float64(i) * float64(time.Second) / offered)
		if d := due - elapsed; d > 100*time.Microsecond {
			time.Sleep(d)
		}
		res.Offered++
		select {
		case work <- time.Now():
		default:
			res.ClientDropped++
		}
	}
	close(work)
	wg.Wait()

	var lat, calls, waits []time.Duration
	for _, st := range states {
		lat = append(lat, st.lats...)
		calls = append(calls, st.calls...)
		waits = append(waits, st.waits...)
		res.Admitted += len(st.lats)
		res.Shed += st.shed
		res.UntypedSheds += st.untyped
		res.Errors += st.errs
	}
	sum := summarizeLat(lat)
	res.AdmittedP50Us, res.AdmittedP99Us = sum.p50, sum.p99
	res.InCallP99Us = summarizeLat(calls).p99
	res.ClientWaitP99Us = summarizeLat(waits).p99
	if attempts := res.Offered - res.ClientDropped; attempts > 0 {
		res.ShedRate = float64(res.Shed) / float64(attempts)
	}

	// Read-back: every acked row must still hold at least its acked
	// value. One verifier per worker range, in parallel — with the fat
	// simulated network a sequential sweep would take seconds.
	var vwg sync.WaitGroup
	var vmu sync.Mutex
	var verifyErr error
	for _, st := range states {
		st := st
		vwg.Add(1)
		go func() {
			defer vwg.Done()
			sess := e.NewSession()
			for row, want := range st.acked {
				rel, err := e.ExecuteTxn(verifyCtx, sess, &query.Txn{Ops: []query.Op{{
					Kind: query.OpRead, Table: tbl.ID, Row: schema.RowID(row), Cols: []schema.ColID{2},
				}}})
				vmu.Lock()
				if err != nil {
					if verifyErr == nil {
						verifyErr = fmt.Errorf("read-back row %d: %w", row, err)
					}
				} else {
					if rel.Tuples[0][0].Float() < want {
						res.LostAcked++
					}
					res.AckedVerified++
				}
				vmu.Unlock()
			}
		}()
	}
	vwg.Wait()
	if verifyErr != nil {
		return res, verifyErr
	}
	return res, nil
}
