// Package experiments regenerates every table and figure of the paper's
// evaluation (§6, Appendices A–B) at laptop scale: the row-vs-column
// microbenchmark (Fig 3), workload completion times and OLTP/OLAP
// performance for YCSB, CH-benCHmark and Twitter across the five system
// architectures (Figs 8–11), scalability (Fig 12a), adaptivity over time
// (Figs 12b–c, 13), the ablation study (Figs 9d/9h), freshness gaps
// (Fig 14), the cross-warehouse sweep (Fig 15), and the operation
// time-accounting tables (Tables 4–5). Each experiment prints the same
// rows/series the paper reports; absolute numbers differ from the paper's
// testbed, but the shapes are the reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"io"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/simnet"
)

// Scale sizes experiments. Quick keeps CI runs in seconds; Full is the
// default for reported numbers.
type Scale struct {
	Name         string
	Sites        int
	Clients      int
	Rounds       int // OLAP rounds per client in completion runs
	YCSBRows     int64
	CHOrders     int // loaded orders per district
	TwitterUsers int
	Duration     time.Duration // timed runs (adaptivity figures)
	Repeats      int           // runs per point for confidence intervals
}

// Quick is the smoke-test scale.
var Quick = Scale{
	Name: "quick", Sites: 2, Clients: 4, Rounds: 3,
	YCSBRows: 4000, CHOrders: 10, TwitterUsers: 300,
	Duration: 2 * time.Second, Repeats: 1,
}

// Full is the reporting scale.
var Full = Scale{
	Name: "full", Sites: 3, Clients: 9, Rounds: 8,
	YCSBRows: 30000, CHOrders: 40, TwitterUsers: 800,
	Duration: 10 * time.Second, Repeats: 3,
}

// Systems lists the evaluated architectures in the paper's order.
var Systems = []cluster.Mode{
	cluster.ModeProteus, cluster.ModeRowStore, cluster.ModeColumnStore,
	cluster.ModeJanus, cluster.ModeTiDB,
}

// Experiment is one registered reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, s Scale) error
}

// All registers every experiment, keyed by the paper artifact it
// regenerates.
var All = []Experiment{
	{"fig3", "Fig 3: row vs column format microbenchmark", Fig3},
	{"fig8a", "Fig 8a: YCSB workload completion time", Fig8a},
	{"fig8b", "Fig 8b: CH-benCHmark completion time", Fig8b},
	{"fig8c", "Fig 8c: CH latency vs throughput", Fig8c},
	{"fig8d", "Fig 8d: Twitter completion time", Fig8d},
	{"fig9", "Fig 9a-c,e-g: YCSB OLTP throughput and OLAP latency", Fig9},
	{"fig9-ablation", "Fig 9d,9h: ablation study", Fig9Ablation},
	{"fig10", "Fig 10: CH OLTP throughput and per-query OLAP latency", Fig10},
	{"fig11", "Fig 11: Twitter OLTP throughput and OLAP latency", Fig11},
	{"fig12a", "Fig 12a: scalability with data sites", Fig12a},
	{"fig12b", "Fig 12b: adaptivity over time (cold start)", Fig12b},
	{"fig12c", "Fig 12c: adaptivity with shifting skew (pre-trained)", Fig12c},
	{"fig13", "Fig 13: shifting workload mix over time", Fig13},
	{"fig14", "Fig 14: OLAP freshness gap", Fig14},
	{"fig15", "Fig 15: cross-warehouse transaction sweep", Fig15},
	{"tab4", "Table 4: time share per operation class", Tab4},
	{"tab5", "Table 5: planning and layout-change overheads", Tab5},
	{"scan", "Scan throughput: morsel executor vs legacy path (BENCH_scan.json)", ScanBench},
	{"oltp", "OLTP writes: group commit vs serial commit (BENCH_oltp.json)", OLTPBench},
	{"overload", "Overload: token-bucket admission vs AlwaysAdmit at 10x capacity (BENCH_overload.json)", OverloadBench},
	{"chbench", "CH-benCHmark matrix: batch join/group-by engine vs row engine (BENCH_chbench.json)", CHBench},
}

// Find locates an experiment by ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// engineFor builds an engine for one architecture at scale.
func engineFor(mode cluster.Mode, s Scale) *cluster.Engine {
	cfg := cluster.DefaultConfig()
	cfg.Mode = mode
	cfg.NumSites = s.Sites
	cfg.Net = simnet.Config{BaseLatency: 20 * time.Microsecond, BytesPerSecond: 1 << 30}
	cfg.ReplicationInterval = 2 * time.Millisecond
	cfg.MaintainInterval = 10 * time.Millisecond
	return cluster.New(cfg)
}

// header prints a section header.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// meanCI renders mean ± half-width.
func meanCI(mean, half float64, unit string) string {
	if half > 0 {
		return fmt.Sprintf("%.2f ± %.2f %s", mean, half, unit)
	}
	return fmt.Sprintf("%.2f %s", mean, unit)
}
