package experiments

import (
	"fmt"
	"io"
	"time"

	"proteus/internal/disksim"
	"proteus/internal/exec"
	"proteus/internal/partition"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Fig3 reproduces the microbenchmark of Figure 3: the average latency of
// 100 single-row updates and of scans over 10,000 rows reading 1 of 10
// columns at 10% and 100% selectivity, on row vs column storage. The
// expected shape: rows win updates (~2x), columns win scans (~7x).
func Fig3(w io.Writer, s Scale) error {
	const (
		rows    = 10000
		cols    = 10
		updates = 100
	)
	kinds := make([]types.Kind, cols)
	for i := range kinds {
		kinds[i] = types.KindInt64
	}
	f := partition.Factory{Dev: disksim.New(disksim.Config{})}
	bounds := partition.Bounds{Table: 0, RowStart: 0, RowEnd: rows, ColStart: 0, ColEnd: cols}

	data := make([]schema.Row, rows)
	for i := range data {
		vals := make([]types.Value, cols)
		for c := range vals {
			vals[c] = types.NewInt64(int64(i*cols + c))
		}
		data[i] = schema.Row{ID: schema.RowID(i), Vals: vals}
	}

	mk := func(l storage.Layout) *partition.Partition {
		p := partition.New(1, bounds, kinds, l, f)
		if err := p.Load(data, 1); err != nil {
			panic(err)
		}
		return p
	}

	layouts := map[string]storage.Layout{
		"row":    storage.DefaultRowLayout(),
		"column": storage.DefaultColumnLayout(),
	}

	header(w, "Fig 3a: average update latency (100 updates, all columns)")
	updLat := map[string]time.Duration{}
	for name, l := range layouts {
		p := mk(l)
		allCols := make([]schema.ColID, cols)
		vals := make([]types.Value, cols)
		for c := range allCols {
			allCols[c] = schema.ColID(c)
			vals[c] = types.NewInt64(int64(-c))
		}
		start := time.Now()
		for u := 0; u < updates; u++ {
			if _, err := exec.Update(p, schema.RowID(u%rows), allCols, vals, uint64(u+2)); err != nil {
				return err
			}
		}
		updLat[name] = time.Since(start) / updates
	}
	for _, name := range []string{"row", "column"} {
		fmt.Fprintf(w, "  %-7s %v\n", name, updLat[name])
	}
	fmt.Fprintf(w, "  shape check: row faster for updates = %v\n", updLat["row"] < updLat["column"])

	scan := func(p *partition.Partition, sel float64) time.Duration {
		pred := storage.Pred{{Col: 0, Op: storage.CmpLt,
			Val: types.NewInt64(int64(float64(rows*cols) * sel))}}
		if sel >= 1 {
			pred = nil
		}
		start := time.Now()
		const reps = 20
		for i := 0; i < reps; i++ {
			rel, _, _ := exec.Scan(p, []schema.ColID{1}, pred, storage.Latest)
			_ = rel
		}
		return time.Since(start) / reps
	}

	for _, sel := range []float64{0.1, 1.0} {
		header(w, fmt.Sprintf("Fig 3%s: scan of 10,000 rows, 1 of 10 columns, select=%d%%",
			map[float64]string{0.1: "b", 1.0: "c"}[sel], int(sel*100)))
		lat := map[string]time.Duration{}
		for name, l := range layouts {
			lat[name] = scan(mk(l), sel)
		}
		for _, name := range []string{"row", "column"} {
			fmt.Fprintf(w, "  %-7s %v\n", name, lat[name])
		}
		ratio := float64(lat["row"]) / float64(lat["column"])
		fmt.Fprintf(w, "  shape check: column speedup over row = %.1fx (paper: ~7x)\n", ratio)
	}
	return nil
}
