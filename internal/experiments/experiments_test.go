package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tiny is an even smaller scale than Quick so the whole registry can run
// in CI time.
var tiny = Scale{
	Name: "tiny", Sites: 2, Clients: 2, Rounds: 2,
	YCSBRows: 1500, CHOrders: 6, TwitterUsers: 150,
	Duration: 600 * time.Millisecond, Repeats: 1,
}

func TestFindAndRegistry(t *testing.T) {
	if len(All) != 21 {
		t.Errorf("registry has %d experiments", len(All))
	}
	seen := map[string]bool{}
	for _, e := range All {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := Find(e.ID); !ok {
			t.Errorf("Find(%s) failed", e.ID)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find of unknown id succeeded")
	}
}

func TestFig3ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "row faster for updates = true") {
		t.Errorf("update shape broken:\n%s", out)
	}
	if strings.Count(out, "column speedup") != 2 {
		t.Errorf("missing scan sections:\n%s", out)
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long; skipped with -short")
	}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			// Experiments that emit artifact files write into a scratch dir.
			t.Setenv("PROTEUS_SCAN_BENCH_PATH", filepath.Join(t.TempDir(), "BENCH_scan.json"))
			t.Setenv("PROTEUS_OLTP_BENCH_PATH", filepath.Join(t.TempDir(), "BENCH_oltp.json"))
			t.Setenv("PROTEUS_OVERLOAD_BENCH_PATH", filepath.Join(t.TempDir(), "BENCH_overload.json"))
			t.Setenv("PROTEUS_CHBENCH_PATH", filepath.Join(t.TempDir(), "BENCH_chbench.json"))
			var buf bytes.Buffer
			if err := e.Run(&buf, tiny); err != nil {
				t.Fatalf("%s: %v\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}
