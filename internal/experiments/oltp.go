package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/types"
)

// OLTPBench compares the group-commit write pipeline against the legacy
// inline append-and-install path on a multi-site single-row update
// workload, and writes a machine-readable report to BENCH_oltp.json
// (override the path with PROTEUS_OLTP_BENCH_PATH). Two phases per
// variant: a multi-client burst measuring committed-transaction throughput
// and allocations, then a single uncontended client measuring p50/p99
// commit latency — the pipeline must win the first without regressing the
// second (flushes are immediate by default, so an uncontended commit pays
// no coalescing wait).
func OLTPBench(w io.Writer, s Scale) error {
	header(w, "OLTP write pipeline: group commit vs serial commit")
	rows := s.YCSBRows
	clients := s.Clients * 2
	perClient := 400 * s.Repeats
	soloTxns := 1200 * s.Repeats

	serial, err := runOLTPVariant(s, rows, clients, perClient, soloTxns, true)
	if err != nil {
		return err
	}
	grouped, err := runOLTPVariant(s, rows, clients, perClient, soloTxns, false)
	if err != nil {
		return err
	}

	rep := oltpReport{
		Rows: rows, Partitions: oltpParts, Sites: s.Sites, Clients: clients,
		Workload: "two-row cross-partition update txns, uniform rows, per-client sessions",
		Serial:   serial, Grouped: grouped,
		Speedup: grouped.TxnsPerSec / serial.TxnsPerSec,
	}
	if grouped.AllocsPerOp > 0 {
		rep.AllocRatio = serial.AllocsPerOp / grouped.AllocsPerOp
	}

	path := os.Getenv("PROTEUS_OLTP_BENCH_PATH")
	if path == "" {
		path = "BENCH_oltp.json"
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(w, "table: %d rows, %d partitions, %d sites; %d clients x %d txns + %d solo txns\n",
		rows, oltpParts, s.Sites, clients, perClient, soloTxns)
	fmt.Fprintf(w, "serial:  %9.0f txn/s  solo p50 %6.0f us  p99 %6.0f us  %7.0f allocs/op\n",
		serial.TxnsPerSec, serial.SoloP50Micros, serial.SoloP99Micros, serial.AllocsPerOp)
	fmt.Fprintf(w, "grouped: %9.0f txn/s  solo p50 %6.0f us  p99 %6.0f us  %7.0f allocs/op  (%.1f txns/flush)\n",
		grouped.TxnsPerSec, grouped.SoloP50Micros, grouped.SoloP99Micros, grouped.AllocsPerOp, grouped.TxnsPerFlush)
	fmt.Fprintf(w, "speedup %.2fx, alloc ratio %.2fx -> %s\n", rep.Speedup, rep.AllocRatio, path)
	return nil
}

const oltpParts = 8

type oltpResult struct {
	TxnsPerSec    float64 `json:"txns_per_sec"`
	ElapsedMillis float64 `json:"elapsed_ms"`
	Txns          int     `json:"txns"`
	SoloP50Micros float64 `json:"solo_p50_us"`
	SoloP99Micros float64 `json:"solo_p99_us"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	TxnsPerFlush  float64 `json:"txns_per_flush"`
}

type oltpReport struct {
	Rows       int64      `json:"rows"`
	Partitions int        `json:"partitions"`
	Sites      int        `json:"sites"`
	Clients    int        `json:"clients"`
	Workload   string     `json:"workload"`
	Serial     oltpResult `json:"serial"`
	Grouped    oltpResult `json:"grouped"`
	Speedup    float64    `json:"speedup"`
	AllocRatio float64    `json:"alloc_ratio"`
}

// runOLTPVariant loads one engine and runs both measurement phases.
// ModeRowStore keeps the advisor out of the loop so the A/B isolates the
// commit pipeline; background intervals are slowed so the allocation delta
// reflects the transaction path.
func runOLTPVariant(s Scale, rows int64, clients, perClient, soloTxns int, disabled bool) (oltpResult, error) {
	cfg := cluster.DefaultConfig()
	cfg.Mode = cluster.ModeRowStore
	cfg.NumSites = s.Sites
	cfg.Net = simnet.Config{BaseLatency: 20 * time.Microsecond, BytesPerSecond: 1 << 30}
	cfg.ReplicationInterval = 5 * time.Millisecond
	cfg.MaintainInterval = 20 * time.Millisecond
	cfg.DisableGroupCommit = disabled
	e := cluster.New(cfg)
	defer e.Close()

	tbl, err := e.CreateTable(cluster.TableSpec{
		Name: "oltpbench",
		Cols: []schema.Column{
			{Name: "id", Kind: types.KindInt64},
			{Name: "grp", Kind: types.KindInt64},
			{Name: "val", Kind: types.KindFloat64},
		},
		MaxRows: schema.RowID(rows), Partitions: oltpParts,
	})
	if err != nil {
		return oltpResult{}, err
	}
	data := make([]schema.Row, 0, rows)
	for i := int64(0); i < rows; i++ {
		data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 10), types.NewFloat64(float64(i)),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, data); err != nil {
		return oltpResult{}, err
	}

	update := func(row int64, v float64) query.Op {
		return query.Op{Kind: query.OpUpdate, Table: tbl.ID, Row: schema.RowID(row),
			Cols: []schema.ColID{2}, Vals: []types.Value{types.NewFloat64(v)}}
	}
	// crossTxn writes one row in each of two distinct partitions, so with
	// partition masters spread over the sites roughly half the commits
	// carry a cross-site 2PC participant — the round trips the batched
	// pipeline amortizes and moves off the partition-lock window.
	stride := rows / oltpParts
	crossTxn := func(rng *rand.Rand, v float64) *query.Txn {
		pa := rng.Intn(oltpParts)
		pb := (pa + 1 + rng.Intn(oltpParts-1)) % oltpParts
		return &query.Txn{Ops: []query.Op{
			update(int64(pa)*stride+rng.Int63n(stride), v),
			update(int64(pb)*stride+rng.Int63n(stride), v),
		}}
	}
	ctx := context.Background()

	// Warm plans and locks with one client before measuring.
	warm := e.NewSession()
	wrng := rand.New(rand.NewSource(1))
	for i := 0; i < 32; i++ {
		if _, err := e.ExecuteTxn(ctx, warm, crossTxn(wrng, 0)); err != nil {
			return oltpResult{}, err
		}
	}

	// Phase 1: multi-client throughput. Clients pick uniform rows from
	// per-client seeded streams, so partitions (and their locks) are
	// shared across clients while write-write row conflicts stay rare.
	flushes0 := e.Obs.Counter("commit.flushes").Value()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*977 + 13))
			sess := e.NewSession()
			for i := 0; i < perClient; i++ {
				if _, err := e.ExecuteTxn(ctx, sess, crossTxn(rng, float64(i))); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	close(errCh)
	if err := <-errCh; err != nil {
		return oltpResult{}, err
	}
	txns := clients * perClient
	flushes := e.Obs.Counter("commit.flushes").Value() - flushes0

	// Phase 2: single uncontended client, commit latency distribution.
	var lat []time.Duration
	solo := e.NewSession()
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < soloTxns; i++ {
		t := crossTxn(rng, float64(i))
		ts := time.Now()
		if _, err := e.ExecuteTxn(ctx, solo, t); err != nil {
			return oltpResult{}, err
		}
		lat = append(lat, time.Since(ts))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

	res := oltpResult{
		TxnsPerSec:    float64(txns) / elapsed.Seconds(),
		ElapsedMillis: float64(elapsed) / float64(time.Millisecond),
		Txns:          txns,
		SoloP50Micros: float64(lat[len(lat)/2]) / float64(time.Microsecond),
		SoloP99Micros: float64(lat[len(lat)*99/100]) / float64(time.Microsecond),
		AllocsPerOp:   float64(m1.Mallocs-m0.Mallocs) / float64(txns),
	}
	if flushes > 0 {
		res.TxnsPerFlush = float64(txns) / float64(flushes)
	}
	return res, nil
}
