package txn

import (
	"errors"
	"fmt"
	"sync"
)

// Participant is one site's interface to distributed commit. The transport
// layer adapts these calls onto network messages; Proteus coordinates
// distributed updates with two-phase commit when a transaction writes
// partitions mastered at multiple sites (§4.3).
type Participant interface {
	// Prepare durably stages the transaction's writes at the site and
	// votes. A nil error is a yes-vote.
	Prepare(txnID uint64) error
	// Commit makes the staged writes visible. Called only after every
	// participant voted yes.
	Commit(txnID uint64) error
	// Abort discards staged writes.
	Abort(txnID uint64) error
}

// ErrAborted reports that two-phase commit rolled the transaction back.
var ErrAborted = errors.New("txn: transaction aborted")

// Coordinator drives two-phase commit over a set of participants.
type Coordinator struct {
	// OnePhase skips the prepare round for single-participant commits.
	OnePhase bool
}

// Commit runs the protocol, contacting participants in parallel within
// each phase (the coordinator broadcasts prepares and commits). If any
// participant fails prepare, every participant aborts and ErrAborted
// (wrapping the first vote error) is returned.
func (c *Coordinator) Commit(txnID uint64, parts []Participant) error {
	if len(parts) == 0 {
		return nil
	}
	if c.OnePhase && len(parts) == 1 {
		return parts[0].Commit(txnID)
	}
	broadcast := func(f func(Participant) error) []error {
		errs := make([]error, len(parts))
		var wg sync.WaitGroup
		for i, p := range parts {
			i, p := i, p
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[i] = f(p)
			}()
		}
		wg.Wait()
		return errs
	}
	// Phase 1: prepare.
	votes := broadcast(func(p Participant) error { return p.Prepare(txnID) })
	for i, err := range votes {
		if err != nil {
			broadcast(func(p Participant) error { return p.Abort(txnID) })
			return fmt.Errorf("%w: participant %d voted no: %v", ErrAborted, i, err)
		}
	}
	// Phase 2: commit. Votes are in; failures here are reported but the
	// decision is commit (participants recover forward from their logs).
	for i, err := range broadcast(func(p Participant) error { return p.Commit(txnID) }) {
		if err != nil {
			return fmt.Errorf("txn: participant %d commit: %w", i, err)
		}
	}
	return nil
}
