// Package txn implements Proteus' partition-based concurrency control
// (§4.2 of the paper): shared/exclusive partition locks with contention
// tracking, per-partition version vectors with dependency tracking that
// yield snapshot isolation, session watermarks that strengthen SI to
// strong session snapshot isolation (SSSI), and a two-phase commit
// coordinator for distributed updates.
package txn

import (
	"sort"
	"sync"
	"time"

	"proteus/internal/partition"
)

// LockMode distinguishes shared (read) from exclusive (write) locks.
type LockMode uint8

const (
	// Shared locks admit concurrent readers.
	Shared LockMode = iota
	// Exclusive locks admit a single writer.
	Exclusive
)

// plock is one partition's lock state: a counting reader/writer lock built
// on a condition variable so waiters and wait durations can be observed
// (the "lock acquisition" cost function's contention argument, Table 1).
type plock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	readers int
	writer  bool

	waiters    int
	acquires   int64
	totalWait  time.Duration
	waitSample time.Duration // exponentially decayed recent wait
}

func newPLock() *plock {
	l := &plock{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *plock) lock(mode LockMode) time.Duration {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waiters++
	for {
		if mode == Shared && !l.writer {
			l.readers++
			break
		}
		if mode == Exclusive && !l.writer && l.readers == 0 {
			l.writer = true
			break
		}
		l.cond.Wait()
	}
	l.waiters--
	w := time.Since(start)
	l.acquires++
	l.totalWait += w
	l.waitSample = (l.waitSample*7 + w) / 8
	return w
}

func (l *plock) unlock(mode LockMode) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if mode == Shared {
		l.readers--
	} else {
		l.writer = false
	}
	l.cond.Broadcast()
}

// contention reports the decayed recent wait plus current queue length.
func (l *plock) contention() (waiters int, recentWait time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiters, l.waitSample
}

// LockManager owns partition locks for one data site.
type LockManager struct {
	mu    sync.Mutex
	locks map[partition.ID]*plock
}

// NewLockManager creates an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{locks: make(map[partition.ID]*plock)}
}

func (m *LockManager) lockFor(pid partition.ID) *plock {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.locks[pid]
	if !ok {
		l = newPLock()
		m.locks[pid] = l
	}
	return l
}

// Acquire locks one partition and returns the wait time.
func (m *LockManager) Acquire(pid partition.ID, mode LockMode) time.Duration {
	return m.lockFor(pid).lock(mode)
}

// Release unlocks one partition.
func (m *LockManager) Release(pid partition.ID, mode LockMode) {
	m.lockFor(pid).unlock(mode)
}

// LockSet is one transaction's held locks.
type LockSet struct {
	m     *LockManager
	pids  []partition.ID
	modes []LockMode
	// Wait is the total time spent waiting for the set.
	Wait time.Duration
}

// AcquireAll locks the requested partitions in global partition.ID order —
// the standard total-order discipline that makes deadlock impossible.
// Duplicate ids are coalesced, keeping the strongest requested mode.
func (m *LockManager) AcquireAll(reads, writes []partition.ID) *LockSet {
	mode := make(map[partition.ID]LockMode, len(reads)+len(writes))
	for _, p := range reads {
		if _, ok := mode[p]; !ok {
			mode[p] = Shared
		}
	}
	for _, p := range writes {
		mode[p] = Exclusive
	}
	order := make([]partition.ID, 0, len(mode))
	for p := range mode {
		order = append(order, p)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	ls := &LockSet{m: m}
	for _, p := range order {
		ls.Wait += m.Acquire(p, mode[p])
		ls.pids = append(ls.pids, p)
		ls.modes = append(ls.modes, mode[p])
	}
	return ls
}

// ReleaseAll unlocks every held lock.
func (ls *LockSet) ReleaseAll() {
	for i := len(ls.pids) - 1; i >= 0; i-- {
		ls.m.Release(ls.pids[i], ls.modes[i])
	}
	ls.pids, ls.modes = nil, nil
}

// Contention reports the current contention signal for one partition.
func (m *LockManager) Contention(pid partition.ID) (waiters int, recentWait time.Duration) {
	return m.lockFor(pid).contention()
}
