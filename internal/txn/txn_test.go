package txn

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proteus/internal/partition"
)

func TestLockSharedConcurrent(t *testing.T) {
	m := NewLockManager()
	var wg sync.WaitGroup
	var held int32
	var maxHeld int32
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Acquire(1, Shared)
			h := atomic.AddInt32(&held, 1)
			for {
				cur := atomic.LoadInt32(&maxHeld)
				if h <= cur || atomic.CompareAndSwapInt32(&maxHeld, cur, h) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt32(&held, -1)
			m.Release(1, Shared)
		}()
	}
	wg.Wait()
	if maxHeld < 2 {
		t.Errorf("shared locks never overlapped (max %d)", maxHeld)
	}
}

func TestLockExclusiveExcludes(t *testing.T) {
	m := NewLockManager()
	var inside int32
	var violations int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				m.Acquire(7, Exclusive)
				if atomic.AddInt32(&inside, 1) != 1 {
					atomic.AddInt32(&violations, 1)
				}
				atomic.AddInt32(&inside, -1)
				m.Release(7, Exclusive)
			}
		}()
	}
	wg.Wait()
	if violations != 0 {
		t.Errorf("%d mutual-exclusion violations", violations)
	}
}

func TestAcquireAllOrderedNoDeadlock(t *testing.T) {
	m := NewLockManager()
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		// Conflicting lock sets in opposite declaration order; ordered
		// acquisition must prevent deadlock.
		for i := 0; i < 20; i++ {
			wg.Add(2)
			go func() {
				defer wg.Done()
				ls := m.AcquireAll([]partition.ID{3}, []partition.ID{1, 2})
				time.Sleep(100 * time.Microsecond)
				ls.ReleaseAll()
			}()
			go func() {
				defer wg.Done()
				ls := m.AcquireAll([]partition.ID{1}, []partition.ID{2, 3})
				time.Sleep(100 * time.Microsecond)
				ls.ReleaseAll()
			}()
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: AcquireAll did not finish")
	}
}

func TestAcquireAllUpgradesDuplicates(t *testing.T) {
	m := NewLockManager()
	// Partition 5 appears as both read and write: must take Exclusive once.
	ls := m.AcquireAll([]partition.ID{5}, []partition.ID{5})
	acquired := make(chan struct{})
	go func() {
		m.Acquire(5, Shared)
		m.Release(5, Shared)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("shared lock granted while exclusive held")
	case <-time.After(20 * time.Millisecond):
	}
	ls.ReleaseAll()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("shared lock never granted after release")
	}
}

func TestContentionSignal(t *testing.T) {
	m := NewLockManager()
	m.Acquire(9, Exclusive)
	go m.Acquire(9, Exclusive) // will queue
	time.Sleep(10 * time.Millisecond)
	waiters, _ := m.Contention(9)
	if waiters != 1 {
		t.Errorf("waiters = %d, want 1", waiters)
	}
	m.Release(9, Exclusive)
}

func TestVersionVectorMergeMax(t *testing.T) {
	a := VersionVector{1: 5, 2: 3}
	b := VersionVector{2: 7, 3: 1}
	a.MergeMax(b)
	if a[1] != 5 || a[2] != 7 || a[3] != 1 {
		t.Errorf("merged = %v", a)
	}
	c := a.Clone()
	c[1] = 99
	if a[1] != 5 {
		t.Error("clone aliases")
	}
}

func TestDependencyClosure(t *testing.T) {
	d := NewDependencyTracker()
	// Txn A wrote P1@5 and P2@9 together.
	d.RecordCommit(VersionVector{1: 5, 2: 9})
	// Txn B wrote P2@10 and P3@2 together.
	d.RecordCommit(VersionVector{2: 10, 3: 2})

	// Reader of P1@5 tracking P2 must raise P2 to 9.
	snap := d.Close(VersionVector{1: 5, 2: 3})
	if snap[2] != 9 {
		t.Errorf("snap[2] = %d, want 9", snap[2])
	}
	// Transitive: P1@5 -> P2@9; if also tracking P3 and P2 >= 10 applies...
	snap = d.Close(VersionVector{1: 5, 2: 10, 3: 0})
	if snap[3] != 2 {
		t.Errorf("snap[3] = %d, want 2", snap[3])
	}
	// Versions above the snapshot's chosen version do not force raises.
	snap = d.Close(VersionVector{1: 4, 2: 0})
	if snap[2] != 0 {
		t.Errorf("snap[2] = %d, want 0 (dep at v5 > 4)", snap[2])
	}
}

func TestDependencyForget(t *testing.T) {
	d := NewDependencyTracker()
	d.RecordCommit(VersionVector{1: 5, 2: 9})
	d.Forget(VersionVector{1: 5, 2: 9})
	snap := d.Close(VersionVector{1: 5, 2: 0})
	if snap[2] != 0 {
		t.Errorf("forgotten dependency applied: %v", snap)
	}
}

func TestSingleCommitNoDeps(t *testing.T) {
	d := NewDependencyTracker()
	d.RecordCommit(VersionVector{1: 5})
	snap := d.Close(VersionVector{1: 5, 2: 0})
	if snap[2] != 0 {
		t.Errorf("single-partition commit created deps: %v", snap)
	}
}

func TestSessionWatermark(t *testing.T) {
	s := NewSession()
	s.Observe(VersionVector{1: 3})
	s.Observe(VersionVector{1: 2, 2: 4}) // 1 must not regress
	w := s.Watermark()
	if w[1] != 3 || w[2] != 4 {
		t.Errorf("watermark = %v", w)
	}
}

type fakeParticipant struct {
	prepareErr error
	prepared   int
	committed  int
	aborted    int
}

func (f *fakeParticipant) Prepare(uint64) error { f.prepared++; return f.prepareErr }
func (f *fakeParticipant) Commit(uint64) error  { f.committed++; return nil }
func (f *fakeParticipant) Abort(uint64) error   { f.aborted++; return nil }

func TestTwoPCCommit(t *testing.T) {
	a, b := &fakeParticipant{}, &fakeParticipant{}
	c := &Coordinator{}
	if err := c.Commit(1, []Participant{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.prepared != 1 || b.prepared != 1 || a.committed != 1 || b.committed != 1 {
		t.Errorf("states: %+v %+v", a, b)
	}
}

func TestTwoPCAbortOnNoVote(t *testing.T) {
	a := &fakeParticipant{}
	b := &fakeParticipant{prepareErr: errors.New("conflict")}
	c := &Coordinator{}
	err := c.Commit(2, []Participant{a, b})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if a.committed != 0 || b.committed != 0 {
		t.Error("committed despite abort")
	}
	if a.aborted != 1 || b.aborted != 1 {
		t.Errorf("aborts: %d %d", a.aborted, b.aborted)
	}
}

func TestTwoPCOnePhaseFastPath(t *testing.T) {
	a := &fakeParticipant{}
	c := &Coordinator{OnePhase: true}
	if err := c.Commit(3, []Participant{a}); err != nil {
		t.Fatal(err)
	}
	if a.prepared != 0 || a.committed != 1 {
		t.Errorf("one-phase: %+v", a)
	}
}

func TestTwoPCEmpty(t *testing.T) {
	c := &Coordinator{}
	if err := c.Commit(4, nil); err != nil {
		t.Fatal(err)
	}
}
