package txn

import (
	"sync"

	"proteus/internal/partition"
)

// VersionVector maps partitions to versions. As a snapshot it gives, per
// partition, the newest version a read may observe; as a watermark it gives
// the oldest version a read must observe.
type VersionVector map[partition.ID]uint64

// Clone deep-copies the vector.
func (v VersionVector) Clone() VersionVector {
	out := make(VersionVector, len(v))
	for k, ver := range v {
		out[k] = ver
	}
	return out
}

// MergeMax raises each entry to at least the other vector's version.
func (v VersionVector) MergeMax(o VersionVector) {
	for k, ver := range o {
		if v[k] < ver {
			v[k] = ver
		}
	}
}

// DependencyTracker records, for each committed partition version, the
// versions of partitions co-written by the same transaction (§4.2: "the
// dependencies among partitions and their versions"). Snapshot construction
// closes over these dependencies so a transaction that observes P@v also
// observes every co-committed write, yielding a consistent SI snapshot
// without a global timestamp.
type DependencyTracker struct {
	mu   sync.RWMutex
	deps map[partition.ID]map[uint64]VersionVector
}

// NewDependencyTracker creates an empty tracker.
func NewDependencyTracker() *DependencyTracker {
	return &DependencyTracker{deps: make(map[partition.ID]map[uint64]VersionVector)}
}

// RecordCommit notes that one transaction installed the given partition
// versions together. Single-partition commits carry no dependencies.
func (d *DependencyTracker) RecordCommit(installed VersionVector) {
	if len(installed) < 2 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for pid, ver := range installed {
		byVer, ok := d.deps[pid]
		if !ok {
			byVer = make(map[uint64]VersionVector)
			d.deps[pid] = byVer
		}
		rest := make(VersionVector, len(installed)-1)
		for q, w := range installed {
			if q != pid {
				rest[q] = w
			}
		}
		byVer[ver] = rest
	}
}

// Close raises the snapshot to include every dependency of the versions it
// already contains, iterating to a fixpoint. Only dependencies at or below
// the snapshot's chosen version for a partition apply (observing P@v means
// observing all commits to P up to v, each with its own dependencies).
func (d *DependencyTracker) Close(snap VersionVector) VersionVector {
	d.mu.RLock()
	defer d.mu.RUnlock()
	changed := true
	for changed {
		changed = false
		for pid, ver := range snap {
			byVer, ok := d.deps[pid]
			if !ok {
				continue
			}
			for v, rest := range byVer {
				if v > ver {
					continue
				}
				for q, w := range rest {
					if cur, tracked := snap[q]; tracked && cur < w {
						snap[q] = w
						changed = true
					}
				}
			}
		}
	}
	return snap
}

// Forget discards dependency records at or below the given version per
// partition (safe once no active snapshot can begin below them).
func (d *DependencyTracker) Forget(watermark VersionVector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for pid, ver := range watermark {
		byVer, ok := d.deps[pid]
		if !ok {
			continue
		}
		for v := range byVer {
			if v <= ver {
				delete(byVer, v)
			}
		}
		if len(byVer) == 0 {
			delete(d.deps, pid)
		}
	}
}

// Session carries one client's watermark for strong session snapshot
// isolation (§4.2): every transaction in the session must observe at least
// the versions its previous transactions read or wrote, preventing
// transaction inversion.
type Session struct {
	mu        sync.Mutex
	watermark VersionVector
}

// NewSession creates a fresh session.
func NewSession() *Session {
	return &Session{watermark: make(VersionVector)}
}

// Watermark returns a copy of the session's required versions.
func (s *Session) Watermark() VersionVector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark.Clone()
}

// Observe raises the watermark with versions the session just read or wrote.
func (s *Session) Observe(v VersionVector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watermark.MergeMax(v)
}
