// Package query models Proteus' logical requests: OLTP transactions as
// lists of keyed operations, and OLAP queries as query trees (§4.3,
// Figure 7a). The ASA turns these into physical execution plans; the
// sqlparse package produces them from SQL text; workloads construct them
// directly. Clients supply their read/write sets up front (primary keys
// and accessed columns), as §4.2 describes.
package query

import (
	"fmt"
	"strings"

	"proteus/internal/exec"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// OpKind is the kind of one OLTP operation.
type OpKind uint8

// OLTP operation kinds.
const (
	OpRead OpKind = iota
	OpInsert
	OpUpdate
	OpDelete
)

// Op is one keyed operation within an OLTP transaction.
type Op struct {
	Kind  OpKind
	Table schema.TableID
	Row   schema.RowID
	// Cols are the accessed columns: the projection for reads, the written
	// columns for updates. Inserts cover every column and leave Cols nil.
	Cols []schema.ColID
	Vals []types.Value
}

// Txn is an OLTP transaction: a list of operations executed atomically
// under snapshot isolation.
type Txn struct {
	Ops []Op
}

// ReadSet returns the (table, row) pairs the transaction reads.
func (t *Txn) ReadSet() []Op {
	var out []Op
	for _, op := range t.Ops {
		if op.Kind == OpRead {
			out = append(out, op)
		}
	}
	return out
}

// WriteSet returns the mutating operations.
func (t *Txn) WriteSet() []Op {
	var out []Op
	for _, op := range t.Ops {
		if op.Kind != OpRead {
			out = append(out, op)
		}
	}
	return out
}

// Node is a node of a logical query tree.
type Node interface {
	// Tables reports every table the subtree touches.
	Tables() []schema.TableID
	// String renders the subtree.
	String() string
}

// ScanNode is a leaf: read cols of a table where pred holds. Pred columns
// are table-global ColIDs.
type ScanNode struct {
	Table schema.TableID
	Cols  []schema.ColID
	Pred  storage.Pred
}

// Tables implements Node.
func (s *ScanNode) Tables() []schema.TableID { return []schema.TableID{s.Table} }

// String implements Node.
func (s *ScanNode) String() string {
	return fmt.Sprintf("Scan(t%d cols=%v preds=%d)", s.Table, s.Cols, len(s.Pred))
}

// JoinNode is an inner equi-join of two subtrees. The key columns are
// positions into each side's output column list.
type JoinNode struct {
	Left, Right Node
	LeftKeyCol  int
	RightKeyCol int
}

// Tables implements Node.
func (j *JoinNode) Tables() []schema.TableID {
	return append(j.Left.Tables(), j.Right.Tables()...)
}

// String implements Node.
func (j *JoinNode) String() string {
	return fmt.Sprintf("Join(%s ⋈[%d=%d] %s)", j.Left, j.LeftKeyCol, j.RightKeyCol, j.Right)
}

// AggNode aggregates its child's output. GroupBy and the agg columns are
// positions into the child's output columns.
type AggNode struct {
	Child   Node
	GroupBy []int
	Aggs    []exec.AggSpec
}

// Tables implements Node.
func (a *AggNode) Tables() []schema.TableID { return a.Child.Tables() }

// String implements Node.
func (a *AggNode) String() string {
	specs := make([]string, len(a.Aggs))
	for i, sp := range a.Aggs {
		specs[i] = sp.Func.String()
	}
	return fmt.Sprintf("Agg(%s by=%v aggs=%s)", a.Child, a.GroupBy, strings.Join(specs, ","))
}

// Query is an OLAP request: a query tree plus result modifiers.
type Query struct {
	Root Node
	// Limit caps the number of result rows (0 = unlimited). The executor
	// terminates early — closing the morsel feed — once Limit rows exist.
	Limit int
}

// Build returns the query itself, letting *Query satisfy builder-style
// interfaces in client packages.
func (q *Query) Build() *Query { return q }

// Request is either an OLTP transaction or an OLAP query.
type Request struct {
	Txn   *Txn
	Query *Query
}

// IsOLTP reports whether the request is a transaction.
func (r Request) IsOLTP() bool { return r.Txn != nil }
