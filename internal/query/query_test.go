package query

import (
	"strings"
	"testing"

	"proteus/internal/exec"
	"proteus/internal/schema"
	"proteus/internal/types"
)

func TestTxnReadWriteSets(t *testing.T) {
	txn := &Txn{Ops: []Op{
		{Kind: OpRead, Table: 1, Row: 1},
		{Kind: OpUpdate, Table: 1, Row: 1, Cols: []schema.ColID{0}, Vals: []types.Value{types.NewInt64(1)}},
		{Kind: OpInsert, Table: 2, Row: 9},
		{Kind: OpDelete, Table: 2, Row: 10},
	}}
	if len(txn.ReadSet()) != 1 {
		t.Errorf("reads = %d", len(txn.ReadSet()))
	}
	if len(txn.WriteSet()) != 3 {
		t.Errorf("writes = %d", len(txn.WriteSet()))
	}
}

func TestNodeTablesAndStrings(t *testing.T) {
	scan := &ScanNode{Table: 3, Cols: []schema.ColID{0, 1}}
	join := &JoinNode{Left: scan, Right: &ScanNode{Table: 4}, LeftKeyCol: 0, RightKeyCol: 0}
	agg := &AggNode{Child: join, GroupBy: []int{0}, Aggs: []exec.AggSpec{{Func: exec.AggSum, Col: 1}}}

	tables := agg.Tables()
	if len(tables) != 2 || tables[0] != 3 || tables[1] != 4 {
		t.Errorf("tables = %v", tables)
	}
	s := agg.String()
	if !strings.Contains(s, "Agg(") || !strings.Contains(s, "Join(") || !strings.Contains(s, "Scan(t3") {
		t.Errorf("string = %s", s)
	}
}

func TestRequestKind(t *testing.T) {
	if !(Request{Txn: &Txn{}}).IsOLTP() {
		t.Error("txn request not OLTP")
	}
	if (Request{Query: &Query{}}).IsOLTP() {
		t.Error("query request marked OLTP")
	}
}
