package cluster

import (
	"sort"
	"sync"
	"time"

	"proteus/internal/obs"
	"proteus/internal/partition"
	"proteus/internal/redolog"
	"proteus/internal/simnet"
)

// defaultFlushBatch bounds how many commit groups one flush cycle drains
// when Config.GroupCommitMaxBatch is unset.
const defaultFlushBatch = 256

// versionInstall is one deferred SetVersion the flusher performs after the
// batched append makes the record durable.
type versionInstall struct {
	p   *partition.Partition
	ver uint64
}

// flushGroup is one transaction's contribution to one master site's flush:
// the redo records for every partition the transaction wrote at that site,
// the deferred version installs, and the channel the commit waiter blocks
// on. done is buffered by the enqueuer so the flusher never blocks
// signalling completion.
//
// A group is enqueued only while the transaction holds the exclusive lock
// of every partition it touches, and the 2PC decision has already been
// made by then — so a group, once enqueued, always flushes. Crash
// failover, recovery and layout changes all take the same partition locks
// and barrier the queue first, which is what keeps a flushed record on the
// surviving log lineage: no code path can rebuild or re-master a partition
// between a transaction's staging and its append.
type flushGroup struct {
	coord    simnet.SiteID
	recs     []redolog.Record
	installs []versionInstall
	done     chan<- struct{}
}

// siteQueue is one master site's commit queue. enq/done count groups ever
// enqueued and ever flushed; barrier waits close the gap, which is
// airtight because groups are only enqueued under the partition locks the
// barrier's caller holds.
type siteQueue struct {
	site    simnet.SiteID
	mu      sync.Mutex
	cond    *sync.Cond
	pending []flushGroup
	enq     uint64
	done    uint64
	kickAt  uint64 // flush without lingering until done reaches this
	closed  bool
}

// groupCommit runs the batched commit pipeline: per-master-site queues
// coalesce concurrent transactions' redo records, and one flusher per site
// appends them with a single Broker.AppendBatch and installs the reserved
// versions, off the partition-lock critical path.
type groupCommit struct {
	e        *Engine
	maxBatch int
	interval time.Duration
	queues   []*siteQueue
	wg       sync.WaitGroup

	recGroupSize *obs.Recorder // transactions coalesced per flush
	cntFlushes   *obs.Counter
	cntRecords   *obs.Counter // redo records flushed
}

func newGroupCommit(e *Engine) *groupCommit {
	g := &groupCommit{
		e:            e,
		maxBatch:     e.cfg.GroupCommitMaxBatch,
		interval:     e.cfg.GroupCommitInterval,
		recGroupSize: e.Obs.Recorder("commit.groupsize", 1<<10),
		cntFlushes:   e.Obs.Counter("commit.flushes"),
		cntRecords:   e.Obs.Counter("commit.flushed_records"),
	}
	if g.maxBatch <= 0 {
		g.maxBatch = defaultFlushBatch
	}
	for i := 0; i < len(e.Sites); i++ {
		q := &siteQueue{site: simnet.SiteID(i)}
		q.cond = sync.NewCond(&q.mu)
		g.queues = append(g.queues, q)
	}
	for _, q := range g.queues {
		g.wg.Add(1)
		go g.run(q)
	}
	return g
}

// enqueue hands one site's flush group to its flusher. The caller must
// hold the exclusive lock of every partition in the group and have passed
// the 2PC commit point: the group will be flushed unconditionally.
func (g *groupCommit) enqueue(site simnet.SiteID, fg flushGroup) {
	q := g.queues[site]
	q.mu.Lock()
	if q.closed {
		// Shutdown: wait out the draining flusher first, so this group's
		// records cannot pass an earlier pending group's for the same
		// partition in the log, then flush inline (counted=false: this
		// group was never enqueued, so it must not advance done).
		for q.done < q.enq {
			q.cond.Wait()
		}
		q.mu.Unlock()
		g.flush(q, []flushGroup{fg}, false)
		return
	}
	q.pending = append(q.pending, fg)
	q.enq++
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth reports how many commit groups are queued at the site, feeding
// the admission controller's ClusterState snapshot. The pending slice
// itself cannot be bounded — groups are enqueued under partition locks
// past the 2PC commit point and must always flush — so backpressure is
// applied upstream: admission sheds new writes when this depth exceeds
// the configured backlog bound.
func (g *groupCommit) depth(site simnet.SiteID) int {
	q := g.queues[site]
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// barrier waits until every group enqueued to the site before the call has
// been flushed. Callers hold the exclusive (or shared, for read-only
// captures) lock of the partition(s) they are about to act on, so no new
// group covering them can slip in behind the barrier; afterwards the
// partition's installed version, its store contents and the broker's end
// offset are mutually consistent. Failover uses it to drain a crashed
// site's queued commits into the log before promoting a replica.
func (g *groupCommit) barrier(site simnet.SiteID) {
	q := g.queues[site]
	q.mu.Lock()
	target := q.enq
	if q.kickAt < target {
		q.kickAt = target
	}
	q.cond.Broadcast()
	for q.done < target {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// close drains every queue and stops the flushers. Groups enqueued after
// close are flushed inline by the enqueuer.
func (g *groupCommit) close() {
	for _, q := range g.queues {
		q.mu.Lock()
		q.closed = true
		q.cond.Broadcast()
		q.mu.Unlock()
	}
	g.wg.Wait()
}

// run is one site's flusher loop.
func (g *groupCommit) run(q *siteQueue) {
	defer g.wg.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pending) == 0 {
			q.mu.Unlock()
			return // closed and drained
		}
		// Optional coalescing window: with a configured interval the
		// flusher lingers for more arrivals; by default it drains whatever
		// is pending immediately, so batching emerges only under
		// concurrent load and an uncontended commit pays no added latency.
		if g.interval > 0 && q.kickAt <= q.done && !q.closed && len(q.pending) < g.maxBatch {
			// Timer-driven linger: sleep on the cond until an arrival,
			// barrier kick, close or the window timer wakes us — no
			// quarter-interval polling. Every state change Broadcasts, and
			// the timer callback flips expired under the queue lock.
			expired := false
			tm := g.e.clk.AfterFunc(g.interval, func() {
				q.mu.Lock()
				expired = true
				q.cond.Broadcast()
				q.mu.Unlock()
			})
			for !expired && q.kickAt <= q.done && !q.closed && len(q.pending) < g.maxBatch {
				q.cond.Wait()
			}
			tm.Stop()
		}
		batch := q.pending
		if len(batch) > g.maxBatch {
			batch = batch[:g.maxBatch:g.maxBatch]
			q.pending = append([]flushGroup(nil), q.pending[g.maxBatch:]...)
		} else {
			q.pending = nil
		}
		q.mu.Unlock()

		g.flush(q, batch, true)
	}
}

// flush makes one batch of commit groups durable: a single batched broker
// append, then the deferred version installs in enqueue order, then the
// waiter signals. The append must precede the installs — a replica
// CatchUp triggered by an installed version polls the broker for the
// record, so installing first would stall it until the poll deadline.
// counted marks batches drained from the queue by the flusher, whose
// groups advance q.done (inline post-close flushes were never enqueued).
func (g *groupCommit) flush(q *siteQueue, batch []flushGroup, counted bool) {
	if len(batch) == 0 {
		return
	}
	n := 0
	for _, fg := range batch {
		n += len(fg.recs)
	}
	recs := make([]redolog.Record, 0, n)
	for _, fg := range batch {
		recs = append(recs, fg.recs...)
	}
	// Stable sort so each topic is locked once per flush while records of
	// one partition keep their enqueue (version) order.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Partition < recs[j].Partition })
	g.e.Broker.AppendBatch(recs)
	for _, fg := range batch {
		for _, in := range fg.installs {
			in.p.SetVersion(in.ver)
		}
	}
	// The barrier's contract — log, store contents and installed versions
	// mutually consistent — holds here, so release barrier waiters before
	// the decision-ack round trips below: those model client-visible
	// latency only, and a checkpoint or failover holding partition locks
	// must not stall behind them.
	if counted {
		q.mu.Lock()
		q.done += uint64(len(batch))
		q.cond.Broadcast()
		q.mu.Unlock()
	}
	// The 2PC commit-decision round trips to remote coordinators ride on
	// the flush: one batched ack per distinct coordinator instead of one
	// per transaction. Past the commit point faults are absorbed (Charge).
	var acked []simnet.SiteID
	for _, fg := range batch {
		if fg.coord != q.site {
			seen := false
			for _, c := range acked {
				if c == fg.coord {
					seen = true
					break
				}
			}
			if !seen {
				acked = append(acked, fg.coord)
				g.e.Net.Charge(fg.coord, q.site, 128)
				g.e.Net.Charge(q.site, fg.coord, 32)
			}
		}
		fg.done <- struct{}{}
	}
	g.cntFlushes.Inc()
	g.cntRecords.Add(int64(len(recs)))
	g.recGroupSize.Record(time.Duration(len(batch))) // count, not ns
}
