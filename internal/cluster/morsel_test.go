package cluster

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// newMorselEngine builds an engine whose table's MaxRows equals the loaded
// row count, so the horizontal partitions tile the data evenly (the shared
// newTestEngine fixture leaves most partitions empty, which defeats
// multi-partition coverage). mutate tweaks the config before New.
func newMorselEngine(t *testing.T, mode Mode, sites, parts int, rows int64, mutate func(*Config)) (*Engine, *schema.Table) {
	t.Helper()
	cfg := fastConfig(mode, sites)
	if mutate != nil {
		mutate(&cfg)
	}
	e := New(cfg)
	t.Cleanup(e.Close)
	tbl, err := e.CreateTable(TableSpec{
		Name: "items", Cols: testCols, MaxRows: schema.RowID(rows), Partitions: parts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadRows(context.Background(), tbl.ID, testRows(rows)); err != nil {
		t.Fatal(err)
	}
	return e, tbl
}

func testRows(rows int64) []schema.Row {
	data := make([]schema.Row, 0, rows)
	for i := int64(0); i < rows; i++ {
		data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 10), types.NewFloat64(float64(i)), types.NewString("x"),
		}})
	}
	return data
}

// sortTuples orders a relation's tuples lexicographically so results from
// differently-ordered executions compare positionally.
func sortTuples(rel exec.Rel) {
	sort.Slice(rel.Tuples, func(i, j int) bool {
		a, b := rel.Tuples[i], rel.Tuples[j]
		for k := range a {
			if c := types.Compare(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// sameRels compares two sorted relations, exactly for ints and strings and
// within a relative tolerance for floats (partial-aggregate merge order
// differs between the executors, so float sums differ in the last ulps).
func sameRels(t *testing.T, name string, got, want exec.Rel) {
	t.Helper()
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("%s: %d rows, want %d", name, len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		if len(got.Tuples[i]) != len(want.Tuples[i]) {
			t.Fatalf("%s row %d: width %d, want %d", name, i, len(got.Tuples[i]), len(want.Tuples[i]))
		}
		for k := range want.Tuples[i] {
			g, w := got.Tuples[i][k], want.Tuples[i][k]
			if g.K == types.KindFloat64 && w.K == types.KindFloat64 {
				if d := math.Abs(g.Float() - w.Float()); d > 1e-6*math.Max(1, math.Abs(w.Float())) {
					t.Fatalf("%s row %d col %d: %v, want %v", name, i, k, g, w)
				}
				continue
			}
			if types.Compare(g, w) != 0 {
				t.Fatalf("%s row %d col %d: %v, want %v", name, i, k, g, w)
			}
		}
	}
}

// TestMorselMatchesLegacy cross-checks the morsel executor against the
// legacy per-segment path on identical engines: randomized scans,
// every aggregate, grouped aggregation, a join and a LIMIT, over both the
// row and the column layout.
func TestMorselMatchesLegacy(t *testing.T) {
	for _, mode := range []Mode{ModeRowStore, ModeColumnStore} {
		t.Run(mode.String(), func(t *testing.T) {
			const rows = 3000
			morsel, tbl := newMorselEngine(t, mode, 2, 4, rows, func(c *Config) {
				c.MorselRows = 128
				c.ScanBatchRows = 256
			})
			legacy, ltbl := newMorselEngine(t, mode, 2, 4, rows, func(c *Config) {
				c.DisableMorselExec = true
			})
			if tbl.ID != ltbl.ID {
				t.Fatal("fixture tables diverge")
			}
			run := func(name string, mq, lq *query.Query) {
				t.Helper()
				got, err := morsel.ExecuteQuery(context.Background(), morsel.NewSession(), mq)
				if err != nil {
					t.Fatalf("%s morsel: %v", name, err)
				}
				want, err := legacy.ExecuteQuery(context.Background(), legacy.NewSession(), lq)
				if err != nil {
					t.Fatalf("%s legacy: %v", name, err)
				}
				sortTuples(got)
				sortTuples(want)
				sameRels(t, name, got, want)
			}

			// Randomized projections and predicates.
			ops := []storage.CmpOp{storage.CmpLt, storage.CmpLe, storage.CmpGt, storage.CmpGe, storage.CmpEq}
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 25; i++ {
				ncols := 1 + r.Intn(4)
				cols := r.Perm(4)[:ncols]
				proj := make([]schema.ColID, ncols)
				for j, c := range cols {
					proj[j] = schema.ColID(c)
				}
				var pred storage.Pred
				if r.Intn(3) > 0 {
					pred = append(pred, storage.Cond{Col: 1, Op: ops[r.Intn(len(ops))], Val: types.NewInt64(int64(r.Intn(10)))})
				}
				if r.Intn(3) == 0 {
					pred = append(pred, storage.Cond{Col: 2, Op: ops[r.Intn(len(ops))], Val: types.NewFloat64(float64(r.Intn(rows)))})
				}
				mk := func() *query.Query {
					p := append(storage.Pred{}, pred...)
					return &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: proj, Pred: p}}
				}
				run("scan", mk(), mk())
			}

			// Every ungrouped aggregate over val, with a predicate.
			for _, fn := range []exec.AggFunc{exec.AggSum, exec.AggCount, exec.AggMin, exec.AggMax, exec.AggAvg} {
				mk := func() *query.Query {
					return &query.Query{Root: &query.AggNode{
						Child: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{2},
							Pred: storage.Pred{{Col: 1, Op: storage.CmpLt, Val: types.NewInt64(7)}}},
						Aggs: []exec.AggSpec{{Func: fn, Col: 0}},
					}}
				}
				run("agg", mk(), mk())
			}

			// Grouped aggregation with an AVG (exercises decomposition).
			mkGroup := func() *query.Query {
				return &query.Query{Root: &query.AggNode{
					Child:   &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{1, 2}},
					GroupBy: []int{0},
					Aggs: []exec.AggSpec{
						{Func: exec.AggSum, Col: 1}, {Func: exec.AggCount}, {Func: exec.AggAvg, Col: 1},
					},
				}}
			}
			run("groupby", mkGroup(), mkGroup())

			// Join of two scans (morsel path feeds both join inputs).
			mkJoin := func() *query.Query {
				return &query.Query{Root: &query.JoinNode{
					Left: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{1, 2},
						Pred: storage.Pred{{Col: 2, Op: storage.CmpLt, Val: types.NewFloat64(50)}}},
					Right: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0, 1},
						Pred: storage.Pred{{Col: 0, Op: storage.CmpLt, Val: types.NewInt64(100)}}},
					LeftKeyCol: 0, RightKeyCol: 1,
				}}
			}
			run("join", mkJoin(), mkJoin())

			// LIMIT: row content is nondeterministic, the count is not.
			mkLimit := func() *query.Query {
				return &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0},
					Pred: storage.Pred{{Col: 1, Op: storage.CmpEq, Val: types.NewInt64(3)}}}, Limit: 37}
			}
			got, err := morsel.ExecuteQuery(context.Background(), morsel.NewSession(), mkLimit())
			if err != nil {
				t.Fatal(err)
			}
			want, err := legacy.ExecuteQuery(context.Background(), legacy.NewSession(), mkLimit())
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Tuples) != 37 || len(want.Tuples) != 37 {
				t.Fatalf("limit rows: morsel %d legacy %d, want 37", len(got.Tuples), len(want.Tuples))
			}
		})
	}
}

// TestMorselZoneMapPruning pins the pruning accounting: with 4 partitions
// of 250 rows and 100-row morsels (3 morsels each), a predicate excluding
// the lower half of the id space must prune exactly the two low partitions'
// morsels and schedule exactly the two high partitions'.
func TestMorselZoneMapPruning(t *testing.T) {
	e, tbl := newMorselEngine(t, ModeRowStore, 2, 4, 1000, func(c *Config) {
		c.MorselRows = 100
	})
	q := &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0, 2},
		Pred: storage.Pred{{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(500)}}}}
	res, err := e.ExecuteQuery(context.Background(), e.NewSession(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 500 {
		t.Fatalf("rows = %d, want 500", len(res.Tuples))
	}
	snap := e.MetricsSnapshot()
	if got := snap.Counters["exec.morsels.pruned"]; got != 6 {
		t.Errorf("pruned morsels = %d, want 6", got)
	}
	if got := snap.Counters["exec.morsels.scheduled"]; got != 6 {
		t.Errorf("scheduled morsels = %d, want 6", got)
	}
	if got := snap.Counters["exec.morsels.rows"]; got != 500 {
		t.Errorf("morsel rows = %d, want 500", got)
	}
}

// TestMorselLimitStopsScheduling verifies early termination reaches the
// feeders: a LIMIT query over a table worth thousands of morsels must
// schedule only a small fraction of them before the coordinator cancels
// the feeds (backpressure bounds how far scheduling can run ahead).
func TestMorselLimitStopsScheduling(t *testing.T) {
	e, tbl := newMorselEngine(t, ModeRowStore, 2, 4, 40000, func(c *Config) {
		c.MorselRows = 16
		c.ScanBatchRows = 64
	})
	before := e.MetricsSnapshot().Counters["exec.morsels.scheduled"]
	q := &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0}}, Limit: 32}
	res, err := e.ExecuteQuery(context.Background(), e.NewSession(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 32 {
		t.Fatalf("rows = %d, want 32", len(res.Tuples))
	}
	total := int64(40000 / 16)
	delta := e.MetricsSnapshot().Counters["exec.morsels.scheduled"] - before
	if delta == 0 {
		t.Fatal("no morsels scheduled")
	}
	if delta >= total/2 {
		t.Errorf("scheduled %d of %d morsels; early termination did not stop the feed", delta, total)
	}
}

// TestMorselStreamMatchesMaterialized drains a streaming cursor and checks
// it yields exactly the materialized result, and that a stream-side LIMIT
// ends the cursor after that many rows with no error.
func TestMorselStreamMatchesMaterialized(t *testing.T) {
	e, tbl := newMorselEngine(t, ModeColumnStore, 2, 4, 2000, nil)
	sess := e.NewSession()
	q := &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0, 2},
		Pred: storage.Pred{{Col: 1, Op: storage.CmpLt, Val: types.NewInt64(5)}}}}

	want, err := e.ExecuteQuery(context.Background(), sess, q)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := e.ExecuteQueryStream(context.Background(), sess, q)
	if err != nil {
		t.Fatal(err)
	}
	got := exec.Rel{Cols: cur.Cols()}
	for cur.Next() {
		row := append([]types.Value(nil), cur.Row()...)
		got.Tuples = append(got.Tuples, row)
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	sortTuples(got)
	sortTuples(want)
	sameRels(t, "stream", got, want)

	lq := &query.Query{Root: q.Root, Limit: 10}
	cur, err = e.ExecuteQueryStream(context.Background(), sess, lq)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for cur.Next() {
		n++
	}
	if n != 10 || cur.Err() != nil {
		t.Fatalf("limited stream: %d rows, err %v", n, cur.Err())
	}
	cur.Close()
}

// TestMorselCancelNoGoroutineLeak abandons streams mid-scan — by cursor
// Close and by context cancellation — and requires the goroutine count to
// settle back to its baseline: Close drains until the producer closes the
// batch channel, so every feeder and worker must have exited.
func TestMorselCancelNoGoroutineLeak(t *testing.T) {
	e, tbl := newMorselEngine(t, ModeRowStore, 2, 4, 20000, func(c *Config) {
		c.MorselRows = 32
		c.ScanBatchRows = 64
	})
	sess := e.NewSession()
	q := &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0, 1, 2}}}

	baseline := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cur, err := e.ExecuteQueryStream(ctx, sess, q)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3 && cur.Next(); k++ {
		}
		if i%2 == 0 {
			cancel() // abandon via context; Close still drains the workers
		}
		if err := cur.Close(); err != nil && i%2 != 0 {
			t.Fatalf("close: %v", err)
		}
		cancel()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMorselContextCancelAborts cancels a materializing query's context
// and expects a prompt context.Canceled, not a hang or a partial result.
func TestMorselContextCancelAborts(t *testing.T) {
	e, tbl := newMorselEngine(t, ModeRowStore, 2, 4, 20000, func(c *Config) {
		c.MorselRows = 32
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0}}}
	if _, err := e.ExecuteQuery(ctx, e.NewSession(), q); err == nil {
		t.Fatal("cancelled query returned nil error")
	}
}
