// Package cluster assembles Proteus: data sites, the shared redo-log
// broker, the simulated interconnect, the planner, the learned cost model
// and the adaptive storage advisor, behind one Engine that executes OLTP
// transactions and OLAP queries (§3). The Engine also implements the
// comparison architectures of §6.2 — a static row store (RS), a static
// column store (CS), Janus-style and TiDB-style dual-format full
// replication — as configuration modes over the same substrate, mirroring
// how the paper implements its baselines "in Proteus" for apples-to-apples
// comparison.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/admission"
	"proteus/internal/colstore"
	"proteus/internal/cost"
	"proteus/internal/disksim"
	"proteus/internal/exec"
	"proteus/internal/faults"
	"proteus/internal/forecast"
	"proteus/internal/metadata"
	"proteus/internal/obs"
	"proteus/internal/partition"
	"proteus/internal/plan"
	"proteus/internal/redolog"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/site"
	"proteus/internal/storage"
	"proteus/internal/txn"
	"proteus/internal/types"
	"proteus/internal/vclock"
)

// Mode selects the system architecture under evaluation (§6.2).
type Mode uint8

const (
	// ModeProteus is the full adaptive system.
	ModeProteus Mode = iota
	// ModeRowStore stores everything in row format, statically.
	ModeRowStore
	// ModeColumnStore stores everything in column format, statically.
	ModeColumnStore
	// ModeJanus fully replicates every partition in both formats; OLTP
	// executes on rows, OLAP on lazily-maintained column replicas.
	ModeJanus
	// ModeTiDB fully replicates like Janus but charges Raft-quorum
	// synchronous replication on writes and routes reads by cost.
	ModeTiDB
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeProteus:
		return "proteus"
	case ModeRowStore:
		return "rowstore"
	case ModeColumnStore:
		return "columnstore"
	case ModeJanus:
		return "janus"
	case ModeTiDB:
		return "tidb"
	}
	return "?"
}

// Config parameterizes an Engine.
type Config struct {
	// Clock is the time source every modelled latency, backoff, deadline
	// and background ticker runs on. nil means the wall clock (production
	// and existing benches); cmd/proteus-sim installs a vclock.Sim so
	// hours of simulated traffic run in seconds.
	Clock vclock.Clock

	Mode     Mode
	NumSites int
	Site     site.Config
	Net      simnet.Config
	Tracker  forecast.Config
	// ReplicationInterval is the background replica poll period.
	ReplicationInterval time.Duration
	// MaintainInterval is the background storage-maintenance period
	// (delta merges, disk flushes).
	MaintainInterval time.Duration
	// DeltaThreshold triggers delta merges / buffer flushes.
	DeltaThreshold int
	// RedoRetention is how many records each redo-log topic keeps beyond
	// the minimum subscriber offset when the maintenance loop trims it —
	// slack that covers replica installs capturing a snapshot offset
	// concurrently with truncation. 0 disables the slack.
	RedoRetention int64
	// Adapt holds the ASA feature switches (ablation study, §6.3.7);
	// ignored outside ModeProteus.
	Adapt AdaptConfig
	// RaftFollowers is the number of synchronous Raft followers charged
	// per write in ModeTiDB.
	RaftFollowers int
	// FaultSeed seeds the fault-injection registry: drop rolls, retry
	// jitter and chaos schedules derive from it, making failure runs
	// reproducible.
	FaultSeed int64
	// OpDeadline bounds each client-visible operation (query or
	// transaction) across all its retries; expiry surfaces the typed
	// faults.ErrTimeout. 0 means the 2 s default.
	OpDeadline time.Duration
	// RetryBase is the first retry's maximum backoff delay (full jitter,
	// doubling per attempt). 0 means the 200 µs default.
	RetryBase time.Duration
	// MorselRows sizes the parallel scan executor's scheduling quantum
	// (rows per morsel). 0 means exec.DefaultMorselRows.
	MorselRows int
	// ScanBatchRows bounds one result batch flowing from scan workers to
	// the coordinator. 0 means exec.DefaultBatchRows.
	ScanBatchRows int
	// DisableMorselExec forces analytical scans back onto the legacy
	// one-goroutine-per-segment executor (A/B comparisons, debugging).
	DisableMorselExec bool
	// DisableGroupCommit reverts the write path to appending and
	// installing each transaction's redo records inline under the
	// partition locks (A/B comparisons, debugging).
	DisableGroupCommit bool
	// GroupCommitMaxBatch bounds how many commit groups one flush cycle
	// drains. 0 means a 256-group default.
	GroupCommitMaxBatch int
	// GroupCommitInterval is how long a flusher lingers for more commits
	// to coalesce before flushing a non-full batch. 0 (the default)
	// flushes whatever is pending immediately, so batching emerges only
	// under concurrent load and an uncontended commit pays no added
	// latency.
	GroupCommitInterval time.Duration
	// Admission configures the multi-tenant QoS front end. The zero value
	// is policy AlwaysAdmit: every request passes straight through (no
	// background work, no shedding), preserving the pre-admission
	// behavior for tests and baselines.
	Admission admission.Config
	// DisableBatchJoin forces coordinator joins back onto the legacy
	// row-at-a-time HashJoin/MergeJoin path (A/B comparisons, debugging).
	DisableBatchJoin bool
	// DisableRuntimeFilter keeps the batch join but skips building the
	// Bloom/min-max runtime filter from the build side (ablations).
	DisableRuntimeFilter bool
	// JoinSpillBudget is the in-memory build-side byte budget above which a
	// batch hash join grace-partitions its keys through the simulated spill
	// device. 0 means a 64 MiB default; negative disables spilling.
	JoinSpillBudget int64
}

// DefaultConfig returns a small cluster sizing suitable for tests.
func DefaultConfig() Config {
	return Config{
		Mode:                ModeProteus,
		NumSites:            2,
		Site:                site.DefaultConfig(),
		Net:                 simnet.DefaultConfig(),
		Tracker:             forecast.DefaultConfig(),
		ReplicationInterval: 5 * time.Millisecond,
		MaintainInterval:    20 * time.Millisecond,
		DeltaThreshold:      256,
		RedoRetention:       256,
		Adapt:               DefaultAdaptConfig(),
		RaftFollowers:       2,
		OpDeadline:          2 * time.Second,
		RetryBase:           200 * time.Microsecond,
	}
}

// Engine is a running Proteus cluster.
type Engine struct {
	cfg Config
	clk vclock.Clock

	Catalog *schema.Catalog
	Dir     *metadata.Directory
	Model   *cost.Model
	Planner *plan.Planner
	Epoch   *plan.Epoch
	Net     *simnet.Network
	Broker  *redolog.Broker
	Deps    *txn.DependencyTracker
	Locks   *txn.LockManager
	Sites   []*site.Site

	Advisor *Advisor // nil unless ModeProteus

	// gc is the group-commit pipeline: per-master-site queues whose
	// flushers batch redo appends and version installs off the
	// partition-lock critical path. Always constructed; transactions
	// bypass it when cfg.DisableGroupCommit is set.
	gc *groupCommit

	// Faults is the cluster's fault-injection registry, installed as the
	// interconnect's fault policy. Tests, the chaos harness and the CLI's
	// fault commands all drive it.
	Faults *faults.Registry

	// Adm is the admission controller fronting every client-visible
	// operation; oltpInFlight holds the per-site transaction counters the
	// morsel feeders consult for OLTP-over-OLAP preemption.
	Adm          *admission.Controller
	oltpInFlight []atomic.Int64

	// Obs is the cluster-wide metrics registry (simnet traffic, redo-log
	// broker, per-site maintenance); Trace is the ASA decision trace
	// (empty outside ModeProteus).
	Obs   *obs.Registry
	Trace *obs.DecisionTrace

	stats Stats

	// crashed remembers what each down site hosted, for recovery replay.
	crashMu sync.Mutex
	crashed map[simnet.SiteID][]site.HostedCopy

	// Failure instruments.
	cntRetries    *obs.Counter
	cntTimeouts   *obs.Counter
	cntCrashes    *obs.Counter
	cntRecoveries *obs.Counter
	cntFailovers  *obs.Counter
	recoveryLat   *obs.Recorder

	// Morsel-executor instruments.
	cntMorselsScheduled *obs.Counter // units actually handed to workers
	cntMorselsPruned    *obs.Counter // units skipped by zone maps at build
	cntMorselRows       *obs.Counter // rows produced by morsel scans
	cntScanBatches      *obs.Counter // result batches shipped coordinator-ward
	cntScanYields       *obs.Counter // feeder yields to in-flight OLTP work
	recMorselsPerQuery  *obs.Recorder

	// spill is the simulated disk backing batch-join grace partitioning.
	spill *disksim.Device

	tableMax map[schema.TableID]schema.RowID

	txnID uint64
	tmu   sync.Mutex

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds and starts an engine.
func New(cfg Config) *Engine {
	if cfg.NumSites <= 0 {
		cfg.NumSites = 1
	}
	if cfg.DeltaThreshold <= 0 {
		cfg.DeltaThreshold = 256
	}
	e := &Engine{
		cfg:      cfg,
		clk:      vclock.OrWall(cfg.Clock),
		Catalog:  schema.NewCatalog(),
		Dir:      metadata.NewDirectory(cfg.Tracker),
		Model:    cost.NewModel(),
		Epoch:    &plan.Epoch{},
		Net:      simnet.New(cfg.Net),
		Broker:   redolog.NewBroker(),
		Deps:     txn.NewDependencyTracker(),
		Locks:    txn.NewLockManager(),
		Obs:      obs.NewRegistry(),
		Trace:    obs.NewDecisionTrace(4096),
		Faults:   faults.New(cfg.FaultSeed),
		crashed:  make(map[simnet.SiteID][]site.HostedCopy),
		spill:    disksim.New(disksim.DefaultConfig()),
		tableMax: make(map[schema.TableID]schema.RowID),
		stop:     make(chan struct{}),
	}
	e.Net.SetClock(e.clk)
	e.Net.SetObs(e.Obs)
	e.Net.SetFaults(e.Faults)
	e.Faults.SetClock(e.clk)
	e.spill.SetClock(e.clk)
	e.Broker.SetObs(e.Obs)
	e.cntRetries = e.Obs.Counter("faults.retries")
	e.cntTimeouts = e.Obs.Counter("faults.timeouts")
	e.cntCrashes = e.Obs.Counter("faults.crashes")
	e.cntRecoveries = e.Obs.Counter("faults.recoveries")
	e.cntFailovers = e.Obs.Counter("faults.failovers")
	e.recoveryLat = e.Obs.Recorder("faults.recovery.replay", 1<<8)
	e.cntMorselsScheduled = e.Obs.Counter("exec.morsels.scheduled")
	e.cntMorselsPruned = e.Obs.Counter("exec.morsels.pruned")
	e.cntMorselRows = e.Obs.Counter("exec.morsels.rows")
	e.cntScanBatches = e.Obs.Counter("exec.scan.batches")
	e.cntScanYields = e.Obs.Counter("admission.scan.preempt_yields")
	e.recMorselsPerQuery = e.Obs.Recorder("exec.morsels.per_query", 1<<10)
	e.Adm = admission.New(cfg.Admission, e.Obs, admission.WithTimeSource(e.clk))
	e.Obs.Gauge("admission.policy").Set(int64(cfg.Admission.Policy))
	e.oltpInFlight = make([]atomic.Int64, cfg.NumSites)
	for i := 0; i < cfg.NumSites; i++ {
		s := site.New(simnet.SiteID(i), cfg.Site, e.Broker, e.Net, simnet.ASASite)
		s.SetClock(e.clk)
		s.SetObs(e.Obs)
		e.Sites = append(e.Sites, s)
	}
	e.Planner = &plan.Planner{
		Dir:       e.Dir,
		Model:     e.Model,
		Decisions: plan.NewDecisionCache(),
		Plans:     plan.NewPlanCache(),
		Epoch:     e.Epoch,
		MaxRow:    schema.RowID(1) << 62,
	}
	if cfg.Mode == ModeProteus {
		e.Advisor = newAdvisor(e, cfg.Adapt)
	}
	e.gc = newGroupCommit(e)
	e.startBackground()
	return e
}

func (e *Engine) startBackground() {
	if e.cfg.ReplicationInterval > 0 {
		for _, s := range e.Sites {
			s := s
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				s.Repl.Run(e.cfg.ReplicationInterval, e.stop)
			}()
		}
	}
	if e.cfg.MaintainInterval > 0 {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			t := e.clk.NewTicker(e.cfg.MaintainInterval)
			defer t.Stop()
			for {
				select {
				case <-e.stop:
					return
				case <-t.C:
					for _, s := range e.Sites {
						if s.Down() {
							continue
						}
						s.Maintain(e.cfg.DeltaThreshold)
					}
					e.drainObservations()
					e.checkpointAndTruncate()
				}
			}
		}()
	}
	e.startAdmissionRefresher()
	if e.Advisor != nil {
		e.Advisor.start()
	} else {
		// Baseline modes manage the memory/disk boundary with LRU (§6.2);
		// the loop is a no-op until a memory capacity is set.
		e.startTiering(200 * time.Millisecond)
	}
}

// SetMemCapacityPerSite caps every site's memory tier (0 = unlimited).
func (e *Engine) SetMemCapacityPerSite(c int64) {
	for _, s := range e.Sites {
		s.SetMemCapacity(c)
	}
}

// TotalMemUsage sums memory-tier bytes across sites.
func (e *Engine) TotalMemUsage() int64 {
	var total int64
	for _, s := range e.Sites {
		total += s.MemUsage()
	}
	return total
}

// MasterMemUsage sums memory-tier bytes of master copies only — the
// single-copy footprint of the database, independent of how many replicas
// a mode mandates.
func (e *Engine) MasterMemUsage() int64 {
	var total int64
	for _, s := range e.Sites {
		for _, p := range s.Partitions() {
			if s.IsMaster(p.ID) && p.Layout().Tier == storage.MemoryTier {
				total += int64(p.Stats().Bytes)
			}
		}
	}
	return total
}

// drainObservations collects buffered site observations into the shared
// cost model (the ASA's polling threads, §3).
func (e *Engine) drainObservations() {
	for _, s := range e.Sites {
		for _, o := range s.DrainObservations() {
			e.Model.Observe(o)
		}
	}
}

// checkpointAndTruncate maintains each topic's durability floor: it
// refreshes the broker checkpoint of partitions whose log has grown past
// the retention window, then trims records no longer needed by either a
// replica subscription or crash recovery (the paper's Kafka retention plus
// its snapshot store, §4.3). The truncation floor is the minimum of every
// subscriber's offset and the checkpoint offset; a topic with no
// checkpoint is never trimmed, because replay-from-base is then the only
// copy of bulk-loaded state. A configured retention slack keeps the last
// RedoRetention records regardless, so a replica install capturing a
// snapshot offset concurrently with this loop never finds its start
// already reclaimed.
func (e *Engine) checkpointAndTruncate() {
	mins := make(map[partition.ID]int64)
	for _, s := range e.Sites {
		for pid, off := range s.Repl.Offsets() {
			if cur, ok := mins[pid]; !ok || off < cur {
				mins[pid] = off
			}
		}
	}
	for _, pid := range e.Broker.Topics() {
		if m, ok := e.Dir.Get(pid); ok {
			e.maybeCheckpoint(m)
		}
		floor := e.Broker.CheckpointOffset(pid)
		if off, ok := mins[pid]; ok && off < floor {
			floor = off
		}
		floor -= e.cfg.RedoRetention
		if floor > 0 {
			e.Broker.Truncate(pid, floor)
		}
	}
}

// maybeCheckpoint refreshes a partition's broker checkpoint once its log
// tail outgrows the retention window. The snapshot (rows, version, end
// offset) is captured under the partition's exclusive lock, behind a
// group-commit barrier: commits stage and enqueue under the lock but
// append and install from the flusher, so the barrier is what makes the
// extracted rows, the installed version and the log end offset mutually
// consistent.
func (e *Engine) maybeCheckpoint(m *metadata.PartitionMeta) {
	slack := e.cfg.RedoRetention
	if slack < 1 {
		slack = 1
	}
	if e.Broker.EndOffset(m.ID)-e.Broker.CheckpointOffset(m.ID) < slack {
		return
	}
	// Pre-drain the (possibly stale) master site's commit queue before
	// taking the lock: a flush in flight can spend milliseconds on
	// cross-site acks, and waiting it out under the partition lock would
	// stall concurrent commits. The authoritative barrier below, under the
	// lock against the re-resolved master, then returns quickly.
	e.gc.barrier(m.Master().Site)
	ls := e.Locks.AcquireAll(nil, []partition.ID{m.ID})
	defer ls.ReleaseAll()
	// Resolve the master copy only under the lock: while we waited for it a
	// failover or master change may have moved the partition, and capturing
	// a now-stale copy against the current end offset would produce a
	// checkpoint whose offset covers records its rows lack — silently lost
	// on the next rebuild.
	master := m.Master()
	s := e.siteOf(master.Site)
	if s.Down() {
		return
	}
	p, ok := s.Partition(m.ID)
	if !ok {
		return
	}
	e.gc.barrier(master.Site)
	ck := redolog.Checkpoint{
		Rows:    p.ExtractAll(storage.Latest),
		Version: p.Version(),
		Offset:  e.Broker.EndOffset(m.ID),
	}
	e.Broker.SaveCheckpoint(m.ID, ck)
}

// Close stops background work and the sites. The admission controller
// closes first so queued waiters shed instead of blocking shutdown; the
// group-commit flushers are drained after the background loops stop (a
// maintenance checkpoint may be waiting on a flush barrier) and before
// the sites close (waiting transactions still occupy site pool workers
// until their flush resolves).
func (e *Engine) Close() {
	e.Adm.Close()
	close(e.stop)
	e.wg.Wait()
	e.gc.close()
	for _, s := range e.Sites {
		s.Close()
	}
}

// Mode reports the configured architecture.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Clock reports the engine's time source (the wall clock unless a
// virtual clock was configured).
func (e *Engine) Clock() vclock.Clock { return e.clk }

// nextTxnID issues transaction identifiers.
func (e *Engine) nextTxnID() uint64 {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	e.txnID++
	return e.txnID
}

// initialLayout is the mode's starting layout for OLTP-facing copies.
func (e *Engine) initialLayout() storage.Layout {
	if e.cfg.Mode == ModeColumnStore {
		return storage.DefaultColumnLayout()
	}
	return storage.DefaultRowLayout()
}

// TableSpec describes a table's initial physical design. Baseline modes
// receive workload-aware placement (the Schism advantage of §6.2) through
// these fields; Proteus starts from the same neutral partitioning and
// adapts on its own.
type TableSpec struct {
	Name string
	Cols []schema.Column
	// MaxRows bounds the row_id space (inserts must stay below it).
	MaxRows schema.RowID
	// Partitions is the initial horizontal partition count (>=1).
	Partitions int
	// PlaceAt optionally pins partition i to a site (Schism-style
	// placement); nil means round-robin.
	PlaceAt func(part int) simnet.SiteID
	// ReplicateAll installs a full replica at every site (used for
	// read-only tables by the advantaged baselines).
	ReplicateAll bool
	// ReplicaLayout is the layout of ReplicateAll copies; zero value
	// means compressed columns.
	ReplicaLayout *storage.Layout
}

// CreateTable defines a table and its initial partitions.
func (e *Engine) CreateTable(spec TableSpec) (*schema.Table, error) {
	tbl, err := e.Catalog.Create(spec.Name, spec.Cols)
	if err != nil {
		return nil, err
	}
	if spec.Partitions <= 0 {
		spec.Partitions = 1
	}
	if spec.MaxRows <= 0 {
		spec.MaxRows = 1 << 30
	}
	e.tableMax[tbl.ID] = spec.MaxRows
	avg := make([]float64, len(spec.Cols))
	for i, c := range spec.Cols {
		if c.AvgSize > 0 {
			avg[i] = c.AvgSize
		} else {
			avg[i] = float64(c.Kind.FixedWidth())
		}
	}
	e.Dir.InitColStats(tbl.ID, avg)

	kinds := tbl.Kinds()
	layout := e.initialLayout()
	per := int64(spec.MaxRows) / int64(spec.Partitions)
	for i := 0; i < spec.Partitions; i++ {
		lo := schema.RowID(int64(i) * per)
		hi := schema.RowID(int64(i+1) * per)
		if i == spec.Partitions-1 {
			hi = spec.MaxRows
		}
		siteID := simnet.SiteID(i % len(e.Sites))
		if spec.PlaceAt != nil {
			siteID = spec.PlaceAt(i)
		}
		b := partition.Bounds{Table: tbl.ID, RowStart: lo, RowEnd: hi, ColStart: 0, ColEnd: schema.ColID(len(kinds))}
		pid := e.Dir.AllocID()
		p := partition.New(pid, b, kinds, layout, e.siteOf(siteID).Factory)
		e.siteOf(siteID).AddPartition(p, true)
		e.Broker.CreateTopic(pid)
		meta := e.Dir.Register(pid, b, metadata.Replica{Site: siteID, Layout: layout}, p.ZoneMap())
		e.installModeReplicas(meta, p, kinds)
		if spec.ReplicateAll {
			rl := storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: storage.NoSort, Compressed: true}
			if spec.ReplicaLayout != nil {
				rl = *spec.ReplicaLayout
			}
			for _, s := range e.Sites {
				if s.ID == siteID {
					continue
				}
				if err := e.installReplica(meta, s.ID, rl); err != nil {
					return nil, err
				}
			}
		}
	}
	return tbl, nil
}

// installModeReplicas adds the dual-format copies Janus and TiDB mandate:
// every partition gains a full column-format replica (placed at the next
// site so each site hosts a share of both the row and column stores). The
// row master serves OLTP; the column replica serves OLAP with lazy update
// propagation, as in §6.2.
func (e *Engine) installModeReplicas(meta *metadata.PartitionMeta, master *partition.Partition, kinds []types.Kind) {
	if e.cfg.Mode != ModeJanus && e.cfg.Mode != ModeTiDB {
		return
	}
	if len(e.Sites) < 2 {
		return // a second full copy needs a second store location
	}
	_ = master
	_ = kinds
	target := simnet.SiteID((int(meta.Master().Site) + 1) % len(e.Sites))
	_ = e.installReplica(meta, target, storage.DefaultColumnLayout())
}

// installReplica snapshots the master and installs a replica copy at a
// site, subscribing it to the partition's redo log (§4.4). It fails with
// a typed error when either endpoint is down or partitioned away.
func (e *Engine) installReplica(meta *metadata.PartitionMeta, siteID simnet.SiteID, l storage.Layout) error {
	dst := e.siteOf(siteID)
	if dst.Down() {
		return fmt.Errorf("%w: site %d", faults.ErrSiteDown, siteID)
	}
	masterSite := e.siteOf(meta.Master().Site)
	if masterSite.Down() {
		return fmt.Errorf("%w: site %d", faults.ErrSiteDown, masterSite.ID)
	}
	if err := e.Net.Reachable(masterSite.ID, siteID); err != nil {
		return err
	}
	mp, err := masterSite.MustPartition(meta.ID)
	if err != nil {
		return err
	}
	// Flush pending commits so the captured offset, rows and version are
	// mutually consistent (callers hold at least the shared partition
	// lock, keeping them that way until the subscription is installed).
	e.gc.barrier(masterSite.ID)
	offset := e.Broker.EndOffset(meta.ID)
	rows := mp.ExtractAll(storage.Latest)
	rep := partition.New(meta.ID, meta.Bounds, mp.Kinds(), l, dst.Factory)
	if err := rep.Load(rows, mp.Version()); err != nil {
		return err
	}
	dst.AddPartition(rep, false)
	dst.Repl.Subscribe(meta.ID, rep, offset)
	meta.AddReplica(metadata.Replica{Site: siteID, Layout: l})
	return nil
}

// siteOf resolves a site ID.
func (e *Engine) siteOf(id simnet.SiteID) *site.Site { return e.Sites[int(id)] }

// LoadRows bulk-loads initial table data through the master partitions
// (and any already-installed replicas). ctx cancellation aborts between
// partitions.
func (e *Engine) LoadRows(ctx context.Context, table schema.TableID, rows []schema.Row) error {
	if err := e.admit(ctx, admission.PriorityOLTP); err != nil {
		return err
	}
	byPart := map[partition.ID][]schema.Row{}
	metas := map[partition.ID]*metadata.PartitionMeta{}
	for _, r := range rows {
		pieces := e.Dir.PartitionForRow(table, r.ID, nil)
		if len(pieces) == 0 {
			return fmt.Errorf("cluster: no partition for table %d row %d", table, r.ID)
		}
		for _, m := range pieces {
			metas[m.ID] = m
			lo, hi := int(m.Bounds.ColStart), int(m.Bounds.ColEnd)
			byPart[m.ID] = append(byPart[m.ID], schema.Row{ID: r.ID, Vals: r.Vals[lo:hi]})
		}
	}
	for pid, prows := range byPart {
		if err := ctx.Err(); err != nil {
			return err
		}
		m := metas[pid]
		for _, rep := range m.AllCopies() {
			s := e.siteOf(rep.Site)
			p, ok := s.Partition(pid)
			if !ok {
				continue
			}
			if err := p.Load(prows, 1); err != nil {
				return err
			}
		}
		// Bulk-loaded rows never enter the redo log, so checkpoint each
		// partition now: crash recovery replays checkpoint + log, and
		// without this the loaded state would be unrecoverable.
		if mp, ok := e.siteOf(m.Master().Site).Partition(pid); ok {
			e.Broker.SaveCheckpoint(pid, redolog.Checkpoint{
				Rows:    mp.ExtractAll(storage.Latest),
				Version: mp.Version(),
				Offset:  e.Broker.EndOffset(pid),
			})
		}
		m.Tracker.Record(forecast.Update, 0) // touch tracker
	}
	return nil
}

// Stats exposes the engine's experiment counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// MetricsSnapshot assembles the full observability snapshot: the shared
// registry (net, redolog, per-site maintenance) plus per-class operation
// counters, OLTP/OLAP/adaptation latency quantiles, per-site tier usage
// and replication/advisor totals. This is what cmd/proteusd serves over
// HTTP and what the proteus-cli stats command prints.
func (e *Engine) MetricsSnapshot() obs.Snapshot {
	snap := e.Obs.Snapshot()
	for c := OpClass(0); c < NumOpClasses; c++ {
		st := e.stats.Class(c)
		if st.Count == 0 {
			continue
		}
		snap.Counters["engine."+c.String()+".count"] = st.Count
		snap.Counters["engine."+c.String()+".time_ns"] = int64(st.TotalTime)
	}
	snap.Counters["engine.aborts"] = e.stats.Aborts()
	oltp, olap, adapt := e.stats.Quantiles()
	snap.Latencies["engine.oltp"] = oltp
	snap.Latencies["engine.olap"] = olap
	snap.Latencies["engine.adaptation"] = adapt
	var applied int64
	for _, s := range e.Sites {
		snap.Gauges[fmt.Sprintf("site%d.mem_bytes", s.ID)] = s.MemUsage()
		snap.Gauges[fmt.Sprintf("site%d.disk_bytes", s.ID)] = s.DiskUsage()
		up := int64(1)
		if s.Down() {
			up = 0
		}
		snap.Gauges[fmt.Sprintf("site%d.up", s.ID)] = up
		applied += s.Repl.Applied()
	}
	snap.Counters["repl.applied"] = applied
	bs := storage.ReadBatchStats()
	snap.Counters["exec.batches.count"] = bs.Batches
	snap.Counters["exec.batches.rows_scanned"] = bs.RowsScanned
	snap.Counters["exec.batches.rows_selected"] = bs.RowsSelected
	snap.Counters["exec.batches.pool_gets"] = bs.PoolGets
	snap.Counters["exec.batches.pool_hits"] = bs.PoolHits
	snap.Counters["exec.batches.pool_puts"] = bs.PoolPuts
	if bs.RowsScanned > 0 {
		snap.Gauges["exec.batches.selectivity_pct"] = 100 * bs.RowsSelected / bs.RowsScanned
	}
	if bs.PoolGets > 0 {
		snap.Gauges["exec.batches.pool_hit_pct"] = 100 * bs.PoolHits / bs.PoolGets
	}
	es := storage.ReadEncodedStats()
	snap.Counters["exec.encoded.vecs"] = es.Vecs
	snap.Counters["exec.encoded.code_filters"] = es.CodeFilters
	snap.Counters["exec.encoded.agg_folds"] = es.AggFolds
	ce := colstore.ReadEncodingStats()
	snap.Counters["colstore.encoding.cols.plain"] = ce.PlainCols
	snap.Counters["colstore.encoding.cols.rle"] = ce.RLECols
	snap.Counters["colstore.encoding.cols.dict"] = ce.DictCols
	snap.Counters["colstore.encoding.cols.for"] = ce.FoRCols
	snap.Counters["colstore.encoding.bytes.stored"] = ce.StoredBytes
	snap.Counters["colstore.encoding.bytes.plain_equiv"] = ce.PlainBytes
	if ce.PlainBytes > 0 {
		snap.Gauges["colstore.encoding.stored_pct"] = 100 * ce.StoredBytes / ce.PlainBytes
	}
	js := exec.ReadJoinStats()
	snap.Counters["exec.join.count"] = js.Joins
	snap.Counters["exec.join.build_rows"] = js.BuildRows
	snap.Counters["exec.join.probe_rows"] = js.ProbeRows
	snap.Counters["exec.join.out_rows"] = js.OutRows
	snap.Counters["exec.join.build_ns"] = js.BuildNanos
	snap.Counters["exec.join.probe_ns"] = js.ProbeNanos
	snap.Counters["exec.join.bloom_tested"] = js.BloomTested
	snap.Counters["exec.join.bloom_passed"] = js.BloomPassed
	snap.Counters["exec.join.rf_bounds_preds"] = js.BoundsPreds
	snap.Counters["exec.join.spill_partitions"] = js.SpillPartitions
	snap.Counters["exec.join.spill_bytes"] = js.SpillBytes
	snap.Counters["exec.join.spill_recursions"] = js.SpillRecursions
	if js.BloomTested > 0 {
		snap.Gauges["exec.join.bloom_pass_pct"] = 100 * js.BloomPassed / js.BloomTested
	}
	gs := exec.ReadGroupByStats()
	snap.Counters["exec.groupby.batches"] = gs.Batches
	snap.Counters["exec.groupby.rows_typed"] = gs.IntRows
	snap.Counters["exec.groupby.rows_coded"] = gs.CodeRows
	snap.Counters["exec.groupby.rows_boxed"] = gs.BoxRows
	snap.Counters["asa.decisions"] = e.Trace.Total()
	if e.Advisor != nil {
		snap.Counters["asa.changes"] = e.Advisor.Changes()
	}
	return snap
}

// TableMaxRow reports the configured row bound of a table.
func (e *Engine) TableMaxRow(t schema.TableID) schema.RowID { return e.tableMax[t] }
