// Batch-native join execution (§4.3): coordinator joins whose inputs are
// plain scans (or nested coordinator joins) bypass the row-at-a-time
// evalJoin path entirely. The smaller input — by planner estimate — is
// evaluated first and folded into a Bloom/min-max runtime filter; the
// filter's bounds push into the probe scan's predicate, where the morsel
// scheduler's zone maps prune whole partitions before a single morsel is
// scheduled and FilterVec narrows batch selections, and the Bloom filter
// drops the remaining non-matching probe rows inside the scan workers
// before they are shipped. Both sides stay columnar end to end:
// exec.BatchHashJoin joins them with typed keys and late materialization,
// and an aggregation parent folds the join output straight into a grouped
// accumulator (ObserveCols) without ever boxing tuples.
package cluster

import (
	"context"
	"sort"
	"sync"

	"proteus/internal/cost"
	"proteus/internal/exec"
	"proteus/internal/plan"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/txn"
)

// defaultJoinSpillBudget bounds an in-memory build side before the join
// grace-partitions through the spill device.
const defaultJoinSpillBudget = 64 << 20

// joinSpill returns the engine's spill policy for batch hash joins.
func (e *Engine) joinSpill() *exec.JoinSpill {
	budget := e.cfg.JoinSpillBudget
	if budget == 0 {
		budget = defaultJoinSpillBudget
	}
	if budget < 0 {
		return nil
	}
	return &exec.JoinSpill{Device: e.spill, Budget: budget}
}

// batchJoinOK reports whether a join subtree runs on the batch engine:
// equi-join trees whose leaves are plain scans. Both planner strategies
// qualify — a colocated join's site-local row loops are still slower than
// scanning both sides columnar and joining typed keys at the coordinator,
// and the runtime filter usually ships fewer probe bytes than the
// colocated plan's full left side ships partial results. The legacy
// strategy split remains reachable via DisableBatchJoin.
func (e *Engine) batchJoinOK(pj *plan.PJoin) bool {
	if e.cfg.DisableBatchJoin {
		return false
	}
	return batchJoinShape(pj)
}

func batchJoinShape(n plan.PNode) bool {
	switch v := n.(type) {
	case *plan.PScan:
		return true
	case *plan.PJoin:
		return batchJoinShape(v.Left) && batchJoinShape(v.Right)
	}
	return false
}

func nodeEstRows(n plan.PNode) int {
	switch v := n.(type) {
	case *plan.PScan:
		return v.EstRows
	case *plan.PJoin:
		return v.EstRows
	}
	return 0
}

// nodeColLabels mirrors the output labels evalNode would produce for a
// batch-join-eligible subtree.
func nodeColLabels(n plan.PNode) []string {
	switch v := n.(type) {
	case *plan.PScan:
		return colNames(v.Cols)
	case *plan.PJoin:
		return append(append([]string{}, nodeColLabels(v.Left)...), nodeColLabels(v.Right)...)
	}
	return nil
}

// nodeColWidth is the output column count of a batch-join-eligible subtree.
func nodeColWidth(n plan.PNode) int {
	switch v := n.(type) {
	case *plan.PScan:
		return len(v.Cols)
	case *plan.PJoin:
		return nodeColWidth(v.Left) + nodeColWidth(v.Right)
	}
	return 0
}

// addPos inserts p into a sorted unique position list.
func addPos(ps []int, p int) []int {
	i := sort.SearchInts(ps, p)
	if i < len(ps) && ps[i] == p {
		return ps
	}
	ps = append(ps, 0)
	copy(ps[i+1:], ps[i:])
	ps[i] = p
	return ps
}

// posIndex is p's index in a sorted position list (-1 when absent).
func posIndex(ps []int, p int) int {
	i := sort.SearchInts(ps, p)
	if i < len(ps) && ps[i] == p {
		return i
	}
	return -1
}

// evalBatchJoin executes a join subtree on the batch engine, returning the
// joined columnar relation. need lists the output column positions the
// parent will read, sorted ascending (nil means all): the projection is
// pushed down so untouched payload columns are neither scanned, shipped,
// nor gathered — late materialization across the whole join tree.
func (e *Engine) evalBatchJoin(ctx context.Context, pj *plan.PJoin, snap txn.VersionVector, coord simnet.SiteID, need []int) (exec.ColRel, error) {
	// Split the projection across the children; each side's join key must
	// be present to join, even when the parent never reads it.
	nL := nodeColWidth(pj.Left)
	var needL, needR []int
	lKey, rKey := pj.LeftKey, pj.RightKey
	var projL, projR []int
	if need != nil {
		needL = addPos(nil, pj.LeftKey)
		needR = addPos(nil, pj.RightKey)
		for _, p := range need {
			if p < nL {
				needL = addPos(needL, p)
			} else {
				needR = addPos(needR, p-nL)
			}
		}
		lKey, rKey = posIndex(needL, pj.LeftKey), posIndex(needR, pj.RightKey)
		projL, projR = []int{}, []int{}
		for _, p := range need {
			if p < nL {
				projL = append(projL, posIndex(needL, p))
			} else {
				projR = append(projR, posIndex(needR, p-nL))
			}
		}
	}

	// Evaluate the (estimated) smaller side first so its keys seed the
	// runtime filter pushed into the other side's scan.
	rightFirst := nodeEstRows(pj.Right) <= nodeEstRows(pj.Left)
	var left, right exec.ColRel
	var err error
	var rf *exec.RuntimeFilter
	if rightFirst {
		if right, err = e.evalColInput(ctx, pj.Right, snap, coord, nil, -1, needR); err != nil {
			return exec.ColRel{}, err
		}
		if !e.cfg.DisableRuntimeFilter {
			rf = exec.BuildRuntimeFilter(&right, rKey)
		}
		if left, err = e.evalColInput(ctx, pj.Left, snap, coord, rf, lKey, needL); err != nil {
			return exec.ColRel{}, err
		}
	} else {
		if left, err = e.evalColInput(ctx, pj.Left, snap, coord, nil, -1, needL); err != nil {
			return exec.ColRel{}, err
		}
		if !e.cfg.DisableRuntimeFilter {
			rf = exec.BuildRuntimeFilter(&left, lKey)
		}
		if right, err = e.evalColInput(ctx, pj.Right, snap, coord, rf, rKey, needR); err != nil {
			return exec.ColRel{}, err
		}
	}
	out, obs, err := exec.BatchHashJoin(&left, &right, lKey, rKey, e.joinSpill(), projL, projR)
	if err != nil {
		return exec.ColRel{}, err
	}
	e.siteOf(coord).Observe(obs)
	return out, nil
}

// projectLabels picks the labels at need positions (nil need = all).
func projectLabels(labels []string, need []int) []string {
	if need == nil {
		return labels
	}
	out := make([]string, len(need))
	for i, p := range need {
		out[i] = labels[p]
	}
	return out
}

// projectCols reduces a columnar relation to the need positions without
// copying column data (the result shares vectors and must stay read-only).
func projectCols(c *exec.ColRel, need []int) exec.ColRel {
	if need == nil {
		return *c
	}
	out := exec.NewColRel(projectLabels(c.Cols, need))
	for i, p := range need {
		out.Vecs[i] = c.Vecs[p]
	}
	out.SetRows(c.NumRows())
	return out
}

// evalColInput evaluates one join input to columnar form, applying the
// runtime filter rf over (projected) key position rfKey when non-nil and
// restricting output to the need columns (nil means all). An empty build
// side short-circuits the probe entirely: an inner join against zero rows
// is empty, so the scan is never scheduled.
func (e *Engine) evalColInput(ctx context.Context, n plan.PNode, snap txn.VersionVector, coord simnet.SiteID, rf *exec.RuntimeFilter, rfKey int, need []int) (exec.ColRel, error) {
	if rf != nil && rf.Empty() {
		return exec.NewColRel(projectLabels(nodeColLabels(n), need)), nil
	}
	switch v := n.(type) {
	case *plan.PScan:
		scan := v
		if need != nil && len(need) < len(v.Cols) {
			// Clone the cached plan node with only the needed columns: the
			// projection reaches the storage layer, so dropped payload
			// columns are never decoded or shipped.
			clone := *v
			clone.Cols = make([]schema.ColID, len(need))
			for i, p := range need {
				clone.Cols[i] = v.Cols[p]
			}
			clone.SortedBy = -1
			if v.SortedBy >= 0 {
				clone.SortedBy = posIndex(need, v.SortedBy)
			}
			scan = &clone
		}
		if e.morselEligible(scan) {
			return e.morselGatherCols(ctx, scan, snap, coord, rf, rfKey)
		}
		rel, err := e.evalScan(ctx, scan, snap, coord)
		if err != nil {
			return exec.ColRel{}, err
		}
		c := exec.ColRelFromRel(rel)
		if rf != nil {
			c = rf.FilterCols(&c, rfKey)
		}
		return c, nil
	case *plan.PJoin:
		c, err := e.evalBatchJoin(ctx, v, snap, coord, need)
		if err != nil {
			return exec.ColRel{}, err
		}
		if rf != nil {
			c = rf.FilterCols(&c, rfKey)
		}
		return c, nil
	}
	rel, err := e.evalNode(ctx, n, snap, coord)
	if err != nil {
		return exec.ColRel{}, err
	}
	c := exec.ColRelFromRel(rel)
	c = projectCols(&c, need)
	if rf != nil {
		c = rf.FilterCols(&c, rfKey)
	}
	return c, nil
}

// morselGatherCols runs a morsel scan in columnar mode, materializing the
// result as a ColRel at the coordinator. When a runtime filter is present
// its min-max bounds are appended to a clone of the scan's predicate
// (plans are cached — the node itself must never be mutated) so zone maps
// prune morsels before scheduling, and the Bloom filter narrows each
// batch's selection inside the scan workers.
func (e *Engine) morselGatherCols(ctx context.Context, ps *plan.PScan, snap txn.VersionVector, coord simnet.SiteID, rf *exec.RuntimeFilter, rfKey int) (exec.ColRel, error) {
	scan := ps
	if rf != nil && rfKey >= 0 {
		if bounds := rf.BoundsPred(ps.Cols[rfKey]); bounds != nil {
			clone := *ps
			clone.Pred = append(append(storage.Pred{}, ps.Pred...), bounds...)
			scan = &clone
			exec.RecordRFBoundsPush()
		}
	}
	j, err := e.buildMorselJob(ctx, scan, snap, coord)
	if err != nil {
		return exec.ColRel{}, err
	}
	defer j.cancel()
	out := make(chan exec.ColRel, 2*len(e.Sites)+2)
	j.runCols(rf, rfKey, out)
	res := exec.NewColRel(j.cols)
	for chunk := range out {
		chunk := chunk
		res.AppendCols(&chunk)
	}
	if j.err != nil {
		return exec.ColRel{}, j.err
	}
	if err := ctx.Err(); err != nil {
		return exec.ColRel{}, err
	}
	return res, nil
}

// runCols streams the scan columnar: workers accumulate decoded column
// chunks (applying the runtime filter per batch), ship them to the
// coordinator with network accounting, and hand them over with
// backpressure — the columnar sibling of runRows.
func (j *morselJob) runCols(rf *exec.RuntimeFilter, rfKey int, out chan<- exec.ColRel) {
	batchRows := j.e.scanBatchRows()
	var wg sync.WaitGroup
	newWorker := func(siteID simnet.SiteID) func(<-chan morselUnit) {
		return func(feed <-chan morselUnit) {
			cur := exec.NewColRel(j.cols)
			var rfScratch []int32
			flush := func() bool {
				if cur.NumRows() == 0 {
					return true
				}
				chunk := cur
				cur = exec.NewColRel(j.cols)
				if err := j.e.shipBytesTo(siteID, j.coord, chunk.NumRows()*chunk.RowBytes()+64); err != nil {
					j.fail(err)
					return false
				}
				select {
				case out <- chunk:
					j.e.cntScanBatches.Inc()
					j.e.cntMorselRows.Add(int64(chunk.NumRows()))
					return true
				case <-j.ctx.Done():
					return false
				}
			}
			for u := range feed {
				u := u
				u.scanUnitBatches(batchRows, func(b *storage.Batch) bool {
					n := b.Len()
					if n == 0 {
						return j.ctx.Err() == nil
					}
					// rows feeds the per-partition scan observation; count
					// pre-filter so scan selectivity stays a scan property.
					u.ps.rows.Add(int64(n))
					if rf != nil {
						rfScratch = rf.FilterBatch(b, rfKey, rfScratch)
					}
					if b.Len() > 0 {
						cur.AppendBatch(b)
					}
					if cur.NumRows() >= batchRows {
						return flush()
					}
					return j.ctx.Err() == nil
				})
				if j.ctx.Err() != nil {
					return
				}
			}
			flush()
		}
	}
	for siteID, units := range j.units {
		j.runSite(siteID, units, &wg, newWorker)
	}
	go func() {
		wg.Wait()
		j.observeScans()
		close(out)
	}()
}

// evalBatchJoinAgg fuses an aggregation directly over a batch join's
// columnar output: group keys and aggregate inputs fold through the typed
// accumulator paths without materializing join tuples, replacing the
// legacy join → partial HashAggregate → finalize chain. The aggregation's
// column footprint (group keys + aggregate inputs) becomes the join tree's
// projection, so payload columns nobody aggregates are never materialized.
func (e *Engine) evalBatchJoinAgg(ctx context.Context, pa *plan.PAgg, pj *plan.PJoin, snap txn.VersionVector, coord simnet.SiteID) (exec.Rel, error) {
	need := []int{}
	for _, g := range pa.GroupBy {
		need = addPos(need, g)
	}
	for _, a := range pa.Aggs {
		if a.Func != exec.AggCount {
			need = addPos(need, a.Col)
		}
	}
	c, err := e.evalBatchJoin(ctx, pj, snap, coord, need)
	if err != nil {
		return exec.Rel{}, err
	}
	groupBy := make([]int, len(pa.GroupBy))
	for i, g := range pa.GroupBy {
		groupBy[i] = posIndex(need, g)
	}
	specs := make([]exec.AggSpec, len(pa.Aggs))
	for i, a := range pa.Aggs {
		specs[i] = a
		if a.Func != exec.AggCount {
			specs[i].Col = posIndex(need, a.Col)
		}
	}
	start := e.clk.Now()
	agg := exec.NewAggregator(groupBy, specs)
	agg.ObserveCols(&c)
	rel := agg.Rel(c.Cols)
	e.siteOf(coord).Observe(cost.Observation{
		Op:       cost.OpAggregate,
		Variant:  cost.AggHash,
		Features: cost.AggFeatures(c.NumRows(), rel.NumRows(), c.RowBytes()),
		Latency:  e.clk.Since(start),
	})
	return rel, nil
}
