package cluster

import (
	"fmt"

	"proteus/internal/faults"
	"proteus/internal/metadata"
	"proteus/internal/partition"
	"proteus/internal/redolog"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
)

// The engine's layout-change operators (§4.4). Every operation quiesces
// writers with the partition's exclusive lock, performs the physical
// change, updates the metadata directory, and bumps the plan epoch so
// cached plans re-bind.

// classOfLayoutChange maps a layout delta to its accounting class.
func classOfLayoutChange(cur, next storage.Layout) OpClass {
	switch {
	case cur.Format != next.Format:
		return ClassFormatChange
	case cur.Tier != next.Tier:
		return ClassTierChange
	default:
		return ClassSortCompChange
	}
}

// ChangeCopyLayout converts the copy of pid at a site to a new layout
// (format, tier, sort order or compression change).
func (e *Engine) ChangeCopyLayout(pid partition.ID, siteID simnet.SiteID, next storage.Layout) error {
	start := e.clk.Now()
	m, ok := e.Dir.Get(pid)
	if !ok {
		return fmt.Errorf("cluster: unknown partition %d", pid)
	}
	s := e.siteOf(siteID)
	p, err := s.MustPartition(pid)
	if err != nil {
		return err
	}
	cur := p.Layout()
	e.Net.Charge(simnet.ASASite, siteID, 256)

	ls := e.Locks.AcquireAll(nil, []partition.ID{pid})
	// Re-resolve the copy under the lock: a concurrent crash or recovery
	// may have replaced the object we looked up above, and converting a
	// stale copy would strand the change on a dead object.
	if p, err = s.MustPartition(pid); err != nil {
		ls.ReleaseAll()
		return err
	}
	// Flush queued commits so the rebuild-at-Version() conversion below
	// cannot strand staged rows whose install is still in a commit queue.
	e.gc.barrier(m.Master().Site)
	err = p.ChangeLayout(next, s.Factory, p.Version())
	ls.ReleaseAll()
	if err != nil {
		return err
	}
	m.SetReplicaLayout(siteID, next)
	e.Epoch.Bump()
	e.stats.Record(classOfLayoutChange(cur, next), e.clk.Since(start))
	return nil
}

// dropAllReplicas removes every non-master copy of a partition (used when
// repartitioning; adaptation re-adds replicas if beneficial).
func (e *Engine) dropAllReplicas(m *metadata.PartitionMeta) {
	for _, r := range m.Replicas() {
		s := e.siteOf(r.Site)
		s.Repl.Unsubscribe(m.ID)
		s.RemovePartition(m.ID)
		m.RemoveReplica(r.Site)
	}
}

// replaceInDirectory unregisters old partitions and registers new ones
// mastered at the given site.
func (e *Engine) replaceInDirectory(siteID simnet.SiteID, old []*metadata.PartitionMeta, parts []*partition.Partition) {
	for _, m := range old {
		e.siteOf(m.Master().Site).RemovePartition(m.ID)
		e.Dir.Unregister(m.ID)
		e.Broker.DeleteTopic(m.ID)
	}
	for _, p := range parts {
		e.siteOf(siteID).AddPartition(p, true)
		e.Broker.CreateTopic(p.ID)
		e.Dir.Register(p.ID, p.Bounds, metadata.Replica{Site: siteID, Layout: p.Layout()}, p.ZoneMap())
		// The old partitions' topics are gone and the new partitions'
		// rows predate their (empty) topics, so checkpoint immediately:
		// without this a crash before the next checkpoint cycle would
		// lose the repartitioned data.
		e.Broker.SaveCheckpoint(p.ID, redolog.Checkpoint{
			Rows:    p.ExtractAll(storage.Latest),
			Version: p.Version(),
			Offset:  e.Broker.EndOffset(p.ID),
		})
	}
	e.Epoch.Bump()
}

// SplitH splits pid horizontally at row `at` (§4.4).
func (e *Engine) SplitH(pid partition.ID, at schema.RowID) error {
	start := e.clk.Now()
	m, ok := e.Dir.Get(pid)
	if !ok {
		return fmt.Errorf("cluster: unknown partition %d", pid)
	}
	siteID := m.Master().Site
	s := e.siteOf(siteID)
	p, err := s.MustPartition(pid)
	if err != nil {
		return err
	}
	e.Net.Charge(simnet.ASASite, siteID, 256)
	ls := e.Locks.AcquireAll(nil, []partition.ID{pid})
	defer ls.ReleaseAll()
	// A failover or master change while we waited for the lock moves the
	// authoritative copy; splitting the stale one would register the new
	// partitions from outdated data.
	if m.Master().Site != siteID {
		return ErrStalePlan
	}
	if p, err = s.MustPartition(pid); err != nil {
		return err
	}
	e.gc.barrier(siteID) // queued commits must land before the old topic dies

	e.dropAllReplicas(m)
	ids := [2]partition.ID{e.Dir.AllocID(), e.Dir.AllocID()}
	lo, hi, err := partition.SplitHorizontal(p, at, ids, p.Layout(), s.Factory, p.Version())
	if err != nil {
		return err
	}
	e.replaceInDirectory(siteID, []*metadata.PartitionMeta{m}, []*partition.Partition{lo, hi})
	e.stats.Record(ClassPartitionChange, e.clk.Since(start))
	return nil
}

// SplitV splits pid vertically at global column `at` (row splitting, §2.2).
// The write-hot side keeps a row layout; the other side keeps the current
// layout.
func (e *Engine) SplitV(pid partition.ID, at schema.ColID, leftLayout, rightLayout storage.Layout) error {
	start := e.clk.Now()
	m, ok := e.Dir.Get(pid)
	if !ok {
		return fmt.Errorf("cluster: unknown partition %d", pid)
	}
	siteID := m.Master().Site
	s := e.siteOf(siteID)
	p, err := s.MustPartition(pid)
	if err != nil {
		return err
	}
	e.Net.Charge(simnet.ASASite, siteID, 256)
	ls := e.Locks.AcquireAll(nil, []partition.ID{pid})
	defer ls.ReleaseAll()
	// See SplitH: revalidate mastership and the copy under the lock.
	if m.Master().Site != siteID {
		return ErrStalePlan
	}
	if p, err = s.MustPartition(pid); err != nil {
		return err
	}
	e.gc.barrier(siteID) // queued commits must land before the old topic dies

	e.dropAllReplicas(m)
	ids := [2]partition.ID{e.Dir.AllocID(), e.Dir.AllocID()}
	l, r, err := partition.SplitVertical(p, at, ids, leftLayout, rightLayout, s.Factory, p.Version())
	if err != nil {
		return err
	}
	e.replaceInDirectory(siteID, []*metadata.PartitionMeta{m}, []*partition.Partition{l, r})
	e.stats.Record(ClassPartitionChange, e.clk.Since(start))
	return nil
}

// MergeH merges two row-adjacent partitions mastered at the same site.
func (e *Engine) MergeH(a, b partition.ID) error {
	start := e.clk.Now()
	ma, ok := e.Dir.Get(a)
	if !ok {
		return fmt.Errorf("cluster: unknown partition %d", a)
	}
	mb, ok := e.Dir.Get(b)
	if !ok {
		return fmt.Errorf("cluster: unknown partition %d", b)
	}
	if ma.Master().Site != mb.Master().Site {
		return fmt.Errorf("cluster: merge requires co-sited masters (%d vs %d)", ma.Master().Site, mb.Master().Site)
	}
	siteID := ma.Master().Site
	s := e.siteOf(siteID)
	pa, err := s.MustPartition(a)
	if err != nil {
		return err
	}
	pb, err := s.MustPartition(b)
	if err != nil {
		return err
	}
	e.Net.Charge(simnet.ASASite, siteID, 256)
	ls := e.Locks.AcquireAll(nil, []partition.ID{a, b})
	defer ls.ReleaseAll()
	// See SplitH: revalidate mastership and the copies under the lock.
	if ma.Master().Site != siteID || mb.Master().Site != siteID {
		return ErrStalePlan
	}
	if pa, err = s.MustPartition(a); err != nil {
		return err
	}
	if pb, err = s.MustPartition(b); err != nil {
		return err
	}
	e.gc.barrier(siteID) // queued commits must land before the old topics die

	e.dropAllReplicas(ma)
	e.dropAllReplicas(mb)
	merged, err := partition.MergeHorizontal(pa, pb, e.Dir.AllocID(), pa.Layout(), s.Factory, storage.Latest)
	if err != nil {
		return err
	}
	e.replaceInDirectory(siteID, []*metadata.PartitionMeta{ma, mb}, []*partition.Partition{merged})
	e.stats.Record(ClassPartitionChange, e.clk.Since(start))
	return nil
}

// AddReplicaOp snapshots pid's master and installs a replica at a site.
func (e *Engine) AddReplicaOp(pid partition.ID, siteID simnet.SiteID, l storage.Layout) error {
	start := e.clk.Now()
	m, ok := e.Dir.Get(pid)
	if !ok {
		return fmt.Errorf("cluster: unknown partition %d", pid)
	}
	if m.HasCopyAt(siteID) {
		return fmt.Errorf("cluster: partition %d already has a copy at site %d", pid, siteID)
	}
	// Snapshot under a shared lock so the offset and data are consistent.
	ls := e.Locks.AcquireAll([]partition.ID{pid}, nil)
	err := e.installReplica(m, siteID, l)
	ls.ReleaseAll()
	if err != nil {
		return err
	}
	e.Net.Charge(m.Master().Site, siteID, 1024)
	e.Epoch.Bump()
	e.stats.Record(ClassReplicationChange, e.clk.Since(start))
	return nil
}

// RemoveReplicaOp drops the replica of pid at a site (§4.4).
func (e *Engine) RemoveReplicaOp(pid partition.ID, siteID simnet.SiteID) error {
	start := e.clk.Now()
	m, ok := e.Dir.Get(pid)
	if !ok {
		return fmt.Errorf("cluster: unknown partition %d", pid)
	}
	if m.Master().Site == siteID {
		return fmt.Errorf("cluster: cannot remove the master copy of %d", pid)
	}
	if !m.RemoveReplica(siteID) {
		return fmt.Errorf("cluster: no replica of %d at site %d", pid, siteID)
	}
	s := e.siteOf(siteID)
	s.Repl.Unsubscribe(pid)
	s.RemovePartition(pid)
	e.Net.Charge(simnet.ASASite, siteID, 128)
	e.Epoch.Bump()
	e.stats.Record(ClassReplicationChange, e.clk.Since(start))
	return nil
}

// ChangeMasterOp moves pid's mastership to a new site (§4.4): the target
// catches up to the old master's version, new update transactions route to
// it, and the old master becomes a replica.
func (e *Engine) ChangeMasterOp(pid partition.ID, newSite simnet.SiteID) error {
	start := e.clk.Now()
	m, ok := e.Dir.Get(pid)
	if !ok {
		return fmt.Errorf("cluster: unknown partition %d", pid)
	}
	oldMaster := m.Master()
	if oldMaster.Site == newSite {
		return nil
	}
	if e.siteOf(newSite).Down() {
		return fmt.Errorf("%w: site %d", faults.ErrSiteDown, newSite)
	}
	if e.siteOf(oldMaster.Site).Down() {
		return fmt.Errorf("%w: site %d", faults.ErrSiteDown, oldMaster.Site)
	}
	// Block new updates while mastership moves, and flush the old
	// master's queued commits so the version the target catches up to
	// covers every committed write.
	ls := e.Locks.AcquireAll(nil, []partition.ID{pid})
	defer ls.ReleaseAll()
	// A failover while we waited for the lock may have moved mastership
	// already; draining and catching up against the copy we resolved
	// before the lock would hand mastership to a stale version.
	if m.Master().Site != oldMaster.Site {
		return ErrStalePlan
	}
	e.gc.barrier(oldMaster.Site)

	if !m.HasCopyAt(newSite) {
		if err := e.installReplica(m, newSite, oldMaster.Layout); err != nil {
			return err
		}
	}
	dst := e.siteOf(newSite)
	src := e.siteOf(oldMaster.Site)
	srcPart, err := src.MustPartition(pid)
	if err != nil {
		return err
	}
	// The new master must apply all updates from the previous master.
	if dst.Repl.Subscribed(pid) {
		if _, err := dst.Repl.CatchUp(pid, srcPart.Version()); err != nil {
			return err
		}
		dst.Repl.Unsubscribe(pid)
	}
	dstPart, err := dst.MustPartition(pid)
	if err != nil {
		return err
	}
	dstPart.SetVersion(srcPart.Version())
	dst.SetMaster(pid, true)
	src.SetMaster(pid, false)
	// Old master becomes a replica from the current log position.
	src.Repl.Subscribe(pid, srcPart, e.Broker.EndOffset(pid))

	var newReplicas []metadata.Replica
	for _, r := range m.Replicas() {
		if r.Site != newSite {
			newReplicas = append(newReplicas, r)
		}
	}
	// Rebuild replica list: drop target from replicas, add old master.
	for _, r := range m.Replicas() {
		m.RemoveReplica(r.Site)
	}
	dl, _ := dst.Partition(pid)
	m.SetMaster(metadata.Replica{Site: newSite, Layout: dl.Layout()})
	for _, r := range newReplicas {
		m.AddReplica(r)
	}
	m.AddReplica(metadata.Replica{Site: oldMaster.Site, Layout: oldMaster.Layout})

	e.Net.Charge(oldMaster.Site, newSite, 512)
	e.Net.Charge(newSite, oldMaster.Site, 128)
	e.Epoch.Bump()
	e.stats.Record(ClassMasterChange, e.clk.Since(start))
	return nil
}
