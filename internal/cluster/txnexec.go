package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"proteus/internal/admission"
	"proteus/internal/cost"
	"proteus/internal/exec"
	"proteus/internal/faults"
	"proteus/internal/forecast"
	"proteus/internal/metadata"
	"proteus/internal/partition"
	"proteus/internal/plan"
	"proteus/internal/query"
	"proteus/internal/redolog"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/txn"
	"proteus/internal/types"
	"proteus/internal/vclock"
)

// Session is one client's connection; it carries the SSSI watermark.
type Session struct {
	s *txn.Session
}

// NewSession opens a client session.
func (e *Engine) NewSession() *Session {
	return &Session{s: txn.NewSession()}
}

// snapshotFor builds a consistent SI snapshot covering pids: current
// master versions, raised to the session watermark (SSSI) and closed under
// commit dependencies (§4.2).
func (e *Engine) snapshotFor(pids []partition.ID, sess *Session) txn.VersionVector {
	snap := make(txn.VersionVector, len(pids))
	for _, pid := range pids {
		m, ok := e.Dir.Get(pid)
		if !ok {
			continue
		}
		// Read the version from a live copy: with the master down, a
		// replica's applied version still defines a serviceable snapshot.
		rep, ok := e.liveCopy(m)
		if !ok {
			continue
		}
		if p, ok := e.siteOf(rep.Site).Partition(pid); ok {
			snap[pid] = p.Version()
		}
	}
	if sess != nil {
		for pid, v := range sess.s.Watermark() {
			if cur, tracked := snap[pid]; tracked && v > cur {
				snap[pid] = v
			}
		}
	}
	return e.Deps.Close(snap)
}

// readCopy reads one row piece at the snapshot version from the chosen
// copy, waiting on replication freshness when the copy is a replica.
func (e *Engine) readCopy(m *metadata.PartitionMeta, copyAt metadata.Replica, coord simnet.SiteID,
	row schema.RowID, cols []schema.ColID, snapVer uint64) (schema.Row, bool, []cost.Observation, error) {

	var obs []cost.Observation
	s := e.siteOf(copyAt.Site)
	if s.Down() {
		// The planned copy's site crashed: redirect to any live copy.
		rep, ok := e.liveCopy(m)
		if !ok {
			return schema.Row{}, false, obs, fmt.Errorf("%w: partition %d has no live copy", faults.ErrSiteDown, m.ID)
		}
		s = e.siteOf(rep.Site)
	}
	p, ok := s.Partition(m.ID)
	if !ok {
		// Stale plan decision: fall back to the master copy.
		master := m.Master()
		s = e.siteOf(master.Site)
		p, ok = s.Partition(m.ID)
		if !ok {
			return schema.Row{}, false, obs, fmt.Errorf("%w: partition %d unreadable", ErrStalePlan, m.ID)
		}
	}
	if !s.IsMaster(m.ID) && p.Version() < snapVer {
		start := e.clk.Now()
		if _, err := s.Repl.CatchUp(m.ID, snapVer); err != nil {
			// The replica cannot reach the snapshot (broker partitioned
			// away, or catch-up timed out): surface the typed error rather
			// than silently reading stale data.
			return schema.Row{}, false, obs, err
		}
		obs = append(obs, cost.Observation{
			Op:       cost.OpWaitUpdates,
			Features: cost.WaitFeatures(int(snapVer - p.Version() + 1)),
			Latency:  e.clk.Since(start),
		})
	}
	r, found, o := exec.PointRead(p, row, cols, snapVer)
	obs = append(obs, o)
	if s.ID != coord {
		var d time.Duration
		err := e.Faults.Retry(e.sendBackoff(), func() error {
			dd, err := e.Net.Send(coord, s.ID, 64)
			if err != nil {
				return err
			}
			d += dd
			dd, err = e.Net.Send(s.ID, coord, 64+32*len(cols))
			d += dd
			return err
		})
		if err != nil {
			return schema.Row{}, false, obs, err
		}
		obs = append(obs, cost.Observation{
			Op:       cost.OpNetwork,
			Features: cost.NetworkFeatures(e.siteOf(coord).CPU(), s.CPU(), 64, 64+32*len(cols)),
			Latency:  d,
		})
	}
	return r, found, obs, nil
}

// coordinatorFor picks the transaction's coordinating site: the first
// write master, else the first read copy.
func coordinatorFor(tp *plan.TxnPlan) simnet.SiteID {
	for _, b := range tp.Bindings {
		if b.Op.Kind != query.OpRead {
			return b.Copies[0].Site
		}
	}
	if len(tp.Bindings) > 0 {
		return tp.Bindings[0].Copies[0].Site
	}
	return 0
}

// ExecuteTxn runs an OLTP transaction under SSSI, returning the values
// read (one tuple per read op, in op order). Retriable failures — a plan
// invalidated by a concurrent layout change, a crashed site awaiting
// failover, a dropped message or transient partition — are re-planned and
// retried with seeded full-jitter backoff until the deadline (the
// context's, if set, else the configured operation deadline), after which
// the typed faults.ErrTimeout surfaces. Cancelling ctx aborts between
// attempts.
func (e *Engine) ExecuteTxn(ctx context.Context, sess *Session, t *query.Txn) (exec.Rel, error) {
	var rel exec.Rel
	var err error
	// Admission happens once per transaction, before the retry loop, at
	// OLTP priority: queued commits drain ahead of queued scans, and a
	// shed (typed faults.ErrOverload) means the transaction never started
	// — a shed write is never acknowledged.
	if err = e.admit(ctx, admission.PriorityOLTP); err != nil {
		return rel, err
	}
	deadline := e.queryDeadline(ctx)
	delay := e.retryBase()
	for {
		rel, err = e.executeTxnOnce(ctx, sess, t)
		if err == nil || !e.retriable(err) {
			return rel, err
		}
		if e.clk.Now().After(deadline) {
			return rel, e.deadlineErr(err)
		}
		e.cntRetries.Inc()
		if serr := e.sleepRetry(ctx, e.Faults.Jitter(delay)); serr != nil {
			return rel, serr
		}
		if delay *= 2; delay > maxRetryDelay {
			delay = maxRetryDelay
		}
	}
}

func (e *Engine) executeTxnOnce(ctx context.Context, sess *Session, t *query.Txn) (exec.Rel, error) {
	var err error
	if err = ctx.Err(); err != nil {
		return exec.Rel{}, err
	}
	planStart := e.clk.Now()
	tp, err := e.Planner.PlanTxn(t)
	if err != nil {
		return exec.Rel{}, err
	}
	e.stats.Record(ClassOLTPPlan, e.clk.Since(planStart))
	e.recordTxnAccesses(tp)

	coord := coordinatorFor(tp)
	// Dispatch from the ASA to the coordinating site.
	if _, err := e.Net.Send(simnet.ASASite, coord, 128+32*len(t.Ops)); err != nil {
		return exec.Rel{}, err
	}

	var result exec.Rel
	var execErr error
	start := e.clk.Now()
	// The in-flight marker covers queueing for an OLTP pool slot too:
	// morsel feeders at the site start yielding as soon as a transaction
	// is headed its way, not only once a worker picks it up.
	e.oltpEnter(coord)
	err = e.siteOf(coord).RunOLTP(func() {
		result, execErr = e.runTxnAt(ctx, coord, sess, t, tp)
	})
	e.oltpExit(coord)
	if err != nil {
		return exec.Rel{}, err
	}
	d := e.clk.Since(start)
	if execErr != nil {
		e.stats.RecordAbort()
		return exec.Rel{}, execErr
	}
	e.stats.Record(ClassOLTP, d)
	if e.Advisor != nil {
		e.Advisor.onTxnExecuted(tp, d)
	}
	return result, nil
}

func (e *Engine) runTxnAt(ctx context.Context, coord simnet.SiteID, sess *Session, t *query.Txn, tp *plan.TxnPlan) (exec.Rel, error) {
	coordSite := e.siteOf(coord)

	allPids := append(append([]partition.ID{}, tp.ReadPIDs...), tp.WritePIDs...)
	snap := e.snapshotFor(allPids, sess)

	// Reads run lock-free under snapshot isolation; exclusive partition
	// locks are taken only for the write/commit phase below, so remote
	// read latency does not serialize hot partitions. Independent keyed
	// reads execute in parallel so remote round trips overlap.
	type readSlot struct {
		tuple []types.Value
		found bool
		err   error
	}
	var readIdx []int
	for bi, b := range tp.Bindings {
		if b.Op.Kind == query.OpRead {
			readIdx = append(readIdx, bi)
		}
	}
	slots := make([]readSlot, len(readIdx))
	var rwg sync.WaitGroup
	for si, bi := range readIdx {
		si, b := si, tp.Bindings[bi]
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			tuple := make([]types.Value, len(b.Op.Cols))
			found := false
			for i, m := range b.Pieces {
				cols, valIdx := plan.PieceCols(b.Op, m)
				if len(cols) == 0 {
					continue
				}
				r, ok, obs, err := e.readCopy(m, b.Copies[i], coord, b.Op.Row, cols, snap[m.ID])
				for _, o := range obs {
					coordSite.Observe(o)
				}
				if err != nil {
					slots[si].err = err
					return
				}
				if !ok {
					continue
				}
				found = true
				for j, vi := range valIdx {
					tuple[vi] = r.Vals[j]
				}
			}
			slots[si].tuple, slots[si].found = tuple, found
		}()
	}
	rwg.Wait()
	result := exec.Rel{}
	for _, sl := range slots {
		if sl.err != nil {
			return exec.Rel{}, sl.err
		}
		if sl.found {
			result.Tuples = append(result.Tuples, sl.tuple)
		} else {
			result.Tuples = append(result.Tuples, nil)
		}
	}

	// Writes: acquire exclusive locks on the write set in global order
	// (no deadlocks), then group by master site and apply with 2PC when
	// more than one site is involved. The locks cover only version
	// reservation and staging; the redo append and version install run in
	// the group-commit flusher after the locks are released, and the
	// transaction acks once its flush completes.
	if len(tp.WritePIDs) > 0 {
		lockStart := e.clk.Now()
		ls := e.Locks.AcquireAll(nil, tp.WritePIDs)
		// Aggregate contention across the whole write set — sampling only
		// the first partition would blind the ASA's lock cost model to
		// multi-partition hot spots.
		var waiters int
		var recent time.Duration
		for _, pid := range tp.WritePIDs {
			w, r := e.Locks.Contention(pid)
			waiters += w
			if r > recent {
				recent = r
			}
		}
		coordSite.Observe(cost.Observation{
			Op:       cost.OpLock,
			Features: cost.LockFeatures(waiters, recent),
			Latency:  e.clk.Since(lockStart),
		})
		finish, err := e.applyWrites(coord, tp, sess)
		ls.ReleaseAll()
		if err != nil {
			return exec.Rel{}, err
		}
		if finish != nil {
			if err := finish(ctx); err != nil {
				return exec.Rel{}, err
			}
		}
	}

	// SSSI: the session must observe everything it read.
	readVec := make(txn.VersionVector)
	for _, pid := range tp.ReadPIDs {
		readVec[pid] = snap[pid]
	}
	sess.s.Observe(readVec)
	return result, nil
}

// siteWrites groups a transaction's write ops per master site.
type siteWrites struct {
	site simnet.SiteID
	ops  []writeOp
}

type writeOp struct {
	op    query.Op
	meta  *metadata.PartitionMeta
	cols  []schema.ColID
	valIx []int
	// entry is the op's redo entry, built once up front; its Vals (and
	// Cols, converted to partition-local IDs) are shared with the staging
	// apply in writeParticipant.Commit instead of being re-allocated there.
	entry redolog.Entry
}

// buildEntries fills each op's redo entry, packing all of a write group's
// values (and local column IDs) into two shared arenas so a transaction
// allocates O(1) slices per site rather than O(ops).
func buildEntries(sw *siteWrites) {
	nVals, nCols := 0, 0
	for _, w := range sw.ops {
		if w.op.Kind != query.OpDelete {
			nVals += len(w.cols)
		}
		if w.op.Kind == query.OpUpdate {
			nCols += len(w.cols)
		}
	}
	valArena := make([]types.Value, 0, nVals)
	colArena := make([]schema.ColID, 0, nCols)
	for i := range sw.ops {
		w := &sw.ops[i]
		switch w.op.Kind {
		case query.OpInsert:
			base := len(valArena)
			for _, vi := range w.valIx {
				valArena = append(valArena, w.op.Vals[vi])
			}
			w.entry = redolog.Entry{Op: redolog.OpInsert, Row: w.op.Row,
				Vals: valArena[base:len(valArena):len(valArena)]}
		case query.OpDelete:
			w.entry = redolog.Entry{Op: redolog.OpDelete, Row: w.op.Row}
		default:
			cbase := len(colArena)
			for _, c := range w.cols {
				colArena = append(colArena, w.meta.Bounds.LocalCol(c))
			}
			base := len(valArena)
			for _, vi := range w.valIx {
				valArena = append(valArena, w.op.Vals[vi])
			}
			w.entry = redolog.Entry{Op: redolog.OpUpdate, Row: w.op.Row,
				Cols: colArena[cbase:len(colArena):len(colArena)],
				Vals: valArena[base:len(valArena):len(valArena)]}
		}
	}
}

// applyWrites runs the write/commit phase under the caller-held exclusive
// locks: group ops by master site, reserve versions, stage via 2PC, and
// either commit inline (DisableGroupCommit) or enqueue the redo records on
// the master sites' commit queues. In the latter case it returns a finish
// function the caller must invoke after releasing the locks; it blocks
// until every site's flush completes (the durability point), then records
// the commit dependencies and the session watermark. A cancelled or
// expired ctx unblocks the wait with ctx.Err(): the flush itself still
// completes (the groups are past the commit point), only the waiter
// abandons — so the write may be durable without ever being acked.
func (e *Engine) applyWrites(coord simnet.SiteID, tp *plan.TxnPlan, sess *Session) (func(context.Context) error, error) {
	grouped := !e.cfg.DisableGroupCommit
	bySite := make(map[simnet.SiteID]*siteWrites, 2)
	for _, b := range tp.Bindings {
		if b.Op.Kind == query.OpRead {
			continue
		}
		for _, m := range b.Pieces {
			cols, valIx := plan.PieceCols(b.Op, m)
			if len(cols) == 0 && b.Op.Kind == query.OpUpdate {
				continue
			}
			st := m.Master().Site
			sw, ok := bySite[st]
			if !ok {
				sw = &siteWrites{site: st}
				bySite[st] = sw
			}
			sw.ops = append(sw.ops, writeOp{op: b.Op, meta: m, cols: cols, valIx: valIx})
		}
	}

	// Reserve the new version of every written partition. With group
	// commit the installed version lags the reservation (the flusher
	// installs after the locks drop), so reservations come from the
	// partition's reservation counter; version gaps from aborts are
	// harmless — every consumer compares versions, none counts them.
	versions := make(txn.VersionVector, len(tp.WritePIDs))
	masters := make(map[partition.ID]*partition.Partition, len(tp.WritePIDs))
	for _, sw := range bySite {
		buildEntries(sw)
		for _, w := range sw.ops {
			if _, ok := versions[w.meta.ID]; ok {
				continue
			}
			p, ok := e.siteOf(sw.site).Partition(w.meta.ID)
			if !ok {
				return nil, fmt.Errorf("%w: write partition %d moved", ErrStalePlan, w.meta.ID)
			}
			masters[w.meta.ID] = p
			if grouped {
				versions[w.meta.ID] = p.ReserveNext()
			} else {
				versions[w.meta.ID] = p.Version() + 1
			}
		}
	}

	// Two-phase commit across the write sites (§4.3).
	participants := make([]txn.Participant, 0, len(bySite))
	for _, sw := range bySite {
		participants = append(participants, &writeParticipant{
			e: e, coord: coord, sw: sw, versions: versions, masters: masters,
			inline: !grouped,
		})
	}
	c := &txn.Coordinator{OnePhase: true}
	commitStart := e.clk.Now()
	if err := c.Commit(e.nextTxnID(), participants); err != nil {
		return nil, err
	}

	// One redo record per partition, carrying the co-committed dependency
	// vector, grouped by master site for the commit queues.
	entriesByPID := make(map[partition.ID][]redolog.Entry, len(tp.WritePIDs))
	for _, sw := range bySite {
		for _, w := range sw.ops {
			entriesByPID[w.meta.ID] = append(entriesByPID[w.meta.ID], w.entry)
		}
	}
	record := func(pid partition.ID) redolog.Record {
		deps := make(map[partition.ID]uint64, len(versions)-1)
		for q, v := range versions {
			if q != pid {
				deps[q] = v
			}
		}
		return redolog.Record{Partition: pid, Version: versions[pid], Entries: entriesByPID[pid], Deps: deps}
	}

	finishCommit := func() {
		e.Deps.RecordCommit(versions)
		sess.s.Observe(versions)
		// Commit cost: partitions read/written and sites involved.
		e.siteOf(coord).Observe(cost.Observation{
			Op:       cost.OpCommit,
			Features: cost.CommitFeatures(len(tp.ReadPIDs), len(tp.WritePIDs), len(bySite)),
			Latency:  e.clk.Since(commitStart),
		})
	}

	if !grouped {
		// Legacy inline commit: append and install under the locks.
		for pid := range entriesByPID {
			e.Broker.Append(record(pid))
			masters[pid].SetVersion(versions[pid])
		}
		finishCommit()
		return nil, nil
	}

	// Group commit: one flush group per master site, a shared completion
	// channel, and the wait deferred until after the locks are released.
	nGroups := 0
	flushed := make(chan struct{}, len(bySite))
	for _, sw := range bySite {
		fg := flushGroup{coord: coord, done: flushed}
		seen := make(map[partition.ID]struct{}, len(sw.ops))
		for _, w := range sw.ops {
			pid := w.meta.ID
			if _, ok := seen[pid]; ok {
				continue
			}
			seen[pid] = struct{}{}
			fg.recs = append(fg.recs, record(pid))
			fg.installs = append(fg.installs, versionInstall{p: masters[pid], ver: versions[pid]})
		}
		e.gc.enqueue(sw.site, fg)
		nGroups++
	}
	return func(ctx context.Context) error {
		// The flush that resolves this wait is kicked by arrivals or the
		// linger timer — virtual-time progress — so a simulated clock may
		// count the waiter as parked.
		release := vclock.Park(e.clk)
		defer release()
		// flushed is buffered for every group, so a flusher never blocks
		// signalling a waiter that already abandoned.
		for i := 0; i < nGroups; i++ {
			select {
			case <-flushed:
			case <-ctx.Done():
				// The groups are past the commit point: every flusher will
				// still durably install its versions. The dependency record
				// must not abandon with the waiter — without it, snapshotFor
				// could observe one partition's new version without its
				// co-committed siblings, a torn cross-partition snapshot
				// visible to every session. Detach: drain the remaining
				// signals, then record the commit (Session and the tracker
				// are mutex-guarded, so the late finish is safe).
				remaining := nGroups - i
				go func() {
					for j := 0; j < remaining; j++ {
						<-flushed
					}
					finishCommit()
				}()
				return ctx.Err()
			}
		}
		finishCommit()
		return nil
	}, nil
}

// writeParticipant adapts one site's write group to the 2PC interface.
type writeParticipant struct {
	e        *Engine
	coord    simnet.SiteID
	sw       *siteWrites
	versions txn.VersionVector
	masters  map[partition.ID]*partition.Partition
	// inline marks the legacy path (group commit disabled): the commit
	// decision's round trip is charged per transaction here instead of
	// batched onto the flush.
	inline bool
}

// Prepare validates the ops (and charges the prepare round trip). A
// fault on the prepare round trip aborts the transaction before the
// commit point — no participant has applied anything yet — and the
// typed error drives the coordinator's retry.
func (wp *writeParticipant) Prepare(txnID uint64) error {
	if wp.sw.site != wp.coord {
		if err := wp.e.Faults.Retry(wp.e.sendBackoff(), func() error {
			if _, err := wp.e.Net.Send(wp.coord, wp.sw.site, 128); err != nil {
				return err
			}
			_, err := wp.e.Net.Send(wp.sw.site, wp.coord, 32)
			return err
		}); err != nil {
			return err
		}
	}
	for _, w := range wp.sw.ops {
		p := wp.masters[w.meta.ID]
		switch w.op.Kind {
		case query.OpUpdate, query.OpDelete:
			if _, ok := p.Get(w.op.Row, nil, storage.Latest); !ok {
				return fmt.Errorf("cluster: row %d missing in partition %d", w.op.Row, w.meta.ID)
			}
		case query.OpInsert:
			if _, ok := p.Get(w.op.Row, nil, storage.Latest); ok {
				return fmt.Errorf("cluster: duplicate row %d in partition %d", w.op.Row, w.meta.ID)
			}
		}
	}
	return nil
}

// Commit applies the staged writes at the reserved versions. Past the
// commit point network faults are absorbed (Charge), not surfaced: every
// prepared participant must apply, or participants would diverge on a
// decided transaction.
func (wp *writeParticipant) Commit(txnID uint64) error {
	if wp.inline && wp.sw.site != wp.coord {
		wp.e.Net.Charge(wp.coord, wp.sw.site, 128)
		wp.e.Net.Charge(wp.sw.site, wp.coord, 32)
	}
	s := wp.e.siteOf(wp.sw.site)
	for _, w := range wp.sw.ops {
		p := wp.masters[w.meta.ID]
		ver := wp.versions[w.meta.ID]
		var obs cost.Observation
		var err error
		switch w.op.Kind {
		case query.OpInsert:
			obs, err = exec.Insert(p, schema.Row{ID: w.op.Row, Vals: w.entry.Vals}, ver)
		case query.OpDelete:
			obs, err = exec.Delete(p, w.op.Row, ver)
		default:
			obs, err = exec.Update(p, w.op.Row, w.cols, w.entry.Vals, ver)
		}
		if err != nil {
			return err
		}
		s.Observe(obs)
	}
	// TiDB mode: synchronous Raft replication to followers per write.
	if wp.e.cfg.Mode == ModeTiDB {
		for f := 0; f < wp.e.cfg.RaftFollowers; f++ {
			follower := simnet.SiteID((int(wp.sw.site) + 1 + f) % len(wp.e.Sites))
			if follower != wp.sw.site {
				wp.e.Net.Charge(wp.sw.site, follower, 256)
				wp.e.Net.Charge(follower, wp.sw.site, 32)
			}
		}
	}
	return nil
}

// Abort discards (nothing staged before Commit in this engine).
func (wp *writeParticipant) Abort(txnID uint64) error { return nil }

// recordTxnAccesses updates trackers, co-access edges and column stats.
func (e *Engine) recordTxnAccesses(tp *plan.TxnPlan) {
	var pids []partition.ID
	for _, b := range tp.Bindings {
		for _, m := range b.Pieces {
			if b.Op.Kind == query.OpRead {
				m.Tracker.Record(forecast.PointRead, 1)
				e.Dir.RecordColumnAccess(m.Bounds.Table, b.Op.Cols, false)
			} else {
				m.Tracker.Record(forecast.Update, 1)
				e.Dir.RecordColumnAccess(m.Bounds.Table, b.Op.Cols, true)
			}
			pids = append(pids, m.ID)
		}
	}
	// Pairwise co-access (bounded).
	if len(pids) > 1 && len(pids) <= 8 {
		for i, a := range pids {
			if ma, ok := e.Dir.Get(a); ok {
				for j, bpid := range pids {
					if i != j {
						ma.RecordCoAccess(bpid, 1)
					}
				}
			}
		}
	}
}
