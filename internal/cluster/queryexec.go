package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"proteus/internal/admission"
	"proteus/internal/cost"
	"proteus/internal/exec"
	"proteus/internal/faults"
	"proteus/internal/forecast"
	"proteus/internal/metadata"
	"proteus/internal/partition"
	"proteus/internal/plan"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/txn"
	"proteus/internal/types"
	"proteus/internal/vclock"
)

// ErrStalePlan reports that a physical plan referenced a partition copy
// that a concurrent layout change moved or removed; the request re-plans
// against the new layout epoch and retries.
var ErrStalePlan = errors.New("cluster: physical plan stale after layout change")

// ExecuteQuery runs an OLAP query tree, producing the final relation at
// the coordinating site (§4.3, Figure 7b). Retriable failures — a plan
// invalidated by a concurrent layout change, a crashed site awaiting
// failover, a dropped message or transient partition — are re-planned and
// retried with seeded full-jitter backoff until the deadline (the
// context's, if set, else the configured operation deadline), after which
// the typed faults.ErrTimeout surfaces. Cancelling ctx aborts the query,
// closing the morsel feeds of any in-flight parallel scan.
func (e *Engine) ExecuteQuery(ctx context.Context, sess *Session, q *query.Query) (exec.Rel, error) {
	var rel exec.Rel
	var err error
	// Admission happens once per client-visible operation, before the
	// retry loop: a shed is terminal (never internally retried) and an
	// admitted operation's retries ride on the already-granted token.
	if err = e.admit(ctx, admission.PriorityOLAP); err != nil {
		return rel, err
	}
	deadline := e.queryDeadline(ctx)
	delay := e.retryBase()
	for {
		rel, err = e.executeQueryOnce(ctx, sess, q)
		if err == nil || !e.retriable(err) {
			return rel, err
		}
		if e.clk.Now().After(deadline) {
			return rel, e.deadlineErr(err)
		}
		e.cntRetries.Inc()
		if serr := e.sleepRetry(ctx, e.Faults.Jitter(delay)); serr != nil {
			return rel, serr
		}
		if delay *= 2; delay > maxRetryDelay {
			delay = maxRetryDelay
		}
	}
}

// queryDeadline is the retry cutoff: the context's deadline when one is
// set, else now + the configured operation deadline.
func (e *Engine) queryDeadline(ctx context.Context) time.Time {
	if d, ok := ctx.Deadline(); ok {
		return d
	}
	return e.clk.Now().Add(e.opDeadline())
}

// sleepRetry waits out a backoff delay, aborting early when ctx ends.
func (e *Engine) sleepRetry(ctx context.Context, d time.Duration) error {
	return vclock.SleepCtx(ctx, e.clk, d)
}

func (e *Engine) executeQueryOnce(ctx context.Context, sess *Session, q *query.Query) (exec.Rel, error) {
	if err := ctx.Err(); err != nil {
		return exec.Rel{}, err
	}
	planStart := e.clk.Now()
	pn, err := e.Planner.PlanQuery(q)
	if err != nil {
		return exec.Rel{}, err
	}
	e.stats.Record(ClassOLAPPlan, e.clk.Since(planStart))

	pids := collectPIDs(pn)
	snap := e.snapshotFor(pids, sess)
	coord, err := e.pickCoordinator(pn)
	if err != nil {
		return exec.Rel{}, err
	}
	if _, err := e.Net.Send(simnet.ASASite, coord, 256); err != nil {
		return exec.Rel{}, err
	}
	e.recordQueryAccesses(pn)

	var result exec.Rel
	var execErr error
	start := e.clk.Now()
	if err := e.siteOf(coord).RunOLAP(func() {
		result, execErr = e.evalRoot(ctx, pn, snap, coord, q.Limit)
	}); err != nil {
		return exec.Rel{}, err
	}
	d := e.clk.Since(start)
	if execErr != nil {
		return exec.Rel{}, execErr
	}
	e.stats.Record(ClassOLAP, d)

	readVec := make(txn.VersionVector, len(pids))
	for _, pid := range pids {
		readVec[pid] = snap[pid]
	}
	sess.s.Observe(readVec)
	if e.Advisor != nil {
		e.Advisor.onQueryExecuted(pn, d)
	}
	return result, nil
}

// evalRoot evaluates the plan root, applying the query's LIMIT. A
// morsel-eligible scan root pushes the limit into the executor — morsel
// scheduling stops once enough rows exist; any other root materializes and
// truncates.
func (e *Engine) evalRoot(ctx context.Context, pn plan.PNode, snap txn.VersionVector, coord simnet.SiteID, limit int) (exec.Rel, error) {
	if ps, ok := pn.(*plan.PScan); ok && e.morselEligible(ps) {
		return e.morselGather(ctx, ps, snap, coord, limit)
	}
	rel, err := e.evalNode(ctx, pn, snap, coord)
	if err != nil {
		return rel, err
	}
	if limit > 0 && len(rel.Tuples) > limit {
		rel.Tuples = rel.Tuples[:limit]
	}
	return rel, nil
}

// scatter runs n indexed tasks concurrently with bounded parallelism,
// cancelling the remainder as soon as any task fails. It waits for every
// launched task to exit (they may write into caller-owned slots) and
// returns the first error. Tasks receive a context derived from ctx that
// is cancelled on the first failure.
func (e *Engine) scatter(ctx context.Context, n int, task func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	limit := 2 * runtime.GOMAXPROCS(0)
	if n < limit {
		limit = n
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	var once sync.Once
	var firstErr error
	for i := 0; i < n; i++ {
		if sctx.Err() != nil {
			break // first error already cancelled; stop launching
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if sctx.Err() != nil {
				return
			}
			if err := task(sctx, i); err != nil {
				once.Do(func() {
					firstErr = err
					cancel()
				})
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// collectPIDs gathers every partition a plan touches.
func collectPIDs(n plan.PNode) []partition.ID {
	seen := map[partition.ID]bool{}
	var out []partition.ID
	var walk func(plan.PNode)
	walk = func(n plan.PNode) {
		switch v := n.(type) {
		case *plan.PScan:
			for _, seg := range v.Segments {
				for _, p := range seg.Pieces {
					if !seen[p.Meta.ID] {
						seen[p.Meta.ID] = true
						out = append(out, p.Meta.ID)
					}
				}
			}
		case *plan.PJoin:
			walk(v.Left)
			walk(v.Right)
		case *plan.PAgg:
			walk(v.Child)
		}
	}
	walk(n)
	return out
}

// pickCoordinator picks the live site hosting the most scanned pieces.
// Sites that are down are skipped (graceful degradation); if every site
// is down the typed error surfaces instead of dispatching into a crash.
func (e *Engine) pickCoordinator(n plan.PNode) (simnet.SiteID, error) {
	counts := map[simnet.SiteID]int{}
	var walk func(plan.PNode)
	walk = func(n plan.PNode) {
		switch v := n.(type) {
		case *plan.PScan:
			for _, seg := range v.Segments {
				for _, p := range seg.Pieces {
					counts[p.Copy.Site]++
				}
			}
		case *plan.PJoin:
			walk(v.Left)
			walk(v.Right)
		case *plan.PAgg:
			walk(v.Child)
		}
	}
	walk(n)
	best, bestN := simnet.SiteID(0), -1
	for s, n := range counts {
		if e.siteOf(s).Down() {
			continue
		}
		if n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	if bestN >= 0 {
		return best, nil
	}
	// No planned site is up: coordinate from any live site.
	for _, s := range e.Sites {
		if !s.Down() {
			return s.ID, nil
		}
	}
	return 0, fmt.Errorf("%w: no live site to coordinate query", faults.ErrSiteDown)
}

// recordQueryAccesses updates scan trackers, column stats and join
// co-access edges.
func (e *Engine) recordQueryAccesses(n plan.PNode) {
	switch v := n.(type) {
	case *plan.PScan:
		for _, seg := range v.Segments {
			for _, p := range seg.Pieces {
				p.Meta.Tracker.Record(forecast.Scan, 1)
			}
		}
		e.Dir.RecordColumnAccess(v.Table, v.Cols, false)
	case *plan.PJoin:
		e.recordQueryAccesses(v.Left)
		e.recordQueryAccesses(v.Right)
		lp, rp := collectPIDs(v.Left), collectPIDs(v.Right)
		if len(lp)*len(rp) <= 64 {
			for _, a := range lp {
				if ma, ok := e.Dir.Get(a); ok {
					for _, b := range rp {
						ma.RecordCoAccess(b, 1)
					}
				}
			}
		}
	case *plan.PAgg:
		e.recordQueryAccesses(v.Child)
	}
}

// evalNode evaluates a physical plan node, materializing its result at the
// coordinator. Scans over single-piece segments run on the morsel executor
// (morsel.go); vertically partitioned scans and joins keep the
// segment-granular path.
func (e *Engine) evalNode(ctx context.Context, n plan.PNode, snap txn.VersionVector, coord simnet.SiteID) (exec.Rel, error) {
	switch v := n.(type) {
	case *plan.PScan:
		if e.morselEligible(v) {
			return e.morselGather(ctx, v, snap, coord, 0)
		}
		return e.evalScan(ctx, v, snap, coord)
	case *plan.PJoin:
		if e.batchJoinOK(v) {
			c, err := e.evalBatchJoin(ctx, v, snap, coord, nil)
			if err != nil {
				return exec.Rel{}, err
			}
			return c.Rel(), nil
		}
		return e.evalJoin(ctx, v, nil, snap, coord)
	case *plan.PAgg:
		return e.evalAgg(ctx, v, snap, coord)
	}
	return exec.Rel{}, fmt.Errorf("cluster: unknown plan node %T", n)
}

// sitePartition resolves a copy of pid at a site, catching a replica up to
// the snapshot version. When the planned copy has been moved or removed by
// a concurrent layout change, the current master is used instead; if the
// partition no longer exists at all, the plan is stale.
func (e *Engine) sitePartition(pid partition.ID, siteID simnet.SiteID, snapVer uint64) (*partition.Partition, error) {
	s := e.siteOf(siteID)
	p, ok := s.Partition(pid)
	if !ok || s.Down() {
		m, found := e.Dir.Get(pid)
		if !found {
			return nil, fmt.Errorf("%w: partition %d repartitioned", ErrStalePlan, pid)
		}
		rep, live := e.liveCopy(m)
		if !live {
			return nil, fmt.Errorf("%w: partition %d has no live copy", faults.ErrSiteDown, pid)
		}
		s = e.siteOf(rep.Site)
		if p, ok = s.Partition(pid); !ok {
			return nil, fmt.Errorf("%w: partition %d has no resolvable copy", ErrStalePlan, pid)
		}
	}
	if !s.IsMaster(pid) && p.Version() < snapVer {
		start := e.clk.Now()
		if _, err := s.Repl.CatchUp(pid, snapVer); err != nil {
			return nil, err
		}
		s.Observe(cost.Observation{
			Op:       cost.OpWaitUpdates,
			Features: cost.WaitFeatures(1),
			Latency:  e.clk.Since(start),
		})
	}
	return p, nil
}

// scanPieceAt scans one piece (bounded to a row segment) at a given site.
func (e *Engine) scanPieceAt(piece plan.ScanPart, siteID simnet.SiteID, seg plan.RowSegment,
	pred storage.Pred, snap txn.VersionVector) (exec.Rel, []schema.RowID, error) {

	p, err := e.sitePartition(piece.Meta.ID, siteID, snap[piece.Meta.ID])
	if err != nil {
		return exec.Rel{}, nil, err
	}
	rel, ids, obs := exec.ScanRows(p, piece.Cols, pred, seg.Lo, seg.Hi, snap[piece.Meta.ID])
	e.siteOf(siteID).Observe(obs)
	return rel, ids, nil
}

// shipTo moves a relation between sites (retrying dropped messages) and
// records the network observation. A persistent fault surfaces as the
// typed error so the query can re-plan around it.
func (e *Engine) shipTo(from, to simnet.SiteID, rel exec.Rel) error {
	return e.shipBytesTo(from, to, rel.NumRows()*rel.RowBytes()+64)
}

// shipBytesTo is shipTo for callers that already know the payload size
// (columnar chunks from the batch-join scan path).
func (e *Engine) shipBytesTo(from, to simnet.SiteID, bytes int) error {
	if from == to {
		return nil
	}
	var d time.Duration
	if err := e.Faults.Retry(e.sendBackoff(), func() error {
		dd, err := e.Net.Send(from, to, bytes)
		d += dd
		return err
	}); err != nil {
		return err
	}
	e.siteOf(from).Observe(cost.Observation{
		Op:       cost.OpNetwork,
		Features: cost.NetworkFeatures(e.siteOf(from).CPU(), e.siteOf(to).CPU(), bytes, 0),
		Latency:  d,
	})
	return nil
}

// evalScan executes a PScan on the legacy segment-granular path (used for
// vertically partitioned scans the morsel executor does not handle),
// stitching vertical pieces and shipping results to the coordinator. Work
// on other sites runs on their OLAP pools concurrently; the first failure
// cancels the remaining segments.
func (e *Engine) evalScan(ctx context.Context, ps *plan.PScan, snap txn.VersionVector, coord simnet.SiteID) (exec.Rel, error) {
	results := make([]exec.Rel, len(ps.Segments))
	err := e.scatter(ctx, len(ps.Segments), func(sctx context.Context, i int) error {
		seg := ps.Segments[i]
		run := func() error {
			rel, err := e.evalSegment(sctx, ps, seg, snap, coord)
			if err != nil {
				return err
			}
			results[i] = rel
			return nil
		}
		// Single-piece remote segments execute on their owning site's
		// OLAP pool; everything else runs inline. A remote site that
		// crashed rejects the work; run the segment at the coordinator
		// instead — evalSegment redirects to a live copy.
		if len(seg.Pieces) == 1 && seg.Pieces[0].Copy.Site != coord {
			s := e.siteOf(seg.Pieces[0].Copy.Site)
			var inner error
			if err := s.RunOLAP(func() { inner = run() }); err != nil {
				return run()
			}
			return inner
		}
		return run()
	})
	if err != nil {
		return exec.Rel{}, err
	}
	out := exec.Rel{Cols: colNames(ps.Cols)}
	for _, r := range results {
		out.Tuples = append(out.Tuples, r.Tuples...)
	}
	return out, nil
}

func colNames(cols []schema.ColID) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = fmt.Sprintf("c%d", c)
	}
	return out
}

// evalSegment scans one row segment's pieces and stitches them by row id.
func (e *Engine) evalSegment(ctx context.Context, ps *plan.PScan, seg plan.RowSegment, snap txn.VersionVector, coord simnet.SiteID) (exec.Rel, error) {
	if err := ctx.Err(); err != nil {
		return exec.Rel{}, err
	}
	if len(seg.Pieces) == 1 {
		piece := seg.Pieces[0]
		rel, _, err := e.scanPieceAt(piece, piece.Copy.Site, seg, ps.Pred, snap)
		if err != nil {
			return exec.Rel{}, err
		}
		// Reorder piece columns into the scan's output order.
		rel = reorderCols(rel, piece.Cols, ps.Cols)
		if err := e.shipTo(piece.Copy.Site, coord, rel); err != nil {
			return exec.Rel{}, err
		}
		return rel, nil
	}

	// Multi-piece: scan each piece, intersect by row id (each piece's
	// pushed-down predicate share filters independently), then stitch.
	type pieceData struct {
		cols []schema.ColID
		vals map[schema.RowID][]types.Value
		ids  []schema.RowID
	}
	pieces := make([]pieceData, len(seg.Pieces))
	for i, piece := range seg.Pieces {
		if err := ctx.Err(); err != nil {
			return exec.Rel{}, err
		}
		rel, ids, err := e.scanPieceAt(piece, piece.Copy.Site, seg, ps.Pred, snap)
		if err != nil {
			return exec.Rel{}, err
		}
		if err := e.shipTo(piece.Copy.Site, coord, rel); err != nil {
			return exec.Rel{}, err
		}
		pd := pieceData{cols: piece.Cols, vals: make(map[schema.RowID][]types.Value, len(ids)), ids: ids}
		for j, id := range ids {
			pd.vals[id] = rel.Tuples[j]
		}
		pieces[i] = pd
	}
	// Intersect ids across pieces, preserving the first piece's order.
	out := exec.Rel{Cols: colNames(ps.Cols)}
	colSource := map[schema.ColID][2]int{} // global col -> (piece, offset)
	for pi, pd := range pieces {
		for off, c := range pd.cols {
			if _, ok := colSource[c]; !ok {
				colSource[c] = [2]int{pi, off}
			}
		}
	}
	for _, id := range pieces[0].ids {
		ok := true
		for pi := 1; pi < len(pieces); pi++ {
			if _, present := pieces[pi].vals[id]; !present {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		tuple := make([]types.Value, len(ps.Cols))
		for i, c := range ps.Cols {
			src, found := colSource[c]
			if !found {
				continue
			}
			tuple[i] = pieces[src[0]].vals[id][src[1]]
		}
		out.Tuples = append(out.Tuples, tuple)
	}
	return out, nil
}

// reorderCols maps a piece's output (ordered by pieceCols) onto outCols.
func reorderCols(rel exec.Rel, pieceCols, outCols []schema.ColID) exec.Rel {
	if len(pieceCols) == len(outCols) {
		same := true
		for i := range pieceCols {
			if pieceCols[i] != outCols[i] {
				same = false
				break
			}
		}
		if same {
			rel.Cols = colNames(outCols)
			return rel
		}
	}
	idx := map[schema.ColID]int{}
	for i, c := range pieceCols {
		idx[c] = i
	}
	out := exec.Rel{Cols: colNames(outCols), Tuples: make([][]types.Value, len(rel.Tuples))}
	for ti, t := range rel.Tuples {
		row := make([]types.Value, len(outCols))
		for i, c := range outCols {
			if j, ok := idx[c]; ok {
				row[i] = t[j]
			}
		}
		out.Tuples[ti] = row
	}
	return out
}

// joinRels joins two materialized relations with the chosen algorithm.
func (e *Engine) joinRels(l, r exec.Rel, lKey, rKey int, alg cost.Variant, at simnet.SiteID,
	lSorted, rSorted bool) exec.Rel {

	var out exec.Rel
	var obs cost.Observation
	switch alg {
	case cost.JoinMerge:
		if !lSorted {
			var so cost.Observation
			l, so = exec.Sort(l, []int{lKey})
			e.siteOf(at).Observe(so)
		}
		if !rSorted {
			var so cost.Observation
			r, so = exec.Sort(r, []int{rKey})
			e.siteOf(at).Observe(so)
		}
		out, obs = exec.MergeJoin(l, r, []int{lKey}, []int{rKey})
	case cost.JoinNested:
		out, obs = exec.NestedLoopJoin(l, r, func(lt, rt []types.Value) bool {
			return types.Equal(lt[lKey], rt[rKey])
		})
	default:
		out, obs = exec.HashJoin(l, r, []int{lKey}, []int{rKey})
	}
	e.siteOf(at).Observe(obs)
	return out
}

// evalJoin executes a join; partialAgg, when non-nil, is applied to each
// site-local join result before shipping (aggregation pushdown under a
// two-phase PAgg).
func (e *Engine) evalJoin(ctx context.Context, pj *plan.PJoin, partialAgg *plan.PAgg, snap txn.VersionVector, coord simnet.SiteID) (exec.Rel, error) {
	if pj.Strategy == plan.JoinColocated {
		return e.evalColocatedJoin(ctx, pj, partialAgg, snap, coord)
	}
	left, err := e.evalNode(ctx, pj.Left, snap, coord)
	if err != nil {
		return exec.Rel{}, err
	}
	right, err := e.evalNode(ctx, pj.Right, snap, coord)
	if err != nil {
		return exec.Rel{}, err
	}
	lSorted := sortedAt(pj.Left) == pj.LeftKey
	rSorted := sortedAt(pj.Right) == pj.RightKey
	out := e.joinRels(left, right, pj.LeftKey, pj.RightKey, pj.Alg, coord, lSorted, rSorted)
	if partialAgg != nil {
		agg, obs := exec.HashAggregate(out, partialAgg.GroupBy, partialAgg.PartialAggs)
		e.siteOf(coord).Observe(obs)
		return agg, nil
	}
	return out, nil
}

func sortedAt(n plan.PNode) int {
	if s, ok := n.(*plan.PScan); ok {
		return s.SortedBy
	}
	return -1
}

// evalColocatedJoin joins left pieces against local right copies at each
// storage site, shipping only (optionally partially aggregated) results —
// Figure 7b's distributed execution. The first site failure cancels the
// remaining sites' work.
func (e *Engine) evalColocatedJoin(ctx context.Context, pj *plan.PJoin, partialAgg *plan.PAgg, snap txn.VersionVector, coord simnet.SiteID) (exec.Rel, error) {
	ls := pj.Left.(*plan.PScan)
	rs := pj.Right.(*plan.PScan)

	// Group left segments by executing site.
	bySite := map[simnet.SiteID][]plan.RowSegment{}
	var siteIDs []simnet.SiteID
	for _, seg := range ls.Segments {
		// A colocated segment has all its pieces on one site by planner
		// construction; use the first piece's site.
		sid := seg.Pieces[0].Copy.Site
		if _, ok := bySite[sid]; !ok {
			siteIDs = append(siteIDs, sid)
		}
		bySite[sid] = append(bySite[sid], seg)
	}

	outs := make([]exec.Rel, len(siteIDs))
	err := e.scatter(ctx, len(siteIDs), func(sctx context.Context, i int) error {
		siteID := siteIDs[i]
		run := func() error {
			rel, err := e.siteLocalJoin(sctx, ls, rs, bySite[siteID], pj, partialAgg, snap, siteID)
			if err != nil {
				return err
			}
			outs[i] = rel
			return nil
		}
		if siteID != coord {
			// A crashed site rejects the work; evaluate its share at
			// the coordinator against live copies instead.
			var inner error
			if err := e.siteOf(siteID).RunOLAP(func() { inner = run() }); err != nil {
				return run()
			}
			return inner
		}
		return run()
	})
	if err != nil {
		return exec.Rel{}, err
	}

	var final exec.Rel
	for i, rel := range outs {
		if err := e.shipTo(siteIDs[i], coord, rel); err != nil {
			return exec.Rel{}, err
		}
		final = exec.Concat(final, rel)
	}
	return final, nil
}

// siteLocalJoin evaluates one site's share of a colocated join.
func (e *Engine) siteLocalJoin(ctx context.Context, ls, rs *plan.PScan, segs []plan.RowSegment, pj *plan.PJoin,
	partialAgg *plan.PAgg, snap txn.VersionVector, siteID simnet.SiteID) (exec.Rel, error) {

	// Left input: this site's segments.
	left := exec.Rel{Cols: colNames(ls.Cols)}
	for _, seg := range segs {
		rel, err := e.evalSegmentAt(ctx, ls, seg, snap, siteID)
		if err != nil {
			return exec.Rel{}, err
		}
		left.Tuples = append(left.Tuples, rel.Tuples...)
	}
	// Right input: local copies of every right partition.
	right := exec.Rel{Cols: colNames(rs.Cols)}
	for _, seg := range rs.Segments {
		rel, err := e.evalSegmentAt(ctx, rs, seg, snap, siteID)
		if err != nil {
			return exec.Rel{}, err
		}
		right.Tuples = append(right.Tuples, rel.Tuples...)
	}
	out := e.joinRels(left, right, pj.LeftKey, pj.RightKey, pj.Alg, siteID, false, false)
	if partialAgg != nil {
		agg, obs := exec.HashAggregate(out, partialAgg.GroupBy, partialAgg.PartialAggs)
		e.siteOf(siteID).Observe(obs)
		return agg, nil
	}
	return out, nil
}

// evalSegmentAt is evalSegment with every piece read from the copy at a
// specific site (falling back to the planned copy when absent).
func (e *Engine) evalSegmentAt(ctx context.Context, ps *plan.PScan, seg plan.RowSegment, snap txn.VersionVector, siteID simnet.SiteID) (exec.Rel, error) {
	local := seg
	local.Pieces = make([]plan.ScanPart, len(seg.Pieces))
	for i, piece := range seg.Pieces {
		if piece.Meta.HasCopyAt(siteID) {
			piece.Copy = localCopy(piece, siteID)
		}
		local.Pieces[i] = piece
	}
	// Stitch at this site (pieces' sites now local where copies exist).
	return e.evalSegment(ctx, ps, local, snap, siteID)
}

func localCopy(piece plan.ScanPart, siteID simnet.SiteID) metadata.Replica {
	for _, c := range piece.Meta.AllCopies() {
		if c.Site == siteID {
			return c
		}
	}
	return piece.Copy
}

// evalAgg executes aggregation. An aggregation directly over a
// morsel-eligible scan fuses partial aggregation into the scan workers;
// otherwise the legacy two-phase (distributed child) or single-phase path
// runs.
func (e *Engine) evalAgg(ctx context.Context, pa *plan.PAgg, snap txn.VersionVector, coord simnet.SiteID) (exec.Rel, error) {
	if ps, ok := pa.Child.(*plan.PScan); ok && e.morselEligible(ps) {
		return e.morselAgg(ctx, pa, ps, snap, coord)
	}
	if pj, ok := pa.Child.(*plan.PJoin); ok && e.batchJoinOK(pj) {
		return e.evalBatchJoinAgg(ctx, pa, pj, snap, coord)
	}
	if pa.TwoPhase {
		switch child := pa.Child.(type) {
		case *plan.PJoin:
			partials, err := e.evalJoin(ctx, child, pa, snap, coord)
			if err != nil {
				return exec.Rel{}, err
			}
			return e.finalizeAgg(pa, partials, coord), nil
		case *plan.PScan:
			partials, err := e.evalScanWithPartialAgg(ctx, child, pa, snap, coord)
			if err != nil {
				return exec.Rel{}, err
			}
			return e.finalizeAgg(pa, partials, coord), nil
		}
	}
	rel, err := e.evalNode(ctx, pa.Child, snap, coord)
	if err != nil {
		return exec.Rel{}, err
	}
	var out exec.Rel
	var obs cost.Observation
	if s, ok := pa.Child.(*plan.PScan); ok && len(pa.GroupBy) == 1 && s.SortedBy == pa.GroupBy[0] {
		out, obs = exec.SortedAggregate(rel, pa.GroupBy, pa.Aggs)
	} else {
		out, obs = exec.HashAggregate(rel, pa.GroupBy, pa.Aggs)
	}
	e.siteOf(coord).Observe(obs)
	return out, nil
}

// evalScanWithPartialAgg pushes partial aggregation to each scanning site
// (legacy path for vertically partitioned scans). The first site failure
// cancels the rest.
func (e *Engine) evalScanWithPartialAgg(ctx context.Context, ps *plan.PScan, pa *plan.PAgg, snap txn.VersionVector, coord simnet.SiteID) (exec.Rel, error) {
	bySite := map[simnet.SiteID][]plan.RowSegment{}
	var siteIDs []simnet.SiteID
	for _, seg := range ps.Segments {
		sid := seg.Pieces[0].Copy.Site
		if _, ok := bySite[sid]; !ok {
			siteIDs = append(siteIDs, sid)
		}
		bySite[sid] = append(bySite[sid], seg)
	}
	outs := make([]exec.Rel, len(siteIDs))
	err := e.scatter(ctx, len(siteIDs), func(sctx context.Context, i int) error {
		siteID := siteIDs[i]
		run := func() error {
			local := exec.Rel{Cols: colNames(ps.Cols)}
			for _, seg := range bySite[siteID] {
				rel, err := e.evalSegmentAt(sctx, ps, seg, snap, siteID)
				if err != nil {
					return err
				}
				local.Tuples = append(local.Tuples, rel.Tuples...)
			}
			out, obs := exec.HashAggregate(local, pa.GroupBy, pa.PartialAggs)
			e.siteOf(siteID).Observe(obs)
			outs[i] = out
			return nil
		}
		if siteID != coord {
			// A crashed site rejects the work; evaluate its share at
			// the coordinator against live copies instead.
			var inner error
			if err := e.siteOf(siteID).RunOLAP(func() { inner = run() }); err != nil {
				return run()
			}
			return inner
		}
		return run()
	})
	if err != nil {
		return exec.Rel{}, err
	}
	var partials exec.Rel
	for i, rel := range outs {
		if err := e.shipTo(siteIDs[i], coord, rel); err != nil {
			return exec.Rel{}, err
		}
		partials = exec.Concat(partials, rel)
	}
	return partials, nil
}

// finalizeAgg combines partial aggregates at the coordinator and
// reconstructs AVG columns.
func (e *Engine) finalizeAgg(pa *plan.PAgg, partials exec.Rel, coord simnet.SiteID) exec.Rel {
	groupPos := make([]int, len(pa.GroupBy))
	for i := range pa.GroupBy {
		groupPos[i] = i // partial layout: [groups..., partial aggs...]
	}
	combined, obs := exec.HashAggregate(partials, groupPos, pa.FinalAggs)
	e.siteOf(coord).Observe(obs)

	// combined layout: [groups..., finalAgg results...]; map back to the
	// requested [groups..., aggs...] layout with AVG = sum/count.
	out := exec.Rel{Cols: combined.Cols[:len(pa.GroupBy)]}
	for _, a := range pa.Aggs {
		out.Cols = append(out.Cols, a.Func.String())
	}
	ng := len(pa.GroupBy)
	for _, t := range combined.Tuples {
		row := make([]types.Value, 0, ng+len(pa.Aggs))
		row = append(row, t[:ng]...)
		fi := ng // cursor into final agg outputs
		for _, a := range pa.Aggs {
			if a.Func == exec.AggAvg {
				sum := t[fi]
				cnt := t[fi+1]
				fi += 2
				if cnt.Float() > 0 {
					row = append(row, types.NewFloat64(sum.Float()/cnt.Float()))
				} else {
					row = append(row, types.Null())
				}
			} else {
				row = append(row, t[fi])
				fi++
			}
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out
}

// ExecuteQueryStream runs an OLAP query and returns a cursor streaming
// result rows incrementally. A morsel-eligible scan root streams natively:
// rows arrive as bounded batches while the scan is still running, and
// closing the cursor early (or cancelling ctx, or reaching the query's
// Limit) closes the morsel feeds so workers stop promptly. Other plan
// shapes materialize at the coordinator first and the cursor iterates the
// result. Retriable planning/setup failures are retried exactly as
// ExecuteQuery retries them; once streaming has begun, failures surface
// through the cursor's Err and are not retried.
func (e *Engine) ExecuteQueryStream(ctx context.Context, sess *Session, q *query.Query) (*RowCursor, error) {
	if err := e.admit(ctx, admission.PriorityOLAP); err != nil {
		return nil, err
	}
	deadline := e.queryDeadline(ctx)
	delay := e.retryBase()
	for {
		cur, err := e.streamOnce(ctx, sess, q)
		if err == nil || !e.retriable(err) {
			return cur, err
		}
		if e.clk.Now().After(deadline) {
			return nil, e.deadlineErr(err)
		}
		e.cntRetries.Inc()
		if serr := e.sleepRetry(ctx, e.Faults.Jitter(delay)); serr != nil {
			return nil, serr
		}
		if delay *= 2; delay > maxRetryDelay {
			delay = maxRetryDelay
		}
	}
}

func (e *Engine) streamOnce(ctx context.Context, sess *Session, q *query.Query) (*RowCursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	planStart := e.clk.Now()
	pn, err := e.Planner.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	e.stats.Record(ClassOLAPPlan, e.clk.Since(planStart))

	pids := collectPIDs(pn)
	snap := e.snapshotFor(pids, sess)
	coord, err := e.pickCoordinator(pn)
	if err != nil {
		return nil, err
	}
	if _, err := e.Net.Send(simnet.ASASite, coord, 256); err != nil {
		return nil, err
	}
	e.recordQueryAccesses(pn)
	readVec := make(txn.VersionVector, len(pids))
	for _, pid := range pids {
		readVec[pid] = snap[pid]
	}
	sess.s.Observe(readVec)

	start := e.clk.Now()
	onEOF := func(err error) {
		if err == nil {
			d := e.clk.Since(start)
			e.stats.Record(ClassOLAP, d)
			if e.Advisor != nil {
				e.Advisor.onQueryExecuted(pn, d)
			}
		}
	}

	if ps, ok := pn.(*plan.PScan); ok && e.morselEligible(ps) {
		j, err := e.buildMorselJob(ctx, ps, snap, coord)
		if err != nil {
			return nil, err
		}
		out := make(chan exec.Rel, 2*len(e.Sites)+2)
		j.runRows(out)
		return newMorselCursor(j, out, q.Limit, onEOF), nil
	}

	// Non-streaming plan shape: materialize, then iterate.
	var result exec.Rel
	var execErr error
	if err := e.siteOf(coord).RunOLAP(func() {
		result, execErr = e.evalRoot(ctx, pn, snap, coord, q.Limit)
	}); err != nil {
		return nil, err
	}
	if execErr != nil {
		return nil, execErr
	}
	return newStaticCursor(result, onEOF), nil
}
