package cluster

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/types"
)

// benchEngine builds a loaded single-site engine for the commit-path
// benchmarks, with background loops slowed so the measurement reflects the
// transaction path.
func benchEngine(b *testing.B, disabled bool) (*Engine, *schema.Table) {
	b.Helper()
	cfg := fastConfig(ModeRowStore, 1)
	cfg.ReplicationInterval = 50 * time.Millisecond
	cfg.MaintainInterval = 100 * time.Millisecond
	cfg.DisableGroupCommit = disabled
	e := New(cfg)
	b.Cleanup(e.Close)
	tbl, err := e.CreateTable(TableSpec{
		Name: "bench", Cols: testCols, MaxRows: 100000, Partitions: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	const rows = 4096
	data := make([]schema.Row, 0, rows)
	for i := int64(0); i < rows; i++ {
		data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 10), types.NewFloat64(float64(i)), types.NewString("r"),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, data); err != nil {
		b.Fatal(err)
	}
	return e, tbl
}

// benchTxnWrites drives concurrent single-row update transactions; each
// goroutine writes its own row cycle so commits contend on the pipeline,
// not on row locks.
func benchTxnWrites(b *testing.B, disabled bool) {
	e, tbl := benchEngine(b, disabled)
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := seq.Add(1)
		sess := e.NewSession()
		row := (id * 37) % 4096
		i := 0
		for pb.Next() {
			i++
			_, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{
				Ops: []query.Op{updateOp(tbl, row, 2, types.NewFloat64(float64(i)))},
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTxnGroupCommit measures the batched commit pipeline under
// parallel single-row writers.
func BenchmarkTxnGroupCommit(b *testing.B) { benchTxnWrites(b, false) }

// BenchmarkTxnSerialCommit measures the legacy inline append-and-install
// path under the same load (Config.DisableGroupCommit).
func BenchmarkTxnSerialCommit(b *testing.B) { benchTxnWrites(b, true) }
