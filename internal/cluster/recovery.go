// Crash, failover and recovery for the cluster engine. A site crash drops
// all of its in-memory partition state; the durable truth is the redo-log
// broker (checkpoint + retained records), mirroring the paper's use of
// Kafka as the replicated redo log. Failover promotes the surviving
// replica with the highest applied redo offset; recovery rebuilds every
// copy the site hosted by loading the partition checkpoint and replaying
// the log, then rejoins the old master as a replica where a failover
// already promoted someone else.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"proteus/internal/faults"
	"proteus/internal/metadata"
	"proteus/internal/partition"
	"proteus/internal/simnet"
	"proteus/internal/site"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// maxRetryDelay caps the exponential backoff between operation retries.
const maxRetryDelay = 20 * time.Millisecond

// opDeadline bounds one client-visible operation (transaction or query)
// across all of its internal retries.
func (e *Engine) opDeadline() time.Duration {
	if e.cfg.OpDeadline > 0 {
		return e.cfg.OpDeadline
	}
	return 2 * time.Second
}

// retryBase is the first retry's maximum full-jitter delay.
func (e *Engine) retryBase() time.Duration {
	if e.cfg.RetryBase > 0 {
		return e.cfg.RetryBase
	}
	return 200 * time.Microsecond
}

// retriable reports whether an operation error may succeed on re-plan and
// retry: stale plans (concurrent layout change), dropped messages,
// partitions, and down sites (a failover or recovery may restore the
// copy before the deadline). Overload sheds are never retried here — the
// typed ErrOverload (with its RetryAfter hint) goes straight back to the
// client, which is the whole point of shedding.
func (e *Engine) retriable(err error) bool {
	return errors.Is(err, ErrStalePlan) || faults.Retryable(err)
}

// deadlineErr converts the last retry error into the typed timeout the
// caller observes, counting it.
func (e *Engine) deadlineErr(err error) error {
	e.cntTimeouts.Inc()
	if errors.Is(err, faults.ErrTimeout) {
		return err
	}
	return fmt.Errorf("%w: operation deadline exceeded (last error: %v)", faults.ErrTimeout, err)
}

// sendBackoff bounds one cross-site message retry loop. It is deliberately
// shorter than the operation deadline so a persistently-partitioned link
// surfaces as a retriable error and the operation can re-plan around it.
func (e *Engine) sendBackoff() faults.Backoff {
	return faults.Backoff{Base: e.retryBase(), Max: maxRetryDelay, Deadline: e.opDeadline() / 4}
}

// liveCopy picks a copy of the partition hosted by a live site, preferring
// the master. ok is false when every copy's site is down.
func (e *Engine) liveCopy(m *metadata.PartitionMeta) (metadata.Replica, bool) {
	master := m.Master()
	if int(master.Site) >= 0 && int(master.Site) < len(e.Sites) && !e.siteOf(master.Site).Down() {
		return master, true
	}
	for _, rep := range m.Replicas() {
		if !e.siteOf(rep.Site).Down() {
			return rep, true
		}
	}
	return metadata.Replica{}, false
}

// CrashSite fails a site: the interconnect rejects its traffic, its
// in-memory partition state is dropped, and every partition it mastered
// fails over to the freshest surviving replica. The copies it hosted are
// remembered for recovery replay.
func (e *Engine) CrashSite(id simnet.SiteID) error {
	if int(id) < 0 || int(id) >= len(e.Sites) {
		return fmt.Errorf("cluster: no site %d", id)
	}
	s := e.siteOf(id)
	e.Faults.SetSiteDown(id, true)
	hosted := s.Crash()
	if hosted == nil {
		return nil // already down
	}
	e.crashMu.Lock()
	e.crashed[id] = hosted
	e.crashMu.Unlock()
	e.cntCrashes.Inc()
	e.failoverSite(id)
	e.Epoch.Bump()
	return nil
}

// failoverSite removes the down site from every partition's replica set
// and promotes a new master for every partition it mastered.
func (e *Engine) failoverSite(down simnet.SiteID) {
	for _, m := range e.Dir.All() {
		m.RemoveReplica(down)
		if m.Master().Site == down {
			e.failoverPartition(m, down)
		}
	}
}

// failoverPartition promotes the surviving replica with the highest
// applied redo offset to master. Candidates are drained to the broker's
// end offset first so no committed record is lost; a candidate that
// cannot reach the broker (partitioned away) is skipped — promoting it
// could strand records it never saw. With no promotable candidate the
// partition stays unavailable (its committed state is safe in the
// broker) until the master recovers.
func (e *Engine) failoverPartition(m *metadata.PartitionMeta, down simnet.SiteID) {
	// Serialize with in-flight commits on this partition: a commit stages
	// and enqueues its redo records while holding the partition write
	// lock, so once we hold it every committed record is at worst sitting
	// in the down site's commit queue. Draining that queue through the
	// flush barrier puts them all in the broker before any candidate is
	// measured — batched commits survive failover exactly like inline
	// ones did.
	ls := e.Locks.AcquireAll(nil, []partition.ID{m.ID})
	defer ls.ReleaseAll()
	if m.Master().Site != down {
		return // concurrent failover already promoted
	}
	e.gc.barrier(down)
	var best metadata.Replica
	var bestVersion uint64
	found := false
	for _, rep := range m.Replicas() {
		s := e.siteOf(rep.Site)
		if s.Down() {
			continue
		}
		v, err := s.Repl.Drain(m.ID)
		if err != nil {
			continue
		}
		if !found || v > bestVersion {
			best, bestVersion, found = rep, v, true
		}
	}
	if !found {
		return
	}
	dst := e.siteOf(best.Site)
	dst.Repl.Unsubscribe(m.ID)
	dst.SetMaster(m.ID, true)
	m.RemoveReplica(best.Site)
	m.SetMaster(metadata.Replica{Site: best.Site, Layout: best.Layout})
	e.cntFailovers.Inc()
}

// RecoverSite brings a crashed site back: every copy it hosted is rebuilt
// from the partition checkpoint plus redo-log replay. Where a failover
// promoted a replacement master while the site was down, the old master
// rejoins as a replica of the new one; where no replacement existed, it
// resumes mastership with all committed writes replayed.
func (e *Engine) RecoverSite(id simnet.SiteID) error {
	if int(id) < 0 || int(id) >= len(e.Sites) {
		return fmt.Errorf("cluster: no site %d", id)
	}
	s := e.siteOf(id)
	if !s.Down() {
		return nil
	}
	start := e.clk.Now()
	e.crashMu.Lock()
	hosted := e.crashed[id]
	delete(e.crashed, id)
	e.crashMu.Unlock()
	for _, hc := range hosted {
		m, ok := e.Dir.Get(hc.ID)
		if !ok {
			continue // partition split or merged away while the site was down
		}
		switch {
		case m.Master().Site == id:
			// No replica could take over; writes stalled while we were
			// down. Rebuild the master copy and resume.
			if err := e.rebuildCopy(s, m, hc.Layout, true); err != nil {
				return fmt.Errorf("recover site %d partition %d: %w", id, m.ID, err)
			}
		case !m.HasCopyAt(id):
			// A failover promoted a surviving replica; rejoin under it.
			if err := e.rebuildCopy(s, m, hc.Layout, false); err != nil {
				return fmt.Errorf("recover site %d partition %d: %w", id, m.ID, err)
			}
		}
	}
	s.Recover()
	e.Faults.SetSiteDown(id, false)
	e.cntRecoveries.Inc()
	e.recoveryLat.Record(e.clk.Since(start))
	e.Epoch.Bump()
	return nil
}

// rebuildCopy reconstructs one partition copy at a recovering site from
// durable state: load the broker's checkpoint (bulk-loaded base data plus
// the log prefix already folded in), then replay retained redo records
// above the checkpoint. As master the copy just resumes; as replica it
// re-subscribes from the replay position.
func (e *Engine) rebuildCopy(s *site.Site, m *metadata.PartitionMeta, l storage.Layout, master bool) error {
	kinds, err := e.partitionKinds(m.Bounds)
	if err != nil {
		return err
	}
	p := partition.New(m.ID, m.Bounds, kinds, l, s.Factory)
	from := e.Broker.BaseOffset(m.ID)
	if ck, ok := e.Broker.Checkpoint(m.ID); ok {
		if err := p.Load(ck.Rows, ck.Version); err != nil {
			return err
		}
		from = ck.Offset
	}
	_, next, err := e.Broker.ReplayInto(p, m.ID, from)
	if err != nil {
		return err
	}
	s.AddPartition(p, master)
	if !master {
		s.Repl.Subscribe(m.ID, p, next)
		m.AddReplica(metadata.Replica{Site: s.ID, Layout: l})
	}
	return nil
}

// partitionKinds slices the table's column kinds down to the partition's
// column range.
func (e *Engine) partitionKinds(b partition.Bounds) ([]types.Kind, error) {
	tbl, ok := e.Catalog.Table(b.Table)
	if !ok {
		return nil, fmt.Errorf("cluster: no table %d", b.Table)
	}
	return tbl.Kinds()[b.ColStart:b.ColEnd], nil
}

// PartitionNet splits the interconnect into isolated groups (sites not
// listed stay reachable from every group).
func (e *Engine) PartitionNet(groups ...[]simnet.SiteID) { e.Faults.Partition(groups...) }

// HealNet removes any network partition.
func (e *Engine) HealNet() { e.Faults.Heal() }

// ApplyFault executes one chaos-schedule event.
func (e *Engine) ApplyFault(ev faults.Event) error {
	switch ev.Kind {
	case faults.EventCrash:
		return e.CrashSite(ev.Site)
	case faults.EventRecover:
		return e.RecoverSite(ev.Site)
	case faults.EventPartition:
		e.PartitionNet(ev.Groups...)
		return nil
	case faults.EventHeal:
		e.HealNet()
		return nil
	}
	return fmt.Errorf("cluster: unknown fault event %v", ev.Kind)
}
