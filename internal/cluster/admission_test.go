package cluster

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"proteus/internal/admission"
	"proteus/internal/faults"
	"proteus/internal/partition"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/txn"
	"proteus/internal/types"
)

// TestAdmissionShedTyped starves a token-bucket engine and checks the
// client-visible shed contract on every public entry point: the error
// matches faults.ErrOverload via errors.Is, carries a *OverloadError
// with a positive RetryAfter, and the per-tenant admission metrics
// surface in MetricsSnapshot.
func TestAdmissionShedTyped(t *testing.T) {
	e, tbl := newMorselEngine(t, ModeRowStore, 2, 2, 100, func(c *Config) {
		c.Admission = admission.Config{
			Policy:   admission.TokenBucket,
			Default:  admission.Limits{Rate: 0.001, Burst: 1}, // the fixture's LoadRows spends the burst
			MaxQueue: 1,
			MaxWait:  time.Millisecond,
		}
	})
	sess := e.NewSession()
	q := &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0}}}

	checkShed := func(op string, err error) {
		t.Helper()
		if !errors.Is(err, faults.ErrOverload) {
			t.Fatalf("%s under starvation = %v, want ErrOverload", op, err)
		}
		var oe *faults.OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("%s shed %T is not *faults.OverloadError", op, err)
		}
		if oe.RetryAfter <= 0 {
			t.Fatalf("%s shed RetryAfter = %v, want > 0", op, oe.RetryAfter)
		}
	}

	_, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		updateOp(tbl, 1, 2, types.NewFloat64(9)),
	}})
	checkShed("ExecuteTxn", err)
	_, err = e.ExecuteQuery(context.Background(), sess, q)
	checkShed("ExecuteQuery", err)
	_, err = e.ExecuteQueryStream(context.Background(), sess, q)
	checkShed("ExecuteQueryStream", err)
	err = e.LoadRows(context.Background(), tbl.ID, testRows(1))
	checkShed("LoadRows", err)

	// A tagged tenant gets its own bucket — and its own shed counters.
	acme := admission.WithTenant(context.Background(), "acme")
	if _, err := e.ExecuteQuery(acme, sess, q); err != nil {
		t.Fatalf("fresh tenant's burst admit: %v", err)
	}

	snap := e.MetricsSnapshot()
	if snap.Counters["admission.shed"] < 4 {
		t.Fatalf("admission.shed = %d, want >= 4", snap.Counters["admission.shed"])
	}
	if snap.Counters["admission.tenant.default.shed"] < 4 {
		t.Fatalf("admission.tenant.default.shed = %d, want >= 4",
			snap.Counters["admission.tenant.default.shed"])
	}
	if snap.Counters["admission.tenant.acme.admitted"] != 1 {
		t.Fatalf("admission.tenant.acme.admitted = %d, want 1",
			snap.Counters["admission.tenant.acme.admitted"])
	}
}

// TestAdmissionCancelNoGoroutineLeak cancels queries parked in the
// admission wait queue and queries cancelled mid-stream through a
// RowCursor, then requires the goroutine count to settle back to
// baseline and every pooled scan batch to be returned. Extends the
// morsel_test.go leak pattern across the admission layer.
func TestAdmissionCancelNoGoroutineLeak(t *testing.T) {
	e, tbl := newMorselEngine(t, ModeRowStore, 2, 4, 20000, func(c *Config) {
		c.MorselRows = 32
		c.ScanBatchRows = 64
		c.Admission = admission.Config{
			Policy: admission.TokenBucket,
			// The default tenant starves after the fixture load; "fast"
			// admits freely for the mid-stream cancellation half.
			Default:  admission.Limits{Rate: 1, Burst: 1},
			Tenants:  map[string]admission.Limits{"fast": {Rate: 1e6, Burst: 1e6}},
			MaxQueue: 64,
			MaxWait:  30 * time.Second,
		}
	})
	sess := e.NewSession()
	q := &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0, 1, 2}}}

	baseline := runtime.NumGoroutine()
	before := storage.ReadBatchStats()

	// Cancelled while queued at admission: the bucket is dry and MaxWait
	// is far off, so each query parks in the wait queue until its context
	// fires; no engine goroutine may outlive the cancellation.
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := e.ExecuteQuery(ctx, sess, q)
			done <- err
		}()
		time.Sleep(time.Millisecond)
		cancel()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, faults.ErrOverload) {
			t.Fatalf("queued-then-cancelled query: %v", err)
		}
	}

	// Cancelled while streaming through a RowCursor: admitted via the
	// unconstrained tenant, abandoned mid-scan.
	fast := admission.WithTenant(context.Background(), "fast")
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(fast)
		cur, err := e.ExecuteQueryStream(ctx, sess, q)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3 && cur.Next(); k++ {
		}
		if i%2 == 0 {
			cancel()
		}
		cur.Close()
		cancel()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		after := storage.ReadBatchStats()
		gets := after.PoolGets - before.PoolGets
		puts := after.PoolPuts - before.PoolPuts
		if n <= baseline+3 && gets == puts {
			if gets == 0 {
				t.Fatal("no pooled batches moved; the streaming half did not scan")
			}
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("leak: %d goroutines (baseline %d), %d batch gets vs %d puts\n%s",
				n, baseline, gets, puts, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGroupCommitWaitCancel checks satellite context propagation: a
// transaction whose context expires while it waits on the group-commit
// flusher unblocks with the context error, while the flush itself still
// completes (the write becomes durable, just never acked).
func TestGroupCommitWaitCancel(t *testing.T) {
	e, tbl := newMorselEngine(t, ModeRowStore, 2, 2, 100, func(c *Config) {
		// A long coalescing window holds flushes open so the commit wait
		// reliably outlives the context deadline.
		c.GroupCommitInterval = 200 * time.Millisecond
	})
	sess := e.NewSession()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.ExecuteTxn(ctx, sess, &query.Txn{Ops: []query.Op{
		updateOp(tbl, 5, 2, types.NewFloat64(42)),
	}})
	waited := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("txn blocked on flusher = %v, want context.DeadlineExceeded", err)
	}
	if waited >= 150*time.Millisecond {
		t.Fatalf("waiter held %v despite 20ms deadline", waited)
	}

	// The abandoned flush still completes: the write is durable and a
	// fresh read (after the coalescing window) observes it.
	readCtx, cancelRead := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelRead()
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := e.ExecuteTxn(readCtx, e.NewSession(), &query.Txn{Ops: []query.Op{readOp(tbl, 5, 2)}})
		if err == nil && len(res.Tuples) > 0 && res.Tuples[0] != nil && res.Tuples[0][0].Float() == 42 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned flush never became visible (last: %v, err %v)", res, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// installedVersion reads a partition's installed version at its master site.
func installedVersion(e *Engine, pid partition.ID) uint64 {
	m, ok := e.Dir.Get(pid)
	if !ok {
		return 0
	}
	if p, ok := e.siteOf(m.Master().Site).Partition(pid); ok {
		return p.Version()
	}
	return 0
}

// TestAbandonedCommitWaitRecordsDeps pins a torn-snapshot fix: when a
// multi-partition transaction's group-commit wait is abandoned on ctx
// expiry, the flushers still durably install every partition version, so
// the co-commit dependency record must still reach the tracker. Without
// it, a later snapshot could close over one partition's new version
// without its co-committed sibling — an SI violation visible to every
// session, not just the cancelled client.
func TestAbandonedCommitWaitRecordsDeps(t *testing.T) {
	e, tbl := newMorselEngine(t, ModeRowStore, 2, 2, 100, func(c *Config) {
		c.GroupCommitInterval = 200 * time.Millisecond
	})
	sess := e.NewSession()

	// Rows 5 and 95 land in different horizontal partitions of the
	// evenly tiled 100-row table.
	tq := &query.Txn{Ops: []query.Op{
		updateOp(tbl, 5, 2, types.NewFloat64(-5)),
		updateOp(tbl, 95, 2, types.NewFloat64(-95)),
	}}
	tp, err := e.Planner.PlanTxn(tq)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.WritePIDs) != 2 {
		t.Fatalf("rows 5 and 95 map to %d partitions, want 2", len(tp.WritePIDs))
	}
	p1, p2 := tp.WritePIDs[0], tp.WritePIDs[1]
	before1, before2 := installedVersion(e, p1), installedVersion(e, p2)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := e.ExecuteTxn(ctx, sess, tq); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("txn blocked on flusher = %v, want context.DeadlineExceeded", err)
	}

	// Wait for the abandoned flushes to install both versions, then for
	// the detached finish to record the commit: closing a snapshot that
	// holds p1's new version must raise p2 to its co-committed version.
	deadline := time.Now().Add(2 * time.Second)
	for {
		v1, v2 := installedVersion(e, p1), installedVersion(e, p2)
		if v1 > before1 && v2 > before2 {
			snap := e.Deps.Close(txn.VersionVector{p1: v1, p2: before2})
			if snap[p2] >= v2 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("co-commit dependency never recorded after abandoned group-commit wait")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
