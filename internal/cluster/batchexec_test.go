package cluster

import (
	"context"
	"runtime"
	"testing"
	"time"

	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// TestMorselVerticalPieceFallback pins the eligibility rule for vertically
// partitioned scans: a scan whose projection spans both vertical pieces has
// no covering piece, must fall back to the legacy row-id-stitching path
// (scheduling zero morsels), and must still return correct results. A scan
// confined to one piece stays on the morsel executor.
func TestMorselVerticalPieceFallback(t *testing.T) {
	e, tbl := newTestEngine(t, ModeRowStore, 2, 1, 60)
	sess := e.NewSession()
	parts := e.Dir.TablePartitions(tbl.ID)
	// Pieces after the split: cols [0,2) and cols [2,4).
	if err := e.SplitV(parts[0].ID, 2, storage.DefaultRowLayout(), storage.DefaultColumnLayout()); err != nil {
		t.Fatal(err)
	}

	// Spanning scan: projection {1, 2} needs both pieces.
	before := e.MetricsSnapshot().Counters["exec.morsels.scheduled"]
	q := &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{1, 2},
		Pred: storage.Pred{{Col: 0, Op: storage.CmpLt, Val: types.NewInt64(20)}}}}
	res, err := e.ExecuteQuery(context.Background(), sess, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 20 {
		t.Fatalf("spanning scan rows = %d, want 20", len(res.Tuples))
	}
	if got := e.MetricsSnapshot().Counters["exec.morsels.scheduled"] - before; got != 0 {
		t.Errorf("spanning vertical scan scheduled %d morsels, want legacy fallback (0)", got)
	}

	// Confined scan: projection and predicate inside the first piece.
	before = e.MetricsSnapshot().Counters["exec.morsels.scheduled"]
	q2 := &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0, 1},
		Pred: storage.Pred{{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(30)}}}}
	res2, err := e.ExecuteQuery(context.Background(), sess, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Tuples) != 30 {
		t.Fatalf("confined scan rows = %d, want 30", len(res2.Tuples))
	}
	if got := e.MetricsSnapshot().Counters["exec.morsels.scheduled"] - before; got == 0 {
		t.Error("confined vertical scan did not use the morsel executor")
	}
}

// TestStreamAbandonedCursorReturnsBatches abandons streaming cursors with
// batches in flight and checks two invariants beyond goroutine cleanup:
// the workers' backpressure channel drains, and every pooled batch is
// returned (pool gets == puts once the workers exit), so an abandoned
// stream leaks neither goroutines nor batch buffers.
func TestStreamAbandonedCursorReturnsBatches(t *testing.T) {
	e, tbl := newMorselEngine(t, ModeColumnStore, 2, 4, 20000, func(c *Config) {
		c.MorselRows = 32
		c.ScanBatchRows = 64
	})
	sess := e.NewSession()
	q := &query.Query{Root: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0, 1, 2}}}

	baselineGoroutines := runtime.NumGoroutine()
	baselineBalance := storage.BatchPoolBalance()
	for i := 0; i < 8; i++ {
		cur, err := e.ExecuteQueryStream(context.Background(), sess, q)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3 && cur.Next(); k++ {
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		bal := storage.BatchPoolBalance()
		if runtime.NumGoroutine() <= baselineGoroutines+3 && bal == baselineBalance {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned streams leaked: %d goroutines (baseline %d), pool balance %d (baseline %d)",
				runtime.NumGoroutine(), baselineGoroutines, bal, baselineBalance)
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := storage.ReadBatchStats()
	if st.Batches == 0 || st.PoolGets == 0 {
		t.Fatalf("batch pipeline unused: %+v", st)
	}
}

// TestBatchMetricsExported checks the engine snapshot carries the batch
// pipeline counters and derived gauges after a filtered aggregate ran.
func TestBatchMetricsExported(t *testing.T) {
	e, tbl := newMorselEngine(t, ModeColumnStore, 2, 4, 2000, nil)
	q := &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{2},
			Pred: storage.Pred{{Col: 1, Op: storage.CmpLt, Val: types.NewInt64(5)}}},
		Aggs: []exec.AggSpec{{Func: exec.AggSum, Col: 0}},
	}}
	if _, err := e.ExecuteQuery(context.Background(), e.NewSession(), q); err != nil {
		t.Fatal(err)
	}
	snap := e.MetricsSnapshot()
	if snap.Counters["exec.batches.count"] == 0 {
		t.Error("exec.batches.count not exported")
	}
	if snap.Counters["exec.batches.rows_scanned"] == 0 {
		t.Error("exec.batches.rows_scanned not exported")
	}
	if _, ok := snap.Gauges["exec.batches.selectivity_pct"]; !ok {
		t.Error("exec.batches.selectivity_pct gauge missing")
	}
	if snap.Counters["exec.batches.pool_gets"] < snap.Counters["exec.batches.pool_hits"] {
		t.Error("pool hit accounting inconsistent")
	}
}
