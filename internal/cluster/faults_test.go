package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"proteus/internal/asa"
	"proteus/internal/faults"
	"proteus/internal/metadata"
	"proteus/internal/partition"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// newFaultEngine builds an engine with short operation deadlines so
// fault-path tests fail fast, plus a loaded table.
func newFaultEngine(t *testing.T, sites, parts int, rows int64, tune func(*Config)) (*Engine, *schema.Table) {
	t.Helper()
	cfg := fastConfig(ModeProteus, sites)
	cfg.OpDeadline = 250 * time.Millisecond
	cfg.RetryBase = 100 * time.Microsecond
	if tune != nil {
		tune(&cfg)
	}
	e := New(cfg)
	t.Cleanup(e.Close)
	tbl, err := e.CreateTable(TableSpec{
		Name: "items", Cols: testCols, MaxRows: 100000, Partitions: parts,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]schema.Row, 0, rows)
	for i := int64(0); i < rows; i++ {
		data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 10), types.NewFloat64(float64(i)), types.NewString(fmt.Sprintf("row-%d", i)),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, data); err != nil {
		t.Fatal(err)
	}
	return e, tbl
}

// noAdapt freezes the advisor so tests control the replica topology.
func noAdapt(cfg *Config) {
	cfg.Adapt.Flags = asa.Flags{}
	cfg.Adapt.PredictiveInterval = -1
	cfg.Adapt.CapacityInterval = -1
}

// masterVersion reads a partition's version at its master site.
func masterVersion(t *testing.T, e *Engine, m *metadata.PartitionMeta) uint64 {
	t.Helper()
	p, ok := e.siteOf(m.Master().Site).Partition(m.ID)
	if !ok {
		t.Fatalf("partition %d: no master copy at site %d", m.ID, m.Master().Site)
	}
	return p.Version()
}

// waitReplicaVersion waits until the copy at site reaches at least v.
func waitReplicaVersion(t *testing.T, e *Engine, pid partition.ID, siteID simnet.SiteID, v uint64, timeout time.Duration) {
	t.Helper()
	end := time.Now().Add(timeout)
	for {
		if p, ok := e.siteOf(siteID).Partition(pid); ok && p.Version() >= v {
			return
		}
		if time.Now().After(end) {
			p, ok := e.siteOf(siteID).Partition(pid)
			got := uint64(0)
			if ok {
				got = p.Version()
			}
			t.Fatalf("site %d partition %d stuck at version %d, want >= %d", siteID, pid, got, v)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCrashDuringWriteRecovery(t *testing.T) {
	e, tbl := newFaultEngine(t, 2, 4, 200, nil)

	const writers = 4
	rowsPer := int64(200 / writers)
	type ack struct {
		row int64
		val float64
	}
	acked := make([]map[int64]float64, writers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		acked[w] = make(map[int64]float64)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := e.NewSession()
			v := float64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v++
				row := int64(w)*rowsPer + int64(v)%rowsPer
				_, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
					updateOp(tbl, row, 2, types.NewFloat64(v)),
				}})
				if err == nil {
					acked[w][row] = v
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	if err := e.CrashSite(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := e.RecoverSite(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every acknowledged write must be readable after recovery.
	sess := e.NewSession()
	checked := 0
	for w := 0; w < writers; w++ {
		for row, want := range acked[w] {
			res, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, row, 2)}})
			if err != nil {
				t.Fatalf("read row %d: %v", row, err)
			}
			if got := res.Tuples[0][0].Float(); got != want {
				t.Errorf("row %d = %v, want acked %v (lost committed write)", row, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no writes were acknowledged; test exercised nothing")
	}
}

func TestFailoverPromotesFreshestReplica(t *testing.T) {
	e, tbl := newFaultEngine(t, 3, 1, 60, noAdapt)
	metas := e.Dir.TablePartitions(tbl.ID)
	if len(metas) != 1 {
		t.Fatalf("want 1 partition, got %d", len(metas))
	}
	m := metas[0]
	oldMaster := m.Master().Site
	var reps []simnet.SiteID
	for s := simnet.SiteID(0); int(s) < 3; s++ {
		if s == oldMaster {
			continue
		}
		if err := e.AddReplicaOp(m.ID, s, storage.DefaultColumnLayout()); err != nil {
			t.Fatal(err)
		}
		reps = append(reps, s)
	}
	fresh, stale := reps[0], reps[1]

	sess := e.NewSession()
	write := func(row int64, v float64) {
		t.Helper()
		if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
			updateOp(tbl, row, 2, types.NewFloat64(v)),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 20; i++ {
		write(i, -1)
	}
	waitReplicaVersion(t, e, m.ID, stale, masterVersion(t, e, m), time.Second)

	// Cut the stale replica off from the log broker; it stops applying.
	e.Faults.SetLink(simnet.ASASite, stale, faults.LinkFault{Drop: 1})
	for i := int64(20); i < 40; i++ {
		write(i, -2)
	}
	want := masterVersion(t, e, m)
	waitReplicaVersion(t, e, m.ID, fresh, want, time.Second)

	if err := e.CrashSite(oldMaster); err != nil {
		t.Fatal(err)
	}
	if got := m.Master().Site; got != fresh {
		t.Fatalf("failover promoted site %d, want freshest replica %d", got, fresh)
	}
	p, ok := e.siteOf(fresh).Partition(m.ID)
	if !ok || p.Version() < want {
		t.Fatalf("promoted master at version %v, want >= %d", p, want)
	}
	// Committed writes survive the failover.
	res, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, 30, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tuples[0][0].Float(); got != -2 {
		t.Errorf("row 30 after failover = %v, want -2", got)
	}

	// The old master recovers and rejoins as a replica of the new master.
	e.Faults.ClearLinks()
	if err := e.RecoverSite(oldMaster); err != nil {
		t.Fatal(err)
	}
	if got := m.Master().Site; got != fresh {
		t.Fatalf("recovery moved mastership to %d, want it to stay at %d", got, fresh)
	}
	if !m.HasCopyAt(oldMaster) {
		t.Fatal("old master did not rejoin as a replica")
	}
	waitReplicaVersion(t, e, m.ID, oldMaster, masterVersion(t, e, m), time.Second)
}

func TestPartitionHealsAndConverges(t *testing.T) {
	e, tbl := newFaultEngine(t, 2, 2, 80, noAdapt)
	// Pick a partition mastered at one site and replicate it on the other.
	var m *metadata.PartitionMeta
	for _, c := range e.Dir.TablePartitions(tbl.ID) {
		m = c
		break
	}
	masterSite := m.Master().Site
	replicaSite := simnet.SiteID(1 - int(masterSite))
	if err := e.AddReplicaOp(m.ID, replicaSite, storage.DefaultColumnLayout()); err != nil {
		t.Fatal(err)
	}

	// Partition the replica's site away from the broker: replication stalls
	// but the master keeps committing.
	e.Faults.Partition(
		[]simnet.SiteID{masterSite, simnet.ASASite},
		[]simnet.SiteID{replicaSite},
	)
	sess := e.NewSession()
	row := int64(m.Bounds.RowStart)
	for i := 0; i < 25; i++ {
		if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
			updateOp(tbl, row, 2, types.NewFloat64(float64(100+i))),
		}}); err != nil {
			t.Fatalf("write at master during partition: %v", err)
		}
	}
	want := masterVersion(t, e, m)
	rp, ok := e.siteOf(replicaSite).Partition(m.ID)
	if !ok {
		t.Fatal("replica copy missing")
	}
	if rp.Version() >= want {
		t.Fatalf("replica version %d reached master %d despite the partition", rp.Version(), want)
	}

	if !e.Faults.Partitioned() {
		t.Fatal("registry does not report the partition")
	}
	e.HealNet()
	// Background replication converges the replica after the heal.
	waitReplicaVersion(t, e, m.ID, replicaSite, want, 2*time.Second)

	res, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, row, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tuples[0][0].Float(); got != 124 {
		t.Errorf("row %d after heal = %v, want 124", row, got)
	}
}

func TestUnavailablePartitionTimesOutTyped(t *testing.T) {
	e, tbl := newFaultEngine(t, 2, 2, 40, noAdapt)
	// Find a partition with no replicas and crash its master: requests
	// against it must observe the deadline and surface the typed timeout.
	m := e.Dir.TablePartitions(tbl.ID)[0]
	downSite := m.Master().Site
	if err := e.CrashSite(downSite); err != nil {
		t.Fatal(err)
	}
	sess := e.NewSession()
	start := time.Now()
	_, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		updateOp(tbl, int64(m.Bounds.RowStart), 2, types.NewFloat64(1)),
	}})
	if !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("write to unavailable partition: err = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("operation hung for %v instead of observing its deadline", d)
	}
	if err := e.RecoverSite(downSite); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		updateOp(tbl, int64(m.Bounds.RowStart), 2, types.NewFloat64(1)),
	}}); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}
