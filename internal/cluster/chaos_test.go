package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proteus/internal/admission"
	"proteus/internal/exec"
	"proteus/internal/faults"
	"proteus/internal/query"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
	"proteus/internal/vclock"
)

// TestChaos runs a seeded kill/partition/restore schedule against an
// active mixed workload and asserts the recovery invariants: no
// acknowledged write is lost, every partition ends with a live master,
// and every surviving replica converges to its master's version.
// `make chaos` runs it standalone under the race detector.
func TestChaos(t *testing.T) {
	runChaos(t, vclock.Wall{}, nil, false)
}

// TestChaosSimClock replays the identical seeded chaos schedule on the
// simulated clock: every sleep — interconnect charges, retry backoff,
// schedule pacing, the convergence wait — runs in virtual time, so the
// same invariants (zero acked-write loss, live masters, replica
// convergence) are checked without spending the schedule's wall duration.
func TestChaosSimClock(t *testing.T) {
	sim := vclock.NewSim(vclock.SimConfig{})
	defer sim.Stop()
	runChaos(t, sim, func(cfg *Config) {
		// fastConfig zeroes link latency, which is right for wall runs but
		// starves the simulation: the hot writer loops then have no virtual
		// cost per op, so the clock can only advance at commit boundaries.
		// Model the LAN instead so writers spend virtual time in Send.
		cfg.Net = simnet.Config{BaseLatency: 50 * time.Microsecond, BytesPerSecond: 1 << 30}
	}, false)
}

// TestChaosWithAdmission repeats the chaos run with token-bucket
// admission enabled at a rate the hot writer loops exceed, so a share of
// the offered writes is shed mid-chaos. The invariants tighten: every
// shed is the typed faults.ErrOverload carrying a RetryAfter hint, a
// shed write is never acknowledged (it never executed, so the
// acked-exactly-matches-stored check still holds), and zero acked-write
// loss survives crashes, partitions and shedding together.
func TestChaosWithAdmission(t *testing.T) {
	runChaos(t, vclock.Wall{}, func(cfg *Config) {
		cfg.Admission = admission.Config{
			Policy:           admission.TokenBucket,
			Default:          admission.Limits{Rate: 2000, Burst: 100},
			MaxQueue:         128,
			MaxWait:          2 * time.Millisecond,
			MaxCommitBacklog: 1 << 12,
		}
	}, true)
}

func runChaos(t *testing.T, clk vclock.Clock, tune func(*Config), wantSheds bool) {
	const (
		seed     = 7
		numSites = 4
		numRows  = 400
		writers  = 4
		duration = 1500 * time.Millisecond
	)
	e, tbl := newFaultEngine(t, numSites, 4, numRows, func(cfg *Config) {
		cfg.Clock = clk
		cfg.FaultSeed = seed
		cfg.OpDeadline = 300 * time.Millisecond
		if tune != nil {
			tune(cfg)
		}
	})
	// Replicate every partition once so crashed masters have failover
	// candidates (the advisor may add or remove more as it sees fit).
	for _, m := range e.Dir.TablePartitions(tbl.ID) {
		target := simnet.SiteID((int(m.Master().Site) + 1) % numSites)
		if err := e.AddReplicaOp(m.ID, target, storage.DefaultColumnLayout()); err != nil {
			t.Fatal(err)
		}
	}

	sites := make([]simnet.SiteID, numSites)
	for i := range sites {
		sites[i] = simnet.SiteID(i)
	}
	schedule := faults.NewSchedule(seed, faults.ScheduleConfig{
		Sites:      sites,
		Duration:   duration,
		Crashes:    3,
		Partitions: 1,
	})
	crashes, partitions := 0, 0
	for _, ev := range schedule {
		switch ev.Kind {
		case faults.EventCrash:
			crashes++
		case faults.EventPartition:
			partitions++
		}
	}
	if crashes < 3 || partitions < 1 {
		t.Fatalf("schedule too tame: %d crashes, %d partitions", crashes, partitions)
	}

	// Mixed workload: writers own disjoint key ranges and remember every
	// acknowledged write; readers run scans whose errors are tolerated.
	rowsPer := int64(numRows / writers)
	acked := make([]map[int64]float64, writers)
	stop := make(chan struct{})
	var sheds, badSheds atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		acked[w] = make(map[int64]float64)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := e.NewSession()
			v := float64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v++
				row := int64(w)*rowsPer + int64(v)%rowsPer
				_, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
					updateOp(tbl, row, 2, types.NewFloat64(v)),
				}})
				switch {
				case err == nil:
					acked[w][row] = v
				case errors.Is(err, faults.ErrOverload):
					// Shed ⇒ never acked; it must carry the typed hint.
					sheds.Add(1)
					if _, ok := faults.RetryAfterHint(err); !ok {
						badSheds.Add(1)
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := e.NewSession()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl))
			clk.Sleep(5 * time.Millisecond)
		}
	}()

	// Drive the seeded schedule on the clock: identical virtual pacing
	// whether the clock is wall or simulated.
	start := clk.Now()
	for _, ev := range schedule {
		if d := ev.At - clk.Since(start); d > 0 {
			clk.Sleep(d)
		}
		if err := e.ApplyFault(ev); err != nil {
			t.Errorf("apply %v: %v", ev.Kind, err)
		}
	}
	if d := duration - clk.Since(start); d > 0 {
		clk.Sleep(d)
	}

	// Restore the cluster: heal any partition, recover any down site.
	e.HealNet()
	for _, id := range e.Faults.DownSites() {
		if err := e.RecoverSite(id); err != nil {
			t.Fatalf("recover site %d: %v", id, err)
		}
	}
	close(stop)
	wg.Wait()

	// Every partition ends with a live master.
	for _, m := range e.Dir.All() {
		ms := e.siteOf(m.Master().Site)
		if ms.Down() {
			t.Fatalf("partition %d mastered at down site %d", m.ID, m.Master().Site)
		}
		if _, ok := ms.Partition(m.ID); !ok {
			t.Fatalf("partition %d has no copy at its master site %d", m.ID, m.Master().Site)
		}
	}

	// Surviving replicas converge to their master's version.
	waitAllConverged(t, e, clk, 5*time.Second)

	// Zero committed-write loss: every acknowledged write reads back.
	// Verification reads retry through admission sheds — the controller
	// is still active and the sequential read-back can outrun the bucket.
	sess := e.NewSession()
	checked := 0
	for w := 0; w < writers; w++ {
		for row, want := range acked[w] {
			var res exec.Rel
			var err error
			for {
				res, err = e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, row, 2)}})
				if !errors.Is(err, faults.ErrOverload) {
					break
				}
				clk.Sleep(time.Millisecond)
			}
			if err != nil {
				t.Fatalf("read row %d: %v", row, err)
			}
			if got := res.Tuples[0][0].Float(); got != want {
				t.Errorf("row %d = %v, want acked %v (lost committed write)", row, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no writes were acknowledged during chaos; nothing was exercised")
	}
	if n := badSheds.Load(); n > 0 {
		t.Errorf("%d sheds lacked the typed RetryAfter hint", n)
	}
	if wantSheds && sheds.Load() == 0 {
		t.Error("admission enabled but no writes were shed; overload path unexercised")
	}
	if !wantSheds && sheds.Load() > 0 {
		t.Errorf("AlwaysAdmit run shed %d writes", sheds.Load())
	}
	t.Logf("chaos: %d events, %d acked rows verified, %d sheds, %d failovers, %d recoveries",
		len(schedule), checked, sheds.Load(),
		e.Obs.Counter("faults.failovers").Value(),
		e.Obs.Counter("faults.recoveries").Value())
}

// waitAllConverged waits until every replica of every partition has
// applied at least its master's current version.
func waitAllConverged(t *testing.T, e *Engine, clk vclock.Clock, timeout time.Duration) {
	t.Helper()
	start := clk.Now()
	for {
		lagging := ""
		for _, m := range e.Dir.All() {
			mp, ok := e.siteOf(m.Master().Site).Partition(m.ID)
			if !ok {
				lagging = fmt.Sprintf("partition %d: master copy missing", m.ID)
				break
			}
			v := mp.Version()
			for _, r := range m.Replicas() {
				rp, ok := e.siteOf(r.Site).Partition(m.ID)
				if !ok {
					lagging = fmt.Sprintf("partition %d: replica copy missing at site %d", m.ID, r.Site)
					break
				}
				if rp.Version() < v {
					lagging = fmt.Sprintf("partition %d: site %d at %d < master %d", m.ID, r.Site, rp.Version(), v)
					break
				}
			}
			if lagging != "" {
				break
			}
		}
		if lagging == "" {
			return
		}
		if clk.Since(start) > timeout {
			t.Fatalf("replicas did not converge: %s", lagging)
		}
		clk.Sleep(2 * time.Millisecond)
	}
}
