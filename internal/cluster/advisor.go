package cluster

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/asa"
	"proteus/internal/forecast"
	"proteus/internal/metadata"
	"proteus/internal/obs"
	"proteus/internal/partition"
	"proteus/internal/plan"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
)

// debugAdvisor enables decision tracing via PROTEUS_DEBUG_ADVISOR=1.
var debugAdvisor = os.Getenv("PROTEUS_DEBUG_ADVISOR") == "1"

// AdaptConfig parameterizes the adaptive storage advisor.
type AdaptConfig struct {
	Flags asa.Flags
	// Lambda weighs expected benefit against upfront cost (§5.3.2).
	Lambda float64
	// Horizon is the window over which expected benefits accrue — the
	// paper's configurable 10-minute interval, scaled to seconds here.
	Horizon time.Duration
	// PredictiveInterval is the period of the predictive planning loop.
	PredictiveInterval time.Duration
	// CapacityInterval is the period of the storage-pressure check.
	CapacityInterval time.Duration
	// MinSplitRows is the smallest partition the advisor will split.
	MinSplitRows int
	// MaxChangesPerTrigger bounds the §5.3.2 repeat-until-no-benefit loop.
	MaxChangesPerTrigger int
	// SampleEvery gates plan-triggered adaptation: every Nth request is
	// considered in addition to those with above-average leaf cost.
	SampleEvery int
}

// DefaultAdaptConfig returns the standard advisor settings.
func DefaultAdaptConfig() AdaptConfig {
	return AdaptConfig{
		Flags:                asa.AllFlags(),
		Lambda:               3,
		Horizon:              5 * time.Second,
		PredictiveInterval:   500 * time.Millisecond,
		CapacityInterval:     time.Second,
		MinSplitRows:         64,
		MaxChangesPerTrigger: 2,
		SampleEvery:          16,
	}
}

// Advisor drives Proteus' adaptation: plan-triggered, predictive and
// capacity-triggered layout changes (§5.3.2).
type Advisor struct {
	e    *Engine
	cfg  AdaptConfig
	eval *asa.Evaluator

	mu sync.Mutex // serializes layout changes

	counter atomic.Int64
	// ewma of request latencies (µs) per class, for the above-average
	// trigger.
	ewmaMu   sync.Mutex
	ewmaOLTP float64
	ewmaOLAP float64

	// Decision reuse for layout changes (§5.3.3).
	decisions *plan.DecisionCache

	// Per-partition hybrid predictors for the predictive trigger.
	predMu sync.Mutex
	preds  map[partition.ID]*forecast.Hybrid

	// lastChange rate-limits re-adaptation of the same partition,
	// hysteresis against format flip-flopping under mixed access.
	lcMu       sync.Mutex
	lastChange map[partition.ID]time.Time

	changes atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

func newAdvisor(e *Engine, cfg AdaptConfig) *Advisor {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 3
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 5 * time.Second
	}
	if cfg.MaxChangesPerTrigger <= 0 {
		cfg.MaxChangesPerTrigger = 2
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 16
	}
	if cfg.MinSplitRows <= 0 {
		cfg.MinSplitRows = 64
	}
	return &Advisor{
		e:          e,
		cfg:        cfg,
		eval:       &asa.Evaluator{Model: e.Model, Lambda: cfg.Lambda},
		decisions:  plan.NewDecisionCache(),
		preds:      make(map[partition.ID]*forecast.Hybrid),
		lastChange: make(map[partition.ID]time.Time),
		stop:       make(chan struct{}),
	}
}

func (a *Advisor) start() {
	if a.cfg.PredictiveInterval > 0 {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			t := a.e.clk.NewTicker(a.cfg.PredictiveInterval)
			defer t.Stop()
			for {
				select {
				case <-a.e.stop:
					return
				case <-t.C:
					a.predictiveTick()
				}
			}
		}()
	}
	if a.cfg.CapacityInterval > 0 {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			t := a.e.clk.NewTicker(a.cfg.CapacityInterval)
			defer t.Stop()
			for {
				select {
				case <-a.e.stop:
					return
				case <-t.C:
					a.capacityTick()
				}
			}
		}()
	}
}

// Changes reports how many layout changes the advisor has executed.
func (a *Advisor) Changes() int64 { return a.changes.Load() }

// trace appends one decision to the engine's ASA decision trace.
func (a *Advisor) trace(pid partition.ID, trigger string, c asa.Candidate, planD, execD time.Duration, err error) {
	if a.e.Trace == nil {
		return
	}
	d := obs.Decision{
		At:        a.e.clk.Now(),
		Partition: uint64(pid),
		Trigger:   trigger,
		Kind:      c.Kind.String(),
		Layout:    c.NewLayout.String(),
		Net:       c.Net,
		PlanTime:  planD,
		ExecTime:  execD,
		Executed:  err == nil,
	}
	if err != nil {
		d.Err = err.Error()
	}
	a.e.Trace.Add(d)
}

// shouldConsider implements §5.3.2's gating: adapt when the request's cost
// is above the decayed average, or on a deterministic sample.
func (a *Advisor) shouldConsider(olap bool, d time.Duration) bool {
	us := float64(d.Microseconds())
	a.ewmaMu.Lock()
	var above bool
	if olap {
		if a.ewmaOLAP == 0 {
			a.ewmaOLAP = us
		}
		above = us > a.ewmaOLAP
		a.ewmaOLAP = a.ewmaOLAP*0.95 + us*0.05
	} else {
		if a.ewmaOLTP == 0 {
			a.ewmaOLTP = us
		}
		above = us > a.ewmaOLTP
		a.ewmaOLTP = a.ewmaOLTP*0.95 + us*0.05
	}
	a.ewmaMu.Unlock()
	if above {
		return true
	}
	return a.counter.Add(1)%int64(a.cfg.SampleEvery) == 0
}

// onTxnExecuted is the OLTP plan trigger.
func (a *Advisor) onTxnExecuted(tp *plan.TxnPlan, d time.Duration) {
	if !a.shouldConsider(false, d) {
		return
	}
	// Costliest leaf: the written partition with the highest contention,
	// else the first piece touched.
	var target *metadata.PartitionMeta
	bestWait := time.Duration(-1)
	for _, b := range tp.Bindings {
		for _, m := range b.Pieces {
			if b.Op.Kind == query.OpRead && target != nil {
				continue
			}
			_, wait := a.e.Locks.Contention(m.ID)
			if wait > bestWait {
				bestWait, target = wait, m
			}
		}
	}
	if target != nil {
		a.adaptPartition(target.ID, false, "oltp-plan", ClassOLTPLayoutPlan, ClassOLTPLayoutExec)
	}
}

// onQueryExecuted is the OLAP plan trigger: adapt the scanned partition
// contributing the most estimated cost (largest rows on the least
// scan-friendly layout).
func (a *Advisor) onQueryExecuted(pn plan.PNode, d time.Duration) {
	if !a.shouldConsider(true, d) {
		return
	}
	var target partition.ID
	var bestScore float64 = -1
	var walk func(plan.PNode)
	walk = func(n plan.PNode) {
		switch v := n.(type) {
		case *plan.PScan:
			for _, seg := range v.Segments {
				for _, p := range seg.Pieces {
					rows := 1.0
					if p.Meta.ZoneMap != nil {
						rows = float64(p.Meta.ZoneMap.Rows())
					}
					score := rows
					if p.Copy.Layout.Format == storage.RowFormat {
						score *= 4 // rows are the scan-hostile layout
					}
					if p.Copy.Layout.Tier == storage.DiskTier {
						score *= 2
					}
					if score > bestScore {
						bestScore, target = score, p.Meta.ID
					}
				}
			}
		case *plan.PJoin:
			walk(v.Left)
			walk(v.Right)
		case *plan.PAgg:
			walk(v.Child)
		}
	}
	walk(pn)
	if bestScore >= 0 {
		a.adaptPartition(target, false, "olap-plan", ClassOLAPLayoutPlan, ClassOLAPLayoutExec)
	}
}

// buildView assembles the decision snapshot for one partition.
func (a *Advisor) buildView(m *metadata.PartitionMeta, predicted bool) (asa.PartitionView, bool) {
	master := m.Master()
	if a.e.siteOf(master.Site).Down() {
		return asa.PartitionView{}, false // awaiting failover or recovery
	}
	p, ok := a.e.siteOf(master.Site).Partition(m.ID)
	if !ok {
		return asa.PartitionView{}, false
	}
	st := p.Stats()
	rowBytes := a.e.Dir.AvgRowBytes(m.Bounds.Table, nil)
	if rowBytes == 0 {
		rowBytes = 64
	}

	horizonSec := a.cfg.Horizon.Seconds()
	window := 8 // recent fine buckets
	rates := asa.AccessRates{
		Updates:    m.Tracker.RecentRate(forecast.Update, window) * horizonSec,
		PointReads: m.Tracker.RecentRate(forecast.PointRead, window) * horizonSec,
		Scans:      m.Tracker.RecentRate(forecast.Scan, window) * horizonSec,
	}
	if predicted {
		rates = a.predictedRates(m, horizonSec)
	}
	total := rates.Updates + rates.PointReads + rates.Scans
	prob, delay := forecast.ArrivalEstimate(total)
	rates.Prob, rates.Delay = prob, delay

	ongoing := asa.AccessRates{
		Updates:    m.Tracker.RecentRate(forecast.Update, 2),
		PointReads: m.Tracker.RecentRate(forecast.PointRead, 2),
		Scans:      m.Tracker.RecentRate(forecast.Scan, 2),
		Prob:       1,
		Delay:      0,
	}

	waiters, wait := a.e.Locks.Contention(m.ID)

	// Column heat from the directory's per-table statistics.
	cs := a.e.Dir.ColumnStats(m.Bounds.Table)
	nCols := m.Bounds.NumCols()
	writeHot := make([]bool, nCols)
	readHot := make([]bool, nCols)
	for i := 0; i < nCols; i++ {
		g := int(m.Bounds.GlobalCol(schema.ColID(i)))
		if g < len(cs) {
			writeHot[i] = cs[g].Writes > cs[g].Reads && cs[g].Writes > 0
			readHot[i] = cs[g].Reads >= cs[g].Writes && cs[g].Reads > 0
		}
	}

	coSite := simnet.SiteID(-1)
	if tops := m.CoAccessed(1); len(tops) == 1 {
		if cm, ok := a.e.Dir.Get(tops[0]); ok {
			coSite = cm.Master().Site
		}
	}

	var reps []asa.ReplicaView
	for _, r := range m.Replicas() {
		reps = append(reps, asa.ReplicaView{Site: r.Site, Layout: r.Layout})
	}
	return asa.PartitionView{
		PID:      m.ID,
		Bounds:   m.Bounds,
		Rows:     st.Rows,
		RowBytes: rowBytes,
		Master:   asa.ReplicaView{Site: master.Site, Layout: master.Layout},
		Replicas: reps,
		Rates:    rates,
		Ongoing:  ongoing,
		// Scans in the evaluated workloads read whole partitions unless
		// zone maps skip them entirely; evaluating at full selectivity
		// keeps the feature inside the cost models' training range.
		ScanSelectivity:   1.0,
		AvgUpdateCols:     maxIntA(1, nCols/3),
		ContentionWaiters: waiters,
		ContentionWait:    wait,
		WriteHotCols:      writeHot,
		ReadHotCols:       readHot,
		CoAccessSite:      coSite,
	}, true
}

// predictedRates forecasts the next-horizon access counts with the
// per-partition hybrid predictors (§5.2.2).
func (a *Advisor) predictedRates(m *metadata.PartitionMeta, horizonSec float64) asa.AccessRates {
	a.predMu.Lock()
	h, ok := a.preds[m.ID]
	if !ok {
		h = forecast.NewHybrid(8, int64(m.ID))
		a.preds[m.ID] = h
	}
	a.predMu.Unlock()

	bucketsPerHorizon := horizonSec / m.Tracker.FineInterval().Seconds()
	predict := func(kind forecast.AccessKind) float64 {
		series := m.Tracker.Fine(kind)
		// Train incrementally on a bounded recent window: refitting the
		// full history on every call made prediction the dominant cost.
		if len(series) > 64 {
			series = series[len(series)-64:]
		}
		h.Fit(series)
		perBucket := h.Predict(series, 1)
		return perBucket * bucketsPerHorizon
	}
	return asa.AccessRates{
		Updates:    predict(forecast.Update),
		PointReads: predict(forecast.PointRead),
		Scans:      predict(forecast.Scan),
	}
}

// adaptPartition runs the §5.3.2 loop: generate candidates, evaluate N(S),
// execute the best while positive. A per-partition cooldown provides
// hysteresis: a freshly changed partition is left alone long enough for
// its access statistics and cost observations to reflect the new layout.
func (a *Advisor) adaptPartition(pid partition.ID, predicted bool, trigger string, planClass, execClass OpClass) {
	const cooldown = 400 * time.Millisecond
	a.lcMu.Lock()
	if last, ok := a.lastChange[pid]; ok && a.e.clk.Since(last) < cooldown {
		a.lcMu.Unlock()
		return
	}
	a.lcMu.Unlock()
	// Layout planning must not serialize the request path: the ASA plans
	// asynchronously from execution (§3). If another adaptation is in
	// flight, skip this trigger — the next request re-triggers.
	if !a.mu.TryLock() {
		return
	}
	defer a.mu.Unlock()
	for i := 0; i < a.cfg.MaxChangesPerTrigger; i++ {
		m, ok := a.e.Dir.Get(pid)
		if !ok {
			return
		}
		planStart := a.e.clk.Now()
		view, ok := a.buildView(m, predicted)
		if !ok {
			return
		}
		if view.Rows == 0 {
			return // nothing stored; no change can pay off
		}
		best, found := a.bestCandidate(view)
		planDur := a.e.clk.Since(planStart)
		a.e.stats.Record(planClass, planDur)
		if debugAdvisor {
			fmt.Printf("[advisor] pid=%d layout=%v rates={u:%.1f p:%.1f s:%.1f} best=%v net=%.0f found=%v\n",
				pid, view.Master.Layout, view.Rates.Updates, view.Rates.PointReads, view.Rates.Scans,
				best.Kind, best.Net, found)
		}
		if !found || best.Net <= 0 {
			return
		}
		execStart := a.e.clk.Now()
		err := a.execute(view, best)
		a.trace(pid, trigger, best, planDur, a.e.clk.Since(execStart), err)
		if err != nil {
			return
		}
		a.changes.Add(1)
		a.e.stats.Record(execClass, a.e.clk.Since(execStart))
		a.lcMu.Lock()
		a.lastChange[pid] = a.e.clk.Now()
		a.lcMu.Unlock()
		// After structural changes the partition ID is gone; stop.
		switch best.Kind {
		case asa.SplitHorizontal, asa.SplitVertical, asa.MergeWith:
			return
		}
	}
}

// bestCandidate generates, filters and evaluates candidates, reusing
// bucketed decisions when enabled (§5.3.3).
func (a *Advisor) bestCandidate(view asa.PartitionView) (asa.Candidate, bool) {
	cands := asa.GenerateCandidates(view, a.cfg.Flags, len(a.e.Sites))
	var viable []asa.Candidate
	for _, c := range cands {
		if (c.Kind == asa.SplitHorizontal || c.Kind == asa.SplitVertical) && view.Rows < a.cfg.MinSplitRows {
			continue
		}
		// Never place work on a crashed site.
		if int(c.Site) >= 0 && int(c.Site) < len(a.e.Sites) && a.e.siteOf(c.Site).Down() {
			continue
		}
		viable = append(viable, c)
	}
	if len(viable) == 0 {
		return asa.Candidate{}, false
	}

	if a.cfg.Flags.DecisionReuse {
		key := a.decisionKey(view)
		if d, ok := a.decisions.Lookup(key); ok {
			if cached, ok := d.(asa.Candidate); ok && cached.Net > 0 {
				if debugAdvisor {
					fmt.Printf("[advisor]   cache hit pid=%d cached=%v net=%.0f\n", view.PID, cached.Kind, cached.Net)
				}
				// Reapply the cached decision if it is still viable for
				// this partition (same change kind and resulting layout).
				for _, c := range viable {
					if c.Kind == cached.Kind && c.NewLayout == cached.NewLayout {
						c.Net = cached.Net
						return c, true
					}
				}
			}
		}
	}

	best := asa.Candidate{Net: -1}
	for _, c := range viable {
		ev := a.eval.Evaluate(view, c)
		if debugAdvisor {
			fmt.Printf("[advisor]   cand pid=%d %v -> %v net=%.0f\n", view.PID, c.Kind, c.NewLayout, ev.Net)
		}
		if ev.Net > best.Net {
			best = ev
		}
	}
	if a.cfg.Flags.DecisionReuse && best.Net > 0 {
		// Only positive decisions are reused; rejections re-evaluate as
		// rates and models evolve.
		a.decisions.Store(a.decisionKey(view), best)
	}
	return best, best.Net > 0
}

// decisionKey buckets the view's inputs for decision reuse.
func (a *Advisor) decisionKey(view asa.PartitionView) string {
	tags := []string{
		view.Master.Layout.String(),
		fmt.Sprintf("reps=%d", len(view.Replicas)),
	}
	return plan.Key("layout-change", tags, []float64{
		float64(view.Rows),
		view.Rates.Updates,
		view.Rates.PointReads,
		view.Rates.Scans,
		float64(view.ContentionWaiters),
	})
}

// execute dispatches a candidate to the engine's layout operators.
func (a *Advisor) execute(view asa.PartitionView, c asa.Candidate) error {
	switch c.Kind {
	case asa.ChangeFormat, asa.ChangeTier, asa.ChangeSort, asa.ChangeCompress:
		return a.e.ChangeCopyLayout(c.PID, c.Site, c.NewLayout)
	case asa.SplitHorizontal:
		return a.e.SplitH(c.PID, c.SplitRow)
	case asa.SplitVertical:
		// The write-hot side keeps rows; the read side keeps the current
		// format.
		left := storage.DefaultRowLayout()
		right := view.Master.Layout
		right.SortBy = storage.NoSort
		if len(view.WriteHotCols) > 0 && !view.WriteHotCols[0] {
			left, right = right, left
			left.SortBy = storage.NoSort
		}
		return a.e.SplitV(c.PID, c.SplitCol, left, right)
	case asa.MergeWith:
		return a.e.MergeH(c.PID, c.Other)
	case asa.AddReplica:
		return a.e.AddReplicaOp(c.PID, c.Site, c.NewLayout)
	case asa.RemoveReplica:
		return a.e.RemoveReplicaOp(c.PID, c.Site)
	case asa.ChangeMaster:
		return a.e.ChangeMasterOp(c.PID, c.Site)
	}
	return fmt.Errorf("cluster: unknown candidate kind %v", c.Kind)
}

// predictiveTick considers layout changes for partitions whose predicted
// access pattern diverges from the recent one (§5.3.2).
func (a *Advisor) predictiveTick() {
	type scored struct {
		pid partition.ID
		gap float64
	}
	var worst []scored
	for _, m := range a.e.Dir.All() {
		recent := m.Tracker.RecentRate(forecast.Update, 8) + m.Tracker.RecentRate(forecast.Scan, 8)
		if recent == 0 && m.Tracker.Total(forecast.Update)+m.Tracker.Total(forecast.Scan) == 0 {
			continue
		}
		pr := a.predictedRates(m, a.cfg.Horizon.Seconds())
		horizon := a.cfg.Horizon.Seconds()
		predictedRate := (pr.Updates + pr.Scans) / horizon
		gap := absF(predictedRate - recent)
		if gap > 0.25*maxFA(recent, 1) {
			worst = append(worst, scored{m.ID, gap})
		}
	}
	sort.Slice(worst, func(i, j int) bool { return worst[i].gap > worst[j].gap })
	if len(worst) > 4 {
		worst = worst[:4]
	}
	for _, w := range worst {
		a.adaptPartition(w.pid, true, "predictive", ClassOLAPLayoutPlan, ClassOLAPLayoutExec)
	}
	a.considerMerges()
}

// considerMerges proposes merging adjacent cooled-down partitions of the
// same table at the same master site (§6.3.4: "Over time, Proteus merges
// these partitions into larger partitions" once inserted data becomes
// read-only). At most one merge executes per tick.
func (a *Advisor) considerMerges() {
	if !a.cfg.Flags.Merging {
		return
	}
	type groupKey struct {
		table    schema.TableID
		colStart schema.ColID
		colEnd   schema.ColID
		site     simnet.SiteID
	}
	groups := map[groupKey][]*metadata.PartitionMeta{}
	for _, m := range a.e.Dir.All() {
		if a.e.siteOf(m.Master().Site).Down() {
			continue
		}
		k := groupKey{m.Bounds.Table, m.Bounds.ColStart, m.Bounds.ColEnd, m.Master().Site}
		groups[k] = append(groups[k], m)
	}
	const coldRate = 0.5 // accesses/sec below which a partition is "cold"
	for _, ms := range groups {
		sort.Slice(ms, func(i, j int) bool { return ms[i].Bounds.RowStart < ms[j].Bounds.RowStart })
		for i := 0; i+1 < len(ms); i++ {
			l, r := ms[i], ms[i+1]
			if l.Bounds.RowEnd != r.Bounds.RowStart {
				continue
			}
			if partRate(l) > coldRate || partRate(r) > coldRate {
				continue
			}
			a.mu.Lock()
			planStart := a.e.clk.Now()
			view, ok := a.buildView(l, false)
			if !ok || view.Rows == 0 {
				a.mu.Unlock()
				continue
			}
			cand := a.eval.Evaluate(view, asa.Candidate{
				Kind: asa.MergeWith, PID: l.ID, Other: r.ID, Site: l.Master().Site,
			})
			planDur := a.e.clk.Since(planStart)
			if cand.Net > 0 {
				start := a.e.clk.Now()
				err := a.e.MergeH(l.ID, r.ID)
				a.trace(l.ID, "merge", cand, planDur, a.e.clk.Since(start), err)
				if err == nil {
					a.changes.Add(1)
					a.e.stats.Record(ClassOLAPLayoutExec, a.e.clk.Since(start))
					a.mu.Unlock()
					return // one merge per tick
				}
			}
			a.mu.Unlock()
		}
	}
}

// partRate sums a partition's recent access rates.
func partRate(m *metadata.PartitionMeta) float64 {
	return m.Tracker.RecentRate(forecast.Update, 8) +
		m.Tracker.RecentRate(forecast.PointRead, 8) +
		m.Tracker.RecentRate(forecast.Scan, 8)
}

// capacityTick responds to sites nearing their memory capacity (§5.3.2).
func (a *Advisor) capacityTick() {
	for _, s := range a.e.Sites {
		if s.Down() {
			continue
		}
		cap := s.MemCapacity()
		if cap <= 0 {
			continue
		}
		used := s.MemUsage()
		if float64(used) < 0.9*float64(cap) {
			continue
		}
		a.relieveSite(s.ID, used-int64(0.8*float64(cap)))
	}
}

// relieveSite frees at least `need` bytes from a site's memory tier by the
// option with the best net benefit per byte.
func (a *Advisor) relieveSite(siteID simnet.SiteID, need int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	type opt struct {
		o     asa.CapacityOption
		score float64
	}
	var opts []opt
	for _, p := range a.e.siteOf(siteID).Partitions() {
		if p.Layout().Tier != storage.MemoryTier {
			continue
		}
		m, ok := a.e.Dir.Get(p.ID)
		if !ok {
			continue
		}
		view, ok := a.buildView(m, false)
		if !ok {
			continue
		}
		bytes := int64(p.Stats().Bytes)
		for _, co := range asa.CapacityCandidates(view, siteID, a.cfg.Flags, len(a.e.Sites), bytes) {
			ev := a.eval.Evaluate(view, co.Candidate)
			if co.BytesFreed <= 0 {
				continue
			}
			opts = append(opts, opt{o: asa.CapacityOption{Candidate: ev, BytesFreed: co.BytesFreed},
				score: ev.Net / float64(co.BytesFreed)})
		}
	}
	sort.Slice(opts, func(i, j int) bool { return opts[i].score > opts[j].score })
	freed := int64(0)
	for _, o := range opts {
		if freed >= need {
			return
		}
		m, ok := a.e.Dir.Get(o.o.Candidate.PID)
		if !ok {
			continue
		}
		view, ok := a.buildView(m, false)
		if !ok {
			continue
		}
		execStart := a.e.clk.Now()
		err := a.execute(view, o.o.Candidate)
		a.trace(o.o.Candidate.PID, "capacity", o.o.Candidate, 0, a.e.clk.Since(execStart), err)
		if err == nil {
			a.changes.Add(1)
			freed += o.o.BytesFreed
		}
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func maxFA(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxIntA(a, b int) int {
	if a > b {
		return a
	}
	return b
}
