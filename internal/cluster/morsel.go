// Morsel-driven parallel scan execution (the NUMA-aware morsel scheduling
// idea of Leis et al., adapted to Proteus' per-partition layouts): each
// site splits its hosted partitions into fixed-size row-range morsels, a
// per-site worker pool sized to the machine's parallelism and shared by
// every concurrent query pulls morsels from a feed, evaluates predicate +
// projection + partial aggregation over them on the layout-native path,
// and results flow to the coordinator as bounded batches over channels
// with backpressure. LIMIT and context cancellation terminate early by
// closing the morsel feed. Zone maps prune whole partitions before a
// single morsel is scheduled.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/cost"
	"proteus/internal/exec"
	"proteus/internal/partition"
	"proteus/internal/plan"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/txn"
	"proteus/internal/types"
	"proteus/internal/vclock"
)

func (e *Engine) morselRows() int {
	if e.cfg.MorselRows > 0 {
		return e.cfg.MorselRows
	}
	return exec.DefaultMorselRows
}

func (e *Engine) scanBatchRows() int {
	if e.cfg.ScanBatchRows > 0 {
		return e.cfg.ScanBatchRows
	}
	return exec.DefaultBatchRows
}

// morselEligible reports whether the morsel executor can run a scan: every
// segment must resolve to one vertical piece that alone covers the
// projection and predicate — either the segment's lone piece, or, for
// vertically partitioned segments, a piece whose partition holds every
// needed column. Splits with no covering piece stitch results by row id
// across pieces and stay on the legacy path.
func (e *Engine) morselEligible(ps *plan.PScan) bool {
	if e.cfg.DisableMorselExec || len(ps.Segments) == 0 {
		return false
	}
	for _, seg := range ps.Segments {
		if _, ok := morselPiece(ps, seg); !ok {
			return false
		}
	}
	return true
}

// morselPiece selects the vertical piece the morsel executor can scan on
// its own: the segment's lone piece, or the first piece whose partition
// bounds contain every projected column and every predicate column (the
// vertical pieces of one segment tile the same row range, so one covering
// piece yields exactly the rows the stitched scan would).
func morselPiece(ps *plan.PScan, seg plan.RowSegment) (plan.ScanPart, bool) {
	if len(seg.Pieces) == 1 {
		return seg.Pieces[0], true
	}
	for _, piece := range seg.Pieces {
		if pieceCovers(piece, ps) {
			return piece, true
		}
	}
	return plan.ScanPart{}, false
}

// pieceCovers reports whether the piece's partition holds every column the
// scan projects or filters on.
func pieceCovers(piece plan.ScanPart, ps *plan.PScan) bool {
	for _, c := range ps.Cols {
		if !piece.Meta.Bounds.ContainsCol(c) {
			return false
		}
	}
	for _, cond := range ps.Pred {
		if !piece.Meta.Bounds.ContainsCol(cond.Col) {
			return false
		}
	}
	return true
}

// partScan is the per-partition state shared by that partition's morsels:
// the captured store (stable under concurrent layout swaps — newer versions
// are invisible at the read snapshot), the pre-translated local predicate
// and projection, and atomics aggregating scan work for one cost
// observation per partition per query.
type partScan struct {
	p      *partition.Partition
	st     storage.Store
	siteID simnet.SiteID
	lcols  []schema.ColID
	lp     storage.Pred
	snap   uint64
	clk    vclock.Clock

	rows  atomic.Int64
	nanos atomic.Int64
}

// morselUnit is one scheduled scan unit: a row-id range of one partition.
type morselUnit struct {
	ps     *partScan
	lo, hi schema.RowID
}

// morselJob is one built parallel scan, ready to run in either row or
// partial-aggregation mode.
type morselJob struct {
	e      *Engine
	ctx    context.Context
	cancel context.CancelFunc
	coord  simnet.SiteID
	cols   []string // output labels
	units  map[simnet.SiteID][]morselUnit
	parts  []*partScan

	errOnce sync.Once
	err     error
}

func (j *morselJob) fail(err error) {
	j.errOnce.Do(func() {
		j.err = err
		j.cancel()
	})
}

// buildMorselJob resolves every segment's partition copy, prunes whole
// partitions through their zone maps, and splits the survivors into
// morsels grouped by hosting site. The returned job owns a ctx derived
// from the caller's; cancelling it closes the morsel feeds.
func (e *Engine) buildMorselJob(ctx context.Context, ps *plan.PScan, snap txn.VersionVector, coord simnet.SiteID) (*morselJob, error) {
	jctx, cancel := context.WithCancel(ctx)
	j := &morselJob{
		e:      e,
		ctx:    jctx,
		cancel: cancel,
		coord:  coord,
		cols:   colNames(ps.Cols),
		units:  make(map[simnet.SiteID][]morselUnit),
	}
	target := e.morselRows()
	scheduled := 0
	byPart := map[*partition.Partition]*partScan{}
	for _, seg := range ps.Segments {
		piece, ok := morselPiece(ps, seg)
		if !ok {
			cancel()
			return nil, fmt.Errorf("morsel: no covering piece for segment [%d,%d)", seg.Lo, seg.Hi)
		}
		p, err := e.sitePartition(piece.Meta.ID, piece.Copy.Site, snap[piece.Meta.ID])
		if err != nil {
			cancel()
			return nil, err
		}
		lp, _ := exec.LocalPred(p.Bounds, ps.Pred)
		morsels := p.Morsels(target)
		// Clip to the segment's row range (segments tile the table).
		clipped := morsels[:0]
		for _, m := range morsels {
			if m.Lo < seg.Lo {
				m.Lo = seg.Lo
			}
			if m.Hi > seg.Hi {
				m.Hi = seg.Hi
			}
			if m.Lo < m.Hi {
				clipped = append(clipped, m)
			}
		}
		if len(clipped) == 0 {
			continue
		}
		if p.ZoneMap().CanSkip(lp) {
			// Pruned before scheduling: no worker ever sees these units.
			e.cntMorselsPruned.Add(int64(len(clipped)))
			continue
		}
		sc := byPart[p]
		if sc == nil {
			lcols := make([]schema.ColID, len(ps.Cols))
			for i, c := range ps.Cols {
				lcols[i] = p.Bounds.LocalCol(c)
			}
			sc = &partScan{
				p: p, st: p.StoreSnapshot(), siteID: piece.Copy.Site,
				lcols: lcols, lp: lp, snap: snap[piece.Meta.ID], clk: e.clk,
			}
			byPart[p] = sc
			j.parts = append(j.parts, sc)
		}
		for _, m := range clipped {
			j.units[sc.siteID] = append(j.units[sc.siteID], morselUnit{ps: sc, lo: m.Lo, hi: m.Hi})
			scheduled++
		}
	}
	e.recMorselsPerQuery.Record(time.Duration(scheduled)) // count, not ns
	return j, nil
}

// scanUnit runs one morsel through the layout-native range path, streaming
// matching rows into fn and charging the work to the unit's partition.
func (u morselUnit) scanUnit(fn func(schema.Row) bool) {
	start := u.ps.clk.Now()
	partition.ScanStoreRange(u.ps.st, u.ps.lcols, u.ps.lp, u.lo, u.hi, u.ps.snap, fn)
	u.ps.nanos.Add(int64(u.ps.clk.Since(start)))
}

// scanUnitBatches runs one morsel through the columnar batch path,
// streaming pooled batches into fn and charging the work to the unit's
// partition. Batches are only valid inside fn.
func (u morselUnit) scanUnitBatches(maxRows int, fn func(*storage.Batch) bool) {
	start := u.ps.clk.Now()
	partition.ScanStoreBatchRange(u.ps.st, u.ps.lcols, u.ps.lp, u.lo, u.hi, u.ps.snap, maxRows, fn)
	u.ps.nanos.Add(int64(u.ps.clk.Since(start)))
}

// runSite drains one site's morsel feed through its scan pool: a feeder
// goroutine doles out units (so a cancelled query stops scheduling and the
// scheduled counter reflects units workers actually saw), and up to
// ScanWorkers loops pull from the feed. A crashed site's rejected loops run
// inline on the scatter goroutine, mirroring the legacy executor's
// coordinator fallback. newWorker returns a per-worker drain loop.
func (j *morselJob) runSite(siteID simnet.SiteID, units []morselUnit, wg *sync.WaitGroup, newWorker func(siteID simnet.SiteID) func(<-chan morselUnit)) {
	feed := make(chan morselUnit)
	go func() {
		defer close(feed)
		for _, u := range units {
			// OLTP preemption: while a transaction is in flight at this
			// site, briefly stop feeding the shared scan pool so commits
			// get the CPU first; the grace is bounded so a steady OLTP
			// stream cannot starve the scan.
			j.e.yieldToOLTP(siteID)
			select {
			case feed <- u:
				j.e.cntMorselsScheduled.Inc()
			case <-j.ctx.Done():
				return
			}
		}
	}()
	s := j.e.siteOf(siteID)
	w := s.ScanWorkers()
	if w > len(units) {
		w = len(units)
	}
	if w < 1 {
		w = 1
	}
	for i := 0; i < w; i++ {
		wg.Add(1)
		loop := newWorker(siteID)
		go func() {
			defer wg.Done()
			if err := s.RunScan(func() { loop(feed) }); err != nil {
				loop(feed)
			}
		}()
	}
}

// runRows streams projected tuples as bounded batches into out, closing it
// when every worker has finished. Each worker accumulates up to batchRows
// tuples, ships the batch from its site to the coordinator (network
// accounting + fault injection), then hands it over with backpressure:
// a full out channel blocks workers, bounding in-flight memory.
func (j *morselJob) runRows(out chan<- exec.Rel) {
	batchRows := j.e.scanBatchRows()
	var wg sync.WaitGroup
	newWorker := func(siteID simnet.SiteID) func(<-chan morselUnit) {
		return func(feed <-chan morselUnit) {
			batch := make([][]types.Value, 0, batchRows)
			flush := func() bool {
				if len(batch) == 0 {
					return true
				}
				rel := exec.Rel{Cols: j.cols, Tuples: batch}
				batch = make([][]types.Value, 0, batchRows)
				if err := j.e.shipTo(siteID, j.coord, rel); err != nil {
					j.fail(err)
					return false
				}
				select {
				case out <- rel:
					j.e.cntScanBatches.Inc()
					j.e.cntMorselRows.Add(int64(rel.NumRows()))
					return true
				case <-j.ctx.Done():
					return false
				}
			}
			for u := range feed {
				u := u
				u.scanUnitBatches(batchRows, func(b *storage.Batch) bool {
					n := b.Len()
					if n == 0 {
						return j.ctx.Err() == nil
					}
					u.ps.rows.Add(int64(n))
					batch = b.AppendTuples(batch)
					if len(batch) >= batchRows {
						return flush()
					}
					return j.ctx.Err() == nil
				})
				if j.ctx.Err() != nil {
					return
				}
			}
			flush()
		}
	}
	for siteID, units := range j.units {
		j.runSite(siteID, units, &wg, newWorker)
	}
	go func() {
		wg.Wait()
		j.observeScans()
		close(out)
	}()
}

// runAgg aggregates partially inside the morsel scan: each worker owns an
// accumulator (no tuple materialization), worker states merge per site,
// and one partial relation per site ships to the coordinator. The caller
// finalizes over the concatenated partials exactly as the legacy two-phase
// path does.
func (j *morselJob) runAgg(groupBy []int, specs []exec.AggSpec) (exec.Rel, error) {
	batchRows := j.e.scanBatchRows()
	var mu sync.Mutex
	var partials exec.Rel
	var scatter sync.WaitGroup
	for siteID, units := range j.units {
		siteID, units := siteID, units
		scatter.Add(1)
		go func() {
			defer scatter.Done()
			var siteMu sync.Mutex
			siteAgg := exec.NewAggregator(groupBy, specs)
			var wg sync.WaitGroup
			newWorker := func(simnet.SiteID) func(<-chan morselUnit) {
				return func(feed <-chan morselUnit) {
					agg := exec.NewAggregator(groupBy, specs)
					for u := range feed {
						u := u
						u.scanUnitBatches(batchRows, func(b *storage.Batch) bool {
							u.ps.rows.Add(int64(b.Len()))
							agg.ObserveBatch(b)
							return j.ctx.Err() == nil
						})
						if j.ctx.Err() != nil {
							return
						}
					}
					siteMu.Lock()
					siteAgg.MergeFrom(agg)
					siteMu.Unlock()
				}
			}
			j.runSite(siteID, units, &wg, newWorker)
			wg.Wait()
			if j.ctx.Err() != nil {
				return
			}
			rel := siteAgg.Rel(j.cols)
			if err := j.e.shipTo(siteID, j.coord, rel); err != nil {
				j.fail(err)
				return
			}
			mu.Lock()
			partials = exec.Concat(partials, rel)
			mu.Unlock()
		}()
	}
	scatter.Wait()
	j.observeScans()
	if j.err != nil {
		return exec.Rel{}, j.err
	}
	if err := j.ctx.Err(); err != nil {
		return exec.Rel{}, err
	}
	var n int64
	for _, sc := range j.parts {
		n += sc.rows.Load()
	}
	j.e.cntMorselRows.Add(n)
	return partials, nil
}

// observeScans emits one scan cost observation per touched partition so
// the ASA's cost models keep training under the morsel executor. Features
// mirror exec.Scan's: store stats, per-row bytes, and the realized
// selectivity; latency is the partition's summed morsel scan time.
func (j *morselJob) observeScans() {
	for _, sc := range j.parts {
		rows := int(sc.rows.Load())
		nanos := sc.nanos.Load()
		if nanos == 0 && rows == 0 {
			continue
		}
		st := sc.st.Stats()
		layout := sc.st.Layout()
		inBytes := 0
		if st.Rows > 0 {
			inBytes = st.Bytes / st.Rows
		}
		outBytes := inBytes
		if n := len(sc.p.Kinds()); n > 0 && len(sc.lcols) > 0 {
			outBytes = inBytes * len(sc.lcols) / n
		}
		sel := 1.0
		if st.Rows > 0 {
			sel = float64(rows) / float64(st.Rows)
		}
		encFrac := 0.0
		if st.Bytes > 0 {
			encFrac = float64(st.EncodedBytes) / float64(st.Bytes)
		}
		j.e.siteOf(sc.siteID).Observe(cost.Observation{
			Op:       cost.OpScan,
			Variant:  exec.ScanVariant(layout, sc.lp),
			Layout:   layout,
			Features: cost.ScanFeaturesEnc(st.Rows, inBytes, outBytes, sel, encFrac),
			Latency:  time.Duration(nanos),
		})
	}
}

// morselGather materializes a morsel scan at the coordinator, terminating
// early once limit rows (0 = unlimited) have arrived by cancelling the
// feeds, then draining the workers.
func (e *Engine) morselGather(ctx context.Context, ps *plan.PScan, snap txn.VersionVector, coord simnet.SiteID, limit int) (exec.Rel, error) {
	j, err := e.buildMorselJob(ctx, ps, snap, coord)
	if err != nil {
		return exec.Rel{}, err
	}
	defer j.cancel()
	out := make(chan exec.Rel, 2*len(e.Sites)+2)
	j.runRows(out)
	res := exec.Rel{Cols: j.cols}
	for batch := range out {
		if limit > 0 && len(res.Tuples) >= limit {
			continue // draining after early termination
		}
		res.Tuples = append(res.Tuples, batch.Tuples...)
		if limit > 0 && len(res.Tuples) >= limit {
			j.cancel() // close the morsel feeds; workers wind down
		}
	}
	if j.err != nil {
		return exec.Rel{}, j.err
	}
	if err := ctx.Err(); err != nil {
		return exec.Rel{}, err
	}
	if limit > 0 && len(res.Tuples) > limit {
		res.Tuples = res.Tuples[:limit]
	}
	return res, nil
}

// morselAgg runs an aggregation-over-scan on the morsel executor: partial
// aggregation inside the scan workers, one partial per site, finalized at
// the coordinator. For plans the planner did not decompose (single-site
// scans), the decomposition happens here so worker-local partials compose
// identically.
func (e *Engine) morselAgg(ctx context.Context, pa *plan.PAgg, ps *plan.PScan, snap txn.VersionVector, coord simnet.SiteID) (exec.Rel, error) {
	partialSpecs := pa.PartialAggs
	finalPA := pa
	if !pa.TwoPhase {
		p2 := *pa
		p2.PartialAggs, p2.FinalAggs, p2.AvgPairs = plan.DecomposeAggs(pa.GroupBy, pa.Aggs)
		partialSpecs = p2.PartialAggs
		finalPA = &p2
	}
	j, err := e.buildMorselJob(ctx, ps, snap, coord)
	if err != nil {
		return exec.Rel{}, err
	}
	defer j.cancel()
	partials, err := j.runAgg(pa.GroupBy, partialSpecs)
	if err != nil {
		return exec.Rel{}, err
	}
	return e.finalizeAgg(finalPA, partials, coord), nil
}

// RowCursor streams a query's result rows incrementally: Next advances to
// the next row (pulling bounded batches off the workers' channel), Row
// returns it, Err reports a terminal error, and Close cancels the scan and
// waits for every worker to exit, so a cursor abandoned mid-stream leaks
// no goroutines. Cursors over materialized results iterate a fixed
// relation with the same interface.
type RowCursor struct {
	cols  []string
	ch    <-chan exec.Rel
	stop  func()       // cancels producers; idempotent
	tail  func() error // terminal producer error, valid once ch is drained
	onEOF func(err error)

	cur    exec.Rel
	idx    int
	limit  int
	seen   int
	err    error
	closed bool
	eof    bool
}

// newMorselCursor wraps a running morsel job's batch channel. limit > 0
// ends the stream — cancelling the job — after that many rows.
func newMorselCursor(j *morselJob, ch <-chan exec.Rel, limit int, onEOF func(error)) *RowCursor {
	return &RowCursor{
		cols:  j.cols,
		ch:    ch,
		stop:  j.cancel,
		tail:  func() error { return j.err },
		onEOF: onEOF,
		idx:   -1,
		limit: limit,
	}
}

// newStaticCursor iterates an already-materialized relation.
func newStaticCursor(rel exec.Rel, onEOF func(error)) *RowCursor {
	ch := make(chan exec.Rel, 1)
	ch <- rel
	close(ch)
	return &RowCursor{
		cols:  rel.Cols,
		ch:    ch,
		stop:  func() {},
		tail:  func() error { return nil },
		onEOF: onEOF,
		idx:   -1,
	}
}

// Cols returns the result column labels.
func (c *RowCursor) Cols() []string { return c.cols }

// Next advances to the next row, reporting whether one is available.
func (c *RowCursor) Next() bool {
	if c.closed || c.eof {
		return false
	}
	if c.limit > 0 && c.seen >= c.limit {
		c.finish(nil)
		return false
	}
	c.idx++
	for c.idx >= len(c.cur.Tuples) {
		batch, ok := <-c.ch
		if !ok {
			c.finish(nil)
			return false
		}
		c.cur, c.idx = batch, 0
	}
	c.seen++
	return true
}

// Row returns the current row. Valid after Next reports true; the slice is
// owned by the cursor until the following Next call.
func (c *RowCursor) Row() []types.Value { return c.cur.Tuples[c.idx] }

// Err returns the terminal error, if any, once Next has reported false.
func (c *RowCursor) Err() error { return c.err }

// finish terminates the stream: cancel the feeds, drain the channel until
// the producer closes it (guaranteeing every worker has exited), then
// record the error and notify the completion hook.
func (c *RowCursor) finish(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.eof = true
	c.stop()
	for range c.ch {
	}
	if err == nil {
		err = c.tail()
	}
	c.err = err
	if c.onEOF != nil {
		c.onEOF(err)
	}
}

// Close releases the cursor; safe to call at any point and more than once.
func (c *RowCursor) Close() error {
	c.finish(nil)
	return c.err
}
