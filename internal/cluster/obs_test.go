package cluster

import (
	"context"
	"testing"
	"time"

	"proteus/internal/forecast"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// rowsAt loads n rows with IDs starting at base (targeting one partition
// of the standard 4-partition "items" table).
func rowsAt(t *testing.T, e *Engine, tbl *schema.Table, base, n int64) {
	t.Helper()
	data := make([]schema.Row, 0, n)
	for i := base; i < base+n; i++ {
		data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 10), types.NewFloat64(float64(i)), types.NewString("r"),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, data); err != nil {
		t.Fatal(err)
	}
}

func TestLRUPromoteSkipsOversizedPartition(t *testing.T) {
	// One oversized hot partition must not starve smaller hot partitions
	// behind it in the heat order: promotion skips what doesn't fit and
	// keeps going.
	e, tbl := newTestEngine(t, ModeRowStore, 1, 4, 2000) // partition 0: 2000 rows
	rowsAt(t, e, tbl, 25000, 100)                        // partition 1
	rowsAt(t, e, tbl, 50000, 100)                        // partition 2

	// Demote every loaded partition to disk and record heat: partition 0
	// hottest, then 1, then 2.
	var sizes []int64
	metas := e.Dir.TablePartitions(tbl.ID)
	heat := map[schema.RowID]int{0: 300, 25000: 200, 50000: 100}
	for _, m := range metas {
		n, ok := heat[m.Bounds.RowStart]
		if !ok {
			continue
		}
		m.Tracker.Record(forecast.PointRead, n)
		l := m.Master().Layout
		l.Tier = storage.DiskTier
		if err := e.ChangeCopyLayout(m.ID, m.Master().Site, l); err != nil {
			t.Fatal(err)
		}
		p, _ := e.Sites[0].Partition(m.ID)
		sizes = append(sizes, int64(p.Stats().Bytes))
	}
	if len(sizes) != 3 {
		t.Fatalf("expected 3 loaded partitions, got %d", len(sizes))
	}

	// Room fits partitions 1 and 2 together but not partition 0.
	room := sizes[1] + sizes[2] + 1
	if room >= sizes[0] {
		t.Fatalf("test setup: oversized partition %d not larger than room %d", sizes[0], room)
	}
	e.lruPromote(0, room)

	for _, m := range e.Dir.TablePartitions(tbl.ID) {
		p, ok := e.Sites[0].Partition(m.ID)
		if !ok {
			continue
		}
		tier := p.Layout().Tier
		switch m.Bounds.RowStart {
		case 0:
			if tier != storage.DiskTier {
				t.Errorf("oversized partition was promoted")
			}
		case 25000, 50000:
			if tier != storage.MemoryTier {
				t.Errorf("partition at row %d not promoted (tier %v)", m.Bounds.RowStart, tier)
			}
		}
	}
}

func TestMaintenanceTruncatesRedoLog(t *testing.T) {
	cfg := fastConfig(ModeRowStore, 1)
	cfg.RedoRetention = 0 // trim aggressively so the test converges fast
	e := New(cfg)
	t.Cleanup(e.Close)
	tbl, err := e.CreateTable(TableSpec{Name: "items", Cols: testCols, MaxRows: 1000, Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	rowsAt(t, e, tbl, 0, 10)

	sess := e.NewSession()
	pid := e.Dir.TablePartitions(tbl.ID)[0].ID
	deadline := time.After(3 * time.Second)
	for e.Broker.BaseOffset(pid) == 0 {
		if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
			updateOp(tbl, 3, 2, types.NewFloat64(1)),
		}}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-deadline:
			t.Fatalf("redo log never truncated: base=%d end=%d",
				e.Broker.BaseOffset(pid), e.Broker.EndOffset(pid))
		case <-time.After(2 * time.Millisecond):
		}
	}
	snap := e.MetricsSnapshot()
	if snap.Counters["redolog.truncated_records"] == 0 {
		t.Error("truncated_records counter not incremented")
	}
	if got := snap.Gauges["redolog.backlog"]; got != e.Broker.Retained(pid) {
		t.Errorf("backlog gauge = %d, retained = %d", got, e.Broker.Retained(pid))
	}
}

func TestStatsLatenciesArrivalOrder(t *testing.T) {
	var s Stats
	for i := 1; i <= 10; i++ {
		s.Record(ClassOLTP, time.Duration(i)*time.Millisecond)
	}
	s.Record(ClassOLAP, 7*time.Millisecond)
	oltp, olap := s.Latencies()
	if len(oltp) != 10 || len(olap) != 1 {
		t.Fatalf("windows = %d oltp, %d olap", len(oltp), len(olap))
	}
	for i, d := range oltp {
		if d != time.Duration(i+1)*time.Millisecond {
			t.Fatalf("oltp[%d] = %v, want %v (arrival order)", i, d, time.Duration(i+1)*time.Millisecond)
		}
	}
	oq, _, aq := s.Quantiles()
	if oq.Count != 10 || oq.P50 != 5*time.Millisecond || oq.Max != 10*time.Millisecond {
		t.Errorf("oltp quantiles = %+v", oq)
	}
	// Plan classes count but do not enter a latency window; other classes
	// land in the adaptation window.
	s.Record(ClassOLTPPlan, time.Millisecond)
	s.Record(ClassTierChange, 2*time.Millisecond)
	if _, _, aq = s.Quantiles(); aq.Count != 1 {
		t.Errorf("adaptation window count = %d, want 1", aq.Count)
	}
	if s.Class(ClassOLTPPlan).Count != 1 {
		t.Errorf("plan class not counted")
	}
	s.Reset()
	if oltp, _ := s.Latencies(); len(oltp) != 0 {
		t.Errorf("window survived reset")
	}
}
