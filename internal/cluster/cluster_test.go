package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// fastConfig returns a test engine config with near-zero simulated
// latencies and the advisor off unless asked.
func fastConfig(mode Mode, sites int) Config {
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.NumSites = sites
	cfg.Net = simnet.Config{} // zero-latency
	cfg.ReplicationInterval = time.Millisecond
	cfg.MaintainInterval = 5 * time.Millisecond
	return cfg
}

var testCols = []schema.Column{
	{Name: "id", Kind: types.KindInt64},
	{Name: "grp", Kind: types.KindInt64},
	{Name: "val", Kind: types.KindFloat64},
	{Name: "note", Kind: types.KindString, AvgSize: 16},
}

func newTestEngine(t *testing.T, mode Mode, sites, parts int, rows int64) (*Engine, *schema.Table) {
	t.Helper()
	e := New(fastConfig(mode, sites))
	t.Cleanup(e.Close)
	tbl, err := e.CreateTable(TableSpec{
		Name: "items", Cols: testCols, MaxRows: 100000, Partitions: parts,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]schema.Row, 0, rows)
	for i := int64(0); i < rows; i++ {
		data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 10), types.NewFloat64(float64(i)), types.NewString(fmt.Sprintf("row-%d", i)),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, data); err != nil {
		t.Fatal(err)
	}
	return e, tbl
}

func readOp(tbl *schema.Table, row int64, cols ...schema.ColID) query.Op {
	return query.Op{Kind: query.OpRead, Table: tbl.ID, Row: schema.RowID(row), Cols: cols}
}

func updateOp(tbl *schema.Table, row int64, col schema.ColID, v types.Value) query.Op {
	return query.Op{Kind: query.OpUpdate, Table: tbl.ID, Row: schema.RowID(row),
		Cols: []schema.ColID{col}, Vals: []types.Value{v}}
}

func scanSumQuery(tbl *schema.Table) *query.Query {
	return &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{2}},
		Aggs:  []exec.AggSpec{{Func: exec.AggSum, Col: 0}, {Func: exec.AggCount}},
	}}
}

func TestTxnReadAndUpdate(t *testing.T) {
	e, tbl := newTestEngine(t, ModeProteus, 2, 4, 100)
	sess := e.NewSession()

	res, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, 7, 0, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0][0].Int() != 7 || res.Tuples[0][1].Float() != 7 {
		t.Fatalf("read = %v", res.Tuples)
	}

	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		updateOp(tbl, 7, 2, types.NewFloat64(-70)),
	}}); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes (SSSI).
	res, err = e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, 7, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples[0][0].Float() != -70 {
		t.Errorf("after update: %v", res.Tuples[0])
	}
}

func TestTxnInsertDelete(t *testing.T) {
	e, tbl := newTestEngine(t, ModeProteus, 2, 4, 10)
	sess := e.NewSession()
	ins := query.Op{Kind: query.OpInsert, Table: tbl.ID, Row: 5000, Vals: []types.Value{
		types.NewInt64(5000), types.NewInt64(1), types.NewFloat64(1), types.NewString("new"),
	}}
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{ins}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, 5000, 3)}})
	if err != nil || res.Tuples[0][0].Str() != "new" {
		t.Fatalf("insert read: %v %v", res.Tuples, err)
	}
	del := query.Op{Kind: query.OpDelete, Table: tbl.ID, Row: 5000}
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{del}}); err != nil {
		t.Fatal(err)
	}
	res, _ = e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, 5000, 0)}})
	if res.Tuples[0] != nil {
		t.Errorf("deleted row read: %v", res.Tuples[0])
	}
	// Duplicate insert aborts.
	ins2 := query.Op{Kind: query.OpInsert, Table: tbl.ID, Row: 3, Vals: []types.Value{
		types.NewInt64(3), types.NewInt64(0), types.NewFloat64(0), types.NewString("dup"),
	}}
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{ins2}}); err == nil {
		t.Error("duplicate insert committed")
	}
	if e.Stats().Aborts() == 0 {
		t.Error("abort not counted")
	}
}

func TestScanAggregateQuery(t *testing.T) {
	for _, mode := range []Mode{ModeProteus, ModeRowStore, ModeColumnStore, ModeJanus, ModeTiDB} {
		t.Run(mode.String(), func(t *testing.T) {
			e, tbl := newTestEngine(t, mode, 2, 4, 200)
			sess := e.NewSession()
			res, err := e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tuples) != 1 {
				t.Fatalf("agg rows = %d", len(res.Tuples))
			}
			// sum(0..199) = 19900, count = 200.
			if res.Tuples[0][0].Float() != 19900 || res.Tuples[0][1].Int() != 200 {
				t.Errorf("agg = %v", res.Tuples[0])
			}
		})
	}
}

func TestQueryWithPredicateAndGroupBy(t *testing.T) {
	e, tbl := newTestEngine(t, ModeProteus, 3, 6, 300)
	sess := e.NewSession()
	q := &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{
			Table: tbl.ID,
			Cols:  []schema.ColID{1, 2},
			Pred:  storage.Pred{{Col: 0, Op: storage.CmpLt, Val: types.NewInt64(100)}},
		},
		GroupBy: []int{0},
		Aggs:    []exec.AggSpec{{Func: exec.AggCount}, {Func: exec.AggAvg, Col: 1}},
	}}
	res, err := e.ExecuteQuery(context.Background(), sess, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 10 {
		t.Fatalf("groups = %d: %v", len(res.Tuples), res.Tuples)
	}
	for _, tup := range res.Tuples {
		if tup[1].Int() != 10 { // 100 rows over 10 groups
			t.Errorf("group %v count = %v", tup[0], tup[1])
		}
		g := tup[0].Int()
		// avg of g, g+10, ..., g+90 = g+45.
		if tup[2].Float() != float64(g)+45 {
			t.Errorf("group %d avg = %v", g, tup[2])
		}
	}
}

func TestUpdatesVisibleToQueries(t *testing.T) {
	e, tbl := newTestEngine(t, ModeProteus, 2, 2, 50)
	sess := e.NewSession()
	for i := int64(0); i < 50; i++ {
		if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
			updateOp(tbl, i, 2, types.NewFloat64(1)),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples[0][0].Float() != 50 {
		t.Errorf("sum after updates = %v", res.Tuples[0])
	}
}

func TestJoinQueryWithReplicatedDimension(t *testing.T) {
	e, tbl := newTestEngine(t, ModeProteus, 2, 4, 100)
	dim, err := e.CreateTable(TableSpec{
		Name: "groups",
		Cols: []schema.Column{
			{Name: "gid", Kind: types.KindInt64},
			{Name: "weight", Kind: types.KindFloat64},
		},
		MaxRows: 100, Partitions: 1, ReplicateAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows []schema.Row
	for g := int64(0); g < 10; g++ {
		rows = append(rows, schema.Row{ID: schema.RowID(g), Vals: []types.Value{
			types.NewInt64(g), types.NewFloat64(float64(g) * 10),
		}})
	}
	if err := e.LoadRows(context.Background(), dim.ID, rows); err != nil {
		t.Fatal(err)
	}

	sess := e.NewSession()
	q := &query.Query{Root: &query.AggNode{
		Child: &query.JoinNode{
			Left:        &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{1, 2}},
			Right:       &query.ScanNode{Table: dim.ID, Cols: []schema.ColID{0, 1}},
			LeftKeyCol:  0, // grp
			RightKeyCol: 0, // gid
		},
		Aggs: []exec.AggSpec{{Func: exec.AggCount}, {Func: exec.AggSum, Col: 3}},
	}}
	res, err := e.ExecuteQuery(context.Background(), sess, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples[0][0].Int() != 100 {
		t.Errorf("join count = %v", res.Tuples[0][0])
	}
	// Each group g has 10 rows, weight g*10: sum = 10 * sum(g*10) = 4500.
	if res.Tuples[0][1].Float() != 4500 {
		t.Errorf("join sum = %v", res.Tuples[0][1])
	}
}

func TestDistributedTxn2PC(t *testing.T) {
	e, tbl := newTestEngine(t, ModeProteus, 2, 2, 100)
	sess := e.NewSession()
	// Partitions split at row 50000; rows 1 and 60000... our table has
	// 100000 max rows over 2 partitions. Write one row in each partition.
	ins := query.Op{Kind: query.OpInsert, Table: tbl.ID, Row: 60000, Vals: []types.Value{
		types.NewInt64(60000), types.NewInt64(0), types.NewFloat64(5), types.NewString("far"),
	}}
	upd := updateOp(tbl, 1, 2, types.NewFloat64(99))
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{ins, upd}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		readOp(tbl, 60000, 2), readOp(tbl, 1, 2),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples[0][0].Float() != 5 || res.Tuples[1][0].Float() != 99 {
		t.Errorf("2pc reads: %v", res.Tuples)
	}
}

func TestConcurrentMixedWorkloadConsistency(t *testing.T) {
	e, tbl := newTestEngine(t, ModeProteus, 2, 4, 200)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Writers increment val on disjoint rows; a scanner checks the sum is
	// consistent with some prefix of commits.
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := e.NewSession()
			for i := 0; i < 25; i++ {
				row := int64(w*25 + i)
				if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
					updateOp(tbl, row, 2, types.NewFloat64(1000)),
				}}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := e.NewSession()
		for i := 0; i < 10; i++ {
			if _, err := e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final state: 100 rows at 1000, rows 100..199 keep value i.
	sess := e.NewSession()
	res, err := e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(100*1000) + float64(100+199)*100/2
	if res.Tuples[0][0].Float() != want {
		t.Errorf("final sum = %v, want %v", res.Tuples[0][0], want)
	}
}

func TestLayoutChangePreservesData(t *testing.T) {
	e, tbl := newTestEngine(t, ModeRowStore, 2, 2, 100)
	sess := e.NewSession()
	parts := e.Dir.TablePartitions(tbl.ID)
	for _, m := range parts {
		to := storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: 1, Compressed: true}
		if err := e.ChangeCopyLayout(m.ID, m.Master().Site, to); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples[0][0].Float() != 4950 || res.Tuples[0][1].Int() != 100 {
		t.Errorf("after format change: %v", res.Tuples[0])
	}
	// And updates still work on the new layout.
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		updateOp(tbl, 10, 2, types.NewFloat64(0)),
	}}); err != nil {
		t.Fatal(err)
	}
	res, _ = e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl))
	if res.Tuples[0][0].Float() != 4940 {
		t.Errorf("after update on columns: %v", res.Tuples[0])
	}
}

func TestSplitVerticalThenReadAndScan(t *testing.T) {
	e, tbl := newTestEngine(t, ModeRowStore, 2, 1, 60)
	sess := e.NewSession()
	parts := e.Dir.TablePartitions(tbl.ID)
	if err := e.SplitV(parts[0].ID, 2, storage.DefaultRowLayout(), storage.DefaultColumnLayout()); err != nil {
		t.Fatal(err)
	}
	if err := e.Dir.Validate(tbl.ID, e.TableMaxRow(tbl.ID), len(testCols)); err != nil {
		t.Fatal(err)
	}
	// Point read spanning both pieces.
	res, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, 5, 0, 2, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples[0][0].Int() != 5 || res.Tuples[0][1].Float() != 5 || res.Tuples[0][2].Str() != "row-5" {
		t.Errorf("cross-piece read: %v", res.Tuples[0])
	}
	// Scan spanning both pieces with a predicate on each side.
	q := &query.Query{Root: &query.AggNode{
		Child: &query.ScanNode{
			Table: tbl.ID, Cols: []schema.ColID{2},
			Pred: storage.Pred{
				{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(10)},
				{Col: 2, Op: storage.CmpLt, Val: types.NewFloat64(20)},
			},
		},
		Aggs: []exec.AggSpec{{Func: exec.AggCount}},
	}}
	res2, err := e.ExecuteQuery(context.Background(), sess, q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tuples[0][0].Int() != 10 { // rows 10..19
		t.Errorf("cross-piece scan count = %v", res2.Tuples[0])
	}
	// Updates to both pieces commit atomically.
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		{Kind: query.OpUpdate, Table: tbl.ID, Row: 5,
			Cols: []schema.ColID{2, 3},
			Vals: []types.Value{types.NewFloat64(-5), types.NewString("both")}},
	}}); err != nil {
		t.Fatal(err)
	}
	res, _ = e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, 5, 2, 3)}})
	if res.Tuples[0][0].Float() != -5 || res.Tuples[0][1].Str() != "both" {
		t.Errorf("cross-piece update: %v", res.Tuples[0])
	}
}

func TestSplitHorizontalAndMerge(t *testing.T) {
	e, tbl := newTestEngine(t, ModeRowStore, 2, 1, 100)
	sess := e.NewSession()
	parts := e.Dir.TablePartitions(tbl.ID)
	if err := e.SplitH(parts[0].ID, 50); err != nil {
		t.Fatal(err)
	}
	if err := e.Dir.Validate(tbl.ID, e.TableMaxRow(tbl.ID), len(testCols)); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl))
	if err != nil || res.Tuples[0][1].Int() != 100 {
		t.Fatalf("after split: %v %v", res.Tuples, err)
	}
	// Merge back.
	np := e.Dir.TablePartitions(tbl.ID)
	if len(np) != 2 {
		t.Fatalf("partitions = %d", len(np))
	}
	if err := e.MergeH(np[0].ID, np[1].ID); err != nil {
		t.Fatal(err)
	}
	res, err = e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl))
	if err != nil || res.Tuples[0][1].Int() != 100 {
		t.Fatalf("after merge: %v %v", res.Tuples, err)
	}
}

func TestReplicaAddRemoveAndMasterChange(t *testing.T) {
	e, tbl := newTestEngine(t, ModeRowStore, 2, 2, 100)
	sess := e.NewSession()
	m := e.Dir.TablePartitions(tbl.ID)[0]
	oldMaster := m.Master().Site
	other := simnet.SiteID(1 - int(oldMaster))

	if err := e.AddReplicaOp(m.ID, other, storage.DefaultColumnLayout()); err != nil {
		t.Fatal(err)
	}
	if len(m.Replicas()) != 1 {
		t.Fatal("replica not registered")
	}
	// Update flows to the replica lazily; a query through it must be fresh.
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		updateOp(tbl, 1, 2, types.NewFloat64(500)),
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl))
	if err != nil {
		t.Fatal(err)
	}
	want := 4950 - 1 + 500.0
	if res.Tuples[0][0].Float() != want {
		t.Errorf("sum via replica = %v, want %v", res.Tuples[0][0], want)
	}

	// Master change to the replica site.
	if err := e.ChangeMasterOp(m.ID, other); err != nil {
		t.Fatal(err)
	}
	if m.Master().Site != other {
		t.Fatal("master not moved")
	}
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		updateOp(tbl, 2, 2, types.NewFloat64(0)),
	}}); err != nil {
		t.Fatal(err)
	}
	r2, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, 2, 2)}})
	if err != nil || r2.Tuples[0][0].Float() != 0 {
		t.Fatalf("after master change: %v %v", r2.Tuples, err)
	}

	// Remove the old master's copy (now a replica).
	if err := e.RemoveReplicaOp(m.ID, oldMaster); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl)); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveSmokeUnderMixedLoad(t *testing.T) {
	cfg := fastConfig(ModeProteus, 2)
	cfg.Adapt.SampleEvery = 2
	cfg.Adapt.PredictiveInterval = 20 * time.Millisecond
	cfg.Adapt.MinSplitRows = 16
	e := New(cfg)
	defer e.Close()
	tbl, err := e.CreateTable(TableSpec{Name: "items", Cols: testCols, MaxRows: 100000, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	var rows []schema.Row
	for i := int64(0); i < 400; i++ {
		rows = append(rows, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(i % 10), types.NewFloat64(1), types.NewString("x"),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, rows); err != nil {
		t.Fatal(err)
	}
	sess := e.NewSession()
	for round := 0; round < 30; round++ {
		for i := 0; i < 10; i++ {
			row := int64((round*10 + i) % 100) // skewed to first quarter
			if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
				updateOp(tbl, row, 2, types.NewFloat64(1)),
			}}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl))
		if err != nil {
			t.Fatal(err)
		}
		if res.Tuples[0][1].Int() != 400 {
			t.Fatalf("round %d: count = %v (data corrupted by adaptation)", round, res.Tuples[0])
		}
	}
	if err := e.Dir.Validate(tbl.ID, e.TableMaxRow(tbl.ID), len(testCols)); err != nil {
		t.Errorf("tiling invariant broken: %v", err)
	}
}

func TestModesReportAndStats(t *testing.T) {
	e, tbl := newTestEngine(t, ModeTiDB, 2, 2, 50)
	if e.Mode() != ModeTiDB {
		t.Error("mode wrong")
	}
	sess := e.NewSession()
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		updateOp(tbl, 1, 2, types.NewFloat64(3)),
	}}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats().Class(ClassOLTP)
	if st.Count != 1 || st.Avg() <= 0 {
		t.Errorf("stats = %+v", st)
	}
	// TiDB mode must have charged Raft traffic.
	if e.Net.TotalBytes() == 0 {
		t.Error("no network traffic charged")
	}
}

func TestLRUTieringUnderMemoryPressure(t *testing.T) {
	// A baseline (non-adaptive) engine over capacity must demote its
	// coldest partitions to disk and keep hot ones in memory (§6.2 LRU).
	e, tbl := newTestEngine(t, ModeRowStore, 2, 8, 800)
	sess := e.NewSession()
	// Heat up the first partition's rows.
	warm := func() {
		for i := 0; i < 40; i++ {
			if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
				readOp(tbl, int64(i%50), 0),
			}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm()
	perSite := e.MasterMemUsage() / int64(len(e.Sites))
	e.SetMemCapacityPerSite(perSite / 2) // force heavy pressure
	deadline := time.After(3 * time.Second)
	for {
		counts := e.LayoutCounts()
		if counts["row/disk"] > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("no demotion happened: %v", counts)
		case <-time.After(50 * time.Millisecond):
			warm()
		}
	}
	// Data stays correct across tier changes.
	res, err := e.ExecuteQuery(context.Background(), sess, scanSumQuery(tbl))
	if err != nil || res.Tuples[0][1].Int() != 800 {
		t.Fatalf("post-demotion scan: %v %v", res.Tuples, err)
	}
}
