// Admission wiring: every client-visible operation passes through the
// engine's admission.Controller before it reaches the planner, and the
// controller's decisions read a periodically refreshed ClusterState
// snapshot instead of locking live engine state. OLTP work additionally
// registers per-site in-flight counters that the morsel feeders consult
// to cede scan-pool scheduling to commits (two priority classes at the
// execution layer, not just at the gate). Group-commit flushers never
// pass through admission: a group enqueued past the 2PC commit point
// must always flush.
package cluster

import (
	"context"
	"time"

	"proteus/internal/admission"
	"proteus/internal/simnet"
)

// admit charges one client-visible operation to the context's tenant.
// A shed returns the typed *faults.OverloadError before any planning or
// execution happens — a shed write is never acknowledged because it was
// never started.
func (e *Engine) admit(ctx context.Context, pri admission.Priority) error {
	return e.Adm.Admit(ctx, admission.TenantFrom(ctx), pri)
}

// refreshAdmissionState rebuilds the admission controller's cluster
// snapshot: per-site up/down, memory footprint, group-commit backlog and
// OLTP in-flight counts. Reads are all lock-light accessors; the snapshot
// is installed atomically and read lock-free by the admission hot path.
func (e *Engine) refreshAdmissionState() {
	st := admission.ClusterState{
		At:    e.clk.Now(),
		Sites: make([]admission.SiteState, len(e.Sites)),
	}
	for i, s := range e.Sites {
		depth := e.gc.depth(s.ID)
		ss := admission.SiteState{
			ID:            i,
			Up:            !s.Down(),
			MemBytes:      s.MemUsage(),
			CommitBacklog: depth,
			OLTPInFlight:  int(e.oltpInFlight[i].Load()),
		}
		st.Sites[i] = ss
		if ss.Up && depth > st.MaxCommitBacklog {
			st.MaxCommitBacklog = depth
		}
	}
	e.Adm.UpdateState(st)
}

// startAdmissionRefresher runs the ClusterState refresh loop. Only the
// TokenBucket policy consults the snapshot, so AlwaysAdmit engines (the
// default) skip the loop entirely.
func (e *Engine) startAdmissionRefresher() {
	if e.Adm.Policy() != admission.TokenBucket {
		return
	}
	e.refreshAdmissionState() // decisions before the first tick see real state
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		t := e.clk.NewTicker(e.Adm.SnapshotInterval())
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				e.refreshAdmissionState()
			}
		}
	}()
}

// oltpEnter/oltpExit bracket one transaction's execution at its
// coordinating site; the site's morsel feeder checks the counter between
// units and briefly yields while commits are in flight.
func (e *Engine) oltpEnter(site simnet.SiteID) { e.oltpInFlight[int(site)].Add(1) }
func (e *Engine) oltpExit(site simnet.SiteID)  { e.oltpInFlight[int(site)].Add(-1) }

// scanYieldGrace bounds how long one morsel feeder step defers to
// in-flight OLTP work; small enough that a steady OLTP stream cannot
// starve analytical scans, large enough to cover a typical commit.
const scanYieldGrace = 200 * time.Microsecond

// yieldToOLTP parks the calling morsel feeder briefly while OLTP work is
// in flight at the site, ceding scheduling slots in the shared scan pool
// to transactional commits. The grace is bounded: after scanYieldGrace
// the feeder proceeds regardless.
func (e *Engine) yieldToOLTP(site simnet.SiteID) {
	if int(site) >= len(e.oltpInFlight) || e.oltpInFlight[int(site)].Load() == 0 {
		return
	}
	e.cntScanYields.Inc()
	deadline := e.clk.Now().Add(scanYieldGrace)
	for e.oltpInFlight[int(site)].Load() > 0 && e.clk.Now().Before(deadline) {
		e.clk.Sleep(scanYieldGrace / 4)
	}
}
