package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/types"
)

// groupedConfig returns a fast test config with the commit pipeline in the
// given state and a coalescing window wide enough that concurrent commits
// actually share flushes.
func groupedConfig(sites int, disabled bool) Config {
	cfg := fastConfig(ModeRowStore, sites)
	cfg.DisableGroupCommit = disabled
	if !disabled {
		cfg.GroupCommitInterval = 500 * time.Microsecond
	}
	return cfg
}

// runWriterWorkload runs writers concurrent single-row update streams over
// disjoint row stripes and returns the expected final value per row.
func runWriterWorkload(t *testing.T, e *Engine, tbl *schema.Table, writers, rowsPerWriter, iters int) map[int64]float64 {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := e.NewSession()
			for i := 1; i <= iters; i++ {
				row := int64(w*rowsPerWriter + i%rowsPerWriter)
				v := types.NewFloat64(float64(w*1000000 + i))
				if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{
					Ops: []query.Op{updateOp(tbl, row, 2, v)},
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	// Each writer hits row w*rowsPerWriter+r on iterations i with
	// i%rowsPerWriter == r; the last such i wins.
	want := map[int64]float64{}
	for w := 0; w < writers; w++ {
		for r := 0; r < rowsPerWriter; r++ {
			last := 0
			for i := iters; i >= 1; i-- {
				if i%rowsPerWriter == r {
					last = i
					break
				}
			}
			if last > 0 {
				want[int64(w*rowsPerWriter+r)] = float64(w*1000000 + last)
			}
		}
	}
	return want
}

// TestGroupCommitEquivalence drives the same concurrent write workload
// through the batched pipeline and the inline legacy path and checks both
// converge to the exact per-row final state: group commit may reorder
// flush timing but never acked writes.
func TestGroupCommitEquivalence(t *testing.T) {
	const writers, rowsPerWriter, iters = 4, 25, 60
	for _, tc := range []struct {
		name     string
		disabled bool
	}{{"grouped", false}, {"inline", true}} {
		t.Run(tc.name, func(t *testing.T) {
			e := New(groupedConfig(2, tc.disabled))
			defer e.Close()
			tbl, err := e.CreateTable(TableSpec{
				Name: "items", Cols: testCols, MaxRows: 100000, Partitions: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			rows := int64(writers * rowsPerWriter)
			data := make([]schema.Row, 0, rows)
			for i := int64(0); i < rows; i++ {
				data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
					types.NewInt64(i), types.NewInt64(i % 10), types.NewFloat64(0), types.NewString("r"),
				}})
			}
			if err := e.LoadRows(context.Background(), tbl.ID, data); err != nil {
				t.Fatal(err)
			}

			want := runWriterWorkload(t, e, tbl, writers, rowsPerWriter, iters)
			sess := e.NewSession()
			for row, v := range want {
				res, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{
					Ops: []query.Op{readOp(tbl, row, 2)},
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := res.Tuples[0][0].Float(); got != v {
					t.Errorf("row %d = %v, want %v", row, got, v)
				}
			}
		})
	}
}

// TestGroupCommitCrossPartitionDeps checks a multi-partition transaction
// through the batched pipeline: both writes become visible together, and
// each partition's redo record carries the co-committed sibling versions
// in its dependency vector.
func TestGroupCommitCrossPartitionDeps(t *testing.T) {
	e, tbl := newTestEngine(t, ModeRowStore, 2, 4, 100)
	// Rows 7 and 25007 land in different partitions of the 4-way split.
	rowsAt(t, e, tbl, 25000, 100)

	sess := e.NewSession()
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		updateOp(tbl, 7, 2, types.NewFloat64(-7)),
		updateOp(tbl, 25007, 2, types.NewFloat64(-25007)),
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{
		readOp(tbl, 7, 2), readOp(tbl, 25007, 2),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples[0][0].Float() != -7 || res.Tuples[1][0].Float() != -25007 {
		t.Fatalf("cross-partition read after commit: %v", res.Tuples)
	}

	// Find the two records the transaction appended and cross-check Deps.
	metas := e.Dir.TablePartitions(tbl.ID)
	recOf := func(row schema.RowID) (pid int, ver uint64, deps map[uint64]uint64) {
		t.Helper()
		for _, m := range metas {
			recs, _ := e.Broker.Poll(m.ID, e.Broker.BaseOffset(m.ID), 0)
			for _, rec := range recs {
				for _, en := range rec.Entries {
					if en.Row == row {
						d := map[uint64]uint64{}
						for q, v := range rec.Deps {
							d[uint64(q)] = v
						}
						return int(m.ID), rec.Version, d
					}
				}
			}
		}
		t.Fatalf("no redo record for row %d", row)
		return 0, 0, nil
	}
	pa, va, da := recOf(7)
	pb, vb, db := recOf(25007)
	if pa == pb {
		t.Fatalf("rows 7 and 25007 share partition %d", pa)
	}
	if got, ok := da[uint64(pb)]; !ok || got != vb {
		t.Errorf("record %d deps = %v, want sibling %d@%d", pa, da, pb, vb)
	}
	if got, ok := db[uint64(pa)]; !ok || got != va {
		t.Errorf("record %d deps = %v, want sibling %d@%d", pb, db, pa, va)
	}
}

// TestGroupCommitCoalesces fires a burst of concurrent single-row commits
// and checks the pipeline actually batched them: fewer flushes than
// transactions and a recorded group size above one.
func TestGroupCommitCoalesces(t *testing.T) {
	e := New(groupedConfig(1, false))
	defer e.Close()
	tbl, err := e.CreateTable(TableSpec{
		Name: "items", Cols: testCols, MaxRows: 100000, Partitions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]schema.Row, 0, 256)
	for i := int64(0); i < 256; i++ {
		data = append(data, schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(i), types.NewInt64(0), types.NewFloat64(0), types.NewString("r"),
		}})
	}
	if err := e.LoadRows(context.Background(), tbl.ID, data); err != nil {
		t.Fatal(err)
	}

	const txns = 64
	flushes0 := e.Obs.Counter("commit.flushes").Value()
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, txns)
	for i := 0; i < txns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			sess := e.NewSession()
			_, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{
				Ops: []query.Op{updateOp(tbl, int64(i%256), 2, types.NewFloat64(float64(i)))},
			})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	flushes := e.Obs.Counter("commit.flushes").Value() - flushes0
	if flushes == 0 || flushes >= txns {
		t.Errorf("flushes = %d for %d concurrent txns, want coalescing", flushes, txns)
	}
	if n := e.Obs.Counter("commit.flushed_records").Value(); n < txns {
		t.Errorf("flushed records = %d, want >= %d", n, txns)
	}
}

// TestGroupCommitDisabledBypassesQueues checks the escape hatch: with the
// pipeline disabled, commits append and install inline and the flushers
// never run a flush.
func TestGroupCommitDisabledBypassesQueues(t *testing.T) {
	e := New(groupedConfig(1, true))
	defer e.Close()
	tbl, err := e.CreateTable(TableSpec{
		Name: "items", Cols: testCols, MaxRows: 100000, Partitions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadRows(context.Background(), tbl.ID, []schema.Row{
		{ID: 1, Vals: []types.Value{types.NewInt64(1), types.NewInt64(0), types.NewFloat64(0), types.NewString("r")}},
	}); err != nil {
		t.Fatal(err)
	}
	sess := e.NewSession()
	if _, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{
		Ops: []query.Op{updateOp(tbl, 1, 2, types.NewFloat64(9))},
	}); err != nil {
		t.Fatal(err)
	}
	if n := e.Obs.Counter("commit.flushes").Value(); n != 0 {
		t.Errorf("inline path ran %d flushes", n)
	}
	res, err := e.ExecuteTxn(context.Background(), sess, &query.Txn{Ops: []query.Op{readOp(tbl, 1, 2)}})
	if err != nil || res.Tuples[0][0].Float() != 9 {
		t.Fatalf("inline commit read: %v %v", res.Tuples, err)
	}
}
