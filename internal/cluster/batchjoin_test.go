package cluster

// Engine-level differential tests for the batch join path: the batch
// engine must return exactly the rows the legacy row-join engine returns —
// across every storage layout, under concurrent layout changes, with the
// runtime filter on and off, and when the build side spills — while the
// exec.join.* counters prove which path actually ran.

import (
	"context"
	"sync"
	"testing"

	"proteus/internal/exec"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// joinDiffLayouts mirrors the partition-level differential layout matrix:
// row/column × memory/disk, sorted and RLE variants. SortBy is a local
// column index within the fact partitions.
var joinDiffLayouts = []struct {
	name string
	l    storage.Layout
}{
	{"row-mem", storage.Layout{Format: storage.RowFormat, Tier: storage.MemoryTier, SortBy: storage.NoSort}},
	{"row-disk", storage.Layout{Format: storage.RowFormat, Tier: storage.DiskTier, SortBy: storage.NoSort}},
	{"col-mem", storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: storage.NoSort}},
	{"col-mem-sorted", storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: 0}},
	{"col-mem-rle", storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: storage.NoSort, Compressed: true}},
	{"col-mem-rle-sorted", storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: 0, Compressed: true}},
	{"col-disk-sorted", storage.Layout{Format: storage.ColumnFormat, Tier: storage.DiskTier, SortBy: 0}},
	{"col-disk-rle", storage.Layout{Format: storage.ColumnFormat, Tier: storage.DiskTier, SortBy: storage.NoSort, Compressed: true}},
}

// addGroupsTable creates a replicated dimension table with ngroups rows:
// gid g, weight g*10, tag "even"/"odd".
func addGroupsTable(t *testing.T, e *Engine, ngroups int64) *schema.Table {
	t.Helper()
	dim, err := e.CreateTable(TableSpec{
		Name: "groups",
		Cols: []schema.Column{
			{Name: "gid", Kind: types.KindInt64},
			{Name: "weight", Kind: types.KindFloat64},
			{Name: "tag", Kind: types.KindString, AvgSize: 4},
		},
		MaxRows: schema.RowID(ngroups), Partitions: 1, ReplicateAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]schema.Row, 0, ngroups)
	for g := int64(0); g < ngroups; g++ {
		tag := "even"
		if g%2 == 1 {
			tag = "odd"
		}
		rows = append(rows, schema.Row{ID: schema.RowID(g), Vals: []types.Value{
			types.NewInt64(g), types.NewFloat64(float64(g) * 10), types.NewString(tag),
		}})
	}
	if err := e.LoadRows(context.Background(), dim.ID, rows); err != nil {
		t.Fatal(err)
	}
	return dim
}

// factDimJoin joins fact(grp, val) with groups(gid, weight, tag) on
// grp = gid, returning the full five-column output.
func factDimJoin(fact, dim *schema.Table) *query.Query {
	return &query.Query{Root: &query.JoinNode{
		Left:        &query.ScanNode{Table: fact.ID, Cols: []schema.ColID{1, 2}},
		Right:       &query.ScanNode{Table: dim.ID, Cols: []schema.ColID{0, 1, 2}},
		LeftKeyCol:  0,
		RightKeyCol: 0,
	}}
}

// factDimJoinAgg groups the join by the dimension tag and aggregates —
// the fused join→group-by path, which also exercises projection pushdown
// (the aggregate reads two of five join columns).
func factDimJoinAgg(fact, dim *schema.Table) *query.Query {
	return &query.Query{Root: &query.AggNode{
		Child:   factDimJoin(fact, dim).Root,
		GroupBy: []int{4},
		Aggs:    []exec.AggSpec{{Func: exec.AggCount}, {Func: exec.AggSum, Col: 1}, {Func: exec.AggAvg, Col: 3}},
	}}
}

func runSorted(t *testing.T, e *Engine, q *query.Query) exec.Rel {
	t.Helper()
	res, err := e.ExecuteQuery(context.Background(), e.NewSession(), q)
	if err != nil {
		t.Fatal(err)
	}
	sortTuples(res)
	return res
}

// setFactLayouts moves every copy of every fact partition to layout l.
func setFactLayouts(t *testing.T, e *Engine, fact *schema.Table, l storage.Layout) {
	t.Helper()
	for _, m := range e.Dir.TablePartitions(fact.ID) {
		for _, c := range m.AllCopies() {
			if c.Layout == l {
				continue
			}
			if err := e.ChangeCopyLayout(m.ID, c.Site, l); err != nil {
				t.Fatalf("layout %v on site %d: %v", l, c.Site, err)
			}
		}
	}
}

// TestBatchJoinMatchesRowEngineAcrossLayouts runs the join and the fused
// join-aggregate on two identical engines — batch path on, batch path
// off — across the full layout matrix, and requires identical answers.
// The counters double-check routing: the batch engine bumps
// exec.join.count, the legacy engine never does.
func TestBatchJoinMatchesRowEngineAcrossLayouts(t *testing.T) {
	batch, factB := newMorselEngine(t, ModeColumnStore, 2, 4, 240, nil)
	row, factR := newMorselEngine(t, ModeColumnStore, 2, 4, 240, func(c *Config) {
		c.DisableBatchJoin = true
	})
	dimB := addGroupsTable(t, batch, 10)
	dimR := addGroupsTable(t, row, 10)

	for _, lc := range joinDiffLayouts {
		t.Run(lc.name, func(t *testing.T) {
			setFactLayouts(t, batch, factB, lc.l)
			setFactLayouts(t, row, factR, lc.l)

			before := exec.ReadJoinStats().Joins
			gotJoin := runSorted(t, batch, factDimJoin(factB, dimB))
			if exec.ReadJoinStats().Joins == before {
				t.Fatal("batch engine did not take the batch join path")
			}
			before = exec.ReadJoinStats().Joins
			wantJoin := runSorted(t, row, factDimJoin(factR, dimR))
			if exec.ReadJoinStats().Joins != before {
				t.Fatal("DisableBatchJoin engine took the batch join path")
			}
			sameRels(t, "join", gotJoin, wantJoin)

			gotAgg := runSorted(t, batch, factDimJoinAgg(factB, dimB))
			wantAgg := runSorted(t, row, factDimJoinAgg(factR, dimR))
			sameRels(t, "join-agg", gotAgg, wantAgg)
		})
	}
}

// TestBatchJoinUnderConcurrentLayoutChanges races join queries against
// continuous layout flipping on the fact partitions (run with -race): every
// answer must equal the quiescent answer, regardless of which layout each
// morsel scan observed.
func TestBatchJoinUnderConcurrentLayoutChanges(t *testing.T) {
	e, fact := newMorselEngine(t, ModeColumnStore, 2, 4, 300, func(c *Config) {
		c.MorselRows = 64
	})
	dim := addGroupsTable(t, e, 10)
	want := runSorted(t, e, factDimJoin(fact, dim))
	wantAgg := runSorted(t, e, factDimJoinAgg(fact, dim))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		parts := e.Dir.TablePartitions(fact.ID)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m := parts[i%len(parts)]
			l := joinDiffLayouts[i%len(joinDiffLayouts)].l
			// Master copy only: enough to race the scan path, cheap enough
			// to flip continuously.
			if err := e.ChangeCopyLayout(m.ID, m.Master().Site, l); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 15; i++ {
		got := runSorted(t, e, factDimJoin(fact, dim))
		sameRels(t, "join under layout churn", got, want)
		gotAgg := runSorted(t, e, factDimJoinAgg(fact, dim))
		sameRels(t, "join-agg under layout churn", gotAgg, wantAgg)
	}
	close(stop)
	wg.Wait()
}

// addSparseGroups loads a dimension holding only gids 0 and 9: the
// min-max bounds [0,9] prune nothing (the fact side has 0-9), so any
// probe-row rejection is the Bloom filter's doing.
func addSparseGroups(t *testing.T, e *Engine) *schema.Table {
	t.Helper()
	dim, err := e.CreateTable(TableSpec{
		Name: "groups",
		Cols: []schema.Column{
			{Name: "gid", Kind: types.KindInt64},
			{Name: "weight", Kind: types.KindFloat64},
			{Name: "tag", Kind: types.KindString, AvgSize: 4},
		},
		MaxRows: 10, Partitions: 1, ReplicateAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadRows(context.Background(), dim.ID, []schema.Row{
		{ID: 0, Vals: []types.Value{types.NewInt64(0), types.NewFloat64(1), types.NewString("lo")}},
		{ID: 9, Vals: []types.Value{types.NewInt64(9), types.NewFloat64(2), types.NewString("hi")}},
	}); err != nil {
		t.Fatal(err)
	}
	return dim
}

// TestBatchJoinRuntimeFilterPruning joins against a dimension holding only
// gids {0, 9} while the fact side has 0-9: the runtime filter must push
// bounds predicates into the probe scans and Bloom-reject the probe rows
// with gids 1-8, and the answers must match a DisableRuntimeFilter engine
// exactly.
func TestBatchJoinRuntimeFilterPruning(t *testing.T) {
	rf, factF := newMorselEngine(t, ModeColumnStore, 2, 4, 240, nil)
	norf, factN := newMorselEngine(t, ModeColumnStore, 2, 4, 240, func(c *Config) {
		c.DisableRuntimeFilter = true
	})
	dimF := addSparseGroups(t, rf)
	dimN := addSparseGroups(t, norf)

	before := exec.ReadJoinStats()
	got := runSorted(t, rf, factDimJoin(factF, dimF))
	d := exec.ReadJoinStats()
	if d.BoundsPreds == before.BoundsPreds {
		t.Error("no min-max bounds predicate was pushed into the probe scan")
	}
	if d.BloomTested == before.BloomTested {
		t.Error("no probe rows were Bloom-tested")
	}
	// 2 of 10 group values survive and the bounds [0,9] prune nothing, so
	// the Bloom filter must reject the grp 1..8 rows itself.
	if passed, tested := d.BloomPassed-before.BloomPassed, d.BloomTested-before.BloomTested; passed >= tested {
		t.Errorf("Bloom filter rejected nothing: %d/%d passed", passed, tested)
	}

	before = exec.ReadJoinStats()
	want := runSorted(t, norf, factDimJoin(factN, dimN))
	if after := exec.ReadJoinStats(); after.BloomTested != before.BloomTested {
		t.Error("DisableRuntimeFilter engine still Bloom-tested probe rows")
	}
	sameRels(t, "runtime filter", got, want)

	// 48 fact rows have grp in {0, 9} (240 rows, grp = i%10 → 24 each).
	if len(got.Tuples) != 48 {
		t.Errorf("join rows = %d, want 48", len(got.Tuples))
	}
}

// TestBatchJoinEmptyBuildSide joins against an empty dimension: the
// runtime filter reports Empty, the probe side is never scanned, and the
// result is zero rows (with the aggregate seeing an empty input).
func TestBatchJoinEmptyBuildSide(t *testing.T) {
	e, fact := newMorselEngine(t, ModeColumnStore, 2, 4, 100, nil)
	dim := addGroupsTable(t, e, 0)
	res := runSorted(t, e, factDimJoin(fact, dim))
	if len(res.Tuples) != 0 {
		t.Fatalf("join with empty build side returned %d rows", len(res.Tuples))
	}
}

// TestBatchJoinEngineSpill self-joins the fact table on id with a tiny
// JoinSpillBudget: the build side exceeds the budget, grace-partitions
// through the engine's disksim device, and still matches the in-memory
// answer of a default-budget engine.
func TestBatchJoinEngineSpill(t *testing.T) {
	selfJoin := func(tbl *schema.Table) *query.Query {
		return &query.Query{Root: &query.JoinNode{
			Left:        &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0, 1}},
			Right:       &query.ScanNode{Table: tbl.ID, Cols: []schema.ColID{0, 2}},
			LeftKeyCol:  0,
			RightKeyCol: 0,
		}}
	}
	spill, factS := newMorselEngine(t, ModeColumnStore, 2, 4, 500, func(c *Config) {
		c.JoinSpillBudget = 1 << 10
	})
	mem, factM := newMorselEngine(t, ModeColumnStore, 2, 4, 500, nil)

	before := exec.ReadJoinStats()
	got := runSorted(t, spill, selfJoin(factS))
	d := exec.ReadJoinStats()
	if d.SpillPartitions == before.SpillPartitions || d.SpillBytes == before.SpillBytes {
		t.Fatal("join did not spill under a 1 KiB budget")
	}

	before = exec.ReadJoinStats()
	want := runSorted(t, mem, selfJoin(factM))
	if after := exec.ReadJoinStats(); after.SpillPartitions != before.SpillPartitions {
		t.Fatal("default-budget engine spilled a tiny build side")
	}
	sameRels(t, "spilled self-join", got, want)
	if len(got.Tuples) != 500 {
		t.Errorf("self-join rows = %d, want 500", len(got.Tuples))
	}
}

// TestBatchJoinMetricsExported checks the engine snapshot surfaces the
// exec.join.* and exec.groupby.* counters after a fused join-aggregate.
func TestBatchJoinMetricsExported(t *testing.T) {
	e, fact := newMorselEngine(t, ModeColumnStore, 2, 4, 200, nil)
	dim := addGroupsTable(t, e, 10)
	runSorted(t, e, factDimJoinAgg(fact, dim))

	snap := e.MetricsSnapshot()
	for _, key := range []string{
		"exec.join.count", "exec.join.build_rows", "exec.join.probe_rows",
		"exec.join.out_rows", "exec.groupby.batches",
	} {
		if snap.Counters[key] == 0 {
			t.Errorf("%s not exported or zero", key)
		}
	}
	if snap.Counters["exec.join.bloom_tested"] > 0 {
		if _, ok := snap.Gauges["exec.join.bloom_pass_pct"]; !ok {
			t.Error("exec.join.bloom_pass_pct gauge missing")
		}
	}
	typed := snap.Counters["exec.groupby.rows_typed"] + snap.Counters["exec.groupby.rows_coded"]
	if typed == 0 {
		t.Error("grouped aggregation never took a typed key path")
	}
}
