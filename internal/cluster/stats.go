package cluster

import (
	"sync"
	"time"
)

// OpClass buckets engine activity for the time-accounting experiments
// (Tables 4 and 5 of the paper).
type OpClass uint8

// Operation classes.
const (
	ClassOLTP OpClass = iota
	ClassOLAP
	ClassFormatChange
	ClassTierChange
	ClassSortCompChange
	ClassPartitionChange
	ClassReplicationChange
	ClassMasterChange
	ClassOLTPPlan
	ClassOLAPPlan
	ClassOLTPLayoutPlan
	ClassOLAPLayoutPlan
	ClassOLTPLayoutExec
	ClassOLAPLayoutExec
	NumOpClasses
)

// String names the class.
func (c OpClass) String() string {
	names := [...]string{
		"oltp-txn", "olap-txn", "format-change", "tier-change",
		"sort/comp-change", "partition-change", "replication-change",
		"master-change", "oltp-plan", "olap-plan",
		"oltp-layout-plan", "olap-layout-plan",
		"oltp-layout-exec", "olap-layout-exec",
	}
	if int(c) < len(names) {
		return names[c]
	}
	return "?"
}

// ClassStats aggregates one class's counters.
type ClassStats struct {
	Count     int64
	TotalTime time.Duration
}

// Avg reports the mean latency.
func (s ClassStats) Avg() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.TotalTime / time.Duration(s.Count)
}

// Stats tracks engine activity. Safe for concurrent use.
type Stats struct {
	mu      sync.Mutex
	classes [NumOpClasses]ClassStats

	oltpLatencies []time.Duration
	olapLatencies []time.Duration
	// keepLatencies bounds the retained per-request samples (ring).
	aborts int64
}

// Record adds one completed operation.
func (s *Stats) Record(c OpClass, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.classes[c].Count++
	s.classes[c].TotalTime += d
	switch c {
	case ClassOLTP:
		s.oltpLatencies = appendBounded(s.oltpLatencies, d)
	case ClassOLAP:
		s.olapLatencies = appendBounded(s.olapLatencies, d)
	}
}

func appendBounded(sl []time.Duration, d time.Duration) []time.Duration {
	const cap = 200000
	if len(sl) >= cap {
		copy(sl, sl[1:])
		sl = sl[:cap-1]
	}
	return append(sl, d)
}

// RecordAbort counts a transaction abort.
func (s *Stats) RecordAbort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aborts++
}

// Class returns one class's counters.
func (s *Stats) Class(c OpClass) ClassStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.classes[c]
}

// Aborts reports aborted transactions.
func (s *Stats) Aborts() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aborts
}

// Latencies returns copies of the retained per-request latency samples.
func (s *Stats) Latencies() (oltp, olap []time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.oltpLatencies...),
		append([]time.Duration(nil), s.olapLatencies...)
}

// Reset clears all counters (between experiment phases).
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.classes = [NumOpClasses]ClassStats{}
	s.oltpLatencies = nil
	s.olapLatencies = nil
	s.aborts = 0
}
