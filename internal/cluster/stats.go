package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/obs"
)

// OpClass buckets engine activity for the time-accounting experiments
// (Tables 4 and 5 of the paper).
type OpClass uint8

// Operation classes.
const (
	ClassOLTP OpClass = iota
	ClassOLAP
	ClassFormatChange
	ClassTierChange
	ClassSortCompChange
	ClassPartitionChange
	ClassReplicationChange
	ClassMasterChange
	ClassOLTPPlan
	ClassOLAPPlan
	ClassOLTPLayoutPlan
	ClassOLAPLayoutPlan
	ClassOLTPLayoutExec
	ClassOLAPLayoutExec
	NumOpClasses
)

// String names the class.
func (c OpClass) String() string {
	names := [...]string{
		"oltp-txn", "olap-txn", "format-change", "tier-change",
		"sort/comp-change", "partition-change", "replication-change",
		"master-change", "oltp-plan", "olap-plan",
		"oltp-layout-plan", "olap-layout-plan",
		"oltp-layout-exec", "olap-layout-exec",
	}
	if int(c) < len(names) {
		return names[c]
	}
	return "?"
}

// ClassStats aggregates one class's counters.
type ClassStats struct {
	Count     int64
	TotalTime time.Duration
}

// Avg reports the mean latency.
func (s ClassStats) Avg() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.TotalTime / time.Duration(s.Count)
}

// latencyRingCap sizes the per-class sample windows backing the quantile
// snapshots.
const latencyRingCap = 1 << 16

// classCounter is one class's lock-free accumulators.
type classCounter struct {
	count atomic.Int64
	ns    atomic.Int64
}

// Stats tracks engine activity. The zero value is ready to use and every
// method is safe for concurrent use; recording is lock-free (atomic
// counters plus O(1) ring writes), replacing the former global-mutex
// sampler whose bounded append copied the full 200k-sample window per
// record once full.
type Stats struct {
	classes [NumOpClasses]classCounter
	aborts  atomic.Int64

	once  sync.Once
	oltp  *obs.Recorder // per-request OLTP latency window
	olap  *obs.Recorder // per-request OLAP latency window
	adapt *obs.Recorder // adaptation work (layout plan + change execution)
}

func (s *Stats) init() {
	s.once.Do(func() {
		s.oltp = obs.NewRecorder(latencyRingCap)
		s.olap = obs.NewRecorder(latencyRingCap)
		s.adapt = obs.NewRecorder(1 << 12)
	})
}

// Record adds one completed operation.
func (s *Stats) Record(c OpClass, d time.Duration) {
	s.init()
	s.classes[c].count.Add(1)
	s.classes[c].ns.Add(int64(d))
	switch c {
	case ClassOLTP:
		s.oltp.Record(d)
	case ClassOLAP:
		s.olap.Record(d)
	case ClassOLTPPlan, ClassOLAPPlan:
		// Request planning is accounted per class only.
	default:
		s.adapt.Record(d)
	}
}

// RecordAbort counts a transaction abort.
func (s *Stats) RecordAbort() { s.aborts.Add(1) }

// Class returns one class's counters.
func (s *Stats) Class(c OpClass) ClassStats {
	return ClassStats{
		Count:     s.classes[c].count.Load(),
		TotalTime: time.Duration(s.classes[c].ns.Load()),
	}
}

// Aborts reports aborted transactions.
func (s *Stats) Aborts() int64 { return s.aborts.Load() }

// Latencies returns the retained per-request latency windows in arrival
// order (oldest first).
func (s *Stats) Latencies() (oltp, olap []time.Duration) {
	s.init()
	return s.oltp.Samples(), s.olap.Samples()
}

// Quantiles snapshots the three latency windows: per-request OLTP and
// OLAP, and adaptation work (layout planning and change execution).
func (s *Stats) Quantiles() (oltp, olap, adapt obs.LatencySnapshot) {
	s.init()
	return s.oltp.Snapshot(), s.olap.Snapshot(), s.adapt.Snapshot()
}

// Reset clears all counters (between experiment phases).
func (s *Stats) Reset() {
	s.init()
	for i := range s.classes {
		s.classes[i].count.Store(0)
		s.classes[i].ns.Store(0)
	}
	s.aborts.Store(0)
	s.oltp.Reset()
	s.olap.Reset()
	s.adapt.Reset()
}
