package cluster

import (
	"sort"
	"time"

	"proteus/internal/forecast"
	"proteus/internal/partition"
	"proteus/internal/simnet"
	"proteus/internal/storage"
)

// Baseline tier management (§6.2): the comparison systems use an LRU
// policy to decide which partitions stay in memory. When a site exceeds
// its memory capacity, the least-recently-accessed memory-tier partitions
// demote to disk; when usage falls below the low watermark, the
// most-recently-accessed disk partitions promote back. Proteus instead
// manages tiers through the ASA's cost-based capacity planning.

// lruTick enforces LRU tiering at every site (non-Proteus modes).
func (e *Engine) lruTick() {
	for _, s := range e.Sites {
		cap := s.MemCapacity()
		if cap <= 0 {
			continue
		}
		used := s.MemUsage()
		switch {
		case used > cap:
			e.lruDemote(s.ID, used-cap*8/10)
		case used < cap*6/10:
			e.lruPromote(s.ID, cap*8/10-used)
		}
	}
}

type lruEntry struct {
	p    *partition.Partition
	heat float64
	size int64
}

func (e *Engine) lruCandidates(siteID int, tier storage.Tier) []lruEntry {
	var out []lruEntry
	for _, p := range e.Sites[siteID].Partitions() {
		if p.Layout().Tier != tier {
			continue
		}
		heat := 0.0
		if m, ok := e.Dir.Get(p.ID); ok {
			heat = m.Tracker.RecentRate(forecast.Update, 16) +
				m.Tracker.RecentRate(forecast.PointRead, 16) +
				m.Tracker.RecentRate(forecast.Scan, 16)
		}
		out = append(out, lruEntry{p: p, heat: heat, size: int64(p.Stats().Bytes)})
	}
	return out
}

// lruDemote moves the coldest memory partitions to disk until `need`
// bytes are freed.
func (e *Engine) lruDemote(siteID simnet.SiteID, need int64) {
	cands := e.lruCandidates(int(siteID), storage.MemoryTier)
	sort.Slice(cands, func(i, j int) bool { return cands[i].heat < cands[j].heat })
	freed := int64(0)
	for _, c := range cands {
		if freed >= need {
			return
		}
		l := c.p.Layout()
		l.Tier = storage.DiskTier
		if err := e.ChangeCopyLayout(c.p.ID, siteID, l); err == nil {
			freed += c.size
		}
	}
}

// lruPromote moves the hottest disk partitions back to memory while room
// remains. Partitions too large for the remaining room are skipped, not
// treated as a stop condition: one oversized cold partition must not
// starve smaller hot ones behind it in the heat order.
func (e *Engine) lruPromote(siteID simnet.SiteID, room int64) {
	cands := e.lruCandidates(int(siteID), storage.DiskTier)
	sort.Slice(cands, func(i, j int) bool { return cands[i].heat > cands[j].heat })
	for _, c := range cands {
		if c.heat == 0 {
			return // candidates are heat-sorted; the rest are cold
		}
		if c.size >= room {
			continue
		}
		l := c.p.Layout()
		l.Tier = storage.MemoryTier
		if err := e.ChangeCopyLayout(c.p.ID, siteID, l); err == nil {
			room -= c.size
		}
	}
}

// startTiering launches the baseline LRU loop.
func (e *Engine) startTiering(interval time.Duration) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		t := e.clk.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				e.lruTick()
			}
		}
	}()
}

// LayoutCounts summarizes the current cluster-wide layout distribution
// (for reporting and the adaptivity experiments).
func (e *Engine) LayoutCounts() map[string]int {
	out := map[string]int{}
	for _, s := range e.Sites {
		for _, p := range s.Partitions() {
			out[p.Layout().String()]++
		}
	}
	return out
}
