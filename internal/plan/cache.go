// Package plan implements Proteus' physical execution planning (§5.3.1):
// binding query-tree leaves to concrete partition replicas at chosen
// sites, selecting physical operators (join algorithms, aggregation
// strategies) greedily by learned cost, inserting distributed coordination
// nodes, and reusing previous plans and bucketed operator decisions to cut
// planning latency (§5.3.3).
package plan

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// Epoch is a monotonically increasing storage-layout version. Every layout
// change bumps it, invalidating cached whole plans ("a single change
// invalidates a plan", §5.3.3).
type Epoch struct{ v atomic.Uint64 }

// Bump advances the epoch after a layout change.
func (e *Epoch) Bump() { e.v.Add(1) }

// Current reads the epoch.
func (e *Epoch) Current() uint64 { return e.v.Load() }

// PlanCache caches whole physical plans keyed by request fingerprint,
// valid for a single layout epoch.
type PlanCache struct {
	mu    sync.Mutex
	epoch uint64
	plans map[string]any
	hits  int64
	miss  int64
}

// NewPlanCache creates an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: make(map[string]any)}
}

// Get returns the cached plan for the fingerprint if it was stored in the
// same layout epoch.
func (c *PlanCache) Get(fingerprint string, epoch uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch {
		c.plans = make(map[string]any)
		c.epoch = epoch
	}
	p, ok := c.plans[fingerprint]
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return p, ok
}

// Put stores a plan under the fingerprint for the epoch.
func (c *PlanCache) Put(fingerprint string, epoch uint64, plan any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch {
		c.plans = make(map[string]any)
		c.epoch = epoch
	}
	c.plans[fingerprint] = plan
}

// Stats reports hits and misses.
func (c *PlanCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}

// DecisionCache reuses individual operator decisions across plans: the
// input arguments for each decision are bucketed (log scale) and the
// decision made under those arguments is cached (§5.3.3). Unlike the plan
// cache it survives layout changes — decisions carry their own layout
// arguments in the key.
type DecisionCache struct {
	mu        sync.Mutex
	decisions map[string]any
	hits      int64
	miss      int64
}

// NewDecisionCache creates an empty decision cache.
func NewDecisionCache() *DecisionCache {
	return &DecisionCache{decisions: make(map[string]any)}
}

// Bucket quantizes a magnitude onto a log2 scale so similar inputs share
// cache entries.
func Bucket(v float64) int {
	if v <= 0 {
		return 0
	}
	return int(math.Round(math.Log2(v + 1)))
}

// Key builds a decision-cache key from a decision kind, discrete tags and
// bucketed magnitudes.
func Key(kind string, tags []string, magnitudes []float64) string {
	var sb strings.Builder
	sb.WriteString(kind)
	for _, t := range tags {
		sb.WriteByte('|')
		sb.WriteString(t)
	}
	for _, m := range magnitudes {
		fmt.Fprintf(&sb, "|%d", Bucket(m))
	}
	return sb.String()
}

// Lookup returns the cached decision.
func (c *DecisionCache) Lookup(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.decisions[key]
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return d, ok
}

// Store records a decision.
func (c *DecisionCache) Store(key string, decision any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decisions[key] = decision
}

// Invalidate clears every cached decision (used when the cost model shifts
// substantially).
func (c *DecisionCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decisions = make(map[string]any)
}

// Stats reports hits and misses.
func (c *DecisionCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}
