package plan

import (
	"fmt"
	"sort"

	"proteus/internal/cost"
	"proteus/internal/exec"
	"proteus/internal/forecast"
	"proteus/internal/metadata"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
)

// PNode is a node of a physical execution plan (Figure 7b).
type PNode interface{ isPNode() }

// ScanPart binds one partition to a chosen copy for scanning.
type ScanPart struct {
	Meta *metadata.PartitionMeta
	Copy metadata.Replica
	// Cols are the table-global columns this piece contributes.
	Cols []schema.ColID
}

// RowSegment is one horizontal slice of a table scan: the vertical pieces
// tiling the needed columns for rows [Lo, Hi).
type RowSegment struct {
	Lo, Hi schema.RowID
	Pieces []ScanPart
}

// PScan reads Cols of Table where Pred holds, assembled from the bound
// partition copies segment by segment.
type PScan struct {
	Table    schema.TableID
	Cols     []schema.ColID // output columns, in order
	Pred     storage.Pred
	Segments []RowSegment
	EstRows  int
	// Sorted reports the output arrives ordered by the given output
	// position (single sorted partition covering all rows), or -1.
	SortedBy int
}

func (*PScan) isPNode() {}

// JoinStrategy selects the distributed execution shape of a join.
type JoinStrategy uint8

const (
	// JoinAtCoordinator evaluates both children fully, then joins where
	// the coordinator runs.
	JoinAtCoordinator JoinStrategy = iota
	// JoinColocated joins each left segment at its storage site against a
	// local copy of the right side, shipping only partial results —
	// Figure 7b's local joins with global aggregation.
	JoinColocated
)

// PJoin joins two subplans.
type PJoin struct {
	Left, Right PNode
	LeftKey     int // position in left output
	RightKey    int // position in right output
	Alg         cost.Variant
	Strategy    JoinStrategy
	EstRows     int
}

func (*PJoin) isPNode() {}

// PAgg aggregates a subplan, optionally in two phases (site-local partial
// aggregation followed by a final combine at the coordinator).
type PAgg struct {
	Child   PNode
	GroupBy []int
	Aggs    []exec.AggSpec
	// TwoPhase: sites compute PartialAggs; the coordinator combines with
	// FinalAggs over the concatenated partials (AVG is decomposed into
	// SUM and COUNT).
	TwoPhase    bool
	PartialAggs []exec.AggSpec
	FinalAggs   []exec.AggSpec
	// AvgPairs maps output agg index -> (sum position, count position) in
	// the partial layout for AVG reconstruction.
	AvgPairs map[int][2]int
}

func (*PAgg) isPNode() {}

// OutputWidth reports the number of columns a plan node produces.
func OutputWidth(n PNode) int {
	switch v := n.(type) {
	case *PScan:
		return len(v.Cols)
	case *PJoin:
		return OutputWidth(v.Left) + OutputWidth(v.Right)
	case *PAgg:
		return len(v.GroupBy) + len(v.Aggs)
	}
	return 0
}

// Planner builds physical plans from logical query trees (§5.3.1).
type Planner struct {
	Dir       *metadata.Directory
	Model     *cost.Model
	Decisions *DecisionCache
	Plans     *PlanCache
	Epoch     *Epoch
	// Coordinator is where final results assemble (the submitting
	// client's entry point; the ASA picks a data site per query).
	Coordinator simnet.SiteID
	// MaxRow bounds table row ids (for full-table partition lookups).
	MaxRow schema.RowID
}

// PlanQuery converts a logical query into a physical plan, reusing a
// cached plan when the layout epoch allows.
func (pl *Planner) PlanQuery(q *query.Query) (PNode, error) {
	fp := fingerprint(q.Root)
	epoch := pl.Epoch.Current()
	if cached, ok := pl.Plans.Get(fp, epoch); ok {
		if node, ok := cached.(PNode); ok {
			return node, nil
		}
	}
	node, err := pl.planNode(q.Root)
	if err != nil {
		return nil, err
	}
	pl.Plans.Put(fp, epoch, node)
	return node, nil
}

func (pl *Planner) planNode(n query.Node) (PNode, error) {
	switch v := n.(type) {
	case *query.ScanNode:
		return pl.planScan(v)
	case *query.JoinNode:
		return pl.planJoin(v)
	case *query.AggNode:
		return pl.planAgg(v)
	}
	return nil, fmt.Errorf("plan: unknown node %T", n)
}

// neededCols unions projection and predicate columns.
func neededCols(cols []schema.ColID, pred storage.Pred) []schema.ColID {
	seen := map[schema.ColID]bool{}
	var out []schema.ColID
	for _, c := range cols {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, p := range pred {
		if !seen[p.Col] {
			seen[p.Col] = true
			out = append(out, p.Col)
		}
	}
	return out
}

func (pl *Planner) planScan(s *query.ScanNode) (PNode, error) {
	need := neededCols(s.Cols, s.Pred)
	parts := pl.Dir.PartitionsFor(s.Table, 0, pl.MaxRow, need)
	if len(parts) == 0 {
		return nil, fmt.Errorf("plan: no partitions for table %d", s.Table)
	}
	// Compute row segments from the union of partition boundaries.
	cutSet := map[schema.RowID]bool{}
	for _, m := range parts {
		cutSet[m.Bounds.RowStart] = true
		cutSet[m.Bounds.RowEnd] = true
	}
	cuts := make([]schema.RowID, 0, len(cutSet))
	for c := range cutSet {
		cuts = append(cuts, c)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	ps := &PScan{Table: s.Table, Cols: s.Cols, Pred: s.Pred, SortedBy: -1}
	est := 0
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		seg := RowSegment{Lo: lo, Hi: hi}
		for _, m := range parts {
			if !m.Bounds.OverlapsRows(lo, hi) {
				continue
			}
			var pieceCols []schema.ColID
			for _, c := range need {
				if m.Bounds.ContainsCol(c) {
					pieceCols = append(pieceCols, c)
				}
			}
			if len(need) == 0 && len(seg.Pieces) == 0 {
				// Projection-free scans (COUNT(*)) still visit each row
				// once: read one column of one vertical piece per segment.
				pieceCols = []schema.ColID{m.Bounds.ColStart}
			}
			if len(pieceCols) == 0 {
				continue
			}
			copyChoice := pl.chooseCopy(m, pieceCols, s.Pred)
			seg.Pieces = append(seg.Pieces, ScanPart{Meta: m, Copy: copyChoice, Cols: pieceCols})
			if m.ZoneMap != nil {
				est += int(float64(m.ZoneMap.Rows()) * m.ZoneMap.EstimateSelectivity(globalToLocalPred(m, s.Pred)))
			}
		}
		if len(seg.Pieces) > 0 {
			ps.Segments = append(ps.Segments, seg)
		}
	}
	ps.EstRows = est
	// Sorted output: a single piece whose layout sorts by an output column.
	if len(ps.Segments) == 1 && len(ps.Segments[0].Pieces) == 1 {
		p := ps.Segments[0].Pieces[0]
		if p.Copy.Layout.SortBy != storage.NoSort {
			global := p.Meta.Bounds.GlobalCol(p.Copy.Layout.SortBy)
			for i, c := range s.Cols {
				if c == global {
					ps.SortedBy = i
				}
			}
		}
	}
	return ps, nil
}

// globalToLocalPred keeps only the conjuncts a partition covers, translated
// to its local columns (for zone-map selectivity).
func globalToLocalPred(m *metadata.PartitionMeta, pred storage.Pred) storage.Pred {
	var out storage.Pred
	for _, c := range pred {
		if m.Bounds.ContainsCol(c.Col) {
			out = append(out, storage.Cond{Col: m.Bounds.LocalCol(c.Col), Op: c.Op, Val: c.Val})
		}
	}
	return out
}

// chooseCopy picks the replica to scan: minimal predicted scan cost plus
// shipping the result toward the coordinator. The decision is cached by
// bucketed cardinality and the copy layouts (§5.3.3).
func (pl *Planner) chooseCopy(m *metadata.PartitionMeta, cols []schema.ColID, pred storage.Pred) metadata.Replica {
	copies := m.AllCopies()
	if len(copies) == 1 {
		return copies[0]
	}
	rows := 0
	if m.ZoneMap != nil {
		rows = m.ZoneMap.Rows()
	}
	tags := make([]string, 0, len(copies)+1)
	for _, c := range copies {
		tags = append(tags, fmt.Sprintf("%d@%s", c.Site, c.Layout))
	}
	key := Key("copy", tags, []float64{float64(rows), float64(len(cols))})
	if d, ok := pl.Decisions.Lookup(key); ok {
		if r, ok := d.(metadata.Replica); ok && m.HasCopyAt(r.Site) {
			return r
		}
	}
	rowBytes := pl.Dir.AvgRowBytes(m.Bounds.Table, nil)
	outBytes := pl.Dir.AvgRowBytes(m.Bounds.Table, cols)
	sel := 1.0
	if m.ZoneMap != nil {
		sel = m.ZoneMap.EstimateSelectivity(globalToLocalPred(m, pred))
	}
	// Replicas of update-hot partitions must catch up before a consistent
	// read (§4.2): charge the expected freshness wait.
	updateRate := m.Tracker.RecentRate(forecast.Update, 8)
	master := m.Master()
	best := copies[0]
	bestCost := float64(1 << 62)
	for _, c := range copies {
		variant := cost.ScanSeq
		if c.Layout.SortBy != storage.NoSort {
			variant = cost.ScanSorted
		}
		scanCost := pl.Model.Predict(cost.OpScan, variant, c.Layout, cost.ScanFeatures(rows, rowBytes, outBytes, sel))
		shipBytes := int(float64(rows) * sel * float64(outBytes))
		netCost := pl.Model.Predict(cost.OpNetwork, cost.VariantDefault, storage.Layout{},
			cost.NetworkFeatures(0, 0, shipBytes, 0))
		total := float64(scanCost)
		if c.Site != pl.Coordinator {
			total += float64(netCost)
		}
		if c != master && updateRate > 0 {
			wait := pl.Model.Predict(cost.OpWaitUpdates, cost.VariantDefault, storage.Layout{},
				cost.WaitFeatures(int(updateRate)+1))
			total += float64(wait)
		}
		if total < bestCost {
			bestCost, best = total, c
		}
	}
	pl.Decisions.Store(key, best)
	return best
}

func (pl *Planner) planJoin(j *query.JoinNode) (PNode, error) {
	left, err := pl.planNode(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := pl.planNode(j.Right)
	if err != nil {
		return nil, err
	}
	pj := &PJoin{Left: left, Right: right, LeftKey: j.LeftKeyCol, RightKey: j.RightKeyCol}

	// Strategy: colocate when both children are scans and every site
	// holding a left piece also holds a copy of every right partition
	// ("at least one side of a join executes over precisely one copy of
	// each partition", §4.3).
	ls, lok := left.(*PScan)
	rs, rok := right.(*PScan)
	if lok && rok {
		if colocatable(ls, rs) {
			pj.Strategy = JoinColocated
			retargetToLeftSites(ls, rs)
		}
	}
	pj.Alg = pl.chooseJoinAlg(left, right, j.LeftKeyCol, j.RightKeyCol)
	pj.EstRows = estRows(left) // FK join estimate: one match per left row
	return pj, nil
}

// colocatable reports whether every site scanning a left piece has a copy
// of every right partition.
func colocatable(l, r *PScan) bool {
	sites := map[simnet.SiteID]bool{}
	for _, seg := range l.Segments {
		for _, p := range seg.Pieces {
			sites[p.Copy.Site] = true
		}
	}
	if len(sites) == 0 {
		return false
	}
	for _, seg := range r.Segments {
		for _, p := range seg.Pieces {
			for s := range sites {
				if !p.Meta.HasCopyAt(s) {
					return false
				}
			}
		}
	}
	return true
}

// retargetToLeftSites repoints the right scan's copies to whichever site
// will execute each local join (resolved per-site at execution; here we
// just mark preference by leaving metadata intact — the executor resolves
// local copies).
func retargetToLeftSites(l, r *PScan) {
	// No-op beyond strategy selection: the executor looks up the local
	// copy of each right partition at each joining site.
	_ = l
	_ = r
}

// chooseJoinAlg picks merge join when both inputs arrive sorted on the
// keys, otherwise cost-compares hash and nested-loop (greedy operator
// selection, §5.3.1), reusing bucketed decisions.
func (pl *Planner) chooseJoinAlg(left, right PNode, lKey, rKey int) cost.Variant {
	if ls, ok := left.(*PScan); ok {
		if rs, ok := right.(*PScan); ok {
			if ls.SortedBy == lKey && rs.SortedBy == rKey && ls.SortedBy >= 0 && rs.SortedBy >= 0 {
				return cost.JoinMerge
			}
		}
	}
	lRows, rRows := estRows(left), estRows(right)
	key := Key("joinalg", nil, []float64{float64(lRows), float64(rRows)})
	if d, ok := pl.Decisions.Lookup(key); ok {
		if v, ok := d.(cost.Variant); ok {
			return v
		}
	}
	feat := cost.JoinFeatures(lRows, rRows, maxI(lRows, rRows), 64, 0.001)
	hash := pl.Model.Predict(cost.OpJoin, cost.JoinHash, storage.Layout{}, feat)
	nested := pl.Model.Predict(cost.OpJoin, cost.JoinNested, storage.Layout{}, feat)
	choice := cost.JoinHash
	if nested < hash {
		choice = cost.JoinNested
	}
	pl.Decisions.Store(key, choice)
	return choice
}

func (pl *Planner) planAgg(a *query.AggNode) (PNode, error) {
	child, err := pl.planNode(a.Child)
	if err != nil {
		return nil, err
	}
	pa := &PAgg{Child: child, GroupBy: a.GroupBy, Aggs: a.Aggs}
	// Two-phase aggregation when the child executes distributed.
	switch c := child.(type) {
	case *PScan:
		pa.TwoPhase = multiSite(c)
	case *PJoin:
		pa.TwoPhase = c.Strategy == JoinColocated
	}
	if pa.TwoPhase {
		pa.PartialAggs, pa.FinalAggs, pa.AvgPairs = DecomposeAggs(a.GroupBy, a.Aggs)
	}
	return pa, nil
}

func multiSite(s *PScan) bool {
	sites := map[simnet.SiteID]bool{}
	for _, seg := range s.Segments {
		for _, p := range seg.Pieces {
			sites[p.Copy.Site] = true
		}
	}
	return len(sites) > 1
}

// DecomposeAggs rewrites aggregates for two-phase execution. The partial
// layout is [groupBy..., partial aggs...]; the final phase re-aggregates
// over that layout. The morsel executor also uses it for single-site scans
// so worker-local partial aggregation composes the same way everywhere.
func DecomposeAggs(groupBy []int, aggs []exec.AggSpec) (partial, final []exec.AggSpec, avgPairs map[int][2]int) {
	avgPairs = map[int][2]int{}
	for i, a := range aggs {
		switch a.Func {
		case exec.AggAvg:
			sumPos := len(groupBy) + len(partial)
			partial = append(partial, exec.AggSpec{Func: exec.AggSum, Col: a.Col})
			countPos := len(groupBy) + len(partial)
			partial = append(partial, exec.AggSpec{Func: exec.AggCount})
			avgPairs[i] = [2]int{sumPos, countPos}
			final = append(final, exec.AggSpec{Func: exec.AggSum, Col: sumPos}, exec.AggSpec{Func: exec.AggSum, Col: countPos})
		case exec.AggCount:
			pos := len(groupBy) + len(partial)
			partial = append(partial, a)
			final = append(final, exec.AggSpec{Func: exec.AggSum, Col: pos})
		case exec.AggSum, exec.AggMin, exec.AggMax:
			pos := len(groupBy) + len(partial)
			partial = append(partial, a)
			final = append(final, exec.AggSpec{Func: a.Func, Col: pos})
		}
	}
	return partial, final, avgPairs
}

func estRows(n PNode) int {
	switch v := n.(type) {
	case *PScan:
		return v.EstRows
	case *PJoin:
		return v.EstRows
	case *PAgg:
		return 1
	}
	return 0
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fingerprint canonically renders a logical tree for plan-cache keying.
func fingerprint(n query.Node) string { return n.String() }
