package plan

import (
	"fmt"
	"sort"

	"proteus/internal/cost"
	"proteus/internal/forecast"
	"proteus/internal/metadata"
	"proteus/internal/partition"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
)

// OpBinding binds one OLTP operation to the partition copies it touches.
// Reads bind a chosen copy per covering piece; writes always bind masters.
type OpBinding struct {
	Op query.Op
	// Pieces are the partitions covering the op's row and columns (more
	// than one when the row range is vertically partitioned).
	Pieces []*metadata.PartitionMeta
	// Copies holds, per piece, the replica chosen for reads (for writes it
	// is the master).
	Copies []metadata.Replica
}

// TxnPlan is the physical plan of an OLTP transaction.
type TxnPlan struct {
	Bindings  []OpBinding
	ReadPIDs  []partition.ID
	WritePIDs []partition.ID
	// WriteSites are the master sites involved in writes; more than one
	// requires two-phase commit (§4.3).
	WriteSites []simnet.SiteID
}

// PlanTxn binds every operation of a transaction to partition copies.
func (pl *Planner) PlanTxn(t *query.Txn) (*TxnPlan, error) {
	tp := &TxnPlan{}
	readSet := map[partition.ID]bool{}
	writeSet := map[partition.ID]bool{}
	writeSites := map[simnet.SiteID]bool{}

	for _, op := range t.Ops {
		cols := op.Cols
		if op.Kind == query.OpInsert || op.Kind == query.OpDelete {
			cols = nil // all columns
		}
		pieces := pl.Dir.PartitionForRow(op.Table, op.Row, cols)
		if len(pieces) == 0 {
			return nil, fmt.Errorf("plan: no partition for table %d row %d", op.Table, op.Row)
		}
		b := OpBinding{Op: op, Pieces: pieces}
		for _, m := range pieces {
			if op.Kind == query.OpRead {
				b.Copies = append(b.Copies, pl.choosePointCopy(m, len(cols)))
				readSet[m.ID] = true
			} else {
				master := m.Master()
				b.Copies = append(b.Copies, master)
				writeSet[m.ID] = true
				writeSites[master.Site] = true
			}
		}
		tp.Bindings = append(tp.Bindings, b)
	}
	for id := range readSet {
		if !writeSet[id] {
			tp.ReadPIDs = append(tp.ReadPIDs, id)
		}
	}
	for id := range writeSet {
		tp.WritePIDs = append(tp.WritePIDs, id)
	}
	sort.Slice(tp.ReadPIDs, func(i, j int) bool { return tp.ReadPIDs[i] < tp.ReadPIDs[j] })
	sort.Slice(tp.WritePIDs, func(i, j int) bool { return tp.WritePIDs[i] < tp.WritePIDs[j] })
	for s := range writeSites {
		tp.WriteSites = append(tp.WriteSites, s)
	}
	sort.Slice(tp.WriteSites, func(i, j int) bool { return tp.WriteSites[i] < tp.WriteSites[j] })
	return tp, nil
}

// choosePointCopy picks the cheapest copy for a point read, preferring the
// coordinator's local copy, with the decision cached by layout set.
func (pl *Planner) choosePointCopy(m *metadata.PartitionMeta, ncols int) metadata.Replica {
	copies := m.AllCopies()
	if len(copies) == 1 {
		return copies[0]
	}
	tags := make([]string, 0, len(copies))
	for _, c := range copies {
		tags = append(tags, fmt.Sprintf("%d@%s", c.Site, c.Layout))
	}
	key := Key("pointcopy", tags, []float64{float64(ncols)})
	if d, ok := pl.Decisions.Lookup(key); ok {
		if r, ok := d.(metadata.Replica); ok && m.HasCopyAt(r.Site) {
			return r
		}
	}
	rowBytes := pl.Dir.AvgRowBytes(m.Bounds.Table, nil)
	updateRate := m.Tracker.RecentRate(forecast.Update, 8)
	master := m.Master()
	best := copies[0]
	bestCost := float64(1 << 62)
	for _, c := range copies {
		read := pl.Model.Predict(cost.OpPointRead, cost.VariantDefault, c.Layout, cost.PointReadFeatures(ncols, rowBytes))
		total := float64(read)
		if c.Site != pl.Coordinator {
			net := pl.Model.Predict(cost.OpNetwork, cost.VariantDefault, storage.Layout{}, cost.NetworkFeatures(0, 0, rowBytes, rowBytes))
			total += float64(net)
		}
		if c != master && updateRate > 0 {
			// Replicas of update-hot partitions must catch up before a
			// consistent read (§4.2): charge the expected freshness wait.
			wait := pl.Model.Predict(cost.OpWaitUpdates, cost.VariantDefault, storage.Layout{},
				cost.WaitFeatures(int(updateRate)+1))
			total += float64(wait)
		}
		if total < bestCost {
			bestCost, best = total, c
		}
	}
	pl.Decisions.Store(key, best)
	return best
}

// PieceCols returns the columns of op relevant to one covering piece,
// paired with the value positions in op.Vals. Inserts return every
// partition-local column.
func PieceCols(op query.Op, m *metadata.PartitionMeta) (cols []schema.ColID, valIdx []int) {
	if op.Kind == query.OpInsert {
		for c := m.Bounds.ColStart; c < m.Bounds.ColEnd; c++ {
			cols = append(cols, c)
			valIdx = append(valIdx, int(c))
		}
		return cols, valIdx
	}
	for i, c := range op.Cols {
		if m.Bounds.ContainsCol(c) {
			cols = append(cols, c)
			valIdx = append(valIdx, i)
		}
	}
	return cols, valIdx
}
