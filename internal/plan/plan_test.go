package plan

import (
	"testing"

	"proteus/internal/cost"
	"proteus/internal/exec"
	"proteus/internal/forecast"
	"proteus/internal/metadata"
	"proteus/internal/partition"
	"proteus/internal/query"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/types"
	"proteus/internal/zonemap"
)

func testPlanner() (*Planner, *metadata.Directory) {
	dir := metadata.NewDirectory(forecast.DefaultConfig())
	dir.InitColStats(1, []float64{8, 8, 8})
	dir.InitColStats(2, []float64{8, 16})
	return &Planner{
		Dir:       dir,
		Model:     cost.NewModel(),
		Decisions: NewDecisionCache(),
		Plans:     NewPlanCache(),
		Epoch:     &Epoch{},
		MaxRow:    1 << 30,
	}, dir
}

func register(dir *metadata.Directory, table schema.TableID, rlo, rhi schema.RowID,
	clo, chi schema.ColID, site simnet.SiteID, l storage.Layout, rows int) *metadata.PartitionMeta {
	zm := zonemap.New(int(chi - clo))
	for i := 0; i < rows; i++ {
		zm.Observe([]types.Value{types.NewInt64(int64(i))})
	}
	b := partition.Bounds{Table: table, RowStart: rlo, RowEnd: rhi, ColStart: clo, ColEnd: chi}
	return dir.Register(dir.AllocID(), b, metadata.Replica{Site: site, Layout: l}, zm)
}

func TestPlanScanSegmentsAndPieces(t *testing.T) {
	pl, dir := testPlanner()
	// Table 1: rows [0,100) full cols at site 0; rows [100,200) split
	// vertically between sites.
	register(dir, 1, 0, 100, 0, 3, 0, storage.DefaultRowLayout(), 100)
	register(dir, 1, 100, 200, 0, 2, 1, storage.DefaultColumnLayout(), 100)
	register(dir, 1, 100, 200, 2, 3, 0, storage.DefaultRowLayout(), 100)

	node, err := pl.PlanQuery(&query.Query{Root: &query.ScanNode{
		Table: 1, Cols: []schema.ColID{0, 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ps := node.(*PScan)
	if len(ps.Segments) != 2 {
		t.Fatalf("segments = %d", len(ps.Segments))
	}
	if len(ps.Segments[0].Pieces) != 1 || len(ps.Segments[1].Pieces) != 2 {
		t.Errorf("pieces = %d / %d", len(ps.Segments[0].Pieces), len(ps.Segments[1].Pieces))
	}
	if ps.EstRows <= 0 {
		t.Error("no cardinality estimate")
	}
}

func TestPlanCacheReuseAndEpochInvalidation(t *testing.T) {
	pl, dir := testPlanner()
	register(dir, 1, 0, 100, 0, 3, 0, storage.DefaultRowLayout(), 100)
	q := &query.Query{Root: &query.ScanNode{Table: 1, Cols: []schema.ColID{0}}}

	p1, err := pl.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := pl.PlanQuery(q)
	if p1 != p2 {
		t.Error("plan not reused within epoch")
	}
	hits, _ := pl.Plans.Stats()
	if hits == 0 {
		t.Error("no cache hit recorded")
	}
	pl.Epoch.Bump() // a single layout change invalidates the plan (§5.3.3)
	p3, _ := pl.PlanQuery(q)
	if p1 == p3 {
		t.Error("plan survived epoch bump")
	}
}

func TestJoinColocatedWhenReplicated(t *testing.T) {
	pl, dir := testPlanner()
	// Fact table partitioned across sites 0 and 1.
	register(dir, 1, 0, 100, 0, 3, 0, storage.DefaultRowLayout(), 100)
	register(dir, 1, 100, 200, 0, 3, 1, storage.DefaultRowLayout(), 100)
	// Dimension table replicated at both sites.
	dim := register(dir, 2, 0, 50, 0, 2, 0, storage.DefaultColumnLayout(), 50)
	dim.AddReplica(metadata.Replica{Site: 1, Layout: storage.DefaultColumnLayout()})

	node, err := pl.PlanQuery(&query.Query{Root: &query.JoinNode{
		Left:       &query.ScanNode{Table: 1, Cols: []schema.ColID{1}},
		Right:      &query.ScanNode{Table: 2, Cols: []schema.ColID{0}},
		LeftKeyCol: 0, RightKeyCol: 0,
	}})
	if err != nil {
		t.Fatal(err)
	}
	pj := node.(*PJoin)
	if pj.Strategy != JoinColocated {
		t.Errorf("strategy = %v, want colocated", pj.Strategy)
	}
	// Without the replica, the join cannot colocate.
	pl2, dir2 := testPlanner()
	register(dir2, 1, 0, 100, 0, 3, 0, storage.DefaultRowLayout(), 100)
	register(dir2, 1, 100, 200, 0, 3, 1, storage.DefaultRowLayout(), 100)
	register(dir2, 2, 0, 50, 0, 2, 0, storage.DefaultColumnLayout(), 50)
	node2, err := pl2.PlanQuery(&query.Query{Root: &query.JoinNode{
		Left:       &query.ScanNode{Table: 1, Cols: []schema.ColID{1}},
		Right:      &query.ScanNode{Table: 2, Cols: []schema.ColID{0}},
		LeftKeyCol: 0, RightKeyCol: 0,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if node2.(*PJoin).Strategy != JoinAtCoordinator {
		t.Error("non-replicated join should run at coordinator")
	}
}

func TestMergeJoinChosenForSortedScans(t *testing.T) {
	pl, dir := testPlanner()
	sorted := storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: 1}
	register(dir, 1, 0, 100, 0, 3, 0, sorted, 100)
	sortedDim := storage.Layout{Format: storage.ColumnFormat, Tier: storage.MemoryTier, SortBy: 0}
	register(dir, 2, 0, 50, 0, 2, 0, sortedDim, 50)

	node, err := pl.PlanQuery(&query.Query{Root: &query.JoinNode{
		Left:       &query.ScanNode{Table: 1, Cols: []schema.ColID{1}},
		Right:      &query.ScanNode{Table: 2, Cols: []schema.ColID{0}},
		LeftKeyCol: 0, RightKeyCol: 0,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if alg := node.(*PJoin).Alg; alg != cost.JoinMerge {
		t.Errorf("alg = %v, want merge", alg)
	}
}

func TestTwoPhaseAggDecomposition(t *testing.T) {
	pl, dir := testPlanner()
	register(dir, 1, 0, 100, 0, 3, 0, storage.DefaultRowLayout(), 100)
	register(dir, 1, 100, 200, 0, 3, 1, storage.DefaultRowLayout(), 100)

	node, err := pl.PlanQuery(&query.Query{Root: &query.AggNode{
		Child:   &query.ScanNode{Table: 1, Cols: []schema.ColID{0, 1}},
		GroupBy: []int{0},
		Aggs: []exec.AggSpec{
			{Func: exec.AggAvg, Col: 1},
			{Func: exec.AggCount},
			{Func: exec.AggMin, Col: 1},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	pa := node.(*PAgg)
	if !pa.TwoPhase {
		t.Fatal("multi-site scan should aggregate in two phases")
	}
	// AVG decomposes into SUM + COUNT.
	if len(pa.PartialAggs) != 4 || len(pa.FinalAggs) != 4 {
		t.Errorf("partial=%d final=%d", len(pa.PartialAggs), len(pa.FinalAggs))
	}
	if _, ok := pa.AvgPairs[0]; !ok {
		t.Error("no avg pair recorded")
	}
	// COUNT's final combine is a SUM.
	if pa.FinalAggs[2].Func != exec.AggSum {
		t.Errorf("count combine = %v", pa.FinalAggs[2].Func)
	}
	// MIN combines with MIN.
	if pa.FinalAggs[3].Func != exec.AggMin {
		t.Errorf("min combine = %v", pa.FinalAggs[3].Func)
	}
}

func TestPlanTxnBindings(t *testing.T) {
	pl, dir := testPlanner()
	register(dir, 1, 0, 100, 0, 2, 0, storage.DefaultRowLayout(), 100)
	register(dir, 1, 0, 100, 2, 3, 1, storage.DefaultRowLayout(), 100) // vertical piece

	tp, err := pl.PlanTxn(&query.Txn{Ops: []query.Op{
		{Kind: query.OpRead, Table: 1, Row: 5, Cols: []schema.ColID{0}},
		{Kind: query.OpUpdate, Table: 1, Row: 5, Cols: []schema.ColID{0, 2},
			Vals: []types.Value{types.NewInt64(1), types.NewInt64(2)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Bindings) != 2 {
		t.Fatalf("bindings = %d", len(tp.Bindings))
	}
	// The update touches both vertical pieces -> two write pids, two sites.
	if len(tp.WritePIDs) != 2 || len(tp.WriteSites) != 2 {
		t.Errorf("write pids=%v sites=%v", tp.WritePIDs, tp.WriteSites)
	}
	// Read pid overlaps a write pid, so ReadPIDs excludes it.
	if len(tp.ReadPIDs) != 0 {
		t.Errorf("read pids = %v", tp.ReadPIDs)
	}
	// Unknown row fails.
	if _, err := pl.PlanTxn(&query.Txn{Ops: []query.Op{
		{Kind: query.OpRead, Table: 9, Row: 5, Cols: []schema.ColID{0}},
	}}); err == nil {
		t.Error("plan for unknown table succeeded")
	}
}

func TestPieceCols(t *testing.T) {
	b := partition.Bounds{Table: 1, RowStart: 0, RowEnd: 10, ColStart: 2, ColEnd: 5}
	m := &metadata.PartitionMeta{ID: 1, Bounds: b}
	op := query.Op{Kind: query.OpUpdate, Cols: []schema.ColID{0, 3, 4}, Vals: []types.Value{{}, {}, {}}}
	cols, idx := PieceCols(op, m)
	if len(cols) != 2 || cols[0] != 3 || cols[1] != 4 || idx[0] != 1 || idx[1] != 2 {
		t.Errorf("cols=%v idx=%v", cols, idx)
	}
	ins := query.Op{Kind: query.OpInsert}
	cols, idx = PieceCols(ins, m)
	if len(cols) != 3 || cols[0] != 2 || idx[0] != 2 {
		t.Errorf("insert cols=%v idx=%v", cols, idx)
	}
}

func TestDecisionCacheBuckets(t *testing.T) {
	if Bucket(0) != 0 || Bucket(1) != 1 {
		t.Error("small buckets wrong")
	}
	if Bucket(1000) == Bucket(4000) {
		t.Error("1000 and 4000 should bucket apart")
	}
	if Bucket(1000) != Bucket(1100) {
		t.Error("1000 and 1100 should share a bucket")
	}
	c := NewDecisionCache()
	k := Key("joinalg", []string{"x"}, []float64{1000})
	if _, ok := c.Lookup(k); ok {
		t.Error("empty cache hit")
	}
	c.Store(k, 42)
	if v, ok := c.Lookup(k); !ok || v.(int) != 42 {
		t.Error("store/lookup failed")
	}
	c.Invalidate()
	if _, ok := c.Lookup(k); ok {
		t.Error("invalidate failed")
	}
	h, m := c.Stats()
	if h != 1 || m != 2 {
		t.Errorf("stats = %d/%d", h, m)
	}
}

func TestOutputWidth(t *testing.T) {
	ps := &PScan{Cols: []schema.ColID{0, 1}}
	if OutputWidth(ps) != 2 {
		t.Error("scan width")
	}
	pj := &PJoin{Left: ps, Right: ps}
	if OutputWidth(pj) != 4 {
		t.Error("join width")
	}
	pa := &PAgg{Child: pj, GroupBy: []int{0}, Aggs: []exec.AggSpec{{}}}
	if OutputWidth(pa) != 2 {
		t.Error("agg width")
	}
}
