package learn

import "testing"

// Regression test: a model trained on a single repeated feature point (a
// common situation for per-layout scan models under a uniform workload)
// must still predict sensibly at nearby feature points, not collapse
// toward zero.
func TestLinearDegenerateTraining(t *testing.T) {
	l := NewLinear(6, 1e-3)
	x := []float64{500, 500 * 68, 500 * 8, 500 * 68, 0, 0}
	for i := 0; i < 100; i++ {
		l.Observe(x, 50)
	}
	at := l.Predict(x)
	if at < 45 || at > 55 {
		t.Errorf("train-point predict = %f", at)
	}
	q := []float64{500, 500 * 48, 500 * 16, 500 * 48, 0, 0}
	got := l.Predict(q)
	t.Logf("query-point predict = %f, weights = %v", got, l.Weights())
	if got < 20 || got > 80 {
		t.Errorf("query-point predict = %f, want within 20..80", got)
	}
}
