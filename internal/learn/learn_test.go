package learn

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearRecoversPlane(t *testing.T) {
	l := NewLinear(2, 1e-6)
	r := rand.New(rand.NewSource(1))
	// y = 3 + 2a - 5b
	for i := 0; i < 500; i++ {
		a, b := r.Float64()*10, r.Float64()*10
		l.Observe([]float64{a, b}, 3+2*a-5*b)
	}
	if got := l.Predict([]float64{1, 1}); math.Abs(got-0) > 1e-6 {
		t.Errorf("predict(1,1) = %f, want 0", got)
	}
	w := l.Weights()
	if math.Abs(w[0]-3) > 1e-4 || math.Abs(w[1]-2) > 1e-4 || math.Abs(w[2]+5) > 1e-4 {
		t.Errorf("weights = %v", w)
	}
	if l.N() != 500 {
		t.Errorf("N = %d", l.N())
	}
}

func TestLinearOnlineUpdates(t *testing.T) {
	l := NewLinear(1, 1e-6)
	for i := 0; i < 50; i++ {
		l.Observe([]float64{float64(i)}, float64(2*i))
	}
	before := l.Predict([]float64{100})
	if math.Abs(before-200) > 1e-3 {
		t.Fatalf("before = %f", before)
	}
	// Shift the relationship; new observations move the fit.
	for i := 0; i < 5000; i++ {
		l.Observe([]float64{float64(i % 50)}, float64(3*(i%50)))
	}
	after := l.Predict([]float64{100})
	if after < 250 {
		t.Errorf("model did not adapt: %f", after)
	}
}

func TestLinearSingular(t *testing.T) {
	l := NewLinear(2, 0)
	// One observation cannot determine three coefficients: singular
	// without a ridge penalty.
	l.Observe([]float64{1, 2}, 3)
	if err := l.Fit(); err == nil {
		t.Error("expected singular error")
	}
	// With a ridge penalty the same system solves.
	lr := NewLinear(2, 1e-3)
	lr.Observe([]float64{1, 2}, 3)
	if err := lr.Fit(); err != nil {
		t.Errorf("ridge fit failed: %v", err)
	}
}

func TestSetWeightsWarmStart(t *testing.T) {
	l := NewLinear(1, 1e-6)
	l.SetWeights([]float64{10, 1})
	if got := l.Predict([]float64{5}); math.Abs(got-15) > 1e-9 {
		t.Errorf("warm-start predict = %f", got)
	}
}

func TestNonlinearFitsSqrt(t *testing.T) {
	n := NewNonlinear(1, 1e-6)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		x := r.Float64() * 100
		n.Observe([]float64{x}, 7*math.Sqrt(x))
	}
	for _, x := range []float64{4, 25, 81} {
		got := n.Predict([]float64{x})
		want := 7 * math.Sqrt(x)
		if math.Abs(got-want) > 1.5 {
			t.Errorf("predict(%f) = %f, want %f", x, got, want)
		}
	}
}

func TestMLPLearnsNonlinearFunction(t *testing.T) {
	m := NewMLP(1, 12, 0.02, 3)
	r := rand.New(rand.NewSource(4))
	for epoch := 0; epoch < 6000; epoch++ {
		x := r.Float64()*4 - 2
		m.Observe([]float64{x}, x*x)
	}
	mse := 0.0
	for _, x := range []float64{-1.5, -0.5, 0, 0.5, 1.5} {
		d := m.Predict([]float64{x}) - x*x
		mse += d * d
	}
	mse /= 5
	if mse > 0.35 {
		t.Errorf("MLP mse = %f", mse)
	}
	if m.N() != 6000 {
		t.Errorf("N = %d", m.N())
	}
}

func TestRNNLearnsAlternatingSequence(t *testing.T) {
	n := NewRNN(8, 0.05, 5)
	seq := make([]float64, 200)
	for i := range seq {
		if i%2 == 0 {
			seq[i] = 10
		} else {
			seq[i] = 2
		}
	}
	w := 6
	for epoch := 0; epoch < 40; epoch++ {
		for i := 0; i+w < len(seq); i++ {
			n.Train(seq[i:i+w], seq[i+w])
		}
	}
	// After an even-ending window the next is 2 at odd index... check both phases.
	p1 := n.Predict(seq[0:w])     // next = seq[6] = 10
	p2 := n.Predict(seq[1 : w+1]) // next = seq[7] = 2
	if math.Abs(p1-10) > 2.5 {
		t.Errorf("phase-0 predict = %f, want ~10", p1)
	}
	if math.Abs(p2-2) > 2.5 {
		t.Errorf("phase-1 predict = %f, want ~2", p2)
	}
	if n.Steps() == 0 {
		t.Error("no training steps recorded")
	}
}

func TestRNNEmptyWindow(t *testing.T) {
	n := NewRNN(4, 0.05, 6)
	n.Train(nil, 5) // no-op
	_ = n.Predict(nil)
}
