package learn

import (
	"math"
	"math/rand"
	"sync"
)

// MLP is a small feed-forward network (one tanh hidden layer, linear
// output) trained online by stochastic gradient descent — the neural
// cost-function family of §5.2.1. Inputs and the target are standardized
// internally from running moments so the learning rate is scale-free.
type MLP struct {
	mu     sync.Mutex
	din    int
	hidden int
	lr     float64

	w1 [][]float64 // hidden x (din+1)
	w2 []float64   // hidden+1

	// Running standardization moments.
	n            float64
	xMean, xVar  []float64
	yMean, yVar  float64
	observations int
}

// NewMLP creates a network with the given input and hidden sizes.
func NewMLP(din, hidden int, lr float64, seed int64) *MLP {
	r := rand.New(rand.NewSource(seed))
	m := &MLP{din: din, hidden: hidden, lr: lr,
		xMean: make([]float64, din), xVar: make([]float64, din)}
	m.w1 = make([][]float64, hidden)
	scale := 1 / math.Sqrt(float64(din+1))
	for i := range m.w1 {
		m.w1[i] = make([]float64, din+1)
		for j := range m.w1[i] {
			m.w1[i][j] = (r.Float64()*2 - 1) * scale
		}
	}
	m.w2 = make([]float64, hidden+1)
	for i := range m.w2 {
		m.w2[i] = (r.Float64()*2 - 1) * scale
	}
	return m
}

func (m *MLP) normX(x []float64) []float64 {
	out := make([]float64, m.din)
	for i := 0; i < m.din && i < len(x); i++ {
		sd := math.Sqrt(m.xVar[i]/math.Max(m.n, 1)) + 1e-9
		out[i] = (x[i] - m.xMean[i]) / sd
	}
	return out
}

func (m *MLP) forward(xn []float64) (h []float64, y float64) {
	h = make([]float64, m.hidden)
	for i := 0; i < m.hidden; i++ {
		s := m.w1[i][0]
		for j := 0; j < m.din; j++ {
			s += m.w1[i][j+1] * xn[j]
		}
		h[i] = math.Tanh(s)
	}
	y = m.w2[0]
	for i := 0; i < m.hidden; i++ {
		y += m.w2[i+1] * h[i]
	}
	return h, y
}

// Observe performs one SGD step on (x, y).
func (m *MLP) Observe(x []float64, y float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Update running moments (Welford-style, simplified).
	m.n++
	for i := 0; i < m.din && i < len(x); i++ {
		d := x[i] - m.xMean[i]
		m.xMean[i] += d / m.n
		m.xVar[i] += d * (x[i] - m.xMean[i])
	}
	dy := y - m.yMean
	m.yMean += dy / m.n
	m.yVar += dy * (y - m.yMean)
	m.observations++

	xn := m.normX(x)
	ysd := math.Sqrt(m.yVar/math.Max(m.n, 1)) + 1e-9
	yn := (y - m.yMean) / ysd

	h, pred := m.forward(xn)
	err := pred - yn

	// Output layer gradients.
	g2 := make([]float64, m.hidden+1)
	g2[0] = err
	for i := 0; i < m.hidden; i++ {
		g2[i+1] = err * h[i]
	}
	// Hidden layer gradients through tanh.
	for i := 0; i < m.hidden; i++ {
		gh := err * m.w2[i+1] * (1 - h[i]*h[i])
		m.w1[i][0] -= m.lr * gh
		for j := 0; j < m.din; j++ {
			m.w1[i][j+1] -= m.lr * gh * xn[j]
		}
	}
	for i := range m.w2 {
		m.w2[i] -= m.lr * g2[i]
	}
}

// Predict evaluates the network at x, de-standardizing the output.
func (m *MLP) Predict(x []float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	xn := m.normX(x)
	_, yn := m.forward(xn)
	ysd := math.Sqrt(m.yVar/math.Max(m.n, 1)) + 1e-9
	return yn*ysd + m.yMean
}

// N reports the number of observations.
func (m *MLP) N() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.observations
}

// RNN is a small Elman recurrent network for sequence forecasting: given a
// window of recent values it predicts the next one. It stands in for the
// paper's libtorch RNN in the hybrid-ensemble access-arrival predictor
// (§5.2.2). Training unrolls over the input window (truncated BPTT).
type RNN struct {
	mu     sync.Mutex
	hidden int
	lr     float64

	wx []float64   // input -> hidden
	wh [][]float64 // hidden -> hidden
	bh []float64
	wo []float64 // hidden -> output
	bo float64

	// Input scaling.
	n     float64
	mean  float64
	m2    float64
	steps int
}

// NewRNN creates an Elman network with the given hidden size.
func NewRNN(hidden int, lr float64, seed int64) *RNN {
	r := rand.New(rand.NewSource(seed))
	n := &RNN{hidden: hidden, lr: lr}
	scale := 1 / math.Sqrt(float64(hidden))
	n.wx = make([]float64, hidden)
	n.bh = make([]float64, hidden)
	n.wo = make([]float64, hidden)
	n.wh = make([][]float64, hidden)
	for i := 0; i < hidden; i++ {
		n.wx[i] = (r.Float64()*2 - 1) * scale
		n.wo[i] = (r.Float64()*2 - 1) * scale
		n.wh[i] = make([]float64, hidden)
		for j := range n.wh[i] {
			n.wh[i][j] = (r.Float64()*2 - 1) * scale
		}
	}
	return n
}

func (n *RNN) norm(v float64) float64 {
	sd := math.Sqrt(n.m2/math.Max(n.n, 1)) + 1e-9
	return (v - n.mean) / sd
}

func (n *RNN) denorm(v float64) float64 {
	sd := math.Sqrt(n.m2/math.Max(n.n, 1)) + 1e-9
	return v*sd + n.mean
}

// run unrolls the network over the window, returning hidden states per step.
func (n *RNN) run(window []float64) ([][]float64, float64) {
	h := make([]float64, n.hidden)
	states := make([][]float64, 0, len(window))
	for _, v := range window {
		nh := make([]float64, n.hidden)
		x := n.norm(v)
		for i := 0; i < n.hidden; i++ {
			s := n.bh[i] + n.wx[i]*x
			for j := 0; j < n.hidden; j++ {
				s += n.wh[i][j] * h[j]
			}
			nh[i] = math.Tanh(s)
		}
		h = nh
		states = append(states, h)
	}
	y := n.bo
	for i := 0; i < n.hidden; i++ {
		y += n.wo[i] * h[i]
	}
	return states, y
}

// Train performs one gradient step teaching the network to predict target
// from the window.
func (n *RNN) Train(window []float64, target float64) {
	if len(window) == 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, v := range window {
		n.n++
		d := v - n.mean
		n.mean += d / n.n
		n.m2 += d * (v - n.mean)
	}
	n.steps++

	states, pred := n.run(window)
	err := pred - n.norm(target)
	last := states[len(states)-1]

	// Output layer.
	gradH := make([]float64, n.hidden)
	for i := 0; i < n.hidden; i++ {
		gradH[i] = err * n.wo[i]
		n.wo[i] -= n.lr * err * last[i]
	}
	n.bo -= n.lr * err

	// Truncated BPTT over the last few steps.
	depth := len(window)
	if depth > 4 {
		depth = 4
	}
	for t := 0; t < depth; t++ {
		idx := len(states) - 1 - t
		h := states[idx]
		var prev []float64
		if idx > 0 {
			prev = states[idx-1]
		} else {
			prev = make([]float64, n.hidden)
		}
		x := n.norm(window[idx])
		next := make([]float64, n.hidden)
		for i := 0; i < n.hidden; i++ {
			g := gradH[i] * (1 - h[i]*h[i])
			n.wx[i] -= n.lr * g * x
			n.bh[i] -= n.lr * g
			for j := 0; j < n.hidden; j++ {
				next[j] += g * n.wh[i][j]
				n.wh[i][j] -= n.lr * g * prev[j]
			}
		}
		gradH = next
	}
}

// Predict forecasts the next value after the window.
func (n *RNN) Predict(window []float64) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(window) == 0 {
		return n.mean
	}
	_, y := n.run(window)
	return n.denorm(y)
}

// Steps reports the number of training steps taken.
func (n *RNN) Steps() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.steps
}
