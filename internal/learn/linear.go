// Package learn provides the from-scratch online learners Proteus' cost
// functions and access-arrival forecasters are built on (§5.2): ridge
// linear regression over accumulated sufficient statistics, non-linear
// regression via feature expansion, a small feed-forward neural network,
// and an Elman recurrent network. The paper uses Dlib and libtorch for
// these; the implementations here expose the same train-on-observations /
// predict interfaces using only the standard library.
package learn

import (
	"fmt"
	"math"
	"sync"
)

// Linear is an online ridge regression: observations accumulate the
// sufficient statistics XᵀX and Xᵀy, and Fit solves the regularized normal
// equations. Safe for concurrent use.
type Linear struct {
	mu    sync.RWMutex
	d     int // features, excluding the intercept
	ridge float64
	xtx   [][]float64 // (d+1) x (d+1)
	xty   []float64
	w     []float64
	n     int
	dirty bool
}

// NewLinear creates a regressor over d features with ridge penalty lambda.
func NewLinear(d int, lambda float64) *Linear {
	l := &Linear{d: d, ridge: lambda}
	l.xtx = make([][]float64, d+1)
	for i := range l.xtx {
		l.xtx[i] = make([]float64, d+1)
	}
	l.xty = make([]float64, d+1)
	l.w = make([]float64, d+1)
	return l
}

// Observe accumulates one (features, target) pair.
func (l *Linear) Observe(x []float64, y float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	xb := append([]float64{1}, x...)
	for i := range xb {
		for j := range xb {
			l.xtx[i][j] += xb[i] * xb[j]
		}
		l.xty[i] += xb[i] * y
	}
	l.n++
	l.dirty = true
}

// N reports the number of observations.
func (l *Linear) N() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.n
}

// Fit solves (XᵀX + λI) w = Xᵀy by Gaussian elimination with partial
// pivoting. It is cheap (d is small) and called lazily by Predict.
func (l *Linear) Fit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fitLocked()
}

func (l *Linear) fitLocked() error {
	if !l.dirty {
		return nil
	}
	d := l.d + 1
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
		copy(a[i], l.xtx[i])
		a[i][i] += l.ridge
		a[i][d] = l.xty[i]
	}
	for col := 0; col < d; col++ {
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return fmt.Errorf("learn: singular system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= d; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	for i := 0; i < d; i++ {
		l.w[i] = a[i][d] / a[i][i]
	}
	l.dirty = false
	return nil
}

// Predict evaluates the model at x, refitting if new observations arrived.
func (l *Linear) Predict(x []float64) float64 {
	l.mu.Lock()
	_ = l.fitLocked()
	w := append([]float64(nil), l.w...)
	l.mu.Unlock()

	y := w[0]
	for i, xi := range x {
		if i+1 < len(w) {
			y += w[i+1] * xi
		}
	}
	return y
}

// Weights returns a copy of the fitted coefficients (intercept first).
func (l *Linear) Weights() []float64 {
	_ = l.Fit()
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]float64(nil), l.w...)
}

// SetWeights installs coefficients directly (model warm start, Fig 12c).
func (l *Linear) SetWeights(w []float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	copy(l.w, w)
	l.dirty = false
}

// Nonlinear is a regression with a fixed non-linear feature expansion
// (x, log1p(x), sqrt(x), and pairwise products), fitted linearly — the
// "non-linear regression" cost-function family of §5.2.1.
type Nonlinear struct {
	d   int
	lin *Linear
}

// NewNonlinear creates a non-linear regressor over d raw features.
func NewNonlinear(d int, lambda float64) *Nonlinear {
	return &Nonlinear{d: d, lin: NewLinear(expandedDim(d), lambda)}
}

func expandedDim(d int) int { return 3*d + d*(d-1)/2 }

// Expand computes the feature mapping.
func (n *Nonlinear) Expand(x []float64) []float64 {
	out := make([]float64, 0, expandedDim(n.d))
	out = append(out, x...)
	for _, v := range x {
		out = append(out, math.Log1p(math.Abs(v)))
	}
	for _, v := range x {
		out = append(out, math.Sqrt(math.Abs(v)))
	}
	for i := 0; i < len(x); i++ {
		for j := i + 1; j < len(x); j++ {
			out = append(out, x[i]*x[j])
		}
	}
	return out
}

// Observe accumulates one raw observation.
func (n *Nonlinear) Observe(x []float64, y float64) { n.lin.Observe(n.Expand(x), y) }

// Predict evaluates the model at raw features x.
func (n *Nonlinear) Predict(x []float64) float64 { return n.lin.Predict(n.Expand(x)) }

// N reports the number of observations.
func (n *Nonlinear) N() int { return n.lin.N() }
