// Package admission is the engine's multi-tenant QoS front end: every
// client-visible operation (query, transaction, bulk load) passes through
// a Controller before it reaches the engine. Admission is per-tenant
// token-bucket (policy TokenBucket) or a pass-through (AlwaysAdmit, the
// A/B baseline); requests that cannot be admitted immediately wait in one
// of two bounded priority queues — OLTP commits ahead of analytical
// scans — and are shed with a typed *faults.OverloadError carrying a
// RetryAfter hint when a queue is full, the wait bound is exceeded, or
// the write backlog guard trips. Degraded-but-predictable beats dead:
// under overload admitted work keeps its latency profile while the
// excess is refused up front instead of growing unbounded queues inside
// the engine. Decisions read a periodically refreshed ClusterState
// snapshot instead of locking live engine state.
package admission

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/faults"
	"proteus/internal/obs"
	"proteus/internal/vclock"
)

// Priority classes order queue drain: all waiting OLTP work is considered
// before any waiting OLAP work on every grant pass, so transactional
// commits preempt analytical morsels at the admission gate.
type Priority uint8

const (
	// PriorityOLTP is the high class: transactions and bulk loads.
	PriorityOLTP Priority = iota
	// PriorityOLAP is the low class: analytical queries and scans.
	PriorityOLAP
	numPriorities
)

// String names the class for metrics and errors.
func (p Priority) String() string {
	if p == PriorityOLTP {
		return "oltp"
	}
	return "olap"
}

// Policy selects the admission algorithm.
type Policy uint8

const (
	// AlwaysAdmit passes every request through (counting it). This is the
	// overload A/B baseline: queues inside the engine grow without bound.
	AlwaysAdmit Policy = iota
	// TokenBucket admits against per-tenant token buckets with bounded
	// priority wait queues and typed shedding.
	TokenBucket
)

// String names the policy for reports.
func (p Policy) String() string {
	if p == TokenBucket {
		return "token_bucket"
	}
	return "always_admit"
}

// Limits is one tenant's token-bucket shape.
type Limits struct {
	// Rate is the sustained admission rate in requests per second.
	Rate float64
	// Burst is the bucket capacity: how many requests may be admitted
	// back-to-back after idle.
	Burst float64
}

// Config parameterizes a Controller.
type Config struct {
	// Policy selects AlwaysAdmit or TokenBucket.
	Policy Policy
	// Default is the bucket shape for tenants without an explicit entry.
	Default Limits
	// Tenants overrides limits per tenant name.
	Tenants map[string]Limits
	// MaxQueue bounds each priority class's wait queue; arrivals beyond
	// it are shed immediately.
	MaxQueue int
	// MaxWait bounds how long a queued request may wait for a token
	// before it is shed.
	MaxWait time.Duration
	// MaxCommitBacklog sheds OLTP admits while the deepest group-commit
	// queue (from the ClusterState snapshot) exceeds this bound,
	// back-pressuring writers before the flush pipeline drowns.
	// 0 disables the guard.
	MaxCommitBacklog int
	// DripInterval is the cadence of the background grant pass that
	// refills buckets and drains the wait queues. 0 means 200µs.
	DripInterval time.Duration
	// SnapshotInterval is how often the engine refreshes the ClusterState
	// snapshot admission decisions read. 0 means 2ms.
	SnapshotInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Default.Rate <= 0 {
		c.Default.Rate = 2000
	}
	if c.Default.Burst <= 0 {
		c.Default.Burst = 200
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 50 * time.Millisecond
	}
	if c.DripInterval <= 0 {
		c.DripInterval = 200 * time.Microsecond
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 2 * time.Millisecond
	}
	return c
}

// bucket is one tenant's admission state plus its cached instruments.
type bucket struct {
	tenant  string
	limits  Limits
	tokens  float64
	last    time.Time
	waiting int // queued waiters charged to this bucket

	admitted *obs.Counter
	shed     *obs.Counter
	queued   *obs.Counter
	wait     *obs.Recorder
	fill     *obs.Gauge // tokens * 1000, so fractional fill survives the int gauge
}

// refill accrues tokens for the time since the last refill.
func (b *bucket) refill(now time.Time) {
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.tokens += dt * b.limits.Rate
	if b.tokens > b.limits.Burst {
		b.tokens = b.limits.Burst
	}
	b.last = now
}

// retryAfter estimates when a retry has a chance of admission: the token
// deficit (including everyone already queued ahead on this bucket) at the
// bucket's refill rate.
func (b *bucket) retryAfter() time.Duration {
	if b.limits.Rate <= 0 {
		return time.Second
	}
	deficit := (1 - b.tokens) + float64(b.waiting)
	if deficit < 0 {
		deficit = 0
	}
	return time.Duration(deficit / b.limits.Rate * float64(time.Second))
}

// waiter is one queued admission request.
type waiter struct {
	b     *bucket
	pri   Priority
	enq   time.Time
	ready chan error // buffered 1; resolved exactly once
	done  bool       // guarded by Controller.mu: granted, shed, or cancelled
}

// Controller is the admission control plane. One instance fronts one
// engine; all methods are safe for concurrent use.
type Controller struct {
	cfg Config
	reg *obs.Registry
	now func() time.Time
	clk vclock.Clock // drives the background drip ticker

	mu      sync.Mutex
	tenants map[string]*bucket
	queues  [numPriorities][]*waiter
	// live counts non-cancelled waiters per class: cancelled waiters stay
	// in queues until Tick compacts them, so len(queues[pri]) over-counts
	// under cancellation churn and must not drive the MaxQueue bound.
	live   [numPriorities]int
	closed bool // set by Close under mu; Admit sheds immediately after

	state atomic.Pointer[ClusterState]

	manual bool // test clock installed; no background dripper
	stop   chan struct{}
	wg     sync.WaitGroup

	cntAdmitted  *obs.Counter
	cntShed      *obs.Counter
	cntQueued    *obs.Counter
	waitAll      *obs.Recorder
	gaugeQueue   [numPriorities]*obs.Gauge
	gaugeBacklog *obs.Gauge
}

// Option customizes a Controller.
type Option func(*Controller)

// WithClock installs a deterministic clock and disables the background
// grant pass; tests advance time through the clock and call Tick.
func WithClock(now func() time.Time) Option {
	return func(c *Controller) {
		c.now = now
		c.manual = true
	}
}

// WithTimeSource runs the controller on the given vclock.Clock: token
// refills and wait accounting read its Now, and — unlike WithClock — the
// background grant pass keeps running, ticking on the same clock. This is
// what lets the QoS front end run unmodified under the simulation clock.
func WithTimeSource(clk vclock.Clock) Option {
	return func(c *Controller) {
		clk = vclock.OrWall(clk)
		c.clk = clk
		c.now = clk.Now
	}
}

// New creates a Controller recording into reg (a private registry is
// created when reg is nil). Unless a test clock is installed the
// background grant pass starts immediately; Close stops it.
func New(cfg Config, reg *obs.Registry, opts ...Option) *Controller {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Controller{
		cfg:     cfg.withDefaults(),
		reg:     reg,
		now:     time.Now,
		clk:     vclock.Wall{},
		tenants: make(map[string]*bucket),
		stop:    make(chan struct{}),

		cntAdmitted:  reg.Counter("admission.admitted"),
		cntShed:      reg.Counter("admission.shed"),
		cntQueued:    reg.Counter("admission.queued"),
		waitAll:      reg.Recorder("admission.wait", 8192),
		gaugeBacklog: reg.Gauge("admission.commit_backlog"),
	}
	for pri := Priority(0); pri < numPriorities; pri++ {
		c.gaugeQueue[pri] = reg.Gauge("admission.queue." + pri.String())
	}
	for _, opt := range opts {
		opt(c)
	}
	if !c.manual && c.cfg.Policy == TokenBucket {
		c.wg.Add(1)
		go c.drip()
	}
	return c
}

// Policy reports the configured admission policy.
func (c *Controller) Policy() Policy { return c.cfg.Policy }

// SnapshotInterval reports the configured ClusterState refresh period.
func (c *Controller) SnapshotInterval() time.Duration { return c.cfg.SnapshotInterval }

// bucketLocked returns the tenant's bucket, creating it full on first use.
func (c *Controller) bucketLocked(tenant string, now time.Time) *bucket {
	b := c.tenants[tenant]
	if b != nil {
		return b
	}
	limits := c.cfg.Default
	if l, ok := c.cfg.Tenants[tenant]; ok {
		limits = l
	}
	prefix := "admission.tenant." + tenant
	b = &bucket{
		tenant:   tenant,
		limits:   limits,
		tokens:   limits.Burst,
		last:     now,
		admitted: c.reg.Counter(prefix + ".admitted"),
		shed:     c.reg.Counter(prefix + ".shed"),
		queued:   c.reg.Counter(prefix + ".queued"),
		wait:     c.reg.Recorder(prefix+".wait", 4096),
		fill:     c.reg.Gauge(prefix + ".tokens_milli"),
	}
	b.fill.Set(int64(b.tokens * 1000))
	c.tenants[tenant] = b
	return b
}

// shedLocked counts one shed and builds the typed overload error.
func (c *Controller) shedLocked(b *bucket, reason string) error {
	b.shed.Inc()
	c.cntShed.Inc()
	return &faults.OverloadError{Tenant: b.tenant, RetryAfter: b.retryAfter(), Reason: reason}
}

// grantLocked consumes one token and counts the admit.
func (c *Controller) grantLocked(b *bucket) {
	b.tokens--
	b.fill.Set(int64(b.tokens * 1000))
	b.admitted.Inc()
	c.cntAdmitted.Inc()
}

// Admit charges one request to the tenant's bucket, blocking in the
// bounded priority queue when the bucket is dry. It returns nil on
// admission, ctx.Err() when the caller gives up first, and a
// *faults.OverloadError (matching faults.ErrOverload via errors.Is) when
// the request is shed. A shed request was never executed.
func (c *Controller) Admit(ctx context.Context, tenant string, pri Priority) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	now := c.now()
	b := c.bucketLocked(tenant, now)
	if c.closed {
		// The engine is shutting down; nothing will ever drain the queues
		// again, so refuse up front rather than enqueue a waiter that can
		// only leak.
		err := c.shedLocked(b, "closed")
		c.mu.Unlock()
		return err
	}
	if c.cfg.Policy == AlwaysAdmit {
		b.admitted.Inc()
		c.cntAdmitted.Inc()
		c.mu.Unlock()
		return nil
	}
	if pri == PriorityOLTP && c.cfg.MaxCommitBacklog > 0 {
		if st := c.state.Load(); st != nil && st.MaxCommitBacklog > c.cfg.MaxCommitBacklog {
			err := c.shedLocked(b, "backlog")
			c.mu.Unlock()
			return err
		}
	}
	b.refill(now)
	// Immediate grant only when nobody is queued on this bucket: a new
	// arrival must not jump ahead of waiters; priority order is enforced
	// by the grant pass, not by arrival luck.
	if b.waiting == 0 && b.tokens >= 1 {
		c.grantLocked(b)
		c.mu.Unlock()
		c.waitAll.Record(0)
		b.wait.Record(0)
		return nil
	}
	if c.live[pri] >= c.cfg.MaxQueue {
		err := c.shedLocked(b, "queue")
		c.mu.Unlock()
		return err
	}
	w := &waiter{b: b, pri: pri, enq: now, ready: make(chan error, 1)}
	c.queues[pri] = append(c.queues[pri], w)
	c.live[pri]++
	b.waiting++
	b.queued.Inc()
	c.cntQueued.Inc()
	c.gaugeQueue[pri].Add(1)
	c.mu.Unlock()

	// The grant that resolves this wait comes from virtual-time progress
	// (the drip ticker or another request's release), so let a simulated
	// clock treat the queued goroutine as parked.
	release := vclock.Park(c.clk)
	defer release()

	select {
	case err := <-w.ready:
		if err == nil {
			d := c.now().Sub(w.enq)
			c.waitAll.Record(d)
			b.wait.Record(d)
		}
		return err
	case <-ctx.Done():
		c.mu.Lock()
		if !w.done {
			// Still queued: abandon in place; the grant pass skips and
			// compacts cancelled waiters.
			w.done = true
			c.live[pri]--
			b.waiting--
			c.gaugeQueue[pri].Add(-1)
			c.mu.Unlock()
			return ctx.Err()
		}
		c.mu.Unlock()
		// Resolved concurrently with the cancel. Consume the verdict and
		// return a granted token — the caller is leaving either way.
		if err := <-w.ready; err == nil {
			c.mu.Lock()
			b.tokens++
			if b.tokens > b.limits.Burst {
				b.tokens = b.limits.Burst
			}
			b.fill.Set(int64(b.tokens * 1000))
			c.mu.Unlock()
		}
		return ctx.Err()
	}
}

// Tick runs one grant pass at the current clock: refill every bucket,
// shed waiters past MaxWait, and hand out available tokens — all queued
// OLTP before any queued OLAP. The background dripper calls this; tests
// with a manual clock call it directly.
func (c *Controller) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for _, b := range c.tenants {
		b.refill(now)
	}
	for pri := Priority(0); pri < numPriorities; pri++ {
		q := c.queues[pri]
		keep := q[:0]
		for _, w := range q {
			switch {
			case w.done: // cancelled; drop
			case now.Sub(w.enq) > c.cfg.MaxWait:
				w.done = true
				c.live[pri]--
				w.b.waiting--
				c.gaugeQueue[pri].Add(-1)
				w.ready <- c.shedLocked(w.b, "wait")
			case w.b.tokens >= 1:
				w.done = true
				c.live[pri]--
				w.b.waiting--
				c.gaugeQueue[pri].Add(-1)
				c.grantLocked(w.b)
				w.ready <- nil
			default:
				keep = append(keep, w)
			}
		}
		for i := len(keep); i < len(q); i++ {
			q[i] = nil
		}
		c.queues[pri] = keep
	}
}

// QueueDepth reports how many requests are waiting in the class's queue.
func (c *Controller) QueueDepth(pri Priority) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live[pri]
}

// Tokens reports the tenant's current bucket fill (for tests and gauges).
func (c *Controller) Tokens(tenant string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.bucketLocked(tenant, c.now())
	b.refill(c.now())
	return b.tokens
}

// drip is the background grant pass.
func (c *Controller) drip() {
	defer c.wg.Done()
	t := c.clk.NewTicker(c.cfg.DripInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Tick()
		case <-c.stop:
			return
		}
	}
}

// Close stops the background grant pass and sheds every queued waiter, so
// no Admit call outlives the engine. The closed flag is raised under the
// mutex before the shed pass: any Admit that enqueued earlier is drained
// here, and any Admit arriving later sheds on entry instead of queueing
// into a controller nothing will ever drain again. Safe to call more than
// once.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	for pri := Priority(0); pri < numPriorities; pri++ {
		for _, w := range c.queues[pri] {
			if w.done {
				continue
			}
			w.done = true
			c.live[pri]--
			w.b.waiting--
			c.gaugeQueue[pri].Add(-1)
			w.ready <- fmt.Errorf("%w: tenant %q (closed)", faults.ErrOverload, w.b.tenant)
		}
		c.queues[pri] = nil
	}
}
