package admission

import "time"

// SiteState is one site's view in the cached cluster snapshot.
type SiteState struct {
	ID int
	// Up is false while the site is crashed.
	Up bool
	// MemBytes is the site's resident partition memory.
	MemBytes int64
	// CommitBacklog is the depth of the site's group-commit queue
	// (pending flush groups not yet durable).
	CommitBacklog int
	// OLTPInFlight counts transactions currently executing at the site.
	OLTPInFlight int
}

// ClusterState is a periodically refreshed snapshot of engine state used
// for admission decisions. The controller reads it lock-free via an
// atomic pointer; the engine's refresher goroutine replaces it wholesale.
// Decisions made on a snapshot a few milliseconds stale trade perfect
// accuracy for never contending on live engine locks from the admission
// hot path.
type ClusterState struct {
	// At stamps when the snapshot was taken.
	At time.Time
	// Sites holds per-site state, indexed by site ID.
	Sites []SiteState
	// MaxCommitBacklog is the deepest group-commit queue across up sites;
	// the write-backlog shed guard compares against this.
	MaxCommitBacklog int
}

// UpdateState installs a fresh snapshot.
func (c *Controller) UpdateState(st ClusterState) {
	c.state.Store(&st)
	c.gaugeBacklog.Set(int64(st.MaxCommitBacklog))
}

// State returns the most recent snapshot, or nil before the first update.
func (c *Controller) State() *ClusterState {
	return c.state.Load()
}
