package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"proteus/internal/faults"
)

// fakeClock is a manually advanced clock; with WithClock installed the
// controller has no background grant pass, so every refill and grant is
// driven explicitly by the test — fully deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestController(t *testing.T, cfg Config, clk *fakeClock) *Controller {
	t.Helper()
	c := New(cfg, nil, WithClock(clk.now))
	t.Cleanup(c.Close)
	return c
}

// admitAsync runs Admit in a goroutine and returns the result channel.
func admitAsync(c *Controller, ctx context.Context, tenant string, pri Priority) <-chan error {
	out := make(chan error, 1)
	go func() { out <- c.Admit(ctx, tenant, pri) }()
	return out
}

// waitDepth polls until the class's queue holds n waiters.
func waitDepth(t *testing.T, c *Controller, pri Priority, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.QueueDepth(pri) != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue %v never reached depth %d (at %d)", pri, n, c.QueueDepth(pri))
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestTokenBucketRefillMath(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{
		Policy:  TokenBucket,
		Default: Limits{Rate: 10, Burst: 5},
	}, clk)
	ctx := context.Background()

	// The bucket starts full: exactly Burst immediate admissions.
	for i := 0; i < 5; i++ {
		if err := c.Admit(ctx, "a", PriorityOLTP); err != nil {
			t.Fatalf("admit %d within burst: %v", i, err)
		}
	}
	if got := c.Tokens("a"); got != 0 {
		t.Fatalf("tokens after draining burst = %v, want 0", got)
	}

	// Refill is Rate per second: 250ms at 10/s accrues 2.5 tokens.
	clk.advance(250 * time.Millisecond)
	if got := c.Tokens("a"); got < 2.4999 || got > 2.5001 {
		t.Fatalf("tokens after 250ms = %v, want 2.5", got)
	}
	if err := c.Admit(ctx, "a", PriorityOLTP); err != nil {
		t.Fatalf("admit with 2.5 tokens: %v", err)
	}
	if got := c.Tokens("a"); got < 1.4999 || got > 1.5001 {
		t.Fatalf("tokens after one grant = %v, want 1.5", got)
	}

	// Refill never exceeds Burst.
	clk.advance(time.Hour)
	if got := c.Tokens("a"); got != 5 {
		t.Fatalf("tokens after long idle = %v, want burst 5", got)
	}
}

func TestQueueGrantOnTick(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{
		Policy:  TokenBucket,
		Default: Limits{Rate: 10, Burst: 1},
		MaxWait: time.Hour,
	}, clk)
	ctx := context.Background()

	if err := c.Admit(ctx, "a", PriorityOLTP); err != nil {
		t.Fatal(err)
	}
	res := admitAsync(c, ctx, "a", PriorityOLTP)
	waitDepth(t, c, PriorityOLTP, 1)

	// No tokens yet: a tick must not grant.
	c.Tick()
	if c.QueueDepth(PriorityOLTP) != 1 {
		t.Fatal("tick granted without tokens")
	}

	clk.advance(100 * time.Millisecond) // exactly one token
	c.Tick()
	if err := <-res; err != nil {
		t.Fatalf("queued admit after refill: %v", err)
	}
	if got := c.Tokens("a"); got != 0 {
		t.Fatalf("tokens after queued grant = %v, want 0", got)
	}
}

func TestShedOnFullQueueTypedError(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{
		Policy:   TokenBucket,
		Default:  Limits{Rate: 10, Burst: 1},
		MaxQueue: 2,
		MaxWait:  time.Hour,
	}, clk)
	ctx := context.Background()

	if err := c.Admit(ctx, "a", PriorityOLAP); err != nil {
		t.Fatal(err)
	}
	r1 := admitAsync(c, ctx, "a", PriorityOLAP)
	r2 := admitAsync(c, ctx, "a", PriorityOLAP)
	waitDepth(t, c, PriorityOLAP, 2)

	// Queue full: the third waiter sheds immediately, typed.
	err := c.Admit(ctx, "a", PriorityOLAP)
	if !errors.Is(err, faults.ErrOverload) {
		t.Fatalf("full-queue shed = %v, want ErrOverload", err)
	}
	var oe *faults.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("shed error %T lacks *faults.OverloadError", err)
	}
	if oe.Reason != "queue" {
		t.Fatalf("shed reason = %q, want queue", oe.Reason)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("shed RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	if d, ok := faults.RetryAfterHint(err); !ok || d != oe.RetryAfter {
		t.Fatalf("RetryAfterHint = (%v,%v), want (%v,true)", d, ok, oe.RetryAfter)
	}

	// The queued pair still drains as tokens refill; with Burst 1 each
	// grant pass hands out at most one token, so two passes drain both.
	// The admitAsync goroutines race to enqueue, so which of r1/r2 sits at
	// the queue head is scheduler-dependent — drain whichever resolves.
	clk.advance(time.Second)
	c.Tick()
	select {
	case err := <-r1:
		if err != nil {
			t.Fatalf("first queued admit: %v", err)
		}
		r1 = nil
	case err := <-r2:
		if err != nil {
			t.Fatalf("first queued admit: %v", err)
		}
		r2 = nil
	}
	clk.advance(time.Second)
	c.Tick()
	rest := r1
	if rest == nil {
		rest = r2
	}
	if err := <-rest; err != nil {
		t.Fatalf("second queued admit: %v", err)
	}
}

func TestMaxWaitShed(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{
		Policy:  TokenBucket,
		Default: Limits{Rate: 0.001, Burst: 1}, // effectively never refills
		MaxWait: 50 * time.Millisecond,
	}, clk)
	ctx := context.Background()

	if err := c.Admit(ctx, "a", PriorityOLTP); err != nil {
		t.Fatal(err)
	}
	res := admitAsync(c, ctx, "a", PriorityOLTP)
	waitDepth(t, c, PriorityOLTP, 1)

	clk.advance(51 * time.Millisecond)
	c.Tick()
	err := <-res
	var oe *faults.OverloadError
	if !errors.As(err, &oe) || oe.Reason != "wait" {
		t.Fatalf("overdue waiter got %v, want OverloadError(wait)", err)
	}
}

// TestPriorityOLTPOverOLAP queues an OLAP request first and an OLTP
// request second; with one token available the OLTP request must win —
// commits preempt analytical work at the admission gate.
func TestPriorityOLTPOverOLAP(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{
		Policy:  TokenBucket,
		Default: Limits{Rate: 10, Burst: 1},
		MaxWait: time.Hour,
	}, clk)
	ctx := context.Background()

	if err := c.Admit(ctx, "a", PriorityOLTP); err != nil {
		t.Fatal(err)
	}
	olap := admitAsync(c, ctx, "a", PriorityOLAP)
	waitDepth(t, c, PriorityOLAP, 1)
	oltp := admitAsync(c, ctx, "a", PriorityOLTP)
	waitDepth(t, c, PriorityOLTP, 1)

	clk.advance(100 * time.Millisecond) // exactly one token
	c.Tick()
	if err := <-oltp; err != nil {
		t.Fatalf("OLTP admit with one token: %v", err)
	}
	if c.QueueDepth(PriorityOLAP) != 1 {
		t.Fatal("OLAP waiter granted ahead of OLTP")
	}
	select {
	case err := <-olap:
		t.Fatalf("OLAP resolved early: %v", err)
	default:
	}

	clk.advance(100 * time.Millisecond)
	c.Tick()
	if err := <-olap; err != nil {
		t.Fatalf("OLAP admit after OLTP: %v", err)
	}
}

// TestTwoTenantFairness checks isolation: one tenant exhausting its
// bucket neither blocks nor depletes the other's, and queued waiters of
// both tenants drain from their own refills.
func TestTwoTenantFairness(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{
		Policy:  TokenBucket,
		Default: Limits{Rate: 10, Burst: 2},
		Tenants: map[string]Limits{"b": {Rate: 20, Burst: 2}},
		MaxWait: time.Hour,
	}, clk)
	ctx := context.Background()

	// Tenant a drains its bucket; tenant b is unaffected.
	for i := 0; i < 2; i++ {
		if err := c.Admit(ctx, "a", PriorityOLTP); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := c.Admit(ctx, "b", PriorityOLTP); err != nil {
			t.Fatalf("tenant b admit %d while a exhausted: %v", i, err)
		}
	}

	// Both queue one waiter; b refills twice as fast but one 100ms step
	// yields a token for each, so both drain on the same tick.
	ra := admitAsync(c, ctx, "a", PriorityOLTP)
	rb := admitAsync(c, ctx, "b", PriorityOLTP)
	waitDepth(t, c, PriorityOLTP, 2)
	clk.advance(100 * time.Millisecond)
	c.Tick()
	if err := <-ra; err != nil {
		t.Fatalf("tenant a queued admit: %v", err)
	}
	if err := <-rb; err != nil {
		t.Fatalf("tenant b queued admit: %v", err)
	}
}

func TestBacklogGuardShedsWritesOnly(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{
		Policy:           TokenBucket,
		Default:          Limits{Rate: 1000, Burst: 100},
		MaxCommitBacklog: 8,
	}, clk)
	ctx := context.Background()

	c.UpdateState(ClusterState{At: clk.now(), MaxCommitBacklog: 20})
	err := c.Admit(ctx, "a", PriorityOLTP)
	var oe *faults.OverloadError
	if !errors.As(err, &oe) || oe.Reason != "backlog" {
		t.Fatalf("OLTP admit over backlog = %v, want OverloadError(backlog)", err)
	}
	// Reads don't feed the commit queues; the guard ignores them.
	if err := c.Admit(ctx, "a", PriorityOLAP); err != nil {
		t.Fatalf("OLAP admit over backlog: %v", err)
	}
	c.UpdateState(ClusterState{At: clk.now(), MaxCommitBacklog: 2})
	if err := c.Admit(ctx, "a", PriorityOLTP); err != nil {
		t.Fatalf("OLTP admit under backlog bound: %v", err)
	}
}

func TestCancelWhileQueuedKeepsTokens(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{
		Policy:  TokenBucket,
		Default: Limits{Rate: 10, Burst: 1},
		MaxWait: time.Hour,
	}, clk)

	if err := c.Admit(context.Background(), "a", PriorityOLTP); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := admitAsync(c, ctx, "a", PriorityOLTP)
	waitDepth(t, c, PriorityOLTP, 1)
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued admit = %v, want context.Canceled", err)
	}
	if c.QueueDepth(PriorityOLTP) != 0 {
		t.Fatal("cancelled waiter still counted in queue depth")
	}

	// The abandoned waiter must not consume the refill.
	clk.advance(100 * time.Millisecond)
	c.Tick()
	if got := c.Tokens("a"); got != 1 {
		t.Fatalf("tokens after cancelled waiter = %v, want 1", got)
	}
}

func TestAlwaysAdmitPassThrough(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{
		Policy:  AlwaysAdmit,
		Default: Limits{Rate: 0.001, Burst: 1},
	}, clk)
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if err := c.Admit(ctx, "a", PriorityOLAP); err != nil {
			t.Fatalf("AlwaysAdmit shed request %d: %v", i, err)
		}
	}
	if c.QueueDepth(PriorityOLAP) != 0 {
		t.Fatal("AlwaysAdmit queued a request")
	}
}

func TestCloseShedsWaiters(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Policy:  TokenBucket,
		Default: Limits{Rate: 0.001, Burst: 1},
		MaxWait: time.Hour,
	}, nil, WithClock(clk.now))

	if err := c.Admit(context.Background(), "a", PriorityOLTP); err != nil {
		t.Fatal(err)
	}
	res := admitAsync(c, context.Background(), "a", PriorityOLTP)
	waitDepth(t, c, PriorityOLTP, 1)
	c.Close()
	if err := <-res; !errors.Is(err, faults.ErrOverload) {
		t.Fatalf("waiter at close got %v, want ErrOverload", err)
	}
	c.Close() // idempotent
}

func TestAdmitAfterCloseSheds(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Policy:  TokenBucket,
		Default: Limits{Rate: 0.001, Burst: 1},
		MaxWait: time.Hour,
	}, nil, WithClock(clk.now))
	c.Close()

	// After Close nothing drains the queues, so a late Admit must shed
	// immediately instead of enqueueing a waiter that blocks forever.
	done := make(chan error, 1)
	go func() { done <- c.Admit(context.Background(), "a", PriorityOLTP) }()
	select {
	case err := <-done:
		var oe *faults.OverloadError
		if !errors.As(err, &oe) || oe.Reason != "closed" {
			t.Fatalf("Admit after Close = %v, want OverloadError(closed)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Admit after Close blocked")
	}
}

func TestCloseConcurrent(t *testing.T) {
	c := New(Config{
		Policy:  TokenBucket,
		Default: Limits{Rate: 1000, Burst: 10},
	}, nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Close() // must not panic on double close of the stop channel
		}()
	}
	wg.Wait()
}

func TestQueueBoundIgnoresCancelledWaiters(t *testing.T) {
	clk := newFakeClock()
	c := newTestController(t, Config{
		Policy:   TokenBucket,
		Default:  Limits{Rate: 10, Burst: 1},
		MaxQueue: 2,
		MaxWait:  time.Hour,
	}, clk)

	// Drain the burst, fill the queue to its bound, then cancel every
	// waiter without running a grant pass: the cancelled waiters still
	// sit in the slice (Tick compacts them later), but their slots must
	// free immediately for the bound check.
	if err := c.Admit(context.Background(), "a", PriorityOLTP); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r1 := admitAsync(c, ctx, "a", PriorityOLTP)
	r2 := admitAsync(c, ctx, "a", PriorityOLTP)
	waitDepth(t, c, PriorityOLTP, 2)
	cancel()
	for _, r := range []<-chan error{r1, r2} {
		if err := <-r; !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter = %v, want context.Canceled", err)
		}
	}

	res := admitAsync(c, context.Background(), "a", PriorityOLTP)
	waitDepth(t, c, PriorityOLTP, 1) // queued — not shed with reason "queue"
	clk.advance(time.Second)
	c.Tick()
	if err := <-res; err != nil {
		t.Fatalf("arrival after cancellation churn = %v, want admission", err)
	}
}

func TestTenantContext(t *testing.T) {
	ctx := context.Background()
	if got := TenantFrom(ctx); got != DefaultTenant {
		t.Fatalf("untagged tenant = %q, want %q", got, DefaultTenant)
	}
	if got := TenantFrom(WithTenant(ctx, "acme")); got != "acme" {
		t.Fatalf("tagged tenant = %q, want acme", got)
	}
	if got := TenantFrom(WithTenant(ctx, "")); got != DefaultTenant {
		t.Fatalf("empty tag tenant = %q, want %q", got, DefaultTenant)
	}
}
