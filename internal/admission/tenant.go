package admission

import "context"

// DefaultTenant is the quota untagged work is charged against: every
// request whose context carries no tenant tag shares one default bucket,
// so a cluster with no multi-tenant setup still gets a single global
// admission limit.
const DefaultTenant = "default"

// tenantKey is the context key carrying the tenant tag.
type tenantKey struct{}

// WithTenant tags a context with the tenant the request should be charged
// against. The public proteus package re-exports this; internal layers
// read it back with TenantFrom.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom extracts the tenant tag, falling back to DefaultTenant for
// untagged work.
func TenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantKey{}).(string); ok && t != "" {
		return t
	}
	return DefaultTenant
}
