package colstore

import (
	"sort"

	"proteus/internal/schema"
	"proteus/internal/types"
)

// deltaStore buffers updates to column data as rows in a hash table indexed
// by row_id (§4.1.2). Each entry is a version chain so snapshot reads can
// observe older buffered states; a periodic merge folds the delta into the
// column base.
type deltaStore struct {
	rows map[schema.RowID]*deltaVersion
}

type deltaVersion struct {
	vals    []types.Value // full row at this version
	ver     uint64
	prev    *deltaVersion
	deleted bool
}

func newDelta() *deltaStore {
	return &deltaStore{rows: make(map[schema.RowID]*deltaVersion)}
}

// put records a new full-row version (or tombstone).
func (d *deltaStore) put(id schema.RowID, vals []types.Value, ver uint64, deleted bool) {
	d.rows[id] = &deltaVersion{vals: vals, ver: ver, prev: d.rows[id], deleted: deleted}
}

// visible returns the buffered state of id at snapshot snap.
// found=false means the delta holds no version at or before snap, so the
// base (if it contains the row) is authoritative.
func (d *deltaStore) visible(id schema.RowID, snap uint64) (vals []types.Value, deleted, found bool) {
	for v := d.rows[id]; v != nil; v = v.prev {
		if v.ver <= snap {
			return v.vals, v.deleted, true
		}
	}
	return nil, false, false
}

// snapshot returns every row_id with a version visible at snap, with its
// state, sorted by row_id.
type deltaRow struct {
	id      schema.RowID
	vals    []types.Value
	deleted bool
}

func (d *deltaStore) snapshot(snap uint64) []deltaRow {
	out := make([]deltaRow, 0, len(d.rows))
	for id := range d.rows {
		if vals, del, ok := d.visible(id, snap); ok {
			out = append(out, deltaRow{id: id, vals: vals, deleted: del})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// sortDeltaRows orders delta rows by (sort-column value, row_id).
func sortDeltaRows(rows []deltaRow, sortBy schema.ColID) {
	sort.SliceStable(rows, func(i, j int) bool {
		c := types.Compare(rows[i].vals[sortBy], rows[j].vals[sortBy])
		if c != 0 {
			return c < 0
		}
		return rows[i].id < rows[j].id
	})
}

// size reports the number of buffered row entries.
func (d *deltaStore) size() int { return len(d.rows) }

// versions reports the total number of chained versions.
func (d *deltaStore) versions() int {
	n := 0
	for _, v := range d.rows {
		for p := v; p != nil; p = p.prev {
			n++
		}
	}
	return n
}

// bytes estimates the delta's memory footprint.
func (d *deltaStore) bytes() int {
	n := 0
	for _, v := range d.rows {
		for p := v; p != nil; p = p.prev {
			n += 24 // chain bookkeeping
			for _, val := range p.vals {
				n += types.VarWidth(val)
			}
		}
	}
	return n
}

// clear drops every buffered version (after a merge).
func (d *deltaStore) clear() {
	d.rows = make(map[schema.RowID]*deltaVersion)
}
