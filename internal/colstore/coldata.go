// Package colstore implements Proteus' column-oriented (decomposition
// storage model) layouts (§4.1.2 of the paper): in-memory columns held in
// data arrays with offset/position index arrays, optional total sort order
// and run-length-encoded compression, a delta store buffering updates as
// rows in a hash table keyed by row_id, and a Parquet-like on-disk format
// storing metadata (index arrays) followed by per-column value blocks.
package colstore

import (
	"encoding/binary"
	"sort"

	"proteus/internal/schema"
	"proteus/internal/types"
)

// colData is one column's storage: values in position order, encoded into a
// single data array, with a position index giving each entry's byte offset
// (the paper's "position array"; the shared rowIDs slice is the "offset
// array" mapping array positions to row_ids). When compressed, values are
// run-length encoded: each run is prefixed by a 4-byte count (§4.1.2), and
// operators work directly over the runs without expanding them.
type colData struct {
	kind types.Kind
	// Uncompressed representation.
	data []byte
	offs []uint32 // position -> offset into data; len = n+1
	// Compressed (RLE) representation.
	rle      bool
	runData  []byte   // concatenated [4-byte count][encoded value] runs
	runStart []uint32 // run index -> first covered position; sentinel n at end
	runOff   []uint32 // run index -> offset of the run's value bytes in runData
}

// buildCol encodes vals (already in position order) into a column.
func buildCol(kind types.Kind, vals []types.Value, compress bool) *colData {
	c := &colData{kind: kind}
	if !compress {
		c.offs = make([]uint32, 0, len(vals)+1)
		for _, v := range vals {
			c.offs = append(c.offs, uint32(len(c.data)))
			c.data = types.AppendVar(c.data, v)
		}
		c.offs = append(c.offs, uint32(len(c.data)))
		return c
	}
	c.rle = true
	i := 0
	for i < len(vals) {
		j := i + 1
		for j < len(vals) && types.Equal(vals[j], vals[i]) {
			j++
		}
		c.runStart = append(c.runStart, uint32(i))
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(j-i))
		c.runData = append(c.runData, cnt[:]...)
		c.runOff = append(c.runOff, uint32(len(c.runData)))
		c.runData = types.AppendVar(c.runData, vals[i])
		i = j
	}
	c.runStart = append(c.runStart, uint32(len(vals)))
	return c
}

// n reports the number of stored positions.
func (c *colData) n() int {
	if c.rle {
		if len(c.runStart) == 0 {
			return 0
		}
		return int(c.runStart[len(c.runStart)-1])
	}
	if len(c.offs) == 0 {
		return 0
	}
	return len(c.offs) - 1
}

// bytes reports the column's data-array footprint.
func (c *colData) bytes() int {
	if c.rle {
		return len(c.runData) + 4*len(c.runStart) + 4*len(c.runOff)
	}
	return len(c.data) + 4*len(c.offs)
}

// get decodes the value at position pos (random access; sequential access
// should prefer iter).
func (c *colData) get(pos int) types.Value {
	if c.rle {
		// Binary search the run covering pos.
		r := sort.Search(len(c.runStart)-1, func(i int) bool { return c.runStart[i+1] > uint32(pos) })
		v, _ := types.DecodeVar(c.runData[c.runOff[r]:], c.kind)
		return v
	}
	v, _ := types.DecodeVar(c.data[c.offs[pos]:], c.kind)
	return v
}

// iter returns a sequential accessor: calling it with strictly increasing
// positions decodes each RLE run only once.
func (c *colData) iter() func(pos int) types.Value {
	if !c.rle {
		return func(pos int) types.Value {
			v, _ := types.DecodeVar(c.data[c.offs[pos]:], c.kind)
			return v
		}
	}
	run := 0
	var cur types.Value
	decoded := -1
	return func(pos int) types.Value {
		for run+1 < len(c.runStart)-1 && c.runStart[run+1] <= uint32(pos) {
			run++
		}
		// Allow backward jumps by re-searching.
		if run < len(c.runStart)-1 && c.runStart[run] > uint32(pos) {
			run = sort.Search(len(c.runStart)-1, func(i int) bool { return c.runStart[i+1] > uint32(pos) })
			decoded = -1
		}
		if decoded != run {
			cur, _ = types.DecodeVar(c.runData[c.runOff[run]:], c.kind)
			decoded = run
		}
		return cur
	}
}

// serialize appends the column's disk representation: a small header, the
// index arrays, then the value bytes (metadata before values, like Parquet).
func (c *colData) serialize() []byte {
	var out []byte
	var b [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	if c.rle {
		out = append(out, 1, byte(c.kind))
		put32(uint32(len(c.runStart)))
		for _, s := range c.runStart {
			put32(s)
		}
		put32(uint32(len(c.runOff)))
		for _, o := range c.runOff {
			put32(o)
		}
		put32(uint32(len(c.runData)))
		out = append(out, c.runData...)
		return out
	}
	out = append(out, 0, byte(c.kind))
	put32(uint32(len(c.offs)))
	for _, o := range c.offs {
		put32(o)
	}
	put32(uint32(len(c.data)))
	out = append(out, c.data...)
	return out
}

// deserializeCol reconstructs a column from its disk representation.
func deserializeCol(buf []byte) *colData {
	c := &colData{}
	c.rle = buf[0] == 1
	c.kind = types.Kind(buf[1])
	off := 2
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v
	}
	if c.rle {
		n := int(get32())
		c.runStart = make([]uint32, n)
		for i := range c.runStart {
			c.runStart[i] = get32()
		}
		n = int(get32())
		c.runOff = make([]uint32, n)
		for i := range c.runOff {
			c.runOff[i] = get32()
		}
		dn := int(get32())
		c.runData = append([]byte(nil), buf[off:off+dn]...)
		return c
	}
	n := int(get32())
	c.offs = make([]uint32, n)
	for i := range c.offs {
		c.offs[i] = get32()
	}
	dn := int(get32())
	c.data = append([]byte(nil), buf[off:off+dn]...)
	return c
}

// base is the merged, immutable portion of a column store: every column in
// the same position order, the offset array (position -> row_id) and the
// position array (row_id -> position).
type base struct {
	rowIDs []schema.RowID
	pos    map[schema.RowID]int
	cols   []*colData
}

// buildBase constructs the merged representation from full rows. If sortBy
// is a valid column, positions are ordered by that column's value (ties by
// row_id); otherwise by row_id.
func buildBase(kinds []types.Kind, rows []schema.Row, sortBy schema.ColID, compress bool) *base {
	sorted := make([]schema.Row, len(rows))
	copy(sorted, rows)
	if sortBy >= 0 && int(sortBy) < len(kinds) {
		sort.SliceStable(sorted, func(i, j int) bool {
			c := types.Compare(sorted[i].Vals[sortBy], sorted[j].Vals[sortBy])
			if c != 0 {
				return c < 0
			}
			return sorted[i].ID < sorted[j].ID
		})
	} else {
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	}
	b := &base{
		rowIDs: make([]schema.RowID, len(sorted)),
		pos:    make(map[schema.RowID]int, len(sorted)),
		cols:   make([]*colData, len(kinds)),
	}
	colVals := make([][]types.Value, len(kinds))
	for ci := range kinds {
		colVals[ci] = make([]types.Value, len(sorted))
	}
	for p, r := range sorted {
		b.rowIDs[p] = r.ID
		b.pos[r.ID] = p
		for ci := range kinds {
			colVals[ci][p] = r.Vals[ci]
		}
	}
	for ci, k := range kinds {
		b.cols[ci] = buildCol(k, colVals[ci], compress)
	}
	return b
}

// row materializes the projection cols of the row at position p.
func (b *base) row(p int, cols []schema.ColID) schema.Row {
	vals := make([]types.Value, len(cols))
	for i, c := range cols {
		vals[i] = b.cols[c].get(p)
	}
	return schema.Row{ID: b.rowIDs[p], Vals: vals}
}
