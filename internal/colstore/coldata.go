// Package colstore implements Proteus' column-oriented (decomposition
// storage model) layouts (§4.1.2 of the paper): in-memory columns held in
// typed data arrays with a position index, optional total sort order
// and run-length-encoded compression, a delta store buffering updates as
// rows in a hash table keyed by row_id, and a Parquet-like on-disk format
// storing metadata (index arrays) followed by per-column value blocks.
package colstore

import (
	"encoding/binary"
	"math"
	"sort"
	"sync/atomic"

	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// colEncoding identifies how one column's values are physically encoded.
type colEncoding uint8

const (
	// encPlain: decoded values in a typed position-indexed array.
	encPlain colEncoding = iota
	// encRLE: run-length encoding; runStart maps run -> first position.
	encRLE
	// encDict: dictionary encoding for strings; a sorted dictionary of the
	// distinct values plus a per-position code array, so code order is
	// value order and predicates translate to code ranges.
	encDict
	// encFoR: frame-of-reference encoding for the int family; a per-column
	// base (the minimum) plus per-position codes stored at a narrow width.
	encFoR
)

// String names the encoding (metrics keys and debugging).
func (e colEncoding) String() string {
	switch e {
	case encRLE:
		return "rle"
	case encDict:
		return "dict"
	case encFoR:
		return "for"
	}
	return "plain"
}

// maxDictSize bounds the dictionary: above this many distinct values the
// code array stops paying for the indirection and buildCol falls back to
// the other encodings.
const maxDictSize = 1 << 16

// encodingsOff disables dictionary/FoR selection so compressed layouts
// build plain RLE columns — the pre-encoding behavior, kept reachable for
// A/B benchmarks (experiments/scan.go) and differential tests.
var encodingsOff atomic.Bool

// SetEncodings toggles dictionary/FoR encoding selection for newly built
// columns and reports the previous setting. Existing columns are
// unaffected; callers rebuild (Load/MergeDelta/ChangeLayout) to re-encode.
func SetEncodings(on bool) bool {
	return !encodingsOff.Swap(!on)
}

// Package-wide encoding counters, surfaced by the engine's metrics
// snapshot as colstore.encoding.*. They count compressed column builds
// only (compress=false builds are always plain and say nothing about
// encoding choice).
var (
	statColsPlain   atomic.Int64
	statColsRLE     atomic.Int64
	statColsDict    atomic.Int64
	statColsFoR     atomic.Int64
	statBytesStored atomic.Int64 // footprint of the chosen encodings
	statBytesPlain  atomic.Int64 // what plain storage would have cost
)

// EncodingStats snapshots the encoding-selection counters: columns built
// per encoding and the byte footprint of the chosen encodings against the
// plain-storage equivalent.
type EncodingStats struct {
	PlainCols, RLECols, DictCols, FoRCols int64
	StoredBytes, PlainBytes               int64
}

// ReadEncodingStats reads the cumulative encoding counters.
func ReadEncodingStats() EncodingStats {
	return EncodingStats{
		PlainCols:   statColsPlain.Load(),
		RLECols:     statColsRLE.Load(),
		DictCols:    statColsDict.Load(),
		FoRCols:     statColsFoR.Load(),
		StoredBytes: statBytesStored.Load(),
		PlainBytes:  statBytesPlain.Load(),
	}
}

// colData is one column's storage: values in position order, held in a
// typed array chosen by kind (the vectorized scan path hands out zero-copy
// views over these arrays; the shared rowIDs slice is the "offset array"
// mapping array positions to row_ids). Compressed layouts pick the
// cheapest of three encodings from the observed values (§4.1.2):
//
//   - run-length: runStart maps run index -> first covered position (with
//     a sentinel n at the end) and run values live in typed run arrays;
//   - dictionary (strings): a sorted dict plus per-position codes;
//   - frame-of-reference (int family): a base plus per-position codes.
//
// Operators work directly on runs and codes without expanding them. The
// byte-encoded form only exists on disk — serialize renders it and
// deserializeCol parses it back into typed arrays.
type colData struct {
	kind types.Kind
	enc  colEncoding
	cnt  int // number of stored positions

	// Plain representation (position-indexed). Exactly one payload array
	// is populated, per kind; nulls is non-nil only when the column holds
	// NULLs.
	i64   []int64
	f64   []float64
	str   []string
	nulls []bool
	// dataBytes approximates the encoded size of the value bytes (the sum
	// of types.VarWidth; for encDict, of the dictionary entries),
	// preserving the byte accounting of the serialized form for Stats and
	// the ASA's space model.
	dataBytes int

	// RLE representation.
	runStart []uint32 // run index -> first covered position; sentinel cnt at end
	rI64     []int64
	rF64     []float64
	rStr     []string
	rNulls   []bool
	// runBytes approximates the encoded run bytes ([4-byte count][value]).
	runBytes int

	// Dictionary / frame-of-reference representation. codes is
	// position-indexed; dict is the ascending-sorted distinct values
	// (encDict); forBase is the frame base (encFoR). codeW is the
	// serialized bytes per code (1, 2 or 4) implied by the dict size or
	// value range. Both encodings require a NULL-free column.
	dict    []string
	codes   []uint32
	forBase int64
	codeW   int
}

// buildCol encodes vals (already in position order) into a column. With
// compress set, the cheapest encoding is picked from the observed
// cardinality, value range and run structure.
func buildCol(kind types.Kind, vals []types.Value, compress bool) *colData {
	c := &colData{kind: kind, cnt: len(vals)}
	if !compress {
		c.buildPlain(vals)
		return c
	}
	c.enc = chooseEncoding(kind, vals)
	switch c.enc {
	case encPlain:
		c.buildPlain(vals)
	case encDict:
		c.buildDict(vals)
	case encFoR:
		c.buildFoR(vals)
	default:
		c.buildRLE(vals)
	}
	recordEncoding(c, vals)
	return c
}

// buildPlain fills the typed position-indexed arrays.
func (c *colData) buildPlain(vals []types.Value) {
	c.alloc(len(vals))
	for p, v := range vals {
		c.setUncompressed(p, v)
		c.dataBytes += types.VarWidth(v)
	}
}

// buildRLE run-length encodes the values.
func (c *colData) buildRLE(vals []types.Value) {
	i := 0
	for i < len(vals) {
		j := i + 1
		for j < len(vals) && types.Equal(vals[j], vals[i]) {
			j++
		}
		c.runStart = append(c.runStart, uint32(i))
		c.appendRun(vals[i])
		c.runBytes += 4 + types.VarWidth(vals[i])
		i = j
	}
	c.runStart = append(c.runStart, uint32(len(vals)))
}

// buildDict dictionary-encodes a NULL-free string column.
func (c *colData) buildDict(vals []types.Value) {
	seen := make(map[string]struct{}, 16)
	for _, v := range vals {
		seen[v.S] = struct{}{}
	}
	c.dict = make([]string, 0, len(seen))
	for s := range seen {
		c.dict = append(c.dict, s)
	}
	sort.Strings(c.dict)
	codeOf := make(map[string]uint32, len(c.dict))
	for i, s := range c.dict {
		codeOf[s] = uint32(i)
		c.dataBytes += 4 + len(s)
	}
	c.codes = make([]uint32, len(vals))
	for p, v := range vals {
		c.codes[p] = codeOf[v.S]
	}
	c.codeW = codeWidth(uint64(len(c.dict)) - 1)
}

// buildFoR frame-of-reference encodes a NULL-free int-family column whose
// value range fits 32-bit codes.
func (c *colData) buildFoR(vals []types.Value) {
	c.forBase = vals[0].I
	for _, v := range vals {
		if v.I < c.forBase {
			c.forBase = v.I
		}
	}
	c.codes = make([]uint32, len(vals))
	var maxCode uint64
	for p, v := range vals {
		d := uint64(v.I) - uint64(c.forBase)
		c.codes[p] = uint32(d)
		if d > maxCode {
			maxCode = d
		}
	}
	c.codeW = codeWidth(maxCode)
}

// codeWidth picks the narrowest serialized code width covering maxCode.
func codeWidth(maxCode uint64) int {
	switch {
	case maxCode <= math.MaxUint8:
		return 1
	case maxCode <= math.MaxUint16:
		return 2
	default:
		return 4
	}
}

// chooseEncoding scans the values once and picks the encoding with the
// smallest estimated footprint (matching the bytes() accounting below).
// Dictionary and FoR require NULL-free columns: NULL sorts below every
// value in types.Compare, so a NULL cannot be given a code without
// breaking the code-order-is-value-order invariant the kernels rely on.
func chooseEncoding(kind types.Kind, vals []types.Value) colEncoding {
	if len(vals) == 0 {
		return encRLE // empty columns keep the legacy compressed form
	}
	n := len(vals)
	intish := kind == types.KindInt64 || kind == types.KindTime
	hasNull := false
	plainBytes := 0
	runs, runValueBytes := 0, 0
	var mn, mx int64
	sawInt := false
	var distinct map[string]struct{}
	if kind == types.KindString {
		distinct = make(map[string]struct{}, 16)
	}
	for i, v := range vals {
		w := types.VarWidth(v)
		plainBytes += w
		if v.IsNull() {
			hasNull = true
		}
		if i == 0 || !types.Equal(v, vals[i-1]) {
			runs++
			runValueBytes += 4 + w
		}
		if intish && !v.IsNull() {
			if !sawInt || v.I < mn {
				mn = v.I
			}
			if !sawInt || v.I > mx {
				mx = v.I
			}
			sawInt = true
		}
		if distinct != nil && !v.IsNull() && len(distinct) <= maxDictSize {
			distinct[v.S] = struct{}{}
		}
	}
	if encodingsOff.Load() {
		return encRLE
	}
	best := encPlain
	bestBytes := plainBytes + 4*(n+1)
	if rleBytes := runValueBytes + 4*(runs+1) + 4*runs; rleBytes < bestBytes {
		best, bestBytes = encRLE, rleBytes
	}
	if distinct != nil && !hasNull && len(distinct) <= maxDictSize {
		dictBytes := 0
		for s := range distinct {
			dictBytes += 4 + len(s)
		}
		w := codeWidth(uint64(len(distinct)) - 1)
		if db := dictBytes + n*w + 4*(len(distinct)+1) + 16; db < bestBytes {
			best, bestBytes = encDict, db
		}
	}
	if intish && !hasNull && sawInt {
		if rng := uint64(mx) - uint64(mn); rng <= math.MaxUint32 {
			w := codeWidth(rng)
			if fb := n*w + 24; fb < bestBytes {
				best, bestBytes = encFoR, fb
			}
		}
	}
	return best
}

// recordEncoding updates the package encoding counters for one compressed
// column build.
func recordEncoding(c *colData, vals []types.Value) {
	switch c.enc {
	case encRLE:
		statColsRLE.Add(1)
	case encDict:
		statColsDict.Add(1)
	case encFoR:
		statColsFoR.Add(1)
	default:
		statColsPlain.Add(1)
	}
	plain := 4 * (len(vals) + 1)
	for _, v := range vals {
		plain += types.VarWidth(v)
	}
	statBytesPlain.Add(int64(plain))
	statBytesStored.Add(int64(c.bytes()))
}

// alloc sizes the payload array for n uncompressed positions.
func (c *colData) alloc(n int) {
	switch c.kind {
	case types.KindFloat64:
		c.f64 = make([]float64, n)
	case types.KindString:
		c.str = make([]string, n)
	default:
		c.i64 = make([]int64, n)
	}
}

// setUncompressed stores v at position p (the payload array is allocated).
func (c *colData) setUncompressed(p int, v types.Value) {
	if v.IsNull() {
		if c.nulls == nil {
			c.nulls = make([]bool, c.cnt)
		}
		c.nulls[p] = true
		return
	}
	switch c.kind {
	case types.KindFloat64:
		c.f64[p] = v.Float()
	case types.KindString:
		c.str[p] = v.S
	default:
		c.i64[p] = v.I
	}
}

// appendRun stores the next run's value (runs arrive in order).
func (c *colData) appendRun(v types.Value) {
	if v.IsNull() && c.rNulls == nil {
		c.rNulls = make([]bool, c.runCount())
	}
	if c.rNulls != nil {
		c.rNulls = append(c.rNulls, v.IsNull())
	}
	switch c.kind {
	case types.KindFloat64:
		c.rF64 = append(c.rF64, v.Float())
	case types.KindString:
		c.rStr = append(c.rStr, v.S)
	default:
		c.rI64 = append(c.rI64, v.I)
	}
}

// runCount reports the number of runs stored so far.
func (c *colData) runCount() int {
	switch c.kind {
	case types.KindFloat64:
		return len(c.rF64)
	case types.KindString:
		return len(c.rStr)
	default:
		return len(c.rI64)
	}
}

// uncompressedVal boxes the value at position p of an uncompressed column.
func (c *colData) uncompressedVal(p int) types.Value {
	if c.nulls != nil && c.nulls[p] {
		return types.Null()
	}
	switch c.kind {
	case types.KindFloat64:
		return types.Value{K: types.KindFloat64, F: c.f64[p]}
	case types.KindString:
		return types.Value{K: types.KindString, S: c.str[p]}
	case types.KindNull:
		return types.Null()
	default:
		return types.Value{K: c.kind, I: c.i64[p]}
	}
}

// runVal boxes run r's value.
func (c *colData) runVal(r int) types.Value {
	if c.rNulls != nil && c.rNulls[r] {
		return types.Null()
	}
	switch c.kind {
	case types.KindFloat64:
		return types.Value{K: types.KindFloat64, F: c.rF64[r]}
	case types.KindString:
		return types.Value{K: types.KindString, S: c.rStr[r]}
	case types.KindNull:
		return types.Null()
	default:
		return types.Value{K: c.kind, I: c.rI64[r]}
	}
}

// runIndex finds the run covering position p by binary search.
func (c *colData) runIndex(p int) int {
	return sort.Search(len(c.runStart)-1, func(i int) bool { return c.runStart[i+1] > uint32(p) })
}

// n reports the number of stored positions.
func (c *colData) n() int { return c.cnt }

// bytes reports the column's data-array footprint (encoded-size accounting,
// matching the serialized form's index + value bytes).
func (c *colData) bytes() int {
	switch c.enc {
	case encRLE:
		return c.runBytes + 4*len(c.runStart) + 4*c.runCount()
	case encDict:
		return c.dataBytes + c.cnt*c.codeW + 4*(len(c.dict)+1) + 16
	case encFoR:
		return c.cnt*c.codeW + 24
	default:
		return c.dataBytes + 4*(c.cnt+1)
	}
}

// get decodes the value at position pos (random access; sequential access
// should prefer iter).
func (c *colData) get(pos int) types.Value {
	switch c.enc {
	case encRLE:
		return c.runVal(c.runIndex(pos))
	case encDict:
		return types.Value{K: types.KindString, S: c.dict[c.codes[pos]]}
	case encFoR:
		return types.Value{K: c.kind, I: c.forBase + int64(c.codes[pos])}
	default:
		return c.uncompressedVal(pos)
	}
}

// iter returns a sequential accessor: calling it with strictly increasing
// positions resolves each RLE run only once.
func (c *colData) iter() func(pos int) types.Value {
	if c.enc != encRLE {
		return func(pos int) types.Value { return c.get(pos) }
	}
	run := 0
	var cur types.Value
	decoded := -1
	return func(pos int) types.Value {
		for run+1 < len(c.runStart)-1 && c.runStart[run+1] <= uint32(pos) {
			run++
		}
		// Allow backward jumps by re-searching.
		if run < len(c.runStart)-1 && c.runStart[run] > uint32(pos) {
			run = c.runIndex(pos)
			decoded = -1
		}
		if decoded != run {
			cur = c.runVal(run)
			decoded = run
		}
		return cur
	}
}

// viewVec wraps positions [lo, hi) of a non-RLE column as a zero-copy
// vector view (the batch fast path). Dictionary and FoR columns hand out
// encoded views over their code arrays — predicates and aggregate folds
// run on raw codes and only projected output rows decode.
func (c *colData) viewVec(lo, hi int) storage.Vec {
	switch c.enc {
	case encDict:
		return storage.DictVec(c.codes[lo:hi], c.dict)
	case encFoR:
		return storage.FoRVec(c.kind, c.forBase, c.codes[lo:hi])
	}
	var nulls []bool
	if c.nulls != nil {
		nulls = c.nulls[lo:hi]
	}
	switch c.kind {
	case types.KindFloat64:
		return storage.ViewVec(c.kind, nil, c.f64[lo:hi], nil, nulls)
	case types.KindString:
		return storage.ViewVec(c.kind, nil, nil, c.str[lo:hi], nulls)
	default:
		return storage.ViewVec(c.kind, c.i64[lo:hi], nil, nil, nulls)
	}
}

// runsVec wraps positions [lo, hi) of an RLE column as a run-length vector
// without expanding the runs: run values stay zero-copy views into the run
// arrays and only the clamped run boundaries are computed per chunk. ok is
// false when a covered run holds NULL (the caller expands via fillVec —
// NULL-bearing run vectors would need run-indexed null tracking that no
// kernel wants to reason about).
func (c *colData) runsVec(lo, hi int) (storage.Vec, bool) {
	nr := len(c.runStart) - 1
	r0 := c.runIndex(lo)
	r1 := r0
	var runEnds []uint32
	for r := r0; r < nr && int(c.runStart[r]) < hi; r++ {
		if c.rNulls != nil && c.rNulls[r] {
			return storage.Vec{}, false
		}
		e := int(c.runStart[r+1])
		if e > hi {
			e = hi
		}
		runEnds = append(runEnds, uint32(e-lo))
		r1 = r + 1
	}
	switch c.kind {
	case types.KindFloat64:
		return storage.RunsVec(c.kind, nil, c.rF64[r0:r1], nil, runEnds), true
	case types.KindString:
		return storage.RunsVec(c.kind, nil, nil, c.rStr[r0:r1], runEnds), true
	default:
		return storage.RunsVec(c.kind, c.rI64[r0:r1], nil, nil, runEnds), true
	}
}

// fillVec expands positions [lo, hi) into v (RLE run expansion path).
func (c *colData) fillVec(v *storage.Vec, lo, hi int) {
	nr := len(c.runStart) - 1
	for r := c.runIndex(lo); r < nr && int(c.runStart[r]) < hi; r++ {
		s := int(c.runStart[r])
		if s < lo {
			s = lo
		}
		e := int(c.runStart[r+1])
		if e > hi {
			e = hi
		}
		v.AppendN(c.runVal(r), e-s)
	}
}

// colMagic is the version marker of the extended serialized format. The
// legacy format's first byte is the RLE flag (0 or 1); dictionary and FoR
// columns open with colMagic followed by the encoding byte, so old images
// still parse and new readers dispatch on the first byte.
const colMagic = 0xC2

// colIndex is the metadata the disk store caches for ranged cell reads:
// the encoding, where the value bytes begin within the image, and the
// per-encoding index (offs for plain columns, runStart/runOff for RLE,
// code width plus dictionary/base for the code encodings).
type colIndex struct {
	enc     colEncoding
	dataOff int // offset of value bytes within the image
	// encPlain: position -> value offset within the data section.
	offs []uint32
	// encRLE.
	runStart []uint32
	runOff   []uint32
	// encDict / encFoR: codes are packed at codeW bytes from dataOff.
	codeW   int
	forBase int64
	dict    []string
}

// serialize renders the column's disk representation: a small header, the
// index arrays, then the value bytes (metadata before values, like Parquet).
func (c *colData) serialize() []byte {
	img, _ := c.serializeWithIndex()
	return img
}

// putCode appends one code at width w (little-endian).
func putCode(dst []byte, code uint32, w int) []byte {
	switch w {
	case 1:
		return append(dst, byte(code))
	case 2:
		return append(dst, byte(code), byte(code>>8))
	default:
		return append(dst, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
	}
}

// readCodeAt decodes one code of width w from b.
func readCodeAt(b []byte, w int) uint32 {
	switch w {
	case 1:
		return uint32(b[0])
	case 2:
		return uint32(binary.LittleEndian.Uint16(b))
	default:
		return binary.LittleEndian.Uint32(b)
	}
}

// serializeWithIndex additionally returns the index the disk store caches
// for ranged cell reads.
func (c *colData) serializeWithIndex() ([]byte, colIndex) {
	var out []byte
	var b [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	put64 := func(v uint64) {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], v)
		out = append(out, w[:]...)
	}
	switch c.enc {
	case encRLE:
		nr := len(c.runStart) - 1
		if nr < 0 {
			nr = 0
		}
		var runData []byte
		runOff := make([]uint32, 0, nr)
		for r := 0; r < nr; r++ {
			binary.LittleEndian.PutUint32(b[:], c.runStart[r+1]-c.runStart[r])
			runData = append(runData, b[:]...)
			runOff = append(runOff, uint32(len(runData)))
			runData = types.AppendVar(runData, c.runVal(r))
		}
		out = append(out, 1, byte(c.kind))
		put32(uint32(len(c.runStart)))
		for _, s := range c.runStart {
			put32(s)
		}
		put32(uint32(len(runOff)))
		for _, o := range runOff {
			put32(o)
		}
		put32(uint32(len(runData)))
		dataOff := len(out)
		out = append(out, runData...)
		return out, colIndex{enc: encRLE, dataOff: dataOff, runStart: c.runStart, runOff: runOff}
	case encDict:
		// [magic, enc, kind] cnt codeW dictLen dataLen | codes dictBlob
		out = append(out, colMagic, byte(encDict), byte(c.kind))
		put32(uint32(c.cnt))
		put32(uint32(c.codeW))
		put32(uint32(len(c.dict)))
		var data []byte
		for _, code := range c.codes {
			data = putCode(data, code, c.codeW)
		}
		for _, s := range c.dict {
			data = types.AppendVar(data, types.NewString(s))
		}
		put32(uint32(len(data)))
		dataOff := len(out)
		out = append(out, data...)
		return out, colIndex{enc: encDict, dataOff: dataOff, codeW: c.codeW, dict: c.dict}
	case encFoR:
		// [magic, enc, kind] cnt codeW base dataLen | codes
		out = append(out, colMagic, byte(encFoR), byte(c.kind))
		put32(uint32(c.cnt))
		put32(uint32(c.codeW))
		put64(uint64(c.forBase))
		var data []byte
		for _, code := range c.codes {
			data = putCode(data, code, c.codeW)
		}
		put32(uint32(len(data)))
		dataOff := len(out)
		out = append(out, data...)
		return out, colIndex{enc: encFoR, dataOff: dataOff, codeW: c.codeW, forBase: c.forBase}
	}
	var data []byte
	offs := make([]uint32, 0, c.cnt+1)
	for p := 0; p < c.cnt; p++ {
		offs = append(offs, uint32(len(data)))
		data = types.AppendVar(data, c.uncompressedVal(p))
	}
	offs = append(offs, uint32(len(data)))
	out = append(out, 0, byte(c.kind))
	put32(uint32(len(offs)))
	for _, o := range offs {
		put32(o)
	}
	put32(uint32(len(data)))
	dataOff := len(out)
	out = append(out, data...)
	return out, colIndex{enc: encPlain, dataOff: dataOff, offs: offs}
}

// deserializeCol reconstructs a column from its disk representation,
// decoding the value bytes back into typed arrays. A zero-length value
// region marks a NULL (types.AppendVar encodes NULL as no bytes). Images
// opening with colMagic carry the extended encodings; the two legacy
// leading bytes (0 plain, 1 RLE) parse as before.
func deserializeCol(buf []byte) *colData {
	if buf[0] == colMagic {
		return deserializeEncoded(buf)
	}
	c := &colData{}
	if buf[0] == 1 {
		c.enc = encRLE
	}
	c.kind = types.Kind(buf[1])
	off := 2
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v
	}
	if c.enc == encRLE {
		n := int(get32())
		c.runStart = make([]uint32, n)
		for i := range c.runStart {
			c.runStart[i] = get32()
		}
		n = int(get32())
		runOff := make([]uint32, n)
		for i := range runOff {
			runOff[i] = get32()
		}
		dn := int(get32())
		runData := buf[off : off+dn]
		c.runBytes = dn
		if len(c.runStart) > 0 {
			c.cnt = int(c.runStart[len(c.runStart)-1])
		}
		for r := range runOff {
			vo := int(runOff[r])
			end := dn
			if r+1 < len(runOff) {
				end = int(runOff[r+1]) - 4 // exclude next run's count prefix
			}
			if vo >= end {
				c.appendRun(types.Null())
				continue
			}
			v, _ := types.DecodeVar(runData[vo:], c.kind)
			c.appendRun(v)
		}
		return c
	}
	n := int(get32())
	offs := make([]uint32, n)
	for i := range offs {
		offs[i] = get32()
	}
	dn := int(get32())
	data := buf[off : off+dn]
	c.dataBytes = dn
	if n > 0 {
		c.cnt = n - 1
	}
	c.alloc(c.cnt)
	for p := 0; p < c.cnt; p++ {
		if offs[p] == offs[p+1] {
			c.setUncompressed(p, types.Null())
			continue
		}
		v, _ := types.DecodeVar(data[offs[p]:], c.kind)
		c.setUncompressed(p, v)
	}
	return c
}

// deserializeEncoded parses the colMagic formats (dictionary and FoR) back
// into typed code arrays.
func deserializeEncoded(buf []byte) *colData {
	c := &colData{enc: colEncoding(buf[1]), kind: types.Kind(buf[2])}
	off := 3
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v
	}
	c.cnt = int(get32())
	c.codeW = int(get32())
	switch c.enc {
	case encDict:
		dictLen := int(get32())
		_ = get32() // dataLen
		c.codes = make([]uint32, c.cnt)
		for p := 0; p < c.cnt; p++ {
			c.codes[p] = readCodeAt(buf[off:], c.codeW)
			off += c.codeW
		}
		c.dict = make([]string, dictLen)
		for i := 0; i < dictLen; i++ {
			v, n := types.DecodeVar(buf[off:], types.KindString)
			c.dict[i] = v.S
			c.dataBytes += 4 + len(v.S)
			off += n
		}
	case encFoR:
		c.forBase = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		_ = get32() // dataLen
		c.codes = make([]uint32, c.cnt)
		for p := 0; p < c.cnt; p++ {
			c.codes[p] = readCodeAt(buf[off:], c.codeW)
			off += c.codeW
		}
	}
	return c
}

// base is the merged, immutable portion of a column store: every column in
// the same position order, the offset array (position -> row_id) and the
// position array (row_id -> position).
type base struct {
	rowIDs []schema.RowID
	pos    map[schema.RowID]int
	cols   []*colData
}

// buildBase constructs the merged representation from full rows. If sortBy
// is a valid column, positions are ordered by that column's value (ties by
// row_id); otherwise by row_id.
func buildBase(kinds []types.Kind, rows []schema.Row, sortBy schema.ColID, compress bool) *base {
	sorted := make([]schema.Row, len(rows))
	copy(sorted, rows)
	if sortBy >= 0 && int(sortBy) < len(kinds) {
		sort.SliceStable(sorted, func(i, j int) bool {
			c := types.Compare(sorted[i].Vals[sortBy], sorted[j].Vals[sortBy])
			if c != 0 {
				return c < 0
			}
			return sorted[i].ID < sorted[j].ID
		})
	} else {
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	}
	b := &base{
		rowIDs: make([]schema.RowID, len(sorted)),
		pos:    make(map[schema.RowID]int, len(sorted)),
		cols:   make([]*colData, len(kinds)),
	}
	colVals := make([][]types.Value, len(kinds))
	for ci := range kinds {
		colVals[ci] = make([]types.Value, len(sorted))
	}
	for p, r := range sorted {
		b.rowIDs[p] = r.ID
		b.pos[r.ID] = p
		for ci := range kinds {
			colVals[ci][p] = r.Vals[ci]
		}
	}
	for ci, k := range kinds {
		b.cols[ci] = buildCol(k, colVals[ci], compress)
	}
	return b
}

// row materializes the projection cols of the row at position p.
func (b *base) row(p int, cols []schema.ColID) schema.Row {
	vals := make([]types.Value, len(cols))
	for i, c := range cols {
		vals[i] = b.cols[c].get(p)
	}
	return schema.Row{ID: b.rowIDs[p], Vals: vals}
}
