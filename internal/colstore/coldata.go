// Package colstore implements Proteus' column-oriented (decomposition
// storage model) layouts (§4.1.2 of the paper): in-memory columns held in
// typed data arrays with a position index, optional total sort order
// and run-length-encoded compression, a delta store buffering updates as
// rows in a hash table keyed by row_id, and a Parquet-like on-disk format
// storing metadata (index arrays) followed by per-column value blocks.
package colstore

import (
	"encoding/binary"
	"sort"

	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// colData is one column's storage: values in position order, held in a
// typed array chosen by kind (the vectorized scan path hands out zero-copy
// views over these arrays; the shared rowIDs slice is the "offset array"
// mapping array positions to row_ids). When compressed, values are
// run-length encoded (§4.1.2): runStart maps run index -> first covered
// position (with a sentinel n at the end) and the run values live in typed
// run arrays; operators work directly over the runs without expanding
// them. The byte-encoded form only exists on disk — serialize renders it
// and deserializeCol parses it back into typed arrays.
type colData struct {
	kind types.Kind
	cnt  int // number of stored positions

	// Uncompressed representation (position-indexed). Exactly one payload
	// array is populated, per kind; nulls is non-nil only when the column
	// holds NULLs.
	i64   []int64
	f64   []float64
	str   []string
	nulls []bool
	// dataBytes approximates the encoded size of the value bytes (the sum
	// of types.VarWidth), preserving the byte accounting of the previous
	// byte-array representation for Stats and the ASA's space model.
	dataBytes int

	// Compressed (RLE) representation.
	rle      bool
	runStart []uint32 // run index -> first covered position; sentinel cnt at end
	rI64     []int64
	rF64     []float64
	rStr     []string
	rNulls   []bool
	// runBytes approximates the encoded run bytes ([4-byte count][value]).
	runBytes int
}

// buildCol encodes vals (already in position order) into a column.
func buildCol(kind types.Kind, vals []types.Value, compress bool) *colData {
	c := &colData{kind: kind, cnt: len(vals)}
	if !compress {
		c.alloc(len(vals))
		for p, v := range vals {
			c.setUncompressed(p, v)
			c.dataBytes += types.VarWidth(v)
		}
		return c
	}
	c.rle = true
	i := 0
	for i < len(vals) {
		j := i + 1
		for j < len(vals) && types.Equal(vals[j], vals[i]) {
			j++
		}
		c.runStart = append(c.runStart, uint32(i))
		c.appendRun(vals[i])
		c.runBytes += 4 + types.VarWidth(vals[i])
		i = j
	}
	c.runStart = append(c.runStart, uint32(len(vals)))
	return c
}

// alloc sizes the payload array for n uncompressed positions.
func (c *colData) alloc(n int) {
	switch c.kind {
	case types.KindFloat64:
		c.f64 = make([]float64, n)
	case types.KindString:
		c.str = make([]string, n)
	default:
		c.i64 = make([]int64, n)
	}
}

// setUncompressed stores v at position p (the payload array is allocated).
func (c *colData) setUncompressed(p int, v types.Value) {
	if v.IsNull() {
		if c.nulls == nil {
			c.nulls = make([]bool, c.cnt)
		}
		c.nulls[p] = true
		return
	}
	switch c.kind {
	case types.KindFloat64:
		c.f64[p] = v.Float()
	case types.KindString:
		c.str[p] = v.S
	default:
		c.i64[p] = v.I
	}
}

// appendRun stores the next run's value (runs arrive in order).
func (c *colData) appendRun(v types.Value) {
	if v.IsNull() && c.rNulls == nil {
		c.rNulls = make([]bool, c.runCount())
	}
	if c.rNulls != nil {
		c.rNulls = append(c.rNulls, v.IsNull())
	}
	switch c.kind {
	case types.KindFloat64:
		c.rF64 = append(c.rF64, v.Float())
	case types.KindString:
		c.rStr = append(c.rStr, v.S)
	default:
		c.rI64 = append(c.rI64, v.I)
	}
}

// runCount reports the number of runs stored so far.
func (c *colData) runCount() int {
	switch c.kind {
	case types.KindFloat64:
		return len(c.rF64)
	case types.KindString:
		return len(c.rStr)
	default:
		return len(c.rI64)
	}
}

// uncompressedVal boxes the value at position p of an uncompressed column.
func (c *colData) uncompressedVal(p int) types.Value {
	if c.nulls != nil && c.nulls[p] {
		return types.Null()
	}
	switch c.kind {
	case types.KindFloat64:
		return types.Value{K: types.KindFloat64, F: c.f64[p]}
	case types.KindString:
		return types.Value{K: types.KindString, S: c.str[p]}
	case types.KindNull:
		return types.Null()
	default:
		return types.Value{K: c.kind, I: c.i64[p]}
	}
}

// runVal boxes run r's value.
func (c *colData) runVal(r int) types.Value {
	if c.rNulls != nil && c.rNulls[r] {
		return types.Null()
	}
	switch c.kind {
	case types.KindFloat64:
		return types.Value{K: types.KindFloat64, F: c.rF64[r]}
	case types.KindString:
		return types.Value{K: types.KindString, S: c.rStr[r]}
	case types.KindNull:
		return types.Null()
	default:
		return types.Value{K: c.kind, I: c.rI64[r]}
	}
}

// runIndex finds the run covering position p by binary search.
func (c *colData) runIndex(p int) int {
	return sort.Search(len(c.runStart)-1, func(i int) bool { return c.runStart[i+1] > uint32(p) })
}

// n reports the number of stored positions.
func (c *colData) n() int { return c.cnt }

// bytes reports the column's data-array footprint (encoded-size accounting,
// matching the serialized form's index + value bytes).
func (c *colData) bytes() int {
	if c.rle {
		return c.runBytes + 4*len(c.runStart) + 4*c.runCount()
	}
	return c.dataBytes + 4*(c.cnt+1)
}

// get decodes the value at position pos (random access; sequential access
// should prefer iter).
func (c *colData) get(pos int) types.Value {
	if c.rle {
		return c.runVal(c.runIndex(pos))
	}
	return c.uncompressedVal(pos)
}

// iter returns a sequential accessor: calling it with strictly increasing
// positions resolves each RLE run only once.
func (c *colData) iter() func(pos int) types.Value {
	if !c.rle {
		return func(pos int) types.Value { return c.uncompressedVal(pos) }
	}
	run := 0
	var cur types.Value
	decoded := -1
	return func(pos int) types.Value {
		for run+1 < len(c.runStart)-1 && c.runStart[run+1] <= uint32(pos) {
			run++
		}
		// Allow backward jumps by re-searching.
		if run < len(c.runStart)-1 && c.runStart[run] > uint32(pos) {
			run = c.runIndex(pos)
			decoded = -1
		}
		if decoded != run {
			cur = c.runVal(run)
			decoded = run
		}
		return cur
	}
}

// viewVec wraps positions [lo, hi) of an uncompressed column as a
// zero-copy vector view (the batch fast path). The column must not be RLE.
func (c *colData) viewVec(lo, hi int) storage.Vec {
	var nulls []bool
	if c.nulls != nil {
		nulls = c.nulls[lo:hi]
	}
	switch c.kind {
	case types.KindFloat64:
		return storage.ViewVec(c.kind, nil, c.f64[lo:hi], nil, nulls)
	case types.KindString:
		return storage.ViewVec(c.kind, nil, nil, c.str[lo:hi], nulls)
	default:
		return storage.ViewVec(c.kind, c.i64[lo:hi], nil, nil, nulls)
	}
}

// fillVec expands positions [lo, hi) into v (RLE run expansion path).
func (c *colData) fillVec(v *storage.Vec, lo, hi int) {
	nr := len(c.runStart) - 1
	for r := c.runIndex(lo); r < nr && int(c.runStart[r]) < hi; r++ {
		s := int(c.runStart[r])
		if s < lo {
			s = lo
		}
		e := int(c.runStart[r+1])
		if e > hi {
			e = hi
		}
		v.AppendN(c.runVal(r), e-s)
	}
}

// serialize renders the column's disk representation: a small header, the
// index arrays, then the value bytes (metadata before values, like Parquet).
func (c *colData) serialize() []byte {
	img, _, _, _, _ := c.serializeWithIndex()
	return img
}

// serializeWithIndex additionally returns the byte-offset index arrays the
// disk store caches for ranged cell reads (offs for uncompressed columns,
// runStart/runOff for RLE) and the offset of the value bytes within the
// image.
func (c *colData) serializeWithIndex() (img []byte, offs, runStart, runOff []uint32, dataOff int) {
	var out []byte
	var b [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	if c.rle {
		nr := len(c.runStart) - 1
		if nr < 0 {
			nr = 0
		}
		var runData []byte
		runOff = make([]uint32, 0, nr)
		for r := 0; r < nr; r++ {
			binary.LittleEndian.PutUint32(b[:], c.runStart[r+1]-c.runStart[r])
			runData = append(runData, b[:]...)
			runOff = append(runOff, uint32(len(runData)))
			runData = types.AppendVar(runData, c.runVal(r))
		}
		out = append(out, 1, byte(c.kind))
		put32(uint32(len(c.runStart)))
		for _, s := range c.runStart {
			put32(s)
		}
		put32(uint32(len(runOff)))
		for _, o := range runOff {
			put32(o)
		}
		put32(uint32(len(runData)))
		dataOff = len(out)
		out = append(out, runData...)
		return out, nil, c.runStart, runOff, dataOff
	}
	var data []byte
	offs = make([]uint32, 0, c.cnt+1)
	for p := 0; p < c.cnt; p++ {
		offs = append(offs, uint32(len(data)))
		data = types.AppendVar(data, c.uncompressedVal(p))
	}
	offs = append(offs, uint32(len(data)))
	out = append(out, 0, byte(c.kind))
	put32(uint32(len(offs)))
	for _, o := range offs {
		put32(o)
	}
	put32(uint32(len(data)))
	dataOff = len(out)
	out = append(out, data...)
	return out, offs, nil, nil, dataOff
}

// deserializeCol reconstructs a column from its disk representation,
// decoding the value bytes back into typed arrays. A zero-length value
// region marks a NULL (types.AppendVar encodes NULL as no bytes).
func deserializeCol(buf []byte) *colData {
	c := &colData{}
	c.rle = buf[0] == 1
	c.kind = types.Kind(buf[1])
	off := 2
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v
	}
	if c.rle {
		n := int(get32())
		c.runStart = make([]uint32, n)
		for i := range c.runStart {
			c.runStart[i] = get32()
		}
		n = int(get32())
		runOff := make([]uint32, n)
		for i := range runOff {
			runOff[i] = get32()
		}
		dn := int(get32())
		runData := buf[off : off+dn]
		c.runBytes = dn
		if len(c.runStart) > 0 {
			c.cnt = int(c.runStart[len(c.runStart)-1])
		}
		for r := range runOff {
			vo := int(runOff[r])
			end := dn
			if r+1 < len(runOff) {
				end = int(runOff[r+1]) - 4 // exclude next run's count prefix
			}
			if vo >= end {
				c.appendRun(types.Null())
				continue
			}
			v, _ := types.DecodeVar(runData[vo:], c.kind)
			c.appendRun(v)
		}
		return c
	}
	n := int(get32())
	offs := make([]uint32, n)
	for i := range offs {
		offs[i] = get32()
	}
	dn := int(get32())
	data := buf[off : off+dn]
	c.dataBytes = dn
	if n > 0 {
		c.cnt = n - 1
	}
	c.alloc(c.cnt)
	for p := 0; p < c.cnt; p++ {
		if offs[p] == offs[p+1] {
			c.setUncompressed(p, types.Null())
			continue
		}
		v, _ := types.DecodeVar(data[offs[p]:], c.kind)
		c.setUncompressed(p, v)
	}
	return c
}

// base is the merged, immutable portion of a column store: every column in
// the same position order, the offset array (position -> row_id) and the
// position array (row_id -> position).
type base struct {
	rowIDs []schema.RowID
	pos    map[schema.RowID]int
	cols   []*colData
}

// buildBase constructs the merged representation from full rows. If sortBy
// is a valid column, positions are ordered by that column's value (ties by
// row_id); otherwise by row_id.
func buildBase(kinds []types.Kind, rows []schema.Row, sortBy schema.ColID, compress bool) *base {
	sorted := make([]schema.Row, len(rows))
	copy(sorted, rows)
	if sortBy >= 0 && int(sortBy) < len(kinds) {
		sort.SliceStable(sorted, func(i, j int) bool {
			c := types.Compare(sorted[i].Vals[sortBy], sorted[j].Vals[sortBy])
			if c != 0 {
				return c < 0
			}
			return sorted[i].ID < sorted[j].ID
		})
	} else {
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	}
	b := &base{
		rowIDs: make([]schema.RowID, len(sorted)),
		pos:    make(map[schema.RowID]int, len(sorted)),
		cols:   make([]*colData, len(kinds)),
	}
	colVals := make([][]types.Value, len(kinds))
	for ci := range kinds {
		colVals[ci] = make([]types.Value, len(sorted))
	}
	for p, r := range sorted {
		b.rowIDs[p] = r.ID
		b.pos[r.ID] = p
		for ci := range kinds {
			colVals[ci][p] = r.Vals[ci]
		}
	}
	for ci, k := range kinds {
		b.cols[ci] = buildCol(k, colVals[ci], compress)
	}
	return b
}

// row materializes the projection cols of the row at position p.
func (b *base) row(p int, cols []schema.ColID) schema.Row {
	vals := make([]types.Value, len(cols))
	for i, c := range cols {
		vals[i] = b.cols[c].get(p)
	}
	return schema.Row{ID: b.rowIDs[p], Vals: vals}
}
