package colstore

// Native vectorized scan over the merged column representation. The fast
// path (no delta rows pending) never materializes rows: predicate
// conditions run as typed filter kernels composing a selection vector, RLE
// columns evaluate each run once and skip failing runs wholesale, and the
// output batch carries zero-copy views over the column arrays (RLE columns
// expand only the selected chunk into the batch's pooled buffers). With
// delta rows pending, the existing ordered merge streams through pooled
// batches instead — correctness is identical either way because the row
// Scan is itself a shim over this path.

import (
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// batchScan is one merged-view vectorized scan over base positions
// [lo, hi) with optional row-id clipping (the morsel range contract on
// value-sorted layouts, where positions interleave ids arbitrarily).
type batchScan struct {
	rowIDs     []schema.RowID
	col        func(schema.ColID) *colData
	sortBy     schema.ColID
	lo, hi     int
	overridden map[schema.RowID]bool
	live       []deltaRow
	cols       []schema.ColID
	pred       storage.Pred
	clip       bool
	idLo, idHi schema.RowID
	maxRows    int
}

func (s *batchScan) run(fn func(*storage.Batch) bool) {
	if s.maxRows <= 0 {
		s.maxRows = storage.DefaultBatchRows
	}
	b := storage.GetBatch(len(s.cols))
	defer storage.PutBatch(b)
	if len(s.overridden) == 0 && len(s.live) == 0 {
		s.fast(b, fn)
		return
	}
	s.slow(b, fn)
}

// fast vectorizes the delta-free case chunk by chunk.
func (s *batchScan) fast(b *storage.Batch, fn func(*storage.Batch) bool) {
	var scratchA, scratchB []int32
	useA := true
	nextBuf := func() []int32 {
		if useA {
			return scratchA[:0]
		}
		return scratchB[:0]
	}
	keepBuf := func(dst []int32) {
		if useA {
			scratchA = dst
		} else {
			scratchB = dst
		}
		useA = !useA
	}
	for p0 := s.lo; p0 < s.hi; p0 += s.maxRows {
		p1 := p0 + s.maxRows
		if p1 > s.hi {
			p1 = s.hi
		}
		n := p1 - p0

		var sel []int32 // nil = all n rows selected
		pruned := false
		for _, cond := range s.pred {
			dst := filterColRange(nextBuf(), sel, s.col(cond.Col), p0, p1, cond.Op, cond.Val)
			keepBuf(dst)
			sel = dst
			if len(sel) == 0 {
				pruned = true
				break
			}
		}
		if !pruned && s.clip {
			dst := nextBuf()
			if sel == nil {
				for p := p0; p < p1; p++ {
					if id := s.rowIDs[p]; id >= s.idLo && id < s.idHi {
						dst = append(dst, int32(p-p0))
					}
				}
			} else {
				for _, si := range sel {
					if id := s.rowIDs[p0+int(si)]; id >= s.idLo && id < s.idHi {
						dst = append(dst, si)
					}
				}
			}
			keepBuf(dst)
			sel = dst
			pruned = len(sel) == 0
		}
		if pruned {
			storage.RecordPrunedRows(n)
			continue
		}

		b.Reset(len(s.cols))
		b.SetRowIDsView(s.rowIDs[p0:p1])
		b.Sel = sel
		for i, cID := range s.cols {
			c := s.col(cID)
			if c.enc != encRLE {
				// Plain columns are zero-copy views; dictionary and FoR
				// columns hand out encoded views over the raw codes.
				b.Vecs[i] = c.viewVec(p0, p1)
			} else if rv, ok := runsVecEnabled(c, p0, p1); ok {
				b.Vecs[i] = rv
			} else {
				// NULL-bearing runs (or encodings toggled off for A/B
				// benchmarking): expand into pooled buffers.
				c.fillVec(&b.Vecs[i], p0, p1)
			}
		}
		if !storage.EmitBatch(b, fn) {
			return
		}
	}
}

// runsVecEnabled hands out a zero-copy run-length view unless encoded
// execution is toggled off (SetEncodings(false) restores the decode-first
// behavior end to end, for clean on/off benchmarking).
func runsVecEnabled(c *colData, p0, p1 int) (storage.Vec, bool) {
	if encodingsOff.Load() {
		return storage.Vec{}, false
	}
	return c.runsVec(p0, p1)
}

// filterColRange appends to dst the batch-relative indexes in [p0, p1)
// (restricted to sel when non-nil, ascending) whose value satisfies
// (op, val). RLE columns evaluate each run once and skip failing runs
// without expansion.
func filterColRange(dst []int32, sel []int32, c *colData, p0, p1 int, op storage.CmpOp, val types.Value) []int32 {
	if c.enc != encRLE {
		v := c.viewVec(p0, p1)
		return storage.FilterVec(dst, sel, p1-p0, &v, op, val)
	}
	nr := len(c.runStart) - 1
	if sel == nil {
		for r := c.runIndex(p0); r < nr && int(c.runStart[r]) < p1; r++ {
			if !op.Eval(c.runVal(r), val) {
				continue // whole run skipped
			}
			st := int(c.runStart[r])
			if st < p0 {
				st = p0
			}
			en := int(c.runStart[r+1])
			if en > p1 {
				en = p1
			}
			for p := st; p < en; p++ {
				dst = append(dst, int32(p-p0))
			}
		}
		return dst
	}
	r := c.runIndex(p0)
	cur, keep := -1, false
	for _, si := range sel {
		p := p0 + int(si)
		for r+1 < nr && int(c.runStart[r+1]) <= p {
			r++
		}
		if r != cur {
			keep = op.Eval(c.runVal(r), val)
			cur = r
		}
		if keep {
			dst = append(dst, si)
		}
	}
	return dst
}

// slow streams the ordered delta merge through pooled batches.
func (s *batchScan) slow(b *storage.Batch, fn func(*storage.Batch) bool) {
	b.Reset(len(s.cols))
	getCol := func(cID schema.ColID) func(int) types.Value { return s.col(cID).iter() }
	stopped := false
	mergeScan(s.rowIDs, getCol, s.sortBy, s.lo, s.hi, s.overridden, s.live, s.cols, s.pred, func(r schema.Row) bool {
		if s.clip && (r.ID < s.idLo || r.ID >= s.idHi) {
			return true
		}
		b.AppendRow(r.ID, r.Vals)
		if b.NumRows() >= s.maxRows {
			if !storage.EmitBatch(b, fn) {
				stopped = true
				return false
			}
			b.Reset(len(s.cols))
		}
		return true
	})
	if !stopped && b.NumRows() > 0 {
		storage.EmitBatch(b, fn)
	}
}
