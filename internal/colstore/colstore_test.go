package colstore

import (
	"fmt"
	"testing"
	"testing/quick"

	"proteus/internal/disksim"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

var testKinds = []types.Kind{types.KindInt64, types.KindString, types.KindFloat64}

func mkRow(id int64) schema.Row {
	return schema.Row{ID: schema.RowID(id), Vals: []types.Value{
		types.NewInt64(id * 10),
		types.NewString(fmt.Sprintf("str-%03d", id%7)),
		types.NewFloat64(float64(id) / 2),
	}}
}

// variants returns every column-store configuration behind the Store
// interface: memory/disk x plain/sorted/compressed.
func variants(t *testing.T) map[string]storage.Store {
	t.Helper()
	dev := disksim.New(disksim.Config{})
	return map[string]storage.Store{
		"mem":            NewMem(testKinds, storage.NoSort, false),
		"mem-sorted":     NewMem(testKinds, 1, false),
		"mem-rle":        NewMem(testKinds, storage.NoSort, true),
		"mem-sorted-rle": NewMem(testKinds, 1, true),
		"disk":           NewDisk(testKinds, dev, storage.NoSort, false),
		"disk-sorted":    NewDisk(testKinds, dev, 1, false),
		"disk-rle":       NewDisk(testKinds, dev, storage.NoSort, true),
	}
}

func loadN(t *testing.T, s storage.Store, n int64) {
	t.Helper()
	rows := make([]schema.Row, 0, n)
	for i := int64(1); i <= n; i++ {
		rows = append(rows, mkRow(i))
	}
	if err := s.Load(rows, 1); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGet(t *testing.T) {
	for name, s := range variants(t) {
		t.Run(name, func(t *testing.T) {
			loadN(t, s, 20)
			r, ok := s.Get(7, []schema.ColID{0, 1, 2}, storage.Latest)
			if !ok {
				t.Fatal("row 7 missing")
			}
			if r.Vals[0].Int() != 70 || r.Vals[1].Str() != "str-000" || r.Vals[2].Float() != 3.5 {
				t.Errorf("got %v", r.Vals)
			}
			if _, ok := s.Get(999, []schema.ColID{0}, storage.Latest); ok {
				t.Error("found nonexistent row")
			}
		})
	}
}

func TestInsertIntoDelta(t *testing.T) {
	for name, s := range variants(t) {
		t.Run(name, func(t *testing.T) {
			loadN(t, s, 5)
			if err := s.Insert(mkRow(100), 2); err != nil {
				t.Fatal(err)
			}
			if err := s.Insert(mkRow(100), 3); err == nil {
				t.Error("duplicate insert allowed")
			}
			if err := s.Insert(mkRow(3), 3); err == nil {
				t.Error("duplicate of base row allowed")
			}
			r, ok := s.Get(100, []schema.ColID{0}, storage.Latest)
			if !ok || r.Vals[0].Int() != 1000 {
				t.Errorf("delta read: %v %v", r, ok)
			}
			// Snapshot before the insert must not see it.
			if _, ok := s.Get(100, []schema.ColID{0}, 1); ok {
				t.Error("old snapshot sees new insert")
			}
		})
	}
}

func TestUpdateVersions(t *testing.T) {
	for name, s := range variants(t) {
		t.Run(name, func(t *testing.T) {
			loadN(t, s, 5)
			if err := s.Update(2, []schema.ColID{2}, []types.Value{types.NewFloat64(-1)}, 5); err != nil {
				t.Fatal(err)
			}
			r, _ := s.Get(2, []schema.ColID{2}, 4)
			if r.Vals[0].Float() != 1.0 {
				t.Errorf("old snapshot: %v", r.Vals)
			}
			r, _ = s.Get(2, []schema.ColID{0, 2}, 5)
			if r.Vals[0].Int() != 20 || r.Vals[1].Float() != -1 {
				t.Errorf("new snapshot: %v", r.Vals)
			}
			if err := s.Update(404, []schema.ColID{0}, []types.Value{types.NewInt64(0)}, 6); err == nil {
				t.Error("update of missing row allowed")
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, s := range variants(t) {
		t.Run(name, func(t *testing.T) {
			loadN(t, s, 5)
			if err := s.Delete(3, 7); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(3, []schema.ColID{0}, 6); !ok {
				t.Error("pre-delete snapshot lost the row")
			}
			if _, ok := s.Get(3, []schema.ColID{0}, 7); ok {
				t.Error("deleted row still visible")
			}
			if err := s.Delete(3, 8); err == nil {
				t.Error("double delete allowed")
			}
			var n int
			s.Scan([]schema.ColID{0}, nil, storage.Latest, func(schema.Row) bool { n++; return true })
			if n != 4 {
				t.Errorf("scan saw %d rows, want 4", n)
			}
		})
	}
}

func TestScanPredicateProjection(t *testing.T) {
	for name, s := range variants(t) {
		t.Run(name, func(t *testing.T) {
			loadN(t, s, 50)
			pred := storage.Pred{
				{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(100)},
				{Col: 0, Op: storage.CmpLt, Val: types.NewInt64(200)},
			}
			n, sum := 0, int64(0)
			s.Scan([]schema.ColID{0}, pred, storage.Latest, func(r schema.Row) bool {
				n++
				sum += r.Vals[0].Int()
				return true
			})
			// Rows 10..19 -> col0 = 100..190.
			if n != 10 || sum != 1450 {
				t.Errorf("scan n=%d sum=%d", n, sum)
			}
		})
	}
}

func TestScanMergesDelta(t *testing.T) {
	for name, s := range variants(t) {
		t.Run(name, func(t *testing.T) {
			loadN(t, s, 10)
			if err := s.Insert(mkRow(55), 2); err != nil {
				t.Fatal(err)
			}
			if err := s.Update(4, []schema.ColID{0}, []types.Value{types.NewInt64(-5)}, 3); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(9, 4); err != nil {
				t.Fatal(err)
			}
			got := map[schema.RowID]int64{}
			s.Scan([]schema.ColID{0}, nil, storage.Latest, func(r schema.Row) bool {
				got[r.ID] = r.Vals[0].Int()
				return true
			})
			if len(got) != 10 {
				t.Fatalf("scan saw %d rows: %v", len(got), got)
			}
			if got[55] != 550 || got[4] != -5 {
				t.Errorf("delta rows wrong: %v", got)
			}
			if _, ok := got[9]; ok {
				t.Error("deleted row scanned")
			}
		})
	}
}

func TestSortedScanOrder(t *testing.T) {
	// Sorted by column 1 (string, values cycle mod 7).
	for _, name := range []string{"mem-sorted", "mem-sorted-rle", "disk-sorted"} {
		t.Run(name, func(t *testing.T) {
			s := variants(t)[name]
			loadN(t, s, 30)
			// Add delta rows that must interleave in sorted positions.
			if err := s.Insert(mkRow(101), 2); err != nil {
				t.Fatal(err)
			}
			var prev types.Value
			first := true
			s.Scan([]schema.ColID{1}, nil, storage.Latest, func(r schema.Row) bool {
				if !first && types.Compare(prev, r.Vals[0]) > 0 {
					t.Errorf("out of order: %v after %v", r.Vals[0], prev)
				}
				prev, first = r.Vals[0], false
				return true
			})
		})
	}
}

func TestSortedRangeNarrowing(t *testing.T) {
	s := NewMem(testKinds, 0, false) // sorted by col 0
	loadN(t, s, 1000)
	pred := storage.Pred{
		{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(5000)},
		{Col: 0, Op: storage.CmpLe, Val: types.NewInt64(5050)},
	}
	n := 0
	s.Scan([]schema.ColID{0}, pred, storage.Latest, func(schema.Row) bool { n++; return true })
	if n != 6 { // 5000,5010,...,5050
		t.Errorf("narrowed scan saw %d rows, want 6", n)
	}
}

func TestRLECompressionShrinks(t *testing.T) {
	rows := make([]schema.Row, 1000)
	for i := range rows {
		rows[i] = schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(int64(i / 100)), // long runs
			types.NewString("constant"),
			types.NewFloat64(1.0),
		}}
	}
	plain := NewMem(testKinds, storage.NoSort, false)
	rle := NewMem(testKinds, storage.NoSort, true)
	if err := plain.Load(rows, 1); err != nil {
		t.Fatal(err)
	}
	if err := rle.Load(rows, 1); err != nil {
		t.Fatal(err)
	}
	pb, rb := plain.Stats().Bytes, rle.Stats().Bytes
	if rb >= pb/2 {
		t.Errorf("RLE bytes %d not <50%% of plain %d", rb, pb)
	}
	// And reads agree.
	for _, id := range []schema.RowID{0, 99, 500, 999} {
		a, _ := plain.Get(id, []schema.ColID{0, 1, 2}, storage.Latest)
		b, _ := rle.Get(id, []schema.ColID{0, 1, 2}, storage.Latest)
		for i := range a.Vals {
			if !types.Equal(a.Vals[i], b.Vals[i]) {
				t.Errorf("row %d col %d: %v vs %v", id, i, a.Vals[i], b.Vals[i])
			}
		}
	}
}

func TestMergeDelta(t *testing.T) {
	dev := disksim.New(disksim.Config{})
	for name, s := range map[string]interface {
		storage.Store
		MergeDelta(uint64) error
		DeltaRows() int
	}{
		"mem":  NewMem(testKinds, storage.NoSort, false),
		"disk": NewDisk(testKinds, dev, storage.NoSort, false),
	} {
		t.Run(name, func(t *testing.T) {
			loadN(t, s, 10)
			if err := s.Update(5, []schema.ColID{0}, []types.Value{types.NewInt64(555)}, 2); err != nil {
				t.Fatal(err)
			}
			if err := s.Insert(mkRow(20), 3); err != nil {
				t.Fatal(err)
			}
			if s.DeltaRows() != 2 {
				t.Errorf("delta rows = %d", s.DeltaRows())
			}
			if err := s.MergeDelta(3); err != nil {
				t.Fatal(err)
			}
			if s.DeltaRows() != 0 {
				t.Errorf("delta rows after merge = %d", s.DeltaRows())
			}
			r, ok := s.Get(5, []schema.ColID{0}, storage.Latest)
			if !ok || r.Vals[0].Int() != 555 {
				t.Errorf("post-merge read: %v %v", r, ok)
			}
			if got := s.ExtractAll(storage.Latest); len(got) != 11 {
				t.Errorf("rows after merge = %d", len(got))
			}
		})
	}
}

func TestExtractAllOrderedByRowID(t *testing.T) {
	for name, s := range variants(t) {
		t.Run(name, func(t *testing.T) {
			loadN(t, s, 15)
			out := s.ExtractAll(storage.Latest)
			if len(out) != 15 {
				t.Fatalf("extracted %d", len(out))
			}
			for i := 1; i < len(out); i++ {
				if out[i-1].ID >= out[i].ID {
					t.Fatal("not ordered by RowID")
				}
			}
		})
	}
}

func TestStatsRows(t *testing.T) {
	for name, s := range variants(t) {
		t.Run(name, func(t *testing.T) {
			loadN(t, s, 8)
			if err := s.Delete(1, 2); err != nil {
				t.Fatal(err)
			}
			if err := s.Insert(mkRow(50), 3); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Rows != 8 {
				t.Errorf("Rows = %d, want 8", st.Rows)
			}
			if st.DeltaRows != 2 {
				t.Errorf("DeltaRows = %d, want 2", st.DeltaRows)
			}
		})
	}
}

func TestColDataRoundTripSerialize(t *testing.T) {
	vals := []types.Value{
		types.NewInt64(1), types.NewInt64(1), types.NewInt64(2),
		types.NewInt64(3), types.NewInt64(3), types.NewInt64(3),
	}
	for _, rle := range []bool{false, true} {
		c := buildCol(types.KindInt64, vals, rle)
		got := deserializeCol(c.serialize())
		if got.n() != len(vals) {
			t.Fatalf("rle=%v n=%d", rle, got.n())
		}
		for p := range vals {
			if !types.Equal(got.get(p), vals[p]) {
				t.Errorf("rle=%v pos %d: %v", rle, p, got.get(p))
			}
		}
	}
}

// Property: scanning a random dataset with a random >= threshold returns
// exactly the matching rows, on every layout.
func TestScanMatchesNaiveProperty(t *testing.T) {
	dev := disksim.New(disksim.Config{})
	f := func(vals []int8, threshold int8) bool {
		rows := make([]schema.Row, len(vals))
		for i, v := range vals {
			rows[i] = schema.Row{ID: schema.RowID(i), Vals: []types.Value{
				types.NewInt64(int64(v)), types.NewString("x"), types.NewFloat64(0),
			}}
		}
		want := 0
		for _, v := range vals {
			if int64(v) >= int64(threshold) {
				want++
			}
		}
		pred := storage.Pred{{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(int64(threshold))}}
		layouts := []storage.Store{
			NewMem(testKinds, storage.NoSort, false),
			NewMem(testKinds, 0, false),
			NewMem(testKinds, 0, true),
			NewDisk(testKinds, dev, storage.NoSort, true),
		}
		for _, s := range layouts {
			if err := s.Load(rows, 1); err != nil {
				return false
			}
			got := 0
			s.Scan([]schema.ColID{0}, pred, storage.Latest, func(schema.Row) bool { got++; return true })
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
