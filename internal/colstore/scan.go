package colstore

import (
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// mergeScan streams the merged view of column base data and delta rows in
// layout order (sort-column order when sortBy is valid, row_id order
// otherwise), applying predicate and projection pushdown. It is shared by
// the memory and disk column stores; the caller supplies per-column
// accessors over whatever representation it holds.
//
//   - rowIDs: the base offset array (position -> row_id)
//   - getCol: returns a position-indexed accessor for one column; only the
//     columns the scan touches are requested (the columnar advantage)
//   - lo, hi: the base position range to visit (already narrowed by any
//     sorted-scan binary search)
//   - overridden: row_ids whose base entry is superseded by the delta
//   - live: delta rows that pass the predicate, in layout order
func mergeScan(
	rowIDs []schema.RowID,
	getCol func(schema.ColID) func(int) types.Value,
	sortBy schema.ColID,
	lo, hi int,
	overridden map[schema.RowID]bool,
	live []deltaRow,
	cols []schema.ColID,
	pred storage.Pred,
	fn func(schema.Row) bool,
) {
	needed := map[schema.ColID]func(int) types.Value{}
	need := func(c schema.ColID) {
		if _, ok := needed[c]; !ok {
			needed[c] = getCol(c)
		}
	}
	for _, c := range pred.Columns() {
		need(c)
	}
	for _, c := range cols {
		need(c)
	}
	if sortBy != storage.NoSort {
		need(sortBy)
	}

	emitBase := func(p int) bool {
		for _, c := range pred {
			if !c.Op.Eval(needed[c.Col](p), c.Val) {
				return true // filtered out; keep scanning
			}
		}
		vals := make([]types.Value, len(cols))
		for i, c := range cols {
			vals[i] = needed[c](p)
		}
		return fn(schema.Row{ID: rowIDs[p], Vals: vals})
	}
	emitDelta := func(dr deltaRow) bool {
		vals := make([]types.Value, len(cols))
		for i, c := range cols {
			vals[i] = dr.vals[c]
		}
		return fn(schema.Row{ID: dr.id, Vals: vals})
	}
	baseLess := func(p int, dr deltaRow) bool {
		if sortBy != storage.NoSort {
			c := types.Compare(needed[sortBy](p), dr.vals[sortBy])
			if c != 0 {
				return c < 0
			}
		}
		return rowIDs[p] < dr.id
	}

	di := 0
	for p := lo; p < hi; p++ {
		if overridden[rowIDs[p]] {
			continue
		}
		for di < len(live) && !baseLess(p, live[di]) {
			if !emitDelta(live[di]) {
				return
			}
			di++
		}
		if !emitBase(p) {
			return
		}
	}
	for ; di < len(live); di++ {
		if !emitDelta(live[di]) {
			return
		}
	}
}

// prepareDelta splits a delta snapshot into the overridden-id set and the
// predicate-passing live rows ordered by the layout's sort key.
func prepareDelta(drows []deltaRow, sortBy schema.ColID, pred storage.Pred) (map[schema.RowID]bool, []deltaRow) {
	overridden := make(map[schema.RowID]bool, len(drows))
	live := drows[:0:0]
	for _, dr := range drows {
		overridden[dr.id] = true
		if !dr.deleted && pred.Match(dr.vals) {
			live = append(live, dr)
		}
	}
	if sortBy != storage.NoSort {
		sortDeltaRows(live, sortBy)
	}
	return overridden, live
}
