package colstore

// Tests for the dictionary and frame-of-reference encodings: selection by
// buildCol, serialize round-trips, point reads through the disk store's
// per-encoding index, and a randomized differential proving encoded scans
// return exactly what the decoded (encodings-off) path returns.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"proteus/internal/disksim"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

func TestChooseEncoding(t *testing.T) {
	strs := func(n int, distinct int) []types.Value {
		out := make([]types.Value, n)
		for i := range out {
			out[i] = types.NewString(fmt.Sprintf("value-%04d", i%distinct))
		}
		return out
	}
	ints := func(n int, base, rng int64) []types.Value {
		out := make([]types.Value, n)
		for i := range out {
			out[i] = types.NewInt64(base + int64(i)%rng)
		}
		return out
	}
	cases := []struct {
		name string
		kind types.Kind
		vals []types.Value
		want colEncoding
	}{
		{"low-card strings pick dict", types.KindString, strs(512, 3), encDict},
		{"narrow ints pick FoR", types.KindInt64, ints(512, 1_000_000, 100), encFoR},
		{"long runs pick RLE", types.KindInt64, func() []types.Value {
			out := make([]types.Value, 512)
			for i := range out {
				out[i] = types.NewInt64(int64(i / 128))
			}
			return out
		}(), encRLE},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := buildCol(tc.kind, tc.vals, true)
			if c.enc != tc.want {
				t.Errorf("enc = %v, want %v", c.enc, tc.want)
			}
			for p, v := range tc.vals {
				if !types.Equal(c.get(p), v) {
					t.Fatalf("pos %d: got %v, want %v", p, c.get(p), v)
				}
			}
			if c.bytes() >= len(tc.vals)*12 {
				t.Errorf("encoded column not smaller than plain: %d bytes for %d values", c.bytes(), len(tc.vals))
			}
		})
	}
	// NULLs disqualify the code encodings: a NULL has no slot in code order.
	withNull := strs(256, 3)
	withNull[100] = types.Null()
	if c := buildCol(types.KindString, withNull, true); c.enc == encDict {
		t.Error("NULL-bearing column must not pick dict")
	}
	wideInts := []types.Value{types.NewInt64(0), types.NewInt64(1 << 40)}
	if c := buildCol(types.KindInt64, wideInts, true); c.enc == encFoR {
		t.Error("range beyond uint32 must not pick FoR")
	}
}

func TestSetEncodingsToggle(t *testing.T) {
	prev := SetEncodings(false)
	defer SetEncodings(prev)
	vals := make([]types.Value, 128)
	for i := range vals {
		vals[i] = types.NewString(fmt.Sprintf("v%d", i%2))
	}
	if c := buildCol(types.KindString, vals, true); c.enc != encRLE {
		t.Errorf("with encodings off, compressed build should fall back to RLE, got %v", c.enc)
	}
	SetEncodings(true)
	if c := buildCol(types.KindString, vals, true); c.enc != encRLE && c.enc != encDict {
		t.Errorf("unexpected encoding %v", c.enc)
	}
}

// TestEncodedSerializeRoundTrip proves serialize/deserializeCol preserve
// the encoding and every value for all four encodings.
func TestEncodedSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		kind types.Kind
		vals []types.Value
		want colEncoding
	}{
		{"dict", types.KindString, nil, encDict},
		{"for", types.KindInt64, nil, encFoR},
		{"rle", types.KindInt64, nil, encRLE},
		{"plain", types.KindFloat64, nil, encPlain},
	}
	cases[0].vals = make([]types.Value, 300)
	for i := range cases[0].vals {
		cases[0].vals[i] = types.NewString(fmt.Sprintf("s-%d", rng.Intn(5)))
	}
	cases[1].vals = make([]types.Value, 300)
	for i := range cases[1].vals {
		cases[1].vals[i] = types.NewInt64(5_000_000 + int64(rng.Intn(900)))
	}
	cases[2].vals = make([]types.Value, 300)
	for i := range cases[2].vals {
		cases[2].vals[i] = types.NewInt64(int64(i / 100))
	}
	cases[3].vals = make([]types.Value, 300)
	for i := range cases[3].vals {
		cases[3].vals[i] = types.NewFloat64(rng.Float64())
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			compress := tc.want != encPlain
			c := buildCol(tc.kind, tc.vals, compress)
			if c.enc != tc.want {
				t.Fatalf("built enc = %v, want %v", c.enc, tc.want)
			}
			got := deserializeCol(c.serialize())
			if got.enc != tc.want {
				t.Errorf("round-trip enc = %v, want %v", got.enc, tc.want)
			}
			if got.n() != len(tc.vals) {
				t.Fatalf("n = %d, want %d", got.n(), len(tc.vals))
			}
			for p, v := range tc.vals {
				if !types.Equal(got.get(p), v) {
					t.Fatalf("pos %d: got %v, want %v", p, got.get(p), v)
				}
			}
		})
	}
}

// encTestRows builds rows whose columns attract all encodings under a
// compressed layout: col 0 narrow ints (FoR), col 1 low-cardinality
// strings (dict), col 2 random floats (plain).
func encTestRows(rng *rand.Rand, n int) []schema.Row {
	rows := make([]schema.Row, n)
	for i := range rows {
		rows[i] = schema.Row{ID: schema.RowID(i), Vals: []types.Value{
			types.NewInt64(10_000 + int64(rng.Intn(50))),
			types.NewString(fmt.Sprintf("cat-%d", rng.Intn(6))),
			types.NewFloat64(rng.Float64()),
		}}
	}
	return rows
}

// TestEncodedScanDifferential loads identical data with encodings on and
// off and requires every scan — string equality and inequality, int
// ranges, projections — to return identical rows in identical order, on
// both the memory and disk stores.
func TestEncodedScanDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rows := encTestRows(rng, 2000)
	preds := []storage.Pred{
		nil,
		{{Col: 1, Op: storage.CmpEq, Val: types.NewString("cat-3")}},
		{{Col: 1, Op: storage.CmpNe, Val: types.NewString("cat-3")}},
		{{Col: 1, Op: storage.CmpGt, Val: types.NewString("cat-1")}},
		{{Col: 1, Op: storage.CmpEq, Val: types.NewString("absent")}},
		{{Col: 0, Op: storage.CmpLt, Val: types.NewInt64(10_020)}},
		{{Col: 0, Op: storage.CmpGe, Val: types.NewInt64(10_045)}},
		{{Col: 0, Op: storage.CmpEq, Val: types.NewInt64(9)}}, // below base
		{{Col: 0, Op: storage.CmpLe, Val: types.NewInt64(1 << 40)}},
		{{Col: 0, Op: storage.CmpGt, Val: types.NewInt64(10_010)},
			{Col: 1, Op: storage.CmpEq, Val: types.NewString("cat-0")}},
	}
	scan := func(s storage.Store, pred storage.Pred) []schema.Row {
		var out []schema.Row
		s.Scan([]schema.ColID{0, 1, 2}, pred, storage.Latest, func(r schema.Row) bool {
			out = append(out, r)
			return true
		})
		return out
	}
	mkStores := func() []storage.Store {
		return []storage.Store{
			NewMem(testKinds, storage.NoSort, true),
			NewMem(testKinds, 1, true),
			NewDisk(testKinds, disksim.New(disksim.Config{}), storage.NoSort, true),
		}
	}

	prev := SetEncodings(false)
	defer SetEncodings(prev)
	plainStores := mkStores()
	for _, s := range plainStores {
		if err := s.Load(rows, 1); err != nil {
			t.Fatal(err)
		}
	}
	SetEncodings(true)
	encStores := mkStores()
	for _, s := range encStores {
		if err := s.Load(rows, 1); err != nil {
			t.Fatal(err)
		}
	}
	for si := range encStores {
		if encStores[si].Stats().EncodedBytes == 0 {
			t.Errorf("store %d: no encoded bytes reported", si)
		}
		for pi, pred := range preds {
			got := scan(encStores[si], pred)
			want := scan(plainStores[si], pred)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("store %d pred %d: encoded scan returned %d rows, decoded %d",
					si, pi, len(got), len(want))
			}
		}
		// Point reads exercise the per-encoding disk index.
		for _, id := range []schema.RowID{0, 777, 1999} {
			got, ok1 := encStores[si].Get(id, []schema.ColID{0, 1, 2}, storage.Latest)
			want, ok2 := plainStores[si].Get(id, []schema.ColID{0, 1, 2}, storage.Latest)
			if ok1 != ok2 || !reflect.DeepEqual(got, want) {
				t.Fatalf("store %d row %d: encoded get %v/%v, decoded %v/%v", si, id, got, ok1, want, ok2)
			}
		}
	}
}

// FuzzColRoundTrip fuzzes the serialize round-trip across encodings: any
// generated column must deserialize to identical values with the same
// encoding choice.
func FuzzColRoundTrip(f *testing.F) {
	f.Add(int64(1), 50, 3, true)
	f.Add(int64(2), 200, 70, true)
	f.Add(int64(3), 10, 1, false)
	f.Add(int64(4), 500, 10000, true)
	f.Fuzz(func(t *testing.T, seed int64, n, card int, compress bool) {
		if n < 0 || n > 2000 || card < 1 || card > 1<<20 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		kinds := []types.Kind{types.KindInt64, types.KindString, types.KindFloat64}
		for _, kind := range kinds {
			vals := make([]types.Value, n)
			for i := range vals {
				if rng.Intn(20) == 0 {
					vals[i] = types.Null()
					continue
				}
				switch kind {
				case types.KindInt64:
					vals[i] = types.NewInt64(rng.Int63n(int64(card)) - int64(card)/2)
				case types.KindString:
					vals[i] = types.NewString(fmt.Sprintf("k%d", rng.Intn(card)))
				default:
					vals[i] = types.NewFloat64(float64(rng.Intn(card)))
				}
			}
			c := buildCol(kind, vals, compress)
			got := deserializeCol(c.serialize())
			if got.enc != c.enc || got.n() != n {
				t.Fatalf("kind %v: enc %v->%v n %d->%d", kind, c.enc, got.enc, n, got.n())
			}
			for p := 0; p < n; p++ {
				if !types.Equal(got.get(p), vals[p]) {
					t.Fatalf("kind %v pos %d: got %v, want %v", kind, p, got.get(p), vals[p])
				}
			}
		}
	})
}
