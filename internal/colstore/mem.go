package colstore

import (
	"fmt"
	"sort"
	"sync"

	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Mem is the in-memory column store. Merged data lives in per-column data
// arrays with index arrays (§4.1.2); inserts, updates and deletes buffer in
// the delta store until MergeDelta folds them in. The layout may maintain a
// total sort order over one column and/or RLE compression.
type Mem struct {
	mu     sync.RWMutex
	kinds  []types.Kind
	base   *base
	delta  *deltaStore
	layout storage.Layout
}

// NewMem creates an empty in-memory column store with the given sort order
// (storage.NoSort for row_id order) and compression setting.
func NewMem(kinds []types.Kind, sortBy schema.ColID, compressed bool) *Mem {
	return &Mem{
		kinds: kinds,
		base:  buildBase(kinds, nil, sortBy, compressed),
		delta: newDelta(),
		layout: storage.Layout{
			Format: storage.ColumnFormat, Tier: storage.MemoryTier,
			SortBy: sortBy, Compressed: compressed,
		},
	}
}

// Layout implements storage.Store.
func (m *Mem) Layout() storage.Layout { return m.layout }

// currentLocked returns the row's newest values (delta first, then base).
func (m *Mem) currentLocked(id schema.RowID) ([]types.Value, bool) {
	if vals, del, ok := m.delta.visible(id, storage.Latest); ok {
		if del {
			return nil, false
		}
		return vals, true
	}
	if p, ok := m.base.pos[id]; ok {
		r := m.base.row(p, allCols(len(m.kinds)))
		return r.Vals, true
	}
	return nil, false
}

// Insert implements storage.Store.
func (m *Mem) Insert(row schema.Row, ver uint64) error {
	if len(row.Vals) != len(m.kinds) {
		return fmt.Errorf("colstore: %d values for %d columns", len(row.Vals), len(m.kinds))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, live := m.currentLocked(row.ID); live {
		return fmt.Errorf("colstore: duplicate row %d", row.ID)
	}
	vals := make([]types.Value, len(row.Vals))
	copy(vals, row.Vals)
	m.delta.put(row.ID, vals, ver, false)
	return nil
}

// Update implements storage.Store.
func (m *Mem) Update(id schema.RowID, cols []schema.ColID, vals []types.Value, ver uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, live := m.currentLocked(id)
	if !live {
		return fmt.Errorf("colstore: update of missing row %d", id)
	}
	next := make([]types.Value, len(cur))
	copy(next, cur)
	for i, c := range cols {
		if int(c) >= len(m.kinds) {
			return fmt.Errorf("colstore: column %d out of range", c)
		}
		next[c] = vals[i]
	}
	m.delta.put(id, next, ver, false)
	return nil
}

// Delete implements storage.Store.
func (m *Mem) Delete(id schema.RowID, ver uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, live := m.currentLocked(id); !live {
		return fmt.Errorf("colstore: delete of missing row %d", id)
	}
	m.delta.put(id, nil, ver, true)
	return nil
}

// Get implements storage.Store. Point reads combine the delta store with
// the column data located through the position index array.
func (m *Mem) Get(id schema.RowID, cols []schema.ColID, snap uint64) (schema.Row, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if vals, del, ok := m.delta.visible(id, snap); ok {
		if del {
			return schema.Row{}, false
		}
		out := make([]types.Value, len(cols))
		for i, c := range cols {
			out[i] = vals[c]
		}
		return schema.Row{ID: id, Vals: out}, true
	}
	p, ok := m.base.pos[id]
	if !ok {
		return schema.Row{}, false
	}
	return m.base.row(p, cols), true
}

// sortedRange narrows the base position range [lo, hi) using predicate
// conditions on the sort column via binary search (the "sorted scan"
// operator of Table 1).
func (m *Mem) sortedRange(pred storage.Pred) (int, int) {
	n := len(m.base.rowIDs)
	lo, hi := 0, n
	if m.layout.SortBy == storage.NoSort {
		return lo, hi
	}
	col := m.base.cols[m.layout.SortBy]
	for _, c := range pred {
		if c.Col != m.layout.SortBy {
			continue
		}
		switch c.Op {
		case storage.CmpEq:
			l := sort.Search(n, func(i int) bool { return types.Compare(col.get(i), c.Val) >= 0 })
			h := sort.Search(n, func(i int) bool { return types.Compare(col.get(i), c.Val) > 0 })
			lo, hi = max(lo, l), min(hi, h)
		case storage.CmpGe:
			l := sort.Search(n, func(i int) bool { return types.Compare(col.get(i), c.Val) >= 0 })
			lo = max(lo, l)
		case storage.CmpGt:
			l := sort.Search(n, func(i int) bool { return types.Compare(col.get(i), c.Val) > 0 })
			lo = max(lo, l)
		case storage.CmpLe:
			h := sort.Search(n, func(i int) bool { return types.Compare(col.get(i), c.Val) > 0 })
			hi = min(hi, h)
		case storage.CmpLt:
			h := sort.Search(n, func(i int) bool { return types.Compare(col.get(i), c.Val) >= 0 })
			hi = min(hi, h)
		}
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Scan implements storage.Store via the batch shim: the vectorized path
// below is the only scan implementation, and rows are boxed out of its
// batches one at a time for legacy callers.
func (m *Mem) Scan(cols []schema.ColID, pred storage.Pred, snap uint64, fn func(schema.Row) bool) {
	storage.ScanViaBatches(m, cols, pred, snap, fn)
}

// ScanBatches implements storage.BatchScanner natively. Only the columns
// named by the predicate and projection are touched (the columnar
// advantage of Figure 3); when the layout is sorted, predicate conditions
// on the sort column narrow the scanned range by binary search, and output
// arrives in sort order with delta rows merged into their ordered
// positions. With no delta pending, batches carry zero-copy views over the
// column arrays and RLE runs are filtered without expansion.
func (m *Mem) ScanBatches(cols []schema.ColID, pred storage.Pred, snap uint64, maxRows int, fn func(*storage.Batch) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()

	sortBy := m.layout.SortBy
	overridden, live := prepareDelta(m.delta.snapshot(snap), sortBy, pred)
	lo, hi := m.sortedRange(pred)

	s := &batchScan{
		rowIDs: m.base.rowIDs,
		col:    func(c schema.ColID) *colData { return m.base.cols[c] },
		sortBy: sortBy, lo: lo, hi: hi,
		overridden: overridden, live: live,
		cols: cols, pred: pred, maxRows: maxRows,
	}
	s.run(fn)
}

// MorselBounds implements storage.RangeScanner. When the layout keeps
// row_id order the base offset array is ascending, so cut points are read
// straight off it; a value-sorted layout scatters ids across positions and
// returns nil (the whole store is one morsel — cross-partition parallelism
// still applies).
func (m *Mem) MorselBounds(targetRows int) []schema.RowID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if targetRows <= 0 || m.layout.SortBy != storage.NoSort {
		return nil
	}
	ids := m.base.rowIDs
	if len(ids) == 0 {
		return nil
	}
	bounds := make([]schema.RowID, 0, len(ids)/targetRows+2)
	for i := 0; i < len(ids); i += targetRows {
		bounds = append(bounds, ids[i])
	}
	bounds = append(bounds, ids[len(ids)-1]+1)
	return bounds
}

// ScanRange implements storage.RangeScanner via the batch shim.
func (m *Mem) ScanRange(cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID, snap uint64, fn func(schema.Row) bool) {
	storage.ScanRangeViaBatches(m, cols, pred, lo, hi, snap, fn)
}

// ScanBatchesRange implements storage.BatchRangeScanner: ScanBatches
// restricted to lo <= id < hi. Delta rows are pre-filtered to the id
// range; base positions narrow by binary search when the offset array is
// id-ordered, and fall back to an id clip on the sorted-layout path.
// (Delta rows excluded by the pre-filter have base twins outside [lo,hi)
// too, so the missing overridden entries cannot leak a superseded base
// row.)
func (m *Mem) ScanBatchesRange(cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID, snap uint64, maxRows int, fn func(*storage.Batch) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()

	sortBy := m.layout.SortBy
	drows := m.delta.snapshot(snap)
	inRange := drows[:0:0]
	for _, dr := range drows {
		if dr.id >= lo && dr.id < hi {
			inRange = append(inRange, dr)
		}
	}
	overridden, live := prepareDelta(inRange, sortBy, pred)

	plo, phi := m.sortedRange(pred)
	s := &batchScan{
		rowIDs:     m.base.rowIDs,
		col:        func(c schema.ColID) *colData { return m.base.cols[c] },
		sortBy:     sortBy,
		overridden: overridden, live: live,
		cols: cols, pred: pred, maxRows: maxRows,
	}
	if sortBy == storage.NoSort {
		n := len(m.base.rowIDs)
		l := sort.Search(n, func(i int) bool { return m.base.rowIDs[i] >= lo })
		h := sort.Search(n, func(i int) bool { return m.base.rowIDs[i] >= hi })
		s.lo, s.hi = max(plo, l), min(phi, h)
	} else {
		// Value-sorted positions interleave ids arbitrarily; clip per row.
		s.lo, s.hi = plo, phi
		s.clip, s.idLo, s.idHi = true, lo, hi
	}
	s.run(fn)
}

// Load implements storage.Store, bulk loading into fresh column arrays.
func (m *Mem) Load(rows []schema.Row, ver uint64) error {
	for _, r := range rows {
		if len(r.Vals) != len(m.kinds) {
			return fmt.Errorf("colstore: row %d has %d values for %d columns", r.ID, len(r.Vals), len(m.kinds))
		}
	}
	nb := buildBase(m.kinds, rows, m.layout.SortBy, m.layout.Compressed)
	m.mu.Lock()
	m.base = nb
	m.delta.clear()
	m.mu.Unlock()
	return nil
}

// ExtractAll implements storage.Store (ordered by RowID regardless of the
// layout's sort order).
func (m *Mem) ExtractAll(snap uint64) []schema.Row {
	var out []schema.Row
	m.Scan(allCols(len(m.kinds)), nil, snap, func(r schema.Row) bool {
		out = append(out, r)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MergeDelta folds buffered delta updates into a new version of the column
// data (§4.1.2), producing fresh merged arrays and clearing the delta.
func (m *Mem) MergeDelta(ver uint64) error {
	rows := m.ExtractAll(ver)
	return m.Load(rows, ver)
}

// DeltaRows reports the number of buffered delta entries.
func (m *Mem) DeltaRows() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.delta.size()
}

// Stats implements storage.Store.
func (m *Mem) Stats() storage.Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	bytes := 8 * len(m.base.rowIDs) // offset array
	encoded := 0
	for _, c := range m.base.cols {
		cb := c.bytes()
		bytes += cb
		if c.enc != encPlain {
			encoded += cb
		}
	}
	bytes += m.delta.bytes()
	live := len(m.base.rowIDs)
	for _, dr := range m.delta.snapshot(storage.Latest) {
		_, inBase := m.base.pos[dr.id]
		switch {
		case dr.deleted && inBase:
			live--
		case !dr.deleted && !inBase:
			live++
		}
	}
	return storage.Stats{
		Rows:         live,
		Bytes:        bytes,
		Versions:     len(m.base.rowIDs) + m.delta.versions(),
		DeltaRows:    m.delta.size(),
		EncodedBytes: encoded,
	}
}

func allCols(n int) []schema.ColID {
	out := make([]schema.ColID, n)
	for i := range out {
		out[i] = schema.ColID(i)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
