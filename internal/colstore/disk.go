package colstore

import (
	"fmt"
	"sort"
	"sync"

	"proteus/internal/disksim"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// Disk is the on-disk column store. Following the paper's Parquet-like
// format (§4.1.2), each column is serialized with its metadata (index
// arrays) first, then its value bytes. The index arrays are cached in
// memory so point reads cost one ranged block access per touched column,
// and scans read only the blocks of projected/filtered columns — preserving
// the columnar I/O advantage on the disk tier. Updates buffer in the
// in-memory delta store and are folded in by MergeDelta.
type Disk struct {
	mu    sync.RWMutex
	kinds []types.Kind
	dev   *disksim.Device

	rowIDs []schema.RowID
	pos    map[schema.RowID]int
	meta   []diskColMeta
	delta  *deltaStore

	imageBytes   int
	encodedBytes int // image bytes held in non-plain encodings
	reads        int
	writes       int
	layout       storage.Layout
}

// diskColMeta is the in-memory metadata for one on-disk column: the cached
// serialization index (encoding, data offset, per-encoding index arrays)
// plus the block handle.
type diskColMeta struct {
	colIndex
	block    disksim.BlockID
	hasBlock bool
	encBytes int // serialized bytes for non-plain encodings, 0 for plain
	// Sort-column values are additionally cached for binary search; nil for
	// other columns. (Zone-map-scale metadata, kept per §4.1.3's precedent
	// of memory-resident per-partition metadata.)
	sortVals []types.Value
}

// NewDisk creates an empty on-disk column store backed by dev.
func NewDisk(kinds []types.Kind, dev *disksim.Device, sortBy schema.ColID, compressed bool) *Disk {
	return &Disk{
		kinds: kinds,
		dev:   dev,
		pos:   make(map[schema.RowID]int),
		meta:  make([]diskColMeta, len(kinds)),
		delta: newDelta(),
		layout: storage.Layout{
			Format: storage.ColumnFormat, Tier: storage.DiskTier,
			SortBy: sortBy, Compressed: compressed,
		},
	}
}

// Layout implements storage.Store.
func (d *Disk) Layout() storage.Layout { return d.layout }

// Load implements storage.Store: builds merged columns and writes one block
// per column.
func (d *Disk) Load(rows []schema.Row, ver uint64) error {
	for _, r := range rows {
		if len(r.Vals) != len(d.kinds) {
			return fmt.Errorf("colstore: row %d has %d values for %d columns", r.ID, len(r.Vals), len(d.kinds))
		}
	}
	b := buildBase(d.kinds, rows, d.layout.SortBy, d.layout.Compressed)

	meta := make([]diskColMeta, len(d.kinds))
	total := 0
	encTotal := 0
	for ci, c := range b.cols {
		img, idx := c.serializeWithIndex()
		blk, err := d.dev.Write(img)
		if err != nil {
			return err
		}
		m := diskColMeta{colIndex: idx, block: blk, hasBlock: true}
		if idx.enc != encPlain {
			m.encBytes = len(img)
			encTotal += len(img)
		}
		if schema.ColID(ci) == d.layout.SortBy {
			n := c.n()
			m.sortVals = make([]types.Value, n)
			it := c.iter()
			for p := 0; p < n; p++ {
				m.sortVals[p] = it(p)
			}
		}
		meta[ci] = m
		total += len(img)
	}

	d.mu.Lock()
	old := d.meta
	d.rowIDs = b.rowIDs
	d.pos = b.pos
	d.meta = meta
	d.delta.clear()
	d.imageBytes = total
	d.encodedBytes = encTotal
	d.writes += len(meta)
	d.mu.Unlock()

	for _, m := range old {
		if m.hasBlock {
			_ = d.dev.Free(m.block)
		}
	}
	return nil
}

// readCell reads one cell from disk through the cached index arrays.
func (d *Disk) readCell(ci schema.ColID, p int) (types.Value, error) {
	d.mu.RLock()
	m := d.meta[ci]
	kind := d.kinds[ci]
	d.mu.RUnlock()
	if !m.hasBlock {
		return types.Null(), fmt.Errorf("colstore: column %d has no disk block", ci)
	}
	switch m.enc {
	case encDict, encFoR:
		// One ranged read of the packed code; the dictionary (or base) is
		// memory-resident metadata.
		cb, err := d.dev.ReadRange(m.block, m.dataOff+p*m.codeW, m.codeW)
		if err != nil {
			return types.Null(), err
		}
		d.mu.Lock()
		d.reads++
		d.mu.Unlock()
		code := readCodeAt(cb, m.codeW)
		if m.enc == encDict {
			return types.NewString(m.dict[code]), nil
		}
		return types.Value{K: kind, I: m.forBase + int64(code)}, nil
	}
	var off, n int
	if m.enc == encRLE {
		r := sort.Search(len(m.runStart)-1, func(i int) bool { return m.runStart[i+1] > uint32(p) })
		off = int(m.runOff[r])
		if r+1 < len(m.runOff) {
			n = int(m.runOff[r+1]) - 4 - off // exclude next run's count prefix
		} else {
			n = -1
		}
	} else {
		off = int(m.offs[p])
		n = int(m.offs[p+1]) - off
	}
	var buf []byte
	var err error
	if n < 0 {
		full, e := d.dev.Read(m.block)
		if e != nil {
			return types.Null(), e
		}
		buf = full[m.dataOff+off:]
	} else {
		buf, err = d.dev.ReadRange(m.block, m.dataOff+off, n)
		if err != nil {
			return types.Null(), err
		}
	}
	d.mu.Lock()
	d.reads++
	d.mu.Unlock()
	v, _ := types.DecodeVar(buf, kind)
	return v, nil
}

// loadColumn reads and deserializes an entire column block.
func (d *Disk) loadColumn(ci schema.ColID) (*colData, error) {
	d.mu.RLock()
	m := d.meta[ci]
	d.mu.RUnlock()
	if !m.hasBlock {
		return buildCol(d.kinds[ci], nil, false), nil
	}
	img, err := d.dev.Read(m.block)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.reads++
	d.mu.Unlock()
	return deserializeCol(img), nil
}

// existsLocked reports whether id is live at the latest version. Requires
// d.mu held (read or write); consults only in-memory state.
func (d *Disk) existsLocked(id schema.RowID) bool {
	if _, del, ok := d.delta.visible(id, storage.Latest); ok {
		return !del
	}
	_, inBase := d.pos[id]
	return inBase
}

// Insert implements storage.Store.
func (d *Disk) Insert(row schema.Row, ver uint64) error {
	if len(row.Vals) != len(d.kinds) {
		return fmt.Errorf("colstore: %d values for %d columns", len(row.Vals), len(d.kinds))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.existsLocked(row.ID) {
		return fmt.Errorf("colstore: duplicate row %d", row.ID)
	}
	vals := make([]types.Value, len(row.Vals))
	copy(vals, row.Vals)
	d.delta.put(row.ID, vals, ver, false)
	return nil
}

// Update implements storage.Store. The current row is fetched outside the
// write lock (disk reads sleep); the partition-level lock manager
// serializes writers, so the read-modify-write is not racy in practice.
func (d *Disk) Update(id schema.RowID, cols []schema.ColID, vals []types.Value, ver uint64) error {
	cur, ok := d.Get(id, allCols(len(d.kinds)), storage.Latest)
	if !ok {
		return fmt.Errorf("colstore: update of missing row %d", id)
	}
	next := cur.Vals
	for i, c := range cols {
		if int(c) >= len(d.kinds) {
			return fmt.Errorf("colstore: column %d out of range", c)
		}
		next[c] = vals[i]
	}
	d.mu.Lock()
	d.delta.put(id, next, ver, false)
	d.mu.Unlock()
	return nil
}

// Delete implements storage.Store.
func (d *Disk) Delete(id schema.RowID, ver uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.existsLocked(id) {
		return fmt.Errorf("colstore: delete of missing row %d", id)
	}
	d.delta.put(id, nil, ver, true)
	return nil
}

// Get implements storage.Store: one ranged block read per projected column.
func (d *Disk) Get(id schema.RowID, cols []schema.ColID, snap uint64) (schema.Row, bool) {
	d.mu.RLock()
	vals, del, ok := d.delta.visible(id, snap)
	p, inBase := d.pos[id]
	d.mu.RUnlock()
	if ok {
		if del {
			return schema.Row{}, false
		}
		out := make([]types.Value, len(cols))
		for i, c := range cols {
			out[i] = vals[c]
		}
		return schema.Row{ID: id, Vals: out}, true
	}
	if !inBase {
		return schema.Row{}, false
	}
	out := make([]types.Value, len(cols))
	for i, c := range cols {
		v, err := d.readCell(c, p)
		if err != nil {
			return schema.Row{}, false
		}
		out[i] = v
	}
	return schema.Row{ID: id, Vals: out}, true
}

// sortedRange narrows base positions using the cached sort-column values.
func (d *Disk) sortedRange(pred storage.Pred) (int, int) {
	n := len(d.rowIDs)
	lo, hi := 0, n
	if d.layout.SortBy == storage.NoSort {
		return lo, hi
	}
	sv := d.meta[d.layout.SortBy].sortVals
	if sv == nil {
		return lo, hi
	}
	for _, c := range pred {
		if c.Col != d.layout.SortBy {
			continue
		}
		switch c.Op {
		case storage.CmpEq:
			l := sort.Search(n, func(i int) bool { return types.Compare(sv[i], c.Val) >= 0 })
			h := sort.Search(n, func(i int) bool { return types.Compare(sv[i], c.Val) > 0 })
			lo, hi = max(lo, l), min(hi, h)
		case storage.CmpGe:
			lo = max(lo, sort.Search(n, func(i int) bool { return types.Compare(sv[i], c.Val) >= 0 }))
		case storage.CmpGt:
			lo = max(lo, sort.Search(n, func(i int) bool { return types.Compare(sv[i], c.Val) > 0 }))
		case storage.CmpLe:
			hi = min(hi, sort.Search(n, func(i int) bool { return types.Compare(sv[i], c.Val) > 0 }))
		case storage.CmpLt:
			hi = min(hi, sort.Search(n, func(i int) bool { return types.Compare(sv[i], c.Val) >= 0 }))
		}
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Scan implements storage.Store via the batch shim.
func (d *Disk) Scan(cols []schema.ColID, pred storage.Pred, snap uint64, fn func(schema.Row) bool) {
	storage.ScanViaBatches(d, cols, pred, snap, fn)
}

// ScanBatches implements storage.BatchScanner: reads only the column
// blocks the scan touches, then streams the merged view in layout order as
// columnar batches. The deserialized blocks are scan-local, so handing out
// vector views over their typed arrays is safe for the batch lifetime.
func (d *Disk) ScanBatches(cols []schema.ColID, pred storage.Pred, snap uint64, maxRows int, fn func(*storage.Batch) bool) {
	d.mu.RLock()
	rowIDs := d.rowIDs
	sortBy := d.layout.SortBy
	drows := d.delta.snapshot(snap)
	d.mu.RUnlock()

	overridden, live := prepareDelta(drows, sortBy, pred)
	lo, hi := d.sortedRange(pred)

	loaded := map[schema.ColID]*colData{}
	col := func(c schema.ColID) *colData {
		cd, ok := loaded[c]
		if !ok {
			var err error
			cd, err = d.loadColumn(c)
			if err != nil {
				cd = buildCol(d.kinds[c], make([]types.Value, len(rowIDs)), false)
			}
			loaded[c] = cd
		}
		return cd
	}
	s := &batchScan{
		rowIDs: rowIDs, col: col, sortBy: sortBy, lo: lo, hi: hi,
		overridden: overridden, live: live,
		cols: cols, pred: pred, maxRows: maxRows,
	}
	s.run(fn)
}

// ExtractAll implements storage.Store.
func (d *Disk) ExtractAll(snap uint64) []schema.Row {
	var out []schema.Row
	d.Scan(allCols(len(d.kinds)), nil, snap, func(r schema.Row) bool {
		out = append(out, r)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MergeDelta folds the delta store into new on-disk column blocks.
func (d *Disk) MergeDelta(ver uint64) error {
	rows := d.ExtractAll(ver)
	return d.Load(rows, ver)
}

// DeltaRows reports the number of buffered delta entries.
func (d *Disk) DeltaRows() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.delta.size()
}

// Stats implements storage.Store.
func (d *Disk) Stats() storage.Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	live := len(d.rowIDs)
	for _, dr := range d.delta.snapshot(storage.Latest) {
		_, inBase := d.pos[dr.id]
		switch {
		case dr.deleted && inBase:
			live--
		case !dr.deleted && !inBase:
			live++
		}
	}
	return storage.Stats{
		Rows:         live,
		Bytes:        d.imageBytes,
		Versions:     len(d.rowIDs) + d.delta.versions(),
		DeltaRows:    d.delta.size(),
		DiskReads:    d.reads,
		DiskWrites:   d.writes,
		EncodedBytes: d.encodedBytes,
	}
}
