// Package vclock abstracts the flow of time behind a Clock interface so
// the same engine code runs against the wall clock in production and
// against a discrete-event virtual clock (Sim) in simulation. Every
// latency the engine models — interconnect charges, tier I/O, retry
// backoff, background tickers — goes through a Clock, which is what lets
// cmd/proteus-sim run an hour of simulated diurnal traffic in seconds of
// wall time with reproducible results.
package vclock

import (
	"context"
	"time"
)

// Clock is the time source and sleeper the engine's layers are written
// against. Wall is the production implementation; Sim is the
// discrete-event implementation whose time advances only when the
// goroutines it drives are parked waiting on it.
type Clock interface {
	// Now reports the current (wall or virtual) time.
	Now() time.Time
	// Since is shorthand for Now().Sub(t).
	Since(t time.Time) time.Duration
	// Sleep parks the calling goroutine for d (non-positive returns
	// immediately).
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc runs f in its own goroutine once d has elapsed.
	AfterFunc(d time.Duration, f func()) *Timer
	// NewTimer returns a timer that delivers on C once d has elapsed.
	NewTimer(d time.Duration) *Timer
	// NewTicker returns a ticker that delivers on C every d.
	NewTicker(d time.Duration) *Ticker
}

// Timer is a clock-implementation-independent timer handle.
type Timer struct {
	C    <-chan time.Time
	wall *time.Timer
	stop func() bool
}

// Stop cancels the timer, reporting whether it was still pending.
func (t *Timer) Stop() bool {
	if t.wall != nil {
		return t.wall.Stop()
	}
	if t.stop != nil {
		return t.stop()
	}
	return false
}

// Ticker is a clock-implementation-independent ticker handle.
type Ticker struct {
	C    <-chan time.Time
	wall *time.Ticker
	stop func() bool
}

// Stop stops the ticker; no more ticks are delivered.
func (t *Ticker) Stop() {
	if t.wall != nil {
		t.wall.Stop()
		return
	}
	if t.stop != nil {
		t.stop()
	}
}

// Wall is the production clock: a stateless adapter over package time.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Wall) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (Wall) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// After implements Clock.
func (Wall) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (Wall) AfterFunc(d time.Duration, f func()) *Timer {
	return &Timer{wall: time.AfterFunc(d, f)}
}

// NewTimer implements Clock.
func (Wall) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, wall: t}
}

// NewTicker implements Clock.
func (Wall) NewTicker(d time.Duration) *Ticker {
	t := time.NewTicker(d)
	return &Ticker{C: t.C, wall: t}
}

// OrWall returns c, or the wall clock when c is nil — the idiom for
// optional Clock configuration fields.
func OrWall(c Clock) Clock {
	if c == nil {
		return Wall{}
	}
	return c
}

// Enter registers the calling goroutine as a clock-driven task when c is
// a Sim (the registration is what lets the Sim advance as soon as every
// driver is parked, instead of waiting out the idle-detection grace). It
// returns the matching leave function; on a Wall clock both are no-ops.
//
//	defer vclock.Enter(clk)()
func Enter(c Clock) func() {
	if s, ok := c.(*Sim); ok {
		s.Register()
		return s.Unregister
	}
	return func() {}
}

// Park marks the calling goroutine as blocked on a signal that only
// virtual-time progress can produce — an admission grant from a drip
// ticker, a group-commit flush kicked by a linger timer. On a Sim the
// goroutine counts like a clock sleeper for quiescence detection until
// the returned (idempotent) release runs, keeping the all-parked fast
// path live while waiters queue; unlike Sleep it schedules no event, so
// some other task must still drive the clock. No-op on other clocks.
func Park(c Clock) func() {
	if s, ok := c.(*Sim); ok {
		return s.park()
	}
	return func() {}
}

// SleepCtx sleeps for d on c, returning early with ctx.Err() when ctx is
// cancelled first. On a Sim clock the wait parks like any Sleep, so
// virtual time can advance through it.
func SleepCtx(ctx context.Context, c Clock, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if s, ok := c.(*Sim); ok {
		return s.sleepCtx(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
