package vclock

import (
	"container/heap"
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// SimConfig parameterizes a Sim clock.
type SimConfig struct {
	// Start is the virtual epoch (a fixed date by default, so runs are
	// reproducible byte-for-byte regardless of when they execute).
	Start time.Time
	// ParkGrace is the quiescence window used when every registered
	// goroutine is parked in the clock — the fast path. Default 20µs.
	ParkGrace time.Duration
	// IdleGrace is the quiescence window used when goroutines the clock
	// cannot see (blocked on channels, mid-computation) may still be
	// running — the conservative fallback. Default 500µs.
	IdleGrace time.Duration
}

// simEpoch is the default virtual epoch.
var simEpoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

const (
	evPending = iota
	evFired
	evCancelled
)

// simEvent is one heap entry: a timer/sleep wakeup, an AfterFunc, or a
// ticker arm.
type simEvent struct {
	at     time.Duration // virtual fire offset
	seq    uint64        // tiebreaker: schedule order
	ch     chan time.Time
	fn     func()
	period time.Duration // > 0 re-arms (ticker)
	owner  *simTicker    // ticker handle owning this arm, if any
	parked bool          // a goroutine is parked in Sleep on ch
	state  uint8
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event virtual clock: a min-heap of timestamped
// events whose logical time advances only when the system is quiescent —
// every clock-registered goroutine parked in a clock wait (the
// inference-sim ClusterEventQueue discipline), with a short
// generation-stability grace as the conservative fallback for goroutines
// the clock cannot observe (blocked on channels fed by parked work).
// Seconds of simulated time run in microseconds, and under a fixed seed
// the event order — pop by (timestamp, sequence) — is deterministic.
//
// The advance itself is performed by a single background goroutine
// started by NewSim and stopped by Stop.
type Sim struct {
	parkGrace time.Duration
	idleGrace time.Duration
	base      time.Time

	offset atomic.Int64  // virtual nanoseconds since base (lock-free reads)
	gen    atomic.Uint64 // bumped on every clock mutation (quiescence probe)

	mu      sync.Mutex
	cv      *sync.Cond // advancer waits here for pending events
	events  eventHeap
	seq     uint64
	active  int // registered driver goroutines
	parked  int // goroutines parked in clock waits
	stopped bool

	advances     atomic.Uint64 // total time advances
	idleAdvances atomic.Uint64 // advances taken via the fallback grace
}

// NewSim creates and starts a Sim clock.
func NewSim(cfg SimConfig) *Sim {
	s := &Sim{
		parkGrace: cfg.ParkGrace,
		idleGrace: cfg.IdleGrace,
		base:      cfg.Start,
	}
	if s.parkGrace <= 0 {
		s.parkGrace = 20 * time.Microsecond
	}
	if s.idleGrace <= 0 {
		s.idleGrace = 500 * time.Microsecond
	}
	if s.base.IsZero() {
		s.base = simEpoch
	}
	s.cv = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// Now implements Clock: the virtual time.
func (s *Sim) Now() time.Time { return s.base.Add(time.Duration(s.offset.Load())) }

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Elapsed reports how much virtual time has passed since the epoch.
func (s *Sim) Elapsed() time.Duration { return time.Duration(s.offset.Load()) }

// Advances reports how many discrete advances the clock has performed,
// and how many of them were taken via the conservative idle fallback
// rather than the all-parked fast path. A run whose fallback share is
// high has goroutines sleeping outside the clock's view.
func (s *Sim) Advances() (total, idleFallback uint64) {
	return s.advances.Load(), s.idleAdvances.Load()
}

// Register marks the calling goroutine as a clock-driven task: the clock
// may advance as soon as every registered task is parked in a clock
// wait. Pair with Unregister (vclock.Enter does both).
func (s *Sim) Register() {
	s.mu.Lock()
	s.active++
	s.gen.Add(1)
	s.mu.Unlock()
}

// Unregister reverses Register.
func (s *Sim) Unregister() {
	s.mu.Lock()
	s.active--
	s.gen.Add(1)
	s.cv.Signal()
	s.mu.Unlock()
}

// park marks the calling goroutine as blocked on a signal only
// virtual-time progress can produce (vclock.Park). It counts toward the
// all-parked fast path like a clock sleeper but schedules no event; the
// returned release is idempotent.
func (s *Sim) park() func() {
	s.mu.Lock()
	s.parked++
	s.gen.Add(1)
	s.cv.Signal()
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.parked--
			s.gen.Add(1)
			s.mu.Unlock()
		})
	}
}

// scheduleLocked pushes one event to fire d from now.
func (s *Sim) scheduleLocked(d time.Duration, ch chan time.Time, fn func(), period time.Duration) *simEvent {
	if d < 0 {
		d = 0
	}
	s.seq++
	ev := &simEvent{
		at:     time.Duration(s.offset.Load()) + d,
		seq:    s.seq,
		ch:     ch,
		fn:     fn,
		period: period,
	}
	heap.Push(&s.events, ev)
	s.gen.Add(1)
	s.cv.Signal()
	return ev
}

// cancel marks an event dead, reporting whether it was still pending.
func (s *Sim) cancel(ev *simEvent) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.state != evPending {
		return false
	}
	ev.state = evCancelled
	if ev.parked {
		s.parked--
	}
	s.gen.Add(1)
	return true
}

// Sleep implements Clock: it parks the goroutine on the event queue
// until virtual time reaches now+d.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	ch := make(chan time.Time, 1)
	s.mu.Lock()
	ev := s.scheduleLocked(d, ch, nil, 0)
	ev.parked = true
	s.parked++
	s.mu.Unlock()
	<-ch
}

// sleepCtx is Sleep with early cancellation.
func (s *Sim) sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ch := make(chan time.Time, 1)
	s.mu.Lock()
	ev := s.scheduleLocked(d, ch, nil, 0)
	ev.parked = true
	s.parked++
	s.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		s.cancel(ev)
		return ctx.Err()
	}
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.mu.Lock()
	s.scheduleLocked(d, ch, nil, 0)
	s.mu.Unlock()
	return ch
}

// AfterFunc implements Clock: f runs in its own goroutine at the virtual
// fire time.
func (s *Sim) AfterFunc(d time.Duration, f func()) *Timer {
	s.mu.Lock()
	ev := s.scheduleLocked(d, nil, f, 0)
	s.mu.Unlock()
	return &Timer{stop: func() bool { return s.cancel(ev) }}
}

// NewTimer implements Clock.
func (s *Sim) NewTimer(d time.Duration) *Timer {
	ch := make(chan time.Time, 1)
	s.mu.Lock()
	ev := s.scheduleLocked(d, ch, nil, 0)
	s.mu.Unlock()
	return &Timer{C: ch, stop: func() bool { return s.cancel(ev) }}
}

// NewTicker implements Clock.
func (s *Sim) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	ch := make(chan time.Time, 1)
	// The ticker re-arms on fire, producing a fresh event each period;
	// Stop must cancel whichever arm is current, so the owner link is
	// installed under the clock lock before the first arm can fire.
	tk := &simTicker{s: s}
	s.mu.Lock()
	ev := s.scheduleLocked(d, ch, nil, d)
	ev.owner = tk
	tk.cur = ev
	s.mu.Unlock()
	return &Ticker{C: ch, stop: tk.stop}
}

// simTicker tracks a ticker's current arm so Stop cancels the live one.
type simTicker struct {
	mu   sync.Mutex
	s    *Sim
	cur  *simEvent
	dead bool
}

func (tk *simTicker) stop() bool {
	tk.mu.Lock()
	tk.dead = true
	ev := tk.cur
	tk.mu.Unlock()
	return tk.s.cancel(ev)
}

// rearm installs the next arm unless the ticker was stopped. Called with
// the Sim lock held.
func (tk *simTicker) rearmLocked(next *simEvent) bool {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if tk.dead {
		return false
	}
	tk.cur = next
	return true
}

// pendingLocked trims cancelled events off the heap top and reports
// whether any pending event remains.
func (s *Sim) pendingLocked() bool {
	for len(s.events) > 0 && s.events[0].state != evPending {
		heap.Pop(&s.events)
	}
	return len(s.events) > 0
}

// advanceLocked pops every pending event at the earliest timestamp, sets
// virtual now to it, and fires them: parked sleepers wake, timer/ticker
// channels receive, AfterFunc bodies start. Events sharing a timestamp
// fire in schedule order.
func (s *Sim) advanceLocked() {
	if !s.pendingLocked() {
		return
	}
	at := s.events[0].at
	s.offset.Store(int64(at))
	now := s.base.Add(at)
	for s.pendingLocked() && s.events[0].at == at {
		ev := heap.Pop(&s.events).(*simEvent)
		ev.state = evFired
		if ev.parked {
			s.parked--
		}
		switch {
		case ev.period > 0:
			// Ticker: deliver without blocking (drop when the consumer
			// lags, like time.Ticker) and re-arm.
			select {
			case ev.ch <- now:
			default:
			}
			s.seq++
			next := &simEvent{at: at + ev.period, seq: s.seq, ch: ev.ch, period: ev.period, owner: ev.owner}
			if ev.owner == nil || ev.owner.rearmLocked(next) {
				heap.Push(&s.events, next)
			}
		case ev.ch != nil:
			ev.ch <- now // buffered by construction; never blocks
		case ev.fn != nil:
			go ev.fn()
		}
	}
	s.gen.Add(1)
	s.advances.Add(1)
}

// run is the advancer: it waits for pending events, lets the runtime
// drain runnable goroutines, and advances once the clock generation has
// been stable for the applicable grace window.
func (s *Sim) run() {
	for {
		s.mu.Lock()
		for !s.stopped && !s.pendingLocked() {
			s.cv.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		gen := s.gen.Load()
		fast := s.parked >= s.active
		s.mu.Unlock()

		grace := s.idleGrace
		if fast {
			grace = s.parkGrace
		}
		if !s.quiesce(gen, grace) {
			continue // clock activity — re-evaluate
		}
		s.mu.Lock()
		if !s.stopped && s.gen.Load() == gen && s.pendingLocked() {
			s.advanceLocked()
			if !fast {
				s.idleAdvances.Add(1)
			}
		}
		s.mu.Unlock()
	}
}

// quiesce yields the processor until the clock generation has been
// stable for the grace window, reporting false as soon as it moves. The
// yields give runnable goroutines (a just-woken sleeper racing toward
// its next clock call, a scatter child about to park) the chance to
// reach the clock before time advances past them.
func (s *Sim) quiesce(gen uint64, grace time.Duration) bool {
	deadline := time.Now().Add(grace)
	for {
		for i := 0; i < 4; i++ {
			runtime.Gosched()
			if s.gen.Load() != gen {
				return false
			}
		}
		if !time.Now().Before(deadline) {
			return s.gen.Load() == gen
		}
	}
}

// Stop halts the advancer and wakes every parked sleeper at the current
// virtual time (pending AfterFunc bodies and ticker arms are dropped).
// Call it after the engine driving the clock has shut down; the clock
// remains readable afterwards.
func (s *Sim) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	now := s.base.Add(time.Duration(s.offset.Load()))
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*simEvent)
		if ev.state != evPending {
			continue
		}
		ev.state = evCancelled
		if ev.parked {
			s.parked--
			ev.ch <- now
		}
	}
	s.cv.Broadcast()
	s.mu.Unlock()
}
