package vclock

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestSim returns a Sim with tight graces so tests run fast.
func newTestSim(t *testing.T) *Sim {
	t.Helper()
	s := NewSim(SimConfig{ParkGrace: 5 * time.Microsecond, IdleGrace: 100 * time.Microsecond})
	t.Cleanup(s.Stop)
	return s
}

func TestWallImplementsClock(t *testing.T) {
	var c Clock = Wall{}
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Fatalf("wall Since did not advance")
	}
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatalf("wall timer Stop on pending timer = false")
	}
	tk := c.NewTicker(time.Hour)
	tk.Stop()
}

func TestSimSleepAdvancesVirtualTime(t *testing.T) {
	s := newTestSim(t)
	defer Enter(s)()
	start := s.Now()
	wall := time.Now()
	s.Sleep(10 * time.Minute)
	if got := s.Since(start); got != 10*time.Minute {
		t.Fatalf("virtual elapsed = %v, want 10m", got)
	}
	if el := time.Since(wall); el > 5*time.Second {
		t.Fatalf("10 virtual minutes took %v wall", el)
	}
}

func TestSimSleepOrdering(t *testing.T) {
	s := newTestSim(t)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			defer Enter(s)()
			s.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
	if s.Elapsed() != 30*time.Millisecond {
		t.Fatalf("elapsed = %v, want 30ms", s.Elapsed())
	}
}

func TestSimSameInstantFiresInScheduleOrder(t *testing.T) {
	s := newTestSim(t)
	const n = 8
	chs := make([]<-chan time.Time, n)
	for i := 0; i < n; i++ {
		chs[i] = s.After(time.Second)
	}
	// All fire at the same virtual instant; every channel must deliver.
	for i, ch := range chs {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("After channel %d never fired", i)
		}
	}
	if s.Elapsed() != time.Second {
		t.Fatalf("elapsed = %v, want 1s", s.Elapsed())
	}
}

func TestSimTimerStop(t *testing.T) {
	s := newTestSim(t)
	tm := s.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatalf("Stop on pending sim timer = false")
	}
	if tm.Stop() {
		t.Fatalf("second Stop = true")
	}
	// A stopped hour-long timer must not block a short sleep behind it.
	defer Enter(s)()
	s.Sleep(time.Millisecond)
	if s.Elapsed() != time.Millisecond {
		t.Fatalf("elapsed = %v, want 1ms (stopped timer advanced the clock?)", s.Elapsed())
	}
}

func TestSimAfterFunc(t *testing.T) {
	s := newTestSim(t)
	done := make(chan time.Time, 1)
	s.AfterFunc(2*time.Second, func() { done <- s.Now() })
	select {
	case at := <-done:
		if got := at.Sub(s.Now().Add(-s.Elapsed())); got != 2*time.Second {
			t.Fatalf("AfterFunc fired at +%v, want +2s", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("AfterFunc never ran")
	}
}

func TestSimTickerDeliversAndStops(t *testing.T) {
	s := newTestSim(t)
	tk := s.NewTicker(100 * time.Millisecond)
	defer Enter(s)()
	var ticks int
	for ticks < 5 {
		select {
		case <-tk.C:
			ticks++
		case <-time.After(5 * time.Second):
			t.Fatalf("ticker stalled after %d ticks", ticks)
		}
	}
	if s.Elapsed() < 500*time.Millisecond {
		t.Fatalf("elapsed = %v after 5 ticks of 100ms", s.Elapsed())
	}
	tk.Stop()
	// After Stop the ticker must not keep the event queue busy: a plain
	// sleep should advance exactly its own duration from here.
	before := s.Elapsed()
	s.Sleep(time.Millisecond)
	if got := s.Elapsed() - before; got != time.Millisecond {
		t.Fatalf("post-Stop sleep advanced %v, want 1ms", got)
	}
}

func TestSleepCtxCancel(t *testing.T) {
	s := newTestSim(t)
	// A short ticker keeps the event heap busy so the sim advances in
	// 1ms virtual steps instead of jumping straight to the sleeper's
	// hour-long horizon — the cancel must land while it is still parked.
	tk := s.NewTicker(time.Millisecond)
	defer tk.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		defer Enter(s)()
		errc <- SleepCtx(ctx, s, time.Hour)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("SleepCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("cancelled SleepCtx never returned")
	}
	if s.Elapsed() >= time.Hour {
		t.Fatalf("sim ran the full hour (%v) despite cancellation window", s.Elapsed())
	}
}

func TestSleepCtxPreCancelled(t *testing.T) {
	s := newTestSim(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepCtx(ctx, s, time.Hour); err != context.Canceled {
		t.Fatalf("SleepCtx on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestSleepCtxCompletes(t *testing.T) {
	s := newTestSim(t)
	defer Enter(s)()
	if err := SleepCtx(context.Background(), s, 3*time.Second); err != nil {
		t.Fatalf("SleepCtx = %v", err)
	}
	if s.Elapsed() != 3*time.Second {
		t.Fatalf("elapsed = %v, want 3s", s.Elapsed())
	}
}

// TestSimIdleFallback exercises the conservative path: a goroutine that
// is registered but blocked on a channel (invisible to the clock) fed by
// an unregistered sleeper. The clock must still advance.
func TestSimIdleFallback(t *testing.T) {
	s := newTestSim(t)
	ch := make(chan struct{})
	go func() {
		// Unregistered helper: sleeps on the clock, then signals.
		s.Sleep(50 * time.Millisecond)
		close(ch)
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer Enter(s)()
		<-ch // parked outside the clock's view
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("clock never advanced past a channel-blocked registered goroutine")
	}
}

// TestSimDeterministicWakeTimes pins what the Sim guarantees: each
// goroutine observes the same sequence of virtual wake times on every
// run (the interleaving of goroutines woken at the same instant is the
// scheduler's business, not the clock's).
func TestSimDeterministicWakeTimes(t *testing.T) {
	run := func() ([6][4]time.Duration, time.Duration) {
		s := NewSim(SimConfig{ParkGrace: 5 * time.Microsecond, IdleGrace: 100 * time.Microsecond})
		defer s.Stop()
		var wakes [6][4]time.Duration
		var wg sync.WaitGroup
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer Enter(s)()
				for r := 0; r < 4; r++ {
					s.Sleep(time.Duration(1+(i*7+r*3)%11) * time.Millisecond)
					wakes[i][r] = s.Elapsed()
				}
			}(i)
		}
		wg.Wait()
		return wakes, s.Elapsed()
	}
	wa, ea := run()
	wb, eb := run()
	if wa != wb {
		t.Fatalf("per-goroutine wake times diverge:\n%v\nvs\n%v", wa, wb)
	}
	if ea != eb {
		t.Fatalf("total elapsed diverges: %v vs %v", ea, eb)
	}
}

func TestSimStopWakesSleepers(t *testing.T) {
	s := NewSim(SimConfig{ParkGrace: 5 * time.Microsecond, IdleGrace: 100 * time.Microsecond})
	var woke atomic.Int32
	var wg sync.WaitGroup
	// Park sleepers at wildly different horizons, then Stop: all must
	// return promptly instead of hanging on a dead clock.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Sleep(time.Duration(i+1) * time.Hour)
			woke.Add(1)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("Stop left %d of 4 sleepers parked", 4-woke.Load())
	}
}

func TestOrWallAndEnterOnWall(t *testing.T) {
	if _, ok := OrWall(nil).(Wall); !ok {
		t.Fatalf("OrWall(nil) is not Wall")
	}
	s := newTestSim(t)
	if OrWall(s) != Clock(s) {
		t.Fatalf("OrWall(sim) did not pass through")
	}
	Enter(Wall{})() // must be a no-op, not a panic
}

// TestSimManyGoroutinesThroughput sanity-checks that a few thousand
// virtual sleeps across goroutines complete quickly in wall time.
func TestSimManyGoroutinesThroughput(t *testing.T) {
	s := newTestSim(t)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer Enter(s)()
			for r := 0; r < 100; r++ {
				s.Sleep(time.Duration(1+(i+r)%13) * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("3200 virtual sleeps took %v wall", el)
	}
	if s.Elapsed() <= 0 {
		t.Fatalf("no virtual time elapsed")
	}
	total, _ := s.Advances()
	if total == 0 {
		t.Fatalf("no advances recorded")
	}
}
