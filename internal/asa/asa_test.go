package asa

import (
	"testing"
	"time"

	"proteus/internal/cost"
	"proteus/internal/partition"
	"proteus/internal/storage"
)

func evaluator() *Evaluator {
	return &Evaluator{Model: cost.NewModel(), Lambda: 3}
}

func baseView(rows int) PartitionView {
	return PartitionView{
		PID:    1,
		Bounds: partition.Bounds{RowStart: 0, RowEnd: 10000, ColStart: 0, ColEnd: 5},
		Rows:   rows, RowBytes: 60,
		Master:          ReplicaView{Site: 0, Layout: storage.DefaultRowLayout()},
		ScanSelectivity: 1, AvgUpdateCols: 2,
		CoAccessSite: -1,
	}
}

func rates(upd, scan float64) AccessRates {
	return AccessRates{Updates: upd, Scans: scan, Prob: 1, Delay: 0.01}
}

func TestFormatChangePositiveForScanHeavy(t *testing.T) {
	ev := evaluator()
	v := baseView(5000)
	v.Rates = rates(0, 500)
	c := ev.Evaluate(v, Candidate{Kind: ChangeFormat, PID: 1, Site: 0, NewLayout: storage.DefaultColumnLayout()})
	if c.Net <= 0 {
		t.Errorf("scan-heavy row->column N(S) = %f, want > 0", c.Net)
	}
}

func TestFormatChangeNegativeForIdlePartition(t *testing.T) {
	ev := evaluator()
	v := baseView(5000)
	v.Rates = AccessRates{} // no predicted accesses: only upfront cost remains
	c := ev.Evaluate(v, Candidate{Kind: ChangeFormat, PID: 1, Site: 0, NewLayout: storage.DefaultColumnLayout()})
	if c.Net >= 0 {
		t.Errorf("idle partition N(S) = %f, want < 0", c.Net)
	}
}

func TestTierDemotionNegativeUnderLoad(t *testing.T) {
	ev := evaluator()
	v := baseView(5000)
	v.Rates = rates(100, 100)
	to := storage.Layout{Format: storage.RowFormat, Tier: storage.DiskTier, SortBy: storage.NoSort}
	c := ev.Evaluate(v, Candidate{Kind: ChangeTier, PID: 1, Site: 0, NewLayout: to})
	if c.Net >= 0 {
		t.Errorf("hot partition demotion N(S) = %f, want < 0", c.Net)
	}
}

func TestSplitBenefitGrowsWithContention(t *testing.T) {
	ev := evaluator()
	lo := baseView(5000)
	lo.Rates = rates(200, 0)
	hi := lo
	hi.ContentionWaiters = 8
	hi.ContentionWait = 2 * time.Millisecond

	cLo := ev.Evaluate(lo, Candidate{Kind: SplitVertical, PID: 1, Site: 0, SplitCol: 2})
	cHi := ev.Evaluate(hi, Candidate{Kind: SplitVertical, PID: 1, Site: 0, SplitCol: 2})
	if cHi.Net <= cLo.Net {
		t.Errorf("contended split N=%f should exceed uncontended N=%f", cHi.Net, cLo.Net)
	}
}

func TestEquationOneWeighting(t *testing.T) {
	// E(S,T) scales by Pr(T)/(Δ(T)+1): distant/unlikely arrivals shrink N.
	ev := evaluator()
	near := baseView(5000)
	near.Rates = AccessRates{Scans: 500, Prob: 1, Delay: 0}
	far := near
	far.Rates.Delay = 50
	unlikely := near
	unlikely.Rates.Prob = 0.01

	cand := Candidate{Kind: ChangeFormat, PID: 1, Site: 0, NewLayout: storage.DefaultColumnLayout()}
	n := ev.Evaluate(near, cand).Net
	f := ev.Evaluate(far, cand).Net
	u := ev.Evaluate(unlikely, cand).Net
	if !(n > f && n > u) {
		t.Errorf("weights broken: near=%f far=%f unlikely=%f", n, f, u)
	}
}

func TestGenerateCandidatesRespectsFlags(t *testing.T) {
	v := baseView(5000)
	v.WriteHotCols = []bool{true, false, false, false, false}
	v.ReadHotCols = []bool{false, true, true, true, true}
	v.Master.Layout = storage.DefaultColumnLayout()
	v.CoAccessSite = 1

	all := GenerateCandidates(v, AllFlags(), 3)
	kinds := map[ChangeKind]bool{}
	for _, c := range all {
		kinds[c.Kind] = true
	}
	for _, want := range []ChangeKind{ChangeFormat, ChangeTier, ChangeSort, ChangeCompress, SplitVertical, SplitHorizontal, AddReplica, ChangeMaster} {
		if !kinds[want] {
			t.Errorf("missing candidate kind %v", want)
		}
	}
	// All off -> none.
	if got := GenerateCandidates(v, Flags{}, 3); len(got) != 0 {
		t.Errorf("flags off produced %d candidates", len(got))
	}
	// Sorting/compression only apply to column format.
	v.Master.Layout = storage.DefaultRowLayout()
	rowCands := GenerateCandidates(v, AllFlags(), 3)
	for _, c := range rowCands {
		if c.Kind == ChangeSort || c.Kind == ChangeCompress {
			t.Errorf("row layout generated %v", c.Kind)
		}
	}
}

func TestVerticalCutSeparatesHotColumns(t *testing.T) {
	v := baseView(100)
	// Write-hot suffix: split before it.
	v.WriteHotCols = []bool{false, false, false, true, true}
	at, ok := verticalCut(v)
	if !ok || at != 3 {
		t.Errorf("cut = %d, %v; want 3", at, ok)
	}
	// Write-hot prefix: split after it.
	v.WriteHotCols = []bool{true, true, false, false, false}
	at, ok = verticalCut(v)
	if !ok || at != 2 {
		t.Errorf("cut = %d, %v; want 2", at, ok)
	}
	// All hot or none hot: no cut.
	v.WriteHotCols = []bool{true, true, true, true, true}
	if _, ok := verticalCut(v); ok {
		t.Error("all-hot produced a cut")
	}
	v.WriteHotCols = []bool{false, false, false, false, false}
	if _, ok := verticalCut(v); ok {
		t.Error("none-hot produced a cut")
	}
}

func TestCapacityCandidates(t *testing.T) {
	v := baseView(1000)
	v.Master.Layout = storage.DefaultColumnLayout()
	opts := CapacityCandidates(v, 0, AllFlags(), 2, 10000)
	kinds := map[ChangeKind]bool{}
	for _, o := range opts {
		kinds[o.Candidate.Kind] = true
		if o.BytesFreed <= 0 {
			t.Error("option frees nothing")
		}
	}
	if !kinds[ChangeCompress] || !kinds[ChangeTier] || !kinds[ChangeMaster] {
		t.Errorf("capacity kinds = %v", kinds)
	}
	// A replica at the pressured site yields a removal option.
	v.Replicas = []ReplicaView{{Site: 0, Layout: storage.DefaultRowLayout()}}
	v.Master.Site = 1
	opts = CapacityCandidates(v, 0, AllFlags(), 2, 10000)
	found := false
	for _, o := range opts {
		if o.Candidate.Kind == RemoveReplica {
			found = true
		}
	}
	if !found {
		t.Error("no remove-replica option at pressured site")
	}
}

func TestChangeKindStrings(t *testing.T) {
	if ChangeFormat.String() != "format" || ChangeMaster.String() != "master" {
		t.Error("kind names wrong")
	}
}
