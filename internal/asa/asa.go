// Package asa implements the decision core of Proteus' adaptive storage
// advisor (§5.3.2 and Appendix A of the paper): candidate storage-layout
// changes, their upfront costs U(S) composed from the cost functions of
// Table 2, their expected effects E(S) (+ ongoing effects C(S)) on
// predicted requests per Table 3 and Equation 1, and the net benefit
//
//	N(S) = λ·(E(S) + C(S)) − U(S).
//
// The package is pure decision math over a PartitionView snapshot; the
// cluster engine supplies views, executes chosen changes, and drives the
// three triggers (plan-time, predictive, and capacity).
package asa

import (
	"fmt"
	"os"
	"time"

	"proteus/internal/cost"
	"proteus/internal/partition"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
)

// Debug enables evaluation tracing via PROTEUS_DEBUG_ADVISOR=1.
var Debug = os.Getenv("PROTEUS_DEBUG_ADVISOR") == "1"

// Flags enables or disables individual adaptive techniques — the knobs of
// the ablation study (§6.3.7).
type Flags struct {
	FormatChanges   bool
	TierChanges     bool
	Sorting         bool
	Compression     bool
	VerticalSplit   bool
	HorizontalSplit bool
	Merging         bool
	Replication     bool
	MasterChanges   bool
	DecisionReuse   bool
}

// AllFlags enables everything.
func AllFlags() Flags {
	return Flags{
		FormatChanges: true, TierChanges: true, Sorting: true,
		Compression: true, VerticalSplit: true, HorizontalSplit: true,
		Merging: true, Replication: true, MasterChanges: true,
		DecisionReuse: true,
	}
}

// ChangeKind enumerates the storage layout changes of §4.4.
type ChangeKind uint8

// Change kinds.
const (
	ChangeFormat ChangeKind = iota
	ChangeTier
	ChangeSort
	ChangeCompress
	SplitHorizontal
	SplitVertical
	MergeWith
	AddReplica
	RemoveReplica
	ChangeMaster
)

// String names the change kind.
func (k ChangeKind) String() string {
	names := [...]string{"format", "tier", "sort", "compress", "split-h",
		"split-v", "merge", "add-replica", "rm-replica", "master"}
	if int(k) < len(names) {
		return names[k]
	}
	return "?"
}

// Candidate is one proposed change to one partition.
type Candidate struct {
	Kind ChangeKind
	PID  partition.ID
	// Site is the copy the change applies to (layout changes), the target
	// site (AddReplica, ChangeMaster), or the replica site (RemoveReplica).
	Site simnet.SiteID
	// NewLayout is the resulting layout for layout changes and the layout
	// of a new replica.
	NewLayout storage.Layout
	// SplitRow / SplitCol locate split points.
	SplitRow schema.RowID
	SplitCol schema.ColID
	// Other identifies the merge partner.
	Other partition.ID
	// Net is the computed net benefit in microseconds (filled by Evaluate).
	Net float64
}

// AccessRates describes a partition's (recent or predicted) load for the
// evaluation horizon: expected operation counts and arrival likelihoods.
type AccessRates struct {
	// Updates, PointReads, Scans are expected counts over the horizon.
	Updates    float64
	PointReads float64
	Scans      float64
	// Prob and Delay weight per Equation 1: the likelihood requests
	// arrive and the normalized time-to-arrival (buckets).
	Prob  float64
	Delay float64
}

// Weight is the Equation 1 discount Pr(T)/(Δ(T)+1).
func (r AccessRates) Weight() float64 {
	if r.Prob <= 0 {
		return 0
	}
	return r.Prob / (r.Delay + 1)
}

// PartitionView is a decision-time snapshot of one partition.
type PartitionView struct {
	PID    partition.ID
	Bounds partition.Bounds

	Rows     int
	RowBytes int // average full-row bytes

	Master   ReplicaView
	Replicas []ReplicaView

	// Rates over the upcoming horizon (recent or predicted).
	Rates AccessRates
	// Ongoing approximates requests currently executing against the
	// partition (C(S) of the net-benefit formula); Prob=1, Delay=0.
	Ongoing AccessRates

	// ScanSelectivity is the average selectivity of scans over this
	// partition (from zone maps and observed outputs).
	ScanSelectivity float64
	// AvgUpdateCols is the average number of columns per update.
	AvgUpdateCols int
	// Contention is the lock-wait signal (waiters, decayed recent wait).
	ContentionWaiters int
	ContentionWait    time.Duration

	// WriteHotCols/ReadHotCols mark, per local column, whether writes or
	// reads dominate (drives row splitting, §2.2).
	WriteHotCols []bool
	ReadHotCols  []bool

	// CoAccessSite is the site most co-accessed partitions are mastered
	// at (drives master changes / co-location), -1 if unknown.
	CoAccessSite simnet.SiteID
}

// ReplicaView is one copy's placement and layout.
type ReplicaView struct {
	Site   simnet.SiteID
	Layout storage.Layout
}

// Evaluator computes net benefits using the learned cost model.
type Evaluator struct {
	Model *cost.Model
	// Lambda scales the expected benefit against the upfront cost
	// (the λ of §5.3.2; > 0).
	Lambda float64
}

// microseconds of a model prediction.
func (ev *Evaluator) us(op cost.Op, v cost.Variant, l storage.Layout, f []float64) float64 {
	return float64(ev.Model.Predict(op, v, l, f)) / float64(time.Microsecond)
}

// opLatency estimates the per-operation latencies under a layout.
func (ev *Evaluator) opLatency(view PartitionView, l storage.Layout) (upd, point, scan float64) {
	nCols := view.Bounds.NumCols()
	projBytes := view.RowBytes / maxInt(nCols, 1) * maxInt(nCols/3, 1)
	upd = ev.us(cost.OpWrite, cost.VariantDefault, l, cost.WriteFeatures(view.AvgUpdateCols, view.RowBytes))
	point = ev.us(cost.OpPointRead, cost.VariantDefault, l, cost.PointReadFeatures(nCols, view.RowBytes))
	variant := cost.ScanSeq
	if l.SortBy != storage.NoSort {
		variant = cost.ScanSorted
	}
	scan = ev.us(cost.OpScan, variant, l, cost.ScanFeatures(view.Rows, view.RowBytes, projBytes, view.ScanSelectivity))
	return upd, point, scan
}

// pairUs predicts one op under two layouts from a consistent source
// (learned vs bootstrap, never mixed — their calibrations differ).
func (ev *Evaluator) pairUs(op cost.Op, v cost.Variant, a, b storage.Layout, f []float64) (float64, float64) {
	da, db := ev.Model.PredictPair(op, v, a, b, f)
	return float64(da) / float64(time.Microsecond), float64(db) / float64(time.Microsecond)
}

// opLatencyPair estimates per-op latencies under two layouts consistently.
func (ev *Evaluator) opLatencyPair(view PartitionView, cur, next storage.Layout) (cu, cp, cs, nu, np, ns float64) {
	nCols := view.Bounds.NumCols()
	projBytes := view.RowBytes / maxInt(nCols, 1) * maxInt(nCols/3, 1)
	cu, nu = ev.pairUs(cost.OpWrite, cost.VariantDefault, cur, next, cost.WriteFeatures(view.AvgUpdateCols, view.RowBytes))
	cp, np = ev.pairUs(cost.OpPointRead, cost.VariantDefault, cur, next, cost.PointReadFeatures(nCols, view.RowBytes))
	cv, nv := cost.ScanSeq, cost.ScanSeq
	if cur.SortBy != storage.NoSort {
		cv = cost.ScanSorted
	}
	if next.SortBy != storage.NoSort {
		nv = cost.ScanSorted
	}
	sf := cost.ScanFeatures(view.Rows, view.RowBytes, projBytes, view.ScanSelectivity)
	if cv == nv {
		cs, ns = ev.pairUs(cost.OpScan, cv, cur, next, sf)
	} else {
		// Different variants: only the bootstrap is mutually calibrated.
		cs = float64(ev.Model.PredictBootstrap(cost.OpScan, cv, cur, sf)) / float64(time.Microsecond)
		ns = float64(ev.Model.PredictBootstrap(cost.OpScan, nv, next, sf)) / float64(time.Microsecond)
	}
	return
}

// expectedEffect computes E(S)+C(S) for a change that swaps the master
// copy's layout from cur to next, optionally scaling the per-op deltas.
func (ev *Evaluator) expectedEffect(view PartitionView, cur, next storage.Layout) float64 {
	cu, cp, cs, nu, np, ns := ev.opLatencyPair(view, cur, next)
	dUpd, dPoint, dScan := cu-nu, cp-np, cs-ns
	if Debug {
		fmt.Printf("[asa] pid=%d %v->%v cu=%.1f nu=%.1f cp=%.1f np=%.1f cs=%.1f ns=%.1f w=%.3f rates=%+v\n",
			view.PID, cur, next, cu, nu, cp, np, cs, ns, view.Rates.Weight(), view.Rates)
	}
	e := view.Rates.Weight() * (view.Rates.Updates*dUpd + view.Rates.PointReads*dPoint + view.Rates.Scans*dScan)
	c := view.Ongoing.Weight() * (view.Ongoing.Updates*dUpd + view.Ongoing.PointReads*dPoint + view.Ongoing.Scans*dScan)
	return e + c
}

// upfrontChange is U(S) for format/tier/sort/compress changes (Table 2):
// network request + lock + scan of the old layout + bulk load of the new
// (+ sort when enabling a sort order).
func (ev *Evaluator) upfrontChange(view PartitionView, cur, next storage.Layout, withSort bool) float64 {
	u := ev.us(cost.OpNetwork, cost.VariantDefault, storage.Layout{}, cost.NetworkFeatures(0, 0, 256, 64))
	u += ev.us(cost.OpLock, cost.VariantDefault, storage.Layout{}, cost.LockFeatures(view.ContentionWaiters, view.ContentionWait))
	u += ev.us(cost.OpScan, cost.ScanSeq, cur, cost.ScanFeatures(view.Rows, view.RowBytes, view.RowBytes, 1))
	u += ev.us(cost.OpBulkLoad, cost.VariantDefault, next, cost.BulkLoadFeatures(view.Rows, view.RowBytes))
	if withSort {
		u += ev.us(cost.OpSort, cost.VariantDefault, next, cost.SortFeatures(view.Rows, view.RowBytes))
	}
	return u
}

// Evaluate fills in the candidate's net benefit N(S) = λ(E+C) − U.
func (ev *Evaluator) Evaluate(view PartitionView, c Candidate) Candidate {
	lambda := ev.Lambda
	if lambda <= 0 {
		lambda = 1
	}
	var e, u float64
	cur := view.Master.Layout
	switch c.Kind {
	case ChangeFormat, ChangeTier, ChangeSort, ChangeCompress:
		e = ev.expectedEffect(view, cur, c.NewLayout)
		withSort := c.NewLayout.SortBy != storage.NoSort && cur.SortBy == storage.NoSort
		u = ev.upfrontChange(view, cur, c.NewLayout, withSort)

	case SplitVertical, SplitHorizontal:
		// Splitting reduces contention within (vertical) or across
		// (horizontal) rows: model the lock wait dropping by half, and a
		// stitch/coordination penalty on scans (Table 3's partitioning
		// row touches every cost function).
		lockNow := ev.us(cost.OpLock, cost.VariantDefault, storage.Layout{},
			cost.LockFeatures(view.ContentionWaiters, view.ContentionWait))
		lockAfter := ev.us(cost.OpLock, cost.VariantDefault, storage.Layout{},
			cost.LockFeatures(view.ContentionWaiters/2, view.ContentionWait/2))
		dLock := lockNow - lockAfter
		_, _, scanCost := ev.opLatency(view, cur)
		scanPenalty := 0.1 * scanCost
		e = view.Rates.Weight()*(view.Rates.Updates*dLock-view.Rates.Scans*scanPenalty) +
			view.Ongoing.Weight()*(view.Ongoing.Updates*dLock-view.Ongoing.Scans*scanPenalty)
		// Upfront: cheap pointer-reassignment combinations vs generic
		// reload (§4.4 / Table 2).
		cheap := (c.Kind == SplitHorizontal && cur.Format == storage.RowFormat) ||
			(c.Kind == SplitVertical && cur.Format == storage.ColumnFormat)
		u = ev.us(cost.OpNetwork, cost.VariantDefault, storage.Layout{}, cost.NetworkFeatures(0, 0, 256, 64)) +
			ev.us(cost.OpLock, cost.VariantDefault, storage.Layout{}, cost.LockFeatures(view.ContentionWaiters, view.ContentionWait)) +
			ev.us(cost.OpCommit, cost.VariantDefault, storage.Layout{}, cost.CommitFeatures(0, 2, 1))
		if !cheap {
			u += ev.us(cost.OpScan, cost.ScanSeq, cur, cost.ScanFeatures(view.Rows, view.RowBytes, view.RowBytes, 1)) +
				ev.us(cost.OpBulkLoad, cost.VariantDefault, cur, cost.BulkLoadFeatures(view.Rows, view.RowBytes))
		}

	case MergeWith:
		// Merging cold partitions reduces per-partition metadata and scan
		// fan-out; a small fixed benefit per scan, charged a generic
		// partition change upfront.
		_, _, scanCost := ev.opLatency(view, cur)
		e = view.Rates.Weight() * view.Rates.Scans * 0.05 * scanCost
		u = ev.upfrontChange(view, cur, cur, false) +
			ev.us(cost.OpCommit, cost.VariantDefault, storage.Layout{}, cost.CommitFeatures(0, 2, 1))

	case AddReplica:
		// Scans route to the replica layout; updates pay propagation and
		// readers of the replica pay freshness waits (§4.2).
		_, _, scanCur, updNew, _, scanNew := ev.opLatencyPair(view, cur, c.NewLayout)
		dScan := scanCur - scanNew
		maint := updNew // each update applied once more, at the replica
		wait := ev.us(cost.OpWaitUpdates, cost.VariantDefault, storage.Layout{}, cost.WaitFeatures(1))
		e = view.Rates.Weight() * (view.Rates.Scans*(dScan-wait) - view.Rates.Updates*maint)
		if dScan > 0 {
			// Only a scan-superior replica attracts remote readers, saving
			// the transfer of partial results toward the coordinator; scale
			// by half as only a share of accesses were remote.
			netSave := ev.us(cost.OpNetwork, cost.VariantDefault, storage.Layout{},
				cost.NetworkFeatures(0, 0, view.Rows*view.RowBytes/maxInt(view.Bounds.NumCols(), 1), 0))
			e += 0.5 * view.Rates.Weight() * view.Rates.Scans * netSave
		}
		// Upfront per Table 2: snapshot scan + bulk load + network + locks
		// at source and destination + waiting + commit.
		u = ev.upfrontChange(view, cur, c.NewLayout, c.NewLayout.SortBy != storage.NoSort)
		u += ev.us(cost.OpLock, cost.VariantDefault, storage.Layout{}, cost.LockFeatures(0, 0)) +
			ev.us(cost.OpWaitUpdates, cost.VariantDefault, storage.Layout{}, cost.WaitFeatures(1)) +
			ev.us(cost.OpCommit, cost.VariantDefault, storage.Layout{}, cost.CommitFeatures(0, 1, 2))

	case RemoveReplica:
		// Saves update propagation; loses the replica's scan advantage.
		var rep ReplicaView
		for _, r := range view.Replicas {
			if r.Site == c.Site {
				rep = r
			}
		}
		_, _, scanCur, updRep, _, scanRep := ev.opLatencyPair(view, cur, rep.Layout)
		e = view.Rates.Weight() * (view.Rates.Updates*updRep - view.Rates.Scans*maxF(0, scanCur-scanRep))
		u = ev.us(cost.OpNetwork, cost.VariantDefault, storage.Layout{}, cost.NetworkFeatures(0, 0, 128, 32))

	case ChangeMaster:
		// Mastering at the co-access site turns distributed commits into
		// local ones (Table 2's change-master row).
		commitRemote := ev.us(cost.OpCommit, cost.VariantDefault, storage.Layout{}, cost.CommitFeatures(1, 2, 2))
		commitLocal := ev.us(cost.OpCommit, cost.VariantDefault, storage.Layout{}, cost.CommitFeatures(1, 2, 1))
		netRT := ev.us(cost.OpNetwork, cost.VariantDefault, storage.Layout{}, cost.NetworkFeatures(0, 0, 128, 64))
		e = view.Rates.Weight() * view.Rates.Updates * (commitRemote - commitLocal + netRT)
		u = 2*ev.us(cost.OpNetwork, cost.VariantDefault, storage.Layout{}, cost.NetworkFeatures(0, 0, 256, 64)) +
			2*ev.us(cost.OpLock, cost.VariantDefault, storage.Layout{}, cost.LockFeatures(view.ContentionWaiters, view.ContentionWait)) +
			ev.us(cost.OpWaitUpdates, cost.VariantDefault, storage.Layout{}, cost.WaitFeatures(4)) +
			ev.us(cost.OpCommit, cost.VariantDefault, storage.Layout{}, cost.CommitFeatures(0, 1, 2))
	}
	c.Net = lambda*e - u
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
