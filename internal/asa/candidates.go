package asa

import (
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
)

// GenerateCandidates proposes every flag-enabled change applicable to the
// partition view (§5.3.2's search over changes affecting a high-cost
// leaf). The caller evaluates each with Evaluator.Evaluate and executes
// the best while its net benefit stays positive.
func GenerateCandidates(view PartitionView, flags Flags, numSites int) []Candidate {
	var out []Candidate
	cur := view.Master.Layout
	pid := view.PID
	site := view.Master.Site

	// Format flip.
	if flags.FormatChanges {
		next := cur
		if cur.Format == storage.RowFormat {
			next.Format = storage.ColumnFormat
		} else {
			next.Format = storage.RowFormat
			next.SortBy = storage.NoSort
			next.Compressed = false
		}
		out = append(out, Candidate{Kind: ChangeFormat, PID: pid, Site: site, NewLayout: next})
	}

	// Tier moves (both directions).
	if flags.TierChanges {
		next := cur
		if cur.Tier == storage.MemoryTier {
			next.Tier = storage.DiskTier
		} else {
			next.Tier = storage.MemoryTier
		}
		out = append(out, Candidate{Kind: ChangeTier, PID: pid, Site: site, NewLayout: next})
	}

	// Sorting (column format only): sort by the most read-hot column;
	// or drop an existing sort.
	if flags.Sorting && cur.Format == storage.ColumnFormat {
		if cur.SortBy == storage.NoSort {
			if hot, ok := hottestCol(view.ReadHotCols); ok {
				next := cur
				next.SortBy = hot
				out = append(out, Candidate{Kind: ChangeSort, PID: pid, Site: site, NewLayout: next})
			}
		} else {
			next := cur
			next.SortBy = storage.NoSort
			out = append(out, Candidate{Kind: ChangeSort, PID: pid, Site: site, NewLayout: next})
		}
	}

	// Compression toggle (column format only).
	if flags.Compression && cur.Format == storage.ColumnFormat {
		next := cur
		next.Compressed = !cur.Compressed
		out = append(out, Candidate{Kind: ChangeCompress, PID: pid, Site: site, NewLayout: next})
	}

	// Vertical split: separate a write-hot column range from read-hot
	// columns (row splitting, §2.2), at the first boundary between them.
	if flags.VerticalSplit && view.Bounds.NumCols() >= 2 {
		if at, ok := verticalCut(view); ok {
			out = append(out, Candidate{Kind: SplitVertical, PID: pid, Site: site, SplitCol: at})
		}
	}

	// Horizontal split at the midpoint (repeated splits isolate hot rows).
	if flags.HorizontalSplit && view.Bounds.NumRows() >= 2 && view.Rows >= 2 {
		mid := view.Bounds.RowStart + schema.RowID(view.Bounds.NumRows()/2)
		out = append(out, Candidate{Kind: SplitHorizontal, PID: pid, Site: site, SplitRow: mid})
	}

	// Replica with the complementary format at another site.
	if flags.Replication && numSites > 1 && len(view.Replicas) < numSites-1 {
		next := cur
		if cur.Format == storage.RowFormat {
			next = storage.DefaultColumnLayout()
		} else {
			next = storage.DefaultRowLayout()
		}
		target := simnet.SiteID((int(site) + 1) % numSites)
		for _, r := range view.Replicas {
			if r.Site == target {
				target = simnet.SiteID((int(target) + 1) % numSites)
			}
		}
		if target != site {
			out = append(out, Candidate{Kind: AddReplica, PID: pid, Site: target, NewLayout: next})
		}
	}
	if flags.Replication {
		for _, r := range view.Replicas {
			out = append(out, Candidate{Kind: RemoveReplica, PID: pid, Site: r.Site})
		}
	}

	// Master move toward the co-access site.
	if flags.MasterChanges && view.CoAccessSite >= 0 && view.CoAccessSite != site {
		// Only meaningful when that site already holds a copy or the
		// executor will install one; the executor handles both.
		out = append(out, Candidate{Kind: ChangeMaster, PID: pid, Site: view.CoAccessSite, NewLayout: cur})
	}

	return out
}

// hottestCol returns the index of the first true entry (local column).
func hottestCol(hot []bool) (schema.ColID, bool) {
	for i, h := range hot {
		if h {
			return schema.ColID(i), true
		}
	}
	return 0, false
}

// verticalCut finds a local column boundary separating a write-hot prefix
// or suffix from the rest. Returns the table-global split column.
func verticalCut(view PartitionView) (schema.ColID, bool) {
	n := view.Bounds.NumCols()
	if len(view.WriteHotCols) < n {
		return 0, false
	}
	// Find a contiguous write-hot block; split before/after it.
	first, last := -1, -1
	for i := 0; i < n; i++ {
		if view.WriteHotCols[i] {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || (first == 0 && last == n-1) {
		return 0, false // nothing write-hot, or everything is
	}
	var local schema.ColID
	if first > 0 {
		local = schema.ColID(first)
	} else {
		local = schema.ColID(last + 1)
	}
	return view.Bounds.GlobalCol(local), true
}

// CapacityOption scores a change made under storage pressure (§5.3.2): the
// bytes it frees per microsecond of net cost. The executor sorts options
// by descending score until the site is back under its limit.
type CapacityOption struct {
	Candidate  Candidate
	BytesFreed int64
}

// CapacityCandidates proposes the §5.3.2 storage-pressure responses for a
// partition resident at the pressured site: remove replicas, move
// mastership away, compress, demote to disk.
func CapacityCandidates(view PartitionView, atSite simnet.SiteID, flags Flags, numSites int, bytes int64) []CapacityOption {
	var out []CapacityOption
	cur := view.Master.Layout
	if view.Master.Site == atSite {
		if flags.Compression && cur.Format == storage.ColumnFormat && !cur.Compressed {
			next := cur
			next.Compressed = true
			out = append(out, CapacityOption{
				Candidate:  Candidate{Kind: ChangeCompress, PID: view.PID, Site: atSite, NewLayout: next},
				BytesFreed: bytes / 2,
			})
		}
		if flags.TierChanges && cur.Tier == storage.MemoryTier {
			next := cur
			next.Tier = storage.DiskTier
			out = append(out, CapacityOption{
				Candidate:  Candidate{Kind: ChangeTier, PID: view.PID, Site: atSite, NewLayout: next},
				BytesFreed: bytes,
			})
		}
		if flags.MasterChanges && numSites > 1 {
			target := simnet.SiteID((int(atSite) + 1) % numSites)
			out = append(out, CapacityOption{
				Candidate:  Candidate{Kind: ChangeMaster, PID: view.PID, Site: target, NewLayout: cur},
				BytesFreed: bytes,
			})
		}
	}
	for _, r := range view.Replicas {
		if r.Site == atSite && flags.Replication {
			out = append(out, CapacityOption{
				Candidate:  Candidate{Kind: RemoveReplica, PID: view.PID, Site: atSite},
				BytesFreed: bytes,
			})
		}
	}
	return out
}
