package faults

import (
	"errors"
	"testing"
	"time"

	"proteus/internal/simnet"
)

func TestSiteDownAndPartition(t *testing.T) {
	r := New(1)
	if err := r.Check(0, 1); err != nil {
		t.Fatalf("healthy check: %v", err)
	}
	r.SetSiteDown(1, true)
	if err := r.Check(0, 1); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("want ErrSiteDown, got %v", err)
	}
	if _, err := r.Intercept(1, 0, 10); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("want ErrSiteDown from Intercept, got %v", err)
	}
	if got := r.DownSites(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DownSites = %v", got)
	}
	r.SetSiteDown(1, false)

	r.Partition([]simnet.SiteID{0, 1}, []simnet.SiteID{2})
	if !r.Partitioned() {
		t.Fatal("Partitioned should be true")
	}
	if err := r.Check(0, 1); err != nil {
		t.Fatalf("same group should reach: %v", err)
	}
	if err := r.Check(0, 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
	// Ungrouped sites (e.g. the broker pseudo-site) reach everyone.
	if err := r.Check(simnet.ASASite, 2); err != nil {
		t.Fatalf("ungrouped site should reach: %v", err)
	}
	r.Heal()
	if err := r.Check(0, 2); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestLossyLinkIsSeededAndDirected(t *testing.T) {
	r := New(7)
	r.SetLink(0, 1, LinkFault{Drop: 1.0})
	if _, err := r.Intercept(0, 1, 8); !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	// The reverse direction is unaffected.
	if _, err := r.Intercept(1, 0, 8); err != nil {
		t.Fatalf("reverse link should deliver: %v", err)
	}
	r.SetLink(0, 1, LinkFault{Latency: time.Millisecond})
	d, err := r.Intercept(0, 1, 8)
	if err != nil || d != time.Millisecond {
		t.Fatalf("want 1ms latency, got %v, %v", d, err)
	}

	// A partial drop probability is reproducible across same-seed registries.
	count := func(seed int64) int {
		reg := New(seed)
		reg.SetLink(0, 1, LinkFault{Drop: 0.5})
		drops := 0
		for i := 0; i < 100; i++ {
			if _, err := reg.Intercept(0, 1, 8); err != nil {
				drops++
			}
		}
		return drops
	}
	if a, b := count(42), count(42); a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
}

func TestRetry(t *testing.T) {
	r := New(3)
	// Succeeds after transient drops.
	n := 0
	err := r.Retry(Backoff{Base: time.Microsecond, Deadline: time.Second}, func() error {
		n++
		if n < 3 {
			return ErrDropped
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("retry: err=%v n=%d", err, n)
	}

	// Site-down fails fast without burning the deadline.
	n = 0
	err = r.Retry(Backoff{}, func() error { n++; return ErrSiteDown })
	if !errors.Is(err, ErrSiteDown) || n != 1 {
		t.Fatalf("site-down: err=%v n=%d", err, n)
	}

	// Persistent drops surface a typed timeout.
	err = r.Retry(Backoff{Base: time.Microsecond, Max: 10 * time.Microsecond, Deadline: 2 * time.Millisecond},
		func() error { return ErrUnreachable })
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}

	// Non-retriable errors return unchanged.
	boom := errors.New("boom")
	if err := r.Retry(Backoff{}, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestScheduleGeneration(t *testing.T) {
	cfg := ScheduleConfig{
		Sites:    []simnet.SiteID{0, 1, 2},
		Duration: time.Second,
		Crashes:  3,
	}
	evs := NewSchedule(11, cfg)
	crashes, recovers, parts, heals := 0, 0, 0, 0
	for i, ev := range evs {
		if i > 0 && ev.At < evs[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
		if ev.At < 0 || ev.At > cfg.Duration {
			t.Fatalf("event outside window: %+v", ev)
		}
		switch ev.Kind {
		case EventCrash:
			crashes++
		case EventRecover:
			recovers++
		case EventPartition:
			parts++
			if len(ev.Groups) != 2 || len(ev.Groups[0]) == 0 || len(ev.Groups[1]) == 0 {
				t.Fatalf("bad partition groups: %+v", ev.Groups)
			}
		case EventHeal:
			heals++
		}
	}
	if crashes != 3 || recovers != 3 || parts != 1 || heals != 1 {
		t.Fatalf("counts: crash=%d recover=%d part=%d heal=%d", crashes, recovers, parts, heals)
	}

	// Same seed, same schedule; different seed, (almost surely) different.
	evs2 := NewSchedule(11, cfg)
	if len(evs) != len(evs2) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range evs {
		if evs[i].At != evs2[i].At || evs[i].Kind != evs2[i].Kind || evs[i].Site != evs2[i].Site {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, evs[i], evs2[i])
		}
	}
}
