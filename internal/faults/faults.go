// Package faults is the deterministic fault-injection substrate: a
// registry of injectable failures — per-link message drop probability,
// added latency, full network partitions, and site up/down state —
// consulted by the simulated interconnect on every cross-site message.
// Tests, proteus-cli, and the chaos schedule all drive the same registry,
// and a seeded RNG makes every run reproducible. The paper's testbed is a
// physical 18-site cluster where sites, links, and the Kafka broker can
// all fail; this package gives the reproduction the same failure surface.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"proteus/internal/simnet"
	"proteus/internal/vclock"
)

// Typed failure errors. Every cross-site path returns one of these
// (possibly wrapped) instead of hanging or panicking; match with
// errors.Is.
var (
	// ErrSiteDown reports that an endpoint site is crashed.
	ErrSiteDown = errors.New("faults: site down")
	// ErrTimeout reports that an operation exhausted its deadline.
	ErrTimeout = errors.New("faults: deadline exceeded")
	// ErrUnreachable reports that a network partition separates the sites.
	ErrUnreachable = errors.New("faults: sites partitioned")
	// ErrDropped reports that one message was lost on a lossy link.
	ErrDropped = errors.New("faults: message dropped")
	// ErrOverload reports that the admission controller shed the request
	// instead of queuing it: a tenant's token bucket ran dry with a full
	// wait queue, or a backlog guard tripped. The request was never
	// executed — a shed write is never acknowledged. Wrapped instances
	// are usually *OverloadError values carrying a RetryAfter hint.
	ErrOverload = errors.New("faults: overloaded, request shed")
)

// OverloadError is the concrete shed response: it matches ErrOverload via
// errors.Is and carries the admission controller's hints. Extract it with
// errors.As.
type OverloadError struct {
	// Tenant is the quota the request was charged against.
	Tenant string
	// RetryAfter estimates when retrying has a chance of admission
	// (token refill for the queue ahead of this request).
	RetryAfter time.Duration
	// Reason names the limit that shed the request ("tokens", "queue",
	// "backlog", "wait").
	Reason string
}

// Error renders the shed response.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v: tenant %q (%s, retry after %v)",
		ErrOverload, e.Tenant, e.Reason, e.RetryAfter.Round(time.Microsecond))
}

// Unwrap makes errors.Is(err, ErrOverload) match.
func (e *OverloadError) Unwrap() error { return ErrOverload }

// RetryAfterHint extracts the retry-after hint from a shed response
// (0, false for anything that is not an overload shed).
func RetryAfterHint(err error) (time.Duration, bool) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter, true
	}
	if errors.Is(err, ErrOverload) {
		return 0, true
	}
	return 0, false
}

// Retryable reports whether an internal retry may succeed: dropped
// messages and partitions can heal, and a down site can be failed over or
// recovered. Timeouts are terminal — the deadline is already spent — and
// overload sheds are deliberately terminal too: retrying inside the
// engine would rebuild exactly the queue the controller just refused to
// grow. Clients may retry a shed after its RetryAfter hint.
func Retryable(err error) bool {
	if errors.Is(err, ErrOverload) || errors.Is(err, ErrTimeout) {
		return false
	}
	return errors.Is(err, ErrDropped) ||
		errors.Is(err, ErrUnreachable) ||
		errors.Is(err, ErrSiteDown)
}

// IsRetriable is the legacy name of Retryable.
func IsRetriable(err error) bool { return Retryable(err) }

// LinkFault degrades one directed site pair.
type LinkFault struct {
	// Drop is the probability in [0,1] that a message is lost.
	Drop float64
	// Latency is added to every delivered message.
	Latency time.Duration
}

// Registry holds the cluster's current injected faults. It implements
// simnet.FaultPolicy, so installing it on the network makes every
// cross-site message consult it. All methods are safe for concurrent use.
type Registry struct {
	clk   vclock.Clock
	mu    sync.Mutex
	rng   *rand.Rand
	down  map[simnet.SiteID]bool
	links map[[2]simnet.SiteID]LinkFault
	// group assigns sites to partition groups; sites in different groups
	// are mutually unreachable. Ungrouped sites (including the broker and
	// ASA pseudo-sites unless a schedule places them) reach everyone.
	group map[simnet.SiteID]int
}

// New creates an empty registry whose jitter and drop decisions derive
// from seed.
func New(seed int64) *Registry {
	return &Registry{
		clk:   vclock.Wall{},
		rng:   rand.New(rand.NewSource(seed)),
		down:  make(map[simnet.SiteID]bool),
		links: make(map[[2]simnet.SiteID]LinkFault),
	}
}

// SetClock installs the clock Retry backoffs sleep on and measure
// deadlines against. Install before traffic starts (cluster.New does);
// nil restores the wall clock.
func (r *Registry) SetClock(c vclock.Clock) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clk = vclock.OrWall(c)
}

func (r *Registry) clock() vclock.Clock {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clk
}

// InjectedLatency implements simnet.LatencyEstimator: the deterministic
// added latency currently configured on the directed link. Unlike
// Intercept it consumes no randomness and counts no traffic, so cost
// estimators can consult it freely.
func (r *Registry) InjectedLatency(from, to simnet.SiteID) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.links[[2]simnet.SiteID{from, to}].Latency
}

// SetSiteDown marks a site crashed (true) or recovered (false).
func (r *Registry) SetSiteDown(site simnet.SiteID, down bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if down {
		r.down[site] = true
	} else {
		delete(r.down, site)
	}
}

// SiteDown reports whether the site is currently crashed.
func (r *Registry) SiteDown(site simnet.SiteID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.down[site]
}

// DownSites lists the currently crashed sites.
func (r *Registry) DownSites() []simnet.SiteID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]simnet.SiteID, 0, len(r.down))
	for s := range r.down {
		out = append(out, s)
	}
	return out
}

// SetLink installs a directed link fault (drop probability and added
// latency). A zero LinkFault clears the link.
func (r *Registry) SetLink(from, to simnet.SiteID, f LinkFault) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := [2]simnet.SiteID{from, to}
	if f.Drop == 0 && f.Latency == 0 {
		delete(r.links, key)
		return
	}
	r.links[key] = f
}

// ClearLinks removes every link fault.
func (r *Registry) ClearLinks() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.links = make(map[[2]simnet.SiteID]LinkFault)
}

// Partition splits the network: sites in different groups cannot exchange
// messages. Sites not named in any group remain reachable from everywhere
// (so a schedule that wants to cut broker access must place the broker's
// pseudo-site in a group). Calling Partition replaces any prior partition.
func (r *Registry) Partition(groups ...[]simnet.SiteID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.group = make(map[simnet.SiteID]int)
	for g, sites := range groups {
		for _, s := range sites {
			r.group[s] = g
		}
	}
}

// Heal removes the network partition.
func (r *Registry) Heal() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.group = nil
}

// Partitioned reports whether a network partition is active.
func (r *Registry) Partitioned() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.group) > 0
}

// Check implements simnet.FaultPolicy: it reports whether messages can
// flow between the sites at all (no drop roll, no added latency).
func (r *Registry) Check(from, to simnet.SiteID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checkLocked(from, to)
}

func (r *Registry) checkLocked(from, to simnet.SiteID) error {
	if r.down[from] {
		return fmt.Errorf("%w: site %d", ErrSiteDown, from)
	}
	if r.down[to] {
		return fmt.Errorf("%w: site %d", ErrSiteDown, to)
	}
	if r.group != nil {
		gf, okf := r.group[from]
		gt, okt := r.group[to]
		if okf && okt && gf != gt {
			return fmt.Errorf("%w: site %d and site %d", ErrUnreachable, from, to)
		}
	}
	return nil
}

// Intercept implements simnet.FaultPolicy: consulted once per message, it
// returns added latency and a delivery error (down endpoint, partition,
// or a seeded drop roll on a lossy link).
func (r *Registry) Intercept(from, to simnet.SiteID, bytes int) (time.Duration, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkLocked(from, to); err != nil {
		return 0, err
	}
	f, ok := r.links[[2]simnet.SiteID{from, to}]
	if !ok {
		return 0, nil
	}
	if f.Drop > 0 && r.rng.Float64() < f.Drop {
		return 0, fmt.Errorf("%w: site %d -> site %d (%d bytes)", ErrDropped, from, to, bytes)
	}
	return f.Latency, nil
}

// Jitter draws a full-jitter backoff delay in [0, max) from the seeded
// RNG (never negative; 0 for max <= 0).
func (r *Registry) Jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.rng.Int63n(int64(max)))
}

// Backoff parameterizes Retry: exponential delays with full jitter,
// bounded by a total deadline.
type Backoff struct {
	// Base is the first retry's maximum delay (default 100 µs).
	Base time.Duration
	// Max caps the per-retry delay (default 10 ms).
	Max time.Duration
	// Deadline bounds the whole attempt sequence (default 1 s).
	Deadline time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Microsecond
	}
	if b.Max <= 0 {
		b.Max = 10 * time.Millisecond
	}
	if b.Deadline <= 0 {
		b.Deadline = time.Second
	}
	return b
}

// Retry runs op until it succeeds, fails with a non-retriable error, or
// the deadline expires (returning the last error wrapped in ErrTimeout).
// Site-down errors fail fast — retrying a crashed endpoint is futile until
// failover or recovery, which happen outside the retry loop. Delays use
// seeded full jitter: each sleep is uniform in [0, d) with d doubling from
// Base up to Max.
func (r *Registry) Retry(b Backoff, op func() error) error {
	b = b.withDefaults()
	clk := r.clock()
	start := clk.Now()
	delay := b.Base
	for {
		err := op()
		if err == nil || !Retryable(err) || errors.Is(err, ErrSiteDown) {
			return err
		}
		if clk.Since(start) >= b.Deadline {
			return fmt.Errorf("%w after %v: %v", ErrTimeout, clk.Since(start).Round(time.Microsecond), err)
		}
		clk.Sleep(r.Jitter(delay))
		delay *= 2
		if delay > b.Max {
			delay = b.Max
		}
	}
}
