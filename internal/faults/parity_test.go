package faults

import (
	"testing"
	"time"

	"proteus/internal/simnet"
	"proteus/internal/vclock"
)

// TestSendEstimateParity pins the contract between Network.Send and
// Network.EstimateLatency under fault injection: the deterministic link
// latency the registry injects must appear identically in what Send
// charges and what EstimateLatency predicts, on healthy and degraded
// links alike. Without this parity the ASA's cost model prices a crawling
// link as healthy. Runs on the simulated clock so the injected multi-
// millisecond charges cost no wall time.
func TestSendEstimateParity(t *testing.T) {
	sim := vclock.NewSim(vclock.SimConfig{})
	defer sim.Stop()

	nw := simnet.New(simnet.Config{BaseLatency: 100 * time.Microsecond, BytesPerSecond: 1 << 20})
	nw.SetClock(sim)
	reg := New(42)
	reg.SetClock(sim)
	nw.SetFaults(reg)

	const n = 1 << 16 // 64 KiB at 1 MiB/s -> 62.5 ms transfer charge
	cases := []struct {
		name    string
		latency time.Duration
	}{
		{"healthy", 0},
		{"degraded-5ms", 5 * time.Millisecond},
		{"degraded-80ms", 80 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg.SetLink(1, 2, LinkFault{Latency: tc.latency})
			est := nw.EstimateLatency(1, 2, n)
			got, err := nw.Send(1, 2, n)
			if err != nil {
				t.Fatalf("send: %v", err)
			}
			if got != est {
				t.Errorf("send charged %v, estimate said %v", got, est)
			}
			if tc.latency > 0 && est < tc.latency {
				t.Errorf("estimate %v does not include injected %v", est, tc.latency)
			}
			// The estimator must be side-effect free: repeated estimates
			// return the same value and count no traffic.
			before := nw.Stats(1, 2)
			for i := 0; i < 3; i++ {
				if e := nw.EstimateLatency(1, 2, n); e != est {
					t.Errorf("estimate drifted: %v != %v", e, est)
				}
			}
			if after := nw.Stats(1, 2); after != before {
				t.Errorf("estimates counted as traffic: %+v -> %+v", before, after)
			}
		})
	}

	// The injected latency is directional: the reverse link stays at the
	// healthy estimate.
	reg.SetLink(1, 2, LinkFault{Latency: 50 * time.Millisecond})
	if fwd, rev := nw.EstimateLatency(1, 2, n), nw.EstimateLatency(2, 1, n); rev >= fwd {
		t.Errorf("reverse link estimate %v should be below degraded forward %v", rev, fwd)
	}
}
