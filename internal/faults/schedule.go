// Chaos schedules: a seeded generator producing a reproducible sequence
// of site crashes/recoveries and network partitions/heals for the chaos
// harness to replay against a live workload.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"proteus/internal/simnet"
)

// EventKind is the kind of one scheduled fault event.
type EventKind uint8

const (
	// EventCrash takes a site down.
	EventCrash EventKind = iota
	// EventRecover brings a crashed site back.
	EventRecover
	// EventPartition splits the network into groups.
	EventPartition
	// EventHeal removes the partition.
	EventHeal
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventRecover:
		return "recover"
	case EventPartition:
		return "partition"
	case EventHeal:
		return "heal"
	default:
		return fmt.Sprintf("event(%d)", k)
	}
}

// Event is one scheduled fault, fired At after the run starts.
type Event struct {
	At   time.Duration
	Kind EventKind
	// Site is the target of crash/recover events.
	Site simnet.SiteID
	// Groups carries the partition groups of EventPartition.
	Groups [][]simnet.SiteID
}

// ScheduleConfig parameterizes chaos schedule generation.
type ScheduleConfig struct {
	// Sites are the crashable data sites.
	Sites []simnet.SiteID
	// Duration is the workload window events must fall inside.
	Duration time.Duration
	// Crashes is the number of crash/recover pairs (default 3).
	Crashes int
	// Partitions is the number of partition/heal pairs (default 1).
	Partitions int
	// MinDowntime/MaxDowntime bound each crash's duration
	// (defaults Duration/8 and Duration/4).
	MinDowntime time.Duration
	MaxDowntime time.Duration
	// PartitionExtra is appended to the first partition group — schedules
	// that want the split to also cut broker or ASA access place those
	// pseudo-sites here.
	PartitionExtra []simnet.SiteID
}

// NewSchedule generates a reproducible fault schedule from seed: Crashes
// crash/recover pairs over random sites and Partitions partition/heal
// pairs splitting the sites into two random non-empty groups, all inside
// [0.05·Duration, 0.95·Duration], sorted by fire time.
func NewSchedule(seed int64, cfg ScheduleConfig) []Event {
	if len(cfg.Sites) == 0 || cfg.Duration <= 0 {
		return nil
	}
	if cfg.Crashes <= 0 {
		cfg.Crashes = 3
	}
	if cfg.Partitions < 0 {
		cfg.Partitions = 0
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 1
	}
	if cfg.MinDowntime <= 0 {
		cfg.MinDowntime = cfg.Duration / 8
	}
	if cfg.MaxDowntime < cfg.MinDowntime {
		cfg.MaxDowntime = cfg.Duration / 4
	}
	if cfg.MaxDowntime < cfg.MinDowntime {
		cfg.MaxDowntime = cfg.MinDowntime
	}
	rng := rand.New(rand.NewSource(seed))
	lo := cfg.Duration / 20
	hi := cfg.Duration * 19 / 20

	window := func(down time.Duration) (time.Duration, time.Duration) {
		latest := hi - down
		if latest < lo {
			latest = lo
		}
		at := lo + time.Duration(rng.Int63n(int64(latest-lo)+1))
		end := at + down
		if end > hi {
			end = hi
		}
		return at, end
	}

	var events []Event
	for i := 0; i < cfg.Crashes; i++ {
		site := cfg.Sites[rng.Intn(len(cfg.Sites))]
		down := cfg.MinDowntime
		if cfg.MaxDowntime > cfg.MinDowntime {
			down += time.Duration(rng.Int63n(int64(cfg.MaxDowntime - cfg.MinDowntime)))
		}
		at, end := window(down)
		events = append(events,
			Event{At: at, Kind: EventCrash, Site: site},
			Event{At: end, Kind: EventRecover, Site: site})
	}
	for i := 0; i < cfg.Partitions; i++ {
		// Split the sites into two non-empty groups.
		perm := rng.Perm(len(cfg.Sites))
		cut := 1
		if len(cfg.Sites) > 2 {
			cut = 1 + rng.Intn(len(cfg.Sites)-1)
		}
		a := append([]simnet.SiteID{}, cfg.PartitionExtra...)
		var bGroup []simnet.SiteID
		for j, idx := range perm {
			if j < cut {
				a = append(a, cfg.Sites[idx])
			} else {
				bGroup = append(bGroup, cfg.Sites[idx])
			}
		}
		at, end := window(cfg.MinDowntime)
		events = append(events,
			Event{At: at, Kind: EventPartition, Groups: [][]simnet.SiteID{a, bGroup}},
			Event{At: end, Kind: EventHeal})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}
