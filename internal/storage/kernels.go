package storage

// Typed predicate kernels: selection-vector filters that compare a vector
// against a constant without boxing each element into a types.Value. The
// fast paths mirror types.Compare exactly (int family compared on the raw
// I payload, float promotion when either side is Float64, lexicographic
// strings); anything subtle — NULLs, mixed kind tags — falls back to the
// boxed comparator so batch and row paths can never disagree.

import (
	"math"
	"sort"

	"proteus/internal/types"
)

// opMask decomposes a comparison operator into which of {<, =, >} keep a
// row, matching CmpOp.Eval (unknown ops keep nothing).
func opMask(op CmpOp) (lt, eq, gt bool) {
	switch op {
	case CmpEq:
		return false, true, false
	case CmpNe:
		return true, false, true
	case CmpLt:
		return true, false, false
	case CmpLe:
		return true, true, false
	case CmpGt:
		return false, false, true
	case CmpGe:
		return false, true, true
	}
	return false, false, false
}

// intFamilyKind reports kinds whose payload lives in Value.I and which
// types.Compare orders by raw integer comparison when paired together.
func intFamilyKind(k types.Kind) bool {
	return k == types.KindInt64 || k == types.KindTime || k == types.KindBool
}

func numericKind(k types.Kind) bool {
	return intFamilyKind(k) || k == types.KindFloat64
}

func keepFloat(x, c float64, lt, eq, gt bool) bool {
	if x < c {
		return lt
	}
	if x > c {
		return gt
	}
	return eq
}

// FilterVec appends to dst the indexes in [0, n) — restricted to sel when
// sel is non-nil — whose value in v satisfies (op, val), preserving
// ascending order. n is the vector length; dst is returned grown.
// Encoded vectors are filtered without decoding: dictionary comparisons
// become a one-time binary search producing a code range tested per row,
// frame-of-reference columns compare a translated constant against raw
// codes, and run-length vectors evaluate each run once.
func FilterVec(dst []int32, sel []int32, n int, v *Vec, op CmpOp, val types.Value) []int32 {
	if v.Enc != EncNone {
		return filterEncoded(dst, sel, n, v, op, val)
	}
	lt, eq, gt := opMask(op)
	if v.Null == nil && !val.IsNull() {
		switch {
		case intFamilyKind(v.Kind) && intFamilyKind(val.K):
			c := val.I
			xs := v.I64
			if sel == nil {
				for i := 0; i < n; i++ {
					x := xs[i]
					if (x < c && lt) || (x > c && gt) || (x == c && eq) {
						dst = append(dst, int32(i))
					}
				}
			} else {
				for _, si := range sel {
					x := xs[si]
					if (x < c && lt) || (x > c && gt) || (x == c && eq) {
						dst = append(dst, si)
					}
				}
			}
			return dst
		case v.Kind == types.KindFloat64 && numericKind(val.K):
			// Three-way like types.Compare: NaN compares "equal" there, so
			// x == c must not be the equality test.
			c := val.Float()
			xs := v.F64
			if sel == nil {
				for i := 0; i < n; i++ {
					x := xs[i]
					if keepFloat(x, c, lt, eq, gt) {
						dst = append(dst, int32(i))
					}
				}
			} else {
				for _, si := range sel {
					x := xs[si]
					if keepFloat(x, c, lt, eq, gt) {
						dst = append(dst, si)
					}
				}
			}
			return dst
		case intFamilyKind(v.Kind) && val.K == types.KindFloat64:
			c := val.F
			xs := v.I64
			if sel == nil {
				for i := 0; i < n; i++ {
					if keepFloat(float64(xs[i]), c, lt, eq, gt) {
						dst = append(dst, int32(i))
					}
				}
			} else {
				for _, si := range sel {
					if keepFloat(float64(xs[si]), c, lt, eq, gt) {
						dst = append(dst, si)
					}
				}
			}
			return dst
		case v.Kind == types.KindString && val.K == types.KindString:
			c := val.S
			xs := v.Str
			if sel == nil {
				for i := 0; i < n; i++ {
					x := xs[i]
					if (x < c && lt) || (x > c && gt) || (x == c && eq) {
						dst = append(dst, int32(i))
					}
				}
			} else {
				for _, si := range sel {
					x := xs[si]
					if (x < c && lt) || (x > c && gt) || (x == c && eq) {
						dst = append(dst, si)
					}
				}
			}
			return dst
		}
	}
	// NULLs or mixed kind tags: the boxed comparator is the source of
	// truth for ordering across kinds.
	return filterBoxed(dst, sel, n, v, op, val)
}

// filterBoxed is the row-at-a-time fallback through Value, correct for any
// encoding and any constant kind.
func filterBoxed(dst []int32, sel []int32, n int, v *Vec, op CmpOp, val types.Value) []int32 {
	if sel == nil {
		for i := 0; i < n; i++ {
			if op.Eval(v.Value(i), val) {
				dst = append(dst, int32(i))
			}
		}
	} else {
		for _, si := range sel {
			if op.Eval(v.Value(int(si)), val) {
				dst = append(dst, si)
			}
		}
	}
	return dst
}

// filterEncoded dispatches on the vector's encoding. Constants whose kind
// does not fit the fast path (e.g. a float constant against a FoR column,
// where translation would change float-promotion semantics) fall back to
// the boxed comparator through Value, which decodes per row.
func filterEncoded(dst []int32, sel []int32, n int, v *Vec, op CmpOp, val types.Value) []int32 {
	switch v.Enc {
	case EncDict:
		if val.K == types.KindString {
			statCodeFilters.Add(1)
			return filterDictCodes(dst, sel, n, v, op, val.S)
		}
	case EncFoR:
		if intFamilyKind(val.K) {
			statCodeFilters.Add(1)
			return filterFoRCodes(dst, sel, n, v, op, val.I)
		}
	case EncRuns:
		return filterRuns(dst, sel, v, op, val)
	}
	return filterBoxed(dst, sel, n, v, op, val)
}

// filterDictCodes evaluates the comparison once against the sorted
// dictionary: rows are kept by comparing their raw code against the code
// range [loB, hiB) matching the constant (empty when the constant is
// absent, one code when present — CmpNe keeps everything outside it).
func filterDictCodes(dst []int32, sel []int32, n int, v *Vec, op CmpOp, c string) []int32 {
	lt, eq, gt := opMask(op)
	loB := uint32(sort.SearchStrings(v.Dict, c)) // first code >= c
	hiB := loB
	if int(loB) < len(v.Dict) && v.Dict[loB] == c {
		hiB = loB + 1
	}
	keep := func(code uint32) bool {
		switch {
		case code < loB:
			return lt
		case code >= hiB:
			return gt
		default:
			return eq
		}
	}
	xs := v.Codes
	if sel == nil {
		for i := 0; i < n; i++ {
			if keep(xs[i]) {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, si := range sel {
		if keep(xs[si]) {
			dst = append(dst, si)
		}
	}
	return dst
}

// filterFoRCodes translates the integer constant into code space once and
// compares raw codes. Stored values are base + code with code < 2^32, so a
// constant below the base (or beyond the code range) resolves the
// comparison for every row without touching the codes.
func filterFoRCodes(dst []int32, sel []int32, n int, v *Vec, op CmpOp, cv int64) []int32 {
	lt, eq, gt := opMask(op)
	appendAll := func() []int32 {
		if sel == nil {
			for i := 0; i < n; i++ {
				dst = append(dst, int32(i))
			}
			return dst
		}
		return append(dst, sel...)
	}
	if cv < v.Base {
		if gt { // every stored value > constant
			return appendAll()
		}
		return dst
	}
	d := uint64(cv) - uint64(v.Base)
	if d > math.MaxUint32 {
		if lt { // every stored value < constant
			return appendAll()
		}
		return dst
	}
	c := uint32(d)
	xs := v.Codes
	if sel == nil {
		for i := 0; i < n; i++ {
			x := xs[i]
			if (x < c && lt) || (x > c && gt) || (x == c && eq) {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, si := range sel {
		x := xs[si]
		if (x < c && lt) || (x > c && gt) || (x == c && eq) {
			dst = append(dst, si)
		}
	}
	return dst
}

// filterRuns evaluates the predicate once per run and keeps or skips each
// run's covered rows wholesale.
func filterRuns(dst []int32, sel []int32, v *Vec, op CmpOp, val types.Value) []int32 {
	if sel == nil {
		lo := 0
		for r, end := range v.RunEnds {
			e := int(end)
			if op.Eval(v.runValue(r), val) {
				for i := lo; i < e; i++ {
					dst = append(dst, int32(i))
				}
			}
			lo = e
		}
		return dst
	}
	r, cur, keep := 0, -1, false
	for _, si := range sel {
		for r < len(v.RunEnds) && v.RunEnds[r] <= uint32(si) {
			r++
		}
		if r != cur {
			keep = op.Eval(v.runValue(r), val)
			cur = r
		}
		if keep {
			dst = append(dst, si)
		}
	}
	return dst
}
