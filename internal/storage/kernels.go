package storage

// Typed predicate kernels: selection-vector filters that compare a vector
// against a constant without boxing each element into a types.Value. The
// fast paths mirror types.Compare exactly (int family compared on the raw
// I payload, float promotion when either side is Float64, lexicographic
// strings); anything subtle — NULLs, mixed kind tags — falls back to the
// boxed comparator so batch and row paths can never disagree.

import "proteus/internal/types"

// opMask decomposes a comparison operator into which of {<, =, >} keep a
// row, matching CmpOp.Eval (unknown ops keep nothing).
func opMask(op CmpOp) (lt, eq, gt bool) {
	switch op {
	case CmpEq:
		return false, true, false
	case CmpNe:
		return true, false, true
	case CmpLt:
		return true, false, false
	case CmpLe:
		return true, true, false
	case CmpGt:
		return false, false, true
	case CmpGe:
		return false, true, true
	}
	return false, false, false
}

// intFamilyKind reports kinds whose payload lives in Value.I and which
// types.Compare orders by raw integer comparison when paired together.
func intFamilyKind(k types.Kind) bool {
	return k == types.KindInt64 || k == types.KindTime || k == types.KindBool
}

func numericKind(k types.Kind) bool {
	return intFamilyKind(k) || k == types.KindFloat64
}

func keepFloat(x, c float64, lt, eq, gt bool) bool {
	if x < c {
		return lt
	}
	if x > c {
		return gt
	}
	return eq
}

// FilterVec appends to dst the indexes in [0, n) — restricted to sel when
// sel is non-nil — whose value in v satisfies (op, val), preserving
// ascending order. n is the vector length; dst is returned grown.
func FilterVec(dst []int32, sel []int32, n int, v *Vec, op CmpOp, val types.Value) []int32 {
	lt, eq, gt := opMask(op)
	if v.Null == nil && !val.IsNull() {
		switch {
		case intFamilyKind(v.Kind) && intFamilyKind(val.K):
			c := val.I
			xs := v.I64
			if sel == nil {
				for i := 0; i < n; i++ {
					x := xs[i]
					if (x < c && lt) || (x > c && gt) || (x == c && eq) {
						dst = append(dst, int32(i))
					}
				}
			} else {
				for _, si := range sel {
					x := xs[si]
					if (x < c && lt) || (x > c && gt) || (x == c && eq) {
						dst = append(dst, si)
					}
				}
			}
			return dst
		case v.Kind == types.KindFloat64 && numericKind(val.K):
			// Three-way like types.Compare: NaN compares "equal" there, so
			// x == c must not be the equality test.
			c := val.Float()
			xs := v.F64
			if sel == nil {
				for i := 0; i < n; i++ {
					x := xs[i]
					if keepFloat(x, c, lt, eq, gt) {
						dst = append(dst, int32(i))
					}
				}
			} else {
				for _, si := range sel {
					x := xs[si]
					if keepFloat(x, c, lt, eq, gt) {
						dst = append(dst, si)
					}
				}
			}
			return dst
		case intFamilyKind(v.Kind) && val.K == types.KindFloat64:
			c := val.F
			xs := v.I64
			if sel == nil {
				for i := 0; i < n; i++ {
					if keepFloat(float64(xs[i]), c, lt, eq, gt) {
						dst = append(dst, int32(i))
					}
				}
			} else {
				for _, si := range sel {
					if keepFloat(float64(xs[si]), c, lt, eq, gt) {
						dst = append(dst, si)
					}
				}
			}
			return dst
		case v.Kind == types.KindString && val.K == types.KindString:
			c := val.S
			xs := v.Str
			if sel == nil {
				for i := 0; i < n; i++ {
					x := xs[i]
					if (x < c && lt) || (x > c && gt) || (x == c && eq) {
						dst = append(dst, int32(i))
					}
				}
			} else {
				for _, si := range sel {
					x := xs[si]
					if (x < c && lt) || (x > c && gt) || (x == c && eq) {
						dst = append(dst, si)
					}
				}
			}
			return dst
		}
	}
	// NULLs or mixed kind tags: the boxed comparator is the source of
	// truth for ordering across kinds.
	if sel == nil {
		for i := 0; i < n; i++ {
			if op.Eval(v.Value(i), val) {
				dst = append(dst, int32(i))
			}
		}
	} else {
		for _, si := range sel {
			if op.Eval(v.Value(int(si)), val) {
				dst = append(dst, si)
			}
		}
	}
	return dst
}
