// Package storage defines the contract every partition storage layout in
// Proteus implements: the Store interface with versioned reads, writes and
// scans with predicate/projection pushdown, plus the Layout descriptor
// (format x tier x sort x compression) the adaptive storage advisor reasons
// about (§2.1, §4.1 of the paper).
package storage

import (
	"fmt"

	"proteus/internal/schema"
	"proteus/internal/types"
)

// Format is a storage format: row-oriented (n-ary) or column-oriented
// (decomposition storage model).
type Format uint8

const (
	// RowFormat stores tuples contiguously (§4.1.1).
	RowFormat Format = iota
	// ColumnFormat stores attributes contiguously (§4.1.2).
	ColumnFormat
)

// String names the format.
func (f Format) String() string {
	if f == RowFormat {
		return "row"
	}
	return "column"
}

// Tier is a storage tier.
type Tier uint8

const (
	// MemoryTier keeps partition data in RAM.
	MemoryTier Tier = iota
	// DiskTier keeps partition data on the (simulated) disk.
	DiskTier
)

// String names the tier.
func (t Tier) String() string {
	if t == MemoryTier {
		return "memory"
	}
	return "disk"
}

// NoSort marks a layout with no maintained sort order.
const NoSort schema.ColID = -1

// Layout fully describes how one replica of a partition is stored: its
// format, tier, optional sort column and optional compression (§2.1).
type Layout struct {
	Format     Format
	Tier       Tier
	SortBy     schema.ColID // local column index, or NoSort
	Compressed bool         // run-length encoding (column format only)
}

// String renders the layout, e.g. "column/memory/sorted(1)/rle".
func (l Layout) String() string {
	s := l.Format.String() + "/" + l.Tier.String()
	if l.SortBy != NoSort {
		s += fmt.Sprintf("/sorted(%d)", l.SortBy)
	}
	if l.Compressed {
		s += "/rle"
	}
	return s
}

// DefaultRowLayout is the OLTP-friendly layout: rows in memory.
func DefaultRowLayout() Layout { return Layout{Format: RowFormat, Tier: MemoryTier, SortBy: NoSort} }

// DefaultColumnLayout is the OLAP-friendly layout: columns in memory.
func DefaultColumnLayout() Layout {
	return Layout{Format: ColumnFormat, Tier: MemoryTier, SortBy: NoSort}
}

// CmpOp is a comparison operator usable in pushed-down predicates.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// Eval applies the operator to the comparison result of two values.
func (o CmpOp) Eval(a, b types.Value) bool {
	c := types.Compare(a, b)
	switch o {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// Cond is one conjunct of a pushed-down predicate, comparing a (store-local)
// column against a constant.
type Cond struct {
	Col schema.ColID
	Op  CmpOp
	Val types.Value
}

// Pred is a conjunction of conditions pushed into storage scans. A nil or
// empty Pred matches every row.
type Pred []Cond

// Match reports whether a fully materialized local row satisfies the
// predicate. vals is indexed by store-local column position.
func (p Pred) Match(vals []types.Value) bool {
	for _, c := range p {
		if int(c.Col) >= len(vals) || !c.Op.Eval(vals[c.Col], c.Val) {
			return false
		}
	}
	return true
}

// Columns returns the distinct local columns referenced by the predicate.
func (p Pred) Columns() []schema.ColID {
	seen := map[schema.ColID]bool{}
	var out []schema.ColID
	for _, c := range p {
		if !seen[c.Col] {
			seen[c.Col] = true
			out = append(out, c.Col)
		}
	}
	return out
}

// Stats summarizes a store's physical footprint for the ASA's space and
// cost accounting (§5.1).
type Stats struct {
	Rows       int // live rows at the latest version
	Bytes      int // resident bytes (memory tier) or serialized bytes (disk)
	Versions   int // total row versions retained (MVCC chains + delta)
	DeltaRows  int // buffered, unmerged delta-store rows (column format)
	DiskReads  int // cumulative simulated block reads (disk tier)
	DiskWrites int // cumulative simulated block writes (disk tier)
	// EncodedBytes is the portion of Bytes held in encoded column form
	// (RLE/dictionary/frame-of-reference); the cost model uses the encoded
	// fraction as a scan feature.
	EncodedBytes int
}

// Store is the uniform interface over every storage layout (§4.3:
// "storage-agnostic data accesses ... use cell-based operations"). All row
// identifiers and column positions are store-local: a store covers a
// contiguous range of row_ids and a contiguous slice of the table's columns,
// and the partition layer maps global coordinates into store coordinates.
//
// Versioning: every mutation carries the partition's commit version.
// Reads specify the snapshot version they must observe; a store returns the
// newest data with version <= the requested snapshot (multi-versioning per
// §4.1.1/§4.1.2).
type Store interface {
	// Layout reports how the data is stored.
	Layout() Layout

	// Insert adds a new row. Vals must cover every store column.
	Insert(row schema.Row, version uint64) error
	// Update overwrites the given columns of an existing row.
	Update(id schema.RowID, cols []schema.ColID, vals []types.Value, version uint64) error
	// Delete removes a row as of version.
	Delete(id schema.RowID, version uint64) error

	// Get reads the projection cols of one row at the snapshot version.
	Get(id schema.RowID, cols []schema.ColID, version uint64) (schema.Row, bool)
	// Scan streams rows at the snapshot version that satisfy pred,
	// projected to cols, in unspecified order unless the layout maintains a
	// sort, in which case rows arrive in sort order. fn returning false
	// stops the scan early.
	Scan(cols []schema.ColID, pred Pred, version uint64, fn func(schema.Row) bool)

	// Load bulk-loads rows, replacing current contents (§4.4 bulk load).
	Load(rows []schema.Row, version uint64) error
	// ExtractAll returns a consistent snapshot of every live row at the
	// given version, with all columns, ordered by RowID. Used for layout
	// conversions and replica installation.
	ExtractAll(version uint64) []schema.Row

	// Stats reports the store's physical footprint.
	Stats() Stats
}

// RangeScanner is an optional Store capability used by the morsel-driven
// scan executor. A store that can address contiguous row-id ranges cheaply
// implements it so a partition can be split into fixed-size morsels that
// independent workers scan in parallel.
type RangeScanner interface {
	// MorselBounds returns ascending row-id cut points splitting the live
	// rows into runs of roughly targetRows each. A nil result means the
	// store cannot split itself (e.g. the layout maintains a value sort and
	// row ids are scattered); callers then treat the whole store as one
	// morsel.
	MorselBounds(targetRows int) []schema.RowID
	// ScanRange behaves like Scan restricted to rows with lo <= id < hi.
	ScanRange(cols []schema.ColID, pred Pred, lo, hi schema.RowID, version uint64, fn func(schema.Row) bool)
}
