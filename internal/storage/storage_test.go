package storage

import (
	"testing"
	"testing/quick"

	"proteus/internal/types"
)

func TestCmpOpEval(t *testing.T) {
	two, three := types.NewInt64(2), types.NewInt64(3)
	cases := []struct {
		op   CmpOp
		a, b types.Value
		want bool
	}{
		{CmpEq, two, two, true},
		{CmpEq, two, three, false},
		{CmpNe, two, three, true},
		{CmpLt, two, three, true},
		{CmpLe, two, two, true},
		{CmpGt, three, two, true},
		{CmpGe, two, three, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestPredMatch(t *testing.T) {
	p := Pred{
		{Col: 0, Op: CmpGe, Val: types.NewInt64(10)},
		{Col: 1, Op: CmpEq, Val: types.NewString("a")},
	}
	if !p.Match([]types.Value{types.NewInt64(10), types.NewString("a")}) {
		t.Error("should match")
	}
	if p.Match([]types.Value{types.NewInt64(9), types.NewString("a")}) {
		t.Error("conjunct 0 fails")
	}
	if p.Match([]types.Value{types.NewInt64(10), types.NewString("b")}) {
		t.Error("conjunct 1 fails")
	}
	// Out-of-range column never matches.
	if p.Match([]types.Value{types.NewInt64(10)}) {
		t.Error("short row matched")
	}
	// Empty predicate matches everything.
	if !(Pred{}).Match(nil) || !(Pred(nil)).Match(nil) {
		t.Error("empty pred should match")
	}
}

func TestPredColumns(t *testing.T) {
	p := Pred{{Col: 2}, {Col: 0}, {Col: 2}}
	cols := p.Columns()
	if len(cols) != 2 || cols[0] != 2 || cols[1] != 0 {
		t.Errorf("Columns = %v", cols)
	}
}

func TestLayoutString(t *testing.T) {
	l := Layout{Format: ColumnFormat, Tier: MemoryTier, SortBy: 1, Compressed: true}
	if got := l.String(); got != "column/memory/sorted(1)/rle" {
		t.Errorf("layout = %q", got)
	}
	l = DefaultRowLayout()
	if got := l.String(); got != "row/memory" {
		t.Errorf("layout = %q", got)
	}
}

func TestOpStrings(t *testing.T) {
	ops := map[CmpOp]string{CmpEq: "=", CmpNe: "<>", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("op %d = %q", op, op.String())
		}
	}
}

// Property: Eval(CmpLt) and Eval(CmpGe) partition all int pairs.
func TestCmpComplementProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := types.NewInt64(a), types.NewInt64(b)
		return CmpLt.Eval(va, vb) != CmpGe.Eval(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
