package storage

// Vectorized batch execution (§4.1). The row-at-a-time Scan contract pays
// per-tuple materialization, interface-call overhead and boxed types.Value
// allocation on every row, which flattens the row-vs-column cost asymmetry
// the ASA reasons about. This file defines the columnar Batch that flows
// through the scan pipeline instead: per-column typed vectors, a selection
// vector naming the rows that passed the predicate, and a row-id vector.
// Stores produce batches natively (colstore: zero-copy views over its
// column arrays; rowstore: transposition into pooled buffers) and the
// legacy row Scan is implemented exactly once as a shim over batches
// (ScanViaBatches), so external callers and the txn path are unchanged.
//
// Batches are recycled through a sync.Pool; the exec.batches.* counters
// (batches emitted, rows scanned/selected, pool gets/hits/puts) are
// process-wide atomics surfaced by the engine's metrics snapshot.

import (
	"sort"
	"sync"
	"sync/atomic"

	"proteus/internal/schema"
	"proteus/internal/types"
)

// DefaultBatchRows is the batch capacity used when a caller passes
// maxRows <= 0: large enough to amortize per-batch overhead, small enough
// to stay cache-resident.
const DefaultBatchRows = 256

// VecEnc identifies how a vector's payload is physically encoded. Encoded
// vectors are zero-copy views over a column store's encoded arrays; kernels
// that understand the encoding (FilterVec, the exec aggregate folds) work
// on the raw codes and run lengths, and Value decodes one element for
// everything else. Encoded vectors never carry NULLs — stores fall back to
// decoded emission for columns holding NULLs.
type VecEnc uint8

const (
	// EncNone: the payload lives decoded in I64/F64/Str.
	EncNone VecEnc = iota
	// EncDict: a string column; Codes[i] indexes the ascending-sorted
	// dictionary Dict, so code order is value order.
	EncDict
	// EncFoR: an int-family column stored frame-of-reference; the value at
	// row i is Base + int64(Codes[i]).
	EncFoR
	// EncRuns: run-length form; run r covers rows [RunEnds[r-1], RunEnds[r])
	// (RunEnds[-1] = 0) and its value sits at index r of the payload array
	// selected by Kind.
	EncRuns
)

// Vec is one column of a Batch. Exactly one payload array is populated,
// chosen by Kind: I64 carries Int64/Time/Bool (matching types.Value.I),
// F64 carries Float64, Str carries String. Null is non-nil only when the
// vector holds at least one NULL, in which case it spans the full length.
// A Vec is either a zero-copy view borrowed from a store's immutable
// column arrays (valid only while the batch is) or an owned buffer
// recycled with the batch. When Enc is not EncNone the payload is encoded
// (see VecEnc) and consumers must either dispatch on Enc or box through
// Value.
type Vec struct {
	Kind types.Kind
	I64  []int64
	F64  []float64
	Str  []string
	Null []bool

	// Encoded-view fields (always borrowed, never pooled).
	Enc     VecEnc
	Codes   []uint32 // EncDict/EncFoR: per-row codes
	Dict    []string // EncDict: sorted dictionary
	Base    int64    // EncFoR: frame base
	RunEnds []uint32 // EncRuns: exclusive end row of each run, ascending

	view bool
}

// ViewVec wraps existing typed arrays as a zero-copy vector view. The
// arrays are borrowed (typically from a column store's base arrays) and
// released when the batch is reset or recycled.
func ViewVec(kind types.Kind, i64 []int64, f64 []float64, str []string, null []bool) Vec {
	return Vec{Kind: kind, I64: i64, F64: f64, Str: str, Null: null, view: true}
}

// DictVec wraps a dictionary-encoded string column chunk as a zero-copy
// view: per-row codes into the sorted dictionary. The chunk must be
// NULL-free.
func DictVec(codes []uint32, dict []string) Vec {
	return Vec{Kind: types.KindString, Enc: EncDict, Codes: codes, Dict: dict, view: true}
}

// FoRVec wraps a frame-of-reference-encoded int-family column chunk as a
// zero-copy view: value(i) = base + int64(codes[i]). The chunk must be
// NULL-free.
func FoRVec(kind types.Kind, base int64, codes []uint32) Vec {
	return Vec{Kind: kind, Enc: EncFoR, Base: base, Codes: codes, view: true}
}

// RunsVec wraps a run-length-encoded column chunk without expanding it:
// the payload arrays hold one entry per run and runEnds holds each run's
// exclusive end row. The covered runs must be NULL-free.
func RunsVec(kind types.Kind, i64 []int64, f64 []float64, str []string, runEnds []uint32) Vec {
	return Vec{Kind: kind, Enc: EncRuns, I64: i64, F64: f64, Str: str, RunEnds: runEnds, view: true}
}

// Len is the number of rows in the vector.
func (v *Vec) Len() int {
	switch v.Enc {
	case EncDict, EncFoR:
		return len(v.Codes)
	case EncRuns:
		if len(v.RunEnds) == 0 {
			return 0
		}
		return int(v.RunEnds[len(v.RunEnds)-1])
	}
	switch v.Kind {
	case types.KindFloat64:
		return len(v.F64)
	case types.KindString:
		return len(v.Str)
	case types.KindNull:
		return len(v.Null)
	default:
		return len(v.I64)
	}
}

// runValue boxes run r's value of an EncRuns vector.
func (v *Vec) runValue(r int) types.Value {
	switch v.Kind {
	case types.KindFloat64:
		return types.Value{K: types.KindFloat64, F: v.F64[r]}
	case types.KindString:
		return types.Value{K: types.KindString, S: v.Str[r]}
	default:
		return types.Value{K: v.Kind, I: v.I64[r]}
	}
}

// RunIndex returns the run covering row i of an EncRuns vector.
func (v *Vec) RunIndex(i int) int {
	return sort.Search(len(v.RunEnds), func(r int) bool { return v.RunEnds[r] > uint32(i) })
}

// Value boxes the value at row i.
func (v *Vec) Value(i int) types.Value {
	switch v.Enc {
	case EncDict:
		return types.Value{K: types.KindString, S: v.Dict[v.Codes[i]]}
	case EncFoR:
		return types.Value{K: v.Kind, I: v.Base + int64(v.Codes[i])}
	case EncRuns:
		return v.runValue(v.RunIndex(i))
	}
	if v.Null != nil && v.Null[i] {
		return types.Null()
	}
	switch v.Kind {
	case types.KindFloat64:
		return types.Value{K: types.KindFloat64, F: v.F64[i]}
	case types.KindString:
		return types.Value{K: types.KindString, S: v.Str[i]}
	case types.KindNull:
		return types.Null()
	default:
		return types.Value{K: v.Kind, I: v.I64[i]}
	}
}

// adopt switches an all-NULL vector to kind k, backfilling the payload
// array with zeros for the rows appended so far.
func (v *Vec) adopt(k types.Kind) {
	n := v.Len()
	v.Kind = k
	switch k {
	case types.KindFloat64:
		v.F64 = v.F64[:0]
		for i := 0; i < n; i++ {
			v.F64 = append(v.F64, 0)
		}
	case types.KindString:
		v.Str = v.Str[:0]
		for i := 0; i < n; i++ {
			v.Str = append(v.Str, "")
		}
	default:
		v.I64 = v.I64[:0]
		for i := 0; i < n; i++ {
			v.I64 = append(v.I64, 0)
		}
	}
}

// Append adds one value. Columns are kind-homogeneous (the catalog fixes a
// kind per column); the vector adopts the kind of the first non-NULL value
// and coerces numerics on the rare mismatch.
func (v *Vec) Append(val types.Value) {
	if v.Kind == types.KindNull && val.K != types.KindNull {
		v.adopt(val.K)
	}
	if val.IsNull() {
		if v.Null == nil {
			n := v.Len()
			v.Null = make([]bool, n, n+8)
			for i := range v.Null {
				v.Null[i] = false
			}
		}
		v.Null = append(v.Null, true)
		v.appendZero()
		return
	}
	if v.Null != nil {
		v.Null = append(v.Null, false)
	}
	switch v.Kind {
	case types.KindFloat64:
		v.F64 = append(v.F64, val.Float())
	case types.KindString:
		v.Str = append(v.Str, val.S)
	case types.KindNull:
		// Unreachable: adopt handled non-NULL values above.
	default:
		if val.K == types.KindFloat64 {
			v.I64 = append(v.I64, int64(val.F))
		} else {
			v.I64 = append(v.I64, val.I)
		}
	}
}

// AppendN adds n copies of val (RLE run expansion).
func (v *Vec) AppendN(val types.Value, n int) {
	if n <= 0 {
		return
	}
	if v.Kind == types.KindNull && val.K != types.KindNull {
		v.adopt(val.K)
	}
	if val.IsNull() {
		if v.Null == nil {
			ln := v.Len()
			v.Null = make([]bool, ln, ln+n)
		}
		for i := 0; i < n; i++ {
			v.Null = append(v.Null, true)
			v.appendZero()
		}
		return
	}
	if v.Null != nil {
		for i := 0; i < n; i++ {
			v.Null = append(v.Null, false)
		}
	}
	switch v.Kind {
	case types.KindFloat64:
		f := val.Float()
		for i := 0; i < n; i++ {
			v.F64 = append(v.F64, f)
		}
	case types.KindString:
		for i := 0; i < n; i++ {
			v.Str = append(v.Str, val.S)
		}
	case types.KindNull:
	default:
		for i := 0; i < n; i++ {
			v.I64 = append(v.I64, val.I)
		}
	}
}

func (v *Vec) appendZero() {
	switch v.Kind {
	case types.KindFloat64:
		v.F64 = append(v.F64, 0)
	case types.KindString:
		v.Str = append(v.Str, "")
	case types.KindNull:
	default:
		v.I64 = append(v.I64, 0)
	}
}

// reset readies the vector for reuse: views drop their borrowed arrays so
// the pool never pins store memory; owned buffers keep their capacity.
func (v *Vec) reset() {
	if v.view {
		*v = Vec{}
		return
	}
	v.Kind = types.KindNull
	v.I64 = v.I64[:0]
	v.F64 = v.F64[:0]
	for i := range v.Str {
		v.Str[i] = "" // release string payloads held by the pooled buffer
	}
	v.Str = v.Str[:0]
	v.Null = nil
	v.Enc = EncNone
	v.Codes, v.Dict, v.RunEnds, v.Base = nil, nil, nil, 0
}

// Batch is one unit of vectorized scan output: up to maxRows rows of the
// projected columns, plus the selection vector. Produced by a store's
// ScanBatches, valid only until the consumer callback returns.
type Batch struct {
	// RowIDs maps physical batch row index -> store row id. May be a view
	// into the store's id array on the zero-copy path.
	RowIDs []schema.RowID
	// Vecs holds one vector per projected column, in projection order.
	Vecs []Vec
	// Sel lists the physical row indexes that passed the predicate, in
	// ascending order. nil means every row passed.
	Sel []int32

	rowIDsView bool
}

// NumRows is the physical row count (before selection).
func (b *Batch) NumRows() int { return len(b.RowIDs) }

// Len is the selected row count.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return len(b.RowIDs)
}

// Reset readies the batch for ncols columns, dropping views and keeping
// owned capacity.
func (b *Batch) Reset(ncols int) {
	if b.rowIDsView {
		b.RowIDs = nil
		b.rowIDsView = false
	} else {
		b.RowIDs = b.RowIDs[:0]
	}
	b.Sel = nil
	if cap(b.Vecs) < ncols {
		vecs := make([]Vec, ncols)
		copy(vecs, b.Vecs)
		b.Vecs = vecs
	} else {
		b.Vecs = b.Vecs[:ncols]
	}
	for i := range b.Vecs {
		b.Vecs[i].reset()
	}
}

// SetRowIDsView installs a borrowed row-id slice (zero-copy fast path).
func (b *Batch) SetRowIDsView(ids []schema.RowID) {
	b.RowIDs = ids
	b.rowIDsView = true
}

// AppendRow transposes one row into the batch (row-store scans and the
// delta-merge slow path).
func (b *Batch) AppendRow(id schema.RowID, vals []types.Value) {
	b.RowIDs = append(b.RowIDs, id)
	for i := range b.Vecs {
		b.Vecs[i].Append(vals[i])
	}
}

// Selected iterates the selected physical row indexes in ascending order;
// fn returning false stops the iteration and Selected returns false.
func (b *Batch) Selected(fn func(row int) bool) bool {
	if b.Sel != nil {
		for _, r := range b.Sel {
			if !fn(int(r)) {
				return false
			}
		}
		return true
	}
	for r := 0; r < len(b.RowIDs); r++ {
		if !fn(r) {
			return false
		}
	}
	return true
}

// Row boxes one physical row into dst (reused when cap allows).
func (b *Batch) Row(row int, dst []types.Value) []types.Value {
	dst = dst[:0]
	for i := range b.Vecs {
		dst = append(dst, b.Vecs[i].Value(row))
	}
	return dst
}

// AppendTuples boxes every selected row onto dst as freshly allocated
// tuples, safe to retain past the callback.
func (b *Batch) AppendTuples(dst [][]types.Value) [][]types.Value {
	b.Selected(func(row int) bool {
		t := make([]types.Value, len(b.Vecs))
		for i := range b.Vecs {
			t[i] = b.Vecs[i].Value(row)
		}
		dst = append(dst, t)
		return true
	})
	return dst
}

// AppendRowIDs appends the selected rows' ids onto dst.
func (b *Batch) AppendRowIDs(dst []schema.RowID) []schema.RowID {
	b.Selected(func(row int) bool {
		dst = append(dst, b.RowIDs[row])
		return true
	})
	return dst
}

// recycle is the stronger reset run before pooling: every vector slot up
// to capacity is cleared so stale views can't outlive the scan.
func (b *Batch) recycle() {
	vecs := b.Vecs[:cap(b.Vecs)]
	for i := range vecs {
		vecs[i].reset()
	}
	b.Vecs = b.Vecs[:0]
	if b.rowIDsView {
		b.RowIDs = nil
		b.rowIDsView = false
	} else {
		b.RowIDs = b.RowIDs[:0]
	}
	b.Sel = nil
}

var batchPool sync.Pool

var (
	statBatches      atomic.Int64 // batches emitted to consumers
	statRowsScanned  atomic.Int64 // physical rows inspected (incl. pruned chunks)
	statRowsSelected atomic.Int64 // rows surviving predicate selection
	statPoolGets     atomic.Int64
	statPoolMisses   atomic.Int64
	statPoolPuts     atomic.Int64

	statEncVecs     atomic.Int64 // encoded vectors emitted in batches
	statCodeFilters atomic.Int64 // FilterVec calls answered on raw codes
	statEncFolds    atomic.Int64 // aggregate folds over codes/run lengths
)

// GetBatch takes a pooled batch, reset for ncols columns.
func GetBatch(ncols int) *Batch {
	statPoolGets.Add(1)
	b, _ := batchPool.Get().(*Batch)
	if b == nil {
		statPoolMisses.Add(1)
		b = &Batch{}
	}
	b.Reset(ncols)
	return b
}

// PutBatch recycles a batch. The caller must not retain the batch or any
// view into it afterwards.
func PutBatch(b *Batch) {
	if b == nil {
		return
	}
	b.recycle()
	statPoolPuts.Add(1)
	batchPool.Put(b)
}

// EmitBatch records the batch metrics and hands b to fn. Every ScanBatches
// implementation routes emissions through it so exec.batches.* stays
// consistent across layouts.
func EmitBatch(b *Batch, fn func(*Batch) bool) bool {
	statBatches.Add(1)
	statRowsScanned.Add(int64(b.NumRows()))
	statRowsSelected.Add(int64(b.Len()))
	enc := 0
	for i := range b.Vecs {
		if b.Vecs[i].Enc != EncNone {
			enc++
		}
	}
	if enc > 0 {
		statEncVecs.Add(int64(enc))
	}
	return fn(b)
}

// RecordEncodedFold counts one aggregate fold that ran directly over codes
// or run lengths (called by the executor; surfaced as exec.encoded.*).
func RecordEncodedFold() { statEncFolds.Add(1) }

// EncodedStats is a snapshot of the encoded-execution counters: how much of
// the batch pipeline ran on codes instead of decoded values.
type EncodedStats struct {
	Vecs        int64 // encoded vectors emitted
	CodeFilters int64 // predicate kernels answered on raw codes
	AggFolds    int64 // aggregate folds over codes/run lengths
}

// ReadEncodedStats snapshots the encoded-execution counters (cumulative
// since process start).
func ReadEncodedStats() EncodedStats {
	return EncodedStats{
		Vecs:        statEncVecs.Load(),
		CodeFilters: statCodeFilters.Load(),
		AggFolds:    statEncFolds.Load(),
	}
}

// RecordPrunedRows counts rows a scan inspected (via run metadata or
// vectorized filtering) but never emitted because nothing in the chunk
// passed, keeping the selectivity metric honest.
func RecordPrunedRows(n int) { statRowsScanned.Add(int64(n)) }

// BatchStats is a snapshot of the process-wide batch pipeline counters.
type BatchStats struct {
	Batches      int64
	RowsScanned  int64
	RowsSelected int64
	PoolGets     int64
	PoolHits     int64
	PoolPuts     int64
}

// ReadBatchStats snapshots the counters (cumulative since process start).
func ReadBatchStats() BatchStats {
	gets := statPoolGets.Load()
	return BatchStats{
		Batches:      statBatches.Load(),
		RowsScanned:  statRowsScanned.Load(),
		RowsSelected: statRowsSelected.Load(),
		PoolGets:     gets,
		PoolHits:     gets - statPoolMisses.Load(),
		PoolPuts:     statPoolPuts.Load(),
	}
}

// BatchPoolBalance reports gets − puts: zero when every batch taken from
// the pool has been returned (the leak detector used by tests).
func BatchPoolBalance() int64 { return statPoolGets.Load() - statPoolPuts.Load() }

// BatchScanner is the vectorized counterpart of Store.Scan: it streams the
// exact rows Scan would produce, in the same order, as columnar batches of
// at most maxRows physical rows (maxRows <= 0 means DefaultBatchRows).
// Only selected rows (per Batch.Sel) are part of the result. The batch and
// any views inside it are valid only until fn returns; fn returning false
// stops the scan.
type BatchScanner interface {
	ScanBatches(cols []schema.ColID, pred Pred, version uint64, maxRows int, fn func(*Batch) bool)
}

// BatchRangeScanner restricts the batch contract to lo <= id < hi, the
// morsel executor's unit of work.
type BatchRangeScanner interface {
	ScanBatchesRange(cols []schema.ColID, pred Pred, lo, hi schema.RowID, version uint64, maxRows int, fn func(*Batch) bool)
}

// ScanViaBatches implements the legacy row Scan contract over ScanBatches —
// the single row-at-a-time shim in the system. Stores implement batches
// natively and delegate Scan here.
func ScanViaBatches(bs BatchScanner, cols []schema.ColID, pred Pred, version uint64, fn func(schema.Row) bool) {
	bs.ScanBatches(cols, pred, version, DefaultBatchRows, func(b *Batch) bool {
		return b.Selected(func(row int) bool {
			vals := make([]types.Value, len(b.Vecs))
			for i := range b.Vecs {
				vals[i] = b.Vecs[i].Value(row)
			}
			return fn(schema.Row{ID: b.RowIDs[row], Vals: vals})
		})
	})
}

// ScanRangeViaBatches is ScanViaBatches over the range contract.
func ScanRangeViaBatches(bs BatchRangeScanner, cols []schema.ColID, pred Pred, lo, hi schema.RowID, version uint64, fn func(schema.Row) bool) {
	bs.ScanBatchesRange(cols, pred, lo, hi, version, DefaultBatchRows, func(b *Batch) bool {
		return b.Selected(func(row int) bool {
			vals := make([]types.Value, len(b.Vecs))
			for i := range b.Vecs {
				vals[i] = b.Vecs[i].Value(row)
			}
			return fn(schema.Row{ID: b.RowIDs[row], Vals: vals})
		})
	})
}

// TransposeRows adapts a row-callback scan into the batch contract by
// filling pooled batches. The fallback for stores without a native
// columnar representation.
func TransposeRows(ncols, maxRows int, scan func(fn func(schema.Row) bool), fn func(*Batch) bool) {
	if maxRows <= 0 {
		maxRows = DefaultBatchRows
	}
	b := GetBatch(ncols)
	defer PutBatch(b)
	stopped := false
	scan(func(r schema.Row) bool {
		b.AppendRow(r.ID, r.Vals)
		if b.NumRows() >= maxRows {
			if !EmitBatch(b, fn) {
				stopped = true
				return false
			}
			b.Reset(ncols)
		}
		return true
	})
	if !stopped && b.NumRows() > 0 {
		EmitBatch(b, fn)
	}
}

// ScanBatchesOn runs the batch contract over any store: natively when it
// implements BatchScanner, else by transposing its row Scan.
func ScanBatchesOn(st Store, cols []schema.ColID, pred Pred, version uint64, maxRows int, fn func(*Batch) bool) {
	if bs, ok := st.(BatchScanner); ok {
		bs.ScanBatches(cols, pred, version, maxRows, fn)
		return
	}
	TransposeRows(len(cols), maxRows, func(emit func(schema.Row) bool) {
		st.Scan(cols, pred, version, emit)
	}, fn)
}

// ScanBatchRangeOn runs the batch contract restricted to lo <= id < hi
// over any store, preferring the most native path available.
func ScanBatchRangeOn(st Store, cols []schema.ColID, pred Pred, lo, hi schema.RowID, version uint64, maxRows int, fn func(*Batch) bool) {
	if brs, ok := st.(BatchRangeScanner); ok {
		brs.ScanBatchesRange(cols, pred, lo, hi, version, maxRows, fn)
		return
	}
	if bs, ok := st.(BatchScanner); ok {
		// Narrow each batch's selection to the id range.
		var scratch []int32
		bs.ScanBatches(cols, pred, version, maxRows, func(b *Batch) bool {
			scratch = scratch[:0]
			b.Selected(func(row int) bool {
				if id := b.RowIDs[row]; id >= lo && id < hi {
					scratch = append(scratch, int32(row))
				}
				return true
			})
			if len(scratch) == 0 {
				return true
			}
			saved := b.Sel
			b.Sel = scratch
			ok := fn(b)
			b.Sel = saved
			return ok
		})
		return
	}
	if rs, ok := st.(RangeScanner); ok {
		TransposeRows(len(cols), maxRows, func(emit func(schema.Row) bool) {
			rs.ScanRange(cols, pred, lo, hi, version, emit)
		}, fn)
		return
	}
	TransposeRows(len(cols), maxRows, func(emit func(schema.Row) bool) {
		st.Scan(cols, pred, version, func(r schema.Row) bool {
			if r.ID < lo || r.ID >= hi {
				return true
			}
			return emit(r)
		})
	}, fn)
}
