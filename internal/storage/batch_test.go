package storage

import (
	"math"
	"math/rand"
	"testing"

	"proteus/internal/schema"
	"proteus/internal/types"
)

// TestFilterVecMatchesBoxedEval checks every typed filter fast path against
// the boxed CmpOp.Eval reference over randomized vectors — including NaN
// floats, whose three-way comparison semantics (NaN compares equal to
// everything under types.Compare) the kernels must reproduce bit-for-bit.
func TestFilterVecMatchesBoxedEval(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
	const n = 200

	mkInt := func() *Vec {
		v := &Vec{}
		for i := 0; i < n; i++ {
			v.Append(types.NewInt64(int64(r.Intn(20) - 10)))
		}
		return v
	}
	mkFloat := func() *Vec {
		v := &Vec{}
		for i := 0; i < n; i++ {
			if r.Intn(10) == 0 {
				v.Append(types.NewFloat64(math.NaN()))
			} else {
				v.Append(types.NewFloat64(float64(r.Intn(20)) - 10))
			}
		}
		return v
	}
	mkStr := func() *Vec {
		v := &Vec{}
		words := []string{"", "a", "ab", "b", "zz"}
		for i := 0; i < n; i++ {
			v.Append(types.NewString(words[r.Intn(len(words))]))
		}
		return v
	}
	mkNullable := func() *Vec {
		v := &Vec{}
		for i := 0; i < n; i++ {
			if r.Intn(5) == 0 {
				v.Append(types.Value{})
			} else {
				v.Append(types.NewInt64(int64(r.Intn(10))))
			}
		}
		return v
	}

	cases := []struct {
		name string
		vec  *Vec
		val  types.Value
	}{
		{"int-int", mkInt(), types.NewInt64(int64(r.Intn(20) - 10))},
		{"int-bool", mkInt(), types.NewBool(true)}, // int family × int family
		{"float-float", mkFloat(), types.NewFloat64(3)},
		{"float-nan", mkFloat(), types.NewFloat64(math.NaN())},
		{"int-float", mkInt(), types.NewFloat64(2.5)},
		{"float-int", mkFloat(), types.NewInt64(4)},
		{"str-str", mkStr(), types.NewString("ab")},
		{"null-vec", mkNullable(), types.NewInt64(5)}, // boxed fallback
		{"null-val", mkInt(), types.Value{}},          // boxed fallback
	}
	sels := [][]int32{nil, {0, 3, 7, 11, 50, 51, 52, 199}}

	for _, tc := range cases {
		for _, op := range ops {
			for si, sel := range sels {
				got := FilterVec(nil, sel, tc.vec.Len(), tc.vec, op, tc.val)
				var want []int32
				check := func(i int32) {
					if op.Eval(tc.vec.Value(int(i)), tc.val) {
						want = append(want, i)
					}
				}
				if sel == nil {
					for i := 0; i < tc.vec.Len(); i++ {
						check(int32(i))
					}
				} else {
					for _, i := range sel {
						check(i)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s/%v/sel%d: %d matches, want %d", tc.name, op, si, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%v/sel%d: got[%d]=%d, want %d", tc.name, op, si, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestBatchAppendSelectRecycle exercises the batch building blocks: typed
// append with kind adoption, selection-vector iteration, row
// materialization, and pool recycling that must drop views and string
// payloads.
func TestBatchAppendSelectRecycle(t *testing.T) {
	before := ReadBatchStats()
	b := GetBatch(2)
	b.AppendRow(10, []types.Value{types.NewInt64(1), types.NewString("x")})
	b.AppendRow(11, []types.Value{types.NewInt64(2), types.NewString("y")})
	b.AppendRow(12, []types.Value{types.NewInt64(3), types.NewString("z")})
	if b.NumRows() != 3 || b.Len() != 3 {
		t.Fatalf("rows = %d/%d", b.NumRows(), b.Len())
	}
	b.Sel = []int32{0, 2}
	if b.Len() != 2 {
		t.Fatalf("selected len = %d", b.Len())
	}
	var ids []schema.RowID
	ids = b.AppendRowIDs(ids)
	if len(ids) != 2 || ids[0] != 10 || ids[1] != 12 {
		t.Fatalf("ids = %v", ids)
	}
	var tuples [][]types.Value
	tuples = b.AppendTuples(tuples)
	if len(tuples) != 2 || tuples[1][0].Int() != 3 || tuples[1][1].Str() != "z" {
		t.Fatalf("tuples = %v", tuples)
	}
	PutBatch(b)

	after := ReadBatchStats()
	if after.PoolPuts != before.PoolPuts+1 || after.PoolGets != before.PoolGets+1 {
		t.Fatalf("pool stats: %+v -> %+v", before, after)
	}
	if BatchPoolBalance() != 0 {
		t.Fatalf("pool balance = %d", BatchPoolBalance())
	}

	// A recycled batch must come back empty even after holding views.
	b2 := GetBatch(1)
	b2.SetRowIDsView([]schema.RowID{1, 2, 3})
	b2.Vecs[0] = ViewVec(types.KindInt64, []int64{7, 8, 9}, nil, nil, nil)
	PutBatch(b2)
	b3 := GetBatch(1)
	defer PutBatch(b3)
	if b3.NumRows() != 0 || b3.Sel != nil || b3.Vecs[0].Len() != 0 {
		t.Fatalf("recycled batch not reset: rows=%d sel=%v veclen=%d", b3.NumRows(), b3.Sel, b3.Vecs[0].Len())
	}
}

// TestScanViaBatchesStopsEarly pins the shim's early-termination contract:
// a row callback returning false must stop the whole scan.
func TestScanViaBatchesStopsEarly(t *testing.T) {
	bs := fakeBatchScanner{n: 1000}
	seen := 0
	ScanViaBatches(bs, []schema.ColID{0}, nil, Latest, func(r schema.Row) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("rows seen = %d, want 5", seen)
	}
}

type fakeBatchScanner struct{ n int }

func (f fakeBatchScanner) ScanBatches(cols []schema.ColID, pred Pred, snap uint64, maxRows int, fn func(*Batch) bool) {
	if maxRows <= 0 {
		maxRows = DefaultBatchRows
	}
	b := GetBatch(len(cols))
	defer PutBatch(b)
	vals := make([]types.Value, len(cols))
	for i := 0; i < f.n; i++ {
		for j := range vals {
			vals[j] = types.NewInt64(int64(i))
		}
		b.AppendRow(schema.RowID(i), vals)
		if b.NumRows() >= maxRows {
			if !EmitBatch(b, fn) {
				return
			}
			b.Reset(len(cols))
		}
	}
	if b.NumRows() > 0 {
		EmitBatch(b, fn)
	}
}
