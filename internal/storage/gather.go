package storage

// Columnar append/gather kernels for the batch join and group-by engine.
// AppendVec is the workhorse: it copies selected rows from a (possibly
// encoded, possibly borrowed) source vector into an owned decoded vector,
// staying on typed arrays whenever NULLs are absent. The join engine uses
// it both to accumulate probe-side scan batches into column chunks and to
// late-materialize payload columns by gathering matched row indexes.

import (
	"proteus/internal/types"
)

// AppendVec appends rows of src onto v, decoding any encoded source view.
// sel selects the physical source rows to copy (nil means every row). The
// destination becomes (or stays) a decoded EncNone owned vector; sources
// or destinations carrying NULLs fall back to the boxed per-row path so
// Null-array bookkeeping stays exact.
func (v *Vec) AppendVec(src *Vec, sel []int32) {
	n := src.Len()
	if sel != nil {
		n = len(sel)
	}
	if n == 0 {
		return
	}
	if src.Enc == EncNone && (src.Null != nil || src.Kind == types.KindNull) || v.Null != nil {
		v.appendVecBoxed(src, sel)
		return
	}
	if v.Kind == types.KindNull {
		v.adopt(src.Kind)
	}
	if v.Kind != src.Kind {
		// Rare kind coercion (e.g. a float column meeting an int vector):
		// Append's boxed path owns the numeric coercion rules.
		v.appendVecBoxed(src, sel)
		return
	}
	switch src.Enc {
	case EncDict:
		v.Str = growSlice(v.Str, n)
		if sel == nil {
			for _, c := range src.Codes {
				v.Str = append(v.Str, src.Dict[c])
			}
		} else {
			for _, r := range sel {
				v.Str = append(v.Str, src.Dict[src.Codes[r]])
			}
		}
	case EncFoR:
		v.I64 = growSlice(v.I64, n)
		if sel == nil {
			for _, c := range src.Codes {
				v.I64 = append(v.I64, src.Base+int64(c))
			}
		} else {
			for _, r := range sel {
				v.I64 = append(v.I64, src.Base+int64(src.Codes[r]))
			}
		}
	case EncRuns:
		v.appendVecRuns(src, sel)
	default:
		switch src.Kind {
		case types.KindFloat64:
			v.F64 = growSlice(v.F64, n)
			if sel == nil {
				v.F64 = append(v.F64, src.F64...)
			} else {
				for _, r := range sel {
					v.F64 = append(v.F64, src.F64[r])
				}
			}
		case types.KindString:
			v.Str = growSlice(v.Str, n)
			if sel == nil {
				v.Str = append(v.Str, src.Str...)
			} else {
				for _, r := range sel {
					v.Str = append(v.Str, src.Str[r])
				}
			}
		default:
			v.I64 = growSlice(v.I64, n)
			if sel == nil {
				v.I64 = append(v.I64, src.I64...)
			} else {
				for _, r := range sel {
					v.I64 = append(v.I64, src.I64[r])
				}
			}
		}
	}
}

// growSlice reserves room for n more elements in one reallocation,
// doubling at minimum so repeated small appends stay amortized O(1). A
// large gather (a join materializing 100k matches) pays one allocation
// instead of log(n) doubling copies.
func growSlice[T any](s []T, n int) []T {
	if cap(s)-len(s) >= n {
		return s
	}
	c := len(s) + n
	if c < 2*cap(s) {
		c = 2 * cap(s)
	}
	ns := make([]T, len(s), c)
	copy(ns, s)
	return ns
}

// appendVecRuns expands a run-length source. Without a selection the runs
// expand linearly; under a selection each row binary-searches its run.
func (v *Vec) appendVecRuns(src *Vec, sel []int32) {
	if sel != nil {
		for _, r := range sel {
			ri := src.RunIndex(int(r))
			switch src.Kind {
			case types.KindFloat64:
				v.F64 = append(v.F64, src.F64[ri])
			case types.KindString:
				v.Str = append(v.Str, src.Str[ri])
			default:
				v.I64 = append(v.I64, src.I64[ri])
			}
		}
		return
	}
	lo := uint32(0)
	for ri, end := range src.RunEnds {
		n := int(end - lo)
		switch src.Kind {
		case types.KindFloat64:
			x := src.F64[ri]
			for i := 0; i < n; i++ {
				v.F64 = append(v.F64, x)
			}
		case types.KindString:
			x := src.Str[ri]
			for i := 0; i < n; i++ {
				v.Str = append(v.Str, x)
			}
		default:
			x := src.I64[ri]
			for i := 0; i < n; i++ {
				v.I64 = append(v.I64, x)
			}
		}
		lo = end
	}
}

func (v *Vec) appendVecBoxed(src *Vec, sel []int32) {
	if sel == nil {
		n := src.Len()
		for r := 0; r < n; r++ {
			v.Append(src.Value(r))
		}
		return
	}
	for _, r := range sel {
		v.Append(src.Value(int(r)))
	}
}
