package storage

// Latest is the snapshot version that observes the newest committed data.
const Latest uint64 = ^uint64(0)
