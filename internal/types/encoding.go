package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary encodings below are shared by the in-memory and on-disk row and
// column formats (§4.1). Fixed-width kinds occupy their FixedWidth() bytes in
// little-endian order. Variable-width kinds (strings) have two encodings:
//
//   - the 12-byte row slot (4-byte length + 8 bytes inline-or-arena-offset),
//     written by PutFixed against a string arena; and
//   - the inline disk/column encoding (4-byte length + raw bytes), written
//     by AppendVar.

// Arena stores out-of-line string payloads for a row-format partition. The
// paper stores an 8-byte pointer in each string slot; raw pointers inside
// byte arrays are unsafe under Go's GC, so the arena holds bytes in a single
// slab and slots store offsets. Appends are cheap, and the arena is rebuilt
// on partition compaction.
type Arena struct {
	buf []byte
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Add places s in the arena and returns its offset.
func (a *Arena) Add(s string) uint64 {
	off := uint64(len(a.buf))
	a.buf = append(a.buf, s...)
	return off
}

// Get returns the string of length n stored at offset off.
func (a *Arena) Get(off uint64, n int) string {
	return string(a.buf[off : off+uint64(n)])
}

// Bytes reports the arena's current size in bytes.
func (a *Arena) Bytes() int { return len(a.buf) }

// PutFixed encodes v into dst, which must be at least v.K.FixedWidth() bytes.
// Strings longer than 8 bytes spill to the arena. It returns the number of
// bytes written.
func PutFixed(dst []byte, v Value, arena *Arena) int {
	switch v.K {
	case KindInt64, KindTime:
		binary.LittleEndian.PutUint64(dst, uint64(v.I))
		return 8
	case KindFloat64:
		binary.LittleEndian.PutUint64(dst, math.Float64bits(v.F))
		return 8
	case KindBool:
		if v.I != 0 {
			dst[0] = 1
		} else {
			dst[0] = 0
		}
		return 1
	case KindString:
		binary.LittleEndian.PutUint32(dst, uint32(len(v.S)))
		if len(v.S) <= 8 {
			copy(dst[4:12], v.S)
		} else {
			off := arena.Add(v.S)
			binary.LittleEndian.PutUint64(dst[4:12], off)
		}
		return StringSlotWidth
	case KindNull:
		return 0
	}
	panic(fmt.Sprintf("PutFixed: unsupported kind %v", v.K))
}

// GetFixed decodes a value of kind k from src, resolving arena references.
func GetFixed(src []byte, k Kind, arena *Arena) Value {
	switch k {
	case KindInt64:
		return NewInt64(int64(binary.LittleEndian.Uint64(src)))
	case KindTime:
		return NewTimeMicros(int64(binary.LittleEndian.Uint64(src)))
	case KindFloat64:
		return NewFloat64(math.Float64frombits(binary.LittleEndian.Uint64(src)))
	case KindBool:
		return NewBool(src[0] != 0)
	case KindString:
		n := int(binary.LittleEndian.Uint32(src))
		if n <= 8 {
			return NewString(string(src[4 : 4+n]))
		}
		off := binary.LittleEndian.Uint64(src[4:12])
		return NewString(arena.Get(off, n))
	}
	return Null()
}

// AppendVar appends the inline (disk/column) encoding of v to dst and
// returns the extended slice. Fixed-width kinds append FixedWidth() bytes;
// strings append a 4-byte length followed by the raw bytes (§4.1.2).
func AppendVar(dst []byte, v Value) []byte {
	switch v.K {
	case KindInt64, KindTime:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v.I))
		return append(dst, b[:]...)
	case KindFloat64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
		return append(dst, b[:]...)
	case KindBool:
		if v.I != 0 {
			return append(dst, 1)
		}
		return append(dst, 0)
	case KindString:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(len(v.S)))
		dst = append(dst, b[:]...)
		return append(dst, v.S...)
	case KindNull:
		return dst
	}
	panic(fmt.Sprintf("AppendVar: unsupported kind %v", v.K))
}

// DecodeVar decodes one inline-encoded value of kind k from src, returning
// the value and the number of bytes consumed.
func DecodeVar(src []byte, k Kind) (Value, int) {
	switch k {
	case KindInt64:
		return NewInt64(int64(binary.LittleEndian.Uint64(src))), 8
	case KindTime:
		return NewTimeMicros(int64(binary.LittleEndian.Uint64(src))), 8
	case KindFloat64:
		return NewFloat64(math.Float64frombits(binary.LittleEndian.Uint64(src))), 8
	case KindBool:
		return NewBool(src[0] != 0), 1
	case KindString:
		n := int(binary.LittleEndian.Uint32(src))
		return NewString(string(src[4 : 4+n])), 4 + n
	}
	return Null(), 0
}

// VarWidth reports the number of bytes AppendVar would use for v.
func VarWidth(v Value) int {
	switch v.K {
	case KindInt64, KindTime, KindFloat64:
		return 8
	case KindBool:
		return 1
	case KindString:
		return 4 + len(v.S)
	}
	return 0
}
