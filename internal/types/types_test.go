package types

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:    "NULL",
		KindInt64:   "BIGINT",
		KindFloat64: "DOUBLE",
		KindString:  "VARCHAR",
		KindTime:    "TIMESTAMP",
		KindBool:    "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestFixedWidth(t *testing.T) {
	if w := KindInt64.FixedWidth(); w != 8 {
		t.Errorf("int width = %d, want 8", w)
	}
	if w := KindString.FixedWidth(); w != StringSlotWidth {
		t.Errorf("string width = %d, want %d", w, StringSlotWidth)
	}
	if w := KindBool.FixedWidth(); w != 1 {
		t.Errorf("bool width = %d, want 1", w)
	}
}

func TestCompareNumeric(t *testing.T) {
	if Compare(NewInt64(1), NewInt64(2)) != -1 {
		t.Error("1 < 2 failed")
	}
	if Compare(NewInt64(2), NewInt64(2)) != 0 {
		t.Error("2 == 2 failed")
	}
	if Compare(NewFloat64(2.5), NewInt64(2)) != 1 {
		t.Error("2.5 > 2 failed")
	}
	if Compare(NewInt64(2), NewFloat64(2.0)) != 0 {
		t.Error("2 == 2.0 failed")
	}
}

func TestCompareString(t *testing.T) {
	if Compare(NewString("apple"), NewString("banana")) != -1 {
		t.Error("apple < banana failed")
	}
	if Compare(NewString("x"), NewString("x")) != 0 {
		t.Error("x == x failed")
	}
}

func TestCompareNull(t *testing.T) {
	if Compare(Null(), NewInt64(0)) != -1 {
		t.Error("NULL should sort before 0")
	}
	if Compare(NewString(""), Null()) != 1 {
		t.Error("empty string should sort after NULL")
	}
	if Compare(Null(), Null()) != 0 {
		t.Error("NULL == NULL failed")
	}
}

func TestHashEqualValuesAgree(t *testing.T) {
	a, b := NewInt64(42), NewFloat64(42.0)
	if !Equal(a, b) {
		t.Fatal("42 should equal 42.0")
	}
	if a.Hash() != b.Hash() {
		t.Error("equal values must hash identically")
	}
}

func TestAdd(t *testing.T) {
	if got := Add(NewInt64(2), NewInt64(3)); got.Int() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := Add(NewInt64(2), NewFloat64(0.5)); got.Float() != 2.5 {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := Add(Null(), NewInt64(7)); got.Int() != 7 {
		t.Errorf("NULL+7 = %v", got)
	}
}

func TestParse(t *testing.T) {
	v, err := Parse(KindInt64, "123")
	if err != nil || v.Int() != 123 {
		t.Errorf("Parse int: %v %v", v, err)
	}
	v, err = Parse(KindFloat64, "1.5")
	if err != nil || v.Float() != 1.5 {
		t.Errorf("Parse float: %v %v", v, err)
	}
	v, err = Parse(KindTime, "2021-06-01")
	if err != nil || v.Time().Year() != 2021 {
		t.Errorf("Parse time: %v %v", v, err)
	}
	if _, err = Parse(KindInt64, "abc"); err == nil {
		t.Error("expected error parsing garbage int")
	}
	if _, err = Parse(KindTime, "not-a-date"); err == nil {
		t.Error("expected error parsing garbage time")
	}
}

func TestValueString(t *testing.T) {
	if s := NewBool(true).String(); s != "true" {
		t.Errorf("bool string = %q", s)
	}
	if s := Null().String(); s != "NULL" {
		t.Errorf("null string = %q", s)
	}
	if s := NewTime(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)).String(); s != "2021-06-01T00:00:00Z" {
		t.Errorf("time string = %q", s)
	}
}

func TestFixedRoundTripInt(t *testing.T) {
	buf := make([]byte, 8)
	arena := NewArena()
	PutFixed(buf, NewInt64(-99), arena)
	got := GetFixed(buf, KindInt64, arena)
	if got.Int() != -99 {
		t.Errorf("round trip = %v", got)
	}
}

func TestFixedRoundTripStringInline(t *testing.T) {
	buf := make([]byte, StringSlotWidth)
	arena := NewArena()
	PutFixed(buf, NewString("short"), arena)
	if arena.Bytes() != 0 {
		t.Error("short string should inline, not hit arena")
	}
	if got := GetFixed(buf, KindString, arena); got.Str() != "short" {
		t.Errorf("round trip = %q", got.Str())
	}
}

func TestFixedRoundTripStringArena(t *testing.T) {
	buf := make([]byte, StringSlotWidth)
	arena := NewArena()
	long := "this string exceeds eight bytes"
	PutFixed(buf, NewString(long), arena)
	if arena.Bytes() != len(long) {
		t.Errorf("arena bytes = %d, want %d", arena.Bytes(), len(long))
	}
	if got := GetFixed(buf, KindString, arena); got.Str() != long {
		t.Errorf("round trip = %q", got.Str())
	}
}

func TestVarRoundTrip(t *testing.T) {
	vals := []Value{
		NewInt64(7), NewFloat64(math.Pi), NewString("hello world"),
		NewBool(true), NewTimeMicros(1622505600000000),
	}
	var buf []byte
	for _, v := range vals {
		buf = AppendVar(buf, v)
	}
	off := 0
	for _, want := range vals {
		got, n := DecodeVar(buf[off:], want.K)
		if !Equal(got, want) {
			t.Errorf("decode = %v, want %v", got, want)
		}
		if n != VarWidth(want) {
			t.Errorf("width = %d, want %d", n, VarWidth(want))
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("consumed %d of %d bytes", off, len(buf))
	}
}

// Property: Compare is a total order — antisymmetric and transitive over
// random int/float/string values.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(NewInt64(a), NewInt64(b)) == -Compare(NewInt64(b), NewInt64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Compare(NewString(a), NewString(b)) == -Compare(NewString(b), NewString(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: fixed encoding round-trips arbitrary strings through the arena.
func TestFixedStringRoundTripProperty(t *testing.T) {
	arena := NewArena()
	buf := make([]byte, StringSlotWidth)
	f := func(s string) bool {
		PutFixed(buf, NewString(s), arena)
		return GetFixed(buf, KindString, arena).Str() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: var encoding round-trips arbitrary int64 and float64 values.
func TestVarRoundTripProperty(t *testing.T) {
	f := func(i int64) bool {
		v, n := DecodeVar(AppendVar(nil, NewInt64(i)), KindInt64)
		return v.Int() == i && n == 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(x float64) bool {
		v, _ := DecodeVar(AppendVar(nil, NewFloat64(x)), KindFloat64)
		return v.Float() == x || (math.IsNaN(x) && math.IsNaN(v.Float()))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: hashing is deterministic and equal values collide.
func TestHashDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := NewInt64(r.Int63())
		if v.Hash() != v.Hash() {
			t.Fatal("hash not deterministic")
		}
	}
}
