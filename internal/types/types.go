// Package types defines the value model shared by every storage layout and
// operator in Proteus: typed cell values, comparison, hashing, and the
// fixed/variable-width binary encodings used by the row and column stores.
package types

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the column types supported by Proteus. The set mirrors the
// types exercised by the paper's workloads (TPC-C/TPC-H/YCSB/Twitter):
// integers, decimals (as float64), strings, and timestamps.
type Kind uint8

const (
	// KindNull is the zero Kind; a Value of this kind represents SQL NULL.
	KindNull Kind = iota
	// KindInt64 is a 64-bit signed integer column.
	KindInt64
	// KindFloat64 is a double-precision column (used for decimals).
	KindFloat64
	// KindString is a variable-length string column.
	KindString
	// KindTime is a timestamp column, stored as Unix microseconds.
	KindTime
	// KindBool is a boolean column.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt64:
		return "BIGINT"
	case KindFloat64:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindTime:
		return "TIMESTAMP"
	case KindBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// FixedWidth reports the number of bytes the kind occupies in the in-memory
// row format. Variable-size kinds (strings) use a 12-byte slot: 4 bytes of
// length followed by 8 bytes that either inline the data (if it fits) or
// reference the partition's string arena, mirroring §4.1.1 of the paper.
func (k Kind) FixedWidth() int {
	switch k {
	case KindInt64, KindFloat64, KindTime:
		return 8
	case KindBool:
		return 1
	case KindString:
		return StringSlotWidth
	case KindNull:
		return 0
	}
	return 0
}

// StringSlotWidth is the row-format slot size for variable-length data:
// a 4-byte length plus 8 bytes of inline data or arena reference.
const StringSlotWidth = 12

// Value is a single typed cell value. The zero Value is NULL.
type Value struct {
	K Kind
	I int64   // payload for Int64, Time (unix micros), Bool (0/1)
	F float64 // payload for Float64
	S string  // payload for String
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewInt64 returns an integer value.
func NewInt64(v int64) Value { return Value{K: KindInt64, I: v} }

// NewFloat64 returns a double value.
func NewFloat64(v float64) Value { return Value{K: KindFloat64, F: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{K: KindString, S: v} }

// NewTime returns a timestamp value.
func NewTime(t time.Time) Value { return Value{K: KindTime, I: t.UnixMicro()} }

// NewTimeMicros returns a timestamp value from Unix microseconds.
func NewTimeMicros(us int64) Value { return Value{K: KindTime, I: us} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{K: KindBool, I: i}
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Int returns the integer payload (valid for Int64, Time and Bool kinds).
func (v Value) Int() int64 { return v.I }

// Float returns the value as a float64, coercing integers.
func (v Value) Float() float64 {
	switch v.K {
	case KindFloat64:
		return v.F
	case KindInt64, KindTime, KindBool:
		return float64(v.I)
	}
	return 0
}

// Str returns the string payload.
func (v Value) Str() string { return v.S }

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.I != 0 }

// Time returns the timestamp payload.
func (v Value) Time() time.Time { return time.UnixMicro(v.I) }

// String renders the value for display and debugging.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt64:
		return strconv.FormatInt(v.I, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindTime:
		return time.UnixMicro(v.I).UTC().Format(time.RFC3339)
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Compare orders two values. NULL sorts before every non-NULL value.
// Numeric kinds compare numerically across Int64/Float64/Time; strings
// compare lexicographically. Comparing incompatible kinds falls back to
// comparing the kind tags so that any pair of values has a total order.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.K == KindString && b.K == KindString {
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	}
	if numericKind(a.K) && numericKind(b.K) {
		if a.K == KindFloat64 || b.K == KindFloat64 {
			af, bf := a.Float(), b.Float()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
			return 0
		}
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
	switch {
	case a.K < b.K:
		return -1
	case a.K > b.K:
		return 1
	}
	return 0
}

func numericKind(k Kind) bool {
	return k == KindInt64 || k == KindFloat64 || k == KindTime || k == KindBool
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a 64-bit FNV-1a hash of the value, used by hash joins and
// hash aggregation. Values that compare Equal hash identically.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511627776003
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	switch v.K {
	case KindNull:
		mix(0)
	case KindString:
		mix(1)
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	case KindFloat64:
		mix(2)
		// Hash the numeric value so 2.0 and int64(2) hash alike.
		f := v.F
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			u := uint64(int64(f))
			for i := 0; i < 8; i++ {
				mix(byte(u >> (8 * i)))
			}
		} else {
			u := math.Float64bits(f)
			for i := 0; i < 8; i++ {
				mix(byte(u >> (8 * i)))
			}
		}
	default:
		mix(2)
		u := uint64(v.I)
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	}
	return h
}

// Add returns the numeric sum of two values, used by SUM aggregation.
// NULLs are treated as the additive identity.
func Add(a, b Value) Value {
	if a.IsNull() {
		return b
	}
	if b.IsNull() {
		return a
	}
	if a.K == KindFloat64 || b.K == KindFloat64 {
		return NewFloat64(a.Float() + b.Float())
	}
	return NewInt64(a.I + b.I)
}

// Parse converts a literal string into a Value of the given kind.
func Parse(k Kind, s string) (Value, error) {
	switch k {
	case KindInt64:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("parse int %q: %w", s, err)
		}
		return NewInt64(i), nil
	case KindFloat64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("parse float %q: %w", s, err)
		}
		return NewFloat64(f), nil
	case KindString:
		return NewString(s), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null(), fmt.Errorf("parse bool %q: %w", s, err)
		}
		return NewBool(b), nil
	case KindTime:
		if t, err := time.Parse(time.RFC3339, s); err == nil {
			return NewTime(t), nil
		}
		if t, err := time.Parse("2006-01-02", s); err == nil {
			return NewTime(t), nil
		}
		if t, err := time.Parse("2006/01", s); err == nil {
			return NewTime(t), nil
		}
		return Null(), fmt.Errorf("parse time %q: unrecognized format", s)
	}
	return Null(), fmt.Errorf("cannot parse into kind %v", k)
}
