// Package metadata implements the ASA's partition-metadata directory
// (§5.1 of the paper): for every partition it tracks bounds, the master
// site and layout, replica sites and layouts, access frequencies over two
// time scales (via forecast.Tracker), a zone-map reference, and the
// partitions frequently co-accessed with it. It also maintains per-table
// column statistics (average sizes, access rates) used for space and cost
// estimation.
package metadata

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"proteus/internal/forecast"
	"proteus/internal/partition"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
	"proteus/internal/zonemap"
)

// Replica records where one copy of a partition lives and how it is stored.
type Replica struct {
	Site   simnet.SiteID
	Layout storage.Layout
}

// PartitionMeta is the directory entry for one partition.
type PartitionMeta struct {
	ID     partition.ID
	Bounds partition.Bounds

	mu       sync.RWMutex
	master   Replica
	replicas []Replica // non-master copies

	// Tracker records update/point-read/scan frequencies at two
	// granularities (§5.1 item iii).
	Tracker *forecast.Tracker
	// ZoneMap references the master copy's zone map (§5.1 item iv).
	ZoneMap *zonemap.ZoneMap

	coMu     sync.Mutex
	coAccess map[partition.ID]float64 // decayed co-access weights (item v)
}

// Master returns the master replica descriptor.
func (m *PartitionMeta) Master() Replica {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.master
}

// Replicas returns the non-master replicas.
func (m *PartitionMeta) Replicas() []Replica {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]Replica(nil), m.replicas...)
}

// AllCopies returns the master followed by every replica.
func (m *PartitionMeta) AllCopies() []Replica {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Replica, 0, 1+len(m.replicas))
	out = append(out, m.master)
	return append(out, m.replicas...)
}

// SetMaster changes the master placement/layout.
func (m *PartitionMeta) SetMaster(r Replica) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.master = r
}

// AddReplica records a new replica.
func (m *PartitionMeta) AddReplica(r Replica) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replicas = append(m.replicas, r)
}

// RemoveReplica drops the replica at the site. It reports whether one was
// removed.
func (m *PartitionMeta) RemoveReplica(site simnet.SiteID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, r := range m.replicas {
		if r.Site == site {
			m.replicas = append(m.replicas[:i], m.replicas[i+1:]...)
			return true
		}
	}
	return false
}

// SetReplicaLayout updates the stored layout of the copy at the site
// (master or replica). It reports whether the site held a copy.
func (m *PartitionMeta) SetReplicaLayout(site simnet.SiteID, l storage.Layout) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.master.Site == site {
		m.master.Layout = l
		return true
	}
	for i := range m.replicas {
		if m.replicas[i].Site == site {
			m.replicas[i].Layout = l
			return true
		}
	}
	return false
}

// HasCopyAt reports whether the site stores any copy.
func (m *PartitionMeta) HasCopyAt(site simnet.SiteID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.master.Site == site {
		return true
	}
	for _, r := range m.replicas {
		if r.Site == site {
			return true
		}
	}
	return false
}

// RecordCoAccess strengthens the co-access edge to another partition
// (updates or joins touching both in one request).
func (m *PartitionMeta) RecordCoAccess(other partition.ID, w float64) {
	m.coMu.Lock()
	defer m.coMu.Unlock()
	if m.coAccess == nil {
		m.coAccess = make(map[partition.ID]float64)
	}
	m.coAccess[other] += w
}

// CoAccessed returns the partitions most co-accessed with this one,
// strongest first, up to limit.
func (m *PartitionMeta) CoAccessed(limit int) []partition.ID {
	m.coMu.Lock()
	defer m.coMu.Unlock()
	type kv struct {
		id partition.ID
		w  float64
	}
	all := make([]kv, 0, len(m.coAccess))
	for id, w := range m.coAccess {
		all = append(all, kv{id, w})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].w > all[j].w })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	out := make([]partition.ID, len(all))
	for i, e := range all {
		out[i] = e.id
	}
	return out
}

// ColStats aggregates one column's statistics for a table (§5.1).
type ColStats struct {
	AvgSize float64
	Reads   int64
	Writes  int64
}

// Directory is the ASA's concurrent partition-metadata table.
type Directory struct {
	mu      sync.RWMutex
	parts   map[partition.ID]*PartitionMeta
	byTable map[schema.TableID][]*PartitionMeta
	nextID  uint64

	colMu    sync.Mutex
	colStats map[schema.TableID][]ColStats

	trackerCfg forecast.Config
}

// NewDirectory creates an empty directory; trackers for new partitions use
// cfg.
func NewDirectory(cfg forecast.Config) *Directory {
	return &Directory{
		parts:      make(map[partition.ID]*PartitionMeta),
		byTable:    make(map[schema.TableID][]*PartitionMeta),
		colStats:   make(map[schema.TableID][]ColStats),
		trackerCfg: cfg,
	}
}

// AllocID reserves a fresh partition ID.
func (d *Directory) AllocID() partition.ID {
	return partition.ID(atomic.AddUint64(&d.nextID, 1))
}

// Register adds a partition's metadata. The zone map may be nil.
func (d *Directory) Register(id partition.ID, b partition.Bounds, master Replica, zm *zonemap.ZoneMap) *PartitionMeta {
	m := &PartitionMeta{
		ID: id, Bounds: b, master: master,
		Tracker: forecast.NewTracker(d.trackerCfg),
		ZoneMap: zm,
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.parts[id] = m
	d.byTable[b.Table] = append(d.byTable[b.Table], m)
	return m
}

// Unregister removes a partition (after a split or merge supersedes it).
func (d *Directory) Unregister(id partition.ID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.parts[id]
	if !ok {
		return
	}
	delete(d.parts, id)
	tbl := d.byTable[m.Bounds.Table]
	for i, pm := range tbl {
		if pm.ID == id {
			d.byTable[m.Bounds.Table] = append(tbl[:i], tbl[i+1:]...)
			break
		}
	}
}

// Get looks up one partition's metadata.
func (d *Directory) Get(id partition.ID) (*PartitionMeta, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	m, ok := d.parts[id]
	return m, ok
}

// PartitionsFor returns the partitions of a table whose row range overlaps
// [lo, hi) and that cover at least one of cols (all columns if cols is
// empty), ordered by (RowStart, ColStart).
func (d *Directory) PartitionsFor(table schema.TableID, lo, hi schema.RowID, cols []schema.ColID) []*PartitionMeta {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []*PartitionMeta
	for _, m := range d.byTable[table] {
		if !m.Bounds.OverlapsRows(lo, hi) {
			continue
		}
		if len(cols) > 0 {
			covered := false
			for _, c := range cols {
				if m.Bounds.ContainsCol(c) {
					covered = true
					break
				}
			}
			if !covered {
				continue
			}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bounds.RowStart != out[j].Bounds.RowStart {
			return out[i].Bounds.RowStart < out[j].Bounds.RowStart
		}
		return out[i].Bounds.ColStart < out[j].Bounds.ColStart
	})
	return out
}

// PartitionForRow returns the partitions covering a single row across the
// given columns (several when the row range is vertically partitioned).
func (d *Directory) PartitionForRow(table schema.TableID, row schema.RowID, cols []schema.ColID) []*PartitionMeta {
	return d.PartitionsFor(table, row, row+1, cols)
}

// TablePartitions returns every partition of a table.
func (d *Directory) TablePartitions(table schema.TableID) []*PartitionMeta {
	return d.PartitionsFor(table, 0, schema.RowID(1)<<62, nil)
}

// All returns every registered partition.
func (d *Directory) All() []*PartitionMeta {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*PartitionMeta, 0, len(d.parts))
	for _, m := range d.parts {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InitColStats sizes a table's column statistics.
func (d *Directory) InitColStats(table schema.TableID, avgSizes []float64) {
	d.colMu.Lock()
	defer d.colMu.Unlock()
	cs := make([]ColStats, len(avgSizes))
	for i, s := range avgSizes {
		cs[i].AvgSize = s
	}
	d.colStats[table] = cs
}

// RecordColumnAccess bumps read/write counters for the given columns.
func (d *Directory) RecordColumnAccess(table schema.TableID, cols []schema.ColID, write bool) {
	d.colMu.Lock()
	defer d.colMu.Unlock()
	cs := d.colStats[table]
	for _, c := range cols {
		if int(c) >= len(cs) {
			continue
		}
		if write {
			cs[c].Writes++
		} else {
			cs[c].Reads++
		}
	}
}

// ColumnStats returns a copy of a table's column statistics.
func (d *Directory) ColumnStats(table schema.TableID) []ColStats {
	d.colMu.Lock()
	defer d.colMu.Unlock()
	return append([]ColStats(nil), d.colStats[table]...)
}

// AvgRowBytes estimates the encoded size of one row restricted to cols
// (all columns when cols is empty).
func (d *Directory) AvgRowBytes(table schema.TableID, cols []schema.ColID) int {
	d.colMu.Lock()
	defer d.colMu.Unlock()
	cs := d.colStats[table]
	total := 0.0
	if len(cols) == 0 {
		for _, c := range cs {
			total += c.AvgSize
		}
	} else {
		for _, c := range cols {
			if int(c) < len(cs) {
				total += cs[c].AvgSize
			}
		}
	}
	return int(total)
}

// Validate checks the directory's tiling invariant for a table: every
// (row, col) cell inside the given row bound is covered by exactly one
// partition. Used by tests and by recovery sanity checks.
func (d *Directory) Validate(table schema.TableID, rowEnd schema.RowID, nCols int) error {
	parts := d.TablePartitions(table)
	// Collect row boundaries and check column coverage per row segment.
	for _, m := range parts {
		if m.Bounds.ColStart < 0 || int(m.Bounds.ColEnd) > nCols {
			return fmt.Errorf("partition %d columns out of range: %v", m.ID, m.Bounds)
		}
	}
	type seg struct{ lo, hi schema.RowID }
	var segs []seg
	bounds := map[schema.RowID]bool{0: true, rowEnd: true}
	for _, m := range parts {
		if m.Bounds.RowStart < rowEnd {
			bounds[m.Bounds.RowStart] = true
		}
		if m.Bounds.RowEnd < rowEnd {
			bounds[m.Bounds.RowEnd] = true
		}
	}
	var cuts []schema.RowID
	for b := range bounds {
		cuts = append(cuts, b)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	for i := 0; i+1 < len(cuts); i++ {
		segs = append(segs, seg{cuts[i], cuts[i+1]})
	}
	for _, s := range segs {
		cover := make([]int, nCols)
		for _, m := range parts {
			if m.Bounds.OverlapsRows(s.lo, s.hi) {
				if m.Bounds.RowStart > s.lo || m.Bounds.RowEnd < s.hi {
					return fmt.Errorf("partition %d splits segment [%d,%d): %v", m.ID, s.lo, s.hi, m.Bounds)
				}
				for c := m.Bounds.ColStart; c < m.Bounds.ColEnd; c++ {
					cover[c]++
				}
			}
		}
		for c, n := range cover {
			if n != 1 {
				return fmt.Errorf("table %d rows [%d,%d) column %d covered %d times", table, s.lo, s.hi, c, n)
			}
		}
	}
	return nil
}
