package metadata

import (
	"testing"

	"proteus/internal/forecast"
	"proteus/internal/partition"
	"proteus/internal/schema"
	"proteus/internal/simnet"
	"proteus/internal/storage"
)

func dir() *Directory { return NewDirectory(forecast.DefaultConfig()) }

func b(table schema.TableID, rlo, rhi schema.RowID, clo, chi schema.ColID) partition.Bounds {
	return partition.Bounds{Table: table, RowStart: rlo, RowEnd: rhi, ColStart: clo, ColEnd: chi}
}

func repl(site simnet.SiteID) Replica {
	return Replica{Site: site, Layout: storage.DefaultRowLayout()}
}

func TestRegisterLookup(t *testing.T) {
	d := dir()
	id := d.AllocID()
	m := d.Register(id, b(1, 0, 100, 0, 5), repl(0), nil)
	got, ok := d.Get(id)
	if !ok || got != m {
		t.Fatal("Get failed")
	}
	if got.Master().Site != 0 {
		t.Error("master wrong")
	}
	d.Unregister(id)
	if _, ok := d.Get(id); ok {
		t.Error("unregistered partition still present")
	}
	if len(d.TablePartitions(1)) != 0 {
		t.Error("table index not cleaned")
	}
}

func TestAllocIDsUnique(t *testing.T) {
	d := dir()
	seen := map[partition.ID]bool{}
	for i := 0; i < 100; i++ {
		id := d.AllocID()
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestPartitionsForRowsAndCols(t *testing.T) {
	d := dir()
	// Table 1 tiled: rows [0,50) full cols; rows [50,100) split at col 3.
	p1 := d.Register(d.AllocID(), b(1, 0, 50, 0, 5), repl(0), nil)
	p2 := d.Register(d.AllocID(), b(1, 50, 100, 0, 3), repl(1), nil)
	p3 := d.Register(d.AllocID(), b(1, 50, 100, 3, 5), repl(1), nil)

	got := d.PartitionsFor(1, 0, 100, nil)
	if len(got) != 3 {
		t.Fatalf("all partitions = %d", len(got))
	}
	if got[0] != p1 || got[1] != p2 || got[2] != p3 {
		t.Error("ordering wrong")
	}
	// Only rows >= 50, column 4: just p3.
	got = d.PartitionsFor(1, 50, 100, []schema.ColID{4})
	if len(got) != 1 || got[0] != p3 {
		t.Errorf("filtered = %v", got)
	}
	// Single row lookup spanning the vertical split returns both.
	got = d.PartitionForRow(1, 60, []schema.ColID{0, 4})
	if len(got) != 2 {
		t.Errorf("row 60 partitions = %d", len(got))
	}
	// Other tables invisible.
	if len(d.PartitionsFor(2, 0, 100, nil)) != 0 {
		t.Error("cross-table leak")
	}
}

func TestReplicaManagement(t *testing.T) {
	d := dir()
	m := d.Register(d.AllocID(), b(1, 0, 10, 0, 2), repl(0), nil)
	m.AddReplica(Replica{Site: 1, Layout: storage.DefaultColumnLayout()})
	m.AddReplica(Replica{Site: 2, Layout: storage.DefaultColumnLayout()})
	if len(m.Replicas()) != 2 || len(m.AllCopies()) != 3 {
		t.Fatal("replica counts wrong")
	}
	if !m.HasCopyAt(0) || !m.HasCopyAt(2) || m.HasCopyAt(9) {
		t.Error("HasCopyAt wrong")
	}
	if !m.RemoveReplica(1) {
		t.Error("remove failed")
	}
	if m.RemoveReplica(1) {
		t.Error("double remove succeeded")
	}
	if !m.SetReplicaLayout(2, storage.DefaultRowLayout()) {
		t.Error("SetReplicaLayout failed")
	}
	if m.Replicas()[0].Layout.Format != storage.RowFormat {
		t.Error("layout not updated")
	}
	// Master layout update via SetReplicaLayout.
	if !m.SetReplicaLayout(0, storage.DefaultColumnLayout()) {
		t.Error("master layout update failed")
	}
	if m.Master().Layout.Format != storage.ColumnFormat {
		t.Error("master layout wrong")
	}
	m.SetMaster(Replica{Site: 5, Layout: storage.DefaultRowLayout()})
	if m.Master().Site != 5 {
		t.Error("SetMaster failed")
	}
}

func TestCoAccess(t *testing.T) {
	d := dir()
	m := d.Register(d.AllocID(), b(1, 0, 10, 0, 2), repl(0), nil)
	m.RecordCoAccess(7, 1)
	m.RecordCoAccess(8, 5)
	m.RecordCoAccess(7, 1)
	top := m.CoAccessed(1)
	if len(top) != 1 || top[0] != 8 {
		t.Errorf("top co-access = %v", top)
	}
	all := m.CoAccessed(0)
	if len(all) != 2 {
		t.Errorf("all co-access = %v", all)
	}
}

func TestColumnStats(t *testing.T) {
	d := dir()
	d.InitColStats(1, []float64{8, 8, 100})
	d.RecordColumnAccess(1, []schema.ColID{0, 2}, false)
	d.RecordColumnAccess(1, []schema.ColID{2}, true)
	cs := d.ColumnStats(1)
	if cs[0].Reads != 1 || cs[2].Reads != 1 || cs[2].Writes != 1 {
		t.Errorf("stats = %+v", cs)
	}
	if got := d.AvgRowBytes(1, nil); got != 116 {
		t.Errorf("row bytes = %d", got)
	}
	if got := d.AvgRowBytes(1, []schema.ColID{2}); got != 100 {
		t.Errorf("col-2 bytes = %d", got)
	}
}

func TestValidateTiling(t *testing.T) {
	d := dir()
	d.Register(d.AllocID(), b(1, 0, 50, 0, 5), repl(0), nil)
	d.Register(d.AllocID(), b(1, 50, 100, 0, 3), repl(1), nil)
	d.Register(d.AllocID(), b(1, 50, 100, 3, 5), repl(1), nil)
	if err := d.Validate(1, 100, 5); err != nil {
		t.Errorf("valid tiling rejected: %v", err)
	}
	// Introduce a gap.
	d.Register(d.AllocID(), b(2, 0, 50, 0, 5), repl(0), nil)
	if err := d.Validate(2, 100, 5); err == nil {
		t.Error("gap not detected")
	}
	// Introduce overlap.
	d.Register(d.AllocID(), b(3, 0, 100, 0, 5), repl(0), nil)
	d.Register(d.AllocID(), b(3, 50, 100, 0, 5), repl(0), nil)
	if err := d.Validate(3, 100, 5); err == nil {
		t.Error("overlap not detected")
	}
}

func TestTrackerAttached(t *testing.T) {
	d := dir()
	m := d.Register(d.AllocID(), b(1, 0, 10, 0, 2), repl(0), nil)
	m.Tracker.Record(forecast.Scan, 3)
	if m.Tracker.Total(forecast.Scan) != 3 {
		t.Error("tracker not recording")
	}
}
