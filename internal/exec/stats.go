package exec

import "sync/atomic"

// Process-wide counters for the batch join and group-by engine, following
// the storage batch-stats pattern: operators bump atomics on their hot
// paths and the cluster engine's metrics snapshot surfaces them as
// exec.join.* / exec.groupby.* counters in /metrics and \stats.

var (
	statJoins           atomic.Int64
	statJoinBuildRows   atomic.Int64
	statJoinProbeRows   atomic.Int64
	statJoinOutRows     atomic.Int64
	statJoinBuildNanos  atomic.Int64
	statJoinProbeNanos  atomic.Int64
	statBloomTested     atomic.Int64
	statBloomPassed     atomic.Int64
	statRFBoundsPreds   atomic.Int64
	statSpillPartitions atomic.Int64
	statSpillBytes      atomic.Int64
	statSpillRecursions atomic.Int64

	statGroupByBatches  atomic.Int64
	statGroupByIntRows  atomic.Int64
	statGroupByCodeRows atomic.Int64
	statGroupByBoxRows  atomic.Int64
)

// RecordRFBoundsPush counts a min-max runtime-filter bounds predicate
// pushed into a scan's predicate (bumped by the cluster executor, which
// owns the plan-side pushdown).
func RecordRFBoundsPush() { statRFBoundsPreds.Add(1) }

// JoinStats is a snapshot of the batch-join counters.
type JoinStats struct {
	Joins           int64 // batch hash joins executed
	BuildRows       int64 // rows hashed into build tables
	ProbeRows       int64 // rows probed
	OutRows         int64 // join output rows materialized
	BuildNanos      int64 // time spent building (incl. runtime filters)
	ProbeNanos      int64 // time spent probing + materializing
	BloomTested     int64 // probe rows tested against a runtime filter
	BloomPassed     int64 // probe rows that passed the runtime filter
	BoundsPreds     int64 // min-max runtime-filter predicates pushed to scans
	SpillPartitions int64 // grace-join partitions written to the spill device
	SpillBytes      int64 // bytes written to the spill device
	SpillRecursions int64 // partitions that repartitioned recursively
}

// ReadJoinStats snapshots the process-wide batch-join counters.
func ReadJoinStats() JoinStats {
	return JoinStats{
		Joins:           statJoins.Load(),
		BuildRows:       statJoinBuildRows.Load(),
		ProbeRows:       statJoinProbeRows.Load(),
		OutRows:         statJoinOutRows.Load(),
		BuildNanos:      statJoinBuildNanos.Load(),
		ProbeNanos:      statJoinProbeNanos.Load(),
		BloomTested:     statBloomTested.Load(),
		BloomPassed:     statBloomPassed.Load(),
		BoundsPreds:     statRFBoundsPreds.Load(),
		SpillPartitions: statSpillPartitions.Load(),
		SpillBytes:      statSpillBytes.Load(),
		SpillRecursions: statSpillRecursions.Load(),
	}
}

// GroupByStats is a snapshot of the grouped-aggregation counters, split by
// which key path routed each row: typed int64 keys, raw dictionary/FoR
// codes, or the boxed fallback.
type GroupByStats struct {
	Batches  int64 // grouped batches observed
	IntRows  int64 // rows grouped through the typed int64 key path
	CodeRows int64 // rows grouped on raw dictionary codes
	BoxRows  int64 // rows grouped through the boxed fallback
}

// ReadGroupByStats snapshots the process-wide group-by counters.
func ReadGroupByStats() GroupByStats {
	return GroupByStats{
		Batches:  statGroupByBatches.Load(),
		IntRows:  statGroupByIntRows.Load(),
		CodeRows: statGroupByCodeRows.Load(),
		BoxRows:  statGroupByBoxRows.Load(),
	}
}
