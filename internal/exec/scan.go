package exec

import (
	"fmt"
	"time"

	"proteus/internal/cost"
	"proteus/internal/partition"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// localPred translates a predicate over table-global columns into the
// partition's local column space, keeping only the conjuncts the partition
// covers. ok reports whether every conjunct was pushed; when false the
// caller must enforce the uncovered conditions above the scan (for
// vertically partitioned scans, the row-id intersection across pieces
// does this).
func localPred(p *partition.Partition, pred storage.Pred) (storage.Pred, bool) {
	return LocalPred(p.Bounds, pred)
}

// ScanVariant picks the cost-function variant for the partition's layout.
func ScanVariant(l storage.Layout, pred storage.Pred) cost.Variant {
	if l.SortBy != storage.NoSort {
		for _, c := range pred {
			if c.Col == l.SortBy {
				return cost.ScanSorted
			}
		}
	}
	return cost.ScanSeq
}

// Scan reads the projection cols (table-global ids) of every row in the
// partition matching pred (table-global), at the snapshot version. The
// bool result reports whether the whole predicate was pushed into storage;
// when false the caller must apply the residual conditions.
func Scan(p *partition.Partition, cols []schema.ColID, pred storage.Pred, snap uint64) (Rel, cost.Observation, bool) {
	start := time.Now()
	lp, pushed := localPred(p, pred)
	lcols := make([]schema.ColID, len(cols))
	for i, c := range cols {
		lcols[i] = p.Bounds.LocalCol(c)
	}
	rel := Rel{Cols: make([]string, len(cols))}
	for i := range cols {
		rel.Cols[i] = fmt.Sprintf("c%d", cols[i])
	}
	if p.ZoneMap().CanSkip(lp) {
		// Zone-map skip (§4.1.3): no data touched. The observation carries
		// no features so the cost model is not trained on a no-op.
		return rel, cost.Observation{Op: cost.OpScan, Layout: p.Layout()}, pushed
	}
	p.ScanBatches(lcols, lp, snap, DefaultBatchRows, func(b *Batch) bool {
		rel.Tuples = b.AppendTuples(rel.Tuples)
		return true
	})

	layout := p.Layout()
	st := p.Stats()
	inBytes := 0
	if st.Rows > 0 {
		inBytes = st.Bytes / maxInt(st.Rows, 1)
	}
	sel := 1.0
	if st.Rows > 0 {
		sel = float64(len(rel.Tuples)) / float64(st.Rows)
	}
	obs := cost.Observation{
		Op:       cost.OpScan,
		Variant:  ScanVariant(layout, lp),
		Layout:   layout,
		Features: cost.ScanFeaturesEnc(st.Rows, inBytes, rel.RowBytes(), sel, encFracOf(st)),
		Latency:  time.Since(start),
	}
	return rel, obs, pushed
}

// encFracOf is the fraction of a store's resident bytes held in encoded
// column form, fed to the scan cost model as a feature.
func encFracOf(st storage.Stats) float64 {
	if st.Bytes <= 0 {
		return 0
	}
	return float64(st.EncodedBytes) / float64(st.Bytes)
}

// ScanWithRowIDs is like Scan but also returns each tuple's row id,
// used by operators that later fetch more columns positionally.
func ScanWithRowIDs(p *partition.Partition, cols []schema.ColID, pred storage.Pred, snap uint64) (Rel, []schema.RowID, cost.Observation) {
	start := time.Now()
	lp, _ := localPred(p, pred)
	lcols := make([]schema.ColID, len(cols))
	for i, c := range cols {
		lcols[i] = p.Bounds.LocalCol(c)
	}
	rel := Rel{}
	var ids []schema.RowID
	p.ScanBatches(lcols, lp, snap, DefaultBatchRows, func(b *Batch) bool {
		rel.Tuples = b.AppendTuples(rel.Tuples)
		ids = b.AppendRowIDs(ids)
		return true
	})
	layout := p.Layout()
	st := p.Stats()
	obs := cost.Observation{
		Op:       cost.OpScan,
		Variant:  ScanVariant(layout, lp),
		Layout:   layout,
		Features: cost.ScanFeaturesEnc(st.Rows, st.Bytes/maxInt(st.Rows, 1), rel.RowBytes(), selOf(len(ids), st.Rows), encFracOf(st)),
		Latency:  time.Since(start),
	}
	return rel, ids, obs
}

// ScanRows is ScanWithRowIDs restricted to row ids in [lo, hi) — used when
// stitching vertically partitioned pieces whose horizontal splits are not
// aligned.
func ScanRows(p *partition.Partition, cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID, snap uint64) (Rel, []schema.RowID, cost.Observation) {
	start := time.Now()
	lp, _ := localPred(p, pred)
	lcols := make([]schema.ColID, len(cols))
	for i, c := range cols {
		lcols[i] = p.Bounds.LocalCol(c)
	}
	rel := Rel{}
	var ids []schema.RowID
	if p.ZoneMap().CanSkip(lp) {
		return rel, ids, cost.Observation{Op: cost.OpScan, Layout: p.Layout()}
	}
	p.ScanBatchesRange(lcols, lp, lo, hi, snap, DefaultBatchRows, func(b *Batch) bool {
		rel.Tuples = b.AppendTuples(rel.Tuples)
		ids = b.AppendRowIDs(ids)
		return true
	})
	layout := p.Layout()
	st := p.Stats()
	obs := cost.Observation{
		Op:       cost.OpScan,
		Variant:  ScanVariant(layout, lp),
		Layout:   layout,
		Features: cost.ScanFeaturesEnc(st.Rows, st.Bytes/maxInt(st.Rows, 1), rel.RowBytes(), selOf(len(ids), st.Rows), encFracOf(st)),
		Latency:  time.Since(start),
	}
	return rel, ids, obs
}

// PointRead fetches one row's projection (table-global cols).
func PointRead(p *partition.Partition, id schema.RowID, cols []schema.ColID, snap uint64) (schema.Row, bool, cost.Observation) {
	start := time.Now()
	lcols := make([]schema.ColID, len(cols))
	for i, c := range cols {
		lcols[i] = p.Bounds.LocalCol(c)
	}
	r, ok := p.Get(id, lcols, snap)
	obs := cost.Observation{
		Op:       cost.OpPointRead,
		Layout:   p.Layout(),
		Features: cost.PointReadFeatures(len(cols), approxRowBytes(r.Vals)),
		Latency:  time.Since(start),
	}
	return r, ok, obs
}

// Insert adds a row (values in partition-local column order).
func Insert(p *partition.Partition, row schema.Row, ver uint64) (cost.Observation, error) {
	start := time.Now()
	err := p.Insert(row, ver)
	return cost.Observation{
		Op:       cost.OpWrite,
		Layout:   p.Layout(),
		Features: cost.WriteFeatures(len(row.Vals), approxRowBytes(row.Vals)),
		Latency:  time.Since(start),
	}, err
}

// Update rewrites the given table-global columns of a row.
func Update(p *partition.Partition, id schema.RowID, cols []schema.ColID, vals []types.Value, ver uint64) (cost.Observation, error) {
	start := time.Now()
	lcols := make([]schema.ColID, len(cols))
	for i, c := range cols {
		lcols[i] = p.Bounds.LocalCol(c)
	}
	err := p.Update(id, lcols, vals, ver)
	return cost.Observation{
		Op:       cost.OpWrite,
		Layout:   p.Layout(),
		Features: cost.WriteFeatures(len(cols), approxRowBytes(vals)),
		Latency:  time.Since(start),
	}, err
}

// Delete removes a row.
func Delete(p *partition.Partition, id schema.RowID, ver uint64) (cost.Observation, error) {
	start := time.Now()
	err := p.Delete(id, ver)
	return cost.Observation{
		Op:       cost.OpWrite,
		Layout:   p.Layout(),
		Features: cost.WriteFeatures(1, 0),
		Latency:  time.Since(start),
	}, err
}

func approxRowBytes(vals []types.Value) int {
	n := 0
	for _, v := range vals {
		n += types.VarWidth(v)
	}
	return n
}

func selOf(out, in int) float64 {
	if in <= 0 {
		return 1
	}
	return float64(out) / float64(in)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
