package exec

import (
	"fmt"
	"time"

	"proteus/internal/cost"
	"proteus/internal/types"
)

// NULL-key semantics: all join variants treat NULL keys the way filter
// predicates do — CmpEq.Eval compares through types.Compare, which orders
// NULL equal to NULL, so a NULL key matches a NULL key. joinKey hashes
// NULLs into the table and keysEqual uses types.Equal (Compare == 0);
// MergeJoin's compareKeys goes through types.Compare directly. All three
// variants therefore agree: NULL == NULL joins, NULL != non-NULL doesn't.

// joinKey hashes a tuple's key columns (NULLs hash like any other value).
func joinKey(t []types.Value, keys []int) uint64 {
	h := uint64(1469598103934665603)
	for _, k := range keys {
		h = h*1099511628211 ^ t[k].Hash()
	}
	return h
}

// keysEqual matches keys via types.Equal, i.e. types.Compare == 0, so NULL
// keys compare equal to NULL keys — consistent with CmpOp.Eval filters.
func keysEqual(a, b []types.Value, aKeys, bKeys []int) bool {
	for i := range aKeys {
		if !types.Equal(a[aKeys[i]], b[bKeys[i]]) {
			return false
		}
	}
	return true
}

func joinCols(l, r Rel) []string {
	cols := make([]string, 0, len(l.Cols)+len(r.Cols))
	cols = append(cols, l.Cols...)
	return append(cols, r.Cols...)
}

func concatTuple(a, b []types.Value) []types.Value {
	t := make([]types.Value, 0, len(a)+len(b))
	t = append(t, a...)
	return append(t, b...)
}

// tupleArena hands out concatenated output tuples from chunked slabs, so a
// join emitting k rows costs O(k/chunk) allocations instead of one per row.
// Returned tuples are full-slice-capped, so they never alias later ones.
type tupleArena struct {
	buf []types.Value
}

const tupleArenaChunk = 8192

func (ar *tupleArena) concat(a, b []types.Value) []types.Value {
	n := len(a) + len(b)
	if cap(ar.buf)-len(ar.buf) < n {
		c := tupleArenaChunk
		if n > c {
			c = n
		}
		ar.buf = make([]types.Value, 0, c)
	}
	start := len(ar.buf)
	ar.buf = append(ar.buf, a...)
	ar.buf = append(ar.buf, b...)
	return ar.buf[start:len(ar.buf):len(ar.buf)]
}

// rowHashTable is a chained-index hash table over build tuples: head/next
// arrays preallocated from the build cardinality replace the former
// map[uint64][]int and its per-bucket slice growth. Chains are threaded in
// reverse so iteration ascends in build index.
type rowHashTable struct {
	head   []int32
	next   []int32
	hashes []uint64
	mask   uint64
}

func buildRowHashTable(tuples [][]types.Value, keys []int) rowHashTable {
	n := len(tuples)
	nb := uint64(2)
	for nb < uint64(n)*2 {
		nb <<= 1
	}
	t := rowHashTable{
		head:   make([]int32, nb),
		next:   make([]int32, n),
		hashes: make([]uint64, n),
		mask:   nb - 1,
	}
	for i := range t.head {
		t.head[i] = -1
	}
	for i, tup := range tuples {
		t.hashes[i] = joinKey(tup, keys)
	}
	for i := n - 1; i >= 0; i-- {
		slot := t.hashes[i] & t.mask
		t.next[i] = t.head[slot]
		t.head[slot] = int32(i)
	}
	return t
}

// each calls fn with every build index whose hash matches h, ascending.
func (t *rowHashTable) each(h uint64, fn func(bi int)) {
	for bi := t.head[h&t.mask]; bi >= 0; bi = t.next[bi] {
		if t.hashes[bi] == h {
			fn(int(bi))
		}
	}
}

func joinObs(variant cost.Variant, l, r, out Rel, d time.Duration) cost.Observation {
	sel := 1.0
	// The cardinality product overflows int for relations past ~3B rows
	// each; compute in float64.
	if denom := float64(l.NumRows()) * float64(r.NumRows()); denom > 0 {
		sel = float64(out.NumRows()) / denom
	}
	return cost.Observation{
		Op:       cost.OpJoin,
		Variant:  variant,
		Features: cost.JoinFeatures(l.NumRows(), r.NumRows(), out.NumRows(), l.RowBytes()+r.RowBytes(), sel),
		Latency:  d,
	}
}

// HashJoin computes the inner equi-join of l and r on the given key
// positions, building the hash table on the smaller input. Output rows are
// left-major regardless of which side builds — ascending left index, then
// ascending right index — matching MergeJoin and NestedLoopJoin, so callers
// (and the differential tests) can compare variants row for row.
func HashJoin(l, r Rel, lKeys, rKeys []int) (Rel, cost.Observation) {
	start := time.Now()
	build, probe := r, l
	bKeys, pKeys := rKeys, lKeys
	swapped := false
	if l.NumRows() < r.NumRows() {
		build, probe = l, r
		bKeys, pKeys = lKeys, rKeys
		swapped = true
	}
	ht := buildRowHashTable(build.Tuples, bKeys)
	out := Rel{Cols: joinCols(l, r)}
	var arena tupleArena
	if swapped {
		// Build side is l, probe is r: probing emits right-major order, so
		// collect each l row's matching r indexes (ascending, since the
		// probe walks r in order) and emit grouped by l afterwards.
		matches := make([][]int, build.NumRows())
		for pi, pt := range probe.Tuples {
			ht.each(joinKey(pt, pKeys), func(bi int) {
				if keysEqual(pt, build.Tuples[bi], pKeys, bKeys) {
					matches[bi] = append(matches[bi], pi)
				}
			})
		}
		for li, ps := range matches {
			for _, pi := range ps {
				out.Tuples = append(out.Tuples, arena.concat(build.Tuples[li], probe.Tuples[pi]))
			}
		}
		return out, joinObs(cost.JoinHash, l, r, out, time.Since(start))
	}
	for _, pt := range probe.Tuples {
		pk := joinKey(pt, pKeys)
		ht.each(pk, func(bi int) {
			bt := build.Tuples[bi]
			if keysEqual(pt, bt, pKeys, bKeys) {
				out.Tuples = append(out.Tuples, arena.concat(pt, bt))
			}
		})
	}
	return out, joinObs(cost.JoinHash, l, r, out, time.Since(start))
}

// MergeJoin computes the inner equi-join of inputs already sorted by their
// key columns — the storage-aware fast path when both partitions maintain
// sort orders on the join attribute (§4.3, Figure 7b).
//
// Contract: BOTH inputs must be sorted ascending by their key columns in
// types.Compare order (NULLs first). The merge walk silently drops or
// duplicates matches on unsorted input — it does not detect disorder.
// Callers that cannot guarantee order must sort first (as the cluster
// executor's joinRels does) or use HashJoin. Builds tagged `proteusdebug`
// (and the regression tests) enable an O(n+m) ordering assertion that
// panics on contract violations instead of returning wrong rows.
func MergeJoin(l, r Rel, lKeys, rKeys []int) (Rel, cost.Observation) {
	start := time.Now()
	if debugChecks {
		assertSorted(l, lKeys, "MergeJoin left input")
		assertSorted(r, rKeys, "MergeJoin right input")
	}
	out := Rel{Cols: joinCols(l, r)}
	i, j := 0, 0
	for i < len(l.Tuples) && j < len(r.Tuples) {
		c := compareKeys(l.Tuples[i], r.Tuples[j], lKeys, rKeys)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Emit the cross product of the equal-key groups.
			jEnd := j
			for jEnd < len(r.Tuples) && compareKeys(l.Tuples[i], r.Tuples[jEnd], lKeys, rKeys) == 0 {
				jEnd++
			}
			for ; i < len(l.Tuples) && compareKeys(l.Tuples[i], r.Tuples[j], lKeys, rKeys) == 0; i++ {
				for jj := j; jj < jEnd; jj++ {
					out.Tuples = append(out.Tuples, concatTuple(l.Tuples[i], r.Tuples[jj]))
				}
			}
			j = jEnd
		}
	}
	return out, joinObs(cost.JoinMerge, l, r, out, time.Since(start))
}

// assertSorted panics if r is not ascending by keys — the debug-build
// enforcement of MergeJoin's sorted-input contract.
func assertSorted(r Rel, keys []int, what string) {
	for i := 1; i < len(r.Tuples); i++ {
		if compareKeys(r.Tuples[i-1], r.Tuples[i], keys, keys) > 0 {
			panic(fmt.Sprintf("%s violates the sorted-input contract: tuple %d sorts before tuple %d", what, i, i-1))
		}
	}
}

// NestedLoopJoin joins with an arbitrary predicate (non-equi joins).
func NestedLoopJoin(l, r Rel, pred func(lt, rt []types.Value) bool) (Rel, cost.Observation) {
	start := time.Now()
	out := Rel{Cols: joinCols(l, r)}
	for _, lt := range l.Tuples {
		for _, rt := range r.Tuples {
			if pred(lt, rt) {
				out.Tuples = append(out.Tuples, concatTuple(lt, rt))
			}
		}
	}
	return out, joinObs(cost.JoinNested, l, r, out, time.Since(start))
}

// SemiJoinFilter returns the l tuples whose key appears in r — the probe
// phase of the invisible-join style execution (§4.3): the fact table's
// foreign-key column is filtered against a hash of the dimension keys
// before any other fact column is materialized.
func SemiJoinFilter(l Rel, lKeys []int, r Rel, rKeys []int) (Rel, cost.Observation) {
	start := time.Now()
	ht := make(map[uint64][][]types.Value, r.NumRows())
	for _, t := range r.Tuples {
		k := joinKey(t, rKeys)
		ht[k] = append(ht[k], t)
	}
	out := Rel{Cols: l.Cols}
	for _, t := range l.Tuples {
		for _, rt := range ht[joinKey(t, lKeys)] {
			if keysEqual(t, rt, lKeys, rKeys) {
				out.Tuples = append(out.Tuples, t)
				break
			}
		}
	}
	return out, joinObs(cost.JoinHash, l, r, out, time.Since(start))
}
