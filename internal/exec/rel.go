// Package exec implements Proteus' physical operators (§4.3, Table 1):
// storage-aware scans and point reads over partitions (with predicate and
// projection pushdown, sorted-range narrowing and zone-map skipping),
// writes, hash/merge/nested-loop joins, sorting, and hash/sorted
// aggregation. Every operator measures its own latency and returns a
// cost.Observation so the ASA's cost functions learn continuously from
// real executions (§5.2.1).
package exec

import (
	"sort"

	"proteus/internal/types"
)

// Rel is a materialized intermediate relation flowing between operators.
type Rel struct {
	// Cols labels the tuple positions (table.column names); purely
	// informational for debugging and result presentation.
	Cols []string
	// Tuples holds the rows.
	Tuples [][]types.Value
}

// NumRows reports the tuple count.
func (r Rel) NumRows() int { return len(r.Tuples) }

// RowBytes estimates the average encoded tuple width, used as the
// column-size cost feature.
func (r Rel) RowBytes() int {
	if len(r.Tuples) == 0 {
		return 0
	}
	n := 0
	sample := len(r.Tuples)
	if sample > 32 {
		sample = 32
	}
	for i := 0; i < sample; i++ {
		for _, v := range r.Tuples[i] {
			n += types.VarWidth(v)
		}
	}
	return n / sample
}

// Project returns a relation with only the given tuple positions.
func Project(r Rel, idxs []int) Rel {
	cols := make([]string, len(idxs))
	for i, ix := range idxs {
		if ix < len(r.Cols) {
			cols[i] = r.Cols[ix]
		}
	}
	out := Rel{Cols: cols, Tuples: make([][]types.Value, len(r.Tuples))}
	for ti, t := range r.Tuples {
		row := make([]types.Value, len(idxs))
		for i, ix := range idxs {
			row[i] = t[ix]
		}
		out.Tuples[ti] = row
	}
	return out
}

// Filter returns the tuples satisfying fn.
func Filter(r Rel, fn func([]types.Value) bool) Rel {
	out := Rel{Cols: r.Cols}
	for _, t := range r.Tuples {
		if fn(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Concat unions relations with identical shapes (distributed partial
// results arriving at the coordinating site, §4.3).
func Concat(rels ...Rel) Rel {
	var out Rel
	for _, r := range rels {
		if out.Cols == nil {
			out.Cols = r.Cols
		}
		out.Tuples = append(out.Tuples, r.Tuples...)
	}
	return out
}

// SortBy orders tuples ascending by the given positions.
func SortBy(r Rel, keys []int) Rel {
	out := Rel{Cols: r.Cols, Tuples: append([][]types.Value(nil), r.Tuples...)}
	sort.SliceStable(out.Tuples, func(i, j int) bool {
		return compareKeys(out.Tuples[i], out.Tuples[j], keys, keys) < 0
	})
	return out
}

func compareKeys(a, b []types.Value, aKeys, bKeys []int) int {
	for i := range aKeys {
		if c := types.Compare(a[aKeys[i]], b[bKeys[i]]); c != 0 {
			return c
		}
	}
	return 0
}
