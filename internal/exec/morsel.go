package exec

import (
	"proteus/internal/partition"
	"proteus/internal/schema"
	"proteus/internal/storage"
	"proteus/internal/types"
)

// DefaultMorselRows is the scheduling quantum of the parallel scan
// executor: each morsel covers roughly this many rows, small enough that
// work spreads evenly across a site's scan pool and a LIMIT or cancelled
// query stops quickly, large enough that per-morsel overhead stays noise.
const DefaultMorselRows = 1024

// DefaultBatchRows bounds one result batch flowing from a scan worker to
// the coordinator, which bounds the executor's in-flight memory.
const DefaultBatchRows = 256

// LocalPred translates a predicate over table-global columns into a
// partition's local column space, keeping only the conjuncts the bounds
// cover. ok reports whether every conjunct was pushed.
func LocalPred(b partition.Bounds, pred storage.Pred) (storage.Pred, bool) {
	out := make(storage.Pred, 0, len(pred))
	all := true
	for _, c := range pred {
		if !b.ContainsCol(c.Col) {
			all = false
			continue
		}
		out = append(out, storage.Cond{Col: b.LocalCol(c.Col), Op: c.Op, Val: c.Val})
	}
	return out, all
}

// ScanMorsel streams the rows with lo <= id < hi of one partition copy,
// projecting the table-global cols in order and applying the table-global
// pred, at the snapshot version. It operates on a captured store object so
// workers never contend on partition locks: a store captured at morsel
// build time stays correct for snapshot reads across concurrent layout
// swaps (newer versions are simply invisible).
func ScanMorsel(st storage.Store, b partition.Bounds, cols []schema.ColID, pred storage.Pred, lo, hi schema.RowID, snap uint64, fn func(schema.Row) bool) {
	lp, _ := LocalPred(b, pred)
	lcols := make([]schema.ColID, len(cols))
	for i, c := range cols {
		lcols[i] = b.LocalCol(c)
	}
	partition.ScanStoreRange(st, lcols, lp, lo, hi, snap, fn)
}

// Aggregator accumulates grouped aggregates one tuple at a time. Scan
// workers each own one, so partial aggregation happens inside the morsel
// scan without materializing tuples; worker states merge into one per-site
// partial relation before shipping to the coordinator.
type Aggregator struct {
	groupBy    []int
	specs      []AggSpec
	groups     map[uint64][]*groupEntry
	order      []*groupEntry
	keyScratch []types.Value // reused per-row key tuple for ObserveBatch

	// Single-key fast-path state (batchagg.go): typed key → entry indexes
	// that bypass per-row boxing. Entries are shared with the canonical
	// groups table — the typed maps only memoize entry() results — so the
	// generic path, MergeFrom and Rel see one consistent group set.
	intGroups  map[int64]*groupEntry
	strGroups  map[string]*groupEntry
	entScratch []*groupEntry
	rowScratch []int32
	dictEnts   []*groupEntry
}

// NewAggregator creates an accumulator for the groupBy positions and specs
// (both over the input tuple layout, as in HashAggregate).
func NewAggregator(groupBy []int, specs []AggSpec) *Aggregator {
	return &Aggregator{groupBy: groupBy, specs: specs, groups: map[uint64][]*groupEntry{}}
}

func (a *Aggregator) entry(key []types.Value) *groupEntry {
	h := joinKey(key, a.groupBy)
	for _, cand := range a.groups[h] {
		if keysEqual(key, cand.key, a.groupBy, a.groupBy) {
			return cand
		}
	}
	k := make([]types.Value, len(key))
	copy(k, key)
	ge := &groupEntry{key: k, state: newAggState(len(a.specs))}
	a.groups[h] = append(a.groups[h], ge)
	a.order = append(a.order, ge)
	return ge
}

// Observe folds one input tuple into its group.
func (a *Aggregator) Observe(t []types.Value) {
	a.entry(t).state.observe(t, a.specs)
}

// MergeFrom folds another accumulator with identical groupBy/specs into
// this one.
func (a *Aggregator) MergeFrom(o *Aggregator) {
	for _, ge := range o.order {
		a.entry(ge.key).state.merge(ge.state)
	}
}

// Rows reports the number of groups accumulated so far.
func (a *Aggregator) Rows() int { return len(a.order) }

// Rel finishes the aggregation into the [groups..., aggs...] relation
// HashAggregate would produce over the same input. inputCols labels the
// input tuple layout (may be nil for positional g%d labels).
func (a *Aggregator) Rel(inputCols []string) Rel {
	order := a.order
	if len(a.groupBy) == 0 && len(order) == 0 {
		// SQL aggregate semantics: a global aggregate over zero rows still
		// produces one row.
		order = []*groupEntry{{state: newAggState(len(a.specs))}}
	}
	out := Rel{Cols: aggCols(Rel{Cols: inputCols}, a.groupBy, a.specs)}
	for _, ge := range order {
		row := make([]types.Value, 0, len(a.groupBy)+len(a.specs))
		for _, g := range a.groupBy {
			row = append(row, ge.key[g])
		}
		row = append(row, ge.state.finish(a.specs)...)
		out.Tuples = append(out.Tuples, row)
	}
	return out
}

// merge folds another state accumulated with the same specs into s.
func (s *aggState) merge(o *aggState) {
	for i := range s.counts {
		s.counts[i] += o.counts[i]
		s.sums[i] = types.Add(s.sums[i], o.sums[i])
		if !o.mins[i].IsNull() && (s.mins[i].IsNull() || types.Compare(o.mins[i], s.mins[i]) < 0) {
			s.mins[i] = o.mins[i]
		}
		if !o.maxs[i].IsNull() && (s.maxs[i].IsNull() || types.Compare(o.maxs[i], s.maxs[i]) > 0) {
			s.maxs[i] = o.maxs[i]
		}
	}
}
